package tpset_test

// Public-API tests of the query-service-facing surface: canonical query
// rendering and the JSON wire codec.

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tpset/tpset"
)

func TestCanonicalQuery(t *testing.T) {
	q1 := tpset.MustParseQuery("c - (a | b)")
	q2 := tpset.MustParseQuery("  c  minus ((a union b)) ")
	c1, c2 := tpset.CanonicalQuery(q1), tpset.CanonicalQuery(q2)
	if c1 != c2 {
		t.Fatalf("spelling variants disagree: %q vs %q", c1, c2)
	}
	if c1 != "(c - (a | b))" {
		t.Fatalf("canonical = %q", c1)
	}
	if rt := tpset.CanonicalQuery(tpset.MustParseQuery(c1)); rt != c1 {
		t.Fatalf("not a fixpoint: %q then %q", c1, rt)
	}
}

func TestRelationJSONRoundTrip(t *testing.T) {
	a := tpset.NewRelation("bought", "Product")
	a.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)
	c := tpset.NewRelation("stock", "Product")
	c.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
	out, err := tpset.Except(c, a)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := tpset.MarshalRelationJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := tpset.UnmarshalRelationJSON(blob, "")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != out.Len() {
		t.Fatalf("cardinality %d, want %d", back.Len(), out.Len())
	}
	// The derived tuple c1∧¬a1 must survive with structure and exact
	// probability — the lineage re-parses rather than becoming opaque.
	back.Sort()
	last := back.Tuples[back.Len()-1]
	if got := last.Lineage.String(); got != "c1∧¬a1" {
		t.Fatalf("lineage = %q, want c1∧¬a1", got)
	}
	if got := last.ComputeProb(); got != 0.6*(1-0.3) {
		t.Fatalf("recomputed prob = %v, want 0.42", got)
	}
}

// TestCSVJSONCrossCodecProperty round-trips randomized base relations
// through BOTH persistence codecs — CSV then JSON — and demands the exact
// original back: same facts, intervals, lineage and probabilities.
func TestCSVJSONCrossCodecProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		orig := tpset.NewRelation("r", "Fact")
		// Small pseudo-random relation, deterministic per seed: chains of
		// non-overlapping per-fact intervals.
		state := uint64(seed*2654435761 + 12345)
		next := func(n int64) int64 {
			state = state*6364136223846793005 + 1442695040888963407
			return int64(state>>33) % n
		}
		cursor := map[int64]int64{}
		for i := 0; i < 60; i++ {
			f := next(7)
			ts := cursor[f] + next(4)
			te := ts + 1 + next(6)
			cursor[f] = te
			p := 0.05 + float64(next(90))/100
			orig.AddBase(tpset.F(fmt.Sprintf("f%d", f)), fmt.Sprintf("v%d_%d", seed, i), ts, te, p)
		}

		var csvBuf bytes.Buffer
		if err := tpset.WriteCSV(&csvBuf, orig); err != nil {
			t.Fatal(err)
		}
		fromCSV, err := tpset.ReadCSV(&csvBuf, "r")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		blob, err := tpset.MarshalRelationJSON(fromCSV)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := tpset.UnmarshalRelationJSON(blob, "r")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		orig.Sort()
		fromJSON.Sort()
		if orig.Len() != fromJSON.Len() {
			t.Fatalf("seed %d: %d tuples became %d", seed, orig.Len(), fromJSON.Len())
		}
		for i := range orig.Tuples {
			a, b := orig.Tuples[i], fromJSON.Tuples[i]
			if !a.Fact.Equal(b.Fact) || a.T != b.T || a.Prob != b.Prob ||
				a.Lineage.String() != b.Lineage.String() {
				t.Fatalf("seed %d tuple %d: %v became %v", seed, i, a, b)
			}
		}
	}
}
