// Package csvio loads and stores TP relations as CSV files.
//
// The on-disk layout has one row per base tuple:
//
//	fact_1,...,fact_m,id,ts,te,p
//
// with a header row naming the conventional attributes followed by the
// fixed columns "lineage", "ts", "te", "p". Only base relations
// round-trip: derived lineage is written in its rendered form and read
// back as an opaque fresh variable carrying the tuple's probability, which
// preserves facts, intervals and marginals but not the original formula
// structure (documented limitation; the JSON wire codec of the query
// service — internal/server, tpset.MarshalRelationJSON — round-trips full
// formula structure when it matters).
//
// Read enforces the model invariants on data of unknown provenance: every
// interval must be non-empty [ts, te), probabilities must lie in (0, 1],
// the lineage column must be non-empty syntactically valid lineage, and
// the loaded relation must be duplicate-free (Def. 1) — two rows with the
// same fact over overlapping intervals are rejected. Windows-exported
// files are accepted as-is: a leading UTF-8 BOM is stripped and CRLF line
// endings are handled. StreamWriter writes rows one tuple at a time, so a
// streaming cursor plan can be persisted without materializing its
// result.
//
// Paper map: the persistence layer feeding the §VII experiments and the
// tpquery/tpgen/tpserve CLIs; no direct counterpart in the paper. See
// docs/PAPER_MAP.md.
package csvio
