package csvio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzCSVRead pins the loader's failure contract on arbitrary bytes:
// Read never panics, every rejection is a diagnosable "csvio:" error
// (row-level problems carry the 1-based line number), and everything it
// accepts is a well-formed relation — duplicate-free, interned, and
// serializable back to CSV.
func FuzzCSVRead(f *testing.F) {
	for _, seed := range []string{
		"F,lineage,ts,te,p\na,x1,0,5,0.5\nb,x2,2,9,0.7\n",
		"F,G,lineage,ts,te,p\na,b,x1,0,5,1\n",
		"\xEF\xBB\xBFF,lineage,ts,te,p\r\na,x1,0,5,0.5\r\n",
		"F,lineage,ts,te,p\na,x1 ∧ x2,0,5,0.5\n",
		"F,lineage,ts,te,p\n",
		"F,lineage,ts,te,p\na,x1,5,5,0.5\n",               // empty interval: must error
		"F,lineage,ts,te,p\na,x1,0,5,1.5\n",               // probability out of range
		"F,lineage,ts,te,p\na,x1,0,5,NaN\n",               // NaN probability
		"F,lineage,ts,te,p\na,,0,5,0.5\n",                 // empty lineage
		"F,lineage,ts,te,p\na,x1,zero,5,0.5\n",            // unparsable ts
		"F,lineage,ts,te,p\na,x1,0,5,0.5\na,x2,3,8,0.5\n", // overlap: duplicate
		"too,few\n",
		"",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := Read(bytes.NewReader(data), "fuzz")
		if err != nil {
			if !strings.Contains(err.Error(), "csvio") {
				t.Fatalf("error lost its csvio context: %v", err)
			}
			return
		}
		// Accepted input: the relation must satisfy every invariant the
		// loader promises, and must survive re-serialization.
		if err := rel.ValidateDuplicateFree(); err != nil {
			t.Fatalf("accepted relation violates duplicate-freeness: %v", err)
		}
		if rel.Len() > 0 && rel.Dict() == nil {
			t.Fatal("accepted relation was not interned at ingest")
		}
		if err := Write(io.Discard, rel); err != nil {
			t.Fatalf("accepted relation does not re-serialize: %v", err)
		}
	})
}
