package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Write stores r as CSV.
func Write(w io.Writer, r *relation.Relation) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, r.Schema.Attrs...), "lineage", "ts", "te", "p")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		row := append(append([]string{}, t.Fact...),
			t.Lineage.String(),
			strconv.FormatInt(t.T.Ts, 10),
			strconv.FormatInt(t.T.Te, 10),
			strconv.FormatFloat(t.Prob, 'g', -1, 64),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile stores r at path.
func WriteFile(path string, r *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read loads a relation named name from CSV. Every row becomes a base tuple
// whose lineage variable is the row's lineage column (assumed to be a
// unique identifier within the file). The lineage column must be non-empty
// and syntactically valid lineage (a bare identifier or a rendered
// formula; see lineage.Parse) — a malformed formula is rejected rather
// than silently becoming an opaque variable. The loaded relation is
// checked for the model's duplicate-freeness invariant: two rows with the
// same fact over overlapping intervals are an error.
func Read(rd io.Reader, name string) (*relation.Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 5 {
		return nil, fmt.Errorf("csvio: header needs at least one fact column plus lineage,ts,te,p; got %d columns", len(header))
	}
	nf := len(header) - 4
	rel := relation.New(relation.NewSchema(name, header[:nf]...))
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("csvio: line %d: %d columns, want %d", line, len(row), len(header))
		}
		ts, err := strconv.ParseInt(row[nf+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: ts: %w", line, err)
		}
		te, err := strconv.ParseInt(row[nf+2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: te: %w", line, err)
		}
		p, err := strconv.ParseFloat(row[nf+3], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: p: %w", line, err)
		}
		if ts >= te {
			return nil, fmt.Errorf("csvio: line %d: empty interval [%d,%d)", line, ts, te)
		}
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("csvio: line %d: probability %v outside (0,1]", line, p)
		}
		// The lineage column is kept opaque (see the package note) but must
		// at least BE lineage: parsing catches truncated or mangled
		// formulas that would otherwise round-trip as garbage identifiers.
		if expr, err := lineage.Parse(row[nf], func(string) (float64, error) { return p, nil }); err != nil {
			return nil, fmt.Errorf("csvio: line %d: unparsable lineage %q: %w", line, row[nf], err)
		} else if expr == nil {
			return nil, fmt.Errorf("csvio: line %d: empty lineage column", line)
		}
		rel.AddBase(relation.Fact(row[:nf]), row[nf], ts, te, p)
	}
	if err := rel.ValidateDuplicateFree(); err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	return rel, nil
}

// ReadFile loads the relation stored at path; the relation is named after
// the file.
func ReadFile(path, name string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, name)
}
