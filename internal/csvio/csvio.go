package csvio

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// StreamWriter writes a relation's tuples as CSV rows one at a time, so a
// cursor plan can be persisted while it streams — tuples reach the writer
// as they are produced, without a materialized relation in between
// (cmd/tpquery -stream). NewStreamWriter emits the header; WriteTuple
// appends one row; Close flushes. Write is implemented on top of it.
type StreamWriter struct {
	cw  *csv.Writer
	row []string
}

// NewStreamWriter starts a CSV stream for tuples of the given schema,
// writing the header immediately.
func NewStreamWriter(w io.Writer, schema relation.Schema) (*StreamWriter, error) {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, schema.Attrs...), "lineage", "ts", "te", "p")
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &StreamWriter{cw: cw, row: make([]string, 0, len(header))}, nil
}

// WriteTuple appends one tuple row.
func (sw *StreamWriter) WriteTuple(t *relation.Tuple) error {
	sw.row = append(append(sw.row[:0], t.Fact...),
		t.Lineage.String(),
		strconv.FormatInt(t.T.Ts, 10),
		strconv.FormatInt(t.T.Te, 10),
		strconv.FormatFloat(t.Prob, 'g', -1, 64),
	)
	return sw.cw.Write(sw.row)
}

// Close flushes buffered rows to the underlying writer.
func (sw *StreamWriter) Close() error {
	sw.cw.Flush()
	return sw.cw.Error()
}

// Write stores r as CSV.
func Write(w io.Writer, r *relation.Relation) error {
	sw, err := NewStreamWriter(w, r.Schema)
	if err != nil {
		return err
	}
	for i := range r.Tuples {
		if err := sw.WriteTuple(&r.Tuples[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// WriteFile stores r at path.
func WriteFile(path string, r *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// utf8BOM is the UTF-8 encoding of U+FEFF, which Windows tools commonly
// prepend to exported CSV files.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// Read loads a relation named name from CSV. Every row becomes a base tuple
// whose lineage variable is the row's lineage column (assumed to be a
// unique identifier within the file). The lineage column must be non-empty
// and syntactically valid lineage (a bare identifier or a rendered
// formula; see lineage.Parse) — a malformed formula is rejected rather
// than silently becoming an opaque variable. The loaded relation is
// checked for the model's duplicate-freeness invariant: two rows with the
// same fact over overlapping intervals are an error.
//
// Windows-exported CSVs are accepted as-is: a leading UTF-8 BOM is
// stripped (it would otherwise become part of the first header name) and
// CRLF line endings are handled by the underlying csv reader.
func Read(rd io.Reader, name string) (*relation.Relation, error) {
	br := bufio.NewReader(rd)
	if head, err := br.Peek(len(utf8BOM)); err == nil && bytes.Equal(head, utf8BOM) {
		if _, err := br.Discard(len(utf8BOM)); err != nil {
			return nil, fmt.Errorf("csvio: skipping BOM: %w", err)
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 5 {
		return nil, fmt.Errorf("csvio: header needs at least one fact column plus lineage,ts,te,p; got %d columns", len(header))
	}
	nf := len(header) - 4
	rel := relation.New(relation.NewSchema(name, header[:nf]...))
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("csvio: line %d: %d columns, want %d", line, len(row), len(header))
		}
		ts, err := strconv.ParseInt(row[nf+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: ts: %w", line, err)
		}
		te, err := strconv.ParseInt(row[nf+2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: te: %w", line, err)
		}
		p, err := strconv.ParseFloat(row[nf+3], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: p: %w", line, err)
		}
		if ts >= te {
			return nil, fmt.Errorf("csvio: line %d: empty interval [%d,%d)", line, ts, te)
		}
		// The positive-range check is written so NaN fails it too: NaN
		// compares false to everything, so "p <= 0 || p > 1" would let a
		// NaN probability through.
		if !(p > 0 && p <= 1) {
			return nil, fmt.Errorf("csvio: line %d: probability %v outside (0,1]", line, p)
		}
		for c := 0; c < nf; c++ {
			if row[c] == "" {
				return nil, fmt.Errorf("csvio: line %d: empty fact value in column %q", line, header[c])
			}
		}
		// The lineage column is kept opaque (see the package note) but must
		// at least BE lineage: parsing catches truncated or mangled
		// formulas that would otherwise round-trip as garbage identifiers.
		if expr, err := lineage.Parse(row[nf], func(string) (float64, error) { return p, nil }); err != nil {
			return nil, fmt.Errorf("csvio: line %d: unparsable lineage %q: %w", line, row[nf], err)
		} else if expr == nil {
			return nil, fmt.Errorf("csvio: line %d: empty lineage column", line)
		}
		rel.AddBase(relation.Fact(row[:nf]), row[nf], ts, te, p)
	}
	// Construct interned fact ids at ingest: the duplicate check below and
	// every later sort/sweep over this relation run on integer compares.
	rel.Intern()
	if err := rel.ValidateDuplicateFree(); err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	return rel, nil
}

// ReadFile loads the relation stored at path; the relation is named after
// the file.
func ReadFile(path, name string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, name)
}
