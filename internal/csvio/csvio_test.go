package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

func sample() *relation.Relation {
	r := relation.New(relation.NewSchema("r", "Product", "City"))
	r.AddBase(relation.NewFact("milk", "zurich"), "r1", 1, 4, 0.6)
	r.AddBase(relation.NewFact("chips", "basel"), "r2", 2, 9, 0.8)
	return r
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "r")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, sample()); d != "" {
		t.Fatalf("round trip: %s", d)
	}
	if len(got.Schema.Attrs) != 2 || got.Schema.Attrs[0] != "Product" {
		t.Errorf("schema: %v", got.Schema)
	}
}

func TestRoundTripGenerated(t *testing.T) {
	r := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "g", NumTuples: 500, NumFacts: 9, MaxLen: 7, MaxGap: 2, Seed: 4,
	})
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "g")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, r); d != "" {
		t.Fatalf("round trip: %s", d)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"short header", "a,b\n", "header"},
		{"bad ts", "F,lineage,ts,te,p\nx,r1,zz,3,0.5\n", "ts"},
		{"bad te", "F,lineage,ts,te,p\nx,r1,1,zz,0.5\n", "te"},
		{"bad p", "F,lineage,ts,te,p\nx,r1,1,3,zz\n", "p"},
		{"empty interval", "F,lineage,ts,te,p\nx,r1,3,3,0.5\n", "interval"},
		{"p out of range", "F,lineage,ts,te,p\nx,r1,1,3,1.5\n", "probability"},
		{"column mismatch", "F,lineage,ts,te,p\nx,r1,1,3\n", ""},
		{"negative interval", "F,lineage,ts,te,p\nx,r1,5,3,0.5\n", "interval"},
		{"zero probability", "F,lineage,ts,te,p\nx,r1,1,3,0\n", "probability"},
		{"empty lineage", "F,lineage,ts,te,p\nx,,1,3,0.5\n", "empty lineage"},
		{"null lineage", "F,lineage,ts,te,p\nx,null,1,3,0.5\n", "empty lineage"},
		{"unparsable lineage", "F,lineage,ts,te,p\nx,r1∧,1,3,0.5\n", "unparsable lineage"},
		{"unparsable lineage parens", "F,lineage,ts,te,p\nx,(r1,1,3,0.5\n", "unparsable lineage"},
		{"duplicate tuples", "F,lineage,ts,te,p\nx,r1,1,5,0.5\nx,r2,3,8,0.5\n", "duplicate fact"},
		{"duplicate tuples same row", "F,lineage,ts,te,p\nx,r1,1,5,0.5\nx,r2,1,5,0.5\n", "duplicate fact"},
		{"NaN probability", "F,lineage,ts,te,p\nx,r1,1,3,NaN\n", "probability NaN outside (0,1]"},
		{"negative probability", "F,lineage,ts,te,p\nx,r1,1,3,-0.2\n", "probability -0.2 outside (0,1]"},
		{"probability above one", "F,lineage,ts,te,p\nx,r1,1,3,1.0001\n", "probability 1.0001 outside (0,1]"},
		{"negative infinity probability", "F,lineage,ts,te,p\nx,r1,1,3,-Inf\n", "probability -Inf outside (0,1]"},
		{"empty fact value", "F,lineage,ts,te,p\n,r1,1,3,0.5\n", `empty fact value in column "F"`},
		{"empty second fact value", "F,G,lineage,ts,te,p\nx,,r1,1,3,0.5\n", `empty fact value in column "G"`},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.data), "r")
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestReadAcceptsRenderedFormulasAndAdjacency(t *testing.T) {
	// A rendered derived formula stays a legal (opaque) lineage column,
	// and temporally adjacent same-fact rows are NOT duplicates.
	data := "F,lineage,ts,te,p\nx,c1∧¬(a1∨b1),1,4,0.3\nx,c1,4,9,0.6\n"
	r, err := Read(strings.NewReader(data), "r")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("got %d tuples", r.Len())
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
}

// TestReadWindowsExportedCSV accepts a UTF-8 BOM and CRLF line endings —
// the format Windows tools export — and round-trips it against the same
// data in the native format.
func TestReadWindowsExportedCSV(t *testing.T) {
	var native bytes.Buffer
	if err := Write(&native, sample()); err != nil {
		t.Fatal(err)
	}
	want, err := Read(bytes.NewReader(native.Bytes()), "r")
	if err != nil {
		t.Fatal(err)
	}

	windows := append([]byte{0xEF, 0xBB, 0xBF},
		[]byte(strings.ReplaceAll(native.String(), "\n", "\r\n"))...)
	got, err := Read(bytes.NewReader(windows), "r")
	if err != nil {
		t.Fatalf("BOM+CRLF input rejected: %v", err)
	}
	if d := relation.Diff(got, want); d != "" {
		t.Fatalf("BOM+CRLF round trip: %s", d)
	}
	// The BOM must not leak into the first header name.
	if got.Schema.Attrs[0] != "Product" {
		t.Fatalf("first attribute %q, want %q", got.Schema.Attrs[0], "Product")
	}

	// BOM alone (LF endings) and CRLF alone are each accepted too.
	bomOnly := append([]byte{0xEF, 0xBB, 0xBF}, native.Bytes()...)
	if _, err := Read(bytes.NewReader(bomOnly), "r"); err != nil {
		t.Fatalf("BOM-only input rejected: %v", err)
	}
	crlfOnly := strings.ReplaceAll(native.String(), "\n", "\r\n")
	if _, err := Read(strings.NewReader(crlfOnly), "r"); err != nil {
		t.Fatalf("CRLF-only input rejected: %v", err)
	}
}

// TestStreamWriterMatchesWrite pins the streaming writer against the
// one-shot Write: identical bytes, tuple by tuple.
func TestStreamWriterMatchesWrite(t *testing.T) {
	r := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "g", NumTuples: 200, NumFacts: 7, MaxLen: 5, MaxGap: 2, Seed: 9,
	})
	var oneShot, streamed bytes.Buffer
	if err := Write(&oneShot, r); err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(&streamed, r.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Tuples {
		if err := sw.WriteTuple(&r.Tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if oneShot.String() != streamed.String() {
		t.Fatal("StreamWriter output differs from Write")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	if err := WriteFile(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, "r")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, sample()); d != "" {
		t.Fatalf("file round trip: %s", d)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv"), "x"); !os.IsNotExist(err) {
		t.Errorf("missing file: %v", err)
	}
}
