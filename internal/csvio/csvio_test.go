package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

func sample() *relation.Relation {
	r := relation.New(relation.NewSchema("r", "Product", "City"))
	r.AddBase(relation.NewFact("milk", "zurich"), "r1", 1, 4, 0.6)
	r.AddBase(relation.NewFact("chips", "basel"), "r2", 2, 9, 0.8)
	return r
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "r")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, sample()); d != "" {
		t.Fatalf("round trip: %s", d)
	}
	if len(got.Schema.Attrs) != 2 || got.Schema.Attrs[0] != "Product" {
		t.Errorf("schema: %v", got.Schema)
	}
}

func TestRoundTripGenerated(t *testing.T) {
	r := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "g", NumTuples: 500, NumFacts: 9, MaxLen: 7, MaxGap: 2, Seed: 4,
	})
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "g")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, r); d != "" {
		t.Fatalf("round trip: %s", d)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"short header", "a,b\n", "header"},
		{"bad ts", "F,lineage,ts,te,p\nx,r1,zz,3,0.5\n", "ts"},
		{"bad te", "F,lineage,ts,te,p\nx,r1,1,zz,0.5\n", "te"},
		{"bad p", "F,lineage,ts,te,p\nx,r1,1,3,zz\n", "p"},
		{"empty interval", "F,lineage,ts,te,p\nx,r1,3,3,0.5\n", "interval"},
		{"p out of range", "F,lineage,ts,te,p\nx,r1,1,3,1.5\n", "probability"},
		{"column mismatch", "F,lineage,ts,te,p\nx,r1,1,3\n", ""},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.data), "r")
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	if err := WriteFile(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, "r")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, sample()); d != "" {
		t.Fatalf("file round trip: %s", d)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv"), "x"); !os.IsNotExist(err) {
		t.Errorf("missing file: %v", err)
	}
}
