package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

var allOps = []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept}

// randomRelations builds a random duplicate-free pair over a configurable
// number of facts, exercising gaps, adjacency, containment and
// exact-boundary coincidences (the same distribution as the core
// cross-validation suite, widened to multi-fact inputs so partitioning
// actually scatters work).
func randomRelations(rng *rand.Rand, maxTuples, numFacts int) (r, s *relation.Relation) {
	facts := make([]string, numFacts)
	for i := range facts {
		facts[i] = fmt.Sprintf("f%02d", i)
	}
	build := func(name string) *relation.Relation {
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		for i := 0; i < n; i++ {
			f := facts[rng.Intn(len(facts))]
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		return rel
	}
	return build("x"), build("y")
}

// mustIdentical asserts got is tuple-for-tuple identical to want: same
// order, same facts, same intervals, same rendered canonical lineage and
// bit-identical probabilities.
func mustIdentical(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	if got.Schema.Name != want.Schema.Name {
		t.Fatalf("%s: schema name %q vs %q", label, got.Schema.Name, want.Schema.Name)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: cardinality %d vs %d\ngot=%s\nwant=%s", label, got.Len(), want.Len(), got, want)
	}
	for i := range want.Tuples {
		g, w := &got.Tuples[i], &want.Tuples[i]
		switch {
		case !g.Fact.Equal(w.Fact):
			t.Fatalf("%s: tuple %d fact %s vs %s", label, i, g.Fact, w.Fact)
		case g.T != w.T:
			t.Fatalf("%s: tuple %d (%s) interval %s vs %s", label, i, g.Fact, g.T, w.T)
		case g.Lineage.String() != w.Lineage.String():
			t.Fatalf("%s: tuple %d (%s %s) lineage %s vs %s", label, i, g.Fact, g.T, g.Lineage, w.Lineage)
		case g.Prob != w.Prob:
			t.Fatalf("%s: tuple %d (%s %s) prob %v vs %v", label, i, g.Fact, g.T, g.Prob, w.Prob)
		}
	}
}

// TestParallelMatchesSequential cross-validates the partitioned engine
// against sequential core.Apply on randomized relation pairs: ≥ 100 pairs
// per operation, bit-identical output required.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1})
	for trial := 0; trial < 150; trial++ {
		r, s := randomRelations(rng, 60, 1+rng.Intn(12))
		for _, op := range allOps {
			want, err := core.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatalf("trial %d %v: sequential: %v", trial, op, err)
			}
			got, err := e.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatalf("trial %d %v: parallel: %v", trial, op, err)
			}
			mustIdentical(t, fmt.Sprintf("trial %d %v", trial, op), got, want)
		}
	}
}

// TestDeterminismAcrossWorkerCounts asserts identical output across
// Workers = 1, 2, 8 and across repeated runs with the same configuration.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, s := randomRelations(rng, 400, 23)
	for _, op := range allOps {
		want, err := core.Apply(op, r, s, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			e := engine.New(engine.Config{Workers: workers, MinPartitionSize: 1})
			for run := 0; run < 3; run++ {
				got, err := e.Apply(op, r, s, core.Options{})
				if err != nil {
					t.Fatalf("%v workers=%d run=%d: %v", op, workers, run, err)
				}
				mustIdentical(t, fmt.Sprintf("%v workers=%d run=%d", op, workers, run), got, want)
			}
		}
	}
}

// TestApplyOptionsRespected checks LazyProb and Validate behave as in the
// sequential drivers, and that AssumeSorted inputs are handled.
func TestApplyOptionsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r, s := randomRelations(rng, 200, 9)
	e := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1})

	lazy, err := e.Apply(core.OpUnion, r, s, core.Options{LazyProb: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lazy.Tuples {
		if lazy.Tuples[i].Prob != 0 {
			t.Fatalf("LazyProb: tuple %d has prob %v, want 0", i, lazy.Tuples[i].Prob)
		}
	}

	if _, err := e.Apply(core.OpUnion, r, s, core.Options{Validate: true}); err != nil {
		t.Fatalf("Validate over valid inputs: %v", err)
	}
	bad := r.Clone()
	bad.AddBase(bad.Tuples[0].Fact, "dup", bad.Tuples[0].T.Ts, bad.Tuples[0].T.Te, 0.5)
	if _, err := e.Apply(core.OpUnion, bad, s, core.Options{Validate: true}); err == nil {
		t.Fatal("Validate over duplicated input: want error, got nil")
	}

	rs, ss := r.Clone(), s.Clone()
	rs.Sort()
	ss.Sort()
	want, err := core.Apply(core.OpExcept, rs, ss, core.Options{AssumeSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Apply(core.OpExcept, rs, ss, core.Options{AssumeSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, "AssumeSorted", got, want)
}

// TestEmptyInputs covers the degenerate shapes partitioning must not
// mishandle.
func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r, _ := randomRelations(rng, 50, 5)
	empty := relation.New(relation.NewSchema("e", "F"))
	e := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1})
	for _, op := range allOps {
		for _, pair := range [][2]*relation.Relation{{r, empty}, {empty, r}, {empty, empty}} {
			want, err := core.Apply(op, pair[0], pair[1], core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Apply(op, pair[0], pair[1], core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			mustIdentical(t, fmt.Sprintf("%v empty case", op), got, want)
		}
	}
}

// TestEvalMatchesSequentialEvaluate cross-validates the concurrent
// query-tree executor against the sequential evaluator, including
// selections and repeating queries.
func TestEvalMatchesSequentialEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db := map[string]*relation.Relation{}
	for _, name := range []string{"a", "b", "c", "d"} {
		rel, _ := randomRelations(rng, 120, 8)
		rel.Schema.Name = name
		db[name] = rel
	}
	queries := []string{
		"a | b",
		"(a | b) & c",
		"((a | b) & c) - d",
		"(a - b) | (c - d)",
		"(a & b) | (a & c)", // repeating
		"sigma[F='f03'](a) | b",
	}
	e := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1})
	for _, src := range queries {
		q := query.MustParse(src)
		want, err := query.Evaluate(q, db)
		if err != nil {
			t.Fatalf("%s: sequential: %v", src, err)
		}
		got, err := e.Eval(q, db)
		if err != nil {
			t.Fatalf("%s: parallel: %v", src, err)
		}
		if d := relation.Diff(got, want); d != "" {
			t.Fatalf("%s: parallel vs sequential: %s", src, d)
		}
	}

	if _, err := e.Eval(query.MustParse("a | nosuch"), db); err == nil {
		t.Fatal("unknown relation: want error, got nil")
	}
}

// TestQueryEvaluateRoutesThroughEngine checks the query-package hook: with
// the default parallelism raised above one, query.Evaluate must route
// through the registered engine and still produce the sequential result.
func TestQueryEvaluateRoutesThroughEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := map[string]*relation.Relation{}
	for _, name := range []string{"a", "b", "c"} {
		rel, _ := randomRelations(rng, 150, 10)
		rel.Schema.Name = name
		db[name] = rel
	}
	q := query.MustParse("(a | b) - c")
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}

	query.SetDefaultParallelism(4)
	defer query.SetDefaultParallelism(1)
	if got := query.DefaultParallelism(); got != 4 {
		t.Fatalf("DefaultParallelism = %d, want 4", got)
	}
	got, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, want); d != "" {
		t.Fatalf("routed vs sequential: %s", d)
	}
}
