package engine

import (
	"sync"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// Streaming (cursor-plan) execution. The engine composes with the cursor
// layer by partitioning the *leaf* relations once, by fact hash — exactly
// the Apply partitioning — and evaluating the whole query tree per
// partition as an independent streaming cursor plan: every TP set
// operation and selection is per-fact, so the query restricted to one
// fact partition equals the restriction of the query's result to those
// facts. Shard plans run on their own goroutines, feeding bounded
// channels, and a k-way merge over the channel heads (relation.Less, the
// Apply merge comparator) restores global canonical order incrementally.
//
// Memory: each shard plan is O(tree depth); the one materialized cost is
// the partitioned copy of the leaf relations (O(input), paid before any
// output). Inputs below the partitioning threshold skip that too and run
// the purely sequential cursor plan, which is O(tree depth) end to end.

// streamChanBuf is the per-shard channel buffer: enough to decouple
// producer and consumer bursts, small enough that a stalled consumer
// bounds the tuples in flight to shards × streamChanBuf.
const streamChanBuf = 128

// StreamCursor is a core.Cursor over a whole query tree, evaluated
// sequentially or partition-parallel. Callers that do not drain it must
// Close it to release the shard goroutines; Close is idempotent and safe
// after full drains too.
type StreamCursor struct {
	schema relation.Schema
	next   func() (relation.Tuple, bool)
	stop   func()
}

// Schema returns the plan's output schema.
func (c *StreamCursor) Schema() relation.Schema { return c.schema }

// Next returns the next result tuple in canonical (fact, Ts, Te) order.
func (c *StreamCursor) Next() (relation.Tuple, bool) { return c.next() }

// Close releases the plan's resources (shard producer goroutines). After
// Close, Next must not be called again.
func (c *StreamCursor) Close() {
	if c.stop != nil {
		c.stop()
	}
}

// Cursor compiles the query into a streaming plan over db. With an input
// large enough to partition and a worker budget above one, the plan
// evaluates fact-hash shards of the query concurrently and merges their
// ordered outputs on the fly; otherwise it is the sequential cursor plan.
// Either way the stream is bit-identical to Eval's result, in the same
// canonical order, with no intermediate relation materialized.
func (e *Engine) Cursor(n query.Node, db map[string]*relation.Relation, opts core.Options) (*StreamCursor, error) {
	names := query.Relations(n)
	total := 0
	for _, name := range names {
		if r, ok := db[name]; ok {
			total += r.Len()
		}
	}
	shards := e.shardCount(total)
	if shards < 2 {
		c, err := query.BuildCursor(n, db, opts)
		if err != nil {
			return nil, err
		}
		return &StreamCursor{schema: c.Schema(), next: c.Next}, nil
	}

	if opts.Validate {
		for _, name := range names {
			if r, ok := db[name]; ok {
				if err := r.ValidateDuplicateFree(); err != nil {
					return nil, err
				}
			}
		}
		opts.Validate = false // validated once; not per shard
	}

	// Partition every referenced relation; shard i of the database is the
	// i-th partition of each. Fact groups stay whole within one shard, so
	// the shard plans cover pairwise disjoint fact sets. The partitions
	// are freshly built and private, so unsorted inputs are handled by
	// sorting each shard's partitions in place — on the shard's own
	// goroutine, parallelizing the dominant sort cost exactly like
	// Apply — rather than letting BuildCursor clone every leaf a second
	// time (partitioning is stable, so sorted inputs yield sorted shards
	// and the sort pass is skipped entirely).
	// Partitioning hashes interned fact ids only when every referenced
	// relation is bound to one shared dictionary — otherwise the shard of
	// a fact would differ between relations and the per-shard plans would
	// no longer compute the query's restriction to disjoint fact sets.
	byID := true
	var shared *keys.Dict
	for _, name := range names {
		r, ok := db[name]
		if !ok {
			continue
		}
		if shared == nil {
			shared = r.Dict()
		}
		if r.Dict() == nil || r.Dict() != shared {
			byID = false
			break
		}
	}
	byID = byID && shared != nil

	shardDBs := make([]map[string]*relation.Relation, shards)
	for i := range shardDBs {
		shardDBs[i] = make(map[string]*relation.Relation, len(names))
	}
	for _, name := range names {
		r, ok := db[name]
		if !ok {
			// Let BuildCursor below produce the canonical error.
			continue
		}
		for i, part := range partition(r, shards, byID) {
			shardDBs[i][name] = part
		}
	}
	needSort := !opts.AssumeSorted
	opts.AssumeSorted = true // shard partitions are engine-private

	// Build every shard plan up front so plan errors surface synchronously.
	curs := make([]core.Cursor, shards)
	for i := range curs {
		c, err := query.BuildCursor(n, shardDBs[i], opts)
		if err != nil {
			return nil, err
		}
		curs[i] = c
	}

	// Producers run on dedicated goroutines rather than the engine's
	// pooled semaphore: the merge needs every shard's head tuple, so
	// admitting only Workers shards at a time could deadlock (a running
	// shard blocks on its full channel while an unstarted shard starves
	// the merge). The shard count is already sized from the worker budget,
	// and the bounded channels provide backpressure.
	chans := make([]chan relation.Tuple, shards)
	done := make(chan struct{})
	for i := range curs {
		ch := make(chan relation.Tuple, streamChanBuf)
		chans[i] = ch
		go func(c core.Cursor, sdb map[string]*relation.Relation, ch chan relation.Tuple) {
			defer close(ch)
			if needSort {
				// Scans hold the partition pointers, so sorting in place
				// before the first Next is safe and feeds them sorted.
				for _, part := range sdb {
					part.Sort()
				}
			}
			for {
				t, ok := c.Next()
				if !ok {
					return
				}
				select {
				case ch <- t:
				case <-done:
					return
				}
			}
		}(curs[i], shardDBs[i], ch)
	}

	m := &mergeStream{chans: chans}
	var once sync.Once
	return &StreamCursor{
		schema: curs[0].Schema(),
		next:   m.next,
		stop:   func() { once.Do(func() { close(done) }) },
	}, nil
}

// mergeStream k-way merges the shard channels by relation.Less. Each
// shard stream is itself in canonical order and the shards' fact sets are
// disjoint, so the merged sequence is the one global canonical order —
// exactly what mergeSorted produces for materialized shard outputs. A
// linear scan over the heads suffices for the engine's modest shard
// counts (cf. mergeSorted).
type mergeStream struct {
	chans  []chan relation.Tuple
	heads  []relation.Tuple
	primed bool
}

func (m *mergeStream) next() (relation.Tuple, bool) {
	if !m.primed {
		m.primed = true
		live := m.chans[:0]
		for _, ch := range m.chans {
			if t, ok := <-ch; ok {
				live = append(live, ch)
				m.heads = append(m.heads, t)
			}
		}
		m.chans = live
	}
	if len(m.chans) == 0 {
		return relation.Tuple{}, false
	}
	best := 0
	for i := 1; i < len(m.chans); i++ {
		if relation.Less(&m.heads[i], &m.heads[best]) {
			best = i
		}
	}
	out := m.heads[best]
	if t, ok := <-m.chans[best]; ok {
		m.heads[best] = t
	} else {
		last := len(m.chans) - 1
		m.chans[best] = m.chans[last]
		m.heads[best] = m.heads[last]
		m.chans = m.chans[:last]
		m.heads = m.heads[:last]
	}
	return out, true
}

// EvalCursor evaluates the query through the streaming plan and
// materializes only the final result — the cursor-executor form of
// EvalWith, used by the query service's non-streaming path.
func (e *Engine) EvalCursor(n query.Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	c, err := e.Cursor(n, db, opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return core.Materialize(c), nil
}
