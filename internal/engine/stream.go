package engine

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// Streaming (cursor-plan) execution. The engine composes with the cursor
// layer by partitioning the *leaf* relations once, by fact hash — exactly
// the Apply partitioning — and evaluating the whole query tree per
// partition as an independent streaming cursor plan: every TP set
// operation and selection is per-fact, so the query restricted to one
// fact partition equals the restriction of the query's result to those
// facts. Shard plans run on their own goroutines, feeding bounded
// channels, and a k-way merge over the channel heads (relation.Less, the
// Apply merge comparator) restores global canonical order incrementally.
//
// Memory: each shard plan is O(tree depth); the one materialized cost is
// the partitioned copy of the leaf relations (O(input), paid before any
// output). Inputs below the partitioning threshold skip that too and run
// the purely sequential cursor plan, which is O(tree depth) end to end.

// streamChanBuf is the per-shard channel buffer of the tuple-at-a-time
// path (Options.NoBatch): enough to decouple producer and consumer
// bursts, small enough that a stalled consumer bounds the tuples in
// flight to shards × streamChanBuf.
const streamChanBuf = 128

// batchChanBuf is the per-shard channel buffer of the batched path, in
// batches: two full blocks per shard decouple producer and consumer
// while bounding the tuples in flight to
// shards × batchChanBuf × core.BatchSize.
const batchChanBuf = 2

// rampBatchSize is the capacity of each shard's first block: small, so
// the merge's priming — which needs a head block from every shard —
// completes after a few sweep outputs per shard and the stream's first
// tuple is not delayed by full-block fills (see the producer loop).
const rampBatchSize = 64

// StreamCursor is a core.Cursor (and core.BatchCursor) over a whole
// query tree, evaluated sequentially or partition-parallel. Callers that
// do not drain it must Close it to release the shard goroutines; Close
// is idempotent and safe after full drains too.
type StreamCursor struct {
	schema    relation.Schema
	next      func() (relation.Tuple, bool) // nil on the batch-merge plan
	nextBatch func(*core.Batch) bool        // nil on the tuple-merge plan
	stop      func()

	// Adapter state: Next over a batch-producing plan drains blocks
	// through cur; NextBatch over a partially drained block serves the
	// remainder tuple-wise so the two pull styles can interleave.
	cur  *core.Batch
	ci   int
	done bool
}

// Schema returns the plan's output schema.
func (c *StreamCursor) Schema() relation.Schema { return c.schema }

// Next returns the next result tuple in canonical (fact, Ts, Te) order.
func (c *StreamCursor) Next() (relation.Tuple, bool) {
	if c.next != nil {
		return c.next()
	}
	for {
		if c.cur != nil && c.ci < len(c.cur.Tuples) {
			t := c.cur.Tuples[c.ci]
			c.ci++
			return t, true
		}
		if c.done {
			return relation.Tuple{}, false
		}
		if c.cur == nil {
			c.cur = core.GetBatch()
		}
		if !c.nextBatch(c.cur) {
			c.done = true
			core.PutBatch(c.cur)
			c.cur = nil
			return relation.Tuple{}, false
		}
		c.ci = 0
	}
}

// NextBatch fills b with the next block of result tuples; it implements
// core.BatchCursor, so Materialize and the NDJSON stream drain engine
// plans block-at-a-time.
func (c *StreamCursor) NextBatch(b *core.Batch) bool {
	if c.nextBatch != nil && (c.cur == nil || c.ci >= len(c.cur.Tuples)) {
		return c.nextBatch(b)
	}
	return core.FillBatch(b, c.Next)
}

// Close releases the plan's resources: shard producer goroutines and —
// on a partially drained batched plan — every pooled block still in
// flight (the adapter's current block, the merge's per-lane heads, and
// blocks the producers had queued on the shard channels). After Close,
// Next must not be called again.
func (c *StreamCursor) Close() {
	if c.stop != nil {
		c.stop()
	}
	c.done = true
	if c.cur != nil {
		core.PutBatch(c.cur)
		c.cur = nil
	}
}

// Cursor compiles the query into a streaming plan over db. With an input
// large enough to partition and a worker budget above one, the plan
// evaluates fact-hash shards of the query concurrently and merges their
// ordered outputs on the fly; otherwise it is the sequential cursor plan.
// Either way the stream is bit-identical to Eval's result, in the same
// canonical order, with no intermediate relation materialized.
func (e *Engine) Cursor(n query.Node, db map[string]*relation.Relation, opts core.Options) (*StreamCursor, error) {
	return e.CursorCtx(context.Background(), n, db, opts)
}

// CursorCtx is Cursor with a request context. The context carries two
// observability hooks: a cancellation signal — shard producers abandon
// their sweep when the context is cancelled (a streaming client that
// disconnects stops paying for shards it will never read) — and an
// optional request-scoped logger (obs.WithLogger), which makes shard
// producers emit per-shard debug records tagged with the request ID.
//
// Tracing: when opts.Span is set, the sequential plan threads it
// through query.BuildCursor as usual; the partitioned plan labels it as
// the k-way merge node, hangs one per-shard plan subtree under it
// (each a full traced cursor tree over that shard's partitions) and
// additionally records channel-stall time — producer time blocked on a
// full shard channel, merge time blocked waiting for a shard's next
// block.
func (e *Engine) CursorCtx(ctx context.Context, n query.Node, db map[string]*relation.Relation, opts core.Options) (*StreamCursor, error) {
	names := query.Relations(n)
	total := 0
	for _, name := range names {
		if r, ok := db[name]; ok {
			total += r.Len()
		}
	}
	shards := e.shardCount(total)
	if shards < 2 {
		c, err := query.BuildCursor(n, db, opts)
		if err != nil {
			return nil, err
		}
		sc := &StreamCursor{
			schema:    c.Schema(),
			next:      c.Next,
			nextBatch: core.AsBatchCursor(c).NextBatch,
			// Close on an abandoned sequential plan releases the pooled
			// blocks its operator buffers still hold.
			stop: func() { core.ReleaseCursor(c) },
		}
		if ctx.Done() != nil {
			sequentialCheckpoints(ctx, sc)
		}
		return sc, nil
	}

	if opts.Validate {
		for _, name := range names {
			if r, ok := db[name]; ok {
				if err := r.ValidateDuplicateFree(); err != nil {
					return nil, err
				}
			}
		}
		opts.Validate = false // validated once; not per shard
	}

	// Partition every referenced relation; shard i of the database is the
	// i-th partition of each. Fact groups stay whole within one shard, so
	// the shard plans cover pairwise disjoint fact sets. The partitions
	// are freshly built and private, so unsorted inputs are handled by
	// sorting each shard's partitions in place — on the shard's own
	// goroutine, parallelizing the dominant sort cost exactly like
	// Apply — rather than letting BuildCursor clone every leaf a second
	// time (partitioning is stable, so sorted inputs yield sorted shards
	// and the sort pass is skipped entirely).
	// Partitioning hashes interned fact ids only when every referenced
	// relation is bound to one shared dictionary — otherwise the shard of
	// a fact would differ between relations and the per-shard plans would
	// no longer compute the query's restriction to disjoint fact sets.
	byID := true
	var shared *keys.Dict
	for _, name := range names {
		r, ok := db[name]
		if !ok {
			continue
		}
		if shared == nil {
			shared = r.Dict()
		}
		if r.Dict() == nil || r.Dict() != shared {
			byID = false
			break
		}
	}
	byID = byID && shared != nil

	shardDBs := make([]map[string]*relation.Relation, shards)
	for i := range shardDBs {
		shardDBs[i] = make(map[string]*relation.Relation, len(names))
	}
	for _, name := range names {
		r, ok := db[name]
		if !ok {
			// Let BuildCursor below produce the canonical error.
			continue
		}
		for i, part := range partition(r, shards, byID) {
			shardDBs[i][name] = part
		}
	}
	needSort := !opts.AssumeSorted
	opts.AssumeSorted = true // shard partitions are engine-private

	// Build every shard plan up front so plan errors surface synchronously.
	// With tracing on, the request's span becomes the merge node and each
	// shard plan records into its own subtree beneath it.
	rootSp := opts.Span
	curs := make([]core.Cursor, shards)
	shardSpans := make([]*obs.Span, shards)
	for i := range curs {
		shardOpts := opts
		// A lineage.Cons is single-goroutine; shard plans run concurrently,
		// so each gets its own (BuildCursor seeds one when the field is nil).
		shardOpts.LineageCons = nil
		if rootSp != nil {
			shardSpans[i] = rootSp.NewChild("")
			shardOpts.Span = shardSpans[i]
		}
		c, err := query.BuildCursor(n, shardDBs[i], shardOpts)
		if err != nil {
			return nil, err
		}
		if rootSp != nil {
			shardSpans[i].PrefixOp(fmt.Sprintf("shard%d: ", i))
		}
		curs[i] = c
	}
	if rootSp != nil {
		rootSp.SetOp(fmt.Sprintf("merge[%d shards]", shards))
	}
	lg := obs.Logger(ctx)
	ctxDone := ctx.Done() // nil without a cancellable ctx: select case never fires

	// Producers run on dedicated goroutines rather than the engine's
	// pooled semaphore: the merge needs every shard's head tuple, so
	// admitting only Workers shards at a time could deadlock (a running
	// shard blocks on its full channel while an unstarted shard starves
	// the merge). The shard count is already sized from the worker budget,
	// and the bounded channels provide backpressure.
	done := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(done) }) }

	if opts.NoBatch {
		// Tuple-at-a-time shard channels — the pre-batching execution
		// stack, kept selectable for the batch-vs-tuple benchmark and
		// the cross-validation suite.
		chans := make([]chan relation.Tuple, shards)
		for i := range curs {
			ch := make(chan relation.Tuple, streamChanBuf)
			chans[i] = ch
			go func(i int, c core.Cursor, sdb map[string]*relation.Relation, ch chan relation.Tuple) {
				defer close(ch)
				defer core.ReleaseCursor(c) // symmetric with the batched path
				sp := shardSpans[i]
				start := time.Now()
				sent := 0
				if needSort {
					// Scans hold the partition pointers, so sorting in
					// place before the first Next is safe and feeds them
					// sorted.
					for _, part := range sdb {
						part.Sort()
					}
				}
				for {
					t, ok := c.Next()
					if !ok {
						logShardDrained(lg, ctx, i, sent, start)
						return
					}
					var sendStart time.Time
					if sp != nil {
						sendStart = time.Now()
					}
					select {
					case ch <- t:
						if sp != nil {
							sp.AddStall(time.Since(sendStart))
						}
						sent++
					case <-done:
						return
					case <-ctxDone:
						return
					}
				}
			}(i, curs[i], shardDBs[i], ch)
		}
		m := &mergeStream{chans: chans, sp: rootSp}
		next := m.next
		if rootSp != nil {
			next = func() (relation.Tuple, bool) {
				t0 := time.Now()
				t, ok := m.next()
				rootSp.AddWall(time.Since(t0))
				if ok {
					rootSp.AddTuples(1)
				}
				return t, ok
			}
		}
		return &StreamCursor{schema: curs[0].Schema(), next: next, stop: stop}, nil
	}

	// Batched shard channels: each producer fills pooled blocks of up to
	// core.BatchSize tuples and sends the block — one channel operation
	// (and at most one goroutine wakeup) per block instead of per tuple,
	// ~1000x fewer synchronization points on large streams. The merge
	// advances over the shard blocks' frontiers and emits blocks itself.
	chans := make([]chan *core.Batch, shards)
	for i := range curs {
		ch := make(chan *core.Batch, batchChanBuf)
		chans[i] = ch
		go func(i int, c core.BatchCursor, sdb map[string]*relation.Relation, ch chan *core.Batch) {
			defer close(ch)
			// On every exit — drained, cancelled, closed — tear the
			// shard plan down so operator-buffered pooled blocks go
			// back. Registered after close(ch), so it runs before it:
			// Close's channel drain observing the close also sees the
			// plan fully released.
			defer core.ReleaseCursor(c)
			sp := shardSpans[i]
			start := time.Now()
			sent := 0
			if needSort {
				// Scans hold the partition pointers, so sorting in place
				// before the first NextBatch is safe and feeds them
				// sorted.
				for _, part := range sdb {
					part.Sort()
				}
			}
			if !opts.NoSoA {
				// Project the shard's private partitions into columns on
				// the shard's own goroutine, before the first pull: leaf
				// scans then alias packed columns into their batches.
				// Partitions below the amortization threshold sweep on
				// the AoS view — see DefaultMinColsRows.
				for _, part := range sdb {
					if part.Len() >= e.cfg.minColsRows() {
						part.BuildCols()
					}
				}
			}
			// The first block is deliberately small: the downstream
			// merge cannot emit anything until every live shard has
			// delivered a head block, so a full-size first fill would
			// delay the stream's first tuple by shards × BatchSize
			// sweep outputs. Later blocks are full-size pooled ones.
			first := true
			for {
				// Bail out before acquiring the next block: once the
				// consumer closes the stream, a select between an
				// enabled send and a closed done channel picks
				// randomly, so without this check a producer could
				// keep winning the send race against Close's channel
				// drain and sweep the rest of its shard for nothing.
				select {
				case <-done:
					return
				case <-ctxDone:
					return
				default:
				}
				var b *core.Batch
				if first {
					b, first = core.NewBatch(rampBatchSize), false
				} else {
					b = core.GetBatch()
				}
				if !c.NextBatch(b) {
					core.PutBatch(b)
					logShardDrained(lg, ctx, i, sent, start)
					return
				}
				n := len(b.Tuples)
				var sendStart time.Time
				if sp != nil {
					sendStart = time.Now()
				}
				select {
				case ch <- b: // ownership moves to the merge
					if sp != nil {
						sp.AddStall(time.Since(sendStart))
					}
					sent += n
				case <-done:
					core.PutBatch(b)
					return
				case <-ctxDone:
					core.PutBatch(b)
					return
				}
			}
		}(i, core.AsBatchCursor(curs[i]), shardDBs[i], ch)
	}
	m := &mergeBatchStream{chans: chans, sp: rootSp}
	// Close on the batched plan also reclaims pooled blocks: the ones
	// the merge holds as lane heads and the ones the producers queued
	// or manage to send before observing done. The producers close
	// their channels on exit, which bounds the drain.
	stopBatch := func() {
		stop()
		m.release()
	}
	nextBatch := m.nextBatch
	if rootSp != nil {
		nextBatch = func(b *core.Batch) bool {
			t0 := time.Now()
			ok := m.nextBatch(b)
			rootSp.AddWall(time.Since(t0))
			if ok {
				rootSp.AddTuples(int64(len(b.Tuples)))
				rootSp.AddBatches(1)
			}
			return ok
		}
	}
	return &StreamCursor{schema: curs[0].Schema(), nextBatch: nextBatch, stop: stopBatch}, nil
}

// ctxCheckEvery is how many tuple-wise pulls pass between context
// checks on the sequential plan: frequent enough that a cancelled
// request stops within microseconds of real work, rare enough that the
// check is invisible next to the per-tuple sweep cost.
const ctxCheckEvery = 256

// sequentialCheckpoints threads cancellation into the sequential plan.
// The partitioned plan observes cancellation for free — its producers
// select on ctx.Done — but the sequential plan runs entirely on the
// caller's goroutine and would otherwise sweep to completion after the
// deadline fired. Checked once per NextBatch (a batch is already an
// amortization unit) and every ctxCheckEvery Next calls.
func sequentialCheckpoints(ctx context.Context, c *StreamCursor) {
	next, nextBatch := c.next, c.nextBatch
	if next != nil {
		calls := 0
		c.next = func() (relation.Tuple, bool) {
			if calls++; calls >= ctxCheckEvery {
				calls = 0
				if ctx.Err() != nil {
					return relation.Tuple{}, false
				}
			}
			return next()
		}
	}
	if nextBatch != nil {
		c.nextBatch = func(b *core.Batch) bool {
			if ctx.Err() != nil {
				return false
			}
			return nextBatch(b)
		}
	}
}

// logShardDrained emits the per-shard completion record of a producer
// goroutine — request-scoped debug logging, a no-op unless the caller
// attached a logger to the context (obs.WithLogger).
func logShardDrained(lg *slog.Logger, ctx context.Context, shard, tuples int, start time.Time) {
	if lg == nil {
		return
	}
	lg.LogAttrs(ctx, slog.LevelDebug, "shard drained",
		slog.Int("shard", shard),
		slog.Int("tuples", tuples),
		slog.Duration("elapsed", time.Since(start)))
}

// mergeStream k-way merges the shard channels by relation.Less. Each
// shard stream is itself in canonical order and the shards' fact sets are
// disjoint, so the merged sequence is the one global canonical order —
// exactly what mergeSorted produces for materialized shard outputs. A
// linear scan over the heads suffices for the engine's modest shard
// counts (cf. mergeSorted).
type mergeStream struct {
	chans  []chan relation.Tuple
	heads  []relation.Tuple
	primed bool
	sp     *obs.Span // nil unless traced: records merge-side channel stall
}

// recv pulls from ch, charging time blocked on the receive to the merge
// span's stall counter when traced.
func (m *mergeStream) recv(ch chan relation.Tuple) (relation.Tuple, bool) {
	if m.sp == nil {
		t, ok := <-ch
		return t, ok
	}
	start := time.Now()
	t, ok := <-ch
	m.sp.AddStall(time.Since(start))
	return t, ok
}

func (m *mergeStream) next() (relation.Tuple, bool) {
	if !m.primed {
		m.primed = true
		live := m.chans[:0]
		for _, ch := range m.chans {
			if t, ok := m.recv(ch); ok {
				live = append(live, ch)
				m.heads = append(m.heads, t)
			}
		}
		m.chans = live
	}
	if len(m.chans) == 0 {
		return relation.Tuple{}, false
	}
	best := 0
	for i := 1; i < len(m.chans); i++ {
		if relation.Less(&m.heads[i], &m.heads[best]) {
			best = i
		}
	}
	out := m.heads[best]
	if t, ok := m.recv(m.chans[best]); ok {
		m.heads[best] = t
	} else {
		last := len(m.chans) - 1
		m.chans[best] = m.chans[last]
		m.heads[best] = m.heads[last]
		m.chans = m.chans[:last]
		m.heads = m.heads[:last]
	}
	return out, true
}

// mergeBatchStream k-way merges the shard batch channels by
// relation.Less, advancing over the frontiers of the shards' current
// blocks. Tuple-wise it computes exactly the mergeStream order (the
// shards' fact sets are disjoint and each shard stream is sorted), but
// it touches a channel only once per consumed block and emits its
// output in blocks too, so the per-tuple cost of the merge is a
// three-integer compare plus a struct copy.
type mergeBatchStream struct {
	chans  []chan *core.Batch
	bs     []*core.Batch // current block per live shard
	is     []int         // read index into bs[i].Tuples
	primed bool
	sp     *obs.Span // nil unless traced: records merge-side channel stall
}

// recv pulls a block from ch, charging time blocked on the receive to
// the merge span's stall counter when traced.
func (m *mergeBatchStream) recv(ch chan *core.Batch) (*core.Batch, bool) {
	if m.sp == nil {
		b, ok := <-ch
		return b, ok
	}
	start := time.Now()
	b, ok := <-ch
	m.sp.AddStall(time.Since(start))
	return b, ok
}

// drop removes lane i after returning its block to the pool.
func (m *mergeBatchStream) drop(i int) {
	last := len(m.chans) - 1
	m.chans[i] = m.chans[last]
	m.bs[i] = m.bs[last]
	m.is[i] = m.is[last]
	m.chans = m.chans[:last]
	m.bs = m.bs[:last]
	m.is = m.is[:last]
}

// release returns every block the stream still owns to the pool after
// the producers have been told to stop: the per-lane head blocks, then
// whatever the producers had buffered on the shard channels (plus the
// few sends that race the shutdown — the drain runs until each producer
// closes its channel, so nothing slips through). Fully drained lanes
// were already dropped and their channels exhausted, so a release after
// a complete drain is a no-op, keeping Close idempotent either way.
func (m *mergeBatchStream) release() {
	for _, b := range m.bs {
		core.PutBatch(b)
	}
	m.bs = nil
	m.is = nil
	for _, ch := range m.chans {
		for b := range ch {
			core.PutBatch(b)
		}
	}
	m.chans = nil
}

// advance refills lane i after its block is consumed; the lane is
// dropped when its channel is closed.
func (m *mergeBatchStream) advance(i int) {
	core.PutBatch(m.bs[i])
	if b, ok := m.recv(m.chans[i]); ok {
		m.bs[i] = b
		m.is[i] = 0
		return
	}
	m.drop(i)
}

func (m *mergeBatchStream) nextBatch(out *core.Batch) bool {
	out.Reset()
	if !m.primed {
		m.primed = true
		live := m.chans[:0]
		for _, ch := range m.chans {
			if b, ok := m.recv(ch); ok {
				live = append(live, ch)
				m.bs = append(m.bs, b)
				m.is = append(m.is, 0)
			}
		}
		m.chans = live
	}
	max := out.Cap() // not cap(out.Tuples): honor the fill-target contract for zero batches
	for len(out.Tuples) < max && len(m.chans) > 0 {
		if len(m.chans) == 1 {
			// Single live lane: bulk-copy its block remainder, columns
			// included when the blocks share a dictionary.
			b, i := m.bs[0], m.is[0]
			n := len(b.Tuples) - i
			if room := max - len(out.Tuples); n > room {
				n = room
			}
			out.AppendRange(b, i, i+n)
			m.is[0] = i + n
			if m.is[0] == len(b.Tuples) {
				m.advance(0)
			}
			continue
		}
		best := 0
		for i := 1; i < len(m.chans); i++ {
			if core.BatchLess(m.bs[i], m.is[i], m.bs[best], m.is[best]) {
				best = i
			}
		}
		out.AppendRange(m.bs[best], m.is[best], m.is[best]+1)
		if m.is[best]++; m.is[best] == len(m.bs[best].Tuples) {
			m.advance(best)
		}
	}
	return len(out.Tuples) > 0
}

// EvalCursor evaluates the query through the streaming plan and
// materializes only the final result — the cursor-executor form of
// EvalWith, used by the query service's non-streaming path.
func (e *Engine) EvalCursor(n query.Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	return e.EvalCursorCtx(context.Background(), n, db, opts)
}

// EvalCursorCtx is EvalCursor with a request context — cancellation
// stops the shard producers early (the result is then truncated, so
// callers must check ctx.Err before trusting or caching it), and a
// context logger/request ID flows into the engine's debug records.
func (e *Engine) EvalCursorCtx(ctx context.Context, n query.Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	c, err := e.CursorCtx(ctx, n, db, opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return core.Materialize(c), nil
}
