package engine_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
)

// BenchmarkIntersect compares the sequential driver against the engine at
// several worker counts on a multi-fact input (~100 tuples per fact, the
// partitionable workload; see internal/bench's par-* experiments for the
// full sweeps).
func BenchmarkIntersect(b *testing.B) {
	const n = 100000
	r, s := datagen.FixedOverlapPair(n, n/100, 1)

	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Apply(core.OpIntersect, r, s, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		e := engine.New(engine.Config{Workers: w})
		b.Run(fmt.Sprintf("par-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Apply(core.OpIntersect, r, s, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
