package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// Cross-validation of the batched (vectorized) execution stack and the
// advancer's run-skipping: draining a plan batch-at-a-time — through
// any batch capacity, the engine's batched shard channels, or the
// tuple-adapter — must be BIT-IDENTICAL (same tuples, same lineage
// rendering, same probabilities, same canonical order) to the
// tuple-at-a-time cursor executor (Options.NoBatch) and to the
// materializing evaluator, with run-skipping on or off
// (Options.NoRunSkip). The suite runs under -race in CI, which also
// proves the zero-copy scan batches race-free against shared inputs.

// batchRandomDB builds a random database; offsetFacts shifts each
// relation's fact pool so consecutive relations overlap on only part of
// their fact universes — long absent runs, the run-skipping hot case.
func batchRandomDB(rng *rand.Rand, k, maxTuples, facts int, offsetFacts bool) map[string]*relation.Relation {
	db := make(map[string]*relation.Relation, k)
	for ri := 0; ri < k; ri++ {
		name := fmt.Sprintf("r%d", ri)
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		base := 0
		if offsetFacts {
			base = ri * facts / 2
		}
		for i := 0; i < n; i++ {
			f := fmt.Sprintf("f%03d", base+rng.Intn(facts))
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s_%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		rel.Sort()
		db[name] = rel
	}
	return db
}

// batchRandomTree is streamRandomTree plus selection nodes, so the
// batched selectCursor (filtered blocks, forwarded SkipTo) is under
// test too.
func batchRandomTree(rng *rand.Rand, names []string, leaves int) query.Node {
	if leaves <= 1 {
		var n query.Node = &query.Rel{Name: names[rng.Intn(len(names))]}
		if rng.Intn(4) == 0 {
			n = &query.Select{Input: n, Attr: "F", Value: fmt.Sprintf("f%03d", rng.Intn(24))}
		}
		return n
	}
	l := 1 + rng.Intn(leaves-1)
	return &query.SetOp{
		Op:    core.Op(rng.Intn(3)),
		Left:  batchRandomTree(rng, names, l),
		Right: batchRandomTree(rng, names, leaves-l),
	}
}

// drainBatches materializes a cursor through NextBatch with the given
// batch capacity, exercising mid-batch exhaustion (the last batch of a
// stream is almost always short) and, for capacity 1 and 2, constant
// block turnover.
func drainBatches(t *testing.T, c core.Cursor, capacity int) *relation.Relation {
	t.Helper()
	bc, ok := c.(core.BatchCursor)
	if !ok {
		t.Fatalf("cursor %T is not batch-capable", c)
	}
	out := relation.New(c.Schema())
	b := core.NewBatch(capacity)
	for bc.NextBatch(b) {
		if len(b.Tuples) == 0 {
			t.Fatal("NextBatch returned true with an empty batch")
		}
		if len(b.Tuples) > capacity {
			t.Fatalf("NextBatch produced %d tuples into a capacity-%d batch", len(b.Tuples), capacity)
		}
		out.Tuples = append(out.Tuples, b.Tuples...)
	}
	if bc.NextBatch(b) {
		t.Fatal("NextBatch returned true after exhaustion")
	}
	out.AdoptBinding()
	return out
}

// TestBatchedExecutionBitIdentical is the main sweep: random query
// trees (with selections) over partially fact-disjoint inputs, compared
// across the materializing evaluator, the tuple-at-a-time cursor
// executor, the batched executor at batch capacities 1/2/1024, and the
// engine's batched vs tuple shard channels at Workers=1/2/8 — with
// run-skipping both on and off.
func TestBatchedExecutionBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		db := batchRandomDB(rng, 2+rng.Intn(3), 120, 24, trial%2 == 0)
		names := query.DBKeys(db)
		tree := batchRandomTree(rng, names, 1+rng.Intn(4))
		ctx := func(s string) string { return fmt.Sprintf("trial %d (%s): %s", trial, tree, s) }

		// Reference: the pre-batching stack — tuple-at-a-time cursors,
		// no run-skipping.
		want, err := query.EvaluateCursor(tree, db, core.Options{NoBatch: true, NoRunSkip: true})
		if err != nil {
			t.Fatalf("%s: %v", ctx("reference"), err)
		}

		// Materializing evaluator (run-skipping on by default).
		got, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
		if err != nil {
			t.Fatalf("%s: %v", ctx("materializing"), err)
		}
		requireIdenticalStreams(t, ctx("materializing"), got, want)

		// Batched executor across batch capacities, skipping on and off.
		for _, capacity := range []int{1, 2, core.BatchSize} {
			for _, noSkip := range []bool{false, true} {
				c, err := query.BuildCursor(tree, db, core.Options{NoRunSkip: noSkip})
				if err != nil {
					t.Fatalf("%s: %v", ctx("build"), err)
				}
				got = drainBatches(t, c, capacity)
				requireIdenticalStreams(t,
					ctx(fmt.Sprintf("batched cap=%d noskip=%v", capacity, noSkip)), got, want)
			}
		}

		// Engine paths: batched shard channels vs tuple channels.
		for _, w := range []int{1, 2, 8} {
			e := New(Config{Workers: w, MinPartitionSize: 8, MinColsRows: 1})
			got, err = e.EvalCursor(tree, db, core.Options{})
			if err != nil {
				t.Fatalf("%s: %v", ctx(fmt.Sprintf("engine batched w=%d", w)), err)
			}
			requireIdenticalStreams(t, ctx(fmt.Sprintf("engine batched w=%d", w)), got, want)

			got, err = e.EvalCursor(tree, db, core.Options{NoBatch: true, NoRunSkip: true})
			if err != nil {
				t.Fatalf("%s: %v", ctx(fmt.Sprintf("engine tuple w=%d", w)), err)
			}
			requireIdenticalStreams(t, ctx(fmt.Sprintf("engine tuple w=%d", w)), got, want)
		}
	}
}

// TestBatchedInterleavedPulls pins that Next and NextBatch draw from one
// stream: alternating pulls see every tuple exactly once, in order.
func TestBatchedInterleavedPulls(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		db := batchRandomDB(rng, 2, 150, 16, trial%2 == 0)
		names := query.DBKeys(db)
		tree := batchRandomTree(rng, names, 2)
		want, err := query.EvaluateCursor(tree, db, core.Options{NoBatch: true, NoRunSkip: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		for _, w := range []int{1, 2} {
			cur, err := New(Config{Workers: w, MinPartitionSize: 8, MinColsRows: 1}).Cursor(tree, db, core.Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got := relation.New(cur.Schema())
			b := core.NewBatch(3)
			for {
				if rng.Intn(2) == 0 {
					tup, ok := cur.Next()
					if !ok {
						break
					}
					got.Tuples = append(got.Tuples, tup)
				} else {
					if !cur.NextBatch(b) {
						break
					}
					got.Tuples = append(got.Tuples, b.Tuples...)
				}
			}
			cur.Close()
			requireIdenticalStreams(t, fmt.Sprintf("trial %d (%s) interleaved w=%d", trial, tree, w), got, want)
		}
	}
}

// TestBatchedEarlyClose abandons batched streams mid-drain across worker
// counts; the shard producers must release without deadlock (the -race
// run additionally proves the teardown race-free), and Close must be
// idempotent.
func TestBatchedEarlyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		db := batchRandomDB(rng, 3, 400, 12, false)
		names := query.DBKeys(db)
		tree := batchRandomTree(rng, names, 3)
		for _, w := range []int{1, 2, 8} {
			cur, err := New(Config{Workers: w, MinPartitionSize: 8, MinColsRows: 1}).Cursor(tree, db, core.Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			b := core.GetBatch()
			for i := 0; i < 1+rng.Intn(3); i++ {
				if !cur.NextBatch(b) {
					break
				}
			}
			core.PutBatch(b)
			cur.Close()
			cur.Close() // idempotent
		}
	}
}

// TestBatchedEmptyInputs pins the degenerate shapes: empty relations on
// either or both sides of every operation, batched and tuple paths.
func TestBatchedEmptyInputs(t *testing.T) {
	empty := relation.New(relation.NewSchema("e", "F"))
	full := relation.New(relation.NewSchema("f", "F"))
	full.AddBase(relation.NewFact("a"), "x1", 0, 5, 0.5)
	full.AddBase(relation.NewFact("b"), "x2", 2, 9, 0.7)
	full.Sort()
	db := map[string]*relation.Relation{"e": empty, "f": full}

	for _, q := range []string{"e & f", "f & e", "e | f", "f | e", "e - f", "f - e", "e & e", "e | e", "e - e"} {
		tree := query.MustParse(q)
		want, err := query.EvaluateCursor(tree, db, core.Options{NoBatch: true, NoRunSkip: true})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		c, err := query.BuildCursor(tree, db, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := drainBatches(t, c, 4)
		requireIdenticalStreams(t, q, got, want)

		for _, w := range []int{1, 4} {
			got, err := New(Config{Workers: w, MinPartitionSize: 1, MinColsRows: 1}).EvalCursor(tree, db, core.Options{})
			if err != nil {
				t.Fatalf("%s w=%d: %v", q, w, err)
			}
			requireIdenticalStreams(t, fmt.Sprintf("%s engine w=%d", q, w), got, want)
		}
	}
}
