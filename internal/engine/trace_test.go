package engine

import (
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
)

// Golden trace-correctness tests: the per-operator counts of a traced
// plan must equal the operators' actual output, and tracing must never
// change the result stream itself.

// checkSpanInvariants walks a stats tree checking the structural
// invariants that hold for every traced plan: TuplesIn equals the sum
// of the children's TuplesOut, and a set-operation node never emits
// more tuples than the candidate windows its advancer popped (each
// window yields at most one output tuple).
func checkSpanInvariants(t *testing.T, st *obs.SpanStats) {
	t.Helper()
	var childOut int64
	for _, c := range st.Children {
		childOut += c.TuplesOut
		checkSpanInvariants(t, c)
	}
	if st.TuplesIn != childOut {
		t.Fatalf("node %q: tuplesIn = %d, want sum of children %d", st.Op, st.TuplesIn, childOut)
	}
	if st.Windows > 0 && st.TuplesOut > st.Windows {
		t.Fatalf("node %q: tuplesOut %d > windows %d", st.Op, st.TuplesOut, st.Windows)
	}
}

// TestTraceGoldenSequential pins exact per-node counts on a fixed
// union-only tree — unions drain both inputs completely, so every
// node's emission equals its subtree's full result — across the tuple
// and batch executors.
func TestTraceGoldenSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := streamRandomDB(rng, 3, 200, 24)
	tree := &query.SetOp{
		Op:    core.OpUnion,
		Left:  &query.SetOp{Op: core.OpUnion, Left: &query.Rel{Name: "r0"}, Right: &query.Rel{Name: "r1"}},
		Right: &query.Rel{Name: "r2"},
	}
	want, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := query.EvaluateWith(tree.Left, db, query.AlgoLAWA)
	if err != nil {
		t.Fatal(err)
	}

	for _, noBatch := range []bool{false, true} {
		span := obs.NewSpan("")
		got, err := New(Config{Workers: 1}).EvalCursor(tree, db,
			core.Options{Span: span, NoBatch: noBatch})
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalStreams(t, "traced sequential", got, want)

		st := span.Snapshot()
		checkSpanInvariants(t, st)
		if st.Op != "∪Tp" {
			t.Fatalf("root op = %q, want ∪Tp", st.Op)
		}
		if st.TuplesOut != int64(want.Len()) {
			t.Fatalf("noBatch=%v: root tuplesOut = %d, want %d", noBatch, st.TuplesOut, want.Len())
		}
		if len(st.Children) != 2 {
			t.Fatalf("root children = %d, want 2", len(st.Children))
		}
		left, right := st.Children[0], st.Children[1]
		if left.TuplesOut != int64(inner.Len()) {
			t.Fatalf("noBatch=%v: inner union tuplesOut = %d, want %d", noBatch, left.TuplesOut, inner.Len())
		}
		if right.Op != "scan(r2)" || right.TuplesOut != int64(db["r2"].Len()) {
			t.Fatalf("noBatch=%v: scan(r2) = %q/%d, want %d tuples", noBatch, right.Op, right.TuplesOut, db["r2"].Len())
		}
		for i, name := range []string{"r0", "r1"} {
			sc := left.Children[i]
			if sc.TuplesOut != int64(db[name].Len()) {
				t.Fatalf("noBatch=%v: scan(%s) tuplesOut = %d, want %d", noBatch, name, sc.TuplesOut, db[name].Len())
			}
		}
		if st.Windows == 0 || left.Windows == 0 {
			t.Fatalf("noBatch=%v: union nodes report no windows (%d, %d)", noBatch, st.Windows, left.Windows)
		}
	}
}

// TestTraceGoldenMixedOps runs a fixed tree with all three operations
// plus a selection: exact root count against the materializing
// evaluator, structural invariants everywhere, across executors.
func TestTraceGoldenMixedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := streamRandomDB(rng, 3, 300, 24)
	tree := &query.SetOp{
		Op: core.OpExcept,
		Left: &query.SetOp{
			Op:    core.OpUnion,
			Left:  &query.Rel{Name: "r0"},
			Right: &query.Select{Attr: "F", Value: "f003", Input: &query.Rel{Name: "r1"}},
		},
		Right: &query.SetOp{Op: core.OpIntersect, Left: &query.Rel{Name: "r1"}, Right: &query.Rel{Name: "r2"}},
	}
	want, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
	if err != nil {
		t.Fatal(err)
	}
	for _, noBatch := range []bool{false, true} {
		span := obs.NewSpan("")
		got, err := New(Config{Workers: 1}).EvalCursor(tree, db,
			core.Options{Span: span, NoBatch: noBatch})
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalStreams(t, "traced mixed", got, want)
		st := span.Snapshot()
		checkSpanInvariants(t, st)
		if st.Op != "−Tp" {
			t.Fatalf("root op = %q, want −Tp", st.Op)
		}
		if st.TuplesOut != int64(want.Len()) {
			t.Fatalf("noBatch=%v: root tuplesOut = %d, want %d", noBatch, st.TuplesOut, want.Len())
		}
	}
}

// TestTraceGoldenSharded pins the partitioned plan's trace across
// worker counts: the root (merge) node's emission equals the full
// result, every shard subtree satisfies the structural invariants, and
// the shards' root emissions sum to the result cardinality (shard fact
// sets are disjoint and exhaustive).
func TestTraceGoldenSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := streamRandomDB(rng, 3, 400, 32)
	tree := &query.SetOp{
		Op:    core.OpUnion,
		Left:  &query.SetOp{Op: core.OpExcept, Left: &query.Rel{Name: "r0"}, Right: &query.Rel{Name: "r1"}},
		Right: &query.Rel{Name: "r2"},
	}
	want, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		for _, noBatch := range []bool{false, true} {
			span := obs.NewSpan("")
			e := New(Config{Workers: workers, MinPartitionSize: 8})
			got, err := e.EvalCursor(tree, db, core.Options{Span: span, NoBatch: noBatch})
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalStreams(t, "traced sharded", got, want)
			st := span.Snapshot()
			checkSpanInvariants(t, st)
			if st.TuplesOut != int64(want.Len()) {
				t.Fatalf("workers=%d noBatch=%v: merge tuplesOut = %d, want %d",
					workers, noBatch, st.TuplesOut, want.Len())
			}
			if len(st.Children) < 2 {
				t.Fatalf("workers=%d: merge has %d shard subtrees, want >= 2", workers, len(st.Children))
			}
			// The merge's input is the shards' output: disjoint fact
			// partitions covering the whole result.
			if st.TuplesIn != int64(want.Len()) {
				t.Fatalf("workers=%d noBatch=%v: shard outputs sum to %d, want %d",
					workers, noBatch, st.TuplesIn, want.Len())
			}
		}
	}
}

// TestTraceGallopsRecorded pins that run-skipping sweeps surface their
// gallop counts in the trace: a highly fact-disjoint intersection takes
// SkipToKey gallops, and the trace must show them on the operator node.
func TestTraceGallopsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := streamRandomDB(rng, 2, 400, 200) // many facts, sparse overlap
	tree := &query.SetOp{Op: core.OpIntersect,
		Left: &query.Rel{Name: "r0"}, Right: &query.Rel{Name: "r1"}}
	span := obs.NewSpan("")
	if _, err := New(Config{Workers: 1}).EvalCursor(tree, db, core.Options{Span: span}); err != nil {
		t.Fatal(err)
	}
	st := span.Snapshot()
	if st.Gallops == 0 {
		t.Fatal("sparse intersection recorded no gallops")
	}
}
