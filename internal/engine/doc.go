// Package engine is the partition-parallel, pipelined execution engine for
// the TP set operations — an extension beyond the paper, exploiting the
// key property of the LAWA sweep (Algorithm 1): the window advancer for a
// fact group never inspects another fact's tuples, so ∪Tp, ∩Tp and −Tp
// decompose into independent per-fact subproblems.
//
// The engine runs the four-step pipeline of Fig. 5 in partitioned form:
//
//	hash-partition by fact → per-shard sort → per-shard LAWA+λ → merge
//
// Both inputs are hash-partitioned by fact key into K shards (every fact
// group lands wholly in one shard, so per-shard LAWA output is identical
// to the sequential computation restricted to those facts). Shards are
// sorted and swept concurrently on a bounded worker pool, and the sorted
// shard outputs are k-way merged back into the canonical (fact, Ts) order
// — the exact order the sequential drivers produce. Results are therefore
// tuple-for-tuple identical to core.Apply: same facts, same intervals,
// same lineage trees, same probabilities.
//
// Beyond single operations, Eval/EvalWith schedule independent subtrees of
// a parsed query.Node concurrently, replacing the strictly sequential
// post-order evaluation of package query; the engine registers itself as
// query's parallel evaluator at init time, so query.Evaluate routes
// through it whenever query.SetDefaultParallelism is above one. The query
// service (internal/server) drives EvalWith directly with per-request
// options.
//
// The streaming counterpart is Cursor/EvalCursor: the leaf relations are
// partitioned once, the whole query tree is evaluated per shard as an
// independent cursor plan on its own goroutine, and a k-way merge over
// bounded channels restores canonical order incrementally — no
// intermediate relations, same bit-identical output (see DESIGN.md,
// "Streaming execution").
//
// Concurrency invariants:
//
//   - Input relations are strictly read-only; partitioning hashes the
//     interned FactID (a side-effect-free read) when an operation's
//     inputs share one fact dictionary, and otherwise recomputes fact
//     keys rather than going through the lazily-caching Tuple.Key.
//   - An Engine is safe for concurrent use: all shard tasks and
//     sequential fallbacks of all concurrent operations share one bounded
//     semaphore, so a bushy tree cannot oversubscribe Config.Workers.
//
// See DESIGN.md ("The partition-parallel engine") and docs/PAPER_MAP.md.
package engine
