package engine

import (
	"fmt"
	"strings"
	"sync"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// init registers the engine as package query's parallel evaluator, so
// query.Evaluate routes through it whenever the process-wide default
// parallelism (query.SetDefaultParallelism) is above one. The indirection
// avoids the query→engine→query import cycle.
func init() {
	query.RegisterParallelEvaluator(func(n query.Node, db map[string]*relation.Relation, workers int) (*relation.Relation, error) {
		return New(Config{Workers: workers}).Eval(n, db)
	})
}

// Eval evaluates a parsed TP set query over named relations. Unlike the
// sequential post-order walk of query.EvaluateWith, independent subtrees
// of every set operation are scheduled concurrently, and each set
// operation itself runs partition-parallel through Apply. All concurrent
// work shares the engine's one worker pool, so a bushy tree cannot
// oversubscribe the configured budget. The result is identical to
// query.Evaluate — same tuples, lineage and probabilities.
func (e *Engine) Eval(n query.Node, db map[string]*relation.Relation) (*relation.Relation, error) {
	return e.EvalWith(n, db, core.Options{})
}

// EvalWith is Eval with explicit driver options, applied to every set
// operation of the tree (the query service uses it for its per-request
// LazyProb knob). AssumeSorted refers to the tree's *leaf* relations; the
// engine's own intermediate results are always sorted.
func (e *Engine) EvalWith(n query.Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	switch q := n.(type) {
	case *query.Rel:
		r, ok := db[q.Name]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q (have %s)",
				q.Name, strings.Join(query.DBKeys(db), ", "))
		}
		return r, nil
	case *query.Select:
		in, err := e.EvalWith(q.Input, db, opts)
		if err != nil {
			return nil, err
		}
		return query.ApplySelect(q, in)
	case *query.SetOp:
		// Evaluate the right subtree on a fresh goroutine while the left
		// runs on this one; shard tasks from both sides interleave on the
		// shared pool.
		var (
			right    *relation.Relation
			rightErr error
			wg       sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			right, rightErr = e.EvalWith(q.Right, db, opts)
		}()
		left, leftErr := e.EvalWith(q.Left, db, opts)
		wg.Wait()
		if leftErr != nil {
			return nil, leftErr
		}
		if rightErr != nil {
			return nil, rightErr
		}
		return e.Apply(q.Op, left, right, opts)
	}
	return nil, fmt.Errorf("engine: unknown node type %T", n)
}

// Eval is a convenience wrapper constructing a one-shot engine.
func Eval(n query.Node, db map[string]*relation.Relation, cfg Config) (*relation.Relation, error) {
	return New(cfg).Eval(n, db)
}
