package engine_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// TestConcurrentEvalStress runs many concurrent Apply and Eval calls over
// shared input relations through one shared engine. It is the -race canary
// for the subsystem: inputs must be treated as read-only, and the shared
// worker pool must serve interleaved operations without cross-talk.
// Outputs are checked against precomputed sequential results.
func TestConcurrentEvalStress(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r, s := randomRelations(rng, 2000, 37)
	db := map[string]*relation.Relation{"r": r, "s": s}
	q := query.MustParse("(r | s) - (r & s)")

	want := map[core.Op]*relation.Relation{}
	for _, op := range allOps {
		w, err := core.Apply(op, r, s, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[op] = w
	}
	wantQ, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}

	shared := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1})
	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Odd goroutines use their own engine so pool sharing and
			// engine construction are both exercised concurrently.
			e := shared
			if g%2 == 1 {
				e = engine.New(engine.Config{Workers: 2, MinPartitionSize: 1})
			}
			for i := 0; i < iters; i++ {
				op := allOps[(g+i)%len(allOps)]
				got, err := e.Apply(op, r, s, core.Options{})
				if err != nil {
					errc <- fmt.Errorf("g%d i%d %v: %v", g, i, op, err)
					return
				}
				if d := relation.Diff(got, want[op]); d != "" {
					errc <- fmt.Errorf("g%d i%d %v: %s", g, i, op, d)
					return
				}
				if i%3 == 0 {
					gotQ, err := e.Eval(q, db)
					if err != nil {
						errc <- fmt.Errorf("g%d i%d eval: %v", g, i, err)
						return
					}
					if d := relation.Diff(gotQ, wantQ); d != "" {
						errc <- fmt.Errorf("g%d i%d eval: %s", g, i, d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentSharedInputKeyCaching targets the lazy Tuple.Key caching
// hazard: tuples constructed as bare literals have no cached fact key, and
// the Validate and AssumeSorted paths must not race on filling it when
// concurrent operations share one input relation.
func TestConcurrentSharedInputKeyCaching(t *testing.T) {
	bare := func(name string, n int) *relation.Relation {
		rel := relation.New(relation.NewSchema(name, "F"))
		for i := 0; i < n; i++ {
			base := relation.NewBase(relation.NewFact(fmt.Sprintf("f%02d", i%20)), fmt.Sprintf("%s%d", name, i),
				interval.Time(i/20*10), interval.Time(i/20*10+5), 0.5)
			// Strip the cached key: struct-literal construction (external
			// loaders, tests) leaves it empty.
			rel.Add(relation.Tuple{Fact: base.Fact, Lineage: base.Lineage, T: base.T, Prob: base.Prob})
		}
		return rel
	}
	r, s := bare("r", 600), bare("s", 600)
	r.Sort()
	s.Sort()

	// Small worker budget and a tiny relation force the sequential
	// fallback; large MinPartitionSize keeps even 600 tuples below the
	// partitioning threshold.
	e := engine.New(engine.Config{Workers: 4, MinPartitionSize: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := core.Options{Validate: true}
			if g%2 == 0 {
				opts = core.Options{AssumeSorted: true}
			}
			if _, err := e.Apply(allOps[g%len(allOps)], r, s, opts); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
