package engine

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/relation"
)

// DefaultMinPartitionSize is the smallest average shard size worth the
// partitioning and goroutine overhead; inputs that cannot fill at least
// two shards of this size run on the sequential drivers unchanged.
const DefaultMinPartitionSize = 2048

// shardsPerWorker over-partitions relative to the worker count so that
// skewed fact-size distributions still balance: a worker that draws a
// heavy shard is compensated by others draining the light ones.
const shardsPerWorker = 4

// DefaultMinColsRows is the smallest shard partition worth projecting
// into columns. The projection is an O(rows) pass allocating five
// arrays per partition per query; its payoff — packed int64 compares
// touching one cache line per eight tuples instead of a ~100-byte
// struct stride — only materializes once the partition outgrows the
// cache levels that make the struct walk free. Below the threshold the
// shard sweeps run on the AoS view (interned compares are integer
// compares either way), and operator output batches still come out
// columnar for the encoder's read side, so serving loses nothing.
const DefaultMinColsRows = 16 << 10

// Config tunes the engine.
type Config struct {
	// Workers bounds the number of concurrently executing shard tasks.
	// Values below one select runtime.GOMAXPROCS(0).
	Workers int
	// MinPartitionSize is the minimum average number of input tuples per
	// shard; it throttles the shard count for small inputs and forces the
	// sequential path when the input cannot fill two shards. Values below
	// one select DefaultMinPartitionSize.
	MinPartitionSize int
	// MinColsRows is the minimum partition size worth the columnar
	// projection pass; smaller partitions sweep on the AoS view. Values
	// below one select DefaultMinColsRows (tests force 1 to pin the
	// columnar shard path on small inputs).
	MinColsRows int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) minPartitionSize() int {
	if c.MinPartitionSize > 0 {
		return c.MinPartitionSize
	}
	return DefaultMinPartitionSize
}

func (c Config) minColsRows() int {
	if c.MinColsRows > 0 {
		return c.MinColsRows
	}
	return DefaultMinColsRows
}

// Engine executes TP set operations and query trees with partition
// parallelism. An Engine is safe for concurrent use; the shard tasks and
// sequential fallbacks of all concurrent operations share one bounded
// worker pool, so the sweep work cannot oversubscribe the configured
// budget (only the partition and merge phases run unpooled on the
// calling goroutines).
type Engine struct {
	cfg Config
	sem chan struct{}
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, sem: make(chan struct{}, cfg.workers())}
}

// Apply computes op(r, s) with partition parallelism. The result is
// tuple-for-tuple identical to core.Apply(op, r, s, opts), in the same
// canonical (fact, Ts) order. Inputs below the partitioning threshold run
// on the sequential drivers directly.
func (e *Engine) Apply(op core.Op, r, s *relation.Relation, opts core.Options) (*relation.Relation, error) {
	if op != core.OpUnion && op != core.OpIntersect && op != core.OpExcept {
		return nil, fmt.Errorf("engine: unknown operation %v", op)
	}
	if !r.Schema.Compatible(s.Schema) {
		return nil, fmt.Errorf("engine: incompatible schemas %q (%d attrs) and %q (%d attrs)",
			r.Schema.Name, len(r.Schema.Attrs), s.Schema.Name, len(s.Schema.Attrs))
	}
	if opts.Validate {
		if err := r.ValidateDuplicateFree(); err != nil {
			return nil, err
		}
		if err := s.ValidateDuplicateFree(); err != nil {
			return nil, err
		}
		opts.Validate = false // already done; don't repeat per shard
	}

	// Both inputs bound to one fact dictionary means partitioning can
	// hash the interned FactID — an integer mix instead of a string hash
	// per tuple — while still landing every fact of r and s in aligned
	// shards.
	byID := r.Dict() != nil && r.Dict() == s.Dict()

	shards := e.shardCount(r.Len() + s.Len())
	if shards < 2 {
		if opts.AssumeSorted {
			// The sequential drivers run the advancer directly over
			// AssumeSorted inputs, and the advancer's lazy tuple-key
			// caching would race when concurrent operations share a
			// relation; hand them private copies instead.
			r, s = r.Clone(), s.Clone()
		}
		// Run under a pool slot: a query tree of many small operations
		// must not oversubscribe the Workers budget just because each one
		// falls back to the sequential driver. Safe to block here — the
		// calling goroutine never already holds a slot.
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		return core.Apply(op, r, s, opts)
	}

	rParts := partition(r, shards, byID)
	sParts := partition(s, shards, byID)

	outs := make([]*relation.Relation, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		rp, sp := rParts[i], sParts[i]
		if skipShard(op, rp, sp) {
			continue
		}
		wg.Add(1)
		go func(i int, rp, sp *relation.Relation) {
			defer wg.Done()
			e.sem <- struct{}{}
			defer func() { <-e.sem }()
			if !opts.AssumeSorted {
				rp.Sort()
				sp.Sort()
			}
			if !opts.NoSoA {
				// The partitions are engine-private and sorted; project
				// them into columns so the shard sweep runs on packed
				// int64 compares (prepare skips this under AssumeSorted).
				// Partitions below the amortization threshold sweep on
				// the AoS view instead — the projection pass would cost
				// more than the compares it accelerates.
				if rp.Len() >= e.cfg.minColsRows() {
					rp.BuildCols()
				}
				if sp.Len() >= e.cfg.minColsRows() {
					sp.BuildCols()
				}
			}
			shardOpts := opts
			shardOpts.AssumeSorted = true
			// A lineage.Cons is single-goroutine; shard sweeps run
			// concurrently, so none is shared across them.
			shardOpts.LineageCons = nil
			outs[i], errs[i] = core.Apply(op, rp, sp, shardOpts)
		}(i, rp, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := mergeSorted(core.OutSchema(op, r, s), outs)
	merged.AdoptBinding()
	return merged, nil
}

// Union computes r ∪Tp s with partition parallelism.
func (e *Engine) Union(r, s *relation.Relation) (*relation.Relation, error) {
	return e.Apply(core.OpUnion, r, s, core.Options{})
}

// Intersect computes r ∩Tp s with partition parallelism.
func (e *Engine) Intersect(r, s *relation.Relation) (*relation.Relation, error) {
	return e.Apply(core.OpIntersect, r, s, core.Options{})
}

// Except computes r −Tp s with partition parallelism.
func (e *Engine) Except(r, s *relation.Relation) (*relation.Relation, error) {
	return e.Apply(core.OpExcept, r, s, core.Options{})
}

// Apply is a convenience wrapper constructing a one-shot engine. The
// worker budget is taken from opts.Parallelism.
func Apply(op core.Op, r, s *relation.Relation, opts core.Options) (*relation.Relation, error) {
	return New(Config{Workers: opts.Parallelism}).Apply(op, r, s, opts)
}

// shardCount picks the number of shards for an input of total tuples:
// enough to keep every worker busy with slack for skew, but never so many
// that the average shard drops below the minimum partition size. A count
// below two means the input is not worth partitioning.
func (e *Engine) shardCount(total int) int {
	workers := e.cfg.workers()
	if workers <= 1 {
		return 1
	}
	shards := workers * shardsPerWorker
	if max := total / e.cfg.minPartitionSize(); shards > max {
		shards = max
	}
	return shards
}

// partition splits r into shards by fact hash. Every tuple of a fact
// lands in one shard, so fact groups stay whole, and the per-shard tuple
// order preserves the input order (a stable distribution: a sorted input
// yields sorted shards). With byID the hash is an integer mix of the
// interned FactID; the caller guarantees both inputs of the operation
// share one dictionary, so the shard assignment stays fact-aligned
// across relations.
//
// On the string path, fact keys are recomputed from the fact values
// rather than read through Tuple.Key, which lazily caches into the
// tuple — a write that would race when concurrent operations share an
// input relation (InternedID reads are race-free).
func partition(r *relation.Relation, shards int, byID bool) []*relation.Relation {
	parts := make([]*relation.Relation, shards)
	for i := range parts {
		parts[i] = relation.New(r.Schema)
	}
	// Pre-size by an even split to avoid repeated growth; skewed shards
	// re-grow as needed.
	per := r.Len()/shards + 1
	for i := range parts {
		parts[i].Tuples = make([]relation.Tuple, 0, per)
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		var h uint32
		if byID {
			id, _ := t.InternedID()
			h = uint32(keys.Mix64(uint64(id)))
		} else {
			h = fnv32a(t.Fact.Key())
		}
		p := parts[h%uint32(shards)]
		p.Tuples = append(p.Tuples, *t)
	}
	for i := range parts {
		parts[i].AdoptBinding()
	}
	return parts
}

// fnv32a is FNV-1a over the key string, inlined to keep the per-tuple
// partition loop allocation-free (hash/fnv would heap-allocate a hasher
// and a byte-slice copy per tuple).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// skipShard reports whether a shard can be skipped without running the
// advancer: its λ-filter can never pass. Union needs at least one side,
// intersection both, difference the left.
func skipShard(op core.Op, rp, sp *relation.Relation) bool {
	switch op {
	case core.OpIntersect:
		return rp.Len() == 0 || sp.Len() == 0
	case core.OpExcept:
		return rp.Len() == 0
	default:
		return rp.Len() == 0 && sp.Len() == 0
	}
}

// mergeSorted k-way merges shard outputs — each already in (fact, Ts)
// order, with pairwise disjoint fact sets — into one relation in global
// canonical order, the order the sequential drivers emit. Comparison is
// relation.Less, the same comparator relation.Sort uses (shard-output
// tuples are engine-private, so its lazy key caching cannot race); a
// linear scan over the shard heads suffices for the modest shard counts
// the engine uses.
func mergeSorted(schema relation.Schema, outs []*relation.Relation) *relation.Relation {
	merged := relation.New(schema)
	total := 0
	heads := make([]int, len(outs))
	live := outs[:0:0]
	for _, o := range outs {
		if o != nil && o.Len() > 0 {
			live = append(live, o)
			total += o.Len()
		}
	}
	merged.Tuples = make([]relation.Tuple, 0, total)
	heads = heads[:len(live)]
	for len(live) > 0 {
		best := 0
		bt := &live[0].Tuples[heads[0]]
		for i := 1; i < len(live); i++ {
			t := &live[i].Tuples[heads[i]]
			if relation.Less(t, bt) {
				best, bt = i, t
			}
		}
		merged.Tuples = append(merged.Tuples, *bt)
		heads[best]++
		if heads[best] == live[best].Len() {
			live[best] = live[len(live)-1]
			heads[best] = heads[len(live)-1]
			live = live[:len(live)-1]
			heads = heads[:len(heads)-1]
		}
	}
	return merged
}
