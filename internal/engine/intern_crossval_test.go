package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// Cross-validation of the interned key-codec representation: executing a
// query over dictionary-bound relations (integer fact compares in every
// sort, advancer sweep, partition step and k-way merge) must be
// BIT-IDENTICAL — same tuples, same lineage rendering, same
// probabilities, same canonical order — to executing it over unbound
// relations with interning disabled, which is exactly the pre-interning
// execution stack. Both executors (the materializing evaluator and the
// streaming cursor plan) and the partition-parallel engine at
// Workers=1/2/8 are pinned, for eager and lazy probability valuation.
// The suite runs under -race in CI, so the shared-dictionary reads are
// also proven race-free.

// internCrossDBs builds one random database in both representations:
// the as-generated unbound relations (string keys) and clones bound to
// one shared dictionary (as ingest/admission produces them).
func internCrossDBs(rng *rand.Rand) (dbStr, dbInt map[string]*relation.Relation, names []string) {
	dbStr = streamRandomDB(rng, 2+rng.Intn(3), 120, 24)
	dbInt = make(map[string]*relation.Relation, len(dbStr))
	var bound []*relation.Relation
	for name, r := range dbStr {
		c := r.Clone()
		dbInt[name] = c
		bound = append(bound, c)
	}
	relation.InternAll(bound...)
	return dbStr, dbInt, query.DBKeys(dbStr)
}

// TestInternedExecutionBitIdentical is the main cross-validation sweep:
// ≥100 random query trees, both executors, Workers=1/2/8, interned vs
// string representation.
func TestInternedExecutionBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	workerCounts := []int{1, 2, 8}
	for trial := 0; trial < 120; trial++ {
		dbStr, dbInt, names := internCrossDBs(rng)
		tree := streamRandomTree(rng, names, 1+rng.Intn(4))
		ctx := func(s string) string { return fmt.Sprintf("trial %d (%s): %s", trial, tree, s) }

		// Reference: the pre-interning stack — unbound relations, interning
		// disabled, sequential cursor executor.
		want, err := query.EvaluateCursor(tree, dbStr, core.Options{NoIntern: true})
		if err != nil {
			t.Fatalf("%s: %v", ctx("string reference"), err)
		}

		// Sequential cursor executor, interned.
		got, err := query.EvaluateCursor(tree, dbInt, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ctx("interned cursor"), err)
		}
		requireIdenticalStreams(t, ctx("interned cursor"), got, want)

		// Materializing evaluator, interned.
		got, err = query.EvaluateWith(tree, dbInt, query.AlgoLAWA)
		if err != nil {
			t.Fatalf("%s: %v", ctx("interned materializing"), err)
		}
		requireIdenticalStreams(t, ctx("interned materializing"), got, want)

		for _, w := range workerCounts {
			e := New(Config{Workers: w, MinPartitionSize: 8})

			// Partition-parallel engine over interned relations: leaf
			// partitioning hashes FactIDs, shard merge compares packed keys.
			got, err = e.EvalCursor(tree, dbInt, core.Options{})
			if err != nil {
				t.Fatalf("%s: %v", ctx(fmt.Sprintf("interned stream w=%d", w)), err)
			}
			requireIdenticalStreams(t, ctx(fmt.Sprintf("interned stream w=%d", w)), got, want)

			got, err = e.EvalWith(tree, dbInt, core.Options{})
			if err != nil {
				t.Fatalf("%s: %v", ctx(fmt.Sprintf("interned apply w=%d", w)), err)
			}
			requireIdenticalStreams(t, ctx(fmt.Sprintf("interned apply w=%d", w)), got, want)

			// And the engine over the string representation (NoIntern):
			// string-hash partitioning, string-compare merges.
			got, err = e.EvalWith(tree, dbStr, core.Options{NoIntern: true})
			if err != nil {
				t.Fatalf("%s: %v", ctx(fmt.Sprintf("string apply w=%d", w)), err)
			}
			requireIdenticalStreams(t, ctx(fmt.Sprintf("string apply w=%d", w)), got, want)
		}
	}
}

// TestInternedExecutionLazyProb pins the LazyProb variant: lineage and
// intervals identical across representations, probabilities unvaluated.
func TestInternedExecutionLazyProb(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		dbStr, dbInt, names := internCrossDBs(rng)
		tree := streamRandomTree(rng, names, 1+rng.Intn(4))
		want, err := query.EvaluateCursor(tree, dbStr, core.Options{NoIntern: true, LazyProb: true})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, tree, err)
		}
		got, err := query.EvaluateCursor(tree, dbInt, core.Options{LazyProb: true})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, tree, err)
		}
		requireIdenticalStreams(t, fmt.Sprintf("trial %d (%s) lazy", trial, tree), got, want)
	}
}

// TestInternedAssumeSorted pins the query-service shape: pre-sorted,
// catalog-style dictionary-bound relations evaluated with AssumeSorted
// against the string reference.
func TestInternedAssumeSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		dbStr, dbInt, names := internCrossDBs(rng)
		for _, r := range dbInt {
			r.Sort()
		}
		tree := streamRandomTree(rng, names, 1+rng.Intn(4))
		want, err := query.EvaluateCursor(tree, dbStr, core.Options{NoIntern: true})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, tree, err)
		}
		for _, w := range []int{1, 8} {
			e := New(Config{Workers: w, MinPartitionSize: 8})
			got, err := e.EvalCursor(tree, dbInt, core.Options{AssumeSorted: true})
			if err != nil {
				t.Fatalf("trial %d (%s) w=%d: %v", trial, tree, w, err)
			}
			requireIdenticalStreams(t, fmt.Sprintf("trial %d (%s) assume-sorted w=%d", trial, tree, w), got, want)
		}
	}
}
