package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// streamRandomDB mirrors the query package's cross-validation generator:
// random duplicate-free relations over a shared fact pool.
func streamRandomDB(rng *rand.Rand, k, maxTuples, facts int) map[string]*relation.Relation {
	db := make(map[string]*relation.Relation, k)
	for ri := 0; ri < k; ri++ {
		name := fmt.Sprintf("r%d", ri)
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		for i := 0; i < n; i++ {
			f := fmt.Sprintf("f%03d", rng.Intn(facts))
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s_%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		rel.Sort()
		db[name] = rel
	}
	return db
}

func streamRandomTree(rng *rand.Rand, names []string, leaves int) query.Node {
	if leaves <= 1 {
		return &query.Rel{Name: names[rng.Intn(len(names))]}
	}
	l := 1 + rng.Intn(leaves-1)
	return &query.SetOp{
		Op:    core.Op(rng.Intn(3)),
		Left:  streamRandomTree(rng, names, l),
		Right: streamRandomTree(rng, names, leaves-l),
	}
}

func requireIdenticalStreams(t *testing.T, ctx string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: cardinality %d, want %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := &got.Tuples[i], &want.Tuples[i]
		if !g.Fact.Equal(w.Fact) || g.T != w.T ||
			g.Lineage.String() != w.Lineage.String() || g.Prob != w.Prob {
			t.Fatalf("%s: tuple %d: got %s, want %s", ctx, i, g, w)
		}
	}
}

// TestStreamCursorMatchesEval cross-validates the partitioned streaming
// plan against the materializing evaluator across worker counts: output
// must be bit-identical, in the same canonical order. MinPartitionSize is
// forced low so modest inputs actually take the partition-parallel path.
func TestStreamCursorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		db := streamRandomDB(rng, 2+rng.Intn(3), 120, 24)
		names := query.DBKeys(db)
		tree := streamRandomTree(rng, names, 1+rng.Intn(4))
		want, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, tree, err)
		}
		for _, workers := range []int{1, 2, 8} {
			e := New(Config{Workers: workers, MinPartitionSize: 8})
			got, err := e.EvalCursor(tree, db, core.Options{})
			if err != nil {
				t.Fatalf("trial %d (%s) workers=%d: %v", trial, tree, workers, err)
			}
			requireIdenticalStreams(t,
				fmt.Sprintf("trial %d (%s) workers=%d", trial, tree, workers), got, want)
		}
	}
}

// TestStreamCursorAssumeSorted pins the query-service path: pre-sorted
// catalog relations streamed with AssumeSorted must match EvalWith.
func TestStreamCursorAssumeSorted(t *testing.T) {
	r, s := datagen.FixedOverlapPair(6000, 40, 7)
	r.Sort()
	s.Sort()
	db := map[string]*relation.Relation{"r": r, "s": s}
	tree := query.MustParse("(r & s) | (r - s)")
	e := New(Config{Workers: 4})
	want, err := e.EvalWith(tree, db, core.Options{AssumeSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalCursor(tree, db, core.Options{AssumeSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalStreams(t, "assume-sorted", got, want)
}

// TestStreamCursorEarlyClose abandons a partitioned stream after a few
// tuples; Close must release the shard producers without deadlock (the
// -race build additionally checks the shutdown for races), and a second
// Close must be a no-op.
func TestStreamCursorEarlyClose(t *testing.T) {
	db := streamRandomDB(rand.New(rand.NewSource(52)), 2, 4000, 64)
	tree := query.MustParse("(r0 | r1) & r0")
	e := New(Config{Workers: 4, MinPartitionSize: 8})
	cur, err := e.Cursor(tree, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatal("stream ended before 5 tuples")
		}
	}
	cur.Close()
	cur.Close()
}

// TestStreamCursorClosePoolBalance pins the teardown side of the batch
// pool's ownership discipline: abandoning a partitioned batched stream
// mid-drain must return every pooled block to the pool — the adapter's
// current block, the merge's lane heads, the blocks queued on shard
// channels, and the producers' in-flight blocks. Close drains until the
// producers close their channels, so the pool account must balance the
// moment it returns: the gets taken since the cursor was built all come
// back as puts (full-capacity blocks) — ramp blocks enter as news-free
// NewBatch allocations and leave through the drop counter, never
// through gets.
func TestStreamCursorClosePoolBalance(t *testing.T) {
	db := streamRandomDB(rand.New(rand.NewSource(54)), 2, 6000, 64)
	tree := query.MustParse("(r0 | r1) & r0")
	e := New(Config{Workers: 4, MinPartitionSize: 8})

	for _, pull := range []string{"tuple", "batch", "none"} {
		gets0, puts0, _, _ := core.BatchPoolStats()
		cur, err := e.Cursor(tree, db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		switch pull {
		case "tuple":
			for i := 0; i < 5; i++ {
				if _, ok := cur.Next(); !ok {
					t.Fatal("stream ended before 5 tuples")
				}
			}
		case "batch":
			b := core.GetBatch()
			if !cur.NextBatch(b) {
				t.Fatal("stream produced no batch")
			}
			core.PutBatch(b)
		}
		cur.Close()
		cur.Close() // idempotent, including the pool drain
		gets1, puts1, _, _ := core.BatchPoolStats()
		if gets1-gets0 != puts1-puts0 {
			t.Fatalf("pull=%s: pool unbalanced after Close: %d gets vs %d puts",
				pull, gets1-gets0, puts1-puts0)
		}
	}
}

// TestStreamCursorBuildErrors pins synchronous plan-error surfacing on
// the partitioned path.
func TestStreamCursorBuildErrors(t *testing.T) {
	db := streamRandomDB(rand.New(rand.NewSource(53)), 1, 50, 8)
	e := New(Config{Workers: 4, MinPartitionSize: 8})
	if _, err := e.Cursor(query.MustParse("r0 & zz"), db, core.Options{}); err == nil {
		t.Fatal("unknown relation must fail at plan time")
	}
}
