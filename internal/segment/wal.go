package segment

import (
	"encoding/binary"
	"hash/crc32"
)

// The write-ahead log makes a PUT durable before its segment file
// exists: the record is appended and fsynced — that fsync is the
// acknowledgement point — and the segment rewrite (tmp + fsync +
// rename-into-place) happens at the next apply. Replay on open applies
// whatever the log still holds and then truncates it, so a crash at
// any point between acknowledgement and apply loses nothing.
//
// One record:
//
//	u64 seq | u8 op | u16 nameLen | name | u64 payloadLen | payload | u32 crc32c
//
// with the CRC over everything before it. Replay accepts the longest
// valid prefix: a short, corrupt or sequence-breaking record and
// everything after it is discarded as a torn tail (bytes past the last
// acknowledged fsync are by definition unacknowledged).
const (
	opPut  = 1
	opDrop = 2
	// opNoop is the degraded-recovery probe: appended by TryRecover to
	// prove the append+fsync path works again. It mutates nothing at
	// replay but occupies a sequence number like any record.
	opNoop = 3
)

type walRecord struct {
	seq     uint64
	op      byte
	name    string
	payload []byte
}

// encodeRecord renders one WAL record.
func encodeRecord(seq uint64, op byte, name string, payload []byte) []byte {
	n := 8 + 1 + 2 + len(name) + 8 + len(payload) + 4
	buf := make([]byte, n)
	binary.LittleEndian.PutUint64(buf, seq)
	buf[8] = op
	binary.LittleEndian.PutUint16(buf[9:], uint16(len(name)))
	copy(buf[11:], name)
	p := 11 + len(name)
	binary.LittleEndian.PutUint64(buf[p:], uint64(len(payload)))
	copy(buf[p+8:], payload)
	binary.LittleEndian.PutUint32(buf[n-4:], crc32.Checksum(buf[:n-4], castagnoli))
	return buf
}

// replayWAL parses the longest valid record prefix of data. Records
// must carry consecutive sequence numbers starting at 1 — the log is
// always truncated after apply, so any other shape is a torn or stale
// tail.
func replayWAL(data []byte) []walRecord {
	var recs []walRecord
	off := 0
	for {
		rest := data[off:]
		if len(rest) < 8+1+2 {
			return recs
		}
		seq := binary.LittleEndian.Uint64(rest)
		if seq != uint64(len(recs))+1 {
			return recs
		}
		op := rest[8]
		if op != opPut && op != opDrop && op != opNoop {
			return recs
		}
		nameLen := int(binary.LittleEndian.Uint16(rest[9:]))
		p := 11 + nameLen
		if len(rest) < p+8 {
			return recs
		}
		payloadLen64 := binary.LittleEndian.Uint64(rest[p:])
		if payloadLen64 > uint64(len(rest)) {
			return recs
		}
		payloadLen := int(payloadLen64)
		n := p + 8 + payloadLen + 4
		if len(rest) < n {
			return recs
		}
		if crc32.Checksum(rest[:n-4], castagnoli) != binary.LittleEndian.Uint32(rest[n-4:]) {
			return recs
		}
		recs = append(recs, walRecord{
			seq:     seq,
			op:      op,
			name:    string(rest[11:p]),
			payload: rest[p+8 : p+8+payloadLen],
		})
		off += n
	}
}
