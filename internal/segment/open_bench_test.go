package segment

import (
	"testing"
)

// BenchmarkOpenStore measures the restart cold-open path against a
// cleanly closed two-relation data dir: WAL inspection, mmap, decode and
// validation for every segment.
func BenchmarkOpenStore(b *testing.B) {
	dir := b.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put("r", testRelation(b, "r", 20000), nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Put("s", testRelation(b, "s", 20000), nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore measures catalog materialization over an open store:
// tuple reconstruction and column aliasing for every segment.
func BenchmarkRestore(b *testing.B) {
	dir := b.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put("r", testRelation(b, "r", 20000), nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Put("s", testRelation(b, "s", 20000), nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	st, err = OpenStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Restore(); err != nil {
			b.Fatal(err)
		}
	}
}
