package segment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// testRelation builds a sorted, interned, duplicate-free relation with
// multi-attribute facts (including values containing the key separator
// byte, exercising the escaped fact-key encoding) and varied
// probabilities.
func testRelation(tb testing.TB, name string, n int) *relation.Relation {
	tb.Helper()
	r := relation.New(relation.NewSchema(name, "obj", "loc"))
	for i := 0; i < n; i++ {
		fact := relation.NewFact(fmt.Sprintf("obj%03d", i%7), fmt.Sprintf("loc\x1f%d", i%5))
		r.AddBase(fact, fmt.Sprintf("x%d", i), int64(10*i), int64(10*i+5), 0.25+0.5*float64(i%3)/3)
	}
	r.Intern()
	r.Sort()
	return r
}

// reopen decodes data and materializes it against its own dictionary,
// the alias path every uniform-generation restore takes.
func reopen(tb testing.TB, data []byte) (*File, *relation.Relation) {
	tb.Helper()
	f, err := Decode(data)
	if err != nil {
		tb.Fatalf("Decode: %v", err)
	}
	rel, err := f.Relation(keys.FromSorted(f.Keys))
	if err != nil {
		tb.Fatalf("Relation: %v", err)
	}
	return f, rel
}

func TestRoundTripByteIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 23} {
		r := testRelation(t, "trips", n)
		data, err := Encode(r)
		if err != nil {
			t.Fatalf("Encode(n=%d): %v", n, err)
		}
		f, rel := reopen(t, data)
		if f.N != n || rel.Len() != n {
			t.Fatalf("n=%d: decoded %d rows, materialized %d", n, f.N, rel.Len())
		}
		if !relation.Equal(r, rel) {
			t.Fatalf("n=%d: restored relation differs: %s", n, relation.Diff(r, rel))
		}
		if !rel.Frozen() {
			t.Fatalf("restored relation not frozen")
		}
		if rel.Cols() == nil {
			t.Fatalf("restored relation has no columnar projection")
		}
		data2, err := Encode(rel)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("n=%d: write→open→write not byte-identical (%d vs %d bytes)", n, len(data), len(data2))
		}
	}
}

func TestLineageDAGSharingSurvives(t *testing.T) {
	a, b := lineage.Var("a", 0.5), lineage.Var("b", 0.25)
	shared := lineage.And(a, lineage.Not(b))
	r := relation.New(relation.NewSchema("dag", "f"))
	r.Add(relation.NewDerived(relation.NewFact("f1"), shared, interval.New(0, 5)))
	r.Add(relation.NewDerived(relation.NewFact("f2"), lineage.Or(shared, a), interval.New(2, 9)))
	r.Intern()
	r.Sort()
	data, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	f, _ := reopen(t, data)
	l1, l2 := f.Lam[0], f.Lam[1] // sorted: f1 before f2
	left, _ := l2.Operands()
	if left != l1 {
		t.Fatalf("decoded lineage lost DAG sharing: f2's left operand is not f1's node")
	}
	// The shared-var leaf dedups too: f1's left child and f2's right
	// child are one arena node.
	v1, _ := l1.Operands()
	_, v2 := l2.Operands()
	if v1 != v2 {
		t.Fatalf("decoded lineage duplicated a shared variable leaf")
	}
}

func TestNilLineageRoundTrips(t *testing.T) {
	r := relation.New(relation.NewSchema("nil", "f"))
	tu := relation.NewDerivedLazy(relation.NewFact("f1"), lineage.Var("a", 0.5), interval.New(0, 5))
	r.Add(tu)
	r.Add(relation.Tuple{Fact: relation.NewFact("f2"), T: interval.New(1, 3), Prob: 0.5})
	r.Intern()
	r.Sort()
	data, err := Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	f, _ := reopen(t, data)
	if f.Lam[0] == nil || f.Lam[1] != nil {
		t.Fatalf("nil lineage did not round-trip: %v, %v", f.Lam[0], f.Lam[1])
	}
	if data2, _ := Encode(mustRelation(t, f)); !bytes.Equal(data, data2) {
		t.Fatalf("nil-lineage segment not byte-stable")
	}
}

func mustRelation(tb testing.TB, f *File) *relation.Relation {
	tb.Helper()
	rel, err := f.Relation(keys.FromSorted(f.Keys))
	if err != nil {
		tb.Fatalf("Relation: %v", err)
	}
	return rel
}

// Every single-byte flip lands inside one of the two checksum domains,
// so decode must reject all of them — and name an offset while at it.
func TestEveryByteFlipRejected(t *testing.T) {
	data, err := Encode(testRelation(t, "flip", 4))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		f, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		if f != nil {
			t.Fatalf("flip at byte %d returned a file alongside the error", i)
		}
		if !strings.HasPrefix(err.Error(), "segment:") {
			t.Fatalf("flip at byte %d: error lacks segment: prefix: %v", i, err)
		}
	}
}

func TestEveryTruncationRejected(t *testing.T) {
	data, err := Encode(testRelation(t, "trunc", 4))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !strings.HasPrefix(err.Error(), "segment:") {
			t.Fatalf("truncation to %d: error lacks segment: prefix: %v", n, err)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation to %d: error does not name an offset: %v", n, err)
		}
	}
}

func TestRestoredRelationIsReadOnly(t *testing.T) {
	data, err := Encode(testRelation(t, "ro", 6))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	_, rel := reopen(t, data)
	mustPanic(t, "Sort", func() { rel.Sort() })
	mustPanic(t, "Add", func() { rel.Add(relation.Tuple{}) })
	mustPanic(t, "Unbind", func() { rel.Unbind() })
	mustPanic(t, "BuildCols", func() { rel.BuildCols() })
	// Clone is the sanctioned escape hatch: unfrozen, mutable, equal.
	c := rel.Clone()
	if c.Frozen() {
		t.Fatalf("clone of frozen relation is frozen")
	}
	c.Sort()
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s on frozen relation did not panic", name)
		}
	}()
	fn()
}

// A crash can interleave segment generations: a relation written under
// an older, smaller dictionary must still restore correctly against
// the union dictionary (rebound by key — the heal path), while
// same-generation segments keep their id-aliased columns.
func TestMixedDictionaryGenerationsHeal(t *testing.T) {
	r1 := testRelation(t, "old", 9)
	data1, err := Encode(r1) // r1's private dictionary
	if err != nil {
		t.Fatalf("Encode r1: %v", err)
	}
	r2 := testRelation(t, "new", 5)
	union := relation.InternAll(r1.Clone(), r2) // r2 now bound to the union
	r2.Sort()
	data2, err := Encode(r2)
	if err != nil {
		t.Fatalf("Encode r2: %v", err)
	}
	f1, err := Decode(data1)
	if err != nil {
		t.Fatalf("Decode r1: %v", err)
	}
	f2, err := Decode(data2)
	if err != nil {
		t.Fatalf("Decode r2: %v", err)
	}
	got1, err := f1.Relation(union)
	if err != nil {
		t.Fatalf("heal r1: %v", err)
	}
	got2, err := f2.Relation(union)
	if err != nil {
		t.Fatalf("alias r2: %v", err)
	}
	if !relation.Equal(r1, got1) {
		t.Fatalf("healed relation differs: %s", relation.Diff(r1, got1))
	}
	if !relation.Equal(r2, got2) {
		t.Fatalf("aliased relation differs: %s", relation.Diff(r2, got2))
	}
	if got1.Cols() == nil || got2.Cols() == nil {
		t.Fatalf("restored relations lack columns")
	}
	if got1.Dict() != union || got2.Dict() != union {
		t.Fatalf("restored relations not bound to the union dictionary")
	}
}
