package segment

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/relation"
)

// walFileName is the per-catalog write-ahead log inside the data dir.
const walFileName = "wal.log"

// defaultApplyThreshold is how many WAL bytes may accumulate before a
// Put applies pending segment rewrites synchronously. Below it, Put
// returns right after the WAL fsync — the acknowledgement point — and
// the rewrite cost is paid in the background of a later call, Flush,
// or replay.
const defaultApplyThreshold = 4 << 20

// ErrDegraded marks a mutation rejected because the store has latched
// degraded after a durability failure. Reads (the already-restored
// catalog, existing mappings) remain valid; only new acknowledgements
// are refused until TryRecover repairs the write path.
var ErrDegraded = errors.New("segment: store is degraded")

// WALError wraps a WAL append/fsync failure. A mutation returning it
// was NOT acknowledged — nothing of it is durable — and the store has
// latched degraded: a torn half-record may now sit in the log, and any
// further append behind it would be unreachable at replay, so all
// mutations are refused until TryRecover truncates the log cleanly.
type WALError struct {
	Err error
}

func (e *WALError) Error() string { return fmt.Sprintf("segment: wal write failed: %v", e.Err) }
func (e *WALError) Unwrap() error { return e.Err }

// Store is the durable tier of one catalog: a directory of one segment
// file per relation plus the WAL. All methods are safe for concurrent
// use; relations handed to Put must be the catalog's immutable admitted
// pointers (the store reads them again at apply time).
//
// Mappings opened during Restore stay mapped until Close even when
// their relation is later replaced or dropped — in-flight query
// snapshots may still read the aliased columns — so Close must only
// run once serving has stopped.
type Store struct {
	dir  string
	fsys faultfs.FS

	mu             sync.Mutex
	wal            faultfs.File
	walSize        int64
	seq            uint64
	pending        map[string]pendingOp
	files          []*File
	applyThreshold int64
	degraded       error // non-nil = degraded, holding the root cause
	walErrors      uint64
}

// pendingOp is one not-yet-applied catalog mutation. payload carries
// the WAL-recorded segment bytes for the triggering Put; rebound
// rewrites (dictionary-rebuild fallout) have no WAL record — their
// old segments remain durable and a crash merely leaves mixed
// dictionary generations, which Restore heals — so they are encoded
// lazily at apply time.
type pendingOp struct {
	drop    bool
	rel     *relation.Relation
	payload []byte
}

// segFileName maps a relation name to its segment file name; escaping
// keeps arbitrary relation names (path separators included) inside the
// data dir.
func segFileName(name string) string { return url.PathEscape(name) + ".seg" }

// OpenFile maps (or, off unix, reads) and decodes one segment file.
func OpenFile(path string) (*File, error) {
	return OpenFileFS(faultfs.OS{}, path)
}

// OpenFileFS is OpenFile against an explicit filesystem.
func OpenFileFS(fsys faultfs.FS, path string) (*File, error) {
	data, mapped, err := fsys.MapFile(path)
	if err != nil {
		return nil, prefixed(err)
	}
	f, err := Decode(data)
	if err != nil {
		if mapped {
			fsys.Unmap(data)
		}
		return nil, fmt.Errorf("%v (in %s)", err, path)
	}
	f.mapped = mapped
	f.fsys = fsys
	return f, nil
}

// Close releases the file's mapping. The decoded views (and any
// relation columns aliasing them) are invalid afterwards.
func (f *File) Close() error {
	if !f.mapped {
		return nil
	}
	f.mapped = false
	data := f.data
	f.data = nil
	return f.fsys.Unmap(data)
}

// OpenStore opens (creating if needed) the data dir on the real
// filesystem. See OpenStoreFS.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreFS(dir, faultfs.OS{})
}

// OpenStoreFS opens (creating if needed) the data dir: leftover *.tmp
// files from torn renames are removed, the WAL's valid prefix is
// replayed into segment files and the WAL truncated, and every segment
// is memory-mapped and decoded. A segment that fails validation —
// torn, truncated, bit-flipped — fails the open loudly rather than
// serving partial data.
func OpenStoreFS(dir string, fsys faultfs.FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: create data dir: %v", err)
	}
	names, err := fsys.ReadDirNames(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: read data dir: %v", err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("segment: remove leftover %s: %v", name, err)
			}
		}
	}

	walPath := filepath.Join(dir, walFileName)
	walData, err := fsys.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("segment: read wal: %v", err)
	}
	walExisted := err == nil
	recs := replayWAL(walData)
	for _, rec := range recs {
		switch rec.op {
		case opPut:
			// The payload passed its record CRC; decoding re-proves it is
			// a whole valid segment before it replaces anything.
			if _, err := Decode(rec.payload); err != nil {
				return nil, fmt.Errorf("segment: wal record %d for %q: %v", rec.seq, rec.name, err)
			}
			if err := writeSegmentFile(fsys, dir, rec.name, rec.payload); err != nil {
				return nil, err
			}
		case opDrop:
			if err := fsys.Remove(filepath.Join(dir, segFileName(rec.name))); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("segment: apply wal drop of %q: %v", rec.name, err)
			}
		case opNoop:
			// Recovery probe records prove the write path; they carry no
			// catalog mutation.
		}
	}
	if len(recs) > 0 {
		if err := syncDir(fsys, dir); err != nil {
			return nil, err
		}
	}
	wal, err := fsys.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: open wal: %v", err)
	}
	// Syncing the truncated WAL matters only when the truncation changed
	// durable state: replayed records were folded into segment files (all
	// fsynced above), or the file is brand new and its directory entry
	// must outlive a crash. A reopen after a clean shutdown — WAL already
	// present and empty — skips the fsync, which is a measurable slice of
	// restart cold-open.
	if !walExisted || len(walData) > 0 {
		if err := wal.Sync(); err != nil {
			wal.Close()
			return nil, fmt.Errorf("segment: sync wal: %v", err)
		}
		if !walExisted {
			if err := syncDir(fsys, dir); err != nil {
				wal.Close()
				return nil, err
			}
		}
	}

	s := &Store{
		dir:            dir,
		fsys:           fsys,
		wal:            wal,
		pending:        make(map[string]pendingOp),
		applyThreshold: defaultApplyThreshold,
	}
	names, err = fsys.ReadDirNames(dir)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("segment: read data dir: %v", err)
	}
	var segNames []string
	for _, name := range names {
		if strings.HasSuffix(name, ".seg") {
			segNames = append(segNames, name)
		}
	}
	// Segments map and decode independently, so open them concurrently:
	// restart latency is bounded by the largest segment, not the catalog
	// size. ReadDirNames order keeps s.files deterministic.
	files := make([]*File, len(segNames))
	errs := make([]error, len(segNames))
	var wg sync.WaitGroup
	for i, name := range segNames {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			f, err := OpenFileFS(fsys, filepath.Join(dir, name))
			if err == nil && segFileName(f.Name) != name {
				f.Close()
				f, err = nil, fmt.Errorf("segment: %s embeds relation name %q, which belongs in %s", name, f.Name, segFileName(f.Name))
			}
			files[i], errs[i] = f, err
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// A midway failure must not leak the segments that did map:
			// close (munmap) every one before returning.
			for _, f := range files {
				if f != nil {
					f.Close()
				}
			}
			s.Close()
			return nil, errs[i]
		}
	}
	s.files = files
	return s, nil
}

// Restore materializes every opened segment as a catalog-ready
// relation, all bound to one shared dictionary. When every segment
// carries the same dictionary generation — the invariant every clean
// shutdown and every complete apply maintains — each relation's
// columns alias its mapping; after a crash that interleaved a
// dictionary rebuild, older-generation segments are healed by
// rebinding (heap columns, same content).
func (s *Store) Restore() (map[string]*relation.Relation, *keys.Dict, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.files) == 0 {
		return map[string]*relation.Relation{}, nil, nil
	}
	uniform := true
	for _, f := range s.files[1:] {
		if !sameKeys(f.Keys, s.files[0].Keys) {
			uniform = false
			break
		}
	}
	var d *keys.Dict
	if uniform {
		d = keys.FromSorted(s.files[0].Keys)
	} else {
		var ks []string
		for _, f := range s.files {
			ks = append(ks, f.Keys...)
		}
		d = keys.BuildDict(ks)
	}
	rels := make(map[string]*relation.Relation, len(s.files))
	for _, f := range s.files {
		rel, err := f.Relation(d)
		if err != nil {
			return nil, nil, err
		}
		rels[f.Name] = rel
	}
	return rels, d, nil
}

// SegmentCount returns the number of segments opened at restore.
func (s *Store) SegmentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Degraded returns the failure that latched the store degraded, or nil
// when the write path is healthy.
func (s *Store) Degraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// WALErrorCount returns how many durability failures (WAL append/fsync
// or apply) the store has observed.
func (s *Store) WALErrorCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walErrors
}

// degradeLocked latches the store read-only, recording the root cause.
func (s *Store) degradeLocked(cause error) {
	s.walErrors++
	if s.degraded == nil {
		s.degraded = cause
	}
}

// TryRecover attempts to re-arm the write path after a degradation:
// pending mutations are re-applied to segment files (truncating the
// WAL back to a clean empty state — a retry of the apply that the WAL
// has made safe to repeat), and a no-op probe record is appended and
// fsynced to prove appends work again. On success the store is healthy;
// on failure it stays degraded and returns the fresh cause. Safe to
// call periodically from a background probe.
func (s *Store) TryRecover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded == nil {
		return nil
	}
	// applyLocked flushes pending ops; resetWALLocked then truncates the
	// log unconditionally — even when nothing was pending, a torn
	// half-record may sit in the file, and appending the probe after it
	// would strand every later record beyond an invalid prefix.
	if err := s.applyLocked(); err != nil {
		s.walErrors++
		s.degraded = err
		return err
	}
	if err := s.resetWALLocked(); err != nil {
		s.walErrors++
		s.degraded = err
		return err
	}
	if err := s.appendLocked(opNoop, "", nil); err != nil {
		s.degraded = err
		return err
	}
	s.degraded = nil
	return nil
}

// Put makes a catalog put durable: the encoded segment is appended to
// the WAL and fsynced — once Put returns nil, the relation survives any
// crash — and the segment files are rewritten at the next apply.
// rebound carries the sibling relations a dictionary rebuild rebound
// at admission (nil when the dictionary was reused); scheduling their
// rewrite keeps all on-disk segments on one dictionary generation, so
// the next restart aliases every relation.
//
// A *WALError return means the mutation was not acknowledged and the
// store is now degraded. An apply failure after a successful append
// also degrades the store but does NOT fail the Put: the mutation is
// durable in the WAL and will be re-applied by TryRecover or replayed
// at the next open.
func (s *Store) Put(name string, rel *relation.Relation, rebound map[string]*relation.Relation) error {
	if rel.Schema.Name != name {
		return fmt.Errorf("segment: put of %q with schema name %q", name, rel.Schema.Name)
	}
	payload, err := Encode(rel)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, s.degraded)
	}
	if err := s.appendLocked(opPut, name, payload); err != nil {
		return err
	}
	s.pending[name] = pendingOp{rel: rel, payload: payload}
	for other, r := range rebound {
		if other == name {
			continue
		}
		s.pending[other] = pendingOp{rel: r}
	}
	if err := s.maybeApplyLocked(); err != nil {
		s.degradeLocked(err)
	}
	return nil
}

// Drop makes a catalog drop durable; the segment file is removed at
// the next apply. Error semantics match Put.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, s.degraded)
	}
	if err := s.appendLocked(opDrop, name, nil); err != nil {
		return err
	}
	s.pending[name] = pendingOp{drop: true}
	if err := s.maybeApplyLocked(); err != nil {
		s.degradeLocked(err)
	}
	return nil
}

// Flush applies every pending mutation to segment files and truncates
// the WAL — the graceful-shutdown path, after which a restart opens
// nothing but clean, single-generation segments.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked()
}

// Close flushes and releases the WAL handle and every mapping. Only
// safe once no query can still read a restored relation.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.applyLocked()
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.files = nil
	return err
}

// appendLocked writes and fsyncs one WAL record — the durability
// point. The sequence number only advances on success: a failed write
// may have left a torn half-record, and advancing past it would make
// any later record unreachable at replay (the valid prefix ends at the
// tear), silently losing an acknowledged mutation. Failure therefore
// wraps in *WALError and latches the store degraded.
func (s *Store) appendLocked(op byte, name string, payload []byte) error {
	if len(name) > 0xFFFF {
		return fmt.Errorf("segment: relation name longer than 65535 bytes")
	}
	rec := encodeRecord(s.seq+1, op, name, payload)
	if _, err := s.wal.Write(rec); err != nil {
		werr := &WALError{Err: err}
		s.degradeLocked(werr)
		return werr
	}
	if err := s.wal.Sync(); err != nil {
		werr := &WALError{Err: err}
		s.degradeLocked(werr)
		return werr
	}
	s.seq++
	s.walSize += int64(len(rec))
	return nil
}

func (s *Store) maybeApplyLocked() error {
	if s.walSize < s.applyThreshold {
		return nil
	}
	return s.applyLocked()
}

// applyLocked materializes every pending op as a segment file
// (write tmp → fsync → rename-into-place), fsyncs the directory, and
// truncates the WAL. On error the WAL is left intact, so nothing
// acknowledged is lost — the apply simply retries later.
func (s *Store) applyLocked() error {
	if len(s.pending) == 0 && s.walSize == 0 {
		return nil
	}
	for name, op := range s.pending {
		if op.drop {
			if err := s.fsys.Remove(filepath.Join(s.dir, segFileName(name))); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("segment: drop %q: %v", name, err)
			}
			continue
		}
		payload := op.payload
		if payload == nil {
			var err error
			if payload, err = Encode(op.rel); err != nil {
				return err
			}
		}
		if err := writeSegmentFile(s.fsys, s.dir, name, payload); err != nil {
			return err
		}
	}
	if err := syncDir(s.fsys, s.dir); err != nil {
		return err
	}
	if err := s.resetWALLocked(); err != nil {
		return err
	}
	s.pending = make(map[string]pendingOp)
	return nil
}

// resetWALLocked truncates the WAL to a clean, fsynced empty file and
// rewinds the sequence counter. Safe only once nothing in the log is
// still needed: every record has been folded into segment files (or was
// garbage past the valid prefix).
func (s *Store) resetWALLocked() error {
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("segment: truncate wal: %v", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("segment: rewind wal: %v", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("segment: sync wal: %v", err)
	}
	s.walSize, s.seq = 0, 0
	return nil
}

// writeSegmentFile writes payload as dir/<name>.seg atomically: a
// fsynced temp file renamed into place, so any crash leaves either the
// old segment or the new one, never a torn mix.
func writeSegmentFile(fsys faultfs.FS, dir, name string, payload []byte) error {
	seg := filepath.Join(dir, segFileName(name))
	tmp := seg + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: write %q: %v", name, err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("segment: write %q: %v", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("segment: sync %q: %v", name, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segment: close %q: %v", name, err)
	}
	if err := fsys.Rename(tmp, seg); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segment: rename %q into place: %v", name, err)
	}
	return nil
}

// syncDir fsyncs the directory so renames and removals are themselves
// durable.
func syncDir(fsys faultfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("segment: sync data dir: %v", err)
	}
	return nil
}

// sameKeys reports element-wise equality of two sorted key slices.
func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prefixed wraps an error with the package prefix unless it already
// carries it.
func prefixed(err error) error {
	if strings.HasPrefix(err.Error(), "segment:") {
		return err
	}
	return fmt.Errorf("segment: %v", err)
}
