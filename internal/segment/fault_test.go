package segment

import (
	"errors"
	"testing"

	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/relation"
)

// A WAL append hit by ENOSPC must not acknowledge: Put returns a
// *WALError, the store latches degraded, later mutations are refused
// fast, and no view of the disk resurrects the failed relation.
func TestPutENOSPCNotAckedAndLatchesDegraded(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailAt(1, faultfs.OpWrite, faultfs.ErrNoSpace)

	var werr *WALError
	err = s.Put("doomed", testRelation(t, "doomed", 6), nil)
	if !errors.As(err, &werr) {
		t.Fatalf("Put err = %v; want *WALError", err)
	}
	if !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("Put err = %v; want to unwrap to ErrNoSpace", err)
	}
	if s.Degraded() == nil {
		t.Fatal("store not degraded after failed append")
	}
	if got := s.WALErrorCount(); got == 0 {
		t.Fatal("WALErrorCount = 0 after failed append")
	}
	// Subsequent mutations are refused without touching the WAL.
	before := inj.OpCount()
	if err := s.Put("doomed", testRelation(t, "doomed", 6), nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put while degraded err = %v; want ErrDegraded", err)
	}
	if err := s.Drop("doomed"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Drop while degraded err = %v; want ErrDegraded", err)
	}
	if inj.OpCount() != before {
		t.Fatal("degraded mutations still touched the filesystem")
	}

	// No crash view resurrects the unacknowledged relation.
	for _, durable := range []bool{true, false} {
		s2, err := OpenStoreFS(crashDir, mem.CrashView(durable))
		if err != nil {
			t.Fatalf("reopen durable=%v: %v", durable, err)
		}
		rels, _, err := s2.Restore()
		if err != nil {
			t.Fatal(err)
		}
		if len(rels) != 0 {
			t.Fatalf("durable=%v: unacked relation resurrected: %v", durable, rels)
		}
		s2.Close()
	}
}

// A failed WAL fsync is as fatal as a failed write: the bytes may or
// may not be on disk, so the mutation is unacknowledged and the store
// degrades.
func TestFsyncFailureDegrades(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.NewMem())
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailAt(1, faultfs.OpSync, nil)
	var werr *WALError
	if err := s.Put("x", testRelation(t, "x", 4), nil); !errors.As(err, &werr) {
		t.Fatalf("Put err = %v; want *WALError", err)
	}
	if s.Degraded() == nil {
		t.Fatal("store not degraded after failed fsync")
	}
}

// TryRecover after a torn append must truncate the garbage half-record
// before probing; otherwise every post-recovery append would sit beyond
// an invalid prefix and be silently lost at replay. This is the
// regression test for exactly that shape.
func TestRecoverAfterTornAppend(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetTorn(true)
	inj.FailAt(1, faultfs.OpWrite, faultfs.ErrNoSpace)
	if err := s.Put("torn", testRelation(t, "torn", 10), nil); err == nil {
		t.Fatal("torn append acked")
	}
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover: %v", err)
	}
	if s.Degraded() != nil {
		t.Fatalf("still degraded after recovery: %v", s.Degraded())
	}

	// Post-recovery acknowledgements must survive a crash — the whole
	// point of truncating the torn tail first.
	good := testRelation(t, "good", 8)
	if err := s.Put("good", good, nil); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	s2, err := OpenStoreFS(crashDir, mem.CrashView(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rels, _, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rels["good"]
	if !ok || !relation.Equal(good, got) {
		t.Fatalf("post-recovery acked put lost after crash (ok=%v, rels=%d)", ok, len(rels))
	}
	if _, ok := rels["torn"]; ok {
		t.Fatal("unacked torn put resurrected")
	}
}

// An apply failure after a successful WAL fsync must keep the
// acknowledgement: Put returns nil, the store degrades, and the
// relation survives both recovery paths (TryRecover re-apply and crash
// replay).
func TestApplyFailureKeepsAcknowledgement(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	s.applyThreshold = 1 // force a synchronous apply on every Put
	inj.FailAt(1, faultfs.OpRename, faultfs.ErrNoSpace)

	r := testRelation(t, "kept", 11)
	if err := s.Put("kept", r, nil); err != nil {
		t.Fatalf("Put with failing apply must still ack (WAL fsync succeeded): %v", err)
	}
	if s.Degraded() == nil {
		t.Fatal("store not degraded after failed apply")
	}

	// Crash now: the WAL replays the acked put.
	s2, err := OpenStoreFS(crashDir, mem.CrashView(true))
	if err != nil {
		t.Fatal(err)
	}
	rels, _, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rels["kept"]; !ok || !relation.Equal(r, got) {
		t.Fatalf("acked put lost after apply failure + crash (ok=%v)", ok)
	}
	s2.Close()

	// Or recover in place: TryRecover retries the apply.
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, err := OpenStoreFS(crashDir, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rels, _, err = s3.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rels["kept"]; !ok || !relation.Equal(r, got) {
		t.Fatalf("acked put lost after in-place recovery (ok=%v)", ok)
	}
}

// TryRecover while the disk is still broken stays degraded; once the
// fault clears, it re-arms and the noop probe record replays cleanly.
func TestRecoverProbeRetriesUntilDiskReturns(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.Fail(faultfs.OpMutate, faultfs.ErrNoSpace)
	if err := s.Put("x", testRelation(t, "x", 3), nil); err == nil {
		t.Fatal("Put acked on a dead disk")
	}
	if err := s.TryRecover(); err == nil {
		t.Fatal("TryRecover succeeded while the disk is still failing")
	}
	if s.Degraded() == nil {
		t.Fatal("degraded cleared while the disk is still failing")
	}

	inj.Clear()
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover after disk recovery: %v", err)
	}
	if s.Degraded() != nil {
		t.Fatal("still degraded after successful recovery")
	}
	r := testRelation(t, "x", 3)
	if err := s.Put("x", r, nil); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	// The WAL now carries a noop probe followed by the put; a restart
	// replays both (the probe mutating nothing).
	s2, err := OpenStoreFS(crashDir, mem.CrashView(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rels, _, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rels["x"]; !ok || !relation.Equal(r, got) {
		t.Fatalf("put after noop probe lost at replay (ok=%v)", ok)
	}
}

func TestTryRecoverHealthyIsNoop(t *testing.T) {
	s, err := OpenStoreFS(crashDir, faultfs.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover on healthy store: %v", err)
	}
}

// Satellite regression: when the parallel mmap+decode of OpenStore
// fails midway, every segment that did map must be unmapped before the
// error returns. The injector's map/unmap balance measures it directly.
func TestPartialOpenUnmapsEverything(t *testing.T) {
	mem := faultfs.NewMem()
	s, err := OpenStoreFS(crashDir, mem)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := s.Put(name, testRelation(t, name, 6), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Case 1: the Nth mmap itself fails.
	for n := uint64(1); n <= 4; n++ {
		inj := faultfs.NewInjector(mem)
		inj.FailAt(n, faultfs.OpMap, nil)
		if _, err := OpenStoreFS(crashDir, inj); err == nil {
			t.Fatalf("open succeeded despite mmap fault at %d", n)
		}
		if bal := inj.MapBalance(); bal != 0 {
			t.Fatalf("mmap fault at %d leaked %d mappings", n, bal)
		}
	}

	// Case 2: every mmap succeeds but one segment fails decode.
	corrupt := mem.CrashView(false) // private copy to corrupt
	path := crashDir + "/" + segFileName("c")
	data, err := corrupt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xFF
	f, err := corrupt.OpenFile(path, 0x2, 0o644) // os.O_RDWR
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()
	inj := faultfs.NewInjector(corrupt)
	if _, err := OpenStoreFS(crashDir, inj); err == nil {
		t.Fatal("open served a corrupt segment")
	}
	if bal := inj.MapBalance(); bal != 0 {
		t.Fatalf("decode failure leaked %d mappings", bal)
	}
}
