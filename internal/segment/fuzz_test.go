package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/keys"
)

// FuzzSegmentOpen drives Decode with arbitrary bytes: it must never
// panic, every rejection must be a "segment:"-prefixed error, and —
// the strong half of the contract — every accepted segment must
// materialize and re-encode byte-identically, so a file that survives
// validation can be WAL-shipped, rewritten and re-opened forever
// without drift. Seeds cover a populated segment, an empty one, and
// corrupted/truncated variants (the committed corpus lives under
// testdata/fuzz/FuzzSegmentOpen).
// TestWriteSeedCorpus regenerates the committed corpus from the same
// inputs FuzzSegmentOpen seeds via f.Add; run with
// TPSET_WRITE_CORPUS=1 after a format change.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("TPSET_WRITE_CORPUS") == "" {
		t.Skip("set TPSET_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	valid, err := Encode(testRelation(t, "seed", 9))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	empty, err := Encode(testRelation(t, "empty", 0))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentOpen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"valid-segment":    valid,
		"empty-segment":    empty,
		"flipped-byte":     flipped,
		"truncated-header": valid[:headerSize+3],
		"bare-magic":       []byte(Magic),
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func FuzzSegmentOpen(f *testing.F) {
	valid, err := Encode(testRelation(f, "seed", 9))
	if err != nil {
		f.Fatalf("Encode seed: %v", err)
	}
	f.Add(valid)
	empty, err := Encode(testRelation(f, "empty", 0))
	if err != nil {
		f.Fatalf("Encode empty seed: %v", err)
	}
	f.Add(empty)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(valid[:headerSize+3])
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := Decode(data)
		if err != nil {
			if sf != nil {
				t.Fatalf("Decode returned a file alongside error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "segment:") {
				t.Fatalf("rejection lacks segment: prefix: %v", err)
			}
			return
		}
		rel, err := sf.Relation(keys.FromSorted(sf.Keys))
		if err != nil {
			t.Fatalf("accepted segment failed to materialize: %v", err)
		}
		out, err := Encode(rel)
		if err != nil {
			t.Fatalf("accepted segment failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, out) {
			t.Fatalf("write→open→write not byte-identical: %d in, %d out", len(data), len(out))
		}
	})
}
