// Package segment implements the durable columnar tier: an on-disk
// segment format that mirrors the interned runtime layout
// byte-for-byte, written atomically through a per-catalog write-ahead
// log and memory-mapped on open so relation.Cols aliases the mapping
// directly — opening a catalog is an mmap and a pointer fixup, not an
// ingest.
//
// One segment file holds one relation:
//
//	header (168 B): magic, version, sizes, section table, checksums
//	schema:  relation name + attribute names
//	dict:    the catalog fact dictionary, keys in rank order
//	fid:     n × int64, little-endian — interned fact ids
//	ts, te:  n × int64, little-endian — interval bounds
//	prob:    n × float64, little-endian — cached probabilities
//	lineage: node arena in canonical post-order + n root indices
//
// The fid/ts/te/prob sections are exactly the relation.Cols columns:
// on a little-endian host they are aliased in place (unsafe.Slice over
// the mapping), on other hosts or unaligned buffers they are
// copy-decoded. Every section offset is 8-aligned with zero padding,
// the layout is fully canonical (offsets, padding, arena order are all
// forced), and decode validates the semantic admission contract
// (canonical (fid, Ts, Te) order, duplicate-freeness, interval and
// probability ranges) so an accepted segment can enter the catalog
// without re-validation and re-encodes byte-identically.
//
// Every error is "segment:"-prefixed and names the offending offset.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/invariant"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Magic identifies a segment file; the trailing newline catches
// text-mode transfer mangling like the PNG signature does.
const Magic = "TPSEG01\n"

const (
	version    = 1
	headerSize = 168
	// nilRoot is the root-table sentinel for a tuple with null lineage.
	nilRoot = 0xFFFFFFFF
)

// Fixed header field offsets. The section table runs from offSections,
// one (offset, length) uint64 pair per section in file order.
const (
	offVersion  = 8
	offHdrSize  = 12
	offFileSize = 16
	offN        = 24
	offDictLen  = 32
	offSections = 40
	offReserved = 152
	offBodyCRC  = 160
	offHdrCRC   = 164
	numSections = 7
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian gates the zero-copy column alias: the file stores
// little-endian words, so only a little-endian host may reinterpret
// the raw bytes in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// File is a decoded segment: the raw bytes plus typed views of every
// section. On the zero-copy path Fid/Ts/Te/Prob alias data directly
// (Aliased true); otherwise they are heap copies. Facts caches the
// parsed fact of every dictionary rank, so materializing tuples
// allocates no per-tuple fact storage.
type File struct {
	Name  string
	Attrs []string
	N     int

	Keys  []string        // dictionary keys, rank order (strictly ascending)
	Facts []relation.Fact // Facts[id] is the parsed fact of Keys[id]

	Fid, Ts, Te []int64
	Prob        []float64
	Lam         []*lineage.Expr

	// Aliased reports that the numeric columns point into data rather
	// than heap copies; relations built from this file then record data
	// as their foreign region for the tpinvariants bounds check.
	Aliased bool

	data   []byte
	mapped bool
	fsys   faultfs.FS
}

// Data returns the raw segment bytes (the mapping, when mmap'd).
func (f *File) Data() []byte { return f.data }

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// Decode parses and fully validates a segment. It never panics on
// arbitrary input; every rejection is a "segment:"-prefixed error
// naming the offending offset. An accepted segment satisfies the
// catalog admission contract (canonical order, duplicate-free, valid
// intervals and probabilities) and re-encodes to exactly the input
// bytes.
func Decode(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("segment: truncated header: %d bytes at offset 0, need %d", len(data), headerSize)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("segment: bad magic at offset 0")
	}
	if v := le32(data, offVersion); v != version {
		return nil, fmt.Errorf("segment: unsupported version %d at offset %d", v, offVersion)
	}
	if hs := le32(data, offHdrSize); hs != headerSize {
		return nil, fmt.Errorf("segment: header size %d at offset %d, want %d", hs, offHdrSize, headerSize)
	}
	if got, want := crc32.Checksum(data[:offBodyCRC], castagnoli), le32(data, offHdrCRC); got != want {
		return nil, fmt.Errorf("segment: header checksum mismatch at offset %d: computed %#x, stored %#x", offHdrCRC, got, want)
	}
	fileSize := le64(data, offFileSize)
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("segment: file size %d at offset %d does not match %d available bytes (truncated or padded file)", fileSize, offFileSize, len(data))
	}
	if r := le64(data, offReserved); r != 0 {
		return nil, fmt.Errorf("segment: reserved field %#x at offset %d", r, offReserved)
	}
	if got, want := crc32.Checksum(data[headerSize:], castagnoli), le32(data, offBodyCRC); got != want {
		return nil, fmt.Errorf("segment: body checksum mismatch at offset %d: computed %#x, stored %#x", offBodyCRC, got, want)
	}
	n64 := le64(data, offN)
	dictN64 := le64(data, offDictLen)
	if max := (fileSize - headerSize) / 8; n64 > max {
		return nil, fmt.Errorf("segment: tuple count %d at offset %d exceeds file capacity %d", n64, offN, max)
	}
	if max := (fileSize - headerSize) / 4; dictN64 > max {
		return nil, fmt.Errorf("segment: dictionary length %d at offset %d exceeds file capacity %d", dictN64, offDictLen, max)
	}
	n, dictN := int(n64), int(dictN64)

	// Section table: the layout is canonical — each section starts at
	// the 8-aligned end of its predecessor, padding bytes are zero, and
	// the last section ends exactly at fileSize.
	type section struct{ off, len uint64 }
	var secs [numSections]section
	names := [numSections]string{"schema", "dict", "fid", "ts", "te", "prob", "lineage"}
	want := uint64(headerSize)
	for i := range secs {
		base := offSections + 16*i
		secs[i] = section{off: le64(data, base), len: le64(data, base+8)}
		s := secs[i]
		if s.off != want {
			return nil, fmt.Errorf("segment: %s section at offset %d, canonical layout requires %d", names[i], s.off, want)
		}
		if s.len > fileSize-s.off {
			return nil, fmt.Errorf("segment: %s section length %d at offset %d overruns file of %d bytes", names[i], s.len, s.off, fileSize)
		}
		end := s.off + s.len
		want = align8(end)
		if want > fileSize {
			want = fileSize // the final section need not be padded
		}
		for p := end; p < want; p++ {
			if data[p] != 0 {
				return nil, fmt.Errorf("segment: nonzero padding byte at offset %d after %s section", p, names[i])
			}
		}
	}
	if end := secs[numSections-1].off + secs[numSections-1].len; end != fileSize {
		return nil, fmt.Errorf("segment: %d trailing bytes at offset %d after lineage section", fileSize-end, end)
	}
	for i, name := range []string{"fid", "ts", "te", "prob"} {
		if s := secs[2+i]; s.len != 8*n64 {
			return nil, fmt.Errorf("segment: %s section length %d at offset %d, want %d for %d tuples", name, s.len, s.off, 8*n64, n)
		}
	}

	f := &File{N: n, data: data}
	if err := f.parseSchema(data, secs[0].off, secs[0].len); err != nil {
		return nil, err
	}
	if err := f.parseDict(data, secs[1].off, secs[1].len, dictN); err != nil {
		return nil, err
	}

	var a1, a2, a3, a4 bool
	f.Fid, a1 = int64Col(data, secs[2].off, n)
	f.Ts, a2 = int64Col(data, secs[3].off, n)
	f.Te, a3 = int64Col(data, secs[4].off, n)
	f.Prob, a4 = float64Col(data, secs[5].off, n)
	f.Aliased = a1 && a2 && a3 && a4

	// Semantic admission contract, one integer-only pass: rows sorted by
	// (fid, Ts, Te), duplicate-free (equal fids never overlap in time),
	// intervals non-empty, fids within the dictionary, probabilities in
	// [0, 1]. Offsets in the diagnostics point at the offending row.
	for i := 0; i < n; i++ {
		if f.Fid[i] < 0 || f.Fid[i] >= int64(dictN) {
			return nil, fmt.Errorf("segment: fid %d out of dictionary range [0,%d) at row %d (offset %d)", f.Fid[i], dictN, i, secs[2].off+8*uint64(i))
		}
		if f.Ts[i] >= f.Te[i] {
			return nil, fmt.Errorf("segment: empty interval [%d,%d) at row %d (offset %d)", f.Ts[i], f.Te[i], i, secs[3].off+8*uint64(i))
		}
		if !(f.Prob[i] >= 0 && f.Prob[i] <= 1) {
			return nil, fmt.Errorf("segment: probability %v outside [0,1] at row %d (offset %d)", f.Prob[i], i, secs[5].off+8*uint64(i))
		}
		if i == 0 {
			continue
		}
		switch {
		case f.Fid[i] < f.Fid[i-1]:
			return nil, fmt.Errorf("segment: fid column not sorted at row %d (offset %d)", i, secs[2].off+8*uint64(i))
		case f.Fid[i] == f.Fid[i-1] && f.Ts[i] < f.Te[i-1]:
			return nil, fmt.Errorf("segment: rows %d and %d duplicate fact %d over overlapping intervals (offset %d)", i-1, i, f.Fid[i], secs[3].off+8*uint64(i))
		}
	}

	if err := f.parseLineage(data, secs[6].off, secs[6].len); err != nil {
		return nil, err
	}
	return f, nil
}

// parseSchema reads the schema section: u16 name length + name,
// u16 attribute count, then (u16 length + bytes) per attribute, with
// no slack bytes.
func (f *File) parseSchema(data []byte, off, length uint64) error {
	c := cursor{data: data, pos: off, end: off + length, section: "schema"}
	name, err := c.str16()
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("segment: empty relation name at offset %d", off)
	}
	nAttrs, err := c.u16()
	if err != nil {
		return err
	}
	if nAttrs == 0 {
		return fmt.Errorf("segment: schema with zero attributes at offset %d", off)
	}
	attrs := make([]string, nAttrs)
	for i := range attrs {
		if attrs[i], err = c.str16(); err != nil {
			return err
		}
	}
	if err := c.done(); err != nil {
		return err
	}
	f.Name, f.Attrs = name, attrs
	return nil
}

// parseDict reads the dictionary section — dictN × (u32 length +
// bytes), strictly ascending — and parses each key back into its fact,
// rejecting keys that are not the canonical Fact.Key encoding for the
// schema's attribute count (non-canonical keys would break the
// fid-order ⇔ key-order equivalence every integer compare relies on).
func (f *File) parseDict(data []byte, off, length uint64, dictN int) error {
	c := cursor{data: data, pos: off, end: off + length, section: "dict"}
	ks := make([]string, dictN)
	facts := make([]relation.Fact, dictN)
	for i := 0; i < dictN; i++ {
		at := c.pos
		k, err := c.str32()
		if err != nil {
			return err
		}
		if i > 0 && ks[i-1] >= k {
			return errOrder(at, i)
		}
		fact, err := relation.ParseFactKey(k, len(f.Attrs))
		if err != nil {
			return fmt.Errorf("segment: dict key %d at offset %d: %v", i, at, err)
		}
		if fact.Key() != k {
			return fmt.Errorf("segment: dict key %d at offset %d is not the canonical encoding of its fact", i, at)
		}
		ks[i], facts[i] = k, fact
	}
	if err := c.done(); err != nil {
		return err
	}
	f.Keys, f.Facts = ks, facts
	return nil
}

// parseLineage reads the lineage section: u32 node count, the node
// arena, then N × u32 root indices (nilRoot for null lineage). Nodes
// reference only earlier nodes, so decoding is a single forward pass
// with no recursion; the arena must additionally be in canonical
// order — the exact first-visit post-order Encode emits — so every
// accepted segment re-encodes byte-identically.
func (f *File) parseLineage(data []byte, off, length uint64) error {
	c := cursor{data: data, pos: off, end: off + length, section: "lineage"}
	count, err := c.u32()
	if err != nil {
		return err
	}
	// Smallest node is a negation: 1 kind byte + 4 index bytes.
	if uint64(count) > length/5 {
		return fmt.Errorf("segment: lineage node count %d at offset %d exceeds section capacity", count, off)
	}
	nodes := make([]*lineage.Expr, count)
	// Children by arena index (nilRoot = none), retained for the
	// canonical-order check below: simulating the encoder's traversal on
	// indices costs a []bool instead of a pointer-keyed map, which is
	// what keeps restart cold-open an order of magnitude under CSV
	// re-ingest.
	kidL := make([]uint32, count)
	kidR := make([]uint32, count)
	kinds := make([]lineage.Kind, count)
	// Leaves are validated during the parse but constructed afterwards in
	// one lineage.Vars batch: bulk interning plus slab allocation is far
	// cheaper than tens of thousands of pairwise Var calls. Children only
	// ever reference earlier nodes, so the deferred construction pass is
	// still a single forward sweep.
	var varNames []string
	var varProbs []float64
	for i := uint32(0); i < count; i++ {
		at := c.pos
		kind, err := c.u8()
		if err != nil {
			return err
		}
		kinds[i] = lineage.Kind(kind)
		kidL[i], kidR[i] = nilRoot, nilRoot
		switch lineage.Kind(kind) {
		case lineage.KindVar:
			bits, err := c.u64()
			if err != nil {
				return err
			}
			p := math.Float64frombits(bits)
			if math.IsNaN(p) || p <= 0 || p > 1 {
				return fmt.Errorf("segment: lineage var probability %v outside (0,1] at offset %d", p, at)
			}
			id, err := c.str32view()
			if err != nil {
				return err
			}
			varNames = append(varNames, id)
			varProbs = append(varProbs, p)
		case lineage.KindNot:
			ci, err := c.u32()
			if err != nil {
				return err
			}
			if ci >= i {
				return fmt.Errorf("segment: lineage node %d at offset %d references forward node %d", i, at, ci)
			}
			kidL[i] = ci
		case lineage.KindAnd, lineage.KindOr:
			li, err := c.u32()
			if err != nil {
				return err
			}
			ri, err := c.u32()
			if err != nil {
				return err
			}
			if li >= i || ri >= i {
				return fmt.Errorf("segment: lineage node %d at offset %d references forward node", i, at)
			}
			kidL[i], kidR[i] = li, ri
		default:
			return fmt.Errorf("segment: unknown lineage node kind %d at offset %d", kind, at)
		}
	}
	leaves := lineage.Vars(varNames, varProbs)
	vi := 0
	for i := uint32(0); i < count; i++ {
		switch kinds[i] {
		case lineage.KindVar:
			nodes[i] = leaves[vi]
			vi++
		case lineage.KindNot:
			nodes[i] = lineage.Not(nodes[kidL[i]])
		case lineage.KindAnd:
			nodes[i] = lineage.And(nodes[kidL[i]], nodes[kidR[i]])
		default:
			nodes[i] = lineage.Or(nodes[kidL[i]], nodes[kidR[i]])
		}
	}
	lams := make([]*lineage.Expr, f.N)
	rootIdx := make([]uint32, f.N)
	for i := range lams {
		at := c.pos
		ri, err := c.u32()
		if err != nil {
			return err
		}
		rootIdx[i] = ri
		if ri == nilRoot {
			continue
		}
		if ri >= count {
			return fmt.Errorf("segment: lineage root %d at offset %d out of arena range [0,%d)", ri, at, count)
		}
		lams[i] = nodes[ri]
	}
	if err := c.done(); err != nil {
		return err
	}
	if err := checkArenaCanonical(count, kidL, kidR, rootIdx, off); err != nil {
		return err
	}
	f.Lam = lams
	return nil
}

// checkArenaCanonical re-runs the encoder's arena traversal (arenaEnc:
// first-visit post-order over the roots, dedup by node) on the index
// graph and requires it to visit the arena exactly in storage order and
// cover every node — no unreachable nodes, no permuted order. Decoded
// nodes are pointer-distinct per index, so index-dedup is pointer-dedup,
// and any arena this check accepts is the one Encode would emit:
// Encode(Decode(x)) == x.
func checkArenaCanonical(count uint32, kidL, kidR, rootIdx []uint32, off uint64) error {
	visited := make([]bool, count)
	next := uint32(0)
	type frame struct {
		i     uint32
		stage uint8
	}
	var stack []frame
	for _, ri := range rootIdx {
		if ri == nilRoot || visited[ri] {
			continue
		}
		stack = append(stack[:0], frame{ri, 0})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if visited[fr.i] {
				stack = stack[:len(stack)-1]
				continue
			}
			switch fr.stage {
			case 0:
				fr.stage = 1
				if k := kidL[fr.i]; k != nilRoot {
					stack = append(stack, frame{k, 0})
				}
			case 1:
				fr.stage = 2
				if k := kidR[fr.i]; k != nilRoot {
					stack = append(stack, frame{k, 0})
				}
			default:
				if fr.i != next {
					return fmt.Errorf("segment: lineage arena at offset %d not in canonical post-order at node %d", off, next)
				}
				visited[fr.i] = true
				next++
				stack = stack[:len(stack)-1]
			}
		}
	}
	if next != count {
		return fmt.Errorf("segment: lineage arena at offset %d has %d nodes, %d reachable from roots", off, count, next)
	}
	return nil
}

func errOrder(at uint64, i int) error {
	return fmt.Errorf("segment: dict keys not strictly ascending at entry %d (offset %d)", i, at)
}

// Relation materializes the segment as a catalog-ready relation bound
// to d. When d's ranks coincide with the segment's own dictionary the
// stored fids are valid under d as-is and the relation's columns alias
// the decoded sections directly (zero copies; the mapping is recorded
// as the foreign region for the tagged bounds check). Otherwise — a
// crash left mixed dictionary generations on disk — the tuples are
// rebound to d by key and the columns rebuilt on the heap; the result
// is identical, only the aliasing is lost until the next rewrite.
// Either way the relation comes back sorted, validated (by Decode) and
// frozen.
func (f *File) Relation(d *keys.Dict) (*relation.Relation, error) {
	rel := relation.New(relation.NewSchema(f.Name, f.Attrs...))
	rel.Tuples = make([]relation.Tuple, f.N)
	if dictMatches(d, f.Keys) {
		for i := 0; i < f.N; i++ {
			fid := f.Fid[i]
			t := &rel.Tuples[i]
			t.InitDerivedLazyKeyed(f.Facts[fid], relation.KeyIn(d, fid),
				f.Lam[i], interval.Interval{Ts: f.Ts[i], Te: f.Te[i]})
			t.Prob = f.Prob[i]
		}
		if f.N == 0 {
			rel.Bind(d)
		} else {
			rel.AdoptBinding()
		}
		var region []byte
		if f.Aliased {
			region = f.data
		}
		cols := &relation.Cols{Fid: f.Fid, Ts: f.Ts, Te: f.Te, Prob: f.Prob, Lam: f.Lam}
		if err := rel.SetCols(cols, region); err != nil {
			return nil, fmt.Errorf("segment: %v", err)
		}
		rel.Freeze()
		if invariant.Enabled {
			// Tagged builds re-prove that the aliased columns mirror the
			// materialized rows — the mmap'd form of the SoA contract —
			// plus the sort/duplicate-free admission contract Decode
			// claims to have validated.
			invariant.CheckColsMirror(rel, "segment.File.Relation(alias)")
			invariant.CheckSorted(rel, "segment.File.Relation(alias)")
			invariant.CheckDuplicateFree(rel, "segment.File.Relation(alias)")
		}
		return rel, nil
	}
	for i := 0; i < f.N; i++ {
		t := relation.NewDerivedLazy(f.Facts[f.Fid[i]], f.Lam[i],
			interval.Interval{Ts: f.Ts[i], Te: f.Te[i]})
		t.Prob = f.Prob[i]
		rel.Tuples[i] = t
	}
	if !rel.Bind(d) {
		return nil, fmt.Errorf("segment: relation %q holds facts outside the catalog dictionary", f.Name)
	}
	rel.BuildCols()
	rel.Freeze()
	if invariant.Enabled {
		invariant.CheckColsMirror(rel, "segment.File.Relation(heal)")
		invariant.CheckSorted(rel, "segment.File.Relation(heal)")
		invariant.CheckDuplicateFree(rel, "segment.File.Relation(heal)")
	}
	return rel, nil
}

// dictMatches reports whether d assigns exactly the ranks the segment
// stored: same keys, same order.
func dictMatches(d *keys.Dict, ks []string) bool {
	if d == nil || d.Len() != len(ks) {
		return false
	}
	dk := d.Keys()
	for i := range ks {
		if dk[i] != ks[i] {
			return false
		}
	}
	return true
}

// Encode serializes a catalog-admitted relation (bound, sorted,
// duplicate-free) into segment bytes. Encoding is deterministic — the
// lineage arena is emitted in first-visit post-order over the tuples'
// roots with pointer dedup — so re-encoding a decoded segment
// reproduces it byte-for-byte, which is what makes WAL payloads and
// applied segment files interchangeable.
func Encode(r *relation.Relation) ([]byte, error) {
	d := r.Dict()
	if d == nil {
		return nil, fmt.Errorf("segment: encode of unbound relation %q", r.Schema.Name)
	}
	name, attrs := r.Schema.Name, r.Schema.Attrs
	if name == "" {
		return nil, fmt.Errorf("segment: encode of unnamed relation")
	}
	if len(name) > 0xFFFF || len(attrs) == 0 || len(attrs) > 0xFFFF {
		return nil, fmt.Errorf("segment: encode of relation %q: unsupported schema shape (%d attrs)", name, len(attrs))
	}
	for _, a := range attrs {
		if len(a) > 0xFFFF {
			return nil, fmt.Errorf("segment: encode of relation %q: attribute name longer than 65535 bytes", name)
		}
	}
	n := r.Len()

	// Lineage arena: deterministic first-visit post-order, deduped by
	// node pointer so the DAG sharing the operators produce survives on
	// disk.
	var a arenaEnc
	a.idx = make(map[*lineage.Expr]uint32, n)
	roots := make([]uint32, n)
	for i := range r.Tuples {
		roots[i] = a.add(r.Tuples[i].Lineage)
	}
	if len(a.nodes) >= nilRoot {
		return nil, fmt.Errorf("segment: encode of relation %q: lineage arena of %d nodes exceeds format limit", name, len(a.nodes))
	}

	schemaLen := uint64(2 + len(name) + 2)
	for _, at := range attrs {
		schemaLen += uint64(2 + len(at))
	}
	dictKeys := d.Keys()
	var dictLen uint64
	for _, k := range dictKeys {
		dictLen += uint64(4 + len(k))
	}
	colLen := uint64(8 * n)
	lamLen := uint64(4)
	for _, e := range a.nodes {
		switch e.Kind() {
		case lineage.KindVar:
			lamLen += 1 + 8 + 4 + uint64(len(e.ID()))
		case lineage.KindNot:
			lamLen += 1 + 4
		default:
			lamLen += 1 + 4 + 4
		}
	}
	lamLen += uint64(4 * n)

	schemaOff := uint64(headerSize)
	dictOff := align8(schemaOff + schemaLen)
	fidOff := align8(dictOff + dictLen)
	tsOff := fidOff + colLen
	teOff := tsOff + colLen
	probOff := teOff + colLen
	lamOff := probOff + colLen
	fileSize := lamOff + lamLen

	buf := make([]byte, fileSize)
	copy(buf, Magic)
	put32(buf, offVersion, version)
	put32(buf, offHdrSize, headerSize)
	put64(buf, offFileSize, fileSize)
	put64(buf, offN, uint64(n))
	put64(buf, offDictLen, uint64(len(dictKeys)))
	for i, s := range [numSections][2]uint64{
		{schemaOff, schemaLen}, {dictOff, dictLen}, {fidOff, colLen},
		{tsOff, colLen}, {teOff, colLen}, {probOff, colLen}, {lamOff, lamLen},
	} {
		put64(buf, offSections+16*i, s[0])
		put64(buf, offSections+16*i+8, s[1])
	}

	w := writer{buf: buf, pos: schemaOff}
	w.u16(uint16(len(name)))
	w.bytes([]byte(name))
	w.u16(uint16(len(attrs)))
	for _, at := range attrs {
		w.u16(uint16(len(at)))
		w.bytes([]byte(at))
	}
	w.pos = dictOff
	for _, k := range dictKeys {
		w.u32(uint32(len(k)))
		w.bytes([]byte(k))
	}

	w.pos = fidOff
	for i := range r.Tuples {
		t := &r.Tuples[i]
		td, fid := t.Binding()
		if td != d {
			return nil, fmt.Errorf("segment: encode of relation %q: tuple %d not bound to the relation dictionary", name, i)
		}
		w.u64At(fidOff+8*uint64(i), uint64(fid))
		w.u64At(tsOff+8*uint64(i), uint64(t.T.Ts))
		w.u64At(teOff+8*uint64(i), uint64(t.T.Te))
		if !(t.Prob >= 0 && t.Prob <= 1) {
			return nil, fmt.Errorf("segment: encode of relation %q: tuple %d probability %v outside [0,1]", name, i, t.Prob)
		}
		w.u64At(probOff+8*uint64(i), math.Float64bits(t.Prob))
		if i > 0 {
			prev := &r.Tuples[i-1]
			_, pfid := prev.Binding()
			if fid < pfid || (fid == pfid && t.T.Ts < prev.T.Te) {
				return nil, fmt.Errorf("segment: encode of relation %q: rows %d and %d not in canonical duplicate-free order", name, i-1, i)
			}
		}
	}

	w.pos = lamOff
	w.u32(uint32(len(a.nodes)))
	for _, e := range a.nodes {
		w.u8(uint8(e.Kind()))
		switch e.Kind() {
		case lineage.KindVar:
			w.u64(math.Float64bits(e.VarProb()))
			id := e.ID()
			w.u32(uint32(len(id)))
			w.bytes([]byte(id))
		case lineage.KindNot:
			left, _ := e.Operands()
			w.u32(a.idx[left])
		default:
			left, right := e.Operands()
			w.u32(a.idx[left])
			w.u32(a.idx[right])
		}
	}
	for _, ri := range roots {
		w.u32(ri)
	}
	if w.pos != fileSize {
		return nil, fmt.Errorf("segment: encode of relation %q: wrote %d bytes, sized %d", name, w.pos, fileSize)
	}

	put32(buf, offBodyCRC, crc32.Checksum(buf[headerSize:], castagnoli))
	put32(buf, offHdrCRC, crc32.Checksum(buf[:offBodyCRC], castagnoli))
	return buf, nil
}

// arenaEnc assigns arena indices in first-visit post-order over the
// lineage DAG, deduping by node pointer. The walk is iterative — fuzzed
// segments and adversarial queries can produce negation chains deeper
// than any comfortable recursion budget.
type arenaEnc struct {
	idx   map[*lineage.Expr]uint32
	nodes []*lineage.Expr
}

func (a *arenaEnc) add(root *lineage.Expr) uint32 {
	if root == nil {
		return nilRoot
	}
	if i, ok := a.idx[root]; ok {
		return i
	}
	type frame struct {
		e     *lineage.Expr
		stage int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		e := f.e
		if _, done := a.idx[e]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		left, right := e.Operands()
		switch f.stage {
		case 0:
			f.stage = 1
			if left != nil {
				stack = append(stack, frame{left, 0})
			}
		case 1:
			f.stage = 2
			if right != nil {
				stack = append(stack, frame{right, 0})
			}
		default:
			a.idx[e] = uint32(len(a.nodes))
			a.nodes = append(a.nodes, e)
			stack = stack[:len(stack)-1]
		}
	}
	return a.idx[root]
}

// int64Col returns the n-element int64 view of the column at off:
// aliasing the raw bytes on an aligned little-endian host, copy-decoded
// otherwise. The caller has validated that 8n bytes are available.
func int64Col(data []byte, off uint64, n int) ([]int64, bool) {
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(&data[off])
	if hostLittleEndian && uintptr(p)%8 == 0 {
		return unsafe.Slice((*int64)(p), n), true
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[off+8*uint64(i):]))
	}
	return out, false
}

// float64Col is int64Col for the probability column.
func float64Col(data []byte, off uint64, n int) ([]float64, bool) {
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(&data[off])
	if hostLittleEndian && uintptr(p)%8 == 0 {
		return unsafe.Slice((*float64)(p), n), true
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*uint64(i):]))
	}
	return out, false
}

// cursor is a bounds-checked little-endian reader over one section;
// every failure names the section and the offset it occurred at.
type cursor struct {
	data    []byte
	pos     uint64
	end     uint64
	section string
}

func (c *cursor) need(n uint64) error {
	if c.end-c.pos < n || c.end < c.pos {
		return fmt.Errorf("segment: %s section truncated at offset %d: need %d bytes, %d left", c.section, c.pos, n, c.end-c.pos)
	}
	return nil
}

func (c *cursor) u8() (byte, error) {
	if err := c.need(1); err != nil {
		return 0, err
	}
	v := c.data[c.pos]
	c.pos++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if err := c.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(c.data[c.pos:])
	c.pos += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if err := c.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *cursor) str16() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if err := c.need(uint64(n)); err != nil {
		return "", err
	}
	s := string(c.data[c.pos : c.pos+uint64(n)])
	c.pos += uint64(n)
	return s, nil
}

func (c *cursor) str32() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if err := c.need(uint64(n)); err != nil {
		return "", err
	}
	s := string(c.data[c.pos : c.pos+uint64(n)])
	c.pos += uint64(n)
	return s, nil
}

// str32view reads a str32 as a zero-copy view into the underlying
// buffer. The view is only valid while the mapping is live and must not
// be retained by decoded structures — parseLineage hands views straight
// to the intern arena, which copies on first sight. A relation-scale
// lineage section holds one name per tuple, and skipping those copies is
// a measurable slice of restart cold-open.
func (c *cursor) str32view() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if err := c.need(uint64(n)); err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	b := c.data[c.pos : c.pos+uint64(n)]
	c.pos += uint64(n)
	return unsafe.String(unsafe.SliceData(b), len(b)), nil
}

func (c *cursor) done() error {
	if c.pos != c.end {
		return fmt.Errorf("segment: %s section has %d slack bytes at offset %d", c.section, c.end-c.pos, c.pos)
	}
	return nil
}

// writer fills a pre-sized buffer; Encode computed every section size
// up front, so writes cannot overrun.
type writer struct {
	buf []byte
	pos uint64
}

func (w *writer) u8(v uint8) {
	w.buf[w.pos] = v
	w.pos++
}

func (w *writer) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[w.pos:], v)
	w.pos += 2
}

func (w *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[w.pos:], v)
	w.pos += 4
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[w.pos:], v)
	w.pos += 8
}

func (w *writer) u64At(off, v uint64) {
	binary.LittleEndian.PutUint64(w.buf[off:], v)
}

func (w *writer) bytes(b []byte) {
	copy(w.buf[w.pos:], b)
	w.pos += uint64(len(b))
}

func le32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
func le64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

func put32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func put64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
