package segment

import (
	"os"
	"testing"

	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/relation"
)

// The crash matrix is the durability proof: a fixed workload of puts,
// replacements, drops, and flushes runs against a MemFS-backed store,
// and a power cut is simulated at EVERY filesystem-operation boundary,
// in both torn-write and clean variants. After each cut the surviving
// disk — rendered under both the pessimistic fsync-only durability
// model and the optimistic everything-flushed model — is reopened, and
// the restored catalog must be bit-identical (relation.Equal on every
// relation) to an acknowledged state: everything the workload was told
// was durable, plus at most the one mutation that was in flight when
// the power died. Any other outcome is silent corruption and fails the
// test. Reopen itself must never fail for this workload: no cut point
// leaves this disk unrecoverable.

// crashStep is one workload mutation plus the catalog state a client
// that saw it acknowledged is entitled to find after any crash.
type crashStep struct {
	label string
	apply func(s *Store) error
	// expect is the full expected catalog after this step is acked;
	// nil means "unchanged from the previous step" (Flush).
	expect map[string]*relation.Relation
}

// crashWorkload builds the step list. Relations are built once and
// reused across runs — Put treats them as immutable admitted pointers.
func crashWorkload(t *testing.T) []crashStep {
	t.Helper()
	a1 := testRelation(t, "alpha", 5)
	b1 := testRelation(t, "beta", 7)
	a2 := testRelation(t, "alpha", 9)
	c1 := testRelation(t, "gamma", 3)
	return []crashStep{
		{
			label:  "put alpha",
			apply:  func(s *Store) error { return s.Put("alpha", a1, nil) },
			expect: map[string]*relation.Relation{"alpha": a1},
		},
		{
			label:  "put beta",
			apply:  func(s *Store) error { return s.Put("beta", b1, nil) },
			expect: map[string]*relation.Relation{"alpha": a1, "beta": b1},
		},
		{
			label:  "replace alpha",
			apply:  func(s *Store) error { return s.Put("alpha", a2, nil) },
			expect: map[string]*relation.Relation{"alpha": a2, "beta": b1},
		},
		{
			label: "flush",
			apply: func(s *Store) error { return s.Flush() },
		},
		{
			label:  "drop beta",
			apply:  func(s *Store) error { return s.Drop("beta") },
			expect: map[string]*relation.Relation{"alpha": a2},
		},
		{
			label:  "put gamma",
			apply:  func(s *Store) error { return s.Put("gamma", c1, nil) },
			expect: map[string]*relation.Relation{"alpha": a2, "gamma": c1},
		},
		{
			label: "flush again",
			apply: func(s *Store) error { return s.Flush() },
		},
	}
}

// crashStates flattens the workload into states[k] = expected catalog
// after the first k steps are acked (states[0] is empty).
func crashStates(steps []crashStep) []map[string]*relation.Relation {
	states := []map[string]*relation.Relation{{}}
	for _, st := range steps {
		if st.expect != nil {
			states = append(states, st.expect)
		} else {
			states = append(states, states[len(states)-1])
		}
	}
	return states
}

// sameCatalog reports whether the restored catalog matches an expected
// state exactly: same names, bit-identical relations.
func sameCatalog(got, want map[string]*relation.Relation) bool {
	if len(got) != len(want) {
		return false
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || !relation.Equal(g, w) {
			return false
		}
	}
	return true
}

const crashDir = "/data"

// runCrashWorkload opens a store over inj and applies steps until one
// fails, returning how many were acknowledged. A nil error acks a step
// — including a Put whose deferred apply failed after the WAL fsync,
// which is exactly the contract under test.
func runCrashWorkload(t *testing.T, inj *faultfs.Injector, steps []crashStep) (acked int) {
	t.Helper()
	s, err := OpenStoreFS(crashDir, inj)
	if err != nil {
		t.Fatalf("pre-fault open failed: %v", err)
	}
	for _, st := range steps {
		if err := st.apply(s); err != nil {
			break
		}
		acked++
	}
	return acked
}

func TestCrashMatrix(t *testing.T) {
	steps := crashWorkload(t)
	states := crashStates(steps)

	// Reference run: count the filesystem operations of the open phase
	// and of the whole workload, so the matrix can cut power at each
	// boundary after the open. Every step must ack on a healthy disk.
	refInj := faultfs.NewInjector(faultfs.NewMem())
	refStore, err := OpenStoreFS(crashDir, refInj)
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	openOps := refInj.OpCount()
	for _, st := range steps {
		if err := st.apply(refStore); err != nil {
			t.Fatalf("reference workload step %q: %v", st.label, err)
		}
	}
	totalOps := refInj.OpCount()
	if totalOps <= openOps {
		t.Fatalf("workload performed no filesystem ops (open=%d total=%d)", openOps, totalOps)
	}
	t.Logf("crash matrix: %d cut points × {clean,torn} × {durable,all} = %d recoveries",
		totalOps-openOps, (totalOps-openOps)*4)

	for torn := 0; torn < 2; torn++ {
		for n := openOps + 1; n <= totalOps; n++ {
			mem := faultfs.NewMem()
			inj := faultfs.NewInjector(mem)
			inj.SetTorn(torn == 1)
			inj.CrashAt(n)
			acked := runCrashWorkload(t, inj, steps)
			if !inj.Crashed() && acked != len(steps) {
				t.Fatalf("cut@%d torn=%d: power never cut yet workload stopped at %d", n, torn, acked)
			}

			for _, durable := range []bool{true, false} {
				view := mem.CrashView(durable)
				s2, err := OpenStoreFS(crashDir, view)
				if err != nil {
					t.Fatalf("cut@%d torn=%d durable=%v acked=%d: reopen rejected: %v", n, torn, durable, acked, err)
				}
				rels, _, err := s2.Restore()
				if err != nil {
					t.Fatalf("cut@%d torn=%d durable=%v acked=%d: restore failed: %v", n, torn, durable, acked, err)
				}
				// The recovered catalog must be an acknowledged state:
				// states[acked], or states[acked+1] when the in-flight
				// mutation's record fully reached the disk before the cut
				// (the client saw an error; an idempotent retry converges).
				ok := sameCatalog(rels, states[acked])
				if !ok && acked+1 < len(states) {
					ok = sameCatalog(rels, states[acked+1])
				}
				if !ok {
					t.Errorf("cut@%d torn=%d durable=%v: recovered catalog matches no acknowledged state (acked=%d, got %d relations)",
						n, torn, durable, acked, len(rels))
				}
				s2.Close()
			}
		}
	}
}

// A crash during recovery itself must be recoverable: cut power at
// every op boundary of the reopen-and-replay sequence, then reopen the
// result cleanly and demand the full acknowledged state. Replay is
// idempotent — records are folded into segment files before the WAL is
// truncated — so a half-finished recovery must lose nothing.
func TestCrashMatrixDuringRecovery(t *testing.T) {
	steps := crashWorkload(t)
	states := crashStates(steps)

	// Build a dirty disk: run the whole workload minus the final flush
	// so the WAL still carries records, then cut power with everything
	// flushed to "disk" (the optimistic view keeps the most state to
	// replay).
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	acked := runCrashWorkload(t, inj, steps[:len(steps)-1])
	if acked != len(steps)-1 {
		t.Fatalf("setup workload acked %d/%d", acked, len(steps)-1)
	}
	dirty := mem.CrashView(false)

	// Reference recovery to count its ops.
	refInj := faultfs.NewInjector(dirty.CrashView(false))
	if _, err := OpenStoreFS(crashDir, refInj); err != nil {
		t.Fatalf("reference recovery: %v", err)
	}
	recoverOps := refInj.OpCount()

	for n := uint64(1); n <= recoverOps; n++ {
		view := dirty.CrashView(false)
		rin := faultfs.NewInjector(view)
		rin.CrashAt(n)
		if _, err := OpenStoreFS(crashDir, rin); err == nil && rin.Crashed() {
			// An open that somehow succeeds after its disk died mid-way
			// would be suspect, but the injector fails every op after the
			// cut, so OpenStoreFS must have returned an error.
			t.Fatalf("recovery cut@%d: open succeeded after power cut", n)
		}
		// Second recovery, clean: both views of the half-recovered disk
		// must replay to the acknowledged state.
		for _, durable := range []bool{true, false} {
			second := view.CrashView(durable)
			s2, err := OpenStoreFS(crashDir, second)
			if err != nil {
				t.Fatalf("recovery cut@%d durable=%v: second recovery rejected: %v", n, durable, err)
			}
			rels, _, err := s2.Restore()
			if err != nil {
				t.Fatalf("recovery cut@%d durable=%v: restore failed: %v", n, durable, err)
			}
			if !sameCatalog(rels, states[acked]) {
				t.Errorf("recovery cut@%d durable=%v: catalog does not match the acknowledged state (%d relations)", n, durable, len(rels))
			}
			s2.Close()
		}
	}
}

// The matrix allows "rejects loudly"; this pins that a genuinely
// unrecoverable artifact — a torn segment file without a WAL record to
// rebuild it — actually is loud, not silently partial.
func TestCrashMatrixLoudRejection(t *testing.T) {
	mem := faultfs.NewMem()
	s, err := OpenStoreFS(crashDir, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alpha", testRelation(t, "alpha", 12), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Bit-flip the segment body behind the store's back.
	path := crashDir + "/" + segFileName("alpha")
	data, err := mem.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	f, err := mem.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenStoreFS(crashDir, mem); err == nil {
		t.Fatal("open served a bit-flipped segment silently")
	} else {
		t.Logf("loud rejection: %v", err)
	}
}
