package segment

import (
	"testing"
)

func BenchmarkDecode(b *testing.B) {
	data, err := Encode(testRelation(b, "bench", 20000))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
