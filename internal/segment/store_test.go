package segment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func restore(t *testing.T, s *Store) map[string]*relation.Relation {
	t.Helper()
	rels, _, err := s.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return rels
}

func TestStorePutFlushRestore(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	r := testRelation(t, "flights", 31)
	if err := s.Put("flights", r, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	if got := s2.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount = %d, want 1", got)
	}
	rels := restore(t, s2)
	got, ok := rels["flights"]
	if !ok {
		t.Fatalf("restore lost the relation; have %v", rels)
	}
	if !relation.Equal(r, got) {
		t.Fatalf("restored relation differs: %s", relation.Diff(r, got))
	}
	if !got.Frozen() || got.Cols() == nil {
		t.Fatalf("restored relation not frozen with columns")
	}
}

// A Put is durable at WAL-fsync time: abandoning the store without
// Flush (the kill -9 shape) and reopening the directory must replay
// the record into a segment and restore the relation.
func TestWALReplayRestoresUnflushedPut(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	r := testRelation(t, "pending", 17)
	if err := s.Put("pending", r, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// No Flush, no Close: the segment file must not exist yet, only the
	// WAL record.
	if _, err := os.Stat(filepath.Join(dir, segFileName("pending"))); !os.IsNotExist(err) {
		t.Fatalf("segment file exists before apply (err=%v)", err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	rels := restore(t, s2)
	got, ok := rels["pending"]
	if !ok || !relation.Equal(r, got) {
		t.Fatalf("WAL replay did not restore the acknowledged put (ok=%v)", ok)
	}
	// Replay truncates: a third open sees a clean WAL and the same data.
	if data, err := os.ReadFile(filepath.Join(dir, walFileName)); err != nil || len(data) != 0 {
		t.Fatalf("WAL not truncated after replay: %d bytes, err=%v", len(data), err)
	}
}

func TestDropIsDurable(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Put("gone", testRelation(t, "gone", 8), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Drop("gone"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	// Crash before apply: the WAL holds the drop.
	s2 := openStore(t, dir)
	defer s2.Close()
	if rels := restore(t, s2); len(rels) != 0 {
		t.Fatalf("dropped relation survived restart: %v", rels)
	}
}

// A put replacing a relation under a rebuilt dictionary schedules
// sibling rewrites; crashing before they apply leaves mixed
// generations on disk, which restore heals into one union dictionary.
func TestCrashMidGenerationRewriteHeals(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	r1 := testRelation(t, "old", 9)
	if err := s.Put("old", r1, nil); err != nil {
		t.Fatalf("Put r1: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// New relation brings new facts: the catalog rebuilds the dictionary
	// and rebinds r1; the store is told about both.
	r2 := testRelation(t, "new", 5)
	r1b := r1.Clone()
	relation.InternAll(r1b, r2)
	if err := s.Put("new", r2, map[string]*relation.Relation{"old": r1b}); err != nil {
		t.Fatalf("Put r2: %v", err)
	}
	// Crash: r2 exists only in the WAL (new dict), old.seg still carries
	// the old generation.
	s2 := openStore(t, dir)
	defer s2.Close()
	rels, dict, err := s2.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dict == nil {
		t.Fatalf("no union dictionary")
	}
	if !relation.Equal(r1, rels["old"]) || !relation.Equal(r2, rels["new"]) {
		t.Fatalf("mixed-generation restore diverged")
	}
	if rels["old"].Dict() != dict || rels["new"].Dict() != dict {
		t.Fatalf("restored relations not on one shared dictionary")
	}
	// After a flush, both segments are rewritten onto one generation.
	if err := s2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestTornSegmentFileRejectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Put("torn", testRelation(t, "torn", 12), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, segFileName("torn"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate segment: %v", err)
	}
	_, err = OpenStore(dir)
	if err == nil || !strings.Contains(err.Error(), "segment:") {
		t.Fatalf("torn segment not rejected: %v", err)
	}
}

// Garbage appended after the last fsynced record — the torn-tail shape
// of a crash mid-append — is discarded; everything before it replays.
func TestTornWALTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	r := testRelation(t, "keep", 7)
	if err := s.Put("keep", r, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	walPath := filepath.Join(dir, walFileName)
	wf, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := wf.Write([]byte("\x02\x00\x00\x00\x00\x00\x00\x00torn")); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	wf.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	rels := restore(t, s2)
	if got, ok := rels["keep"]; !ok || !relation.Equal(r, got) {
		t.Fatalf("valid WAL prefix lost with the torn tail (ok=%v)", ok)
	}
}

// Leftover .tmp files from a crash mid-rename are swept at open and
// never surface as segments.
func TestLeftoverTmpSwept(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, segFileName("half")+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	s := openStore(t, dir)
	defer s.Close()
	if rels := restore(t, s); len(rels) != 0 {
		t.Fatalf("tmp leftover surfaced as a relation: %v", rels)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp leftover not removed (err=%v)", err)
	}
}

// Relation names are escaped into file names, so separators and dots
// cannot escape the data dir.
func TestHostileRelationNames(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for _, name := range []string{"../evil", "a/b", "..", "wal.log"} {
		r := testRelation(t, name, 3)
		if err := s.Put(name, r, nil); err != nil {
			t.Fatalf("Put(%q): %v", name, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	rels := restore(t, s2)
	if len(rels) != 4 {
		t.Fatalf("restored %d of 4 hostile-named relations: %v", len(rels), rels)
	}
	entries, _ := os.ReadDir(filepath.Join(dir, ".."))
	for _, e := range entries {
		if strings.Contains(e.Name(), "evil") {
			t.Fatalf("segment escaped the data dir: %s", e.Name())
		}
	}
}
