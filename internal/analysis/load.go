package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the patterns (e.g. "./...") with the go tool and
// type-checks every matched package from source. Dependencies — the
// module's own packages included — are imported through the compiled
// export data `go list -export` places in the build cache, which is
// exactly how the go vet driver feeds its unitchecker: the analyzers
// see each target package with complete type information without this
// package re-implementing a build system.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w", patterns, err)
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

// LoadFixture type-checks one fixture package rooted at root/path
// (golden-test layout: root is a testdata/src directory, path the
// package's import path within it). Imports resolve recursively inside
// root only — fixtures are hermetic, using small stub packages (core,
// relation, sync, context, ...) whose names and member names mirror
// the real ones, which is all the analyzers match on. No build cache,
// no network, no dependency on the surrounding module.
func LoadFixture(root, path string) (*Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{fset: fset, root: root, pkgs: make(map[string]*types.Package), infos: make(map[string]*fixturePkg)}
	fp, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: fp.files, Types: fp.pkg, Info: fp.info}, nil
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type fixtureImporter struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*types.Package
	infos map[string]*fixturePkg
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	fp, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return fp.pkg, nil
}

func (im *fixtureImporter) load(path string) (*fixturePkg, error) {
	if fp, ok := im.infos[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture package %q has no Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: im, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %q: %w", path, err)
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	im.pkgs[path] = pkg
	im.infos[path] = fp
	return fp, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
