// Package context is the fixture stub for the standard context package.
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

func Background() Context { return nil }
