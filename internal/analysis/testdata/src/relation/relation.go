// Package relation is the fixture stub for internal/relation.
package relation

type Cols struct {
	Fid  []int64
	Ts   []int64
	Te   []int64
	Prob []float64
	Lam  []int
}

type Relation struct{ cols *Cols }

func (r *Relation) Cols() *Cols { return r.cols }
