// Fixture for the colness analyzer: every recognized guard idiom for
// Batch columns and relation.Cols mirrors, plus the reads that must be
// flagged when no guard dominates them.
package a

import (
	"core"
	"relation"
)

// --- flagged cases ---

func unguarded(b *core.Batch) {
	_ = b.Fid[0] // want `read of column b.Fid without a colness guard`
}

func wrongBranch(b *core.Batch) {
	if b.Dict == nil {
		_ = b.Prob[0] // want `read of column b.Prob without a colness guard`
	} else {
		_ = b.Prob[0]
	}
}

func guardKilledByReassign(b *core.Batch) {
	if b.Dict != nil {
		b = core.GetBatch()
		_ = b.Fid[0] // want `read of column b.Fid without a colness guard`
	}
}

func guardKilledByNilDict(b *core.Batch) {
	if b.Dict != nil {
		b.Dict = nil
		_ = b.Ts[0] // want `read of column b.Ts without a colness guard`
	}
}

func closureDoesNotInherit(b *core.Batch) {
	if b.Dict != nil {
		f := func() {
			_ = b.Fid[0] // want `read of column b.Fid without a colness guard`
		}
		f()
	}
}

func colsUnguarded(r *relation.Relation) {
	c := r.Cols()
	_ = c.Fid[0] // want `read of column c.Fid without a colness guard`
}

// --- clean cases ---

func guardedDict(b *core.Batch) {
	if b.Dict != nil {
		_ = b.Fid[0]
	}
}

func guardedHasCols(b *core.Batch) {
	if b.HasCols() {
		_ = b.Ts[0]
	}
}

func earlyExit(b *core.Batch) {
	if b.Dict == nil {
		return
	}
	_ = b.Te[0]
}

func conjunction(a, b *core.Batch) bool {
	if a.Dict != nil && a.Dict == b.Dict {
		return a.Fid[0] < b.Fid[0]
	}
	return false
}

func shortCircuit(b *core.Batch) bool {
	return b.Dict != nil && b.Fid[0] > 0
}

func lenCapExempt(b *core.Batch) int {
	return len(b.Fid) + cap(b.Ts) + len(b.Prob[:0])
}

func writeExempt(b *core.Batch) {
	b.Fid = append(b.Fid[:0], 1)
	b.Prob = b.Prob[:0]
}

func indexWriteExempt(b *core.Batch, i int) {
	if b.Dict != nil {
		b.Fid[i] = 7
	}
}

func setDictGuards(b *core.Batch, d *core.Dict) {
	b.Dict = d
	_ = b.Fid[0]
}

func colsInitGuard(r *relation.Relation) {
	if c := r.Cols(); c != nil {
		_ = c.Prob[0]
	}
}

func colsEarlyExit(r *relation.Relation) {
	c := r.Cols()
	if c == nil {
		return
	}
	_ = c.Te[0]
}

func colsBuild() *relation.Cols {
	c := &relation.Cols{}
	c.Ts = append(c.Ts, 1)
	_ = c.Ts[0]
	return c
}

func suppressedRead(b *core.Batch) {
	//tpvet:ignore colness caller contract: only reached from the columnar path
	_ = b.Lam[0]
}
