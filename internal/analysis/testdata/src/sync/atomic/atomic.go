// Package atomic is the fixture stub for sync/atomic.
package atomic

func AddUint64(addr *uint64, delta uint64) uint64 { *addr += delta; return *addr }
func LoadUint64(addr *uint64) uint64              { return *addr }
func StoreUint64(addr *uint64, val uint64)        { *addr = val }
func AddInt64(addr *int64, delta int64) int64     { *addr += delta; return *addr }
func LoadInt64(addr *int64) int64                 { return *addr }
func StoreInt64(addr *int64, val int64)           { *addr = val }
