// Fixture for the batchpool analyzer: GetBatch/PutBatch pairing,
// leaks on return/error paths, use-after-put, and the ownership
// transfers that legitimately end tracking.
package a

import "core"

var errNope error

func use(b *core.Batch)       {}
func fill(b *core.Batch) bool { return len(b.Tuples) > 0 }
func cond() bool              { return true }

// --- flagged cases ---

func leakEnd() {
	b := core.GetBatch()
	use(b)
} // want `pooled batch b leaks at function end`

func leakReturn() {
	b := core.GetBatch()
	use(b)
	return // want `pooled batch b leaks at return`
}

func leakErrPath() error {
	b := core.GetBatch()
	if !fill(b) {
		return errNope // want `pooled batch b leaks at return`
	}
	core.PutBatch(b)
	return nil
}

func mayLeak() {
	b := core.GetBatch()
	if cond() {
		core.PutBatch(b)
	}
} // want `pooled batch b may leak at function end`

func useAfterPut() {
	b := core.GetBatch()
	core.PutBatch(b)
	use(b) // want `use of pooled batch b after PutBatch`
}

func doublePut() {
	b := core.GetBatch()
	core.PutBatch(b)
	core.PutBatch(b) // want `pooled batch b is passed to PutBatch twice`
}

func reassignWhileHeld() {
	b := core.GetBatch()
	b = core.GetBatch() // want `pooled batch b is reassigned while still held`
	core.PutBatch(b)
}

func loopHeld() {
	for cond() {
		b := core.GetBatch()
		use(b)
	} // want `pooled batch b is still held at the end of the loop body`
}

// --- clean cases ---

func cleanPut() {
	b := core.GetBatch()
	use(b)
	core.PutBatch(b)
}

func cleanDefer() {
	b := core.GetBatch()
	defer core.PutBatch(b)
	use(b)
}

func cleanHandoff(ch chan *core.Batch) {
	b := core.GetBatch()
	ch <- b
}

func cleanReturn() *core.Batch {
	b := core.GetBatch()
	return b
}

func cleanStore(dst []*core.Batch) []*core.Batch {
	b := core.GetBatch()
	return append(dst, b)
}

type holder struct{ b *core.Batch }

func cleanFieldStore(h *holder) {
	b := core.GetBatch()
	h.b = b
}

func cleanClosure() func() {
	b := core.GetBatch()
	return func() { core.PutBatch(b) }
}

func cleanGo(f func(*core.Batch)) {
	b := core.GetBatch()
	go f(b)
}

// cleanProducer is the engine's shard-producer shape: each iteration's
// batch is either handed to the consumer or returned to the pool on
// every exit, including cancellation.
func cleanProducer(ch chan *core.Batch, done <-chan struct{}) {
	for {
		b := core.GetBatch()
		if !fill(b) {
			core.PutBatch(b)
			return
		}
		select {
		case ch <- b:
		case <-done:
			core.PutBatch(b)
			return
		}
	}
}

func suppressedLeak() {
	b := core.GetBatch()
	use(b)
	//tpvet:ignore batchpool ownership is transferred through a side table the analyzer cannot see
}
