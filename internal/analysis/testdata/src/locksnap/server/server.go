// Fixture for the locksnap analyzer: mutex-guarded catalog state is
// touched under the lock, via helpers whose callers lock (Put→admit),
// or on freshly built values — everything else is flagged.
package server

import "sync"

type catalog struct {
	mu    sync.RWMutex
	rels  map[string]int
	clock uint64
}

func newCatalog() *catalog {
	c := &catalog{}
	c.rels = make(map[string]int)
	return c
}

func (c *catalog) Get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels[k]
}

func (c *catalog) Put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admit(k, v)
}

// admit is reached only with the catalog lock held.
func (c *catalog) admit(k string, v int) {
	c.rels[k] = v
	c.clock++
}

// --- flagged cases ---

func (c *catalog) Peek(k string) int {
	return c.rels[k] // want `access of mutex-guarded field c.rels outside the lock`
}

func tick(c *catalog) {
	c.clock++ // want `access of mutex-guarded field c.clock outside the lock`
}

// --- clean cases ---

func (c *catalog) Len() int {
	c.mu.RLock()
	n := len(c.rels)
	c.mu.RUnlock()
	return n
}

func (c *catalog) Suppressed(k string) int {
	//tpvet:ignore locksnap test-only accessor used before the server starts
	return c.rels[k]
}
