// Fixture for the ctxdone analyzer: channel-send loops in context-aware
// functions must race a cancellation receive.
package a

import "context"

func produce(i int) int { return i }

// --- flagged cases ---

func bareSend(ctx context.Context, ch chan int) {
	_ = ctx
	for i := 0; i < 10; i++ {
		ch <- produce(i) // want `channel send inside a loop without a cancellation case`
	}
}

func rangeSend(ctx context.Context, ch chan int, vs []int) {
	_ = ctx
	for _, v := range vs {
		ch <- v // want `channel send inside a loop without a cancellation case`
	}
}

func selectNoCancel(ctx context.Context, ch, other chan int) {
	_ = ctx
	for {
		select { // want `select sends in a loop but has no cancellation case`
		case ch <- 1:
		case v := <-other:
			_ = v
		}
	}
}

// --- clean cases ---

func selectOnDone(ctx context.Context, ch chan int) {
	for i := 0; i < 10; i++ {
		select {
		case ch <- produce(i):
		case <-ctx.Done():
			return
		}
	}
}

func selectOnDoneChan(ctx context.Context, ch chan int) {
	done := ctx.Done()
	for {
		select {
		case ch <- 1:
		case <-done:
			return
		}
	}
}

func noContextInScope(ch chan int) {
	for i := 0; i < 3; i++ {
		ch <- i
	}
}

func closureWithoutContext(ctx context.Context, ch chan int) {
	_ = ctx
	f := func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}
	f()
}

func sendOutsideLoop(ctx context.Context, ch chan int) {
	_ = ctx
	ch <- 1
}

func suppressedSend(ctx context.Context, ch chan int) {
	_ = ctx
	for i := 0; i < 2; i++ {
		ch <- i //tpvet:ignore ctxdone buffered handshake channel sized to the loop bound
	}
}
