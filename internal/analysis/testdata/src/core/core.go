// Package core is the fixture stub for internal/core: the analyzers
// match packages by name/path suffix and members by name, so this
// mirror of the pooled-batch API is all a hermetic fixture needs.
package core

type Dict struct{ n int }

type Expr struct{ s string }

type Tuple struct{ Fact []string }

type Batch struct {
	Tuples []Tuple
	Fid    []int64
	Ts     []int64
	Te     []int64
	Prob   []float64
	Lam    []*Expr
	Dict   *Dict
}

func (b *Batch) HasCols() bool { return b.Dict != nil }

func GetBatch() *Batch      { return &Batch{} }
func PutBatch(b *Batch)     {}
func NewBatch(n int) *Batch { return &Batch{Tuples: make([]Tuple, 0, n)} }
