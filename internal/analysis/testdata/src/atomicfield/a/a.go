// Fixture for the atomicfield analyzer: a field touched via sync/atomic
// anywhere must be touched atomically everywhere.
package a

import "sync/atomic"

type counter struct {
	n    uint64
	safe uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

// --- flagged cases ---

func (c *counter) badLoad() uint64 {
	return c.n // want `plain access of .*counter\.n, which is accessed with sync/atomic elsewhere`
}

func (c *counter) badStore() {
	c.n = 0 // want `plain access of .*counter\.n`
}

// --- clean cases ---

func (c *counter) plainField() uint64 {
	return c.safe
}

func fresh() *counter {
	return &counter{n: 0, safe: 1}
}

func (c *counter) suppressed() uint64 {
	//tpvet:ignore atomicfield read during single-threaded teardown after all writers joined
	return c.n
}
