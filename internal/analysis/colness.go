package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewColness builds the colness analyzer.
//
// The SoA contract (internal/core, internal/relation): the column views
// Batch.Fid/Ts/Te/Prob/Lam are valid only while Batch.Dict != nil, and
// a *relation.Cols mirror is valid only when non-nil. Reading a column
// without first establishing colness silently reads stale or empty
// slices — exactly the class of bug the row-path fallback exists to
// prevent. The analyzer flags every read of a column field that is not
// dominated by a recognized colness guard.
//
// Recognized guards for a batch b: `b.Dict != nil`, `b.HasCols()`, the
// else-branch of `b.Dict == nil`, an early exit (`if b.Dict == nil {
// return }`), and a direct assignment `b.Dict = <non-nil>`. Within a
// guard conjunction, `a.Dict == b.Dict` extends a's guard to b. For a
// *relation.Cols value c the guards are `c != nil` (and its early-exit
// dual) and construction via &Cols{...}. Writes that (re)build a column
// are exempt, as are len/cap probes, which are well-defined on nil
// slices and are themselves how code tests colness consistency.
func NewColness() *Analyzer {
	return &Analyzer{
		Name: "colness",
		Doc: "check that SoA column reads (Batch.Fid/Ts/Te/Prob/Lam, relation.Cols fields) are dominated by a colness guard\n\n" +
			"Column views are valid only under Dict != nil / HasCols(); unguarded reads see\n" +
			"stale or empty columns instead of falling back to the row path.",
		Run: runColness,
	}
}

// colFields are the guarded column views on core.Batch and relation.Cols.
var colFields = map[string]bool{"Fid": true, "Ts": true, "Te": true, "Prob": true, "Lam": true}

func runColness(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &colChecker{pass: pass}
			c.funcBody(fd.Body)
		}
	}
}

type colChecker struct {
	pass *Pass
}

// colGuards is the set of expression strings currently known colness-
// guarded ("b", "s.b", "c", ...), keyed by types.ExprString of the
// column's base expression.
type colGuards map[string]bool

func (g colGuards) clone() colGuards {
	out := make(colGuards, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// kill removes guards for base and anything reached through it
// ("b" kills "b" and "b.x", not "bx").
func (g colGuards) kill(base string) {
	for k := range g {
		if k == base || (len(k) > len(base) && k[:len(base)] == base && k[len(base)] == '.') {
			delete(g, k)
		}
	}
}

func (c *colChecker) funcBody(body *ast.BlockStmt) {
	guards := make(colGuards)
	c.block(body.List, guards)
	c.funcLits(body, guards)
}

// funcLits analyzes function literals under n as separate functions
// with fresh guards (a closure can run after the captured guard is
// stale, so outer guards are not inherited).
func (c *colChecker) funcLits(n ast.Node, _ colGuards) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			inner := &colChecker{pass: c.pass}
			inner.block(fl.Body.List, make(colGuards))
			inner.funcLits(fl.Body, nil)
			return false
		}
		return true
	})
}

// block interprets a statement list, mutating guards in place.
func (c *colChecker) block(list []ast.Stmt, guards colGuards) {
	for _, s := range list {
		c.stmt(s, guards)
	}
}

func (c *colChecker) stmt(s ast.Stmt, guards colGuards) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, guards)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					c.check(v, guards, nil)
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && c.buildsCols(vs.Values[i]) {
						guards[name.Name] = true
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.check(s.X, guards, nil)
	case *ast.SendStmt:
		c.check(s.Chan, guards, nil)
		c.check(s.Value, guards, nil)
	case *ast.IncDecStmt:
		c.check(s.X, guards, nil)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.check(r, guards, nil)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		pos, neg := c.condGuards(s.Cond, guards)
		thenG := guards.clone()
		for k := range pos {
			thenG[k] = true
		}
		c.block(s.Body.List, thenG)
		elseG := guards.clone()
		for k := range neg {
			elseG[k] = true
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			c.block(e.List, elseG)
		case *ast.IfStmt:
			c.stmt(e, elseG)
		}
		// Early-exit idiom: `if b.Dict == nil { return }` guards the
		// rest of the enclosing block; the dual guards after a
		// terminating else.
		if terminates(s.Body.List) {
			for k := range neg {
				guards[k] = true
			}
		}
		if eb, ok := s.Else.(*ast.BlockStmt); ok && terminates(eb.List) {
			for k := range pos {
				guards[k] = true
			}
		}
	case *ast.ForStmt:
		inner := guards.clone()
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			pos, _ := c.condGuards(s.Cond, inner)
			for k := range pos {
				inner[k] = true
			}
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.check(s.X, guards, nil)
		c.block(s.Body.List, guards.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		if s.Tag != nil {
			c.check(s.Tag, guards, nil)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.check(e, guards, nil)
				}
				c.block(cc.Body, guards.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.block(cc.Body, guards.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := guards.clone()
				if cc.Comm != nil {
					c.stmt(cc.Comm, inner)
				}
				c.block(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		c.block(s.List, guards)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guards)
	case *ast.DeferStmt:
		c.check(s.Call, guards, nil)
	case *ast.GoStmt:
		c.check(s.Call, guards, nil)
	}
}

// assign checks reads, applies write exemptions, and updates guards.
func (c *colChecker) assign(s *ast.AssignStmt, guards colGuards) {
	// Writes to a column rebuild it: reads of the same column within
	// this statement (b.Fid = append(b.Fid[:0], ...)) are exempt.
	exempt := make(map[string]bool)
	for _, lhs := range s.Lhs {
		e := ast.Unparen(lhs)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok && c.isColumnSel(sel) {
			exempt[exprString(sel)] = true
		}
	}
	for _, rhs := range s.Rhs {
		c.check(rhs, guards, exempt)
	}
	for _, lhs := range s.Lhs {
		// Index/selector components of the LHS are reads too (b.Fid[i]
		// reads b.Fid's backing array only through the exempted base;
		// the index expression itself still gets checked).
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			c.check(ix.Index, guards, exempt)
			if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); !ok || !c.isColumnSel(sel) {
				c.check(ix.X, guards, exempt)
			}
		}
	}
	// Guard gen/kill.
	for i, lhs := range s.Lhs {
		e := ast.Unparen(lhs)
		var rhs ast.Expr
		if len(s.Lhs) == len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		switch e := e.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Dict" && isNamed(c.typeOf(e.X), "core", "Batch") {
				base := exprString(e.X)
				if rhs != nil && !isNilExpr(rhs) {
					guards[base] = true
				} else {
					guards.kill(base)
				}
				continue
			}
			guards.kill(exprString(e))
		case *ast.Ident:
			if e.Name == "_" {
				continue
			}
			guards.kill(e.Name)
			if rhs != nil && c.buildsCols(rhs) {
				guards[e.Name] = true
			}
		}
	}
}

// check walks an expression, reporting unguarded column reads.
func (c *colChecker) check(e ast.Expr, guards colGuards, exempt map[string]bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			pos, _ := c.condGuards(e.X, guards)
			c.check(e.X, guards, exempt)
			sub := guards.clone()
			for k := range pos {
				sub[k] = true
			}
			c.check(e.Y, sub, exempt)
			return
		}
		if e.Op == token.LOR {
			_, neg := c.condGuards(e.X, guards)
			c.check(e.X, guards, exempt)
			sub := guards.clone()
			for k := range neg {
				sub[k] = true
			}
			c.check(e.Y, sub, exempt)
			return
		}
		c.check(e.X, guards, exempt)
		c.check(e.Y, guards, exempt)
		return
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			// len/cap are nil-safe probes, not column reads.
			for _, a := range e.Args {
				c.checkSkipTopColumn(a, guards, exempt)
			}
			return
		}
		c.check(e.Fun, guards, exempt)
		for _, a := range e.Args {
			c.check(a, guards, exempt)
		}
		return
	case *ast.SelectorExpr:
		if c.isColumnSel(e) {
			base := exprString(e.X)
			if !guards[base] && (exempt == nil || !exempt[exprString(e)]) {
				c.pass.Reportf(e.Sel.Pos(), "read of column %s without a colness guard (check Dict != nil / HasCols, or fall back to the row path)", exprString(e))
			}
			c.check(e.X, guards, exempt)
			return
		}
		c.check(e.X, guards, exempt)
		return
	case *ast.IndexExpr:
		c.check(e.X, guards, exempt)
		c.check(e.Index, guards, exempt)
		return
	case *ast.SliceExpr:
		c.check(e.X, guards, exempt)
		c.check(e.Low, guards, exempt)
		c.check(e.High, guards, exempt)
		c.check(e.Max, guards, exempt)
		return
	case *ast.UnaryExpr:
		c.check(e.X, guards, exempt)
		return
	case *ast.StarExpr:
		c.check(e.X, guards, exempt)
		return
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.check(el, guards, exempt)
		}
		return
	case *ast.KeyValueExpr:
		c.check(e.Value, guards, exempt)
		return
	case *ast.TypeAssertExpr:
		c.check(e.X, guards, exempt)
		return
	case *ast.FuncLit:
		return // handled by funcLits with fresh guards
	}
}

// checkSkipTopColumn checks e but does not flag e itself when it is a
// direct column selector (or a slice of one) — used under len/cap.
func (c *colChecker) checkSkipTopColumn(e ast.Expr, guards colGuards, exempt map[string]bool) {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	if sel, ok := e.(*ast.SelectorExpr); ok && c.isColumnSel(sel) {
		c.check(sel.X, guards, exempt)
		return
	}
	c.check(e, guards, exempt)
}

// condGuards extracts the guard sets a condition establishes when true
// (pos) and when false (neg).
func (c *colChecker) condGuards(cond ast.Expr, guards colGuards) (pos, neg map[string]bool) {
	pos, neg = map[string]bool{}, map[string]bool{}
	c.collectGuards(cond, guards, pos, neg)
	return pos, neg
}

func (c *colChecker) collectGuards(cond ast.Expr, guards colGuards, pos, neg map[string]bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			// Both conjuncts hold when true; neg is not derivable.
			sub1, _ := c.condGuards(e.X, guards)
			for k := range sub1 {
				pos[k] = true
			}
			aug := guards.clone()
			for k := range sub1 {
				aug[k] = true
			}
			sub2, _ := c.condGuards(e.Y, aug)
			for k := range sub2 {
				pos[k] = true
			}
		case token.LOR:
			// Both disjuncts false when the whole is false.
			_, sub1 := c.condGuards(e.X, guards)
			for k := range sub1 {
				neg[k] = true
			}
			_, sub2 := c.condGuards(e.Y, guards)
			for k := range sub2 {
				neg[k] = true
			}
		case token.NEQ:
			if base, ok := c.nilCompareBase(e.X, e.Y); ok {
				pos[base] = true
			}
		case token.EQL:
			if base, ok := c.nilCompareBase(e.X, e.Y); ok {
				neg[base] = true
				return
			}
			// a.Dict == b.Dict: colness of one side transfers to the
			// other inside the guarded region.
			if a, okA := c.dictBase(e.X); okA {
				if b, okB := c.dictBase(e.Y); okB {
					if guards[a] {
						pos[b] = true
					}
					if guards[b] {
						pos[a] = true
					}
					for k := range pos {
						if k == a {
							pos[b] = true
						}
						if k == b {
							pos[a] = true
						}
					}
				}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			subPos, subNeg := c.condGuards(e.X, guards)
			for k := range subNeg {
				pos[k] = true
			}
			for k := range subPos {
				neg[k] = true
			}
		}
	case *ast.CallExpr:
		// b.HasCols() is the exported colness predicate.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "HasCols" {
			if isNamed(c.typeOf(sel.X), "core", "Batch") {
				pos[exprString(sel.X)] = true
			}
		}
	case *ast.Ident:
		// bare bool: nothing derivable
	}
}

// nilCompareBase matches `X (op) nil` where X is a colness carrier:
// either b.Dict (guards b) or a *relation.Cols value c (guards c).
func (c *colChecker) nilCompareBase(x, y ast.Expr) (string, bool) {
	e := x
	if isNilExpr(x) {
		e = y
	} else if !isNilExpr(y) {
		return "", false
	}
	e = ast.Unparen(e)
	if base, ok := c.dictBase(e); ok {
		return base, true
	}
	if isNamed(c.typeOf(e), "relation", "Cols") {
		return exprString(e), true
	}
	return "", false
}

// dictBase matches b.Dict for a core.Batch b, returning b's key.
func (c *colChecker) dictBase(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Dict" {
		return "", false
	}
	if !isNamed(c.typeOf(sel.X), "core", "Batch") {
		return "", false
	}
	return exprString(sel.X), true
}

// isColumnSel reports whether sel reads a guarded column field.
func (c *colChecker) isColumnSel(sel *ast.SelectorExpr) bool {
	if !colFields[sel.Sel.Name] {
		return false
	}
	t := c.typeOf(sel.X)
	return isNamed(t, "core", "Batch") || isNamed(t, "relation", "Cols")
}

// buildsCols reports whether e constructs a non-nil *relation.Cols
// (&Cols{...} or new(Cols)).
func (c *colChecker) buildsCols(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		cl, ok := e.X.(*ast.CompositeLit)
		return ok && isNamed(c.typeOf(cl), "relation", "Cols")
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			return isNamed(c.typeOf(e.Args[0]), "relation", "Cols")
		}
	}
	return false
}

func (c *colChecker) typeOf(e ast.Expr) types.Type {
	return c.pass.Info.TypeOf(e)
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
