package analysis

import (
	"go/ast"
	"go/types"
)

// NewLockSnap builds the locksnap analyzer.
//
// internal/server keeps shared catalog state (maps, clocks, dict
// handles) inside structs that embed a sync.Mutex/RWMutex; every access
// must happen with the lock held, or through an unexported helper whose
// callers all hold it (the Put→admit pattern), or on a pointer snapshot
// taken under RLock and used lock-free afterwards. The analyzer finds
// mutex-guarded structs in packages named "server", then flags guarded-
// field accesses in functions that neither lock the mutex themselves
// nor are unexported helpers reachable only from locking functions
// (computed as a call-graph fixpoint). Freshly constructed locals —
// the snapshot/constructor idiom — are exempt: a value built inside the
// function is not shared yet.
func NewLockSnap() *Analyzer {
	return &Analyzer{
		Name: "locksnap",
		Doc: "check that mutex-guarded catalog state in internal/server is accessed only under the lock or via a snapshot\n\n" +
			"Fields of a struct carrying a sync.(RW)Mutex must be touched while the mutex is\n" +
			"held, from helpers whose callers all hold it, or on locally constructed values.",
		Run: runLockSnap,
	}
}

func runLockSnap(pass *Pass) {
	if !isPkg(pass.Pkg, "server") {
		return
	}

	// Guarded structs: named types in this package whose struct has a
	// sync.Mutex or sync.RWMutex field. Every other unexported field is
	// guarded state.
	guarded := make(map[*types.Named]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		n, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutex(st.Field(i).Type()) {
				guarded[n] = true
				break
			}
		}
	}
	if len(guarded) == 0 {
		return
	}

	isGuardedField := func(sel *ast.SelectorExpr) bool {
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !v.IsField() || v.Exported() || isMutex(v.Type()) {
			return false
		}
		n := namedType(s.Recv())
		return n != nil && guarded[n]
	}

	// Per function: does it lock, which guarded fields does it touch,
	// and which in-package functions call it.
	type fnInfo struct {
		decl     *ast.FuncDecl
		locks    bool
		accesses []*ast.SelectorExpr
		callers  []*types.Func
	}
	fns := make(map[*types.Func]*fnInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &fnInfo{decl: fd}
			fns[obj] = fi

			// Locals constructed in this function are private until
			// published; accesses through them are snapshot-safe.
			fresh := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						continue
					}
					if constructsValue(as.Rhs[i]) {
						fresh[obj] = true
					}
				}
				return true
			})

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Lock", "RLock":
							if isMutex(pass.Info.TypeOf(sel.X)) {
								fi.locks = true
							}
						}
					}
				case *ast.SelectorExpr:
					if isGuardedField(n) {
						if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
							if obj := pass.Info.Uses[id]; obj != nil && fresh[obj] {
								return true
							}
						}
						fi.accesses = append(fi.accesses, n)
					}
				}
				return true
			})
		}
	}

	// Call graph (in-package static calls only).
	for caller, fi := range fns {
		ast.Inspect(fi.decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass.Info, call); callee != nil {
				if _, inPkg := fns[callee]; inPkg {
					fns[callee].callers = append(fns[callee].callers, caller)
				}
			}
			return true
		})
	}

	// Fixpoint: a function holds the lock if it locks itself, or if it
	// is unexported, has callers, and every caller holds the lock.
	holds := make(map[*types.Func]bool)
	for f, fi := range fns {
		holds[f] = fi.locks
	}
	for changed := true; changed; {
		changed = false
		for f, fi := range fns {
			if holds[f] || f.Exported() || len(fi.callers) == 0 {
				continue
			}
			all := true
			for _, c := range fi.callers {
				if !holds[c] {
					all = false
					break
				}
			}
			if all {
				holds[f] = true
				changed = true
			}
		}
	}

	for f, fi := range fns {
		if holds[f] {
			continue
		}
		for _, sel := range fi.accesses {
			pass.Reportf(sel.Sel.Pos(), "access of mutex-guarded field %s outside the lock: hold the mutex, take a snapshot under RLock, or reach it via a helper whose callers lock", exprString(sel))
		}
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// constructsValue reports whether e builds a fresh value: a composite
// literal (possibly &-ed), new(T), or a make call.
func constructsValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}
