// Package analysis is the repository's static-analysis layer: a small,
// dependency-free implementation of the go/analysis pattern (Analyzer,
// Pass, Diagnostic) plus the five repo-specific analyzers that
// machine-check the execution stack's hand-enforced invariants —
// batch-pool Get/Put discipline, colness-gated SoA column access,
// atomic-field access discipline, catalog lock/snapshot discipline and
// producer cancellation. The suite runs over the whole module via
// cmd/tpvet (a multichecker in the vet mold) and over golden fixtures
// in the package tests.
//
// The framework is deliberately self-contained: the build environment
// bakes in only the standard library, so instead of depending on
// golang.org/x/tools/go/analysis the package re-creates the slice of it
// the analyzers need. Loading mirrors how the real drivers work —
// `go list -deps -export` supplies compiled export data for every
// dependency, target packages are type-checked from source against it
// (load.go) — and the analyzers themselves are written so a future
// migration onto x/tools is a mechanical port.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in a loaded package.
type Diagnostic struct {
	Analyzer string    // reporting analyzer's name
	Pos      token.Pos // position of the offending expression
	Message  string
}

// Analyzer is one named, documented check. Run inspects a single
// type-checked package and reports findings through the pass. Collect,
// when non-nil, is executed over every loaded package before any Run —
// the cross-package fact-gathering phase (atomicfield records which
// struct fields are accessed atomically anywhere before flagging plain
// accesses everywhere). Analyzers that keep Collect state are built
// fresh per driver run via their New* constructor, so runs never share
// state.
type Analyzer struct {
	Name    string
	Doc     string
	Collect func(*Pass)
	Run     func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns a fresh instance of the full tpvet suite, in the
// order findings should be reported.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewBatchPool(),
		NewColness(),
		NewAtomicField(),
		NewLockSnap(),
		NewCtxDone(),
	}
}

// ByName returns a fresh instance of the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the loaded packages: every Collect
// phase over every package first, then every Run. Diagnostics are
// filtered through //tpvet:ignore directives and returned sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range pkgs {
			a.Collect(pkg.pass(a, collect))
		}
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(pkg.pass(a, collect))
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(pkgs, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// pass binds a package to an analyzer run.
func (p *Package) pass(a *Analyzer, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     p.Fset,
		Files:    p.Files,
		Pkg:      p.Types,
		Info:     p.Info,
		report:   report,
	}
}

// suppressed reports whether a //tpvet:ignore directive covers the
// diagnostic: a comment of the form
//
//	//tpvet:ignore <analyzer> <justification>
//
// on the diagnostic's line or the line directly above it, in the same
// file, with a non-empty justification. The directive is deliberately
// narrow — one analyzer, one site, a recorded reason — mirroring
// staticcheck's lint:ignore contract.
func suppressed(pkgs []*Package, d Diagnostic) bool {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Pos() <= d.Pos && d.Pos <= f.End() {
				line := pkg.Fset.Position(d.Pos).Line
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						cl := pkg.Fset.Position(c.Pos()).Line
						if cl != line && cl != line-1 {
							continue
						}
						rest, ok := strings.CutPrefix(c.Text, "//tpvet:ignore ")
						if !ok {
							continue
						}
						fields := strings.Fields(rest)
						if len(fields) >= 2 && fields[0] == d.Analyzer {
							return true
						}
					}
				}
				return false
			}
		}
	}
	return false
}

// --- shared type-matching helpers ---

// isPkg reports whether pkg is the named repository package: the path
// is either exactly name (fixture stubs), ends in "/"+name (the real
// module layout), or — for stdlib matches like "sync/atomic" — equals
// the full path. nil pkg (universe scope) never matches.
func isPkg(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == name || strings.HasSuffix(p, "/"+name)
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named
// type pkg.name, with pkg matched via isPkg.
func isNamed(t types.Type, pkg, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && isPkg(n.Obj().Pkg(), pkg)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through plain idents and selector expressions), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isCallTo reports whether call invokes the function pkg.name.
func isCallTo(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Name() == name && isPkg(f.Pkg(), pkg)
}

// exprString keys guard/fact maps by an expression's source form.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// terminates reports whether the statement list definitely transfers
// control out of the enclosing block: its last statement is a return,
// a branch (break/continue/goto), or a call to panic. Used for the
// early-exit guard idiom (`if b.Dict == nil { return }`).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok.String() == "break" || s.Tok.String() == "continue" || s.Tok.String() == "goto"
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
