package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewBatchPool builds the batchpool analyzer.
//
// batchpool enforces the pooled-batch ownership discipline of
// internal/core: a *core.Batch obtained from core.GetBatch must, on
// every path out of the acquiring function, either reach core.PutBatch
// or be handed off (sent on a channel, returned, stored in a struct,
// captured by a goroutine/closure — an explicit ownership transfer),
// and must never be touched again after PutBatch. The analysis is a
// per-function abstract interpretation over a four-point lattice
// (held, released, maybe-released, escaped); calls that take the batch
// as a plain argument are borrows (NextBatch fills, AppendRange reads)
// and do not change ownership.
func NewBatchPool() *Analyzer {
	return &Analyzer{
		Name: "batchpool",
		Doc: "check core.GetBatch/PutBatch pairing: no pool leaks on any return path, no use after PutBatch\n\n" +
			"Pooled batches are owned: the function that calls GetBatch must PutBatch on every\n" +
			"path that does not explicitly transfer ownership (channel send, return, store).",
		Run: runBatchPool,
	}
}

// bpState is the abstract ownership state of a tracked batch variable.
type bpState int

const (
	bpHeld     bpState = iota // owned here, not yet released or transferred
	bpReleased                // PutBatch called on every path reaching this point
	bpMaybe                   // released on some paths, still held on others
	bpEscaped                 // ownership transferred; no further obligations
)

// bpStates maps tracked variables to their current abstract state.
type bpStates map[types.Object]bpState

func (st bpStates) clone() bpStates {
	out := make(bpStates, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// bpMerge joins the states of two control-flow paths.
func bpMerge(a, b bpState) bpState {
	if a == b {
		return a
	}
	if a == bpEscaped || b == bpEscaped {
		return bpEscaped
	}
	return bpMaybe // some mix of held/released/maybe
}

func bpMergeInto(dst, src bpStates) {
	for k, v := range src {
		if cur, ok := dst[k]; ok {
			dst[k] = bpMerge(cur, v)
		} else {
			dst[k] = v
		}
	}
}

func runBatchPool(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bp := &bpChecker{pass: pass}
					bp.function(fn.Body)
				}
				return true // nested FuncLits handled below
			case *ast.FuncLit:
				bp := &bpChecker{pass: pass}
				bp.function(fn.Body)
				return true
			}
			return true
		})
	}
}

type bpChecker struct {
	pass *Pass
}

// function analyzes one function body: batches acquired here must be
// released or handed off by every exit.
func (c *bpChecker) function(body *ast.BlockStmt) {
	st := make(bpStates)
	out, term := c.block(body.List, st)
	if !term {
		c.leakCheck(out, body.End()-1, "function end")
	}
}

// leakCheck reports tracked variables still (possibly) held at an exit.
func (c *bpChecker) leakCheck(st bpStates, pos token.Pos, where string) {
	for obj, s := range st {
		switch s {
		case bpHeld:
			c.pass.Reportf(pos, "pooled batch %s leaks at %s: no PutBatch or ownership transfer on this path", obj.Name(), where)
		case bpMaybe:
			c.pass.Reportf(pos, "pooled batch %s may leak at %s: PutBatch is missing on some paths", obj.Name(), where)
		}
	}
}

// block interprets a statement list, returning the exit states and
// whether the list definitely transfers control out of the block.
func (c *bpChecker) block(list []ast.Stmt, st bpStates) (bpStates, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *bpChecker) stmt(s ast.Stmt, st bpStates) (bpStates, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, st)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if c.isAcquire(vs.Values[i]) {
							if obj := c.pass.Info.Defs[name]; obj != nil {
								st[obj] = bpHeld
							}
							continue
						}
						c.effects(vs.Values[i], st)
					}
				}
			}
		}
		return st, false
	case *ast.ExprStmt:
		c.effects(s.X, st)
		return st, false
	case *ast.SendStmt:
		c.effects(s.Chan, st)
		c.escapeBareIdent(s.Value, st)
		return st, false
	case *ast.IncDecStmt:
		c.effects(s.X, st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.escapeBareIdent(r, st)
		}
		c.leakCheck(st, s.Pos(), "return")
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this block; the states at
		// the jump are not merged back (approximation: a batch carried
		// across a break is caught by the end-of-function check).
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.effects(s.Cond, st)
		thenOut, thenTerm := c.block(s.Body.List, st.clone())
		elseSt := st.clone()
		var elseOut bpStates
		elseTerm := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut, elseTerm = c.block(e.List, elseSt)
			default:
				elseOut, elseTerm = c.stmt(s.Else, elseSt)
			}
		} else {
			elseOut = elseSt
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			bpMergeInto(thenOut, elseOut)
			return thenOut, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.effects(s.Cond, st)
		}
		bodyOut, _ := c.block(s.Body.List, st.clone())
		if s.Post != nil {
			bodyOut, _ = c.stmt(s.Post, bodyOut)
		}
		// A batch acquired inside the loop body and still held when the
		// iteration ends is either overwritten next iteration or carried
		// out of the loop unreleased.
		for obj, state := range bodyOut {
			if _, outer := st[obj]; !outer && (state == bpHeld || state == bpMaybe) {
				c.pass.Reportf(s.Body.End()-1, "pooled batch %s is still held at the end of the loop body: PutBatch or hand it off before the next iteration", obj.Name())
				bodyOut[obj] = bpEscaped // report once
			}
		}
		bpMergeInto(bodyOut, st)
		return bodyOut, false
	case *ast.RangeStmt:
		c.effects(s.X, st)
		bodyOut, _ := c.block(s.Body.List, st.clone())
		bpMergeInto(bodyOut, st)
		return bodyOut, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.effects(s.Tag, st)
		}
		return c.clauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		return c.clauses(s.Body.List, st)
	case *ast.SelectStmt:
		merged := make(bpStates)
		anyFall := false
		allTerm := true
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clSt := st.clone()
			if comm.Comm != nil {
				clSt, _ = c.stmt(comm.Comm, clSt)
			}
			out, term := c.block(comm.Body, clSt)
			if !term {
				anyFall = true
				allTerm = false
				bpMergeInto(merged, out)
			}
		}
		if len(s.Body.List) == 0 {
			return st, false
		}
		if allTerm {
			return st, true
		}
		_ = anyFall
		return merged, false
	case *ast.BlockStmt:
		return c.block(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		// defer PutBatch(v) releases at every exit: the variable has no
		// further obligations (and any later use is still legal until
		// the function returns), so it drops out of tracking.
		if c.isRelease(s.Call) {
			if obj := c.bareIdentObj(s.Call.Args[0], st); obj != nil {
				st[obj] = bpEscaped
				return st, false
			}
		}
		c.effects(s.Call, st)
		return st, false
	case *ast.GoStmt:
		// Ownership crosses a goroutine boundary: everything referenced
		// escapes.
		c.escapeAll(s.Call, st)
		return st, false
	}
	return st, false
}

func (c *bpChecker) clauses(list []ast.Stmt, st bpStates) (bpStates, bool) {
	merged := make(bpStates)
	sawFall := false
	hasDefault := false
	for _, cl := range list {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			c.effects(e, st)
		}
		out, term := c.block(cc.Body, st.clone())
		if !term {
			sawFall = true
			bpMergeInto(merged, out)
		}
	}
	if !hasDefault {
		// The zero-case path falls through with the entry state.
		sawFall = true
		bpMergeInto(merged, st)
	}
	if !sawFall {
		return st, true
	}
	return merged, false
}

// assign handles acquisitions (v := GetBatch()) and general effects.
func (c *bpChecker) assign(s *ast.AssignStmt, st bpStates) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			if !c.isAcquire(rhs) {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue // stored straight into a field/slot: immediate transfer
			}
			obj := c.pass.Info.Defs[id]
			if obj == nil {
				obj = c.pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if prev, tracked := st[obj]; tracked && (prev == bpHeld || prev == bpMaybe) {
				c.pass.Reportf(s.Pos(), "pooled batch %s is reassigned while still held: the previous batch leaks", id.Name)
			}
			st[obj] = bpHeld
		}
	}
	// Remaining effects: reads/escapes on the RHS, uses on the LHS.
	for i, rhs := range s.Rhs {
		if len(s.Lhs) == len(s.Rhs) && c.isAcquire(rhs) {
			if _, ok := s.Lhs[i].(*ast.Ident); ok {
				continue // handled above
			}
		}
		c.escapeBareIdent(rhs, st)
	}
	for _, lhs := range s.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			c.effects(lhs, st)
		}
	}
}

// isAcquire reports whether e is a direct core.GetBatch() call.
func (c *bpChecker) isAcquire(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isCallTo(c.pass.Info, call, "core", "GetBatch")
}

// isRelease reports whether call is core.PutBatch(x).
func (c *bpChecker) isRelease(call *ast.CallExpr) bool {
	return len(call.Args) == 1 && isCallTo(c.pass.Info, call, "core", "PutBatch")
}

// bareIdentObj returns the tracked object when e is a plain identifier
// for a tracked batch variable.
func (c *bpChecker) bareIdentObj(e ast.Expr, st bpStates) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, tracked := st[obj]; !tracked {
		return nil
	}
	return obj
}

// effects walks an expression for ownership effects: PutBatch releases,
// sends/returns/stores/captures escape, everything else is a borrow or
// read (flagged when the batch was already released).
func (c *bpChecker) effects(e ast.Expr, st bpStates) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.isRelease(n) {
				if obj := c.bareIdentObj(n.Args[0], st); obj != nil {
					if st[obj] == bpReleased {
						c.pass.Reportf(n.Pos(), "pooled batch %s is passed to PutBatch twice", obj.Name())
					}
					st[obj] = bpReleased
					return false
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				// append(dst, v): v is retained by dst — a transfer.
				for i, a := range n.Args {
					if i == 0 {
						c.effects(a, st)
						continue
					}
					c.escapeBareIdent(a, st)
				}
				return false
			}
			// Plain call: arguments are borrowed, not transferred.
			c.effects(n.Fun, st)
			for _, a := range n.Args {
				c.effects(a, st)
			}
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					c.escapeBareIdent(kv.Value, st)
				} else {
					c.escapeBareIdent(el, st)
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				c.escapeBareIdent(n.X, st)
				return false
			}
		case *ast.FuncLit:
			// Captured by a closure: the closure may outlive this frame.
			c.escapeAll(n.Body, st)
			return false
		case *ast.Ident:
			if obj := c.pass.Info.Uses[n]; obj != nil {
				if s, tracked := st[obj]; tracked && s == bpReleased {
					c.pass.Reportf(n.Pos(), "use of pooled batch %s after PutBatch", n.Name)
					st[obj] = bpEscaped // report once
				}
			}
		}
		return true
	})
}

// escapeBareIdent marks e's batch as transferred when e is a bare
// tracked identifier; otherwise it applies plain effects.
func (c *bpChecker) escapeBareIdent(e ast.Expr, st bpStates) {
	if obj := c.bareIdentObj(e, st); obj != nil {
		if st[obj] == bpReleased {
			c.pass.Reportf(e.Pos(), "use of pooled batch %s after PutBatch", obj.Name())
		}
		st[obj] = bpEscaped
		return
	}
	c.effects(e, st)
}

// escapeAll marks every tracked identifier referenced under n escaped.
func (c *bpChecker) escapeAll(n ast.Node, st bpStates) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.Info.Uses[id]; obj != nil {
				if _, tracked := st[obj]; tracked {
					st[obj] = bpEscaped
				}
			}
		}
		return true
	})
}
