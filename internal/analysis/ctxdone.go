package analysis

import (
	"go/ast"
	"go/types"
)

// NewCtxDone builds the ctxdone analyzer.
//
// Engine producers stream batches over channels from goroutines that
// take a context: a bare `ch <- b` inside their production loop blocks
// forever once the consumer stops reading, leaking the goroutine and
// every pooled batch it holds. In any function that has a
// context.Context in scope, a channel send inside a for/range loop must
// be a select case alongside a cancellation case — a receive from
// ctx.Done() or from a done channel (any receive of a struct{}-element
// channel). Functions without a context in scope are exempt: they have
// no cancellation signal to select on. Function literals are separate
// scopes — a closure that takes or captures no context is exempt even
// inside a context-aware function.
func NewCtxDone() *Analyzer {
	return &Analyzer{
		Name: "ctxdone",
		Doc: "check that channel-send loops in context-aware producers select on ctx.Done()/done\n\n" +
			"A bare send in a production loop deadlocks the goroutine when the consumer\n" +
			"abandons the stream; every loop send must race a cancellation receive.",
		Run: runCtxDone,
	}
}

func runCtxDone(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCtxFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkCtxFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// checkCtxFunc analyzes one function body (FuncLits excluded — they are
// visited as their own functions).
func checkCtxFunc(pass *Pass, body *ast.BlockStmt) {
	if !referencesContext(pass, body) {
		return
	}
	var walkLoops func(n ast.Node, inLoop bool)
	walkLoops = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate scope
		case *ast.ForStmt:
			walkLoops(n.Body, true)
			return
		case *ast.RangeStmt:
			walkLoops(n.Body, true)
			return
		case *ast.SendStmt:
			if inLoop {
				pass.Reportf(n.Arrow, "channel send inside a loop without a cancellation case: select on ctx.Done() (or the stream's done channel) alongside the send")
			}
			return
		case *ast.SelectStmt:
			if inLoop && !selectHasCancel(pass, n) && selectHasSend(n) {
				pass.Reportf(n.Select, "select sends in a loop but has no cancellation case: add a ctx.Done()/done receive")
			}
			// Clause bodies may contain nested loops/sends.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						walkLoops(s, inLoop)
					}
				}
			}
			return
		}
		// Generic descent preserving inLoop.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			switch child.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SendStmt, *ast.SelectStmt:
				walkLoops(child, inLoop)
				return false
			}
			return true
		})
	}
	walkLoops(body, false)
}

// referencesContext reports whether the body uses any context.Context
// value (parameter or capture) — the signal that cancellation is
// available and expected to be honored.
func referencesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if isNamed(obj.Type(), "context", "Context") {
			found = true
			return false
		}
		return true
	})
	return found
}

// selectHasSend reports whether any comm clause is a send.
func selectHasSend(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok {
			if _, ok := cc.Comm.(*ast.SendStmt); ok {
				return true
			}
		}
	}
	return false
}

// selectHasCancel reports whether any comm clause receives a
// cancellation signal: `<-ctx.Done()` or a receive from any channel of
// struct{} elements (the done-channel convention).
func selectHasCancel(pass *Pass, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if un, ok := comm.X.(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
				recv = un.X
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if un, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && un.Op.String() == "<-" {
					recv = un.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if call, ok := ast.Unparen(recv).(*ast.CallExpr); ok {
			if s, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
				return true
			}
		}
		if ch, ok := pass.Info.TypeOf(recv).(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}
