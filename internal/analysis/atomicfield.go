package analysis

import (
	"go/ast"
	"go/types"
)

// NewAtomicField builds the atomicfield analyzer.
//
// A struct field accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere: a single plain load can observe a
// torn or stale value, and a plain store can be lost entirely. The
// repository's own convention is the typed atomics (atomic.Uint64 and
// friends, as in internal/obs) which make mixing impossible; this
// analyzer covers the raw-pointer form. Collect records every field
// whose address is passed to an atomic.*(&x.f, ...) call, across all
// loaded packages; Run flags plain selector reads and writes of those
// fields. Taking the address again (to call atomic) is not flagged.
func NewAtomicField() *Analyzer {
	a := &Analyzer{
		Name: "atomicfield",
		Doc: "check that struct fields accessed via sync/atomic are never read or written plainly\n\n" +
			"Mixing atomic.LoadX/StoreX with direct field access defeats the memory-ordering\n" +
			"guarantees; use the atomic API (or typed atomics) on every access.",
	}
	// Fields are keyed "pkgpath.Type.field". String keys survive the
	// object-identity split between source-checked and export-data
	// views of the same package.
	atomicFields := make(map[string]bool)
	key := func(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return "", false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !v.IsField() || v.Pkg() == nil {
			return "", false
		}
		n := namedType(s.Recv())
		if n == nil || n.Obj() == nil {
			return "", false
		}
		return v.Pkg().Path() + "." + n.Obj().Name() + "." + v.Name(), true
	}
	a.Collect = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil || !isPkg(f.Pkg(), "sync/atomic") {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
						if k, ok := key(pass.Info, sel); ok {
							atomicFields[k] = true
						}
					}
				}
				return true
			})
		}
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				k, ok := key(pass.Info, sel)
				if !ok || !atomicFields[k] {
					return true
				}
				// &x.f is how the atomic call itself names the field;
				// only plain loads/stores are violations.
				if len(stack) >= 2 {
					if un, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && un.Op.String() == "&" {
						return true
					}
				}
				pass.Reportf(sel.Sel.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere; use the atomic API", k)
				return true
			})
		}
	}
	return a
}
