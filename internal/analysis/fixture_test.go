package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<path>, runs the analyzer over it, and
// matches diagnostics against `// want "regex"` comments analysistest-
// style: every diagnostic must be wanted by a regex on its line, and
// every want must be matched by exactly the diagnostics on its line.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(root, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	wantRx := regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(rest, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					key := posKey(pos)
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ws := wants[posKey(pos)]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return pos.Filename + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [16]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestBatchPoolFixture(t *testing.T)   { runFixture(t, NewBatchPool(), "batchpool/a") }
func TestColnessFixture(t *testing.T)     { runFixture(t, NewColness(), "colness/a") }
func TestAtomicFieldFixture(t *testing.T) { runFixture(t, NewAtomicField(), "atomicfield/a") }
func TestLockSnapFixture(t *testing.T)    { runFixture(t, NewLockSnap(), "locksnap/server") }
func TestCtxDoneFixture(t *testing.T)     { runFixture(t, NewCtxDone(), "ctxdone/a") }

// TestSuiteCleanOnTree pins the tentpole acceptance bar: the whole
// module runs clean under every analyzer. New code that violates a
// checked invariant fails this test (and cmd/tpvet in CI) until it is
// fixed or carries a justified //tpvet:ignore.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool to list and load the module")
	}
	pkgs, err := Load([]string{"github.com/tpset/tpset/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
