package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/tpset/tpset/internal/invariant"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/relation"
)

// RelVersion identifies one observed catalog state of one relation.
type RelVersion struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
}

// Catalog is a versioned, concurrency-safe store of named TP relations.
//
// Versions are drawn from one catalog-wide monotonic counter: every Put
// and Drop bumps it, and a Put stamps the new counter value onto the
// entry. Distinct observable states of a relation therefore always carry
// distinct versions — even across a drop-and-reload of the same name —
// which is what the query-result cache keys on.
//
// Stored relations are treated as immutable; Put replaces the pointer.
// Callers receiving a *relation.Relation from the catalog must not mutate
// it.
//
// The catalog additionally maintains one catalog-wide fact dictionary:
// every stored relation is bound to it at admission, so any query over
// any subset of relations runs entirely on interned integer compares —
// the advancer, sorts, fact-hash partitioning and k-way merges never
// touch a key string. Admission of facts the dictionary has not seen
// rebuilds it and rebinds the other relations onto content-identical
// clones (admission-time cost, query-time benefit); in-flight snapshots
// keep their previous, mutually consistent pointers. The dictionary may
// be a superset of the facts currently stored — binding only requires
// presence, and order preservation is unaffected by unused keys — so
// drops never force a rebuild.
type Catalog struct {
	mu    sync.RWMutex
	rels  map[string]catEntry
	clock uint64
	dict  *keys.Dict
}

type catEntry struct {
	rel     *relation.Relation
	version uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]catEntry)}
}

// Put loads or replaces the relation under name, returning its new
// version and whether the name already existed (decided under the same
// write lock, so concurrent Puts report create-vs-replace consistently).
// Admission binds rel to the catalog-wide fact dictionary (rebuilding it
// when rel brings genuinely new facts), so the relation — including the
// caller's pointer — must not be mutated afterwards.
func (c *Catalog) Put(name string, rel *relation.Relation) (version uint64, existed bool) {
	version, existed, _ = c.PutRebound(name, rel)
	return version, existed
}

// PutRebound is Put exposing the admission side effect a durable store
// must mirror: when admission rebuilt the catalog dictionary, rebound
// maps every *other* stored relation name to the freshly rebound clone
// now installed in the catalog (nil on the fast path, where no sibling
// changed). A persistence layer rewrites those segments so the on-disk
// generation converges with memory; until it does, mixed on-disk
// generations are healed at restore (segment.Store.Restore).
func (c *Catalog) PutRebound(name string, rel *relation.Relation) (version uint64, existed bool, rebound map[string]*relation.Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rebound = c.admit(name, rel)
	_, existed = c.rels[name]
	c.clock++
	c.rels[name] = catEntry{rel: rel, version: c.clock}
	return c.clock, existed, rebound
}

// Restore seeds the catalog from a durable store's recovered state:
// every relation is installed under a fresh version and the recovered
// dictionary becomes the catalog dictionary, so subsequent admissions
// take the fast path whenever their facts are already known. Restored
// relations are typically frozen (mmap-backed); that is compatible with
// later dictionary rebuilds, which rebind via unfrozen clones. Call it
// once, on an empty catalog, before serving.
func (c *Catalog) Restore(rels map[string]*relation.Relation, dict *keys.Dict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic version assignment
	for _, name := range names {
		c.clock++
		c.rels[name] = catEntry{rel: rels[name], version: c.clock}
	}
	if dict != nil {
		c.dict = dict
	}
}

// admit binds rel to the catalog dictionary. Fast path: every fact of
// rel is already a dictionary key — bind and done. Slow path: rebuild
// the dictionary over the facts of rel plus all currently stored
// relations (which also prunes keys of dropped or replaced facts) and
// rebind every stored relation via a content-identical clone; versions
// are unchanged because the logical relation content is unchanged.
// Rebinding preserves sortedness: both dictionaries order ids by key.
//
// Admitted relations are also projected into columns (BuildCols) once,
// at bind time: query plans over the catalog run AssumeSorted, so this
// is the single point where the scanned leaves gain their columnar view
// (Bind invalidates any previous projection).
//
// The returned map holds the rebound sibling clones of the slow path
// (nil when the fast path ran); see PutRebound.
func (c *Catalog) admit(name string, rel *relation.Relation) map[string]*relation.Relation {
	if invariant.Enabled {
		// Tagged builds re-prove the admission contract the mutation
		// paths establish (sorted, duplicate-free — the Algorithm 1–4
		// preconditions every AssumeSorted plan over the catalog leans
		// on) and, after the bind below, the freshly built projection's
		// row mirror.
		invariant.CheckSorted(rel, "server.Catalog.admit")
		invariant.CheckDuplicateFree(rel, "server.Catalog.admit")
		defer invariant.CheckColsMirror(rel, "server.Catalog.admit")
	}
	relKeys := factKeys(rel, nil)
	if c.dict != nil && c.dict.Contains(relKeys) {
		rel.Bind(c.dict)
		rel.BuildCols()
		return nil
	}
	union := relKeys
	for other, e := range c.rels {
		if other == name {
			continue // being replaced; its facts need not survive
		}
		union = factKeys(e.rel, union)
	}
	dict := keys.BuildDict(union)
	rel.Bind(dict)
	rel.BuildCols()
	var rebound map[string]*relation.Relation
	for other, e := range c.rels {
		if other == name {
			continue
		}
		clone := e.rel.Clone()
		clone.Bind(dict)
		clone.BuildCols()
		c.rels[other] = catEntry{rel: clone, version: e.version}
		if rebound == nil {
			rebound = make(map[string]*relation.Relation)
		}
		rebound[other] = clone
	}
	c.dict = dict
	return rebound
}

// factKeys appends the fact keys of r to dst, skipping consecutive
// repeats — stored catalog relations are sorted, so this yields the
// distinct key set without a dedup map (BuildDict tolerates the
// remaining duplicates of unsorted input).
func factKeys(r *relation.Relation, dst []string) []string {
	for i := range r.Tuples {
		k := r.Tuples[i].Key()
		if n := len(dst); n > 0 && dst[n-1] == k {
			continue
		}
		dst = append(dst, k)
	}
	return dst
}

// Checkpoint captures the catalog's relation table and dictionary so a
// mutation whose durable mirror fails can be rolled back (Rollback).
// The snapshot is consistent on its own, but it stays valid as a
// rollback target only while no other mutation lands between Checkpoint
// and Rollback — the server's mutGate provides exactly that
// serialization. Entries are copied by value; the relation pointers are
// shared, which is safe because stored relations are immutable.
type Checkpoint struct {
	rels map[string]catEntry
	dict *keys.Dict
}

// Checkpoint snapshots the current relation table and dictionary.
func (c *Catalog) Checkpoint() Checkpoint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rels := make(map[string]catEntry, len(c.rels))
	for name, e := range c.rels {
		rels[name] = e
	}
	return Checkpoint{rels: rels, dict: c.dict}
}

// Rollback restores the relation table and dictionary captured by cp.
// The clock is deliberately NOT rolled back: versions are cache-key
// material, and re-issuing one after a rollback could alias a result
// cached against the rolled-back state. A post-rollback catalog is
// bitwise the pre-mutation catalog except for a gap in the version
// sequence, which nothing keys on.
func (c *Catalog) Rollback(cp Checkpoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels = cp.rels
	c.dict = cp.dict
}

// Get returns the relation under name and its version.
func (c *Catalog) Get(name string) (*relation.Relation, uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	return e.rel, e.version, ok
}

// Drop removes the relation under name; it reports whether it existed.
// A successful drop bumps the catalog clock, so a later reload of the same
// name can never reuse a previously observed version.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[name]; !ok {
		return false
	}
	c.clock++
	delete(c.rels, name)
	return true
}

// Len returns the number of stored relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Clock returns the current value of the catalog-wide version counter.
func (c *Catalog) Clock() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clock
}

// List returns every stored relation's name and version, sorted by name.
func (c *Catalog) List() []RelVersion {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]RelVersion, 0, len(c.rels))
	for name, e := range c.rels {
		out = append(out, RelVersion{Name: name, Version: e.version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot resolves the named relations under one read lock, returning an
// evaluation database plus the version vector (sorted by name) that
// identifies the observed state. The single lock acquisition makes the
// snapshot atomic: a concurrent Put either fully precedes it (new pointer
// and version) or fully follows it (old pointer and version) — never a
// torn mix for one relation.
func (c *Catalog) Snapshot(names []string) (map[string]*relation.Relation, []RelVersion, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db := make(map[string]*relation.Relation, len(names))
	versions := make([]RelVersion, 0, len(names))
	var missing []string
	for _, name := range names {
		e, ok := c.rels[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if _, dup := db[name]; dup {
			continue
		}
		db[name] = e.rel
		versions = append(versions, RelVersion{Name: name, Version: e.version})
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, nil, fmt.Errorf("unknown relation(s) %s", strings.Join(missing, ", "))
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Name < versions[j].Name })
	return db, versions, nil
}
