package server

import (
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

func rel1(name, id string) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "Product"))
	r.AddBase(relation.NewFact("milk"), id, 1, 5, 0.5)
	return r
}

func TestCatalogVersionsMonotonic(t *testing.T) {
	c := NewCatalog()
	v1, existed := c.Put("a", rel1("a", "a1"))
	if existed {
		t.Fatal("first Put reported existed")
	}
	v2, _ := c.Put("b", rel1("b", "b1"))
	if v1 >= v2 {
		t.Fatalf("versions not increasing: %d then %d", v1, v2)
	}
	v3, replaced := c.Put("a", rel1("a", "a2")) // replace bumps
	if !replaced {
		t.Fatal("replacing Put reported existed=false")
	}
	if v3 <= v2 {
		t.Fatalf("replace did not bump: %d after %d", v3, v2)
	}
	if _, v, ok := c.Get("a"); !ok || v != v3 {
		t.Fatalf("Get(a) = version %d, %v; want %d, true", v, ok, v3)
	}

	// Drop bumps the clock, so re-loading the same name never reuses a
	// version an earlier observer might have cached under.
	if !c.Drop("a") {
		t.Fatal("Drop(a) = false")
	}
	if c.Drop("a") {
		t.Fatal("second Drop(a) = true")
	}
	v4, _ := c.Put("a", rel1("a", "a3"))
	if v4 <= v3 {
		t.Fatalf("post-drop reload reused version: %d after %d", v4, v3)
	}
}

func TestCatalogSnapshot(t *testing.T) {
	c := NewCatalog()
	va, _ := c.Put("a", rel1("a", "a1"))
	vb, _ := c.Put("b", rel1("b", "b1"))

	db, versions, err := c.Snapshot([]string{"b", "a", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 2 {
		t.Fatalf("db has %d entries, want 2", len(db))
	}
	want := []RelVersion{{"a", va}, {"b", vb}}
	if len(versions) != 2 || versions[0] != want[0] || versions[1] != want[1] {
		t.Fatalf("versions = %v, want %v (sorted by name, deduplicated)", versions, want)
	}

	if _, _, err := c.Snapshot([]string{"a", "zz", "yy"}); err == nil {
		t.Fatal("Snapshot with unknown names: want error")
	} else if got := err.Error(); got != "unknown relation(s) yy, zz" {
		t.Fatalf("error = %q", got)
	}
}

func TestCatalogList(t *testing.T) {
	c := NewCatalog()
	c.Put("z", rel1("z", "z1"))
	c.Put("a", rel1("a", "a1"))
	l := c.List()
	if len(l) != 2 || l[0].Name != "a" || l[1].Name != "z" {
		t.Fatalf("List() = %v, want sorted [a z]", l)
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d", c.Len())
	}
}
