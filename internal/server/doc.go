// Package server is the multi-tier HTTP/JSON query service over the TP
// set-operation engines: the deployable front-end the ROADMAP's
// "heavy traffic" north star asks for, layered strictly on top of the
// public evaluation stack (parse → optimize → partition-parallel engine).
//
// It has three tiers:
//
//   - Catalog — a versioned, in-memory store of named TP relations behind
//     an RWMutex. Every load, replace or drop bumps a catalog-wide
//     monotonic version counter and stamps the relation, so any observable
//     catalog state has a distinct version vector. Relations inside the
//     catalog are immutable: a PUT replaces the pointer, never the tuples,
//     which is what makes lock-free concurrent reads by the evaluation
//     tier safe.
//
//   - Cache — a bounded LRU over query results, keyed on the pair
//     (canonical query string, sorted input-relation versions); see
//     query.Canonical for the key's first half. A repeated query over
//     unchanged relations is served from the cache without re-sweeping;
//     bumping any input relation's version changes the key and eagerly
//     invalidates exactly the entries that depended on that relation.
//     Hit/miss/eviction/invalidation counters are exposed on GET /metrics.
//
//   - Handlers — PUT/GET/DELETE /relations/{name} (JSON wire codec
//     round-tripping lineage through the lineage parser),
//     POST /query (with per-request workers and lazyProb knobs; workers
//     outside [0, MaxWorkers] are rejected with 400),
//     POST /query/stream (NDJSON: meta line, one tuple per line flushed
//     incrementally, done trailer; result cache bypassed),
//     GET /stats/{name} (Table IV statistics), GET /relations,
//     GET /healthz and GET /metrics.
//
// Concurrency invariants: the catalog lock is held only for map access,
// never during evaluation; evaluation works on an immutable snapshot of
// relation pointers, so long sweeps never block loads (and vice versa). A
// query that races with a PUT keys its cache entry under the version
// vector it actually read, so the cache can never serve a result computed
// from relations the catalog no longer holds under the same versions.
package server
