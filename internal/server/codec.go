package server

import (
	"fmt"
	"math"
	"strings"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// The JSON wire format for TP relations. One tuple is
//
//	{"fact": ["milk"], "lineage": "c1∧¬a1", "ts": 2, "te": 4, "p": 0.42,
//	 "varProbs": {"c1": 0.6, "a1": 0.3}}
//
// Lineage travels in its rendered form (see lineage.Expr.String) and is
// reconstructed through the lineage parser, so — unlike the CSV layout,
// which keeps derived formulas opaque — the JSON codec round-trips the
// full formula structure. varProbs carries the marginal probability of
// every variable occurring in the formula; it may be omitted when the
// lineage is a single bare variable, in which case the tuple's own p is
// the variable's marginal.

// TupleJSON is the wire form of one TP tuple (F, λ, T, p).
type TupleJSON struct {
	Fact     []string           `json:"fact"`
	Lineage  string             `json:"lineage"`
	Ts       int64              `json:"ts"`
	Te       int64              `json:"te"`
	Prob     float64            `json:"p"`
	VarProbs map[string]float64 `json:"varProbs,omitempty"`
}

// RelationJSON is the wire form of a TP relation. Version is stamped by
// the catalog on responses and ignored on requests.
type RelationJSON struct {
	Name    string      `json:"name"`
	Attrs   []string    `json:"attrs"`
	Version uint64      `json:"version,omitempty"`
	Tuples  []TupleJSON `json:"tuples"`
}

// EncodeRelation converts a relation to its wire form. version 0 omits the
// version field.
func EncodeRelation(r *relation.Relation, version uint64) RelationJSON {
	rj := RelationJSON{
		Name:    r.Schema.Name,
		Attrs:   r.Schema.Attrs,
		Version: version,
		Tuples:  make([]TupleJSON, 0, len(r.Tuples)),
	}
	if rj.Attrs == nil {
		rj.Attrs = []string{}
	}
	for i := range r.Tuples {
		rj.Tuples = append(rj.Tuples, EncodeTuple(&r.Tuples[i]))
	}
	return rj
}

// EncodeTuple converts one tuple to its wire form — the per-line payload
// of the NDJSON streaming endpoint, and the element encoder of
// EncodeRelation.
func EncodeTuple(t *relation.Tuple) TupleJSON {
	var tj TupleJSON
	EncodeTupleInto(&tj, t, nil)
	return tj
}

// EncodeTupleInto fills tj with the wire form of t, reusing probs (when
// non-nil) as the VarProbs map — the allocation-free form the batched
// NDJSON stream uses: one TupleJSON and one marginals map serve a whole
// stream instead of being reallocated per tuple. The encoded bytes are
// identical to EncodeTuple's (JSON maps serialize key-sorted). tj and
// probs must not be retained across calls by the consumer; pass probs
// nil to allocate a fresh map (EncodeTuple's escape-safe behaviour).
func EncodeTupleInto(tj *TupleJSON, t *relation.Tuple, probs map[string]float64) {
	tj.Fact = []string(t.Fact)
	tj.Lineage = t.Lineage.String()
	tj.Ts = t.T.Ts
	tj.Te = t.T.Te
	tj.Prob = t.Prob
	tj.VarProbs = nil
	encodeVarProbs(tj, t.Lineage, probs)
}

// EncodeBatchInto fills tj with the wire form of row i of b, reading
// the interval, probability and lineage from the batch's packed columns
// — the NDJSON stream's read side when the execution stack delivers
// columnar blocks. The fact values still come from the payload row (the
// wire format ships strings), and the encoded bytes are identical to
// EncodeTupleInto over the same row. A batch without columns
// (Batch.HasCols false) falls back to the row path; tj/probs reuse
// rules are as for EncodeTupleInto.
func EncodeBatchInto(tj *TupleJSON, b *core.Batch, i int, probs map[string]float64) {
	if b.Dict == nil {
		EncodeTupleInto(tj, &b.Tuples[i], probs)
		return
	}
	lam := b.Lam[i]
	tj.Fact = []string(b.Tuples[i].Fact)
	tj.Lineage = lam.String()
	tj.Ts = b.Ts[i]
	tj.Te = b.Te[i]
	tj.Prob = b.Prob[i]
	tj.VarProbs = nil
	encodeVarProbs(tj, lam, probs)
}

// encodeVarProbs attaches the formula's variable marginals to tj. A bare
// variable's marginal is recoverable from the tuple itself when the
// probability was valuated eagerly; anything else (a real formula, or a
// lazily unvaluated tuple) ships explicit marginals.
func encodeVarProbs(tj *TupleJSON, lam *lineage.Expr, probs map[string]float64) {
	if lam == nil || (lam.Kind() == lineage.KindVar && tj.Prob == lam.VarProb()) {
		return
	}
	if probs == nil {
		probs = make(map[string]float64)
	} else {
		clear(probs)
	}
	lam.VarProbs(probs)
	tj.VarProbs = probs
}

// DecodeRelation reconstructs a relation from its wire form. name, when
// non-empty, overrides rj.Name (the URL path segment wins over the body).
// Every lineage string runs through the lineage parser; variable marginals
// resolve through the tuple's varProbs map, falling back to the tuple's p
// for a single bare variable. The decoded relation is sorted into
// canonical (fact, Ts) order but NOT validated for duplicate-freeness —
// callers admitting data of unknown provenance (the PUT handler) must call
// ValidateDuplicateFree themselves.
func DecodeRelation(rj RelationJSON, name string) (*relation.Relation, error) {
	if name == "" {
		name = rj.Name
	}
	if name == "" {
		return nil, fmt.Errorf("relation has no name")
	}
	if len(rj.Attrs) == 0 {
		return nil, fmt.Errorf("relation %q: needs at least one attribute", name)
	}
	rel := relation.New(relation.NewSchema(name, rj.Attrs...))
	for i, tj := range rj.Tuples {
		t, err := decodeTuple(tj, len(rj.Attrs))
		if err != nil {
			return nil, fmt.Errorf("relation %q: tuple %d: %w", name, i, err)
		}
		rel.Add(t)
	}
	// Intern before sorting: ids are constructed once at the wire
	// boundary and the sort runs on integer compares (catalog admission
	// rebinds to the catalog-wide dictionary, which preserves the order).
	rel.Intern()
	rel.Sort()
	return rel, nil
}

func decodeTuple(tj TupleJSON, nattrs int) (relation.Tuple, error) {
	var zero relation.Tuple
	if len(tj.Fact) != nattrs {
		return zero, fmt.Errorf("fact has %d values, schema has %d attributes", len(tj.Fact), nattrs)
	}
	for i, v := range tj.Fact {
		if v == "" {
			// Same admission rule as csvio.Read: an empty value would give
			// single-attribute facts the empty comparison key, which the
			// advancer cannot distinguish from its fresh-state sentinel.
			return zero, fmt.Errorf("empty fact value at attribute %d", i)
		}
	}
	if tj.Ts >= tj.Te {
		return zero, fmt.Errorf("empty interval [%d,%d)", tj.Ts, tj.Te)
	}
	if tj.Prob < 0 || tj.Prob > 1 || math.IsNaN(tj.Prob) {
		return zero, fmt.Errorf("probability %v outside [0,1]", tj.Prob)
	}
	bare := strings.TrimSpace(tj.Lineage)
	expr, err := lineage.Parse(tj.Lineage, func(id string) (float64, error) {
		if p, ok := tj.VarProbs[id]; ok {
			if p <= 0 || p > 1 || math.IsNaN(p) {
				return 0, fmt.Errorf("varProbs[%q] = %v outside (0,1]", id, p)
			}
			return p, nil
		}
		if id == bare {
			// Single bare variable: the tuple's p IS the marginal.
			if tj.Prob <= 0 {
				return 0, fmt.Errorf("variable %q needs a positive marginal (tuple p = %v and no varProbs entry)", id, tj.Prob)
			}
			return tj.Prob, nil
		}
		return 0, fmt.Errorf("no varProbs entry for variable %q", id)
	})
	if err != nil {
		return zero, fmt.Errorf("lineage %q: %w", tj.Lineage, err)
	}
	if expr == nil {
		return zero, fmt.Errorf("lineage %q: null lineage is not a valid tuple annotation", tj.Lineage)
	}
	t := relation.NewDerivedLazy(relation.NewFact(tj.Fact...), expr, interval.New(tj.Ts, tj.Te))
	t.Prob = tj.Prob
	return t, nil
}
