package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/segment"
)

// Config tunes a Server.
type Config struct {
	// Workers is the default worker budget of POST /query when the request
	// does not set one. Values below one select runtime.GOMAXPROCS.
	Workers int
	// CacheSize bounds the result cache in entries. 0 selects
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// Logger receives structured request logs (one record per request,
	// plus request-scoped engine debug records when it is enabled at
	// Debug level). nil disables request logging entirely — no logger is
	// attached to request contexts and the handler chain has no logging
	// wrapper, so the unlogged server is exactly the PR 5 handler stack.
	Logger *slog.Logger
	// QueryTimeout bounds each query's evaluation wall time. A request's
	// timeoutMillis can tighten it but never exceed it; expiry answers
	// 504. Zero means no server-side deadline.
	QueryTimeout time.Duration
	// MaxConcurrent bounds the queries evaluating at once. Zero picks
	// 4x GOMAXPROCS; negative disables admission control entirely.
	MaxConcurrent int
	// MaxQueued bounds the queries waiting for an evaluation slot;
	// overflow is shed with 429 + Retry-After. Zero picks 4x the
	// concurrency bound; negative means no queue (immediate shed).
	MaxQueued int
	// MaxResultTuples bounds the result size a single query may
	// produce: the materialized path answers 422, a stream aborts with
	// an NDJSON error trailer. A budget violation is a client error,
	// never a silent truncation. Zero means unlimited.
	MaxResultTuples int
}

// DefaultCacheSize is the result-cache capacity when Config leaves it 0.
const DefaultCacheSize = 256

// Server is the HTTP/JSON query service: a versioned relation catalog, a
// query evaluator over the partition-parallel engine, and an LRU result
// cache. Create one with New, seed the catalog (Load or PUT requests) and
// serve Handler().
type Server struct {
	cfg     Config
	catalog *Catalog
	cache   *Cache
	mux     *http.ServeMux
	started time.Time
	metrics serverMetrics
	mut     mutGate
	gate    *admissionGate // nil = unlimited (Config.MaxConcurrent < 0)
}

// mutGate serializes catalog mutations with their mirror into the
// segment store, so WAL record order always matches catalog version
// order (two independent locks would let concurrent PUTs of one name
// ack in one order and persist in the other). Reads — snapshots,
// queries — never take it; the catalog and cache carry their own locks.
type mutGate struct {
	mu    sync.Mutex
	store *segment.Store // nil = memory-only (no -data-dir)
}

// MaxWorkers bounds the per-request worker budget: the engine sizes its
// worker pool eagerly from the budget, so an absurd value would allocate
// absurdly even on a tiny query. Requests beyond it (or below zero) are
// rejected with 400 rather than passed through to the engine.
const MaxWorkers = 4096

// Request bodies are bounded before they reach the JSON decoder, so an
// oversized (or unbounded) body cannot balloon server memory; overflow
// is reported as 413 Request Entity Too Large. Queries are short text —
// a megabyte is generous; relation uploads carry full tuple payloads and
// get a correspondingly larger bound.
const (
	// MaxQueryBodyBytes bounds POST /query and POST /query/stream bodies.
	MaxQueryBodyBytes = 1 << 20 // 1 MiB
	// MaxRelationBodyBytes bounds PUT /relations/{name} bodies.
	MaxRelationBodyBytes = 256 << 20 // 256 MiB
)

// maxRelationBody is the effective PUT limit; a variable so tests can
// exercise the overflow path without a multi-hundred-megabyte payload.
var maxRelationBody int64 = MaxRelationBodyBytes

// decodeBody decodes the request body into v under a byte limit,
// mapping overflow to a 413 httpError and malformed JSON to 400.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) *httpError {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf("decoding body: %v", err)}
	}
	return nil
}

// New returns a server with an empty catalog.
func New(cfg Config) *Server {
	size := cfg.CacheSize
	switch {
	case size == 0:
		size = DefaultCacheSize
	case size < 0:
		size = 0 // disabled
	}
	s := &Server{
		cfg:     cfg,
		catalog: NewCatalog(),
		cache:   NewCache(size),
		mux:     http.NewServeMux(),
		started: time.Now(),
		gate:    newGate(cfg.MaxConcurrent, cfg.MaxQueued),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /relations", s.handleListRelations)
	s.mux.HandleFunc("PUT /relations/{name}", s.handlePutRelation)
	s.mux.HandleFunc("GET /relations/{name}", s.handleGetRelation)
	s.mux.HandleFunc("DELETE /relations/{name}", s.handleDeleteRelation)
	s.mux.HandleFunc("GET /stats/{name}", s.handleStats)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /query/explain", s.handleQueryExplain)
	return s
}

// Handler returns the HTTP handler serving the API: the mux inside the
// panic-recovery net, inside (with a configured logger) the
// request-logging middleware. Recovery sits innermost so the log line
// still records the 500 it produces.
func (s *Server) Handler() http.Handler {
	h := s.recoverPanics(s.mux)
	if s.cfg.Logger == nil {
		return h
	}
	return s.requestLog(h)
}

// recoverPanics is the safety net under every handler: a panic must
// cost its own request a 500, not the process — on a query server, one
// malformed edge case in one operator must not take down the catalog
// everyone else is reading. The stack goes to the structured log and
// the panicsRecovered counter; the 500 is written only when the handler
// had not started a response (a mid-stream panic is handled inside the
// stream handler itself, which can still terminate its NDJSON framing
// validly — see handleQueryStream).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			s.metrics.panicsRecovered.Inc()
			lg := obs.Logger(r.Context())
			if lg == nil {
				lg = s.cfg.Logger
			}
			if lg != nil {
				lg.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", p),
					slog.String("stack", string(debug.Stack())))
			}
			if rec.code == 0 {
				writeError(rec, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// requestLog is the logging middleware: it mints a request ID, attaches
// it and a request-scoped logger to the context (obs.WithRequestID /
// obs.WithLogger — the engine's shard workers pick the logger up from
// there), and emits one structured record per request with method,
// path, status, response bytes and latency.
func (s *Server) requestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewRequestID()
		lg := s.cfg.Logger.With(slog.String("req", id))
		ctx := obs.WithLogger(obs.WithRequestID(r.Context(), id), lg)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		lg.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status()),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("elapsed", time.Since(start)))
	})
}

// statusRecorder captures the response status and byte count for the
// request log. Flush forwards to the underlying writer so the NDJSON
// stream's per-batch flushes keep working through the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the response code, defaulting to 200 when the handler
// never called WriteHeader explicitly.
func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// AttachStore wires a durable segment store under the catalog: the
// store's recovered relations (mmap-backed, frozen) seed the catalog
// without re-ingesting, and every subsequent Load, PUT and DELETE is
// mirrored into the store's WAL before it is acknowledged. Call it once,
// after New and before serving or seeding; the caller keeps ownership of
// the store's lifecycle (Flush on graceful shutdown, Close last).
func (s *Server) AttachStore(st *segment.Store) error {
	rels, dict, err := st.Restore()
	if err != nil {
		return err
	}
	s.mut.mu.Lock()
	defer s.mut.mu.Unlock()
	s.catalog.Restore(rels, dict)
	s.mut.store = st
	s.metrics.segmentsRestored.Add(uint64(st.SegmentCount()))
	return nil
}

// putRelation is the shared tail of Load and PUT: admit into the
// catalog, invalidate dependent cache entries, and mirror the admission
// (plus any dictionary-rebuild sibling rewrites) into the attached
// store. The WAL fsync inside store.Put is the durability point.
//
// Failure discipline: a degraded store refuses the mutation before the
// catalog is touched (503); a store.Put that returns an error never
// acknowledged, so the catalog mutation is rolled back and the client
// sees 503/500 over a catalog identical to the one before the request —
// memory and disk agree throughout. A Put that acknowledged (WAL fsync
// succeeded) returns nil even if the deferred segment apply then
// degraded the store, so no rollback happens in that case either.
func (s *Server) putRelation(name string, rel *relation.Relation) (version uint64, existed bool, err error) {
	s.mut.mu.Lock()
	defer s.mut.mu.Unlock()
	if err := s.degradedLocked(); err != nil {
		return 0, false, err
	}
	var cp Checkpoint
	if s.mut.store != nil {
		cp = s.catalog.Checkpoint()
	}
	version, existed, rebound := s.catalog.PutRebound(name, rel)
	s.cache.InvalidateRelation(name)
	if s.mut.store != nil {
		if perr := s.mut.store.Put(name, rel, rebound); perr != nil {
			s.catalog.Rollback(cp)
			// Re-invalidate: a concurrent query may have cached a result
			// against the rolled-back version between the install above
			// and the rollback. The entry could never be served again
			// (versions are monotonic), but there is no reason to keep it.
			s.cache.InvalidateRelation(name)
			return 0, false, persistError("relation", name, perr)
		}
	}
	return version, existed, nil
}

// dropRelation is the shared tail of Drop and DELETE; same
// serialization and same failure discipline as putRelation.
func (s *Server) dropRelation(name string) (existed bool, invalidated int, err error) {
	s.mut.mu.Lock()
	defer s.mut.mu.Unlock()
	if err := s.degradedLocked(); err != nil {
		return false, 0, err
	}
	var cp Checkpoint
	if s.mut.store != nil {
		cp = s.catalog.Checkpoint()
	}
	if !s.catalog.Drop(name) {
		return false, 0, nil
	}
	invalidated = s.cache.InvalidateRelation(name)
	if s.mut.store != nil {
		if perr := s.mut.store.Drop(name); perr != nil {
			s.catalog.Rollback(cp)
			s.cache.InvalidateRelation(name)
			return true, invalidated, persistError("drop of", name, perr)
		}
	}
	return true, invalidated, nil
}

// Load seeds or replaces a catalog relation programmatically (startup
// seeding by cmd/tpserve; tests). Exactly like a PUT request, it checks
// the name against the query grammar, validates duplicate-freeness,
// sorts, bumps the version, invalidates dependent cache entries and —
// with an attached store — WAL-logs the admission before returning.
//
// Load and PUT are the only mutation paths: evaluation relies on catalog
// relations being sorted and duplicate-free (it runs the drivers with
// AssumeSorted), so the raw catalog is deliberately not exposed.
func (s *Server) Load(name string, rel *relation.Relation) (uint64, error) {
	if !query.IsIdent(name) {
		return 0, fmt.Errorf("invalid relation name %q: must be an identifier of the query grammar (letters, digits, _, non-leading dots; not a reserved word)", name)
	}
	// Intern first: the duplicate check then groups by integer id and the
	// sort runs on packed integer compares; catalog admission (Put)
	// rebinds to the catalog-wide dictionary, preserving the order.
	rel.Intern()
	if err := rel.ValidateDuplicateFree(); err != nil {
		return 0, err
	}
	rel.Sort()
	version, _, err := s.putRelation(name, rel)
	if err != nil {
		return 0, err
	}
	s.metrics.admissions.Inc()
	s.metrics.tuplesAdmitted.Add(uint64(rel.Len()))
	return version, nil
}

// Drop removes a catalog relation and invalidates its dependent cache
// entries; it reports whether the relation existed. With an attached
// store a persist failure surfaces as the error (the in-memory drop has
// already happened).
func (s *Server) Drop(name string) (bool, error) {
	existed, _, err := s.dropRelation(name)
	return existed, err
}

// Relations returns the catalog's relation names and versions, sorted by
// name.
func (s *Server) Relations() []RelVersion { return s.catalog.List() }

// Relation returns the named catalog relation and its version. The
// returned relation is shared and must be treated as read-only.
func (s *Server) Relation(name string) (*relation.Relation, uint64, bool) {
	return s.catalog.Get(name)
}

// CacheStats returns the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Query is a TP set query in the Def. 4 surface syntax, e.g.
	// "c - (a | b)".
	Query string `json:"query"`
	// Workers overrides the server's default worker budget for this
	// request (0 = server default, which itself defaults to GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// LazyProb skips probability valuation: result tuples carry lineage
	// and p = 0. Cached separately from eager results.
	LazyProb bool `json:"lazyProb,omitempty"`
	// NoCache bypasses the result cache for this request (no lookup, no
	// store); the benchmark harness uses it to measure cold latency.
	NoCache bool `json:"noCache,omitempty"`
	// Trace records a per-operator execution trace and returns it in the
	// response envelope (QueryResponse.Trace; the stream trailer on
	// /query/stream). A traced request skips the cache lookup — a cached
	// result has no execution to trace — but still stores its result.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMillis bounds this request's evaluation wall time. It can
	// tighten the server's QueryTimeout but never exceed it; expiry
	// answers 504 (an NDJSON error trailer on the stream path). 0 means
	// the server default.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	// Query is the canonical form of the optimized query — the first half
	// of the cache key.
	Query string `json:"query"`
	// Complexity classifies the query (PTIME vs #P-hard; Theorem 1).
	Complexity string `json:"complexity"`
	// Inputs is the version vector the result was computed from — the
	// second half of the cache key.
	Inputs []RelVersion `json:"inputs"`
	// Cached reports whether the result came from the cache.
	Cached bool `json:"cached"`
	// ElapsedMicros is the server-side latency of this request in
	// microseconds (evaluation or cache lookup, excluding JSON encoding).
	ElapsedMicros int64 `json:"elapsedMicros"`
	// Result is the output relation.
	Result RelationJSON `json:"result"`
	// Trace is the per-operator stats tree; only present when the request
	// set trace (absent keys keep the untraced wire format byte-identical
	// to previous releases).
	Trace *obs.SpanStats `json:"trace,omitempty"`
}

// preparedQuery is the outcome of the shared request prologue: parsed and
// optimized query plus the catalog snapshot it will evaluate against.
type preparedQuery struct {
	optimized query.Node
	canonical string
	names     []string
	db        map[string]*relation.Relation
	versions  []RelVersion
	workers   int
}

// prepare runs the request prologue shared by the materializing and
// streaming query paths: validate the request knobs, parse, push down
// selections, snapshot the catalog, resolve the worker budget. Its
// latency lands in the parse-phase histogram.
func (s *Server) prepare(req QueryRequest) (*preparedQuery, error) {
	defer func(t0 time.Time) { s.metrics.parseHist.Observe(time.Since(t0)) }(time.Now())
	if req.Workers < 0 || req.Workers > MaxWorkers {
		return nil, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("workers %d out of range [0, %d] (0 = server default)", req.Workers, MaxWorkers)}
	}
	if req.TimeoutMillis < 0 {
		return nil, &httpError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("timeoutMillis %d is negative (0 = server default)", req.TimeoutMillis)}
	}
	node, err := query.Parse(req.Query)
	if err != nil {
		return nil, &httpError{status: http.StatusBadRequest, msg: err.Error()}
	}
	optimized := query.PushDownSelections(node)
	names := query.Relations(optimized)
	db, versions, err := s.catalog.Snapshot(names)
	if err != nil {
		return nil, &httpError{status: http.StatusNotFound, msg: err.Error()}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &preparedQuery{
		optimized: optimized,
		canonical: query.Canonical(optimized),
		names:     names,
		db:        db,
		versions:  versions,
		workers:   workers,
	}, nil
}

// RunQuery is the evaluation path of POST /query, exposed for the
// benchmark harness and tests: parse → push down selections → snapshot
// catalog versions → cache lookup → cursor-executor evaluation
// (materialized only at the top) → cache store.
func (s *Server) RunQuery(req QueryRequest) (*QueryResponse, error) {
	return s.RunQueryCtx(context.Background(), req)
}

// RunQueryCtx is RunQuery with a request context: cancellation stops
// the engine's shard producers, and a cancelled request never stores
// its (truncated) result in the cache. With req.Trace the evaluation
// runs under a span tree and the response carries its snapshot; a
// traced request skips the cache lookup, since a hit would have no
// execution to trace, but still stores the result it computes.
//
// Evaluation runs under the resource-governance stack: the effective
// deadline (request timeoutMillis capped by the server QueryTimeout; a
// deadline answers 504), the admission gate (a full queue answers 429
// with Retry-After), and the result-tuple budget (overflow answers 422
// and is never cached). Cache hits bypass the gate — they do no
// evaluation work.
func (s *Server) RunQueryCtx(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	pq, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	canonical := pq.canonical

	resp := &QueryResponse{
		Query:      canonical,
		Complexity: query.Classify(pq.optimized).String(),
		Inputs:     pq.versions,
	}
	s.metrics.queries.Inc()

	// LazyProb changes the payload (probabilities unvaluated), so it is
	// part of the canonical key half.
	keyQuery := canonical
	if req.LazyProb {
		keyQuery += "\x00lazy"
	}
	key := CacheKey(keyQuery, pq.versions)

	start := time.Now()
	if !req.NoCache && !req.Trace {
		if out, ok := s.cache.Get(key); ok {
			elapsed := time.Since(start)
			s.metrics.executeHist.Observe(elapsed)
			resp.Cached = true
			resp.ElapsedMicros = elapsed.Microseconds()
			resp.Result = s.encodeTimed(out, 0)
			return resp, nil
		}
	}

	qctx, cancel := s.queryContext(ctx, req)
	defer cancel()
	if err := s.gate.acquire(qctx); err != nil {
		return nil, s.admissionError(err)
	}
	defer s.gate.release()
	if testHookEvalStart != nil {
		testHookEvalStart(qctx)
	}

	opts := engineOptions(req)
	var span *obs.Span
	if req.Trace {
		span = obs.NewSpan("")
		opts.Span = span
		s.metrics.traced.Inc()
	}
	cur, err := engine.New(engine.Config{Workers: pq.workers}).
		CursorCtx(qctx, pq.optimized, pq.db, opts)
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	out, within := core.MaterializeLimit(cur, s.cfg.MaxResultTuples)
	cur.Close()
	if err := qctx.Err(); err != nil {
		// Cancelled mid-drain: the materialized result may be truncated.
		// Report the failure and above all do not cache it.
		return nil, s.evalContextError(err)
	}
	if !within {
		return nil, &httpError{status: http.StatusUnprocessableEntity,
			msg: fmt.Sprintf("result exceeds the server's maxResultTuples budget (%d); narrow the query or use /query/stream", s.cfg.MaxResultTuples)}
	}
	s.metrics.evaluations.Inc()
	if !req.NoCache {
		s.cache.Put(key, pq.names, out)
	}
	elapsed := time.Since(start)
	s.metrics.executeHist.Observe(elapsed)
	resp.ElapsedMicros = elapsed.Microseconds()
	resp.Result = s.encodeTimed(out, 0)
	if span != nil {
		resp.Trace = span.Snapshot()
	}
	return resp, nil
}

// queryContext applies the effective evaluation deadline: the request's
// timeoutMillis tightened by — never exceeding — the server's
// QueryTimeout. Without either, the caller's context passes through
// untouched.
func (s *Server) queryContext(ctx context.Context, req QueryRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.QueryTimeout
	if req.TimeoutMillis > 0 {
		rd := time.Duration(req.TimeoutMillis) * time.Millisecond
		if d <= 0 || rd < d {
			d = rd
		}
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// evalContextError maps a context failure observed after evaluation: a
// fired deadline is 504 (counted), a client cancellation stays a plain
// 500 — the client is gone and will not read the status anyway.
func (s *Server) evalContextError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.queriesTimedOut.Inc()
		return &httpError{status: http.StatusGatewayTimeout, msg: "query deadline exceeded"}
	}
	return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
}

// testHookEvalStart, when non-nil, runs after a query passes the
// admission gate and before the engine starts — the seam the overload
// and panic tests use to hold slots occupied or to blow up evaluation.
var testHookEvalStart func(ctx context.Context)

// encodeTimed encodes a result relation, charging the encode-phase
// histogram.
func (s *Server) encodeTimed(out *relation.Relation, version uint64) RelationJSON {
	t0 := time.Now()
	rj := EncodeRelation(out, version)
	s.metrics.encodeHist.Observe(time.Since(t0))
	return rj
}

// engineOptions maps per-request knobs onto the set-operation drivers.
// Catalog relations are validated at admission and sorted at load, so
// evaluation never re-validates and skips the leaf sort.
func engineOptions(req QueryRequest) core.Options {
	return core.Options{AssumeSorted: true, LazyProb: req.LazyProb}
}

// httpError carries a status code through the service layer, plus an
// optional Retry-After hint in seconds (shed and degraded responses).
type httpError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

// --- handlers ---

// buildVersion resolves the module build identity once: version and VCS
// revision from runtime/debug.ReadBuildInfo (available since the binary
// is built from module sources), "unknown" fields otherwise.
var buildVersion = func() (v struct{ Version, Revision string }) {
	v.Version, v.Revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		v.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v.Revision = s.Value
		}
	}
	return v
}()

// handleHealthz reports liveness plus the degraded-store state. The
// status code stays 200 even while degraded — reads are still served,
// and a load balancer that wants to drain writers should key on the
// status field, not kill a node that is serving queries fine.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":        "ok",
		"relations":     s.catalog.Len(),
		"uptimeSec":     int64(time.Since(s.started).Seconds()),
		"goVersion":     runtime.Version(),
		"buildVersion":  buildVersion.Version,
		"buildRevision": buildVersion.Revision,
	}
	if cause := s.storeDegraded(); cause != nil {
		body["status"] = "degraded"
		body["degradedReason"] = cause.Error()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleListRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"relations": s.catalog.List()})
}

func (s *Server) handlePutRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !query.IsIdent(name) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("invalid relation name %q: must be an identifier of the query grammar (letters, digits, _, non-leading dots; not a reserved word)", name))
		return
	}
	var rj RelationJSON
	if he := decodeBody(w, r, maxRelationBody, &rj); he != nil {
		writeError(w, he.status, he.msg)
		return
	}
	rel, err := DecodeRelation(rj, name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := rel.ValidateDuplicateFree(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	version, existed, err := s.putRelation(name, rel)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"name": name, "version": version, "tuples": rel.Len(),
	})
}

func (s *Server) handleGetRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, version, ok := s.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown relation %q", name))
		return
	}
	writeJSON(w, http.StatusOK, EncodeRelation(rel, version))
}

func (s *Server) handleDeleteRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	existed, invalidated, err := s.dropRelation(name)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown relation %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": name, "dropped": true, "invalidatedCacheEntries": invalidated,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, version, ok := s.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown relation %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"version": version,
		"stats":   relation.ComputeStats(rel),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if he := decodeBody(w, r, MaxQueryBodyBytes, &req); he != nil {
		writeError(w, he.status, he.msg)
		return
	}
	resp, err := s.RunQueryCtx(r.Context(), req)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExplainResponse is the body of POST /query/explain: the optimized
// plan's identity plus the full per-operator trace of one evaluation —
// no result payload. The server drains the cursor plan and discards the
// tuples, so explaining a huge result costs no materialization or
// encoding, on either side of the wire.
type ExplainResponse struct {
	Query         string         `json:"query"`
	Complexity    string         `json:"complexity"`
	Inputs        []RelVersion   `json:"inputs"`
	Workers       int            `json:"workers"`
	Tuples        int64          `json:"tuples"`
	ElapsedMicros int64          `json:"elapsedMicros"`
	Trace         *obs.SpanStats `json:"trace"`
}

// handleQueryExplain evaluates the query with tracing forced on and
// returns only the plan identity and stats tree. The cache is bypassed
// in both directions: a cached result has no execution to trace, and
// the drained stream is never materialized, so there is nothing to
// store.
func (s *Server) handleQueryExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if he := decodeBody(w, r, MaxQueryBodyBytes, &req); he != nil {
		writeError(w, he.status, he.msg)
		return
	}
	pq, err := s.prepare(req)
	if err != nil {
		writeErrStatus(w, err)
		return
	}
	qctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()
	if err := s.gate.acquire(qctx); err != nil {
		writeErrStatus(w, s.admissionError(err))
		return
	}
	defer s.gate.release()
	span := obs.NewSpan("")
	opts := engineOptions(req)
	opts.Span = span
	cur, err := engine.New(engine.Config{Workers: pq.workers}).
		CursorCtx(qctx, pq.optimized, pq.db, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	defer cur.Close()
	s.metrics.explains.Inc()
	s.metrics.traced.Inc()

	start := time.Now()
	var tuples int64
	b := core.GetBatch()
	for cur.NextBatch(b) {
		tuples += int64(len(b.Tuples))
	}
	core.PutBatch(b)
	elapsed := time.Since(start)
	s.metrics.executeHist.Observe(elapsed)
	if err := qctx.Err(); err != nil {
		// The drain stopped early; the trace would describe a partial
		// execution. Report the deadline instead of a misleading tree.
		writeErrStatus(w, s.evalContextError(err))
		return
	}

	writeJSON(w, http.StatusOK, ExplainResponse{
		Query:         pq.canonical,
		Complexity:    query.Classify(pq.optimized).String(),
		Inputs:        pq.versions,
		Workers:       pq.workers,
		Tuples:        tuples,
		ElapsedMicros: elapsed.Microseconds(),
		Trace:         span.Snapshot(),
	})
}

// writeErrStatus writes a service-layer error, mapping httpError to its
// status (emitting its Retry-After hint when set) and anything else to
// 500.
func writeErrStatus(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
	}
	writeError(w, status, err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // write errors mean a gone client; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
