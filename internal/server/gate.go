package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync/atomic"
)

// Admission control for the query paths: a semaphore bounds the queries
// evaluating at once and a bounded counter bounds the queries waiting
// for a slot. Work beyond both bounds is shed immediately — a 429 with
// a Retry-After hint costs microseconds, whereas admitting it would
// cost the already-admitted queries their memory and cache locality and
// the shed client a long wait for an answer it may no longer want. The
// gate covers evaluation only: cache hits, catalog reads and health
// checks stay ungated, so /healthz answers even under full overload.

// errShed is returned by admissionGate.acquire when the evaluation
// slots and the wait queue are both full.
var errShed = errors.New("server: query shed: evaluation slots and wait queue full")

// admissionGate is the bounded semaphore + bounded wait queue. A nil
// gate (Config.MaxConcurrent < 0) admits everything.
type admissionGate struct {
	sem      chan struct{} // buffered; a held slot is one queued element
	maxQueue int64
	queued   atomic.Int64
}

// newGate sizes the gate from the config knobs: maxConcurrent 0 picks
// 4x GOMAXPROCS (queries spend their time on CPU-bound sweeps, so a
// small multiple of the cores saturates the machine while bounding
// memory), negative disables the gate. maxQueued 0 picks 4x the
// concurrency bound; negative means no queue — overflow sheds at once.
func newGate(maxConcurrent, maxQueued int) *admissionGate {
	if maxConcurrent < 0 {
		return nil
	}
	if maxConcurrent == 0 {
		maxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if maxQueued == 0 {
		maxQueued = 4 * maxConcurrent
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &admissionGate{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueued),
	}
}

// acquire claims an evaluation slot: immediately when one is free,
// after a bounded wait otherwise. It returns errShed when the wait
// queue is full too, or the context error if the caller's deadline
// fires while queued. A nil error means the caller owns a slot and must
// release it.
func (g *admissionGate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return errShed
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by a successful acquire.
func (g *admissionGate) release() {
	if g == nil {
		return
	}
	<-g.sem
}

// inflight reports the slots currently held (a metrics gauge).
func (g *admissionGate) inflight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// queuedNow reports the callers currently waiting (a metrics gauge).
func (g *admissionGate) queuedNow() int64 {
	if g == nil {
		return 0
	}
	return g.queued.Load()
}

// admissionError maps an acquire failure onto its HTTP shape: shed
// becomes 429 with a Retry-After hint, a deadline that fired while
// queued becomes the same 504 an evaluation timeout produces, and a
// plain client cancellation passes through (the client is gone; the
// status is moot).
func (s *Server) admissionError(err error) error {
	switch {
	case errors.Is(err, errShed):
		s.metrics.queriesShed.Inc()
		return &httpError{status: http.StatusTooManyRequests,
			msg:        "server at capacity: concurrent-query limit and wait queue are full",
			retryAfter: 1}
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.queriesTimedOut.Inc()
		return &httpError{status: http.StatusGatewayTimeout,
			msg: "query deadline exceeded while waiting for an evaluation slot"}
	default:
		return err
	}
}
