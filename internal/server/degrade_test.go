package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/segment"
)

// The full degraded-mode arc over an injected disk: the disk dies
// (every mutation fails ENOSPC), the first write 503s and rolls back
// cleanly, reads stay bit-identical throughout the outage, health and
// metrics report the state, further mutations are refused without
// touching the dead disk — and when the disk returns, the background
// probe re-arms writes with no restart.
func TestDegradedReadOnlyEndToEnd(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	st, err := segment.OpenStoreFS("/data", inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := New(Config{Workers: 2})
	srv.AttachStore(st)

	a := relation.New(relation.NewSchema("a", "Product"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	if _, err := srv.Load("a", a); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, before := do(t, "GET", ts.URL+"/relations/a", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("baseline read: %d", resp.StatusCode)
	}

	// The disk dies.
	inj.Fail(faultfs.OpMutate, faultfs.ErrNoSpace)

	put := RelationJSON{Name: "x", Attrs: []string{"Product"}, Tuples: []TupleJSON{
		{Fact: []string{"tea"}, Lineage: "x1", Ts: 1, Te: 5, Prob: 0.5},
	}}
	resp, body := do(t, "PUT", ts.URL+"/relations/x", put)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT on dead disk: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Fatalf("PUT on dead disk: body %s", body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}

	// The failed PUT was rolled back: the relation does not exist, in
	// memory or on disk.
	if resp, _ := do(t, "GET", ts.URL+"/relations/x", nil); resp.StatusCode != 404 {
		t.Fatalf("rolled-back relation visible: %d", resp.StatusCode)
	}

	// Health and metrics report the outage; reads and queries do not
	// notice it.
	if _, body := do(t, "GET", ts.URL+"/healthz", nil); !bytes.Contains(body, []byte(`"status":"degraded"`)) ||
		!bytes.Contains(body, []byte("degradedReason")) {
		t.Fatalf("healthz while degraded: %s", body)
	}
	if _, body := do(t, "GET", ts.URL+"/metrics", nil); !bytes.Contains(body, []byte(`"degraded":true`)) ||
		!bytes.Contains(body, []byte(`"walWriteErrors":`)) {
		t.Fatalf("metrics while degraded: %s", body)
	}
	if m := srv.snapshotMetrics(); m.WALWriteErrors == 0 || !m.Degraded {
		t.Fatalf("metrics snapshot while degraded: %+v", m)
	}
	resp, after := do(t, "GET", ts.URL+"/relations/a", nil)
	if resp.StatusCode != 200 || !bytes.Equal(before, after) {
		t.Fatalf("read changed during outage: status %d", resp.StatusCode)
	}
	if resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "a"}); resp.StatusCode != 200 {
		t.Fatalf("query while degraded: status %d, body %s", resp.StatusCode, body)
	}

	// A second mutation is refused up front — before the catalog is
	// touched and without issuing a single operation to the dead disk.
	ops := inj.OpCount()
	resp, body = do(t, "DELETE", ts.URL+"/relations/a", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE while degraded: status %d, body %s", resp.StatusCode, body)
	}
	if got := inj.OpCount(); got != ops {
		t.Fatalf("degraded DELETE issued %d disk ops", got-ops)
	}
	if resp, _ := do(t, "GET", ts.URL+"/relations/a", nil); resp.StatusCode != 200 {
		t.Fatal("refused DELETE removed the relation from the catalog")
	}

	// The disk comes back; the probe re-arms writes within a few ticks.
	// (Started here, not at boot, so the op-count assertions above are
	// not perturbed by the probe's own failed recovery attempts.)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv.StartRecoveryProbe(ctx, 10*time.Millisecond)
	inj.Clear()
	waitFor(t, "probe recovery", func() bool {
		_, body := do(t, "GET", ts.URL+"/healthz", nil)
		return bytes.Contains(body, []byte(`"status":"ok"`))
	})
	resp, body = do(t, "PUT", ts.URL+"/relations/x", put)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT after recovery: status %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", ts.URL+"/relations/x", nil); resp.StatusCode != 200 {
		t.Fatalf("relation missing after recovered PUT: %d", resp.StatusCode)
	}
}
