package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

// streamOnce POSTs /query/stream and decodes the NDJSON framing: one meta
// line, n tuple lines, one trailer line.
func streamOnce(t *testing.T, ts *httptest.Server, req QueryRequest) (StreamMeta, []TupleJSON, StreamTrailer) {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/query/stream", req)
	if resp.StatusCode != 200 {
		t.Fatalf("stream %+v: %d %s", req, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var (
		meta    StreamMeta
		tuples  []TupleJSON
		trailer StreamTrailer
	)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	sawTrailer := false
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			t.Fatalf("blank NDJSON line %d", line)
		}
		if sawTrailer {
			t.Fatalf("line %d after trailer", line)
		}
		switch {
		case line == 0:
			if err := json.Unmarshal(raw, &meta); err != nil {
				t.Fatalf("meta line: %v (%s)", err, raw)
			}
		case bytes.Contains(raw, []byte(`"done"`)):
			if err := json.Unmarshal(raw, &trailer); err != nil {
				t.Fatalf("trailer line: %v (%s)", err, raw)
			}
			sawTrailer = true
		default:
			var tj TupleJSON
			if err := json.Unmarshal(raw, &tj); err != nil {
				t.Fatalf("tuple line %d: %v (%s)", line, err, raw)
			}
			tuples = append(tuples, tj)
		}
		line++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer line")
	}
	return meta, tuples, trailer
}

// TestQueryStreamMatchesQuery asserts the streaming endpoint returns
// exactly the non-streaming result — same meta, same tuples in the same
// order — with a correct trailer count, and that streams bypass the
// result cache entirely.
func TestQueryStreamMatchesQuery(t *testing.T) {
	s, ts := newTestServer(t)

	want := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)", NoCache: true})
	meta, tuples, trailer := streamOnce(t, ts, QueryRequest{Query: "c - (a | b)"})

	if meta.Query != want.Query {
		t.Fatalf("meta query %q, want %q", meta.Query, want.Query)
	}
	if meta.Complexity != want.Complexity {
		t.Fatalf("meta complexity %q, want %q", meta.Complexity, want.Complexity)
	}
	if fmt.Sprint(meta.Inputs) != fmt.Sprint(want.Inputs) {
		t.Fatalf("meta inputs %v, want %v", meta.Inputs, want.Inputs)
	}
	if meta.Name != want.Result.Name || fmt.Sprint(meta.Attrs) != fmt.Sprint(want.Result.Attrs) {
		t.Fatalf("meta schema %s%v, want %s%v", meta.Name, meta.Attrs, want.Result.Name, want.Result.Attrs)
	}
	if trailer.Tuples != len(tuples) || len(tuples) != len(want.Result.Tuples) {
		t.Fatalf("stream %d tuples, trailer %d, non-stream %d",
			len(tuples), trailer.Tuples, len(want.Result.Tuples))
	}
	for i := range tuples {
		if fmt.Sprint(tuples[i]) != fmt.Sprint(want.Result.Tuples[i]) {
			t.Fatalf("tuple %d: %+v, want %+v", i, tuples[i], want.Result.Tuples[i])
		}
	}

	// Streams bypass the cache: no entries stored, no lookups counted.
	if st := s.CacheStats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stream touched the result cache: %+v", st)
	}

	// A repeat still streams (never served from cache) and the metrics
	// counter tracks it.
	streamOnce(t, ts, QueryRequest{Query: "c - (a | b)"})
	if got := s.metrics.streams.Load(); got != 2 {
		t.Fatalf("streams counter = %d, want 2", got)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("repeat stream stored a cache entry: %+v", st)
	}
}

// TestQueryStreamLazyProb pins the lazyProb knob on the streaming path:
// tuples arrive with unvaluated probabilities but decodable lineage.
func TestQueryStreamLazyProb(t *testing.T) {
	_, ts := newTestServer(t)
	meta, tuples, _ := streamOnce(t, ts, QueryRequest{Query: "c - (a | b)", LazyProb: true})
	if len(tuples) == 0 {
		t.Fatal("no tuples streamed")
	}
	for i, tj := range tuples {
		if tj.Prob != 0 {
			t.Fatalf("lazy tuple %d carries probability %v", i, tj.Prob)
		}
	}
	back, err := DecodeRelation(RelationJSON{Name: meta.Name, Attrs: meta.Attrs, Tuples: tuples}, "")
	if err != nil {
		t.Fatal(err)
	}
	back.ComputeProbs()
	eager := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)", NoCache: true})
	eagerBack, err := DecodeRelation(eager.Result, meta.Name)
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(back, eagerBack); d != "" {
		t.Fatalf("lazy stream + ComputeProbs differs from eager: %s", d)
	}
}

// TestConcurrentStreamsAndReplacementsRaceClean drives many concurrent
// /query/stream requests through the real HTTP stack while the catalog is
// being replaced underneath them. Every stream must either complete with
// a trailer whose count matches the lines received, or fail cleanly with
// 404 (racing a drop) — never a torn NDJSON body. Run under -race this
// also checks the snapshot/stream locking discipline.
func TestConcurrentStreamsAndReplacementsRaceClean(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s := New(Config{Workers: 2, CacheSize: 8})
	seedRel := func(name string, seed int64) {
		r := datagen.Synthetic(datagen.SyntheticConfig{
			Name: name, NumTuples: 400, NumFacts: 16, MaxLen: 4, MaxGap: 2, Seed: seed,
		})
		if _, err := s.Load(name, r); err != nil {
			t.Fatal(err)
		}
	}
	seedRel("r", 1)
	seedRel("s", 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := []string{"r & s", "r | s", "r - s", "(r | s) - (r & s)"}
	const (
		goroutines = 6
		iters      = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 0 && i%5 == 2 { // replacement writer
					seedRel("s", int64(100+i))
					continue
				}
				blob, _ := json.Marshal(QueryRequest{Query: queries[(g+i)%len(queries)], Workers: 1 + g%3})
				resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(blob))
				if err != nil {
					t.Errorf("stream: %v", err)
					continue
				}
				func() {
					defer resp.Body.Close()
					if resp.StatusCode == 404 {
						return // raced a drop; legal
					}
					if resp.StatusCode != 200 {
						t.Errorf("stream status %d", resp.StatusCode)
						return
					}
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 1024*1024), 1024*1024)
					lines, sawTrailer, tuples := 0, false, 0
					var trailer StreamTrailer
					for sc.Scan() {
						raw := sc.Bytes()
						if !json.Valid(raw) {
							t.Errorf("invalid NDJSON line: %s", raw)
							return
						}
						if lines > 0 {
							if bytes.Contains(raw, []byte(`"done"`)) {
								sawTrailer = true
								if err := json.Unmarshal(raw, &trailer); err != nil {
									t.Errorf("trailer: %v", err)
								}
							} else {
								tuples++
							}
						}
						lines++
					}
					if err := sc.Err(); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if !sawTrailer {
						t.Error("stream without trailer")
					} else if trailer.Tuples != tuples {
						t.Errorf("trailer says %d tuples, received %d", trailer.Tuples, tuples)
					}
				}()
			}
		}(g)
	}
	wg.Wait()
}
