package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tpset/tpset/internal/datagen"
)

// TestConcurrentQueriesAndLoadsRaceClean hammers one server from many
// goroutines mixing POST /query evaluations (through the service layer),
// relation replacements (version bumps + cache invalidation), stats reads
// and drops/reloads. Run under -race it checks the catalog/cache/engine
// locking discipline; functionally it checks that every query either
// completes against a consistent snapshot or fails with "unknown
// relation" (never a torn state).
func TestConcurrentQueriesAndLoadsRaceClean(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s := New(Config{Workers: 4, CacheSize: 32})
	seedRel := func(name string, seed int64) {
		r := datagen.Synthetic(datagen.SyntheticConfig{
			Name: name, NumTuples: 300, NumFacts: 12, MaxLen: 4, MaxGap: 2, Seed: seed,
		})
		if _, err := s.Load(name, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range []string{"r", "s", "u"} {
		seedRel(name, int64(i))
	}

	queries := []string{
		"r & s", "r | s", "r - s", "(r & s) | u", "u - (r | s)", "r & s",
	}
	const (
		goroutines = 8
		iters      = 40
	)
	var wg sync.WaitGroup
	var unknownRel atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 5 {
				case 0: // replace a relation: version bump + invalidation
					seedRel("s", int64(1000+g*iters+i))
				case 1: // drop and immediately reload
					if g == 0 && i%10 == 5 {
						s.Drop("u")
						seedRel("u", int64(2000+i))
					} else {
						_, _ = s.RunQuery(QueryRequest{Query: queries[i%len(queries)]})
					}
				case 2: // stats + metrics readers
					if rel, _, ok := s.Relation("r"); ok && rel.Len() == 0 {
						t.Error("empty catalog relation")
					}
					_ = s.CacheStats()
					_ = s.Relations()
				default:
					resp, err := s.RunQuery(QueryRequest{
						Query:    queries[(g*iters+i)%len(queries)],
						Workers:  1 + g%4,
						LazyProb: i%7 == 0,
					})
					if err != nil {
						// The only legal failure is racing a drop.
						if he, ok := err.(*httpError); !ok || he.status != 404 {
							t.Errorf("query error: %v", err)
						}
						unknownRel.Add(1)
						continue
					}
					if len(resp.Inputs) == 0 {
						t.Error("query response without version vector")
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The catalog is quiescent now: a repeated query must hit the cache.
	if _, err := s.RunQuery(QueryRequest{Query: "r & s"}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.RunQuery(QueryRequest{Query: "r & s"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("repeat on quiescent catalog must be a cache hit")
	}
	t.Logf("cache %+v, evaluations %d, unknown-relation races %d",
		s.CacheStats(), s.metrics.evaluations.Load(), unknownRel.Load())
}

// TestCachedResultStableAcrossConcurrentRepeats issues the same query from
// many goroutines at once. Several evaluations may race before the first
// cache store lands, but every returned result — evaluated or cached —
// must be identical.
func TestCachedResultStableAcrossConcurrentRepeats(t *testing.T) {
	s := New(Config{Workers: 2})
	for i, name := range []string{"r", "s"} {
		r := datagen.Synthetic(datagen.SyntheticConfig{
			Name: name, NumTuples: 500, NumFacts: 10, MaxLen: 4, MaxGap: 2, Seed: int64(i),
		})
		if _, err := s.Load(name, r); err != nil {
			t.Fatal(err)
		}
	}
	const n = 16
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.RunQuery(QueryRequest{Query: "r & s"})
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			results[i] = fmt.Sprint(resp.Result)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
}
