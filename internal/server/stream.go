package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
)

// POST /query/stream — the streaming form of POST /query. The response is
// NDJSON (application/x-ndjson, one JSON value per line):
//
//	line 1:      StreamMeta   — canonical query, complexity, version vector, schema
//	lines 2..n+1: TupleJSON   — one result tuple per line, canonical order
//	last line:   StreamTrailer — {"done":true, tuples, elapsedMicros}
//
// Tuples are written as the cursor plan produces them, a batch at a
// time, through one pooled encoder over a sized bufio.Writer: the write
// path costs one buffered memcpy per tuple and one syscall per
// buffered-up flush instead of one encoder allocation and one
// ResponseWriter write per tuple. The buffer is flushed after the meta
// line (so the client learns the schema at µs-scale TTFT) and on every
// batch boundary — the first batch is deliberately small
// (streamRampBatch, so the first results reach the client after a
// handful of sweep outputs; the engine's shard producers ramp the same
// way), later ones are streamBatchTuples, matching the promptness of
// the previous per-256-tuple flush cadence while writes stay amortized
// through the buffer; the trailer flush completes the stream. A batch
// fill itself runs at sweep speed, so between flushes the client waits
// on computation, not on buffering. The server never materializes the
// result relation. The trailer marks a complete stream: clients that do
// not see it must treat the result as truncated (once streaming starts,
// HTTP offers no other way to signal a broken transfer).
//
// The result cache is bypassed in both directions — no lookup, no store:
// a stream has no materialized relation to cache, and caching would
// defeat its O(tree depth) memory bound.

// streamBufSize is the bufio.Writer size of the NDJSON stream: large
// enough to hold several hundred encoded tuples per underlying write,
// small enough to be cheap to pool per concurrent stream.
const streamBufSize = 64 << 10

// streamRampBatch is the capacity of the first tuple batch of a
// stream: small, so the first results ship after a few windows instead
// of after a full core.BatchSize fill on highly selective queries.
const streamRampBatch = 64

// streamBatchTuples is the capacity of every later batch — the flush
// cadence of the stream. 256 keeps buffered tuples exactly as fresh as
// the previous handler's flush-every-256-tuples behaviour; the
// syscall amortization comes from the buffer, not the batch size.
const streamBatchTuples = 256

// streamEncoder is the pooled per-stream write state: the sized buffer
// and the tuple/marginals scratch that EncodeTupleInto reuses so a
// steady-state stream allocates only the rendered lineage strings. The
// json.Encoder is NOT pooled: it latches its first write error forever
// (a disconnected client would poison the pool entry and break later
// healthy streams), so a fresh one is bound per stream — a single
// small allocation.
type streamEncoder struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	scratch TupleJSON
	probs   map[string]float64
}

var streamEncoderPool = sync.Pool{
	New: func() any {
		return &streamEncoder{
			bw:    bufio.NewWriterSize(io.Discard, streamBufSize),
			probs: make(map[string]float64),
		}
	},
}

func getStreamEncoder(w io.Writer) *streamEncoder {
	se := streamEncoderPool.Get().(*streamEncoder)
	se.bw.Reset(w)
	se.enc = json.NewEncoder(se.bw)
	se.enc.SetEscapeHTML(false)
	return se
}

func (se *streamEncoder) release() {
	se.bw.Reset(io.Discard) // drop the response writer reference (and any write error)
	se.enc = nil            // per-stream; see the type comment
	streamEncoderPool.Put(se)
}

// StreamMeta is the first NDJSON line of a /query/stream response.
type StreamMeta struct {
	// Query is the canonical form of the optimized query.
	Query string `json:"query"`
	// Complexity classifies the query (PTIME vs #P-hard; Theorem 1).
	Complexity string `json:"complexity"`
	// Inputs is the version vector the stream is computed from.
	Inputs []RelVersion `json:"inputs"`
	// Name and Attrs describe the result schema.
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// StreamTrailer is the last NDJSON line of a stream. A complete stream
// ends {"done":true,...}; a stream the server had to abort — deadline,
// result budget, recovered panic — ends with done:false and Error set,
// still on a valid NDJSON line, so clients distinguish "server said
// stop, and why" from a connection that just died.
type StreamTrailer struct {
	Done          bool  `json:"done"`
	Tuples        int   `json:"tuples"`
	ElapsedMicros int64 `json:"elapsedMicros"`
	// Error is why the stream was aborted; empty on a complete stream.
	Error string `json:"error,omitempty"`
	// Trace is the per-operator stats tree, present only when the request
	// set trace — snapshotted after the drain, so its counts cover the
	// whole stream. Untraced trailers are byte-identical to previous
	// releases.
	Trace *obs.SpanStats `json:"trace,omitempty"`
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if he := decodeBody(w, r, MaxQueryBodyBytes, &req); he != nil {
		writeError(w, he.status, he.msg)
		return
	}
	pq, err := s.prepare(req)
	if err != nil {
		writeErrStatus(w, err)
		return
	}

	// Admission and deadline run before any byte is written, so shed and
	// queued-timeout responses are ordinary status codes; once streaming
	// starts, failures can only be reported through the trailer.
	qctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()
	if err := s.gate.acquire(qctx); err != nil {
		writeErrStatus(w, s.admissionError(err))
		return
	}
	defer s.gate.release()
	if testHookEvalStart != nil {
		testHookEvalStart(qctx)
	}

	opts := engineOptions(req)
	var span *obs.Span
	if req.Trace {
		span = obs.NewSpan("")
		opts.Span = span
		s.metrics.traced.Inc()
	}
	// The context cancels the shard producers when the client
	// disconnects mid-stream or the deadline fires — the engine stops
	// computing tuples nobody will read.
	cur, err := engine.New(engine.Config{Workers: pq.workers}).
		CursorCtx(qctx, pq.optimized, pq.db, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	defer cur.Close()
	s.metrics.streams.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	cw := &countingWriter{w: w}
	defer func() { s.metrics.bytesStreamed.Add(uint64(cw.n)) }()
	se := getStreamEncoder(cw)
	defer se.release()
	flush := func() {
		_ = se.bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	// se.enc writes into the sized buffer; Encode terminates every value
	// with '\n': NDJSON framing.

	// Mid-stream panic net: the 200 and part of the body are already on
	// the wire, so the outer recoverPanics middleware could not keep the
	// framing valid. Recovering here can — resetting the bufio.Writer
	// discards any half-encoded line still in the buffer, so the error
	// trailer lands on a fresh line and the stream terminates as valid
	// NDJSON with done:false. Registered after the encoder defers, so it
	// runs before them (LIFO) and still owns a live encoder.
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		s.metrics.panicsRecovered.Inc()
		lg := obs.Logger(r.Context())
		if lg == nil {
			lg = s.cfg.Logger
		}
		if lg != nil {
			lg.LogAttrs(r.Context(), slog.LevelError, "panic recovered mid-stream",
				slog.Any("panic", p),
				slog.String("stack", string(debug.Stack())))
		}
		se.bw.Reset(cw)
		_ = se.enc.Encode(StreamTrailer{Error: "internal error: evaluation panicked mid-stream"})
		flush()
	}()

	schema := cur.Schema()
	start := time.Now()
	meta := StreamMeta{
		Query:      pq.canonical,
		Complexity: query.Classify(pq.optimized).String(),
		Inputs:     pq.versions,
		Name:       schema.Name,
		Attrs:      schema.Attrs,
	}
	if meta.Attrs == nil {
		meta.Attrs = []string{}
	}
	if err := se.enc.Encode(meta); err != nil {
		return // client gone
	}
	flush() // time-to-first-byte: the client learns the schema immediately

	count := 0
	first := true
	limit := s.cfg.MaxResultTuples
	b := core.NewBatch(streamRampBatch) // unpooled: stream-local cadence sizes
	for cur.NextBatch(b) {
		if testHookStreamBatch != nil {
			testHookStreamBatch(count)
		}
		if limit > 0 && count+len(b.Tuples) > limit {
			// The batch in hand proves the result exceeds the budget;
			// abort without shipping the overflow. Done stays false.
			_ = se.enc.Encode(StreamTrailer{
				Tuples:        count,
				ElapsedMicros: time.Since(start).Microseconds(),
				Error:         fmt.Sprintf("result exceeds the server's maxResultTuples budget (%d); stream aborted", limit),
			})
			flush()
			s.metrics.tuplesStreamed.Add(uint64(count))
			return
		}
		if b.HasCols() {
			// Columnar block: the encoder's read side runs over the
			// packed Ts/Te/Prob/Lam columns instead of walking tuple
			// structs. Byte-identical output either way.
			for i := range b.Tuples {
				EncodeBatchInto(&se.scratch, b, i, se.probs)
				if err := se.enc.Encode(&se.scratch); err != nil {
					return // client gone; Close (deferred) releases the producers
				}
			}
		} else {
			for i := range b.Tuples {
				EncodeTupleInto(&se.scratch, &b.Tuples[i], se.probs)
				if err := se.enc.Encode(&se.scratch); err != nil {
					return // client gone; Close (deferred) releases the producers
				}
			}
		}
		count += len(b.Tuples)
		if first {
			// Ship the ramp batch immediately (time to first tuple),
			// then switch to the steady cadence size.
			first = false
			b = core.NewBatch(streamBatchTuples)
		}
		flush()
	}
	elapsed := time.Since(start)
	s.metrics.streamHist.Observe(elapsed)
	s.metrics.tuplesStreamed.Add(uint64(count))
	trailer := StreamTrailer{
		Tuples:        count,
		ElapsedMicros: elapsed.Microseconds(),
	}
	if err := qctx.Err(); err != nil {
		// The drain ended because the deadline fired (or the client
		// vanished), not because the stream completed: the trailer says
		// so instead of claiming done.
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.queriesTimedOut.Inc()
			trailer.Error = "query deadline exceeded; stream truncated"
		} else {
			trailer.Error = "request cancelled; stream truncated"
		}
		_ = se.enc.Encode(trailer)
		flush()
		return
	}
	trailer.Done = true
	if span != nil {
		trailer.Trace = span.Snapshot()
	}
	_ = se.enc.Encode(trailer)
	flush()
}

// testHookStreamBatch, when non-nil, runs once per drained batch with
// the tuple count shipped so far — the seam the mid-stream panic test
// uses to blow up after framing has started.
var testHookStreamBatch func(shipped int)
