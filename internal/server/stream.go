package server

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/query"
)

// POST /query/stream — the streaming form of POST /query. The response is
// NDJSON (application/x-ndjson, one JSON value per line):
//
//	line 1:      StreamMeta   — canonical query, complexity, version vector, schema
//	lines 2..n+1: TupleJSON   — one result tuple per line, canonical order
//	last line:   StreamTrailer — {"done":true, tuples, elapsedMicros}
//
// Tuples are written as the cursor plan produces them and flushed
// incrementally (after the meta line and every streamFlushEvery tuples),
// so the first results reach the client while the sweep is still running
// and the server never materializes the result relation. The trailer
// marks a complete stream: clients that do not see it must treat the
// result as truncated (once streaming starts, HTTP offers no other way to
// signal a broken transfer).
//
// The result cache is bypassed in both directions — no lookup, no store:
// a stream has no materialized relation to cache, and caching would
// defeat its O(tree depth) memory bound.

// streamFlushEvery is the tuple interval between explicit flushes.
const streamFlushEvery = 256

// StreamMeta is the first NDJSON line of a /query/stream response.
type StreamMeta struct {
	// Query is the canonical form of the optimized query.
	Query string `json:"query"`
	// Complexity classifies the query (PTIME vs #P-hard; Theorem 1).
	Complexity string `json:"complexity"`
	// Inputs is the version vector the stream is computed from.
	Inputs []RelVersion `json:"inputs"`
	// Name and Attrs describe the result schema.
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// StreamTrailer is the last NDJSON line of a complete stream.
type StreamTrailer struct {
	Done          bool  `json:"done"`
	Tuples        int   `json:"tuples"`
	ElapsedMicros int64 `json:"elapsedMicros"`
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if he := decodeBody(w, r, MaxQueryBodyBytes, &req); he != nil {
		writeError(w, he.status, he.msg)
		return
	}
	pq, err := s.prepare(req)
	if err != nil {
		writeErrStatus(w, err)
		return
	}

	cur, err := engine.New(engine.Config{Workers: pq.workers}).
		Cursor(pq.optimized, pq.db, engineOptions(req))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	defer cur.Close()
	s.streams.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w) // Encode terminates every value with '\n': NDJSON framing
	enc.SetEscapeHTML(false)

	schema := cur.Schema()
	start := time.Now()
	meta := StreamMeta{
		Query:      pq.canonical,
		Complexity: query.Classify(pq.optimized).String(),
		Inputs:     pq.versions,
		Name:       schema.Name,
		Attrs:      schema.Attrs,
	}
	if meta.Attrs == nil {
		meta.Attrs = []string{}
	}
	if err := enc.Encode(meta); err != nil {
		return // client gone
	}
	flush() // time-to-first-byte: the client learns the schema immediately

	count := 0
	for {
		t, ok := cur.Next()
		if !ok {
			break
		}
		if err := enc.Encode(EncodeTuple(&t)); err != nil {
			return // client gone; Close (deferred) releases the producers
		}
		count++
		if count%streamFlushEvery == 0 {
			flush()
		}
	}
	_ = enc.Encode(StreamTrailer{
		Done:          true,
		Tuples:        count,
		ElapsedMicros: time.Since(start).Microseconds(),
	})
	flush()
}
