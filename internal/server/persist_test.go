package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/segment"
)

// persistPair generates the same Table-III-shaped relation pair twice
// deterministically, so the heap-mode and durable-mode servers can each
// admit (and mutate: intern, sort, bind) their own copy.
func persistPair(t *testing.T) (r, s *relation.Relation) {
	t.Helper()
	return datagen.Pair(datagen.PairConfig{
		NumTuples: 2000, NumFacts: 50,
		MaxLenR: 9, MaxLenS: 5, MaxGap: 3, Seed: 7,
	})
}

func durableServer(t *testing.T, dir string) (*Server, *segment.Store) {
	t.Helper()
	st, err := segment.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	srv := New(Config{})
	if err := srv.AttachStore(st); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	return srv, st
}

// A restart against a populated data dir must serve bit-identical query
// results to a heap-mode server that re-ingested the same inputs — the
// mmap-backed catalog is observationally invisible, across worker
// budgets, and the restart never re-ingests (segmentsRestored counts
// the recovered segments).
func TestRestartServesBitIdenticalResults(t *testing.T) {
	dir := t.TempDir()

	heap := New(Config{})
	hr, hs := persistPair(t)
	mustLoad(t, heap, "r", hr)
	mustLoad(t, heap, "s", hs)

	// Populate the data dir through a durable server, then abandon the
	// store un-flushed — the kill -9 shape: admissions live only in the
	// WAL, replay at the next open turns them into segments.
	first, _ := durableServer(t, dir)
	dr, ds := persistPair(t)
	mustLoad(t, first, "r", dr)
	mustLoad(t, first, "s", ds)

	restarted, st2 := durableServer(t, dir)
	defer st2.Close()
	if got := restarted.snapshotMetrics().SegmentsRestored; got != 2 {
		t.Fatalf("SegmentsRestored = %d, want 2", got)
	}

	for _, q := range []string{"r & s", "r | s", "r - s", "(r - s) | (s - r)"} {
		for _, workers := range []int{1, 2, 8} {
			req := QueryRequest{Query: q, Workers: workers, NoCache: true}
			want, err := heap.RunQuery(req)
			if err != nil {
				t.Fatalf("heap RunQuery(%q, w=%d): %v", q, workers, err)
			}
			got, err := restarted.RunQuery(req)
			if err != nil {
				t.Fatalf("restored RunQuery(%q, w=%d): %v", q, workers, err)
			}
			wj, _ := json.Marshal(want.Result)
			gj, _ := json.Marshal(got.Result)
			if !bytes.Equal(wj, gj) {
				t.Fatalf("restart result diverged for %q workers=%d:\nheap     %.200s\nrestored %.200s",
					q, workers, wj, gj)
			}
		}
	}
}

// The AoS fallback path (Options.NoSoA ignores the columnar projection
// and walks tuple structs) must agree with heap mode over mmap-restored
// relations too — it reads the same tuples the columns alias.
func TestRestartCrossValNoSoA(t *testing.T) {
	dir := t.TempDir()

	heap := New(Config{})
	hr, hs := persistPair(t)
	mustLoad(t, heap, "r", hr)
	mustLoad(t, heap, "s", hs)

	first, _ := durableServer(t, dir)
	dr, ds := persistPair(t)
	mustLoad(t, first, "r", dr)
	mustLoad(t, first, "s", ds)
	restarted, st2 := durableServer(t, dir)
	defer st2.Close()

	node := query.MustParse("(r & s) | (r - s)")
	names := query.Relations(node)
	for _, noSoA := range []bool{false, true} {
		opts := core.Options{AssumeSorted: true, NoSoA: noSoA}
		hdb, _, err := heap.catalog.Snapshot(names)
		if err != nil {
			t.Fatalf("heap snapshot: %v", err)
		}
		rdb, _, err := restarted.catalog.Snapshot(names)
		if err != nil {
			t.Fatalf("restored snapshot: %v", err)
		}
		want, err := engine.New(engine.Config{Workers: 2}).EvalCursor(node, hdb, opts)
		if err != nil {
			t.Fatalf("heap eval (noSoA=%v): %v", noSoA, err)
		}
		got, err := engine.New(engine.Config{Workers: 2}).EvalCursor(node, rdb, opts)
		if err != nil {
			t.Fatalf("restored eval (noSoA=%v): %v", noSoA, err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("noSoA=%v diverged over restored catalog: %s", noSoA, relation.Diff(want, got))
		}
	}
}

// PUT and DELETE through the HTTP handlers are durable at the 2xx: a
// reopened data dir restores exactly the acknowledged state.
func TestHandlerMutationsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv, _ := durableServer(t, dir)
	h := srv.Handler()

	put := func(name, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPut, "/relations/"+name, strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	body := `{"attrs":["obj"],"tuples":[
		{"fact":["a"],"lineage":"i1","ts":0,"te":5,"p":0.5},
		{"fact":["b"],"lineage":"i2","ts":2,"te":9,"p":0.25}]}`
	if w := put("keep", body); w.Code != http.StatusCreated {
		t.Fatalf("PUT keep: %d %s", w.Code, w.Body)
	}
	if w := put("gone", body); w.Code != http.StatusCreated {
		t.Fatalf("PUT gone: %d %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodDelete, "/relations/gone", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE gone: %d %s", w.Code, w.Body)
	}

	// Abandon without flush; reopen replays the WAL.
	restarted, st2 := durableServer(t, dir)
	defer st2.Close()
	if _, _, ok := restarted.Relation("gone"); ok {
		t.Fatalf("dropped relation survived restart")
	}
	want, _, ok := srv.Relation("keep")
	if !ok {
		t.Fatalf("keep missing before restart")
	}
	got, _, ok := restarted.Relation("keep")
	if !ok {
		t.Fatalf("keep missing after restart")
	}
	if !relation.Equal(want, got) {
		t.Fatalf("restored relation differs: %s", relation.Diff(want, got))
	}
	if !got.Frozen() || got.Cols() == nil {
		t.Fatalf("restored relation not frozen with a columnar projection")
	}
}

// Admitting a relation with novel facts rebuilds the catalog dictionary
// and rebinds the stored siblings; the store mirrors those rewrites, and
// even a crash before they apply restores both generations consistently.
func TestDictionaryRebuildPersists(t *testing.T) {
	dir := t.TempDir()
	srv, _ := durableServer(t, dir)

	r1 := datagen.Synthetic(datagen.SyntheticConfig{Name: "olddict", NumTuples: 300, NumFacts: 20, MaxLen: 5, MaxGap: 2, Seed: 3})
	mustLoad(t, srv, "olddict", r1)
	// Different name prefix → novel facts → slow-path admission.
	r2 := datagen.Synthetic(datagen.SyntheticConfig{Name: "newdict", NumTuples: 300, NumFacts: 20, MaxLen: 5, MaxGap: 2, Seed: 4})
	mustLoad(t, srv, "newdict", r2)

	restarted, st2 := durableServer(t, dir)
	defer st2.Close()
	for _, name := range []string{"olddict", "newdict"} {
		want, _, _ := srv.Relation(name)
		got, _, ok := restarted.Relation(name)
		if !ok || !relation.Equal(want, got) {
			t.Fatalf("relation %s lost or diverged across dictionary rebuild (ok=%v)", name, ok)
		}
	}
	// Both restored relations share one dictionary (healed or uniform).
	a, _, _ := restarted.Relation("olddict")
	b, _, _ := restarted.Relation("newdict")
	if a.Dict() == nil || a.Dict() != b.Dict() {
		t.Fatalf("restored relations not bound to one shared dictionary")
	}
}

func mustLoad(t *testing.T, s *Server, name string, rel *relation.Relation) {
	t.Helper()
	if _, err := s.Load(name, rel); err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
}
