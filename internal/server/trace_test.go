package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/relation"
)

// sumScans walks a stats tree summing scan-node emissions — a quick
// sanity proxy that the trace actually covers the leaf layer.
func sumScans(st *obs.SpanStats) int64 {
	if strings.HasPrefix(st.Op, "scan(") || strings.Contains(st.Op, ": scan(") {
		return st.TuplesOut
	}
	var n int64
	for _, c := range st.Children {
		n += sumScans(c)
	}
	return n
}

func TestQueryTraceEnvelope(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)", Trace: true})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("trace:true response has no trace tree")
	}
	if qr.Cached {
		t.Fatal("traced request reported a cache hit")
	}
	if got, want := qr.Trace.TuplesOut, int64(len(qr.Result.Tuples)); got != want {
		t.Fatalf("trace root tuplesOut = %d, want result cardinality %d", got, want)
	}
	if qr.Trace.Op != "−Tp" {
		t.Fatalf("trace root op = %q, want −Tp", qr.Trace.Op)
	}
	if n := sumScans(qr.Trace); n != 3 { // a, b, c hold one tuple each
		t.Fatalf("scan emissions = %d, want 3", n)
	}

	// A traced request skips the cache lookup but still stores: the same
	// untraced query must now hit.
	resp, body = do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr2 QueryResponse
	if err := json.Unmarshal(body, &qr2); err != nil {
		t.Fatal(err)
	}
	if !qr2.Cached {
		t.Fatal("untraced repeat after traced evaluation missed the cache")
	}
	if qr2.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}
}

// TestUntracedWireFormatUnchanged pins that tracing-off responses carry
// no trace artifacts anywhere in the wire format: no "trace" key in the
// /query envelope or the stream trailer.
func TestUntracedWireFormatUnchanged(t *testing.T) {
	_, ts := newTestServer(t)

	_, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)"})
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced /query body mentions trace: %s", body)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(body, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"query", "complexity", "inputs", "cached", "elapsedMicros", "result"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("envelope lost key %q: %s", k, body)
		}
	}
	if len(keys) != 6 {
		t.Fatalf("untraced envelope has %d keys, want 6: %s", len(keys), body)
	}

	resp, body := do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "c - (a | b)"})
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced stream mentions trace: %s", body)
	}
}

func TestStreamTrailerTrace(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "c - (a | b)", Trace: true})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var tr StreamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil {
		t.Fatalf("trailer: %v (%s)", err, lines[len(lines)-1])
	}
	if !tr.Done || tr.Trace == nil {
		t.Fatalf("trailer = %+v, want done with trace", tr)
	}
	if tr.Trace.TuplesOut != int64(tr.Tuples) {
		t.Fatalf("trace root tuplesOut = %d, want streamed count %d", tr.Trace.TuplesOut, tr.Tuples)
	}
}

func TestQueryExplain(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, "POST", ts.URL+"/query/explain", QueryRequest{Query: "c - (a | b)"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Trace == nil {
		t.Fatal("explain returned no trace")
	}
	if er.Query != "(c - (a | b))" {
		t.Fatalf("canonical query = %q", er.Query)
	}
	if er.Trace.TuplesOut != er.Tuples {
		t.Fatalf("trace root tuplesOut = %d, want drained count %d", er.Trace.TuplesOut, er.Tuples)
	}
	// No result payload of any shape.
	if bytes.Contains(body, []byte(`"result"`)) {
		t.Fatalf("explain body carries a result: %s", body)
	}
	// Explain bypasses the cache entirely: the same query must still
	// miss afterwards.
	_, body = do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)"})
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Cached {
		t.Fatal("explain stored a result in the cache")
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t)
	// Generate some traffic so histograms are non-empty.
	do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)"})
	do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "a | b"})

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE tpset_queries_total counter",
		"# TYPE tpset_query_execute_seconds histogram",
		`tpset_query_execute_seconds_bucket{le="+Inf"}`,
		"tpset_query_execute_seconds_count",
		"# TYPE tpset_goroutines gauge",
		"tpset_cache_misses_total",
		"tpset_batch_pool_gets_total",
		"tpset_relation_admissions_total 3", // a, b, c
		"tpset_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, text)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	sc := bufio.NewScanner(strings.NewReader(text))
	last := int64(-1)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "tpset_query_execute_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts decreased: %q after %d", line, last)
		}
		last = v
	}

	// Default (no Accept) stays JSON for existing consumers.
	resp2, body := do(t, "GET", ts.URL+"/metrics", nil)
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default content type %q, want JSON", ct)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Phases.Execute.Count == 0 {
		t.Fatal("execute histogram empty after queries")
	}
	if m.Admissions != 3 || m.TuplesAdmitted != 3 {
		t.Fatalf("admissions = %d/%d tuples, want 3/3", m.Admissions, m.TuplesAdmitted)
	}
	if m.BytesStreamed == 0 || m.TuplesStreamed == 0 {
		t.Fatalf("stream counters empty: bytes=%d tuples=%d", m.BytesStreamed, m.TuplesStreamed)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := do(t, "GET", ts.URL+"/healthz", nil)
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"status", "relations", "uptimeSec", "goVersion", "buildVersion", "buildRevision"} {
		if _, ok := h[k]; !ok {
			t.Fatalf("healthz lacks %q: %s", k, body)
		}
	}
	if gv, _ := h["goVersion"].(string); !strings.HasPrefix(gv, "go") {
		t.Fatalf("goVersion = %v", h["goVersion"])
	}
}

// TestMetricsSnapshotUnderLoad hammers the query, admission and scrape
// paths concurrently — under -race this pins that /metrics snapshots
// are atomic instrument reads, never torn struct copies.
func TestMetricsSnapshotUnderLoad(t *testing.T) {
	s, ts := newTestServer(t)
	const loops = 30
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				switch w % 4 {
				case 0:
					do(t, "POST", ts.URL+"/query", QueryRequest{Query: "c - (a | b)", NoCache: true, Trace: i%2 == 0})
				case 1:
					do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "a | b"})
				case 2:
					r := relation.New(relation.NewSchema("hot", "Product"))
					r.AddBase(relation.NewFact("milk"), fmt.Sprintf("h%d", i), 1, 5, 0.5)
					if _, err := s.Load("hot", r); err != nil {
						t.Error(err)
					}
				case 3:
					do(t, "GET", ts.URL+"/metrics", nil)
					req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
					req.Header.Set("Accept", "text/plain")
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	_, body := do(t, "GET", ts.URL+"/metrics", nil)
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Queries < loops || m.Streams < loops {
		t.Fatalf("counters lost updates: queries=%d streams=%d, want >= %d", m.Queries, m.Streams, loops)
	}
	if m.TracedQueries == 0 {
		t.Fatal("traced counter never moved")
	}
}
