package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tpset/tpset/internal/datagen"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockEvals installs the evaluation hook that parks every admitted
// query until release is closed (or its context fires), restoring the
// hook on cleanup.
func blockEvals(t *testing.T) (release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	testHookEvalStart = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testHookEvalStart = nil })
	return release
}

// The admission gate under overload: with every evaluation slot held
// and the wait queue full, further queries are shed with 429 +
// Retry-After within the latency budget, /healthz and catalog
// mutations stay responsive, and once the holders finish the gate
// accounting returns to zero with no goroutine left behind. Run under
// -race this is also the locking stress for the gate itself.
func TestOverloadShedsFastAndRecovers(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	srv, ts := newGovTestServer(t, Config{Workers: 1, MaxConcurrent: 2, MaxQueued: 1})
	release := blockEvals(t)

	const holders = 3 // 2 slots + 1 queue position
	statuses := make(chan int, holders)
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"query":"r | s","noCache":true}`))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	waitFor(t, "gate saturation", func() bool {
		return srv.gate.inflight() == 2 && srv.gate.queuedNow() == 1
	})

	// Overflow is shed, fast, with the retry hint.
	for i := 0; i < 5; i++ {
		start := time.Now()
		resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "r | s", NoCache: true})
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("shed %d took %v; want < 100ms", i, elapsed)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("shed %d: Retry-After = %q, want \"1\"", i, ra)
		}
		if !strings.Contains(string(body), "capacity") {
			t.Fatalf("shed %d: body %s", i, body)
		}
	}

	// The control plane is not behind the gate: health answers fast and
	// catalog replacements land while every slot is held.
	start := time.Now()
	if resp, _ := do(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz under overload: %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("healthz under overload took %v; want < 100ms", elapsed)
	}
	govSeed(t, srv, "s", 99)

	close(release)
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("held query finished with status %d", st)
		}
	}
	waitFor(t, "gate drained", func() bool {
		return srv.gate.inflight() == 0 && srv.gate.queuedNow() == 0
	})
	if got := srv.snapshotMetrics().QueriesShed; got < 5 {
		t.Fatalf("QueriesShed = %d, want >= 5", got)
	}
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, "goroutines to settle", func() bool {
		return runtime.NumGoroutine() <= baseGoroutines+4
	})
}

// Deadlines: a server-wide QueryTimeout answers 504 and counts, a
// request's timeoutMillis works without a server default, and a
// request can tighten but never exceed the server bound.
func TestQueryDeadlines(t *testing.T) {
	t.Run("server timeout", func(t *testing.T) {
		srv, ts := newGovTestServer(t, Config{Workers: 1, QueryTimeout: 30 * time.Millisecond})
		blockEvals(t) // parks until the deadline fires
		resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "r | s", NoCache: true})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "deadline") {
			t.Fatalf("body %s", body)
		}
		if got := srv.snapshotMetrics().QueriesTimedOut; got == 0 {
			t.Fatal("QueriesTimedOut = 0 after a 504")
		}
	})
	t.Run("request timeout", func(t *testing.T) {
		_, ts := newGovTestServer(t, Config{Workers: 1})
		blockEvals(t)
		resp, body := do(t, "POST", ts.URL+"/query",
			QueryRequest{Query: "r | s", NoCache: true, TimeoutMillis: 30})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
	})
	t.Run("request cannot exceed server cap", func(t *testing.T) {
		_, ts := newGovTestServer(t, Config{Workers: 1, QueryTimeout: 30 * time.Millisecond})
		blockEvals(t)
		start := time.Now()
		resp, _ := do(t, "POST", ts.URL+"/query",
			QueryRequest{Query: "r | s", NoCache: true, TimeoutMillis: 60_000})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("server cap did not apply: took %v", elapsed)
		}
	})
	t.Run("negative timeout rejected", func(t *testing.T) {
		_, ts := newGovTestServer(t, Config{Workers: 1})
		resp, body := do(t, "POST", ts.URL+"/query",
			QueryRequest{Query: "r | s", TimeoutMillis: -1})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
	})
	t.Run("stream deadline ends in error trailer", func(t *testing.T) {
		_, ts := newGovTestServer(t, Config{Workers: 1})
		blockEvals(t)
		resp, body := do(t, "POST", ts.URL+"/query/stream",
			QueryRequest{Query: "r | s", TimeoutMillis: 30})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (stream failures report via the trailer)", resp.StatusCode)
		}
		trailer := lastTrailer(t, body)
		if trailer.Done || !strings.Contains(trailer.Error, "deadline") {
			t.Fatalf("trailer = %+v; want done=false with a deadline error", trailer)
		}
	})
}

// The result budget: a query whose output exceeds MaxResultTuples is a
// clean client error on the materialized path and a valid NDJSON abort
// on the stream path — never a silent truncation.
func TestResultBudget(t *testing.T) {
	srv, ts := newGovTestServer(t, Config{Workers: 1, MaxResultTuples: 100})

	resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "r", NoCache: true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "maxResultTuples") {
		t.Fatalf("body %s", body)
	}

	resp, body = do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "r"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	tuples, trailer := parseStream(t, body)
	if tuples > 100 {
		t.Fatalf("stream shipped %d tuples past a 100-tuple budget", tuples)
	}
	if trailer.Done || !strings.Contains(trailer.Error, "maxResultTuples") {
		t.Fatalf("trailer = %+v; want done=false with a budget error", trailer)
	}

	// Within budget everything behaves as before.
	tiny := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "tiny", NumTuples: 10, NumFacts: 2, MaxLen: 4, MaxGap: 2, Seed: 3,
	})
	if _, err := srv.Load("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	if resp, body := do(t, "POST", ts.URL+"/query",
		QueryRequest{Query: "tiny", NoCache: true}); resp.StatusCode != 200 {
		t.Fatalf("in-budget query: status %d, body %s", resp.StatusCode, body)
	}
	if got := srv.snapshotMetrics().Evaluations; got == 0 {
		t.Fatal("no evaluation recorded for the in-budget query")
	}
}

// A panic during evaluation costs its request a 500, not the process:
// the next request is served normally and the counter records it.
func TestPanicRecoveryMaterialized(t *testing.T) {
	srv, ts := newGovTestServer(t, Config{Workers: 1})
	testHookEvalStart = func(context.Context) { panic("kaboom") }
	t.Cleanup(func() { testHookEvalStart = nil })

	resp, body := do(t, "POST", ts.URL+"/query", QueryRequest{Query: "r | s", NoCache: true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("body %s", body)
	}
	testHookEvalStart = nil
	if resp, _ := do(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("server dead after recovered panic: %d", resp.StatusCode)
	}
	if resp, _ := do(t, "POST", ts.URL+"/query",
		QueryRequest{Query: "r | s", NoCache: true}); resp.StatusCode != 200 {
		t.Fatalf("query after recovered panic: %d", resp.StatusCode)
	}
	if got := srv.snapshotMetrics().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

// A panic after streaming started cannot un-send the 200 — but it must
// still terminate the stream as valid NDJSON: every line parses, and
// the last one is an error trailer, not a severed connection.
func TestPanicRecoveryMidStream(t *testing.T) {
	srv, ts := newGovTestServer(t, Config{Workers: 1})
	testHookStreamBatch = func(shipped int) {
		if shipped > 0 {
			panic("mid-stream kaboom")
		}
	}
	t.Cleanup(func() { testHookStreamBatch = nil })

	resp, body := do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: "r"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tuples, trailer := parseStream(t, body)
	if tuples == 0 {
		t.Fatal("panic fired before any tuple shipped; the hook should allow the first batch")
	}
	if trailer.Done || !strings.Contains(trailer.Error, "panicked") {
		t.Fatalf("trailer = %+v; want done=false with a panic error", trailer)
	}
	if got := srv.snapshotMetrics().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

// The robustness instruments are exposed in both formats: the JSON
// field names the ops tooling keys on, and well-formed Prometheus
// families on the text exposition.
func TestRobustnessMetricsExposition(t *testing.T) {
	_, ts := newGovTestServer(t, Config{Workers: 1})

	_, body := do(t, "GET", ts.URL+"/metrics", nil)
	for _, field := range []string{
		`"panicsRecovered":0`, `"queriesTimedOut":0`, `"queriesShed":0`,
		`"walWriteErrors":0`, `"degraded":false`,
		`"queriesInflight":0`, `"queriesQueued":0`,
	} {
		if !strings.Contains(string(body), field) {
			t.Errorf("JSON metrics missing %s", field)
		}
	}

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, line := range []string{
		"# TYPE tpset_panics_recovered_total counter",
		"tpset_panics_recovered_total 0",
		"# TYPE tpset_queries_timed_out_total counter",
		"tpset_queries_timed_out_total 0",
		"# TYPE tpset_queries_shed_total counter",
		"tpset_queries_shed_total 0",
		"# TYPE tpset_wal_write_errors_total counter",
		"tpset_wal_write_errors_total 0",
		"# TYPE tpset_degraded gauge",
		"tpset_degraded 0",
		"# TYPE tpset_queries_inflight gauge",
		"tpset_queries_inflight 0",
		"# TYPE tpset_queries_queued gauge",
		"tpset_queries_queued 0",
	} {
		if !strings.Contains(prom, line) {
			t.Errorf("Prometheus exposition missing %q", line)
		}
	}
}

// --- helpers ---

// newGovTestServer builds a server under cfg seeded with two synthetic
// relations big enough to stream several batches (r: 2000 tuples, s:
// 500).
func newGovTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	govSeed(t, s, "r", 1)
	govSeed(t, s, "s", 2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func govSeed(t *testing.T, s *Server, name string, seed int64) {
	t.Helper()
	n := 2000
	if name != "r" {
		n = 500
	}
	rel := datagen.Synthetic(datagen.SyntheticConfig{
		Name: name, NumTuples: n, NumFacts: 40, MaxLen: 4, MaxGap: 2, Seed: seed,
	})
	if _, err := s.Load(name, rel); err != nil {
		t.Fatal(err)
	}
}

// parseStream decodes every NDJSON line of a stream body, returning the
// tuple-line count and the final trailer; malformed framing fails the
// test — that is the invariant the abort paths must preserve.
func parseStream(t *testing.T, body []byte) (tuples int, trailer StreamTrailer) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	var last []byte
	for sc.Scan() {
		line := sc.Bytes()
		var v json.RawMessage
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("stream line %d is not valid JSON: %v\n%s", lines, err, line)
		}
		last = append([]byte(nil), line...)
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 2 {
		t.Fatalf("stream had %d lines; want meta + trailer at least", lines)
	}
	if err := json.Unmarshal(last, &trailer); err != nil {
		t.Fatalf("trailer does not parse: %v\n%s", err, last)
	}
	return lines - 2, trailer // minus meta line and trailer
}

// lastTrailer parses only the final line of a stream body.
func lastTrailer(t *testing.T, body []byte) StreamTrailer {
	t.Helper()
	_, trailer := parseStream(t, body)
	return trailer
}
