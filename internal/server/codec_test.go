package server

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

func TestCodecRoundTripBase(t *testing.T) {
	r := relation.New(relation.NewSchema("stock", "Product", "Store"))
	r.AddBase(relation.NewFact("milk", "s1"), "c1", 1, 4, 0.6)
	r.AddBase(relation.NewFact("bread", "s2"), "c2", 2, 9, 0.25)
	r.Sort()

	rj := EncodeRelation(r, 42)
	if rj.Version != 42 || rj.Name != "stock" || len(rj.Tuples) != 2 {
		t.Fatalf("encoded header wrong: %+v", rj)
	}
	// Bare-variable tuples need no varProbs.
	for _, tj := range rj.Tuples {
		if tj.VarProbs != nil {
			t.Fatalf("base tuple carries varProbs: %+v", tj)
		}
	}

	back, err := DecodeRelation(rj, "")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(r, back); d != "" {
		t.Fatalf("round trip differs: %s", d)
	}
}

func TestCodecRoundTripDerivedLineage(t *testing.T) {
	// Build a derived relation with real formula lineage: (c - (a | b)).
	a := relation.New(relation.NewSchema("a", "P"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	b := relation.New(relation.NewSchema("b", "P"))
	b.AddBase(relation.NewFact("milk"), "b1", 4, 12, 0.4)
	c := relation.New(relation.NewSchema("c", "P"))
	c.AddBase(relation.NewFact("milk"), "c1", 1, 14, 0.6)

	ab, err := core.Union(a, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Except(c, ab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rj := EncodeRelation(out, 0)
	// Formula tuples must ship their variable marginals.
	sawFormula := false
	for _, tj := range rj.Tuples {
		if strings.ContainsAny(tj.Lineage, "∧∨¬") {
			sawFormula = true
			if len(tj.VarProbs) == 0 {
				t.Fatalf("formula tuple without varProbs: %+v", tj)
			}
		}
	}
	if !sawFormula {
		t.Fatal("test setup: expected at least one formula-lineage tuple")
	}

	back, err := DecodeRelation(rj, "")
	if err != nil {
		t.Fatal(err)
	}
	// Full structural round trip: facts, intervals, lineage formulas
	// (syntactically) and probabilities all survive — unlike CSV.
	if d := relation.Diff(out, back); d != "" {
		t.Fatalf("derived round trip differs: %s", d)
	}
}

func TestCodecRoundTripRandomRelations(t *testing.T) {
	// Property over generator shapes: JSON round trip is lossless.
	for seed := int64(0); seed < 8; seed++ {
		r := datagen.Synthetic(datagen.SyntheticConfig{
			Name: "r", NumTuples: 200, NumFacts: 1 + int(seed*3),
			MaxLen: 5, MaxGap: 3, Seed: seed,
		})
		blob, err := json.Marshal(EncodeRelation(r, 0))
		if err != nil {
			t.Fatal(err)
		}
		var rj RelationJSON
		if err := json.Unmarshal(blob, &rj); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRelation(rj, "")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := relation.Diff(r, back); d != "" {
			t.Fatalf("seed %d: %s", seed, d)
		}
	}
}

func TestDecodeRelationErrors(t *testing.T) {
	base := func() RelationJSON {
		return RelationJSON{
			Name:  "r",
			Attrs: []string{"P"},
			Tuples: []TupleJSON{
				{Fact: []string{"milk"}, Lineage: "x1", Ts: 1, Te: 4, Prob: 0.5},
			},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*RelationJSON)
		wantSub string
	}{
		{"no name", func(r *RelationJSON) { r.Name = "" }, "no name"},
		{"no attrs", func(r *RelationJSON) { r.Attrs = nil }, "at least one attribute"},
		{"fact arity", func(r *RelationJSON) { r.Tuples[0].Fact = []string{"a", "b"} }, "2 values"},
		{"empty fact value", func(r *RelationJSON) { r.Tuples[0].Fact = []string{""} }, "empty fact value"},
		{"empty interval", func(r *RelationJSON) { r.Tuples[0].Te = 1 }, "empty interval"},
		{"bad prob", func(r *RelationJSON) { r.Tuples[0].Prob = 1.5 }, "outside [0,1]"},
		{"unparsable lineage", func(r *RelationJSON) { r.Tuples[0].Lineage = "x1∧" }, "lineage"},
		{"null lineage", func(r *RelationJSON) { r.Tuples[0].Lineage = "null" }, "null lineage"},
		{"missing var prob", func(r *RelationJSON) { r.Tuples[0].Lineage = "x1∧y1" }, "no varProbs entry"},
		{"bad var prob", func(r *RelationJSON) {
			r.Tuples[0].Lineage = "x1∧y1"
			r.Tuples[0].VarProbs = map[string]float64{"x1": 0.5, "y1": 2}
		}, "outside (0,1]"},
	}
	for _, c := range cases {
		rj := base()
		c.mutate(&rj)
		_, err := DecodeRelation(rj, "")
		if err == nil {
			t.Errorf("%s: want error, got nil", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestDecodeRelationNameOverride(t *testing.T) {
	rj := EncodeRelation(rel1("body", "x1"), 0)
	r, err := DecodeRelation(rj, "url")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Name != "url" {
		t.Fatalf("name = %q, want URL override", r.Schema.Name)
	}
}
