package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"github.com/tpset/tpset/internal/segment"
)

// Degraded read-only mode. When the attached store's WAL append or
// fsync fails — disk full, dying device — the store latches degraded
// (segment.Store.Degraded) and the server follows: mutations are
// refused with 503 before they touch the catalog, so memory and disk
// never diverge during the outage, while reads keep serving the
// in-memory/mmap catalog exactly as before. A background probe
// (StartRecoveryProbe) retries the store's recovery sequence until the
// disk returns, after which writes re-arm without a restart. /healthz
// reports the state so operators and load balancers can see it.

// DefaultProbeInterval is the recovery probe cadence when the caller
// passes none: frequent enough that a transient ENOSPC (log rotation,
// compaction elsewhere) clears in seconds, rare enough that a dead disk
// costs one failed append per interval.
const DefaultProbeInterval = 5 * time.Second

// degradedRetryAfter is the Retry-After hint on 503 responses while
// degraded — the probe cadence, since recovery cannot happen faster.
const degradedRetryAfter = 5

// store returns the attached segment store (nil without -data-dir).
// The pointer is written once by AttachStore before serving starts, but
// reading it under the gate keeps the mutGate access discipline uniform.
func (s *Server) store() *segment.Store {
	s.mut.mu.Lock()
	defer s.mut.mu.Unlock()
	return s.mut.store
}

// storeDegraded returns the store's degradation cause, nil when healthy
// or memory-only.
func (s *Server) storeDegraded() error {
	st := s.store()
	if st == nil {
		return nil
	}
	return st.Degraded()
}

// storeWALErrors returns the store's cumulative WAL write-failure
// count, 0 when memory-only.
func (s *Server) storeWALErrors() uint64 {
	st := s.store()
	if st == nil {
		return 0
	}
	return st.WALErrorCount()
}

// degradedLocked refuses a mutation while the store is degraded —
// checked before the catalog is touched, which is what keeps the
// in-memory catalog and the disk in agreement throughout an outage.
// The caller holds mut.mu.
func (s *Server) degradedLocked() error {
	if s.mut.store == nil {
		return nil
	}
	if cause := s.mut.store.Degraded(); cause != nil {
		return &httpError{status: http.StatusServiceUnavailable,
			msg:        fmt.Sprintf("store degraded (%v): mutations refused until the disk recovers; reads still served", cause),
			retryAfter: degradedRetryAfter}
	}
	return nil
}

// persistError classifies a store mutation failure: WAL-level failures
// (the append or fsync that would have been the acknowledgement) map to
// 503 — the caller must retry after recovery, nothing was lost —
// anything else stays a 500.
func persistError(verb, name string, err error) error {
	msg := fmt.Sprintf("persisting %s %q: %v", verb, name, err)
	var werr *segment.WALError
	if errors.Is(err, segment.ErrDegraded) || errors.As(err, &werr) {
		return &httpError{status: http.StatusServiceUnavailable,
			msg:        msg + " (store degraded; retry after recovery)",
			retryAfter: degradedRetryAfter}
	}
	return errors.New(msg)
}

// StartRecoveryProbe launches the background re-arm loop: every
// interval (DefaultProbeInterval when <= 0) it checks the store and,
// if degraded, runs segment.Store.TryRecover — flush what the WAL
// already acknowledged, truncate any torn tail, prove append+fsync
// works again with a no-op record. On success the store un-latches and
// mutations flow again. The goroutine exits when ctx is cancelled; a
// memory-only server starts nothing.
func (s *Server) StartRecoveryProbe(ctx context.Context, interval time.Duration) {
	st := s.store()
	if st == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			cause := st.Degraded()
			if cause == nil {
				continue
			}
			if err := st.TryRecover(); err != nil {
				s.logDegrade(ctx, slog.LevelWarn, "recovery probe failed; store stays degraded", err)
				continue
			}
			s.logDegrade(ctx, slog.LevelInfo, "store recovered; mutations re-enabled", cause)
		}
	}()
}

// logDegrade emits a degraded-mode transition record when logging is
// configured; err carries the probe failure or the cleared cause.
func (s *Server) logDegrade(ctx context.Context, level slog.Level, msg string, err error) {
	if s.cfg.Logger == nil {
		return
	}
	s.cfg.Logger.LogAttrs(ctx, level, msg, slog.Any("cause", err))
}
