package server

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/obs"
)

// Server metrics: every counter is an atomic instrument (obs.Counter /
// obs.Histogram), so the hot paths record lock-free and GET /metrics
// snapshots each instrument atomically — a point-in-time view that is
// never torn, no matter how hot the writers are. The snapshot is
// exposed twice from the same instruments: as JSON (the Metrics struct)
// and as Prometheus text exposition, negotiated on the Accept header.

// serverMetrics holds the server's atomic instruments.
type serverMetrics struct {
	queries     obs.Counter // POST /query requests admitted to evaluation or cache
	evaluations obs.Counter // queries actually evaluated (cache misses)
	streams     obs.Counter // POST /query/stream requests that started streaming
	explains    obs.Counter // POST /query/explain requests evaluated
	traced      obs.Counter // requests evaluated with tracing on

	bytesStreamed  obs.Counter // NDJSON payload bytes written to stream clients
	tuplesStreamed obs.Counter // result tuples shipped over /query/stream

	admissions     obs.Counter // relations admitted to the catalog (PUT or Load)
	tuplesAdmitted obs.Counter // tuples admitted across all admissions

	segmentsRestored obs.Counter // segments recovered from the data dir at startup

	panicsRecovered obs.Counter // handler panics converted to 500s / error trailers
	queriesTimedOut obs.Counter // queries killed by the evaluation deadline
	queriesShed     obs.Counter // queries refused with 429 (gate and queue full)

	parseHist   obs.Histogram // parse + optimize + catalog snapshot (prepare)
	executeHist obs.Histogram // evaluation (cache lookup or engine drain)
	encodeHist  obs.Histogram // response encoding (materialized path)
	streamHist  obs.Histogram // full stream drain, meta line to trailer
}

// BatchPoolMetrics mirrors core.BatchPoolStats for the JSON body.
type BatchPoolMetrics struct {
	Gets   uint64 `json:"gets"`
	Puts   uint64 `json:"puts"`
	Misses uint64 `json:"misses"` // pool had to allocate fresh storage
	Drops  uint64 `json:"drops"`  // odd-capacity blocks rejected on return
}

// RuntimeMetrics are point-in-time process gauges.
type RuntimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	HeapSysBytes   uint64 `json:"heapSysBytes"`
	NumGC          uint32 `json:"numGC"`
}

// PhaseMetrics are the per-phase latency histograms of the query paths.
type PhaseMetrics struct {
	Parse   obs.HistogramStats `json:"parse"`
	Execute obs.HistogramStats `json:"execute"`
	Encode  obs.HistogramStats `json:"encode"`
	Stream  obs.HistogramStats `json:"stream"`
}

// Metrics is the body of GET /metrics (JSON form).
type Metrics struct {
	Relations      int    `json:"relations"`
	CatalogClock   uint64 `json:"catalogClock"`
	Queries        uint64 `json:"queries"`
	Evaluations    uint64 `json:"evaluations"`
	Streams        uint64 `json:"streams"`
	Explains       uint64 `json:"explains"`
	TracedQueries  uint64 `json:"tracedQueries"`
	BytesStreamed  uint64 `json:"bytesStreamed"`
	TuplesStreamed uint64 `json:"tuplesStreamed"`
	Admissions     uint64 `json:"admissions"`
	TuplesAdmitted uint64 `json:"tuplesAdmitted"`
	// SegmentsRestored counts the on-disk segments recovered into the
	// catalog at startup (0 without -data-dir): the restart-durability
	// smoke asserts on it to prove a restart served from segments, not
	// re-ingestion.
	SegmentsRestored uint64 `json:"segmentsRestored"`
	// Robustness counters: panics converted to clean failures, queries
	// killed by their deadline, queries shed by the admission gate, WAL
	// write failures observed by the store, and the degraded latch.
	PanicsRecovered uint64 `json:"panicsRecovered"`
	QueriesTimedOut uint64 `json:"queriesTimedOut"`
	QueriesShed     uint64 `json:"queriesShed"`
	WALWriteErrors  uint64 `json:"walWriteErrors"`
	Degraded        bool   `json:"degraded"`
	DegradedReason  string `json:"degradedReason,omitempty"`
	// QueriesInflight / QueriesQueued are the admission gate's gauges:
	// evaluation slots held and callers waiting right now.
	QueriesInflight int              `json:"queriesInflight"`
	QueriesQueued   int64            `json:"queriesQueued"`
	Cache           CacheStats       `json:"cache"`
	BatchPool       BatchPoolMetrics `json:"batchPool"`
	Phases          PhaseMetrics     `json:"phases"`
	Runtime         RuntimeMetrics   `json:"runtime"`
	UptimeSec       int64            `json:"uptimeSec"`
}

// snapshotMetrics reads every instrument atomically into the JSON body.
func (s *Server) snapshotMetrics() Metrics {
	gets, puts, news, drops := core.BatchPoolStats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var degradedReason string
	degraded := s.storeDegraded()
	if degraded != nil {
		degradedReason = degraded.Error()
	}
	return Metrics{
		Relations:        s.catalog.Len(),
		CatalogClock:     s.catalog.Clock(),
		Queries:          s.metrics.queries.Load(),
		Evaluations:      s.metrics.evaluations.Load(),
		Streams:          s.metrics.streams.Load(),
		Explains:         s.metrics.explains.Load(),
		TracedQueries:    s.metrics.traced.Load(),
		BytesStreamed:    s.metrics.bytesStreamed.Load(),
		TuplesStreamed:   s.metrics.tuplesStreamed.Load(),
		Admissions:       s.metrics.admissions.Load(),
		TuplesAdmitted:   s.metrics.tuplesAdmitted.Load(),
		SegmentsRestored: s.metrics.segmentsRestored.Load(),
		PanicsRecovered:  s.metrics.panicsRecovered.Load(),
		QueriesTimedOut:  s.metrics.queriesTimedOut.Load(),
		QueriesShed:      s.metrics.queriesShed.Load(),
		WALWriteErrors:   s.storeWALErrors(),
		Degraded:         degraded != nil,
		DegradedReason:   degradedReason,
		QueriesInflight:  s.gate.inflight(),
		QueriesQueued:    s.gate.queuedNow(),
		Cache:            s.cache.Stats(),
		BatchPool:        BatchPoolMetrics{Gets: gets, Puts: puts, Misses: news, Drops: drops},
		Phases: PhaseMetrics{
			Parse:   s.metrics.parseHist.Snapshot(),
			Execute: s.metrics.executeHist.Snapshot(),
			Encode:  s.metrics.encodeHist.Snapshot(),
			Stream:  s.metrics.streamHist.Snapshot(),
		},
		Runtime: RuntimeMetrics{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			HeapSysBytes:   ms.HeapSys,
			NumGC:          ms.NumGC,
		},
		UptimeSec: int64(time.Since(s.started).Seconds()),
	}
}

// handleMetrics negotiates the exposition format on Accept: Prometheus
// text when the client asks for text/plain or OpenMetrics (a Prometheus
// scraper's Accept header), the JSON body otherwise — so existing JSON
// consumers (the CLI, the benchmark harness, jq-based CI gates) keep
// working while a stock Prometheus scrape gets the text format without
// configuration.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPrometheus(r.Header.Get("Accept")) {
		s.writeMetricsProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// acceptsPrometheus reports whether the Accept header prefers the
// Prometheus text exposition over JSON: text/plain or OpenMetrics
// listed before any application/json entry.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch {
		case mt == "text/plain" || mt == "application/openmetrics-text":
			return true
		case mt == "application/json":
			return false
		}
	}
	return false
}

// writeMetricsProm renders every instrument in Prometheus text format.
// Metric names follow the Prometheus conventions: _total counters,
// _seconds histograms, plain gauges.
func (s *Server) writeMetricsProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	m := &s.metrics
	obs.WriteCounterProm(w, "tpset_queries_total", "POST /query requests admitted.", m.queries.Load())
	obs.WriteCounterProm(w, "tpset_evaluations_total", "Queries evaluated (cache misses).", m.evaluations.Load())
	obs.WriteCounterProm(w, "tpset_streams_total", "Streams started on POST /query/stream.", m.streams.Load())
	obs.WriteCounterProm(w, "tpset_explains_total", "POST /query/explain requests evaluated.", m.explains.Load())
	obs.WriteCounterProm(w, "tpset_traced_queries_total", "Requests evaluated with tracing on.", m.traced.Load())
	obs.WriteCounterProm(w, "tpset_stream_bytes_total", "NDJSON payload bytes written to stream clients.", m.bytesStreamed.Load())
	obs.WriteCounterProm(w, "tpset_stream_tuples_total", "Result tuples shipped over /query/stream.", m.tuplesStreamed.Load())
	obs.WriteCounterProm(w, "tpset_relation_admissions_total", "Relations admitted to the catalog.", m.admissions.Load())
	obs.WriteCounterProm(w, "tpset_relation_tuples_admitted_total", "Tuples admitted across all admissions.", m.tuplesAdmitted.Load())
	obs.WriteGaugeProm(w, "tpset_segments_restored", "On-disk segments recovered into the catalog at startup.", float64(m.segmentsRestored.Load()))

	obs.WriteCounterProm(w, "tpset_panics_recovered_total", "Handler panics converted to clean failures.", m.panicsRecovered.Load())
	obs.WriteCounterProm(w, "tpset_queries_timed_out_total", "Queries killed by the evaluation deadline.", m.queriesTimedOut.Load())
	obs.WriteCounterProm(w, "tpset_queries_shed_total", "Queries refused with 429 under overload.", m.queriesShed.Load())
	obs.WriteCounterProm(w, "tpset_wal_write_errors_total", "WAL append/fsync failures observed by the segment store.", s.storeWALErrors())
	degraded := 0.0
	if s.storeDegraded() != nil {
		degraded = 1.0
	}
	obs.WriteGaugeProm(w, "tpset_degraded", "1 while the store is in degraded read-only mode.", degraded)
	obs.WriteGaugeProm(w, "tpset_queries_inflight", "Evaluation slots currently held.", float64(s.gate.inflight()))
	obs.WriteGaugeProm(w, "tpset_queries_queued", "Queries currently waiting for an evaluation slot.", float64(s.gate.queuedNow()))

	cs := s.cache.Stats()
	obs.WriteCounterProm(w, "tpset_cache_hits_total", "Result-cache hits.", cs.Hits)
	obs.WriteCounterProm(w, "tpset_cache_misses_total", "Result-cache misses.", cs.Misses)
	obs.WriteCounterProm(w, "tpset_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	obs.WriteCounterProm(w, "tpset_cache_invalidations_total", "Result-cache entries invalidated by catalog mutations.", cs.Invalidations)
	obs.WriteGaugeProm(w, "tpset_cache_entries", "Result-cache resident entries.", float64(cs.Entries))

	gets, puts, news, drops := core.BatchPoolStats()
	obs.WriteCounterProm(w, "tpset_batch_pool_gets_total", "Batch-pool gets.", gets)
	obs.WriteCounterProm(w, "tpset_batch_pool_puts_total", "Batch-pool puts.", puts)
	obs.WriteCounterProm(w, "tpset_batch_pool_misses_total", "Batch-pool misses (fresh allocations).", news)
	obs.WriteCounterProm(w, "tpset_batch_pool_drops_total", "Odd-capacity blocks rejected on return.", drops)

	m.parseHist.WritePrometheus(w, "tpset_query_parse_seconds", "Query parse, optimize and catalog-snapshot latency.")
	m.executeHist.WritePrometheus(w, "tpset_query_execute_seconds", "Query evaluation latency (cache lookup or engine drain).")
	m.encodeHist.WritePrometheus(w, "tpset_query_encode_seconds", "Materialized-response encoding latency.")
	m.streamHist.WritePrometheus(w, "tpset_query_stream_seconds", "Stream drain latency, meta line to trailer.")

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	obs.WriteGaugeProm(w, "tpset_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	obs.WriteGaugeProm(w, "tpset_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	obs.WriteGaugeProm(w, "tpset_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys))
	obs.WriteGaugeProm(w, "tpset_relations", "Catalog relations.", float64(s.catalog.Len()))
	obs.WriteGaugeProm(w, "tpset_catalog_clock", "Catalog version clock.", float64(s.catalog.Clock()))
	obs.WriteGaugeProm(w, "tpset_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
}

// countingWriter counts payload bytes on their way to the client — the
// bytes-streamed instrument of the NDJSON path. It deliberately does
// not implement http.Flusher: flushing stays on the ResponseWriter the
// stream handler holds.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
