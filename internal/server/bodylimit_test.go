package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

// rawPost sends a raw (non-JSON-marshalled) body so tests can exceed the
// byte limits without building gigantic Go values through json.Marshal
// twice.
func rawPost(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// oversizedQueryBody is a syntactically plausible JSON body just beyond
// MaxQueryBodyBytes.
func oversizedQueryBody() []byte {
	pad := strings.Repeat("x", MaxQueryBodyBytes)
	return []byte(fmt.Sprintf(`{"query":%q}`, "a & b "+pad))
}

func TestQueryBodyLimit(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/query", "/query/stream"} {
		resp, body := rawPost(t, http.MethodPost, ts.URL+path, oversizedQueryBody())
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status %d, want 413 (body %.120s)", path, resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte("request body exceeds")) {
			t.Errorf("POST %s oversized: body %.120s does not mention the limit", path, body)
		}
		// A normal-sized request on the same server still works.
		resp, body = rawPost(t, http.MethodPost, ts.URL+path, []byte(`{"query":"a & c"}`))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST %s normal: status %d, want 200 (body %.120s)", path, resp.StatusCode, body)
		}
	}
}

func TestPutRelationBodyLimit(t *testing.T) {
	// A tiny cap makes the limit testable without a 256 MiB payload.
	old := maxRelationBody
	maxRelationBody = 4 << 10
	defer func() { maxRelationBody = old }()

	_, ts := newTestServer(t)
	big := []byte(fmt.Sprintf(`{"attrs":["F"],"tuples":[{"fact":[%q],"lineage":"r1","ts":1,"te":2,"p":0.5}]}`,
		strings.Repeat("v", 8<<10)))
	resp, body := rawPost(t, http.MethodPut, ts.URL+"/relations/big", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: status %d, want 413 (body %.120s)", resp.StatusCode, body)
	}
	resp, body = rawPost(t, http.MethodPut, ts.URL+"/relations/small",
		[]byte(`{"attrs":["F"],"tuples":[{"fact":["v"],"lineage":"r1","ts":1,"te":2,"p":0.5}]}`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small PUT: status %d, want 201 (body %.120s)", resp.StatusCode, body)
	}
}

// TestCatalogSharedDictionary pins the catalog-level interning contract:
// every admitted relation is bound to one catalog-wide dictionary, a
// replace introducing new facts rebinds the others without bumping their
// versions, and snapshots stay internally dict-consistent.
func TestCatalogSharedDictionary(t *testing.T) {
	s, _ := newTestServer(t)
	db, _, err := s.catalog.Snapshot([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	d := db["a"].Dict()
	if d == nil {
		t.Fatal("catalog relation unbound after admission")
	}
	for name, r := range db {
		if r.Dict() != d {
			t.Fatalf("relation %q bound to a different dict", name)
		}
	}

	_, vsBefore, err := s.catalog.Snapshot([]string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// Replace a with a relation holding a brand-new fact: the dictionary
	// must be rebuilt and b/c rebound, at unchanged versions.
	a2 := relation.New(relation.NewSchema("a", "Product"))
	a2.AddBase(relation.NewFact("bread"), "a9", 1, 5, 0.7)
	if _, err := s.Load("a", a2); err != nil {
		t.Fatal(err)
	}
	db2, vsAfter, err := s.catalog.Snapshot([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	d2 := db2["a"].Dict()
	if d2 == nil || d2 == d {
		t.Fatalf("dictionary not rebuilt for new facts (before %p, after %p)", d, d2)
	}
	for name, r := range db2 {
		if r.Dict() != d2 {
			t.Fatalf("relation %q not rebound to the new dict", name)
		}
	}
	for i, v := range vsBefore {
		if vsAfter[i+1].Name != v.Name || vsAfter[i+1].Version != v.Version {
			t.Fatalf("rebinding changed version of %q: %d vs %d", v.Name, v.Version, vsAfter[i+1].Version)
		}
	}

	// Admitting a relation whose facts are already known reuses the dict.
	a3 := relation.New(relation.NewSchema("d", "Product"))
	a3.AddBase(relation.NewFact("milk"), "d1", 1, 3, 0.2)
	if _, err := s.Load("d", a3); err != nil {
		t.Fatal(err)
	}
	db3, _, err := s.catalog.Snapshot([]string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	if db3["d"].Dict() != d2 {
		t.Fatal("known-fact admission rebuilt the dictionary")
	}
}
