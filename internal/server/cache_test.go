package server

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	r := rel1("r", "r1")
	c.Put("k1", []string{"a"}, r)
	c.Put("k2", []string{"b"}, r)
	if _, ok := c.Get("k1"); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.Put("k3", []string{"c"}, r) // evicts k2
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted as LRU")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 should have survived (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss", st)
	}
}

func TestCacheInvalidateRelationExact(t *testing.T) {
	c := NewCache(10)
	r := rel1("r", "r1")
	c.Put("q1", []string{"a", "b"}, r)
	c.Put("q2", []string{"b", "c"}, r)
	c.Put("q3", []string{"c"}, r)

	if n := c.InvalidateRelation("b"); n != 2 {
		t.Fatalf("InvalidateRelation(b) dropped %d, want 2", n)
	}
	if _, ok := c.Get("q1"); ok {
		t.Fatal("q1 depends on b, should be gone")
	}
	if _, ok := c.Get("q2"); ok {
		t.Fatal("q2 depends on b, should be gone")
	}
	if _, ok := c.Get("q3"); !ok {
		t.Fatal("q3 does not depend on b, should survive")
	}
	st := c.Stats()
	if st.Invalidations != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 invalidations, 0 evictions", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("k", []string{"a"}, rel1("r", "r1"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache must not store")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeyShape(t *testing.T) {
	k := CacheKey("(a | b)", []RelVersion{{"a", 3}, {"b", 7}})
	if want := "(a | b)\x00a@3,b@7"; k != want {
		t.Fatalf("CacheKey = %q, want %q", k, want)
	}
	// Different versions yield different keys.
	k2 := CacheKey("(a | b)", []RelVersion{{"a", 4}, {"b", 7}})
	if k == k2 {
		t.Fatal("version bump must change the key")
	}
}

// TestCacheRePutUnderCapacityPressure re-puts existing keys while the
// cache sits exactly at capacity: the re-put must update the entry and
// its recency in place — Entries must not double-count, nothing may be
// evicted, and no list element may leak (list length stays equal to the
// map size).
func TestCacheRePutUnderCapacityPressure(t *testing.T) {
	c := NewCache(3)
	old := rel1("r", "r1")
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []string{"a"}, old)
	}

	// At capacity: re-put k0 with a fresh result and a different dep set.
	fresh := rel1("r", "r2")
	c.Put("k0", []string{"b"}, fresh)

	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("stats after re-put = %+v, want 3 entries, 0 evictions", st)
	}
	if c.ll.Len() != len(c.entries) {
		t.Fatalf("list %d vs map %d: leaked element", c.ll.Len(), len(c.entries))
	}
	if got, ok := c.Get("k0"); !ok || got != fresh {
		t.Fatal("re-put did not replace the stored result")
	}

	// Recency was refreshed: adding one more evicts k1 (now LRU), not k0.
	c.Put("k3", []string{"a"}, old)
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 was evicted despite being most recently re-put")
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been the LRU eviction victim")
	}

	// The dependency set was replaced, not merged or kept: invalidating
	// the old dep leaves k0 alone, invalidating the new one drops it.
	if n := c.InvalidateRelation("a"); n != 2 { // k2, k3
		t.Fatalf("InvalidateRelation(a) dropped %d, want 2", n)
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 no longer depends on a, must survive")
	}
	if n := c.InvalidateRelation("b"); n != 1 {
		t.Fatalf("InvalidateRelation(b) dropped %d, want 1", n)
	}
	if c.ll.Len() != len(c.entries) {
		t.Fatalf("list %d vs map %d after invalidations", c.ll.Len(), len(c.entries))
	}
}

func TestCachePutOverCapacitySequence(t *testing.T) {
	c := NewCache(3)
	r := rel1("r", "r1")
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []string{"a"}, r)
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 7 {
		t.Fatalf("stats = %+v, want 3 entries, 7 evictions", st)
	}
	// The three most recent survive.
	for i := 7; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d should be cached", i)
		}
	}
}
