package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// newTestServer builds a server seeded with the paper's Fig. 1 trio.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	a := relation.New(relation.NewSchema("a", "Product"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	b := relation.New(relation.NewSchema("b", "Product"))
	b.AddBase(relation.NewFact("milk"), "b1", 4, 12, 0.4)
	c := relation.New(relation.NewSchema("c", "Product"))
	c.AddBase(relation.NewFact("milk"), "c1", 1, 14, 0.6)
	for name, r := range map[string]*relation.Relation{"a": a, "b": b, "c": c} {
		if _, err := s.Load(name, r); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHandlersTable(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantSub    string // substring of the response body
	}{
		{"healthz", "GET", "/healthz", nil, 200, `"status":"ok"`},
		{"metrics", "GET", "/metrics", nil, 200, `"cache"`},
		{"list relations", "GET", "/relations", nil, 200, `"name":"a"`},
		{"get relation", "GET", "/relations/a", nil, 200, `"lineage":"a1"`},
		{"get unknown relation", "GET", "/relations/nope", nil, 404, "unknown relation"},
		{"stats", "GET", "/stats/a", nil, 200, `"Cardinality":1`},
		{"stats unknown", "GET", "/stats/nope", nil, 404, "unknown relation"},
		{"delete unknown", "DELETE", "/relations/nope", nil, 404, "unknown relation"},
		{"query fig1", "POST", "/query", QueryRequest{Query: "c - (a | b)"}, 200, `"lineage":"c1∧¬a1"`},
		{"query canonicalized", "POST", "/query", QueryRequest{Query: "  c minus ((a union b)) "}, 200, `"query":"(c - (a | b))"`},
		{"query parse error", "POST", "/query", QueryRequest{Query: "c - ("}, 400, "error"},
		{"query unknown relation", "POST", "/query", QueryRequest{Query: "c - zz"}, 404, "unknown relation"},
		{"query bad json", "POST", "/query", "not-a-query-object", 400, "decoding body"},
		{"query negative workers", "POST", "/query", QueryRequest{Query: "a | b", Workers: -1}, 400, "workers -1 out of range"},
		{"query absurd workers", "POST", "/query", QueryRequest{Query: "a | b", Workers: MaxWorkers + 1}, 400, "out of range"},
		{"query max workers ok", "POST", "/query", QueryRequest{Query: "a | b", Workers: MaxWorkers}, 200, `"complexity"`},
		{"stream parse error", "POST", "/query/stream", QueryRequest{Query: "c - ("}, 400, "error"},
		{"stream unknown relation", "POST", "/query/stream", QueryRequest{Query: "c - zz"}, 404, "unknown relation"},
		{"stream negative workers", "POST", "/query/stream", QueryRequest{Query: "a | b", Workers: -7}, 400, "workers -7 out of range"},
		{"put bad body", "PUT", "/relations/x", "zzz", 400, "decoding body"},
		{"put bad tuple", "PUT", "/relations/x", RelationJSON{
			Attrs:  []string{"P"},
			Tuples: []TupleJSON{{Fact: []string{"m"}, Lineage: "x1", Ts: 5, Te: 5, Prob: 0.5}},
		}, 400, "empty interval"},
		{"put unreferenceable name", "PUT", "/relations/my-rel", RelationJSON{
			Attrs:  []string{"P"},
			Tuples: []TupleJSON{{Fact: []string{"m"}, Lineage: "x1", Ts: 1, Te: 5, Prob: 0.5}},
		}, 400, "invalid relation name"},
		{"put reserved-word name", "PUT", "/relations/union", RelationJSON{
			Attrs:  []string{"P"},
			Tuples: []TupleJSON{{Fact: []string{"m"}, Lineage: "x1", Ts: 1, Te: 5, Prob: 0.5}},
		}, 400, "invalid relation name"},
		{"put duplicate tuples", "PUT", "/relations/x", RelationJSON{
			Attrs: []string{"P"},
			Tuples: []TupleJSON{
				{Fact: []string{"m"}, Lineage: "x1", Ts: 1, Te: 5, Prob: 0.5},
				{Fact: []string{"m"}, Lineage: "x2", Ts: 3, Te: 8, Prob: 0.5},
			},
		}, 422, "duplicate fact"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := do(t, c.method, ts.URL+c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d; body %s", resp.StatusCode, c.wantStatus, body)
			}
			if !strings.Contains(string(body), c.wantSub) {
				t.Fatalf("body %s does not contain %q", body, c.wantSub)
			}
			if got := resp.Header.Get("Content-Type"); got != "application/json" {
				t.Fatalf("Content-Type %q", got)
			}
		})
	}
}

func TestPutGetDeleteLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	rj := RelationJSON{
		Attrs: []string{"Product"},
		Tuples: []TupleJSON{
			{Fact: []string{"beer"}, Lineage: "d1", Ts: 1, Te: 6, Prob: 0.9},
		},
	}
	resp, body := do(t, "PUT", ts.URL+"/relations/d", rj)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first PUT: %d %s", resp.StatusCode, body)
	}
	var put struct {
		Version uint64 `json:"version"`
		Tuples  int    `json:"tuples"`
	}
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	if put.Tuples != 1 || put.Version == 0 {
		t.Fatalf("PUT reply %+v", put)
	}

	// Replace: 200, version bumps.
	resp, body = do(t, "PUT", ts.URL+"/relations/d", rj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second PUT: %d %s", resp.StatusCode, body)
	}
	var put2 struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &put2); err != nil {
		t.Fatal(err)
	}
	if put2.Version <= put.Version {
		t.Fatalf("replace did not bump version: %d then %d", put.Version, put2.Version)
	}

	// GET returns the stored relation with its version.
	resp, body = do(t, "GET", ts.URL+"/relations/d", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("GET: %d %s", resp.StatusCode, body)
	}
	var got RelationJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Version != put2.Version || len(got.Tuples) != 1 || got.Tuples[0].Lineage != "d1" {
		t.Fatalf("GET reply %+v", got)
	}

	// Query it, then DELETE and observe the query now 404s.
	resp, _ = do(t, "POST", ts.URL+"/query", QueryRequest{Query: "d"})
	if resp.StatusCode != 200 {
		t.Fatalf("query d: %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/relations/d", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	resp, _ = do(t, "POST", ts.URL+"/query", QueryRequest{Query: "d"})
	if resp.StatusCode != 404 {
		t.Fatalf("query after delete: %d, want 404", resp.StatusCode)
	}
}

func queryOnce(t *testing.T, ts *httptest.Server, req QueryRequest) QueryResponse {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/query", req)
	if resp.StatusCode != 200 {
		t.Fatalf("query %+v: %d %s", req, resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func TestQueryCacheHitAndSkipReevaluation(t *testing.T) {
	s, ts := newTestServer(t)

	r1 := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)"})
	if r1.Cached {
		t.Fatal("first run must be a miss")
	}
	evalsAfterCold := s.metrics.evaluations.Load()

	// Same query, different spelling: canonicalization makes it the same
	// cache entry; the engine must not run again.
	r2 := queryOnce(t, ts, QueryRequest{Query: "c minus (a union b)"})
	if !r2.Cached {
		t.Fatal("repeat on unchanged relations must be a cache hit")
	}
	if s.metrics.evaluations.Load() != evalsAfterCold {
		t.Fatal("cache hit re-evaluated the query")
	}
	if fmt.Sprint(r1.Result) != fmt.Sprint(r2.Result) {
		t.Fatalf("cached result differs:\n%v\n%v", r1.Result, r2.Result)
	}
	if fmt.Sprint(r1.Inputs) != fmt.Sprint(r2.Inputs) {
		t.Fatalf("version vectors differ: %v vs %v", r1.Inputs, r2.Inputs)
	}

	st := s.CacheStats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("cache stats %+v, want 1 hit, 1 entry", st)
	}
}

func TestQueryCacheInvalidationOnVersionBump(t *testing.T) {
	s, ts := newTestServer(t)

	// Warm two entries: one over {a,b,c}, one over {c} alone.
	queryOnce(t, ts, QueryRequest{Query: "c - (a | b)"})
	queryOnce(t, ts, QueryRequest{Query: "c & c"})
	if st := s.CacheStats(); st.Entries != 2 {
		t.Fatalf("expected 2 warm entries, have %+v", st)
	}

	// Replace a: only the entry depending on a is invalidated.
	rj := RelationJSON{
		Attrs:  []string{"Product"},
		Tuples: []TupleJSON{{Fact: []string{"milk"}, Lineage: "a9", Ts: 2, Te: 6, Prob: 0.8}},
	}
	resp, body := do(t, "PUT", ts.URL+"/relations/a", rj)
	if resp.StatusCode != 200 {
		t.Fatalf("PUT a: %d %s", resp.StatusCode, body)
	}
	st := s.CacheStats()
	if st.Entries != 1 || st.Invalidations != 1 {
		t.Fatalf("after bump: %+v, want exactly the dependent entry dropped", st)
	}

	// The c-only entry still hits; the a-dependent query re-evaluates
	// against the NEW version of a and yields the new lineage.
	if r := queryOnce(t, ts, QueryRequest{Query: "c & c"}); !r.Cached {
		t.Fatal("independent entry must survive the bump")
	}
	r := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)"})
	if r.Cached {
		t.Fatal("dependent entry must have been invalidated")
	}
	found := false
	for _, tup := range r.Result.Tuples {
		if strings.Contains(tup.Lineage, "a9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-evaluation did not see the new relation: %+v", r.Result.Tuples)
	}
}

func TestQueryLazyProbKnob(t *testing.T) {
	_, ts := newTestServer(t)
	lazy := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)", LazyProb: true})
	for _, tup := range lazy.Result.Tuples {
		if tup.Prob != 0 {
			t.Fatalf("lazyProb result carries valuated probability: %+v", tup)
		}
	}
	eager := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)"})
	if eager.Cached {
		t.Fatal("eager request must not hit the lazy entry (different key)")
	}
	saw := false
	for _, tup := range eager.Result.Tuples {
		if tup.Prob > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("eager result has no probabilities")
	}
	// Lazy results round-trip too: formula marginals travel in varProbs.
	back, err := DecodeRelation(lazy.Result, "out")
	if err != nil {
		t.Fatal(err)
	}
	back.ComputeProbs()
	eagerBack, err := DecodeRelation(eager.Result, "out")
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(back, eagerBack); d != "" {
		t.Fatalf("lazy+ComputeProbs differs from eager: %s", d)
	}
}

func TestQueryNoCache(t *testing.T) {
	s, ts := newTestServer(t)
	queryOnce(t, ts, QueryRequest{Query: "a | b", NoCache: true})
	queryOnce(t, ts, QueryRequest{Query: "a | b", NoCache: true})
	st := s.CacheStats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("NoCache touched the cache: %+v", st)
	}
	if s.metrics.evaluations.Load() != 2 {
		t.Fatalf("evaluations = %d, want 2", s.metrics.evaluations.Load())
	}
}

func TestQueryMatchesLibraryEvaluation(t *testing.T) {
	s, ts := newTestServer(t)
	qr := queryOnce(t, ts, QueryRequest{Query: "c - (a | b)", Workers: 4})

	// Re-evaluate through the library on the same catalog relations.
	db := map[string]*relation.Relation{}
	for _, rv := range s.Relations() {
		r, _, _ := s.Relation(rv.Name)
		db[rv.Name] = r
	}
	want, err := query.Evaluate(query.MustParse("c - (a | b)"), db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(qr.Result, want.Schema.Name)
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(want, got); d != "" {
		t.Fatalf("server result differs from library: %s", d)
	}
}
