package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

// TestStreamBytesUnchangedByBatching pins the wire format of the
// batched stream handler: for a fixed catalog and query, every meta and
// tuple line must be byte-identical to encoding the materialized result
// tuple-by-tuple with a plain json.Encoder — the pre-batching write
// path — and the trailer must carry the exact tuple count. Batching,
// the pooled encoder and the reused TupleJSON/varProbs scratch are
// transport changes only; the bytes on the wire do not move.
func TestStreamBytesUnchangedByBatching(t *testing.T) {
	s, ts := newTestServer(t)
	// A larger relation so multiple batches and buffer fills happen.
	big := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "big", NumTuples: 5000, NumFacts: 50, MaxLen: 3, MaxGap: 3, Seed: 5,
	})
	if _, err := s.Load("big", big.Clone()); err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{"c - (a | b)", "big | big", "big & c"} {
		resp, body := do(t, "POST", ts.URL+"/query/stream", QueryRequest{Query: q})
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, body)
		}
		lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
		if len(lines) < 2 {
			t.Fatalf("%s: %d NDJSON lines", q, len(lines))
		}

		// Reference: the materialized result of the same query, encoded
		// line-by-line exactly as the tuple-at-a-time handler did.
		ref, err := s.RunQuery(QueryRequest{Query: q, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		enc := json.NewEncoder(&want)
		enc.SetEscapeHTML(false)
		meta := StreamMeta{
			Query:      ref.Query,
			Complexity: ref.Complexity,
			Inputs:     ref.Inputs,
			Name:       ref.Result.Name,
			Attrs:      ref.Result.Attrs,
		}
		if err := enc.Encode(meta); err != nil {
			t.Fatal(err)
		}
		for i := range ref.Result.Tuples {
			if err := enc.Encode(ref.Result.Tuples[i]); err != nil {
				t.Fatal(err)
			}
		}
		wantLines := bytes.Split(bytes.TrimSuffix(want.Bytes(), []byte("\n")), []byte("\n"))

		if len(lines) != len(wantLines)+1 { // + trailer
			t.Fatalf("%s: %d stream lines, want %d+trailer", q, len(lines), len(wantLines))
		}
		for i := range wantLines {
			if !bytes.Equal(lines[i], wantLines[i]) {
				t.Fatalf("%s: line %d:\n got %s\nwant %s", q, i, lines[i], wantLines[i])
			}
		}
		var trailer StreamTrailer
		if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil {
			t.Fatalf("%s: trailer: %v", q, err)
		}
		if !trailer.Done || trailer.Tuples != len(ref.Result.Tuples) {
			t.Fatalf("%s: trailer %+v, want done with %d tuples", q, trailer, len(ref.Result.Tuples))
		}
	}
}

// countingResponseWriter counts Write calls — each one a syscall on a
// real connection — while delegating to a recorder.
type countingResponseWriter struct {
	rec    *httptest.ResponseRecorder
	writes int
}

func (w *countingResponseWriter) Header() http.Header { return w.rec.Header() }
func (w *countingResponseWriter) WriteHeader(c int)   { w.rec.WriteHeader(c) }
func (w *countingResponseWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.rec.Write(p)
}

// TestStreamWriteCount asserts the batched stream handler performs far
// fewer ResponseWriter writes than tuples streamed: the sized
// bufio.Writer turns the old one-write-per-tuple pattern into one write
// per ~streamBufSize bytes plus the meta/trailer flushes.
func TestStreamWriteCount(t *testing.T) {
	s, _ := newTestServer(t)
	big := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "big", NumTuples: 6000, NumFacts: 60, MaxLen: 3, MaxGap: 3, Seed: 6,
	})
	if _, err := s.Load("big", big); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(QueryRequest{Query: "big | big"})
	req := httptest.NewRequest("POST", "/query/stream", bytes.NewReader(body))
	cw := &countingResponseWriter{rec: httptest.NewRecorder()}
	s.Handler().ServeHTTP(cw, req)

	if cw.rec.Code != 200 {
		t.Fatalf("status %d: %s", cw.rec.Code, cw.rec.Body.Bytes())
	}
	lines := bytes.Count(cw.rec.Body.Bytes(), []byte("\n"))
	tuples := lines - 2 // minus meta and trailer
	if tuples < 2000 {
		t.Fatalf("only %d tuples streamed; want a stream large enough to measure", tuples)
	}
	// The pre-batching handler issued one write per tuple (plus meta and
	// trailer). Allow generous slack for buffer-boundary writes: even
	// 1/20th would already fail the old write pattern.
	if maxWrites := tuples / 20; cw.writes > maxWrites {
		t.Fatalf("%d ResponseWriter writes for %d tuples; batched encoding should need at most %d",
			cw.writes, tuples, maxWrites)
	}
}

// brokenResponseWriter fails every write after the first — a client
// that disconnected mid-stream.
type brokenResponseWriter struct {
	hdr    http.Header
	writes int
}

func (w *brokenResponseWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *brokenResponseWriter) WriteHeader(int) {}
func (w *brokenResponseWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, fmt.Errorf("client gone")
	}
	return len(p), nil
}

// TestStreamSurvivesBrokenClient pins that a stream aborted by a dead
// client cannot poison the pooled write state for later streams: the
// json.Encoder latches its first write error, so it must be per-stream.
// Without that, the healthy follow-up request below would come back
// with an empty body.
func TestStreamSurvivesBrokenClient(t *testing.T) {
	s, _ := newTestServer(t)
	big := datagen.Synthetic(datagen.SyntheticConfig{
		Name: "big", NumTuples: 4000, NumFacts: 40, MaxLen: 3, MaxGap: 3, Seed: 7,
	})
	if _, err := s.Load("big", big); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(QueryRequest{Query: "big | big"})

	// Enough broken streams to cycle the pool entries.
	for i := 0; i < 8; i++ {
		req := httptest.NewRequest("POST", "/query/stream", bytes.NewReader(body))
		s.Handler().ServeHTTP(&brokenResponseWriter{}, req)
	}

	req := httptest.NewRequest("POST", "/query/stream", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	out := rec.Body.Bytes()
	if len(out) == 0 {
		t.Fatal("healthy stream after broken clients returned an empty body")
	}
	lines := bytes.Split(bytes.TrimSuffix(out, []byte("\n")), []byte("\n"))
	var trailer StreamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &trailer); err != nil || !trailer.Done {
		t.Fatalf("healthy stream has no trailer (%d lines, err %v)", len(lines), err)
	}
	if trailer.Tuples != len(lines)-2 {
		t.Fatalf("trailer says %d tuples, stream carries %d", trailer.Tuples, len(lines)-2)
	}
}

// TestPrepareWorkersResolution pins the worker resolution rule of the
// request prologue: request > server config > runtime.GOMAXPROCS(0).
func TestPrepareWorkersResolution(t *testing.T) {
	load := func(s *Server) {
		r := relation.New(relation.NewSchema("r", "F"))
		r.AddBase(relation.NewFact("x"), "x1", 0, 3, 0.5)
		if _, err := s.Load("r", r); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		server  int
		request int
		want    int
	}{
		{0, 0, runtime.GOMAXPROCS(0)}, // nothing set: scale with the hardware
		{3, 0, 3},                     // server default wins over hardware
		{3, 2, 2},                     // request wins over server default
		{0, 5, 5},                     // request wins over hardware
	}
	for _, tc := range cases {
		s := New(Config{Workers: tc.server})
		load(s)
		pq, err := s.prepare(QueryRequest{Query: "r", Workers: tc.request})
		if err != nil {
			t.Fatal(err)
		}
		if pq.workers != tc.want {
			t.Fatalf("server=%d request=%d: resolved %d workers, want %d",
				tc.server, tc.request, pq.workers, tc.want)
		}
	}
}
