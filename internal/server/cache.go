package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"github.com/tpset/tpset/internal/relation"
)

// CacheKey builds the result-cache key for a query: the canonical query
// string (query.Canonical of the optimized tree, plus any evaluation flags
// that change the result payload) joined with the sorted version vector of
// its input relations. Because every catalog mutation bumps versions, a
// key is valid forever: it can only ever map to the one result computed
// from exactly that catalog state.
func CacheKey(canonical string, versions []RelVersion) string {
	var b strings.Builder
	b.WriteString(canonical)
	b.WriteByte('\x00')
	for i, v := range versions {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d", v.Name, v.Version)
	}
	return b.String()
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Cache is a bounded LRU map from cache keys to query results. Entries
// remember which relations they were computed from, so a catalog mutation
// can invalidate exactly its dependents (InvalidateRelation) — version-
// stamped keys already guarantee stale entries are never *hit*, eager
// invalidation additionally frees their memory immediately instead of
// waiting for LRU pressure.
//
// A Cache is safe for concurrent use. A capacity below one disables
// caching entirely: Get always misses and Put is a no-op.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, invalidations uint64
}

type cacheEntry struct {
	key    string
	deps   []string // relation names the result was computed from
	result *relation.Relation
}

// NewCache returns a cache bounded to capacity entries (< 1 disables).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result under key, refreshing its recency.
func (c *Cache) Get(key string) (*relation.Relation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result under key, recording the relation names it depends
// on, and evicts the least recently used entries beyond capacity. A put
// on an already-present key (concurrent evaluations of the same query
// racing past the same cache miss) updates the entry in place — result,
// dependency set and recency — without growing the list or the map, so
// Entries never double-counts and no list element leaks.
func (c *Cache) Put(key string, deps []string, result *relation.Relation) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.result = result
		e.deps = deps
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, deps: deps, result: result})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// InvalidateRelation drops every entry whose result was computed from the
// named relation and returns how many were dropped. Entries over other
// relations are untouched.
func (c *Cache) InvalidateRelation(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		for _, dep := range e.deps {
			if dep == name {
				c.ll.Remove(el)
				delete(c.entries, e.key)
				c.invalidations++
				dropped++
				break
			}
		}
		el = next
	}
	return dropped
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.ll.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
