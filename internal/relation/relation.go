package relation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
)

// Schema describes the conventional attributes F = (A1, ..., Am) of a TP
// relation. The temporal, lineage and probability attributes are implicit.
type Schema struct {
	Name  string
	Attrs []string
}

// NewSchema returns a schema with the given relation name and attribute
// names.
func NewSchema(name string, attrs ...string) Schema {
	return Schema{Name: name, Attrs: attrs}
}

// Compatible reports whether two schemas are union-compatible: same number
// of attributes. Attribute names may differ (as in SQL set operations).
func (s Schema) Compatible(o Schema) bool { return len(s.Attrs) == len(o.Attrs) }

// Fact is the tuple of conventional attribute values r.F. Facts are
// compared by value; Key renders the canonical comparison key.
type Fact []string

// NewFact builds a fact from attribute values.
func NewFact(values ...string) Fact { return Fact(values) }

// Key returns a canonical string key for grouping and ordering. Values are
// joined with an unlikely separator; for single-attribute facts the key is
// the value itself.
func (f Fact) Key() string {
	if len(f) == 1 {
		return f[0]
	}
	return strings.Join(f, "\x1f")
}

// Equal reports value equality of two facts.
func (f Fact) Equal(o Fact) bool {
	if len(f) != len(o) {
		return false
	}
	for i := range f {
		if f[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the fact as ('v1','v2',...).
func (f Fact) String() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = "'" + v + "'"
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Tuple is a TP tuple (F, λ, T, p). Prob caches the probabilistic valuation
// of Lineage; for base tuples it is the base probability, for derived tuples
// it is filled by the operators (linear-time for 1OF lineage).
type Tuple struct {
	Fact    Fact
	Lineage *lineage.Expr
	T       interval.Interval
	Prob    float64

	key string // cached Fact.Key()
}

// NewBase returns a base tuple: its lineage is the atomic variable id with
// marginal probability p, valid over [ts, te).
func NewBase(fact Fact, id string, ts, te interval.Time, p float64) Tuple {
	return Tuple{
		Fact:    fact,
		Lineage: lineage.Var(id, p),
		T:       interval.New(ts, te),
		Prob:    p,
		key:     fact.Key(),
	}
}

// NewDerived returns a result tuple with the given lineage; its probability
// is computed from the lineage (exact and linear when the lineage is 1OF).
func NewDerived(fact Fact, lam *lineage.Expr, iv interval.Interval) Tuple {
	return Tuple{Fact: fact, Lineage: lam, T: iv, Prob: lam.Prob(), key: fact.Key()}
}

// NewDerivedLazy returns a result tuple without valuating its lineage
// probability (Prob is NaN-free zero; call ComputeProb later). The set
// operation benchmarks use this to time interval/lineage computation
// separately from probability valuation, mirroring the paper's setup where
// confidence computation is a separate stage.
func NewDerivedLazy(fact Fact, lam *lineage.Expr, iv interval.Interval) Tuple {
	return Tuple{Fact: fact, Lineage: lam, T: iv, key: fact.Key()}
}

// Key returns the cached canonical fact key.
func (t *Tuple) Key() string {
	if t.key == "" && len(t.Fact) > 0 {
		t.key = t.Fact.Key()
	}
	return t.key
}

// ComputeProb (re)valuates the lineage probability into Prob.
func (t *Tuple) ComputeProb() float64 {
	t.Prob = t.Lineage.Prob()
	return t.Prob
}

// String renders the tuple like ('milk', c1∧¬a1, [2,4), 0.42).
func (t Tuple) String() string {
	return fmt.Sprintf("(%s, %s, %s, %.4g)", strings.Trim(t.Fact.String(), "()"), t.Lineage, t.T, t.Prob)
}

// Relation is a finite set of TP tuples over a schema. The tuple order is
// not semantically meaningful; Sort establishes the (fact, Ts) order the
// sweep algorithms require.
type Relation struct {
	Schema Schema
	Tuples []Tuple
}

// New returns an empty relation with the given schema.
func New(schema Schema) *Relation {
	return &Relation{Schema: schema}
}

// Add appends a tuple. The caller is responsible for keeping the relation
// duplicate-free; ValidateDuplicateFree checks the invariant.
func (r *Relation) Add(t Tuple) { r.Tuples = append(r.Tuples, t) }

// AddBase appends a base tuple with a fresh identifier id and probability p.
func (r *Relation) AddBase(fact Fact, id string, ts, te interval.Time, p float64) {
	r.Add(NewBase(fact, id, ts, te, p))
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a deep copy of the relation's tuple slice (lineage trees are
// shared: they are immutable).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	copy(out.Tuples, r.Tuples)
	return out
}

// Less is the canonical tuple order (fact key, Ts, Te) used by Sort and by
// the engine's shard-output merge; sharing one comparator keeps the merged
// parallel output bit-identical to the sequentially sorted order.
func Less(a, b *Tuple) bool {
	if ak, bk := a.Key(), b.Key(); ak != bk {
		return ak < bk
	}
	if a.T.Ts != b.T.Ts {
		return a.T.Ts < b.T.Ts
	}
	return a.T.Te < b.T.Te
}

// Sort orders tuples by (fact key, Ts, Te). This is the sort step of Fig. 5
// in the paper and a precondition of the window advancer.
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return Less(&r.Tuples[i], &r.Tuples[j])
	})
}

// IsSorted reports whether the relation is in (fact, Ts) order.
func (r *Relation) IsSorted() bool {
	return sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
		a, b := &r.Tuples[i], &r.Tuples[j]
		if ak, bk := a.Key(), b.Key(); ak != bk {
			return ak < bk
		}
		return a.T.Ts < b.T.Ts
	})
}

// ValidateDuplicateFree checks the model invariant: no two distinct tuples
// share a fact over overlapping intervals. It returns a descriptive error
// naming the first violating pair, or nil.
func (r *Relation) ValidateDuplicateFree() error {
	byFact := make(map[string][]interval.Interval, len(r.Tuples))
	for i := range r.Tuples {
		t := &r.Tuples[i]
		// Recompute the key rather than going through Tuple.Key: its lazy
		// caching write would race when concurrent operations validate a
		// shared relation.
		k := t.Fact.Key()
		byFact[k] = append(byFact[k], t.T)
	}
	for key, ivs := range byFact {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Ts < ivs[j].Ts })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Ts < ivs[i-1].Te {
				return fmt.Errorf("relation %s: duplicate fact %q over overlapping intervals %s and %s",
					r.Schema.Name, key, ivs[i-1], ivs[i])
			}
		}
	}
	return nil
}

// TimeDomain returns the smallest interval covering every tuple, and false
// when the relation is empty.
func (r *Relation) TimeDomain() (interval.Interval, bool) {
	if len(r.Tuples) == 0 {
		return interval.Interval{}, false
	}
	lo, hi := r.Tuples[0].T.Ts, r.Tuples[0].T.Te
	for i := 1; i < len(r.Tuples); i++ {
		lo = interval.Min(lo, r.Tuples[i].T.Ts)
		hi = interval.Max(hi, r.Tuples[i].T.Te)
	}
	return interval.Interval{Ts: lo, Te: hi}, true
}

// Timeslice implements the timeslice operator τ_t^p: the probabilistic
// snapshot of r at time point t. Every tuple valid at t is returned with the
// degenerate interval [t, t+1).
func (r *Relation) Timeslice(t interval.Time) *Relation {
	out := New(r.Schema)
	for i := range r.Tuples {
		tp := &r.Tuples[i]
		if tp.T.Contains(t) {
			c := *tp
			c.T = interval.Interval{Ts: t, Te: t + 1}
			out.Tuples = append(out.Tuples, c)
		}
	}
	return out
}

// LineageAt returns the lineage λ_t^{r,f} of the (unique, by
// duplicate-freeness) tuple with fact key factKey valid at t, or nil
// ("null") when no such tuple exists.
func (r *Relation) LineageAt(factKey string, t interval.Time) *lineage.Expr {
	for i := range r.Tuples {
		tp := &r.Tuples[i]
		if tp.Key() == factKey && tp.T.Contains(t) {
			return tp.Lineage
		}
	}
	return nil
}

// Coalesce merges temporally adjacent tuples with equal facts and
// syntactically equivalent lineage, enforcing the maximality half of change
// preservation (Def. 2). The result is sorted. LAWA output never needs
// coalescing (its windows are maximal by construction); the operator exists
// for data loaded from external sources and for the baselines.
func (r *Relation) Coalesce() *Relation {
	out := r.Clone()
	out.Sort()
	merged := out.Tuples[:0]
	for _, t := range out.Tuples {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.Key() == t.Key() && last.T.Te == t.T.Ts &&
				lineage.EquivalentSyntactic(last.Lineage, t.Lineage) {
				last.T.Te = t.T.Te
				continue
			}
		}
		merged = append(merged, t)
	}
	out.Tuples = merged
	return out
}

// Equal reports whether two relations contain the same tuples (same fact,
// interval, syntactically equivalent lineage and probability within 1e-9),
// ignoring order. It is used heavily by the cross-validation test suite.
func Equal(a, b *Relation) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first difference between
// the two relations, or "" when they are equal up to order.
func Diff(a, b *Relation) string {
	as, bs := a.Clone(), b.Clone()
	as.Sort()
	bs.Sort()
	if len(as.Tuples) != len(bs.Tuples) {
		return fmt.Sprintf("cardinality %d vs %d", len(as.Tuples), len(bs.Tuples))
	}
	for i := range as.Tuples {
		x, y := &as.Tuples[i], &bs.Tuples[i]
		switch {
		case x.Key() != y.Key():
			return fmt.Sprintf("tuple %d: fact %s vs %s", i, x.Fact, y.Fact)
		case x.T != y.T:
			return fmt.Sprintf("tuple %d (%s): interval %s vs %s", i, x.Fact, x.T, y.T)
		case !lineage.EquivalentSyntactic(x.Lineage, y.Lineage):
			return fmt.Sprintf("tuple %d (%s %s): lineage %s vs %s", i, x.Fact, x.T, x.Lineage, y.Lineage)
		case abs(x.Prob-y.Prob) > 1e-9:
			return fmt.Sprintf("tuple %d (%s %s): prob %v vs %v", i, x.Fact, x.T, x.Prob, y.Prob)
		}
	}
	return ""
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the relation as a small table, ordered by (fact, Ts).
func (r *Relation) String() string {
	c := r.Clone()
	c.Sort()
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s):\n", r.Schema.Name, strings.Join(r.Schema.Attrs, ","))
	for i := range c.Tuples {
		fmt.Fprintf(&b, "  %s\n", c.Tuples[i])
	}
	return b.String()
}

// ComputeProbs valuates the lineage probability of every tuple in place
// (exact: linear for 1OF lineage, Shannon expansion otherwise).
func (r *Relation) ComputeProbs() {
	for i := range r.Tuples {
		r.Tuples[i].ComputeProb()
	}
}

// ComputeProbsMonteCarlo estimates every tuple's probability with n
// possible-world samples per tuple, using the given random source. It is
// the practical fallback for large outputs of repeating (#P-hard) queries
// where exact Shannon expansion would blow up; the standard error per
// tuple is at most 0.5/sqrt(n).
func (r *Relation) ComputeProbsMonteCarlo(n int, rng lineage.RNG) {
	for i := range r.Tuples {
		r.Tuples[i].Prob = r.Tuples[i].Lineage.ProbMonteCarlo(n, rng)
	}
}
