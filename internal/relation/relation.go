package relation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
)

// Schema describes the conventional attributes F = (A1, ..., Am) of a TP
// relation. The temporal, lineage and probability attributes are implicit.
type Schema struct {
	Name  string
	Attrs []string
}

// NewSchema returns a schema with the given relation name and attribute
// names.
func NewSchema(name string, attrs ...string) Schema {
	return Schema{Name: name, Attrs: attrs}
}

// Compatible reports whether two schemas are union-compatible: same number
// of attributes. Attribute names may differ (as in SQL set operations).
func (s Schema) Compatible(o Schema) bool { return len(s.Attrs) == len(o.Attrs) }

// Fact is the tuple of conventional attribute values r.F. Facts are
// compared by value; Key renders the canonical comparison key.
type Fact []string

// NewFact builds a fact from attribute values.
func NewFact(values ...string) Fact { return Fact(values) }

// keySep joins attribute values inside a fact key; keyEsc escapes
// occurrences of either byte within a value, so the encoding is injective
// (unique left-to-right parse: keyEsc consumes the next byte as a
// literal, a bare keySep separates values).
const (
	keySep = '\x1f'
	keyEsc = '\x1e'
)

// Key returns a canonical string key for grouping and ordering. Values
// are joined with a separator; values containing the separator or escape
// byte are escaped, so distinct facts can never alias one key (a value
// containing "\x1f" used to collide with the value split at that byte).
// For single-attribute facts the key is the value itself, which is
// trivially injective.
func (f Fact) Key() string {
	if len(f) == 1 {
		return f[0]
	}
	n, escape := 0, false
	for _, v := range f {
		n += len(v) + 1
		if !escape && strings.ContainsAny(v, "\x1e\x1f") {
			escape = true
		}
	}
	if !escape {
		return strings.Join(f, string(keySep))
	}
	var b strings.Builder
	b.Grow(n + 4)
	for i, v := range f {
		if i > 0 {
			b.WriteByte(keySep)
		}
		for j := 0; j < len(v); j++ {
			if v[j] == keySep || v[j] == keyEsc {
				b.WriteByte(keyEsc)
			}
			b.WriteByte(v[j])
		}
	}
	return b.String()
}

// ParseFactKey is the inverse of Fact.Key for a fact of attrs attribute
// values. The key encoding is injective given the attribute count (a
// bare keySep separates values, keyEsc consumes the next byte as a
// literal, and single-attribute keys are the raw value), so a segment
// file can store only the dictionary key strings and reconstruct full
// facts at open. It returns an error — never panics — on a key that is
// not a valid encoding for attrs values: a dangling trailing escape or
// a wrong separator count.
func ParseFactKey(key string, attrs int) (Fact, error) {
	if attrs <= 0 {
		return nil, fmt.Errorf("relation: fact key for %d attributes", attrs)
	}
	if attrs == 1 {
		return Fact{key}, nil
	}
	f := make(Fact, 0, attrs)
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case keyEsc:
			i++
			if i == len(key) {
				return nil, fmt.Errorf("relation: fact key %q ends in dangling escape", key)
			}
			b.WriteByte(key[i])
		case keySep:
			f = append(f, b.String())
			b.Reset()
		default:
			b.WriteByte(key[i])
		}
	}
	f = append(f, b.String())
	if len(f) != attrs {
		return nil, fmt.Errorf("relation: fact key %q encodes %d values, schema has %d attributes", key, len(f), attrs)
	}
	return f, nil
}

// Equal reports value equality of two facts.
func (f Fact) Equal(o Fact) bool {
	if len(f) != len(o) {
		return false
	}
	for i := range f {
		if f[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the fact as ('v1','v2',...).
func (f Fact) String() string {
	parts := make([]string, len(f))
	for i, v := range f {
		parts[i] = "'" + v + "'"
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Tuple is a TP tuple (F, λ, T, p). Prob caches the probabilistic valuation
// of Lineage; for base tuples it is the base probability, for derived tuples
// it is filled by the operators (linear-time for 1OF lineage).
//
// A tuple may additionally be interned against a keys.Dict (fid/dict):
// when two tuples carry the same non-nil dict, their facts compare by
// FactID — a single integer compare — instead of by key string. The
// invariant is that fid == dict.ID(Fact.Key()) whenever dict is non-nil;
// Relation.Bind establishes it and every comparison helper falls back to
// the string key when the dictionaries differ or are absent.
type Tuple struct {
	Fact    Fact
	Lineage *lineage.Expr
	T       interval.Interval
	Prob    float64

	key  string      // cached Fact.Key()
	fid  keys.FactID // interned fact id, valid iff dict != nil
	dict *keys.Dict
}

// FactKey is the comparison key of a tuple's fact: the canonical key
// string plus, when interned, the dictionary id that collapses ordering
// to an integer compare. It is a small value type that the window
// advancer and operator cursors thread through the execution stack so
// derived tuples inherit their inputs' interning.
type FactKey struct {
	key  string
	id   keys.FactID
	dict *keys.Dict
}

// FactKey returns the tuple's comparison key.
func (t *Tuple) FactKey() FactKey {
	return FactKey{key: t.Key(), id: t.fid, dict: t.dict}
}

// FactKeyRO is FactKey without the lazy key-cache write: when the key is
// not cached yet it is recomputed instead of stored. The window advancer
// reads keys through it because its batched sources peek into tuple
// blocks that may alias a relation shared with concurrent readers (a
// zero-copy scan of a catalog relation), where the cache write of
// Tuple.Key would race. In practice the recompute path never runs hot:
// every constructor, Sort and Bind leave the key cached.
func (t *Tuple) FactKeyRO() FactKey {
	if t.key == "" && len(t.Fact) > 0 {
		return FactKey{key: t.Fact.Key(), id: t.fid, dict: t.dict}
	}
	return FactKey{key: t.key, id: t.fid, dict: t.dict}
}

// Interned reports whether the key carries a dictionary id.
func (k FactKey) Interned() bool { return k.dict != nil }

// String returns the canonical key string.
func (k FactKey) String() string { return k.key }

// Equal reports fact equality: an integer compare when both keys are
// interned against the same dictionary, a string compare otherwise.
func (k FactKey) Equal(o FactKey) bool {
	if k.dict != nil && k.dict == o.dict {
		return k.id == o.id
	}
	return k.key == o.key
}

// Less reports canonical fact order. Dictionary ids are ranks over the
// sorted key set, so the integer compare and the string compare agree.
func (k FactKey) Less(o FactKey) bool {
	if k.dict != nil && k.dict == o.dict {
		return k.id < o.id
	}
	return k.key < o.key
}

// InternedID returns the tuple's interned fact id and whether the tuple
// is interned at all. The engine's fact-hash partitioning hashes the id
// instead of the key string when an operation's inputs share one
// dictionary; the read is side-effect free, so it is safe on relations
// shared across concurrent operations.
func (t *Tuple) InternedID() (keys.FactID, bool) { return t.fid, t.dict != nil }

// SameFact reports whether two tuples hold the same fact, using the
// interned fast path when available.
func SameFact(a, b *Tuple) bool {
	if a.dict != nil && a.dict == b.dict {
		return a.fid == b.fid
	}
	return a.Key() == b.Key()
}

// NewBase returns a base tuple: its lineage is the atomic variable id with
// marginal probability p, valid over [ts, te).
func NewBase(fact Fact, id string, ts, te interval.Time, p float64) Tuple {
	return Tuple{
		Fact:    fact,
		Lineage: lineage.Var(id, p),
		T:       interval.New(ts, te),
		Prob:    p,
		key:     fact.Key(),
	}
}

// NewDerived returns a result tuple with the given lineage; its probability
// is computed from the lineage (exact and linear when the lineage is 1OF).
func NewDerived(fact Fact, lam *lineage.Expr, iv interval.Interval) Tuple {
	return Tuple{Fact: fact, Lineage: lam, T: iv, Prob: lam.Prob(), key: fact.Key()}
}

// NewDerivedLazy returns a result tuple without valuating its lineage
// probability (Prob is NaN-free zero; call ComputeProb later). The set
// operation benchmarks use this to time interval/lineage computation
// separately from probability valuation, mirroring the paper's setup where
// confidence computation is a separate stage.
func NewDerivedLazy(fact Fact, lam *lineage.Expr, iv interval.Interval) Tuple {
	return Tuple{Fact: fact, Lineage: lam, T: iv, key: fact.Key()}
}

// NewDerivedLazyKeyed is NewDerivedLazy with a precomputed comparison
// key: the derived tuple reuses the key string and inherits the interning
// of the input tuple the key came from, so operator output stays on the
// integer-compare path without re-deriving or re-interning anything.
func NewDerivedLazyKeyed(fact Fact, k FactKey, lam *lineage.Expr, iv interval.Interval) Tuple {
	return Tuple{Fact: fact, Lineage: lam, T: iv, key: k.key, fid: k.id, dict: k.dict}
}

// InitDerivedLazyKeyed initializes t in place, equivalent to assigning
// NewDerivedLazyKeyed's result. Bulk decode paths (segment restore) fill
// preallocated tuple slabs with it instead of copying ~100-byte Tuple
// values through the stack per element.
func (t *Tuple) InitDerivedLazyKeyed(fact Fact, k FactKey, lam *lineage.Expr, iv interval.Interval) {
	t.Fact = fact
	t.Lineage = lam
	t.T = iv
	t.key = k.key
	t.fid = k.id
	t.dict = k.dict
}

// Key returns the cached canonical fact key.
func (t *Tuple) Key() string {
	if t.key == "" && len(t.Fact) > 0 {
		t.key = t.Fact.Key()
	}
	return t.key
}

// ComputeProb (re)valuates the lineage probability into Prob.
func (t *Tuple) ComputeProb() float64 {
	t.Prob = t.Lineage.Prob()
	return t.Prob
}

// String renders the tuple like ('milk', c1∧¬a1, [2,4), 0.42).
func (t Tuple) String() string {
	return fmt.Sprintf("(%s, %s, %s, %.4g)", strings.Trim(t.Fact.String(), "()"), t.Lineage, t.T, t.Prob)
}

// Relation is a finite set of TP tuples over a schema. The tuple order is
// not semantically meaningful; Sort establishes the (fact, Ts) order the
// sweep algorithms require.
//
// A relation may be bound to a fact dictionary (Bind, Intern, InternAll):
// then every tuple carries its FactID and the sort, duplicate check and
// coalescing run on integer compares. dict != nil implies every tuple is
// interned against it; Add maintains the invariant by interning appended
// tuples (or dropping the binding when a fact is unknown to the dict).
type Relation struct {
	Schema Schema
	Tuples []Tuple

	dict *keys.Dict
	// cols caches the columnar projection (BuildCols); every mutator
	// below clears it, and the Cols accessor re-checks validity.
	cols *Cols
	// region is the foreign memory (an mmap'd segment) the numeric
	// columns of cols alias when SetCols installed them; nil for
	// heap-built columns. The tpinvariants build checks every Cols read
	// against it.
	region []byte
	// frozen marks the relation read-only: mutators panic. Set for
	// relations whose columns alias a shared mapping, where an in-place
	// mutation would corrupt memory other snapshots still read.
	frozen bool
}

// clearCols drops the cached columnar projection together with the
// foreign-memory region it may alias; every mutator goes through it so
// a stale region can never be checked against freshly built heap
// columns.
func (r *Relation) clearCols() { r.cols, r.region = nil, nil }

// mutable panics when the relation is frozen; every mutator calls it
// first, so an aliased mapping can never be written through a stale
// reference to a restored relation.
func (r *Relation) mutable(op string) {
	if r.frozen {
		panic("relation: " + op + " on frozen relation " + r.Schema.Name)
	}
}

// Freeze marks the relation read-only: Add, Bind, Unbind, Sort,
// ComputeProbs, ComputeProbsMonteCarlo, BuildCols and SetCols panic
// afterwards. The segment store freezes restored relations because
// their columns alias the shared file mapping; Clone returns an
// unfrozen deep copy, so the catalog's rebind-via-clone admission path
// is unaffected.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether the relation is read-only.
func (r *Relation) Frozen() bool { return r.frozen }

// New returns an empty relation with the given schema.
func New(schema Schema) *Relation {
	return &Relation{Schema: schema}
}

// Add appends a tuple. The caller is responsible for keeping the relation
// duplicate-free; ValidateDuplicateFree checks the invariant.
func (r *Relation) Add(t Tuple) {
	r.mutable("Add")
	r.clearCols()
	if r.dict != nil && t.dict != r.dict {
		if id, ok := r.dict.ID(t.Key()); ok {
			t.fid, t.dict = id, r.dict
		} else {
			r.dict = nil
		}
	}
	r.Tuples = append(r.Tuples, t)
}

// Dict returns the dictionary the relation is bound to, or nil.
func (r *Relation) Dict() *keys.Dict { return r.dict }

// Bind interns every tuple against d and binds the relation, enabling
// the integer-compare paths. It reports whether every fact was present
// in d; on a miss the relation is left unbound (tuples seen before the
// miss keep a valid per-tuple interning, which is always self-consistent).
// Binding never reorders tuples, and because dictionaries are
// order-preserving a sorted relation stays sorted across rebinding.
func (r *Relation) Bind(d *keys.Dict) bool {
	r.mutable("Bind")
	r.clearCols()
	if d == nil {
		r.Unbind()
		return false
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		id, ok := d.ID(t.Key())
		if !ok {
			r.dict = nil
			return false
		}
		t.fid, t.dict = id, d
	}
	r.dict = d
	return true
}

// Unbind clears the relation's and every tuple's interning; comparisons
// fall back to key strings. The pre-interning execution stack is exactly
// the unbound one, which the cross-validation suite and the
// intern-vs-string benchmark exercise through this switch.
func (r *Relation) Unbind() {
	r.mutable("Unbind")
	r.clearCols()
	r.dict = nil
	for i := range r.Tuples {
		r.Tuples[i].fid, r.Tuples[i].dict = 0, nil
	}
}

// Intern builds a dictionary over the relation's own facts, binds the
// relation to it and returns it — the ingest-time entry point (csvio,
// datagen, catalog admission).
func (r *Relation) Intern() *keys.Dict {
	ks := make([]string, len(r.Tuples))
	for i := range r.Tuples {
		ks[i] = r.Tuples[i].Key()
	}
	d := keys.BuildDict(ks)
	r.Bind(d)
	return d
}

// InternAll builds one shared dictionary over the facts of all given
// relations and binds each to it. Sharing one dictionary is what makes
// cross-relation comparisons — the window advancer, fact-hash
// partitioning, k-way merges — integer-only across a whole query tree.
func InternAll(rels ...*Relation) *keys.Dict {
	var ks []string
	for _, r := range rels {
		for i := range r.Tuples {
			ks = append(ks, r.Tuples[i].Key())
		}
	}
	d := keys.BuildDict(ks)
	for _, r := range rels {
		r.Bind(d)
	}
	return d
}

// AdoptBinding rebinds the relation to d when every tuple is already
// interned against it (a cheap pointer scan), and unsets the relation
// dict otherwise. Materialize uses it so operator output over same-dict
// inputs comes out bound without any map lookups.
func (r *Relation) AdoptBinding() {
	if len(r.Tuples) == 0 {
		return
	}
	d := r.Tuples[0].dict
	if d == nil {
		r.dict = nil
		return
	}
	for i := 1; i < len(r.Tuples); i++ {
		if r.Tuples[i].dict != d {
			r.dict = nil
			return
		}
	}
	r.dict = d
}

// AddBase appends a base tuple with a fresh identifier id and probability p.
func (r *Relation) AddBase(fact Fact, id string, ts, te interval.Time, p float64) {
	r.Add(NewBase(fact, id, ts, te, p))
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a deep copy of the relation's tuple slice (lineage trees
// are shared: they are immutable). The interning binding is carried over.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples)), dict: r.dict}
	copy(out.Tuples, r.Tuples)
	return out
}

// SkipToKey returns the index of the first tuple of the (fact, Ts)-sorted
// slice whose fact key is >= k, by galloping: an exponential probe
// brackets the run, then binary search pins the boundary. A run of m
// skipped tuples costs O(log m) comparisons — single integer compares
// when the tuples and k are interned against one dictionary. This is the
// run-skipping primitive of the window advancer and the batched scan.
func SkipToKey(ts []Tuple, k FactKey) int {
	if len(ts) == 0 || !ts[0].FactKeyRO().Less(k) {
		return 0
	}
	// Double until ts[hi] >= k or the slice ends. Invariant afterwards:
	// ts[hi/2] < k, so the answer lies in (hi/2, min(hi, len)].
	hi := 1
	for hi < len(ts) && ts[hi].FactKeyRO().Less(k) {
		hi *= 2
	}
	lo := hi/2 + 1
	if hi > len(ts) {
		hi = len(ts)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ts[mid].FactKeyRO().Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Less is the canonical tuple order (fact key, Ts, Te) used by Sort and by
// the engine's shard-output merge; sharing one comparator keeps the merged
// parallel output bit-identical to the sequentially sorted order. When
// both tuples are interned against one dictionary the fact compare is a
// single integer compare — the packed (FactID, Ts, Te) order — which
// agrees with the string order because ids are ranks over the sorted keys.
func Less(a, b *Tuple) bool {
	if a.dict != nil && a.dict == b.dict {
		if a.fid != b.fid {
			return a.fid < b.fid
		}
	} else if ak, bk := a.Key(), b.Key(); ak != bk {
		return ak < bk
	}
	if a.T.Ts != b.T.Ts {
		return a.T.Ts < b.T.Ts
	}
	return a.T.Te < b.T.Te
}

// Sort orders tuples by (fact key, Ts, Te). This is the sort step of Fig. 5
// in the paper and a precondition of the window advancer. A bound
// relation sorts with the pure three-integer comparator.
func (r *Relation) Sort() {
	r.mutable("Sort")
	r.clearCols()
	if r.dict != nil {
		sort.Slice(r.Tuples, func(i, j int) bool {
			a, b := &r.Tuples[i], &r.Tuples[j]
			if a.fid != b.fid {
				return a.fid < b.fid
			}
			if a.T.Ts != b.T.Ts {
				return a.T.Ts < b.T.Ts
			}
			return a.T.Te < b.T.Te
		})
		return
	}
	sort.Slice(r.Tuples, func(i, j int) bool {
		return Less(&r.Tuples[i], &r.Tuples[j])
	})
}

// IsSorted reports whether the relation is in (fact, Ts) order.
func (r *Relation) IsSorted() bool {
	if r.dict != nil {
		return sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
			a, b := &r.Tuples[i], &r.Tuples[j]
			if a.fid != b.fid {
				return a.fid < b.fid
			}
			return a.T.Ts < b.T.Ts
		})
	}
	return sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
		a, b := &r.Tuples[i], &r.Tuples[j]
		if ak, bk := a.Key(), b.Key(); ak != bk {
			return ak < bk
		}
		return a.T.Ts < b.T.Ts
	})
}

// ValidateDuplicateFree checks the model invariant: no two distinct tuples
// share a fact over overlapping intervals. It returns a descriptive error
// naming the first violating pair, or nil.
func (r *Relation) ValidateDuplicateFree() error {
	if r.dict != nil {
		// Bound relation: group by interned id — integer map keys, and no
		// key recomputation at all (fids are read-only here, so sharing
		// the relation across concurrent validators stays race-free).
		byID := make(map[keys.FactID][]interval.Interval, len(r.Tuples))
		for i := range r.Tuples {
			t := &r.Tuples[i]
			byID[t.fid] = append(byID[t.fid], t.T)
		}
		for id, ivs := range byID {
			if err := overlapIn(ivs); err != nil {
				return fmt.Errorf("relation %s: duplicate fact %q over %w", r.Schema.Name, r.dict.Key(id), err)
			}
		}
		return nil
	}
	byFact := make(map[string][]interval.Interval, len(r.Tuples))
	for i := range r.Tuples {
		t := &r.Tuples[i]
		// Recompute the key rather than going through Tuple.Key: its lazy
		// caching write would race when concurrent operations validate a
		// shared relation.
		k := t.Fact.Key()
		byFact[k] = append(byFact[k], t.T)
	}
	for key, ivs := range byFact {
		if err := overlapIn(ivs); err != nil {
			return fmt.Errorf("relation %s: duplicate fact %q over %w", r.Schema.Name, key, err)
		}
	}
	return nil
}

// overlapIn sorts the intervals and returns an error naming the first
// overlapping pair, or nil.
func overlapIn(ivs []interval.Interval) error {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Ts < ivs[j].Ts })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Ts < ivs[i-1].Te {
			return fmt.Errorf("overlapping intervals %s and %s", ivs[i-1], ivs[i])
		}
	}
	return nil
}

// TimeDomain returns the smallest interval covering every tuple, and false
// when the relation is empty.
func (r *Relation) TimeDomain() (interval.Interval, bool) {
	if len(r.Tuples) == 0 {
		return interval.Interval{}, false
	}
	lo, hi := r.Tuples[0].T.Ts, r.Tuples[0].T.Te
	for i := 1; i < len(r.Tuples); i++ {
		lo = interval.Min(lo, r.Tuples[i].T.Ts)
		hi = interval.Max(hi, r.Tuples[i].T.Te)
	}
	return interval.Interval{Ts: lo, Te: hi}, true
}

// Timeslice implements the timeslice operator τ_t^p: the probabilistic
// snapshot of r at time point t. Every tuple valid at t is returned with the
// degenerate interval [t, t+1).
func (r *Relation) Timeslice(t interval.Time) *Relation {
	out := New(r.Schema)
	out.dict = r.dict
	for i := range r.Tuples {
		tp := &r.Tuples[i]
		if tp.T.Contains(t) {
			c := *tp
			c.T = interval.Interval{Ts: t, Te: t + 1}
			out.Tuples = append(out.Tuples, c)
		}
	}
	return out
}

// LineageAt returns the lineage λ_t^{r,f} of the (unique, by
// duplicate-freeness) tuple with fact key factKey valid at t, or nil
// ("null") when no such tuple exists.
func (r *Relation) LineageAt(factKey string, t interval.Time) *lineage.Expr {
	for i := range r.Tuples {
		tp := &r.Tuples[i]
		if tp.Key() == factKey && tp.T.Contains(t) {
			return tp.Lineage
		}
	}
	return nil
}

// Coalesce merges temporally adjacent tuples with equal facts and
// syntactically equivalent lineage, enforcing the maximality half of change
// preservation (Def. 2). The result is sorted. LAWA output never needs
// coalescing (its windows are maximal by construction); the operator exists
// for data loaded from external sources and for the baselines.
func (r *Relation) Coalesce() *Relation {
	out := r.Clone()
	out.Sort()
	merged := out.Tuples[:0]
	for _, t := range out.Tuples {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if SameFact(last, &t) && last.T.Te == t.T.Ts &&
				lineage.EquivalentSyntactic(last.Lineage, t.Lineage) {
				last.T.Te = t.T.Te
				continue
			}
		}
		merged = append(merged, t)
	}
	out.Tuples = merged
	return out
}

// Equal reports whether two relations contain the same tuples (same fact,
// interval, syntactically equivalent lineage and probability within 1e-9),
// ignoring order. It is used heavily by the cross-validation test suite.
func Equal(a, b *Relation) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first difference between
// the two relations, or "" when they are equal up to order.
func Diff(a, b *Relation) string {
	as, bs := a.Clone(), b.Clone()
	as.Sort()
	bs.Sort()
	if len(as.Tuples) != len(bs.Tuples) {
		return fmt.Sprintf("cardinality %d vs %d", len(as.Tuples), len(bs.Tuples))
	}
	for i := range as.Tuples {
		x, y := &as.Tuples[i], &bs.Tuples[i]
		switch {
		case !SameFact(x, y):
			return fmt.Sprintf("tuple %d: fact %s vs %s", i, x.Fact, y.Fact)
		case x.T != y.T:
			return fmt.Sprintf("tuple %d (%s): interval %s vs %s", i, x.Fact, x.T, y.T)
		case !lineage.EquivalentSyntactic(x.Lineage, y.Lineage):
			return fmt.Sprintf("tuple %d (%s %s): lineage %s vs %s", i, x.Fact, x.T, x.Lineage, y.Lineage)
		case abs(x.Prob-y.Prob) > 1e-9:
			return fmt.Sprintf("tuple %d (%s %s): prob %v vs %v", i, x.Fact, x.T, x.Prob, y.Prob)
		}
	}
	return ""
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the relation as a small table, ordered by (fact, Ts).
func (r *Relation) String() string {
	c := r.Clone()
	c.Sort()
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s):\n", r.Schema.Name, strings.Join(r.Schema.Attrs, ","))
	for i := range c.Tuples {
		fmt.Fprintf(&b, "  %s\n", c.Tuples[i])
	}
	return b.String()
}

// ComputeProbs valuates the lineage probability of every tuple in place
// (exact: linear for 1OF lineage, Shannon expansion otherwise).
func (r *Relation) ComputeProbs() {
	r.mutable("ComputeProbs")
	r.clearCols() // the Prob column would go stale
	for i := range r.Tuples {
		r.Tuples[i].ComputeProb()
	}
}

// ComputeProbsMonteCarlo estimates every tuple's probability with n
// possible-world samples per tuple, using the given random source. It is
// the practical fallback for large outputs of repeating (#P-hard) queries
// where exact Shannon expansion would blow up; the standard error per
// tuple is at most 0.5/sqrt(n).
func (r *Relation) ComputeProbsMonteCarlo(n int, rng lineage.RNG) {
	r.mutable("ComputeProbsMonteCarlo")
	r.clearCols() // the Prob column would go stale
	for i := range r.Tuples {
		r.Tuples[i].Prob = r.Tuples[i].Lineage.ProbMonteCarlo(n, rng)
	}
}
