package relation

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
)

func mk(name string) *Relation { return New(NewSchema(name, "F")) }

func TestFactKeyAndEquality(t *testing.T) {
	single := NewFact("milk")
	if single.Key() != "milk" {
		t.Errorf("single-attribute key: %q", single.Key())
	}
	multi := NewFact("milk", "zurich")
	multi2 := NewFact("milk", "zurich")
	if multi.Key() != multi2.Key() || !multi.Equal(multi2) {
		t.Error("multi-attribute facts must compare equal")
	}
	if NewFact("a", "b").Key() == NewFact("ab").Key() {
		t.Error("key must separate attribute boundaries")
	}
	if NewFact("a").Equal(NewFact("a", "b")) {
		t.Error("different arity facts must differ")
	}
	if got := multi.String(); got != "('milk','zurich')" {
		t.Errorf("fact string: %s", got)
	}
}

func TestSchemaCompatible(t *testing.T) {
	a := NewSchema("a", "X", "Y")
	b := NewSchema("b", "P", "Q")
	c := NewSchema("c", "P")
	if !a.Compatible(b) || a.Compatible(c) {
		t.Error("compatibility is arity-based")
	}
}

func TestAddBaseAndProb(t *testing.T) {
	r := mk("r")
	r.AddBase(NewFact("x"), "r1", 1, 5, 0.25)
	tu := r.Tuples[0]
	if tu.Prob != 0.25 || tu.Lineage.String() != "r1" || tu.T != interval.New(1, 5) {
		t.Fatalf("base tuple wrong: %v", tu)
	}
	d := NewDerived(NewFact("x"), lineage.And(tu.Lineage, lineage.Var("s1", 0.5)), interval.New(2, 3))
	if math.Abs(d.Prob-0.125) > 1e-12 {
		t.Errorf("derived prob %v", d.Prob)
	}
	lz := NewDerivedLazy(NewFact("x"), tu.Lineage, interval.New(2, 3))
	if lz.Prob != 0 {
		t.Error("lazy tuple must not valuate")
	}
	if lz.ComputeProb(); lz.Prob != 0.25 {
		t.Error("ComputeProb")
	}
}

func TestSortAndIsSorted(t *testing.T) {
	r := mk("r")
	r.AddBase(NewFact("b"), "r1", 5, 6, 0.5)
	r.AddBase(NewFact("a"), "r2", 7, 9, 0.5)
	r.AddBase(NewFact("a"), "r3", 1, 3, 0.5)
	if r.IsSorted() {
		t.Error("not sorted yet")
	}
	r.Sort()
	if !r.IsSorted() {
		t.Error("sorted now")
	}
	order := []string{"r3", "r2", "r1"}
	for i, id := range order {
		if r.Tuples[i].Lineage.String() != id {
			t.Fatalf("position %d: %v", i, r.Tuples[i])
		}
	}
}

func TestValidateDuplicateFree(t *testing.T) {
	r := mk("r")
	r.AddBase(NewFact("x"), "r1", 1, 5, 0.5)
	r.AddBase(NewFact("x"), "r2", 5, 8, 0.5) // adjacent: fine
	r.AddBase(NewFact("y"), "r3", 2, 4, 0.5) // other fact: fine
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	r.AddBase(NewFact("x"), "r4", 4, 6, 0.5) // overlaps r1 and r2
	err := r.ValidateDuplicateFree()
	if err == nil {
		t.Fatal("expected violation")
	}
	if !strings.Contains(err.Error(), "x") {
		t.Errorf("error should name the fact: %v", err)
	}
}

func TestTimesliceAndLineageAt(t *testing.T) {
	r := mk("r")
	r.AddBase(NewFact("x"), "r1", 1, 5, 0.5)
	r.AddBase(NewFact("y"), "r2", 3, 7, 0.5)
	snap := r.Timeslice(3)
	if snap.Len() != 2 {
		t.Fatalf("snapshot size %d", snap.Len())
	}
	for _, tu := range snap.Tuples {
		if tu.T != (interval.Interval{Ts: 3, Te: 4}) {
			t.Errorf("degenerate interval wrong: %v", tu.T)
		}
	}
	if r.Timeslice(0).Len() != 0 || r.Timeslice(5).Len() != 1 {
		t.Error("boundary slicing wrong")
	}
	if r.LineageAt("x", 2).String() != "r1" || r.LineageAt("x", 5) != nil || r.LineageAt("z", 2) != nil {
		t.Error("LineageAt")
	}
}

func TestTimeDomain(t *testing.T) {
	r := mk("r")
	if _, ok := r.TimeDomain(); ok {
		t.Error("empty relation has no domain")
	}
	r.AddBase(NewFact("x"), "r1", 3, 5, 0.5)
	r.AddBase(NewFact("y"), "r2", 1, 2, 0.5)
	dom, ok := r.TimeDomain()
	if !ok || dom != interval.New(1, 5) {
		t.Errorf("domain %v", dom)
	}
}

func TestCoalesce(t *testing.T) {
	r := mk("r")
	lam := lineage.Var("r1", 0.5)
	// Three fragments of the same tuple: adjacent + same lineage.
	r.Tuples = append(r.Tuples,
		NewDerived(NewFact("x"), lam, interval.New(1, 3)),
		NewDerived(NewFact("x"), lam, interval.New(3, 5)),
		NewDerived(NewFact("x"), lam, interval.New(7, 9)), // gap: stays
		NewDerived(NewFact("y"), lam, interval.New(5, 7)), // other fact
	)
	c := r.Coalesce()
	if c.Len() != 3 {
		t.Fatalf("coalesced to %d tuples: %s", c.Len(), c)
	}
	c.Sort()
	if c.Tuples[0].T != interval.New(1, 5) {
		t.Errorf("merged interval %v", c.Tuples[0].T)
	}
	// Adjacent but different lineage must NOT merge (change preservation).
	r2 := mk("r2")
	r2.Tuples = append(r2.Tuples,
		NewDerived(NewFact("x"), lineage.Var("a", .5), interval.New(1, 3)),
		NewDerived(NewFact("x"), lineage.Var("b", .5), interval.New(3, 5)),
	)
	if r2.Coalesce().Len() != 2 {
		t.Error("different lineages merged")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := mk("a"), mk("b")
	a.AddBase(NewFact("x"), "t1", 1, 3, 0.5)
	b.AddBase(NewFact("x"), "t1", 1, 3, 0.5)
	if !Equal(a, b) {
		t.Fatalf("equal relations differ: %s", Diff(a, b))
	}
	b.Tuples[0].T.Te = 4
	if Equal(a, b) || !strings.Contains(Diff(a, b), "interval") {
		t.Errorf("interval diff: %q", Diff(a, b))
	}
	b.Tuples[0].T.Te = 3
	b.Tuples[0].Prob = 0.7
	if !strings.Contains(Diff(a, b), "prob") {
		t.Errorf("prob diff: %q", Diff(a, b))
	}
	c := mk("c")
	if Equal(a, c) || !strings.Contains(Diff(a, c), "cardinality") {
		t.Error("cardinality diff")
	}
}

func TestCloneIsolation(t *testing.T) {
	a := mk("a")
	a.AddBase(NewFact("x"), "t1", 1, 3, 0.5)
	c := a.Clone()
	c.Tuples[0].T.Te = 99
	if a.Tuples[0].T.Te == 99 {
		t.Error("clone shares tuple storage")
	}
}

func TestComputeStats(t *testing.T) {
	r := mk("r")
	r.AddBase(NewFact("x"), "r1", 0, 10, 0.5)
	r.AddBase(NewFact("x"), "r2", 10, 12, 0.5)
	r.AddBase(NewFact("y"), "r3", 5, 8, 0.5)
	s := ComputeStats(r)
	if s.Cardinality != 3 || s.NumFacts != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MinDuration != 2 || s.MaxDuration != 10 || math.Abs(s.AvgDuration-5) > 1e-9 {
		t.Errorf("durations: %+v", s)
	}
	if s.TimeRange != 12 {
		t.Errorf("range: %d", s.TimeRange)
	}
	if s.MaxPerPoint != 2 {
		t.Errorf("max per point: %d", s.MaxPerPoint)
	}
	if got := s.String(); !strings.Contains(got, "Cardinality") {
		t.Error("stats render")
	}
	if z := ComputeStats(mk("z")); z.Cardinality != 0 {
		t.Error("empty stats")
	}
}

func TestOverlapFactorBounds(t *testing.T) {
	r, s := mk("r"), mk("s")
	// Identical single tuples: factor 1.
	r.AddBase(NewFact("x"), "r1", 0, 10, 0.5)
	s.AddBase(NewFact("x"), "s1", 0, 10, 0.5)
	if f := OverlapFactor(r, s); math.Abs(f-1) > 1e-12 {
		t.Errorf("identical: %v", f)
	}
	// Disjoint: factor 0.
	s2 := mk("s2")
	s2.AddBase(NewFact("x"), "s1", 20, 30, 0.5)
	if f := OverlapFactor(r, s2); f != 0 {
		t.Errorf("disjoint: %v", f)
	}
	// Half covered: [0,10) vs [5,15): overlap 5, union 15.
	s3 := mk("s3")
	s3.AddBase(NewFact("x"), "s1", 5, 15, 0.5)
	if f := OverlapFactor(r, s3); math.Abs(f-5.0/15) > 1e-12 {
		t.Errorf("partial: %v", f)
	}
	// Different facts never overlap.
	s4 := mk("s4")
	s4.AddBase(NewFact("y"), "s1", 0, 10, 0.5)
	if f := OverlapFactor(r, s4); f != 0 {
		t.Errorf("fact-disjoint: %v", f)
	}
	if OverlapFactor(mk("e1"), mk("e2")) != 0 {
		t.Error("empty relations")
	}
}

func TestTupleString(t *testing.T) {
	tu := NewBase(NewFact("milk"), "c1", 2, 4, 0.42)
	if got := tu.String(); got != "('milk', c1, [2,4), 0.42)" {
		t.Errorf("tuple string: %s", got)
	}
}

func TestComputeProbsVariants(t *testing.T) {
	r := mk("r")
	a := lineage.Var("a", 0.5)
	b := lineage.Var("b", 0.4)
	r.Tuples = append(r.Tuples,
		NewDerivedLazy(NewFact("x"), lineage.And(a, b), interval.New(1, 3)),
		NewDerivedLazy(NewFact("y"), lineage.Or(a, lineage.And(a, b)), interval.New(1, 3)),
	)
	r.ComputeProbs()
	if math.Abs(r.Tuples[0].Prob-0.2) > 1e-12 {
		t.Errorf("1OF prob: %v", r.Tuples[0].Prob)
	}
	if math.Abs(r.Tuples[1].Prob-0.5) > 1e-12 {
		t.Errorf("shared-var exact prob: %v", r.Tuples[1].Prob)
	}
	rng := rand.New(rand.NewSource(5))
	r.ComputeProbsMonteCarlo(100000, rng)
	if math.Abs(r.Tuples[1].Prob-0.5) > 0.02 {
		t.Errorf("MC prob: %v", r.Tuples[1].Prob)
	}
}
