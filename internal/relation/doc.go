// Package relation implements the sequenced temporal-probabilistic
// relation model of the paper (§II): a TP relation over schema
// RTp(F, λ, T, p) is a finite, duplicate-free set of tuples, each carrying
// a fact (the conventional attribute values), a lineage expression, a
// half-open time interval and a marginal probability.
//
// The package provides construction and validation, the timeslice
// operator τ_t^p used to define snapshot reducibility, change-preservation
// coalescing, sorting by (fact, Ts) as required by the LAWA sweep, and the
// dataset statistics reported in Table IV of the paper.
//
// Invariants:
//
//   - Duplicate-freeness (Def. 1): no two distinct tuples share a fact
//     over overlapping intervals. Construction does not enforce it (bulk
//     loads would pay twice); ValidateDuplicateFree checks it, and every
//     admission path of unknown provenance (CSV reader, query service
//     PUT) calls it.
//   - The canonical tuple order is (fact key, Ts, Te) — Less, shared by
//     Sort and the parallel engine's shard merge, which is what keeps
//     parallel output bit-identical to sequential output.
//   - Tuple.Key caches the fact key lazily; concurrent code must not call
//     it on shared, never-sorted relations (see the engine's concurrency
//     notes) — construction through NewBase/NewDerived pre-fills it.
//   - Fact keys are injective: attribute values containing the key
//     separator (or escape byte) are escaped, so distinct facts can never
//     alias one key.
//   - Interning (Bind/Intern/InternAll, package keys): a relation bound
//     to a fact dictionary compares tuples by packed (FactID, Ts, Te)
//     integers. Ids are ranks over the sorted key set, so the integer
//     order IS the canonical order; dict != nil implies every tuple is
//     interned against it (Add maintains this, dropping the binding on
//     unknown facts).
//
// Paper map: Defs. 1–2 (TP relation, duplicate-freeness, change
// preservation), τ_t^p (§II), Table IV statistics (§VII-C), overlapping
// factor (§VII-B). See docs/PAPER_MAP.md.
package relation
