//go:build !tpinvariants

package relation

// checkColsRegion is a no-op without the tpinvariants tag; the Cols
// accessor call compiles away. See colscheck_tagged.go for the checked
// body.
func (r *Relation) checkColsRegion() {}
