package relation

import (
	"fmt"
	"testing"
)

// FuzzSkipToKey is the differential pin on both skip primitives of the
// run-skipping stack: on arbitrary fuzzer-derived sorted inputs, the
// galloping column search (SkipToFid over packed int64 ids) and the
// galloping tuple search (SkipToKey over tuple structs, interned and
// string-keyed) must land on exactly the index a linear scan finds —
// the first entry not below the probe. Deltas are cumulated so any byte
// string yields a valid non-decreasing column; the probe covers below-,
// inside- and past-range targets.
func FuzzSkipToKey(f *testing.F) {
	f.Add([]byte{1, 0, 3, 3, 7}, uint16(2), uint8(0))
	f.Add([]byte{0, 0, 0, 0}, uint16(0), uint8(1))
	f.Add([]byte{5}, uint16(9), uint8(2))
	f.Add([]byte{}, uint16(1), uint8(0))
	f.Add([]byte{15, 15, 15, 1, 1, 1, 0, 2}, uint16(40), uint8(1))
	f.Fuzz(func(t *testing.T, deltas []byte, probe uint16, mode uint8) {
		if len(deltas) > 2048 {
			deltas = deltas[:2048]
		}
		fid := make([]int64, len(deltas))
		var acc int64
		for i, d := range deltas {
			acc += int64(d % 8) // runs of equal ids every few entries
			fid[i] = acc
		}
		target := int64(probe) % (acc + 2) // below, within and past the column

		// Column form: gallop vs linear over the packed ids.
		got := SkipToFid(fid, target)
		want := 0
		for want < len(fid) && fid[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("SkipToFid(%v, %d) = %d, want %d", fid, target, got, want)
		}

		// Tuple form: the same column as a sorted relation (zero-padded
		// names keep lexicographic order equal to numeric order), probed
		// with an unbound key; mode 1 interns the relation so the gallop
		// compares packed ids, mode 2 leaves it string-keyed.
		r := New(NewSchema("r", "F"))
		for i, id := range fid {
			r.AddBase(NewFact(fmt.Sprintf("f%06d", id)), fmt.Sprintf("x%d", i), int64(i), int64(i)+1, 0.5)
		}
		if mode%3 == 1 {
			r.Intern()
		}
		k := FactKey{key: NewFact(fmt.Sprintf("f%06d", target)).Key()}
		gotK := SkipToKey(r.Tuples, k)
		wantK := 0
		for wantK < len(r.Tuples) && r.Tuples[wantK].FactKeyRO().Less(k) {
			wantK++
		}
		if gotK != wantK {
			t.Fatalf("SkipToKey(mode %d, target %d) = %d, want %d", mode, target, gotK, wantK)
		}
		if want != wantK {
			t.Fatalf("column and tuple references disagree: %d vs %d", want, wantK)
		}
	})
}
