package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomRel(rng *rand.Rand, n, facts int, maxGap int64) *Relation {
	r := New(NewSchema("r", "F"))
	cursors := make([]int64, facts)
	for i := 0; i < n; i++ {
		f := rng.Intn(facts)
		ts := cursors[f] + rng.Int63n(maxGap+1)
		te := ts + 1 + rng.Int63n(4)
		cursors[f] = te
		r.AddBase(NewFact(fmt.Sprintf("f%03d", f)), fmt.Sprintf("t%d", i), ts, te, 0.5)
	}
	// Shuffle so the input is unsorted.
	rng.Shuffle(len(r.Tuples), func(i, j int) {
		r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
	})
	return r
}

// TestSortCountingMatchesSort: both sorts produce identical orderings on
// duplicate-free relations, across dense and sparse time domains.
func TestSortCountingMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		maxGap := int64(1 + rng.Intn(200)) // dense → sparse groups
		a := randomRel(rng, 1+rng.Intn(300), 1+rng.Intn(5), maxGap)
		b := a.Clone()
		a.Sort()
		b.SortCounting()
		if len(a.Tuples) != len(b.Tuples) {
			t.Fatal("length changed")
		}
		for i := range a.Tuples {
			x, y := &a.Tuples[i], &b.Tuples[i]
			if x.Key() != y.Key() || x.T != y.T || x.Lineage != y.Lineage {
				t.Fatalf("trial %d (maxGap %d): position %d differs: %v vs %v",
					trial, maxGap, i, x, y)
			}
		}
		if !b.IsSorted() {
			t.Fatalf("trial %d: counting sort output not sorted", trial)
		}
	}
}

func TestSortCountingEmptyAndSingle(t *testing.T) {
	e := New(NewSchema("e", "F"))
	e.SortCounting()
	if e.Len() != 0 {
		t.Fatal("empty")
	}
	s := New(NewSchema("s", "F"))
	s.AddBase(NewFact("x"), "t1", 5, 9, 0.5)
	s.SortCounting()
	if s.Len() != 1 || s.Tuples[0].T.Ts != 5 {
		t.Fatal("single")
	}
}
