package relation

import (
	"fmt"

	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
)

// Columnar projection of a bound relation: the structure-of-arrays view
// the batched execution stack reads where the per-tuple struct walk of
// the AoS layout would dominate. Row i of every column mirrors
// Tuples[i], so a sub-window of the relation aliases both views with
// two slice-header writes per column and zero copying. Fid is the
// packed interned id — (Fid, Ts, Te) integer compares ARE canonical
// tuple order, because dictionary ids are ranks over the sorted key
// set — and Lam carries the lineage DAG pointers so the encoder's read
// side never touches the ~100-byte tuple struct on the hot path. The
// same columns are the on-disk layout ROADMAP item 1's mmap'd segments
// will use, which is why the projection lives here rather than in core.
type Cols struct {
	Fid  []int64
	Ts   []int64
	Te   []int64
	Prob []float64
	Lam  []*lineage.Expr
}

// BuildCols materializes the columnar projection of a bound relation
// and caches it on the relation; it returns nil (and clears the cache)
// when the relation is unbound — columns exist only over one shared
// dictionary, since Fid compares are meaningless without it. Callers
// build columns once per private, sorted relation (operation prepare,
// cursor-plan leaves, engine shard partitions, catalog admission);
// every mutating method invalidates the cache.
func (r *Relation) BuildCols() *Cols {
	r.mutable("BuildCols")
	if r.dict == nil {
		r.clearCols()
		return nil
	}
	r.region = nil // heap columns: no foreign region to bounds-check
	n := len(r.Tuples)
	c := &Cols{
		Fid:  make([]int64, n),
		Ts:   make([]int64, n),
		Te:   make([]int64, n),
		Prob: make([]float64, n),
		Lam:  make([]*lineage.Expr, n),
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		c.Fid[i] = int64(t.fid)
		c.Ts[i] = t.T.Ts
		c.Te[i] = t.T.Te
		c.Prob[i] = t.Prob
		c.Lam[i] = t.Lineage
	}
	r.cols = c
	return c
}

// Cols returns the cached columnar projection, or nil when none is
// valid. Tuples is a public field, so a caller that appends or edits it
// directly bypasses the mutator invalidation — the length check below
// catches the append case; in-place edits of an equal-length slice are
// the caller's responsibility (the execution stack only ever hands out
// read-only views of shared relations).
func (r *Relation) Cols() *Cols {
	if r.cols == nil || r.dict == nil || len(r.cols.Fid) != len(r.Tuples) {
		return nil
	}
	r.checkColsRegion() // tpinvariants build only: columns inside the mapped region
	return r.cols
}

// SetCols installs an externally built columnar projection whose
// numeric columns alias foreign memory — the mmap'd segment region —
// instead of heap slices, making BuildCols a pointer fixup rather than
// a copy for restored relations. region is the mapping the columns
// point into; the tpinvariants build re-checks containment on every
// Cols read. It returns an error when the relation is unbound or the
// column lengths do not mirror Tuples; the caller typically calls
// Freeze right after, since writes through aliased columns would
// corrupt the shared mapping.
func (r *Relation) SetCols(c *Cols, region []byte) error {
	r.mutable("SetCols")
	if r.dict == nil {
		return fmt.Errorf("relation %s: SetCols on unbound relation", r.Schema.Name)
	}
	n := len(r.Tuples)
	if c == nil || len(c.Fid) != n || len(c.Ts) != n || len(c.Te) != n || len(c.Prob) != n || len(c.Lam) != n {
		return fmt.Errorf("relation %s: SetCols columns do not mirror %d tuples", r.Schema.Name, n)
	}
	r.cols, r.region = c, region
	return nil
}

// SkipToFid returns the index of the first entry of the sorted id
// column >= target, by the same exponential-probe + binary-search
// gallop as SkipToKey — but over a packed []int64, so every probe is
// one bounds-checked load and one integer compare with no method call
// and no struct access. It is the run-skipping primitive of the
// columnar scan and the columnar batch source.
func SkipToFid(fid []int64, target int64) int {
	if len(fid) == 0 || fid[0] >= target {
		return 0
	}
	// Double until fid[hi] >= target or the column ends. Invariant
	// afterwards: fid[hi/2] < target, so the answer lies in
	// (hi/2, min(hi, len)].
	hi := 1
	for hi < len(fid) && fid[hi] < target {
		hi *= 2
	}
	lo := hi/2 + 1
	if hi > len(fid) {
		hi = len(fid)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1) // lo <= mid < hi: in bounds, overflow-free
		if fid[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IDIn returns the key's packed interned id when the key is interned
// against d, so columnar consumers can translate a FactKey into the
// integer a fid column is searched with. ok is false when the key is
// unbound or bound to a different dictionary — callers fall back to
// the string-compare path.
func (k FactKey) IDIn(d *keys.Dict) (int64, bool) {
	if d != nil && k.dict == d {
		return int64(k.id), true
	}
	return 0, false
}

// KeyIn reconstructs the FactKey of the id-th entry of d. Dict.Key is
// an O(1) array index, so a columnar source derives full comparison
// keys — string included — straight from a packed fid column without
// touching any tuple struct, and the tuples it emits inherit the
// interning exactly as on the AoS path.
func KeyIn(d *keys.Dict, id int64) FactKey {
	return FactKey{key: d.Key(keys.FactID(id)), id: keys.FactID(id), dict: d}
}

// Binding returns the tuple's interning (dictionary and packed id);
// the dictionary is nil for an unbound tuple. Batch builders use it to
// maintain the column views alongside the payload slice.
func (t *Tuple) Binding() (*keys.Dict, keys.FactID) { return t.dict, t.fid }
