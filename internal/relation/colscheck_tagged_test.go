//go:build tpinvariants

package relation

import (
	"strings"
	"testing"
	"unsafe"

	"github.com/tpset/tpset/internal/lineage"
)

// Under the tpinvariants tag the Cols accessor re-checks that
// foreign-memory columns still lie inside the mapped region recorded
// by SetCols; a projection that escaped its region — a corrupted
// pointer fixup — must panic with a diagnostic naming the check site
// and the offending column.
func TestColsOutsideRegionPanics(t *testing.T) {
	r := New(NewSchema("mapped", "a"))
	r.AddBase(NewFact("x"), "i1", 0, 5, 0.5)
	r.AddBase(NewFact("y"), "i2", 1, 4, 0.25)
	r.Intern()
	r.Sort()
	// A "region" that cannot contain the heap-allocated columns below.
	region := make([]byte, 8)
	cols := &Cols{
		Fid:  []int64{0, 1},
		Ts:   []int64{0, 1},
		Te:   []int64{5, 4},
		Prob: []float64{0.5, 0.25},
		Lam:  []*lineage.Expr{r.Tuples[0].Lineage, r.Tuples[1].Lineage},
	}
	if err := r.SetCols(cols, region); err != nil {
		t.Fatalf("SetCols: %v", err)
	}
	defer func() {
		msg, _ := recover().(string)
		if msg == "" {
			t.Fatalf("Cols() over an escaped region did not panic")
		}
		if !strings.Contains(msg, "invariant violation at relation.Cols(mapped)") {
			t.Fatalf("panic %q does not name the check site", msg)
		}
		if !strings.Contains(msg, "outside mapped region") {
			t.Fatalf("panic %q does not describe the violation", msg)
		}
	}()
	r.Cols()
}

// Columns genuinely inside the recorded region pass the check.
func TestColsInsideRegionPasses(t *testing.T) {
	r := New(NewSchema("inreg", "a"))
	r.AddBase(NewFact("x"), "i1", 0, 5, 0.5)
	r.Intern()
	r.Sort()
	slab := make([]int64, 8) // 8-aligned backing, viewed both as bytes and columns
	region := unsafe.Slice((*byte)(unsafe.Pointer(&slab[0])), 8*len(slab))
	fid, ts, te := slab[0:1], slab[1:2], slab[2:3]
	prob := unsafe.Slice((*float64)(unsafe.Pointer(&slab[3])), 1)
	fid[0], ts[0], te[0], prob[0] = 0, 0, 5, 0.5
	cols := &Cols{Fid: fid, Ts: ts, Te: te, Prob: prob, Lam: []*lineage.Expr{r.Tuples[0].Lineage}}
	if err := r.SetCols(cols, region); err != nil {
		t.Fatalf("SetCols: %v", err)
	}
	if r.Cols() != cols {
		t.Fatalf("in-region columns rejected")
	}
}
