package relation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tpset/tpset/internal/interval"
)

// Stats summarizes a TP relation with the metrics of Table IV of the paper:
// cardinality, time range, interval durations, fact counts, distinct event
// points and per-time-point tuple density.
type Stats struct {
	Cardinality    int
	TimeRange      int64 // span of the covering interval
	MinDuration    int64
	MaxDuration    int64
	AvgDuration    float64
	NumFacts       int
	DistinctPoints int     // distinct start/end points
	MaxPerPoint    int     // max tuples valid at any event point
	AvgPerPoint    float64 // average tuples valid over event points
}

// ComputeStats scans the relation once (plus an event sort) and fills a
// Stats. The per-point densities are evaluated at event points, which is
// where the maxima occur.
func ComputeStats(r *Relation) Stats {
	var s Stats
	s.Cardinality = len(r.Tuples)
	if s.Cardinality == 0 {
		return s
	}
	dom, _ := r.TimeDomain()
	s.TimeRange = dom.Duration()

	facts := make(map[string]struct{})
	type event struct {
		t     interval.Time
		delta int
	}
	events := make([]event, 0, 2*len(r.Tuples))
	var totalDur int64
	s.MinDuration = r.Tuples[0].T.Duration()
	for i := range r.Tuples {
		t := &r.Tuples[i]
		d := t.T.Duration()
		totalDur += d
		if d < s.MinDuration {
			s.MinDuration = d
		}
		if d > s.MaxDuration {
			s.MaxDuration = d
		}
		facts[t.Key()] = struct{}{}
		events = append(events, event{t.T.Ts, 1}, event{t.T.Te, -1})
	}
	s.AvgDuration = float64(totalDur) / float64(s.Cardinality)
	s.NumFacts = len(facts)

	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // ends before starts at equal t
	})
	active, points, sumActive := 0, 0, 0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			active += events[i].delta
			i++
		}
		points++
		if active > s.MaxPerPoint {
			s.MaxPerPoint = active
		}
		sumActive += active
	}
	s.DistinctPoints = points
	if points > 0 {
		s.AvgPerPoint = float64(sumActive) / float64(points)
	}
	return s
}

// String renders the stats in the layout of Table IV.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cardinality              %d\n", s.Cardinality)
	fmt.Fprintf(&b, "Time Range               %d\n", s.TimeRange)
	fmt.Fprintf(&b, "Min. Duration            %d\n", s.MinDuration)
	fmt.Fprintf(&b, "Max. Duration            %d\n", s.MaxDuration)
	fmt.Fprintf(&b, "Avg. Duration            %.1f\n", s.AvgDuration)
	fmt.Fprintf(&b, "Num. of Facts            %d\n", s.NumFacts)
	fmt.Fprintf(&b, "Distinct Points          %d\n", s.DistinctPoints)
	fmt.Fprintf(&b, "Max Num. of Tuples (pt)  %d\n", s.MaxPerPoint)
	fmt.Fprintf(&b, "Avg Num. of Tuples (pt)  %.1f\n", s.AvgPerPoint)
	return b.String()
}

// OverlapFactor computes the overlapping factor of §VII-B for a pair of
// relations: the duration of the maximal subintervals during which a tuple
// of r and a tuple of s (with the same fact) overlap, divided by the total
// duration of the maximal subintervals covered by tuples of either
// relation. The value ranges in [0,1]; 0 means the relations never
// coincide, 1 means every covered time point is covered by both.
//
// Reading note: the paper counts "maximal subintervals"; a duration-
// weighted reading reproduces the Table III calibration (its length
// parameters then land near the stated factors 0.03–0.8), whereas a
// count-based reading compresses all of Table III into ≈0.3–0.5, so the
// duration-weighted interpretation is used here and the harness always
// reports the measured factor next to the paper's target.
func OverlapFactor(r, s *Relation) float64 {
	type ev struct {
		t        interval.Time
		dr, ds   int
		factSwap bool
	}
	// Build per-fact event lists: +1/-1 for r and s validity.
	events := make(map[string][]ev)
	addEvents := func(rel *Relation, isR bool) {
		for i := range rel.Tuples {
			t := &rel.Tuples[i]
			e1, e2 := ev{t: t.T.Ts}, ev{t: t.T.Te}
			if isR {
				e1.dr, e2.dr = 1, -1
			} else {
				e1.ds, e2.ds = 1, -1
			}
			events[t.Key()] = append(events[t.Key()], e1, e2)
		}
	}
	addEvents(r, true)
	addEvents(s, false)

	var overlapping, total int64
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		ar, as := 0, 0
		var prev interval.Time
		for i := 0; i < len(evs); {
			t := evs[i].t
			if ar > 0 || as > 0 {
				total += int64(t - prev)
				if ar > 0 && as > 0 {
					overlapping += int64(t - prev)
				}
			}
			for i < len(evs) && evs[i].t == t {
				ar += evs[i].dr
				as += evs[i].ds
				i++
			}
			prev = t
		}
	}
	if total == 0 {
		return 0
	}
	return float64(overlapping) / float64(total)
}
