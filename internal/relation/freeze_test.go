package relation

import (
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/lineage"
)

func frozenFixture(t *testing.T) *Relation {
	t.Helper()
	r := New(NewSchema("fr", "a", "b"))
	r.AddBase(NewFact("x", "1"), "i1", 0, 5, 0.5)
	r.AddBase(NewFact("y", "2"), "i2", 2, 7, 0.25)
	r.Intern()
	r.Sort()
	r.BuildCols()
	r.Freeze()
	return r
}

func TestFrozenMutatorsPanic(t *testing.T) {
	r := frozenFixture(t)
	if !r.Frozen() {
		t.Fatalf("Frozen() = false after Freeze")
	}
	cases := map[string]func(){
		"Add":          func() { r.Add(Tuple{}) },
		"Bind":         func() { r.Bind(r.Dict()) },
		"Unbind":       func() { r.Unbind() },
		"Sort":         func() { r.Sort() },
		"ComputeProbs": func() { r.ComputeProbs() },
		"BuildCols":    func() { r.BuildCols() },
		"SetCols":      func() { r.SetCols(r.Cols(), nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				msg, _ := recover().(string)
				if msg == "" {
					t.Errorf("%s on frozen relation did not panic", name)
				} else if !strings.Contains(msg, name) || !strings.Contains(msg, "frozen") {
					t.Errorf("%s panic message %q does not name the operation", name, msg)
				}
			}()
			fn()
		}()
	}
	// Reads stay open: the columnar view and clone both work.
	if r.Cols() == nil {
		t.Fatalf("frozen relation lost its columns")
	}
	c := r.Clone()
	if c.Frozen() {
		t.Fatalf("Clone inherited frozen")
	}
	c.Sort()
	c.BuildCols()
}

func TestSetColsValidates(t *testing.T) {
	r := New(NewSchema("v", "a"))
	r.AddBase(NewFact("x"), "i1", 0, 5, 0.5)
	if err := r.SetCols(&Cols{}, nil); err == nil {
		t.Fatalf("SetCols on unbound relation accepted")
	}
	r.Intern()
	if err := r.SetCols(&Cols{Fid: []int64{1, 2}}, nil); err == nil {
		t.Fatalf("SetCols with mismatched lengths accepted")
	}
	good := &Cols{Fid: []int64{0}, Ts: []int64{0}, Te: []int64{5}, Prob: []float64{0.5}, Lam: []*lineage.Expr{r.Tuples[0].Lineage}}
	if err := r.SetCols(good, nil); err != nil {
		t.Fatalf("SetCols rejected a mirroring projection: %v", err)
	}
	if r.Cols() != good {
		t.Fatalf("Cols() did not return the installed projection")
	}
}

func TestParseFactKeyInvertsKey(t *testing.T) {
	facts := []Fact{
		{"plain"},
		{""},
		{"a", "b"},
		{"", ""},
		{"with\x1fsep", "and\x1eesc"},
		{"\x1e", "\x1f", "mixed\x1e\x1fboth"},
		{"unicode✓", "tab\tand\nnl"},
	}
	for _, f := range facts {
		got, err := ParseFactKey(f.Key(), len(f))
		if err != nil {
			t.Fatalf("ParseFactKey(%q, %d): %v", f.Key(), len(f), err)
		}
		if !got.Equal(f) {
			t.Fatalf("ParseFactKey(%q) = %v, want %v", f.Key(), got, f)
		}
	}
}

func TestParseFactKeyRejectsInvalid(t *testing.T) {
	cases := []struct {
		key   string
		attrs int
	}{
		{"x", 0},              // no attributes
		{"a\x1e", 2},          // dangling escape
		{"a", 2},              // too few values
		{"a\x1fb\x1fc", 2},    // too many values
		{"\x1fa\x1fb\x1f", 2}, // separator count off by two
	}
	for _, c := range cases {
		if _, err := ParseFactKey(c.key, c.attrs); err == nil {
			t.Fatalf("ParseFactKey(%q, %d) accepted", c.key, c.attrs)
		}
	}
}
