package relation

import (
	"sort"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/keys"
)

// SortCounting orders the relation by (fact, Ts) using a counting sort on
// the start points within each fact group, as suggested in §VI-B of the
// paper for the case where ΩT fits in main memory: "a variant of
// counting-based sorting could also be used, and in this case the
// corresponding complexity is even linear".
//
// The cost is O(n + fd·log fd + Σ group time ranges); it degrades into
// wasted memory when a group's time range vastly exceeds its tuple count,
// so SortCounting falls back to the comparison sort for any group whose
// range exceeds maxSpread × its size. The result is identical to Sort.
func (r *Relation) SortCounting() {
	const maxSpread = 16

	// Group tuple indexes by fact. A bound relation groups by interned id
	// (integer map keys, id order == key order); otherwise by key string.
	var order [][]int32
	if r.dict != nil {
		groups := make(map[keys.FactID][]int32, 64)
		for i := range r.Tuples {
			groups[r.Tuples[i].fid] = append(groups[r.Tuples[i].fid], int32(i))
		}
		ids := make([]keys.FactID, 0, len(groups))
		for id := range groups {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			order = append(order, groups[id])
		}
	} else {
		groups := make(map[string][]int32, 64)
		for i := range r.Tuples {
			k := r.Tuples[i].Key()
			groups[k] = append(groups[k], int32(i))
		}
		ks := make([]string, 0, len(groups))
		for k := range groups {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			order = append(order, groups[k])
		}
	}

	out := make([]Tuple, 0, len(r.Tuples))
	var counts []int32
	for _, idxs := range order {
		lo, hi := r.Tuples[idxs[0]].T.Ts, r.Tuples[idxs[0]].T.Ts
		for _, i := range idxs[1:] {
			ts := r.Tuples[i].T.Ts
			lo = interval.Min(lo, ts)
			hi = interval.Max(hi, ts)
		}
		span := hi - lo + 1
		if span > int64(len(idxs))*maxSpread {
			// Sparse group: comparison sort is cheaper than a huge
			// counting array.
			sort.Slice(idxs, func(a, b int) bool {
				ta, tb := &r.Tuples[idxs[a]], &r.Tuples[idxs[b]]
				if ta.T.Ts != tb.T.Ts {
					return ta.T.Ts < tb.T.Ts
				}
				return ta.T.Te < tb.T.Te
			})
			for _, i := range idxs {
				out = append(out, r.Tuples[i])
			}
			continue
		}
		// Counting sort over start points. Duplicate-free groups cannot
		// share a start point, so one slot per time point suffices; the
		// count array still tolerates duplicates for robustness on
		// unvalidated input.
		if int64(cap(counts)) < span {
			counts = make([]int32, span)
		}
		counts = counts[:span]
		for i := range counts {
			counts[i] = 0
		}
		for _, i := range idxs {
			counts[r.Tuples[i].T.Ts-lo]++
		}
		var sum int32
		for i := range counts {
			counts[i], sum = sum, sum+counts[i]
		}
		base := len(out)
		out = out[:base+len(idxs)]
		for _, i := range idxs {
			slot := &counts[r.Tuples[i].T.Ts-lo]
			out[base+int(*slot)] = r.Tuples[i]
			*slot++
		}
	}
	r.Tuples = out
}
