//go:build tpinvariants

package relation

import (
	"fmt"
	"unsafe"
)

// checkColsRegion is the tpinvariants-build body of the Cols accessor
// hook: when the cached columns were installed by SetCols over a
// foreign region (an mmap'd segment), every numeric column must still
// lie entirely inside that region — a column that escaped the mapping
// means the pointer fixup or a segment replace went wrong, and reading
// it would fault or serve another relation's bytes. Violations panic
// with a site-naming diagnostic like the internal/invariant layer (the
// check lives here because invariant imports relation, so relation
// cannot import it back).
func (r *Relation) checkColsRegion() {
	c, reg := r.cols, r.region
	if c == nil || reg == nil {
		return
	}
	lo := uintptr(unsafe.Pointer(unsafe.SliceData(reg)))
	hi := lo + uintptr(len(reg))
	checkColSpan(lo, hi, unsafe.Pointer(unsafe.SliceData(c.Fid)), len(c.Fid), "Fid", r.Schema.Name)
	checkColSpan(lo, hi, unsafe.Pointer(unsafe.SliceData(c.Ts)), len(c.Ts), "Ts", r.Schema.Name)
	checkColSpan(lo, hi, unsafe.Pointer(unsafe.SliceData(c.Te)), len(c.Te), "Te", r.Schema.Name)
	checkColSpan(lo, hi, unsafe.Pointer(unsafe.SliceData(c.Prob)), len(c.Prob), "Prob", r.Schema.Name)
	// Lam is deliberately exempt: lineage pointers are heap objects
	// decoded from the arena section, never aliases of the mapping.
}

// checkColSpan panics unless the n-element 8-byte column at p lies
// within [lo, hi).
func checkColSpan(lo, hi uintptr, p unsafe.Pointer, n int, col, rel string) {
	if n == 0 {
		return
	}
	start := uintptr(p)
	end := start + 8*uintptr(n)
	if start < lo || end > hi || end < start {
		panic(fmt.Sprintf(
			"invariant violation at relation.Cols(%s): column %s spans [%#x,%#x) outside mapped region [%#x,%#x)",
			rel, col, start, end, lo, hi))
	}
}
