package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/keys"
)

// TestFactKeyNoSeparatorAliasing is the regression test for the
// separator-collision hazard: values containing the \x1f separator (or
// the \x1e escape byte) used to alias distinct facts onto one key, so a
// relation could reject valid data as duplicates — or worse, admit two
// facts the execution stack then treated as one.
func TestFactKeyNoSeparatorAliasing(t *testing.T) {
	pairs := [][2]Fact{
		{NewFact("a\x1f", "b"), NewFact("a", "\x1fb")},
		{NewFact("a\x1fb", "c"), NewFact("a", "b\x1fc")},
		{NewFact("a", "b", "c"), NewFact("a", "b\x1fc")},
		{NewFact("x\x1e", "y"), NewFact("x", "\x1ey")},
		{NewFact("x\x1e\x1f", "y"), NewFact("x\x1e", "\x1fy")},
		{NewFact("", "ab"), NewFact("a", "b")},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("facts %q and %q alias key %q", p[0], p[1], p[0].Key())
		}
	}
	// Injectivity sweep: random 2-attribute facts over a hostile alphabet.
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte{'a', 'b', 0x1e, 0x1f}
	seen := make(map[string][2]string)
	for i := 0; i < 20000; i++ {
		mk := func() string {
			n := rng.Intn(4)
			b := make([]byte, n)
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			return string(b)
		}
		v1, v2 := mk(), mk()
		k := NewFact(v1, v2).Key()
		if prev, ok := seen[k]; ok && (prev[0] != v1 || prev[1] != v2) {
			t.Fatalf("collision: (%q,%q) and (%q,%q) share key %q", prev[0], prev[1], v1, v2, k)
		}
		seen[k] = [2]string{v1, v2}
	}
}

// TestFactKeyPlainValuesUnchanged pins the common case: separator-free
// values keep the historical key form (plain join; identity for single
// attributes), so on-disk key expectations and single-attribute lookups
// like LineageAt("milk", ...) are unaffected by the escaping fix.
func TestFactKeyPlainValuesUnchanged(t *testing.T) {
	if got := NewFact("milk").Key(); got != "milk" {
		t.Errorf("single-attribute key = %q, want %q", got, "milk")
	}
	if got := NewFact("a", "b").Key(); got != "a\x1fb" {
		t.Errorf("two-attribute key = %q, want %q", got, "a\x1fb")
	}
}

func buildRel(name string, facts []string, n int, seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New(NewSchema(name, "F"))
	cursors := make(map[string]int64, len(facts))
	for i := 0; i < n; i++ {
		f := facts[rng.Intn(len(facts))]
		ts := cursors[f] + int64(rng.Intn(3))
		te := ts + 1 + int64(rng.Intn(4))
		cursors[f] = te
		r.AddBase(NewFact(f), fmt.Sprintf("%s%d", name, i), ts, te, 0.1+0.8*rng.Float64())
	}
	return r
}

// TestInternedSortMatchesStringSort: the packed (FactID, Ts, Te) order
// must be exactly the (fact key, Ts, Te) order.
func TestInternedSortMatchesStringSort(t *testing.T) {
	facts := []string{"delta", "alpha", "zz", "beta", "a", "ab"}
	for trial := int64(0); trial < 20; trial++ {
		a := buildRel("r", facts, 200, trial)
		b := a.Clone()
		b.Unbind()
		if a.Dict() != nil {
			t.Fatal("fresh relation unexpectedly bound")
		}
		InternAll(a)
		if a.Dict() == nil {
			t.Fatal("InternAll left relation unbound")
		}
		a.Sort()
		b.Sort()
		for i := range a.Tuples {
			x, y := &a.Tuples[i], &b.Tuples[i]
			if !x.Fact.Equal(y.Fact) || x.T != y.T {
				t.Fatalf("trial %d: sorted order diverges at %d: %v vs %v", trial, i, x, y)
			}
		}
		if !a.IsSorted() || !b.IsSorted() {
			t.Fatal("IsSorted disagrees after Sort")
		}
	}
}

// TestBindMaintainsInvariants covers Bind/Unbind/Add interplay.
func TestBindMaintainsInvariants(t *testing.T) {
	r := buildRel("r", []string{"a", "b", "c"}, 50, 1)
	d := r.Intern()
	if r.Dict() != d {
		t.Fatal("Intern did not bind")
	}
	for i := range r.Tuples {
		id, ok := r.Tuples[i].InternedID()
		if !ok {
			t.Fatalf("tuple %d unbound after Intern", i)
		}
		if d.Key(id) != r.Tuples[i].Key() {
			t.Fatalf("tuple %d id %d resolves to %q, want %q", i, id, d.Key(id), r.Tuples[i].Key())
		}
	}

	// Adding a tuple whose fact the dict knows keeps the binding.
	r.AddBase(NewFact("a"), "extra1", 1000, 1001, 0.5)
	if r.Dict() != d {
		t.Fatal("Add of known fact dropped the binding")
	}
	// Adding an unknown fact drops the relation-level binding.
	r.AddBase(NewFact("unknown"), "extra2", 1000, 1001, 0.5)
	if r.Dict() != nil {
		t.Fatal("Add of unknown fact kept the binding")
	}

	// Re-intern, then AdoptBinding round-trips through a raw copy.
	r.Intern()
	cp := New(r.Schema)
	cp.Tuples = append(cp.Tuples, r.Tuples...)
	cp.AdoptBinding()
	if cp.Dict() != r.Dict() {
		t.Fatal("AdoptBinding did not recover the shared dict")
	}

	// Bind to a dict missing some facts must fail and unbind.
	small := keys.BuildDict([]string{"a"})
	if r.Bind(small) {
		t.Fatal("Bind succeeded despite missing facts")
	}
	if r.Dict() != nil {
		t.Fatal("failed Bind left relation bound")
	}
}

// TestInternAllSharedDict: one dictionary across relations makes
// cross-relation fact comparison an integer compare that agrees with the
// string compare.
func TestInternAllSharedDict(t *testing.T) {
	a := buildRel("a", []string{"m", "k", "z"}, 40, 2)
	b := buildRel("b", []string{"k", "q"}, 40, 3)
	d := InternAll(a, b)
	if a.Dict() != d || b.Dict() != d {
		t.Fatal("InternAll did not share one dict")
	}
	for i := range a.Tuples {
		for j := range b.Tuples {
			x, y := &a.Tuples[i], &b.Tuples[j]
			if SameFact(x, y) != (x.Key() == y.Key()) {
				t.Fatalf("SameFact diverges from key equality for %v vs %v", x, y)
			}
			if x.FactKey().Less(y.FactKey()) != (x.Key() < y.Key()) {
				t.Fatalf("FactKey.Less diverges from key order for %v vs %v", x, y)
			}
		}
	}
}

// TestValidateDuplicateFreeInterned: the id-grouped duplicate check must
// agree with the string-grouped one, including the error text shape.
func TestValidateDuplicateFreeInterned(t *testing.T) {
	r := New(NewSchema("r", "F"))
	r.AddBase(NewFact("x"), "x1", 0, 5, 0.5)
	r.AddBase(NewFact("x"), "x2", 3, 8, 0.5)
	errStr := r.ValidateDuplicateFree()
	r.Intern()
	errID := r.ValidateDuplicateFree()
	if errStr == nil || errID == nil {
		t.Fatalf("overlap not detected: string=%v interned=%v", errStr, errID)
	}
	if errStr.Error() != errID.Error() {
		t.Fatalf("error text diverges:\n  string:   %v\n  interned: %v", errStr, errID)
	}

	ok := buildRel("ok", []string{"a", "b"}, 100, 4)
	ok.Intern()
	if err := ok.ValidateDuplicateFree(); err != nil {
		t.Fatalf("duplicate-free relation rejected: %v", err)
	}
}

// TestSortCountingInterned: the counting sort must produce the identical
// permutation on bound and unbound relations.
func TestSortCountingInterned(t *testing.T) {
	a := buildRel("r", []string{"c", "a", "b", "x9", "x10"}, 300, 5)
	b := a.Clone()
	b.Unbind()
	a.Intern()
	a.SortCounting()
	b.SortCounting()
	for i := range a.Tuples {
		if !a.Tuples[i].Fact.Equal(b.Tuples[i].Fact) || a.Tuples[i].T != b.Tuples[i].T {
			t.Fatalf("counting sort diverges at %d: %v vs %v", i, a.Tuples[i], b.Tuples[i])
		}
	}
	if !a.IsSorted() {
		t.Fatal("SortCounting left bound relation unsorted")
	}
}
