//go:build linux || darwin

package faultfs

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file read-only. The mapping — not a copy — is what
// segment.Decode aliases the columns over, so opening a segment faults
// pages in lazily off the page cache and a catalog open does no bulk
// read at all.
func mapFile(path string) (data []byte, mapped bool, err error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("%s is empty", path)
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("%s exceeds the addressable mapping size", path)
	}
	data, err = syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("mmap %s: %v", path, err)
	}
	return data, true, nil
}

func unmapBytes(data []byte) error { return syscall.Munmap(data) }
