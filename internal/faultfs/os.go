package faultfs

import (
	"io/fs"
	"os"
)

// OS is the production FS: every method is the corresponding os-package
// call, and MapFile/Unmap are the platform mmap (a plain read where
// mmap is unavailable).
type OS struct{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Remove(path string) error             { return os.Remove(path) }
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (OS) MapFile(path string) ([]byte, bool, error) { return mapFile(path) }
func (OS) Unmap(data []byte) error                   { return unmapBytes(data) }
