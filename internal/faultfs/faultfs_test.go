package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeSyncedFile(t *testing.T, fsys FS, path string, data []byte) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestMemDurabilityModel(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	// a: created, written, synced, dir synced — fully durable.
	writeSyncedFile(t, m, "/d/a", []byte("alpha"))
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	// b: created and synced, but the directory never fsynced after —
	// content is durable, the name is not.
	writeSyncedFile(t, m, "/d/b", []byte("beta"))
	// a gets more bytes that are never synced.
	f, err := m.OpenFile("/d/a", os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	durable := m.CrashView(true)
	if got, err := durable.ReadFile("/d/a"); err != nil || string(got) != "alpha" {
		t.Fatalf("durable view of a = %q, %v; want synced prefix %q", got, err, "alpha")
	}
	if _, err := durable.ReadFile("/d/b"); !os.IsNotExist(err) {
		t.Fatalf("durable view of b: err = %v; want not-exist (name never made durable)", err)
	}

	all := m.CrashView(false)
	if got, _ := all.ReadFile("/d/a"); string(got) != "alpha-tail" {
		t.Fatalf("all view of a = %q; want everything written", got)
	}
	if got, _ := all.ReadFile("/d/b"); string(got) != "beta" {
		t.Fatalf("all view of b = %q; want %q", got, "beta")
	}
}

func TestMemRenameDurability(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	writeSyncedFile(t, m, "/d/x.tmp", []byte("payload"))
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("/d/x.tmp", "/d/x.seg"); err != nil {
		t.Fatal(err)
	}

	// Rename without a directory fsync: the durable view still holds
	// the old name, with the synced content.
	v := m.CrashView(true)
	if got, err := v.ReadFile("/d/x.tmp"); err != nil || string(got) != "payload" {
		t.Fatalf("durable pre-syncdir: x.tmp = %q, %v", got, err)
	}
	if _, err := v.ReadFile("/d/x.seg"); !os.IsNotExist(err) {
		t.Fatalf("durable pre-syncdir: x.seg err = %v; want not-exist", err)
	}

	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	v = m.CrashView(true)
	if got, err := v.ReadFile("/d/x.seg"); err != nil || string(got) != "payload" {
		t.Fatalf("durable post-syncdir: x.seg = %q, %v", got, err)
	}
	if _, err := v.ReadFile("/d/x.tmp"); !os.IsNotExist(err) {
		t.Fatalf("durable post-syncdir: x.tmp err = %v; want not-exist", err)
	}
}

func TestMemTruncateOnOpen(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	writeSyncedFile(t, m, "/d/wal", []byte("old-records"))
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got, _ := m.ReadFile("/d/wal"); len(got) != 0 {
		t.Fatalf("O_TRUNC left %q", got)
	}
	// Truncation is a content mutation: not durable until Sync.
	if got, _ := m.CrashView(true).ReadFile("/d/wal"); string(got) != "old-records" {
		t.Fatalf("durable content after unsynced O_TRUNC = %q; want old bytes", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.CrashView(true).ReadFile("/d/wal"); len(got) != 0 {
		t.Fatalf("durable content after synced O_TRUNC = %q; want empty", got)
	}
}

func TestInjectorFailAt(t *testing.T) {
	in := NewInjector(NewMem())
	in.MkdirAll("/d", 0o755)
	in.FailAt(2, OpSync, ErrNoSpace)

	f, err := in.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if _, err := f.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second sync err = %v; want ErrNoSpace", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("one-shot fault should clear: %v", err)
	}
}

func TestInjectorCrashStopAndTorn(t *testing.T) {
	m := NewMem()
	in := NewInjector(m)
	in.SetTorn(true)
	in.MkdirAll("/d", 0o755)

	f, err := in.OpenFile("/d/wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Ops so far: mkdir(1), open(2). Crash on the next one — the write.
	in.CrashAt(3)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write err = %v; want ErrCrashed", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes; want half (5)", n)
	}
	if got, _ := m.ReadFile("/d/wal"); !bytes.Equal(got, []byte("01234")) {
		t.Fatalf("torn write content = %q", got)
	}
	// Crash-stop: everything after the cut fails too.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v; want ErrCrashed", err)
	}
	if _, err := in.ReadFile("/d/wal"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read err = %v; want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() = false after cut")
	}
}

func TestInjectorLatchAndClear(t *testing.T) {
	in := NewInjector(NewMem())
	in.MkdirAll("/d", 0o755)
	in.Fail(OpMutate, ErrNoSpace)
	if _, err := in.OpenFile("/d/x", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("latched open err = %v; want ErrNoSpace", err)
	}
	// Reads stay up while mutations fail — the degraded-mode contract.
	if _, err := in.ReadDirNames("/d"); err != nil {
		t.Fatalf("read during mutate latch: %v", err)
	}
	in.Clear()
	if _, err := in.OpenFile("/d/x", os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("open after Clear: %v", err)
	}
}

func TestInjectorMapBalance(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	writeSyncedFile(t, m, "/d/a.seg", []byte("segment-bytes"))
	in := NewInjector(m)
	data, mapped, err := in.MapFile("/d/a.seg")
	if err != nil || !mapped {
		t.Fatalf("MapFile: %v mapped=%v", err, mapped)
	}
	if in.MapBalance() != 1 {
		t.Fatalf("balance after map = %d", in.MapBalance())
	}
	if err := in.Unmap(data); err != nil {
		t.Fatal(err)
	}
	if in.MapBalance() != 0 {
		t.Fatalf("balance after unmap = %d", in.MapBalance())
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys OS
	sub := filepath.Join(dir, "data")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSyncedFile(t, fsys, filepath.Join(sub, "a.seg"), []byte("hello-segment"))
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDirNames(sub)
	if err != nil || len(names) != 1 || names[0] != "a.seg" {
		t.Fatalf("ReadDirNames = %v, %v", names, err)
	}
	data, mapped, err := fsys.MapFile(filepath.Join(sub, "a.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello-segment" {
		t.Fatalf("mapped content = %q", data)
	}
	if mapped {
		if err := fsys.Unmap(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := fsys.Rename(filepath.Join(sub, "a.seg"), filepath.Join(sub, "b.seg")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(sub, "b.seg")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile(filepath.Join(sub, "b.seg")); !os.IsNotExist(err) {
		t.Fatalf("ReadFile after remove: %v; want not-exist", err)
	}
}

func TestTrigger(t *testing.T) {
	sentinel := filepath.Join(t.TempDir(), "enospc")
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	tr := NewTrigger(m, sentinel)

	writeSyncedFile(t, tr, "/d/a", []byte("pre"))

	if err := os.WriteFile(sentinel, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.OpenFile("/d/b", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("armed open err = %v; want ErrNoSpace", err)
	}
	if got, err := tr.ReadFile("/d/a"); err != nil || string(got) != "pre" {
		t.Fatalf("armed read = %q, %v; reads must keep working", got, err)
	}

	if err := os.Remove(sentinel); err != nil {
		t.Fatal(err)
	}
	writeSyncedFile(t, tr, "/d/b", []byte("post"))
}
