package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// MemFS is an in-memory FS that models what a power cut preserves.
// Durability follows the POSIX contract the segment store is written
// against:
//
//   - file *content* becomes durable at File.Sync — a crash rolls a
//     file back to the bytes covered by its last fsync;
//   - the *namespace* (creates, renames, removes) becomes durable at
//     SyncDir — a crash rolls the directory listing back to its state
//     at the last directory fsync, while each surviving name still
//     resolves to its inode's last-synced content.
//
// CrashView renders the post-crash disk under either the pessimistic
// durable-only model or the optimistic everything-flushed model; a
// correct store must recover from both (and every mix in between, but
// the two extremes bound the lattice the crash matrix explores).
type MemFS struct {
	mu      sync.Mutex
	dirs    map[string]bool
	files   map[string]*memInode // current namespace
	durable map[string]*memInode // namespace as of the last SyncDir
}

// memInode carries a file's current bytes and the bytes its last Sync
// made durable. Renames move the name, not the inode, so synced content
// survives a rename exactly as it does on a real filesystem.
type memInode struct {
	data   []byte
	synced []byte
}

// NewMem returns an empty MemFS.
func NewMem() *MemFS {
	return &MemFS{
		dirs:    make(map[string]bool),
		files:   make(map[string]*memInode),
		durable: make(map[string]*memInode),
	}
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(path)] = true
	return nil
}

func (m *MemFS) ReadDirNames(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, notExist("open", dir)
	}
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, notExist("open", path)
	}
	return append([]byte(nil), ino.data...), nil
}

func (m *MemFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	ino, ok := m.files[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		ino = &memInode{}
		m.files[path] = ino
	} else if flag&os.O_TRUNC != 0 {
		ino.data = nil
	}
	return &memHandle{fs: m, ino: ino, path: path}, nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	if _, ok := m.files[path]; !ok {
		return notExist("remove", path)
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	ino, ok := m.files[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	delete(m.files, oldpath)
	m.files[newpath] = ino
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return notExist("open", dir)
	}
	for path := range m.durable {
		if filepath.Dir(path) == dir {
			delete(m.durable, path)
		}
	}
	for path, ino := range m.files {
		if filepath.Dir(path) == dir {
			m.durable[path] = ino
		}
	}
	return nil
}

// MapFile returns a copy of the file's current bytes and reports it as
// mapped so callers exercise their Unmap bookkeeping.
func (m *MemFS) MapFile(path string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, false, notExist("open", path)
	}
	if len(ino.data) == 0 {
		return nil, false, fmt.Errorf("%s is empty", path)
	}
	return append([]byte(nil), ino.data...), true, nil
}

func (m *MemFS) Unmap([]byte) error { return nil }

// CrashView renders the filesystem an abrupt power cut would leave
// behind, as a fresh MemFS ready to be reopened. With durable=true only
// fsync-covered state survives: the namespace as of the last SyncDir,
// each name holding its inode's last-synced bytes. With durable=false
// the kernel happened to flush everything — the current namespace with
// current bytes. The original MemFS is not modified.
func (m *MemFS) CrashView(durable bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := NewMem()
	for d := range m.dirs {
		v.dirs[d] = true
	}
	src := m.files
	if durable {
		src = m.durable
	}
	for path, ino := range src {
		content := ino.data
		if durable {
			content = ino.synced
		}
		n := &memInode{
			data:   append([]byte(nil), content...),
			synced: append([]byte(nil), content...),
		}
		v.files[path] = n
		v.durable[path] = n
	}
	return v
}

// memHandle is a write handle onto one inode.
type memHandle struct {
	fs     *MemFS
	ino    *memInode
	path   string
	off    int64
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, &fs.PathError{Op: "write", Path: h.path, Err: fs.ErrClosed}
	}
	end := h.off + int64(len(p))
	if int64(len(h.ino.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.ino.data)
		h.ino.data = grown
	}
	copy(h.ino.data[h.off:end], p)
	h.off = end
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "sync", Path: h.path, Err: fs.ErrClosed}
	}
	h.ino.synced = append([]byte(nil), h.ino.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "truncate", Path: h.path, Err: fs.ErrClosed}
	}
	if int64(len(h.ino.data)) > size {
		h.ino.data = append([]byte(nil), h.ino.data[:size]...)
	} else if int64(len(h.ino.data)) < size {
		grown := make([]byte, size)
		copy(grown, h.ino.data)
		h.ino.data = grown
	}
	return nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, &fs.PathError{Op: "seek", Path: h.path, Err: fs.ErrClosed}
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.ino.data)) + offset
	default:
		return 0, fmt.Errorf("seek %s: invalid whence %d", h.path, whence)
	}
	return h.off, nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
