package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// Op is a bitmask of filesystem operation kinds, used to target
// injected faults.
type Op uint32

const (
	OpMkdir Op = 1 << iota
	OpReadDir
	OpReadFile
	OpOpen
	OpWrite
	OpSync
	OpTruncate
	OpSeek
	OpClose
	OpRemove
	OpRename
	OpSyncDir
	OpMap

	// OpAny matches every injectable operation.
	OpAny Op = 1<<13 - 1
	// OpMutate matches the operations that change durable state — the
	// set a full disk fails.
	OpMutate Op = OpOpen | OpWrite | OpSync | OpTruncate | OpRemove | OpRename | OpSyncDir
)

var (
	// ErrCrashed is returned by every operation after a simulated power
	// cut: the process can issue calls, but nothing reaches the disk.
	ErrCrashed = errors.New("faultfs: simulated power cut")
	// ErrInjected is the default error for injected single-op faults.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrNoSpace mimics ENOSPC without binding the package to syscall
	// errnos on every platform.
	ErrNoSpace = errors.New("faultfs: no space left on device")
)

// Injector wraps an FS and fails chosen operations deterministically.
// Operations are numbered from 1 in call order across the whole FS.
// Three fault shapes compose:
//
//   - CrashAt(n): operation n and every later one fail with ErrCrashed
//     — a power cut at an exact boundary. With SetTorn(true) and op n a
//     write, the first half of the bytes still land before the cut.
//   - FailAt(n, mask, err): the nth operation matching mask fails once
//     with err; everything else proceeds. With SetTorn(true) a failing
//     write is torn the same way.
//   - Fail(mask, err)/Clear(): a latched fault — every matching
//     operation fails until cleared — for driving a live server into
//     and out of disk failure.
//
// Unmap is exempt from injection: releasing process memory is not a
// disk operation, and keeping it reliable lets MapBalance measure real
// mapping leaks even on failure paths.
type Injector struct {
	inner FS

	mu        sync.Mutex
	ops       uint64
	crashAt   uint64
	crashed   bool
	failAt    uint64
	failSeen  uint64
	failMask  Op
	failErr   error
	torn      bool
	latchMask Op
	latchErr  error
	maps      int64
}

// NewInjector wraps inner with no faults armed.
func NewInjector(inner FS) *Injector { return &Injector{inner: inner} }

// CrashAt arms a power cut at operation n (1-based). 0 disarms.
func (in *Injector) CrashAt(n uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
}

// FailAt arms a one-shot fault: the nth operation matching mask returns
// err. A nil err means ErrInjected.
func (in *Injector) FailAt(n uint64, mask Op, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	in.failAt, in.failSeen, in.failMask, in.failErr = n, 0, mask, err
}

// Fail latches a fault on every operation matching mask until Clear.
func (in *Injector) Fail(mask Op, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	in.latchMask, in.latchErr = mask, err
}

// Clear disarms every fault, including a latched crash.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt, in.crashed = 0, false
	in.failAt, in.failSeen = 0, 0
	in.latchMask, in.latchErr = 0, nil
}

// SetTorn makes a failing or crashing write land its first half before
// erroring, modelling a torn page.
func (in *Injector) SetTorn(torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.torn = torn
}

// OpCount returns how many operations have been observed.
func (in *Injector) OpCount() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether a CrashAt point has been reached.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// MapBalance returns MapFile successes minus Unmap calls; a nonzero
// value after every file is closed is a mapping leak.
func (in *Injector) MapBalance() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.maps
}

// step numbers one operation and decides its fate. torn reports
// whether a failing write should still land its first half.
func (in *Injector) step(op Op) (fail error, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.crashed {
		return ErrCrashed, false
	}
	if in.crashAt != 0 && in.ops >= in.crashAt {
		in.crashed = true
		return ErrCrashed, in.torn
	}
	if in.latchMask&op != 0 {
		return in.latchErr, false
	}
	if in.failAt != 0 && in.failMask&op != 0 {
		in.failSeen++
		if in.failSeen == in.failAt {
			in.failAt = 0
			return in.failErr, in.torn
		}
	}
	return nil, false
}

func injErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := in.step(OpMkdir); err != nil {
		return injErr("mkdir", path, err)
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDirNames(dir string) ([]string, error) {
	if err, _ := in.step(OpReadDir); err != nil {
		return nil, injErr("readdir", dir, err)
	}
	return in.inner.ReadDirNames(dir)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if err, _ := in.step(OpReadFile); err != nil {
		return nil, injErr("read", path, err)
	}
	return in.inner.ReadFile(path)
}

func (in *Injector) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := in.step(OpOpen); err != nil {
		return nil, injErr("open", path, err)
	}
	f, err := in.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, path: path}, nil
}

func (in *Injector) Remove(path string) error {
	if err, _ := in.step(OpRemove); err != nil {
		return injErr("remove", path, err)
	}
	return in.inner.Remove(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.step(OpRename); err != nil {
		return injErr("rename", oldpath, err)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) SyncDir(dir string) error {
	if err, _ := in.step(OpSyncDir); err != nil {
		return injErr("syncdir", dir, err)
	}
	return in.inner.SyncDir(dir)
}

func (in *Injector) MapFile(path string) ([]byte, bool, error) {
	if err, _ := in.step(OpMap); err != nil {
		return nil, false, injErr("mmap", path, err)
	}
	data, mapped, err := in.inner.MapFile(path)
	if err == nil && mapped {
		in.mu.Lock()
		in.maps++
		in.mu.Unlock()
	}
	return data, mapped, err
}

func (in *Injector) Unmap(data []byte) error {
	in.mu.Lock()
	in.maps--
	in.mu.Unlock()
	return in.inner.Unmap(data)
}

// injFile threads a handle's operations back through the injector.
type injFile struct {
	in   *Injector
	f    File
	path string
}

func (f *injFile) Write(p []byte) (int, error) {
	err, torn := f.in.step(OpWrite)
	if err != nil {
		n := 0
		if torn && len(p) > 1 {
			n, _ = f.f.Write(p[:len(p)/2])
		}
		return n, injErr("write", f.path, err)
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if err, _ := f.in.step(OpSync); err != nil {
		return injErr("sync", f.path, err)
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if err, _ := f.in.step(OpTruncate); err != nil {
		return injErr("truncate", f.path, err)
	}
	return f.f.Truncate(size)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	if err, _ := f.in.step(OpSeek); err != nil {
		return 0, injErr("seek", f.path, err)
	}
	return f.f.Seek(offset, whence)
}

func (f *injFile) Close() error {
	if err, _ := f.in.step(OpClose); err != nil {
		return injErr("close", f.path, err)
	}
	return f.f.Close()
}

// Trigger wraps an FS and fails every durable-state mutation with
// ErrNoSpace while a sentinel file exists on the host filesystem. It is
// the end-to-end chaos switch: `touch` the sentinel to pull the disk
// out from under a running server, remove it to give the disk back.
type Trigger struct {
	inner FS
	path  string
}

// NewTrigger wraps inner; faults are armed whenever path exists.
func NewTrigger(inner FS, path string) *Trigger {
	return &Trigger{inner: inner, path: path}
}

func (t *Trigger) armed() bool {
	_, err := os.Stat(t.path)
	return err == nil
}

func (t *Trigger) MkdirAll(path string, perm fs.FileMode) error { return t.inner.MkdirAll(path, perm) }
func (t *Trigger) ReadDirNames(dir string) ([]string, error)    { return t.inner.ReadDirNames(dir) }
func (t *Trigger) ReadFile(path string) ([]byte, error)         { return t.inner.ReadFile(path) }

func (t *Trigger) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	if t.armed() {
		return nil, injErr("open", path, ErrNoSpace)
	}
	f, err := t.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &triggerFile{t: t, f: f, path: path}, nil
}

func (t *Trigger) Remove(path string) error {
	if t.armed() {
		return injErr("remove", path, ErrNoSpace)
	}
	return t.inner.Remove(path)
}

func (t *Trigger) Rename(oldpath, newpath string) error {
	if t.armed() {
		return injErr("rename", oldpath, ErrNoSpace)
	}
	return t.inner.Rename(oldpath, newpath)
}

func (t *Trigger) SyncDir(dir string) error {
	if t.armed() {
		return injErr("syncdir", dir, ErrNoSpace)
	}
	return t.inner.SyncDir(dir)
}

func (t *Trigger) MapFile(path string) ([]byte, bool, error) { return t.inner.MapFile(path) }
func (t *Trigger) Unmap(data []byte) error                   { return t.inner.Unmap(data) }

type triggerFile struct {
	t    *Trigger
	f    File
	path string
}

func (f *triggerFile) Write(p []byte) (int, error) {
	if f.t.armed() {
		return 0, injErr("write", f.path, ErrNoSpace)
	}
	return f.f.Write(p)
}

func (f *triggerFile) Sync() error {
	if f.t.armed() {
		return injErr("sync", f.path, ErrNoSpace)
	}
	return f.f.Sync()
}

func (f *triggerFile) Truncate(size int64) error {
	if f.t.armed() {
		return injErr("truncate", f.path, ErrNoSpace)
	}
	return f.f.Truncate(size)
}

func (f *triggerFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *triggerFile) Close() error { return f.f.Close() }
