// Package faultfs abstracts the filesystem surface the durable segment
// tier runs on so faults can be injected deterministically. Production
// code uses OS (thin pass-throughs to the os package plus the platform
// mmap); tests compose MemFS — an in-memory filesystem that models
// which bytes survive a power cut — with Injector, which fails a chosen
// operation (ENOSPC, fsync error, torn write) or cuts power at an exact
// operation boundary. Trigger injects disk-full into a live process
// whenever a sentinel file exists, for end-to-end chaos smokes.
package faultfs

import (
	"io"
	"io/fs"
)

// FS is the filesystem surface the segment store performs durability
// through. It is deliberately small: exactly the calls store.go,
// wal.go, and the segment open path need, no more.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDirNames lists the entry names of dir in sorted order.
	ReadDirNames(dir string) ([]string, error)
	// ReadFile reads the whole file; a missing file satisfies
	// os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	// OpenFile opens path with os.O_* flags for writing.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// Remove deletes path; a missing file satisfies os.IsNotExist.
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs a directory, making creates, renames, and removes
	// inside it durable.
	SyncDir(dir string) error
	// MapFile maps (or, where mmap is unavailable, reads) the whole
	// file. mapped reports whether Unmap must release the data.
	MapFile(path string) (data []byte, mapped bool, err error)
	// Unmap releases a mapping returned by MapFile with mapped=true.
	Unmap(data []byte) error
}

// File is the writable-handle surface of FS.OpenFile. os.File
// implements it directly.
type File interface {
	io.Writer
	// Sync makes the file's current content durable.
	Sync() error
	// Truncate resizes the file without moving the write offset.
	Truncate(size int64) error
	// Seek repositions the write offset.
	Seek(offset int64, whence int) (int64, error)
	// Close releases the handle.
	Close() error
}
