//go:build !(linux || darwin)

package faultfs

import (
	"fmt"
	"os"
)

// mapFile falls back to a plain read on platforms without the mmap
// path; columns then alias the heap buffer instead of a mapping, which
// is still zero-copy relative to the decoded bytes.
func mapFile(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) == 0 {
		return nil, false, fmt.Errorf("%s is empty", path)
	}
	return data, false, nil
}

func unmapBytes([]byte) error { return nil }
