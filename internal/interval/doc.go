// Package interval provides the half-open integer time intervals used by
// the temporal-probabilistic data model (§II of the paper), together with
// the interval predicates (overlap, adjacency, containment and the
// thirteen Allen relations) that the set-operation algorithms and the
// baseline joins are built on.
//
// An interval [Ts, Te) contains every time point t with Ts <= t < Te.
// The invariant Ts < Te holds for every constructed interval (New panics
// otherwise); the zero value is invalid and only used as a sentinel. The
// time domain ΩT is the set of int64 values; callers may restrict it
// further (for example the synthetic generators use small dense domains
// so that counting sort applies).
//
// Paper map: ΩT and the interval attribute T of Def. 1; the Allen
// relations appear in the TPDB grounding rules (§VII-A). See
// docs/PAPER_MAP.md.
package interval
