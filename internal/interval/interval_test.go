package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnEmpty(t *testing.T) {
	for _, c := range [][2]Time{{3, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestBasicPredicates(t *testing.T) {
	iv := New(2, 5) // {2,3,4}
	if !iv.Valid() || iv.Duration() != 3 {
		t.Fatalf("bad interval %v", iv)
	}
	for _, tc := range []struct {
		t    Time
		want bool
	}{{1, false}, {2, true}, {4, true}, {5, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if iv.String() != "[2,5)" {
		t.Errorf("String: %s", iv)
	}
}

func TestOverlapAdjacency(t *testing.T) {
	cases := []struct {
		a, b          Interval
		overlaps, adj bool
	}{
		{New(1, 3), New(3, 5), false, true}, // meets: half-open, no shared point
		{New(1, 3), New(2, 5), true, false},
		{New(1, 10), New(4, 6), true, false},
		{New(1, 2), New(5, 6), false, false},
		{New(1, 2), New(1, 2), true, false},
		{New(5, 6), New(1, 5), false, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.overlaps)
		}
		if got := c.b.Overlaps(c.a); got != c.overlaps {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
		if got := c.a.Adjacent(c.b); got != c.adj {
			t.Errorf("%v adjacent %v = %v, want %v", c.a, c.b, got, c.adj)
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := New(1, 5), New(3, 8)
	iv, ok := a.Intersect(b)
	if !ok || iv != New(3, 5) {
		t.Fatalf("intersect: %v %v", iv, ok)
	}
	u, ok := a.Union(b)
	if !ok || u != New(1, 8) {
		t.Fatalf("union: %v %v", u, ok)
	}
	if _, ok := New(1, 2).Intersect(New(4, 5)); ok {
		t.Error("disjoint intervals intersected")
	}
	if _, ok := New(1, 2).Union(New(4, 5)); ok {
		t.Error("union across a gap must fail")
	}
	if u, ok := New(1, 2).Union(New(2, 4)); !ok || u != New(1, 4) {
		t.Errorf("adjacent union: %v %v", u, ok)
	}
}

func TestSplitAt(t *testing.T) {
	l, r, ok := New(1, 5).SplitAt(3)
	if !ok || l != New(1, 3) || r != New(3, 5) {
		t.Fatalf("split: %v %v %v", l, r, ok)
	}
	if _, _, ok := New(1, 5).SplitAt(1); ok {
		t.Error("split at start must fail")
	}
	if _, _, ok := New(1, 5).SplitAt(5); ok {
		t.Error("split at end must fail")
	}
}

func TestCompare(t *testing.T) {
	if New(1, 3).Compare(New(1, 3)) != 0 ||
		New(1, 3).Compare(New(2, 3)) != -1 ||
		New(2, 3).Compare(New(1, 9)) != 1 ||
		New(1, 3).Compare(New(1, 4)) != -1 ||
		New(1, 5).Compare(New(1, 4)) != 1 {
		t.Error("Compare ordering wrong")
	}
}

func TestAllenRelations(t *testing.T) {
	b := New(10, 20)
	cases := []struct {
		a    Interval
		want AllenRelation
	}{
		{New(1, 5), AllenBefore},
		{New(1, 10), AllenMeets},
		{New(5, 15), AllenOverlaps},
		{New(5, 20), AllenFinishedBy},
		{New(5, 25), AllenContains},
		{New(10, 15), AllenStarts},
		{New(10, 20), AllenEquals},
		{New(10, 25), AllenStartedBy},
		{New(12, 18), AllenDuring},
		{New(15, 20), AllenFinishes},
		{New(15, 25), AllenOverlappedBy},
		{New(20, 25), AllenMetBy},
		{New(25, 30), AllenAfter},
	}
	for _, c := range cases {
		if got := Allen(c.a, b); got != c.want {
			t.Errorf("Allen(%v, %v) = %v, want %v", c.a, b, got, c.want)
		}
	}
}

// TestAllenPartition: exactly one Allen relation holds for any pair, and
// SharesPoints agrees with Overlaps.
func TestAllenPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() Interval {
		ts := Time(rng.Intn(20))
		return New(ts, ts+1+Time(rng.Intn(10)))
	}
	for i := 0; i < 5000; i++ {
		a, b := mk(), mk()
		rel := Allen(a, b)
		if rel.SharesPoints() != a.Overlaps(b) {
			t.Fatalf("Allen(%v,%v)=%v: SharesPoints=%v but Overlaps=%v",
				a, b, rel, rel.SharesPoints(), a.Overlaps(b))
		}
		// Inverse relation sanity: Allen(b,a) must be the converse.
		conv := map[AllenRelation]AllenRelation{
			AllenBefore: AllenAfter, AllenAfter: AllenBefore,
			AllenMeets: AllenMetBy, AllenMetBy: AllenMeets,
			AllenOverlaps: AllenOverlappedBy, AllenOverlappedBy: AllenOverlaps,
			AllenStarts: AllenStartedBy, AllenStartedBy: AllenStarts,
			AllenFinishes: AllenFinishedBy, AllenFinishedBy: AllenFinishes,
			AllenDuring: AllenContains, AllenContains: AllenDuring,
			AllenEquals: AllenEquals,
		}
		if got := Allen(b, a); got != conv[rel] {
			t.Fatalf("Allen(%v,%v)=%v but Allen reversed = %v (want %v)",
				a, b, rel, got, conv[rel])
		}
	}
}

// Property: Intersect is the set intersection of contained points.
func TestIntersectPointwiseProperty(t *testing.T) {
	f := func(a1, d1, a2, d2 uint8) bool {
		x := New(Time(a1), Time(a1)+1+Time(d1%16))
		y := New(Time(a2), Time(a2)+1+Time(d2%16))
		iv, ok := x.Intersect(y)
		for t := Time(0); t < 300; t++ {
			in := x.Contains(t) && y.Contains(t)
			got := ok && iv.Contains(t)
			if in != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllenString(t *testing.T) {
	if AllenBefore.String() != "before" || AllenEquals.String() != "equals" {
		t.Error("Allen names wrong")
	}
	if AllenRelation(99).String() == "" {
		t.Error("out-of-range Allen name empty")
	}
}
