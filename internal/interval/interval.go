package interval

import (
	"fmt"
)

// Time is a point of the ordered time domain ΩT.
type Time = int64

// Interval is a half-open interval [Ts, Te) over the time domain.
// A valid interval has Ts < Te; the zero value is invalid and represents
// "no interval".
type Interval struct {
	Ts Time // inclusive start
	Te Time // exclusive end
}

// New returns the interval [ts, te). It panics if ts >= te, because an empty
// or inverted interval can never be attached to a TP tuple (the data model
// requires at least one valid time point per tuple).
func New(ts, te Time) Interval {
	if ts >= te {
		panic(fmt.Sprintf("interval: invalid interval [%d,%d)", ts, te))
	}
	return Interval{Ts: ts, Te: te}
}

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Ts < iv.Te }

// Duration returns the number of time points in the interval.
func (iv Interval) Duration() int64 { return iv.Te - iv.Ts }

// Contains reports whether time point t lies inside [Ts, Te).
func (iv Interval) Contains(t Time) bool { return iv.Ts <= t && t < iv.Te }

// Overlaps reports whether the two intervals share at least one time point.
func (iv Interval) Overlaps(o Interval) bool { return iv.Ts < o.Te && o.Ts < iv.Te }

// Adjacent reports whether the two intervals meet without overlapping,
// i.e. one ends exactly where the other starts.
func (iv Interval) Adjacent(o Interval) bool { return iv.Te == o.Ts || o.Te == iv.Ts }

// ContainsInterval reports whether o lies fully within iv.
func (iv Interval) ContainsInterval(o Interval) bool { return iv.Ts <= o.Ts && o.Te <= iv.Te }

// Intersect returns the common subinterval of iv and o. The boolean result
// is false when the intervals do not overlap, in which case the returned
// interval is the zero value.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	ts := max64(iv.Ts, o.Ts)
	te := min64(iv.Te, o.Te)
	if ts >= te {
		return Interval{}, false
	}
	return Interval{Ts: ts, Te: te}, true
}

// Union returns the smallest interval covering both iv and o. It is only
// meaningful when the intervals overlap or are adjacent; the boolean result
// is false otherwise (a gap would be absorbed, which the sequenced semantics
// forbids).
func (iv Interval) Union(o Interval) (Interval, bool) {
	if !iv.Overlaps(o) && !iv.Adjacent(o) {
		return Interval{}, false
	}
	return Interval{Ts: min64(iv.Ts, o.Ts), Te: max64(iv.Te, o.Te)}, true
}

// Equal reports whether the two intervals cover exactly the same points.
func (iv Interval) Equal(o Interval) bool { return iv == o }

// Before reports whether iv lies strictly before o with a gap in between
// (Allen's "before").
func (iv Interval) Before(o Interval) bool { return iv.Te < o.Ts }

// Compare orders intervals by (Ts, Te). It returns -1, 0 or +1.
func (iv Interval) Compare(o Interval) int {
	switch {
	case iv.Ts < o.Ts:
		return -1
	case iv.Ts > o.Ts:
		return 1
	case iv.Te < o.Te:
		return -1
	case iv.Te > o.Te:
		return 1
	}
	return 0
}

// String renders the interval in the paper's [Ts,Te) notation.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Ts, iv.Te) }

// AllenRelation is one of the thirteen basic relations between two intervals
// identified by Allen (CACM 1983). The TPDB baseline grounds TP set
// intersection with one deduction rule per overlapping relation.
type AllenRelation int

// The thirteen Allen relations of iv with respect to o.
const (
	AllenBefore AllenRelation = iota
	AllenMeets
	AllenOverlaps
	AllenFinishedBy
	AllenContains
	AllenStarts
	AllenEquals
	AllenStartedBy
	AllenDuring
	AllenFinishes
	AllenOverlappedBy
	AllenMetBy
	AllenAfter
)

var allenNames = [...]string{
	"before", "meets", "overlaps", "finishedBy", "contains", "starts",
	"equals", "startedBy", "during", "finishes", "overlappedBy", "metBy",
	"after",
}

// String returns the conventional name of the relation.
func (r AllenRelation) String() string {
	if r < 0 || int(r) >= len(allenNames) {
		return fmt.Sprintf("AllenRelation(%d)", int(r))
	}
	return allenNames[r]
}

// SharesPoints reports whether the relation implies that the two intervals
// have at least one time point in common. Exactly nine of the thirteen
// relations do; these are the cases the TPDB grounding rules enumerate
// (the paper uses six rules because equals/starts/finishes collapse under
// its rule formulation; we keep all nine distinct for clarity).
func (r AllenRelation) SharesPoints() bool {
	switch r {
	case AllenBefore, AllenMeets, AllenMetBy, AllenAfter:
		return false
	}
	return true
}

// Allen classifies the relation of iv with respect to o.
func Allen(iv, o Interval) AllenRelation {
	switch {
	case iv.Te < o.Ts:
		return AllenBefore
	case iv.Te == o.Ts:
		return AllenMeets
	case o.Te < iv.Ts:
		return AllenAfter
	case o.Te == iv.Ts:
		return AllenMetBy
	}
	// The intervals overlap in at least one point.
	switch {
	case iv.Ts == o.Ts && iv.Te == o.Te:
		return AllenEquals
	case iv.Ts == o.Ts && iv.Te < o.Te:
		return AllenStarts
	case iv.Ts == o.Ts && iv.Te > o.Te:
		return AllenStartedBy
	case iv.Te == o.Te && iv.Ts > o.Ts:
		return AllenFinishes
	case iv.Te == o.Te && iv.Ts < o.Ts:
		return AllenFinishedBy
	case iv.Ts > o.Ts && iv.Te < o.Te:
		return AllenDuring
	case iv.Ts < o.Ts && iv.Te > o.Te:
		return AllenContains
	case iv.Ts < o.Ts:
		return AllenOverlaps
	default:
		return AllenOverlappedBy
	}
}

// SplitAt splits iv at time point t. When t lies strictly inside the
// interval, both halves are returned; otherwise left holds iv and ok is
// false.
func (iv Interval) SplitAt(t Time) (left, right Interval, ok bool) {
	if t <= iv.Ts || t >= iv.Te {
		return iv, Interval{}, false
	}
	return Interval{iv.Ts, t}, Interval{t, iv.Te}, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller time point.
func Min(a, b Time) Time { return min64(a, b) }

// Max returns the larger time point.
func Max(a, b Time) Time { return max64(a, b) }
