package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// Cross-validation of the structure-of-arrays batch layout: every
// SoA-accelerated path — columnar scan aliasing, the advancer's packed
// key compares and fid-column gallops, Append's column maintenance, the
// merge's BatchLess frontier compares — must produce output
// BIT-IDENTICAL (same tuples, same lineage rendering, same
// probabilities, same canonical order) to the AoS execution it replaced
// (Options.NoSoA pins the pre-SoA struct-walking stack). The suite runs
// under -race in CI, which additionally proves the aliased column
// windows race-free against shared inputs.

// soaRandomDB builds a random database; offsetFacts shifts each
// relation's fact pool so consecutive relations overlap on only part of
// their fact universes — long absent runs, the fid-gallop hot case.
func soaRandomDB(rng *rand.Rand, k, maxTuples, facts int, offsetFacts bool) map[string]*relation.Relation {
	db := make(map[string]*relation.Relation, k)
	for ri := 0; ri < k; ri++ {
		name := fmt.Sprintf("r%d", ri)
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		base := 0
		if offsetFacts {
			base = ri * facts / 2
		}
		for i := 0; i < n; i++ {
			f := fmt.Sprintf("f%03d", base+rng.Intn(facts))
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s_%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		rel.Sort()
		db[name] = rel
	}
	return db
}

// soaRandomTree generates set-operation trees with occasional selection
// nodes, so the selectCursor's column-maintaining Append path is under
// test too.
func soaRandomTree(rng *rand.Rand, names []string, leaves int) query.Node {
	if leaves <= 1 {
		var n query.Node = &query.Rel{Name: names[rng.Intn(len(names))]}
		if rng.Intn(4) == 0 {
			n = &query.Select{Input: n, Attr: "F", Value: fmt.Sprintf("f%03d", rng.Intn(24))}
		}
		return n
	}
	l := 1 + rng.Intn(leaves-1)
	return &query.SetOp{
		Op:    core.Op(rng.Intn(3)),
		Left:  soaRandomTree(rng, names, l),
		Right: soaRandomTree(rng, names, leaves-l),
	}
}

// drainCap materializes a batched cursor at the given batch capacity,
// additionally checking per-block column coherence: whenever a block
// carries columns, every column row must mirror the payload row exactly
// (same interned key, interval, probability and lineage pointer).
func drainCap(t *testing.T, ctx string, c core.Cursor, capacity int) *relation.Relation {
	t.Helper()
	bc, ok := c.(core.BatchCursor)
	if !ok {
		t.Fatalf("%s: cursor %T is not batch-capable", ctx, c)
	}
	out := relation.New(c.Schema())
	b := core.NewBatch(capacity)
	for bc.NextBatch(b) {
		if len(b.Tuples) == 0 || len(b.Tuples) > capacity {
			t.Fatalf("%s: NextBatch produced %d tuples into a capacity-%d batch", ctx, len(b.Tuples), capacity)
		}
		requireColsMirrorRows(t, ctx, b)
		out.Tuples = append(out.Tuples, b.Tuples...)
	}
	if bc.NextBatch(b) {
		t.Fatalf("%s: NextBatch true after exhaustion", ctx)
	}
	out.AdoptBinding()
	return out
}

// requireColsMirrorRows checks the SoA view invariant on one block:
// Dict non-nil implies every column is row-aligned with Tuples and
// mirrors it field for field.
func requireColsMirrorRows(t *testing.T, ctx string, b *core.Batch) {
	t.Helper()
	if !b.HasCols() {
		if len(b.Fid) != 0 || len(b.Ts) != 0 || len(b.Te) != 0 || len(b.Prob) != 0 || len(b.Lam) != 0 {
			t.Fatalf("%s: column slices non-empty on a batch without a dictionary", ctx)
		}
		return
	}
	n := len(b.Tuples)
	if len(b.Fid) != n || len(b.Ts) != n || len(b.Te) != n || len(b.Prob) != n || len(b.Lam) != n {
		t.Fatalf("%s: column lengths (%d,%d,%d,%d,%d) misaligned with %d payload rows",
			ctx, len(b.Fid), len(b.Ts), len(b.Te), len(b.Prob), len(b.Lam), n)
	}
	for i := 0; i < n; i++ {
		tp := &b.Tuples[i]
		if k := relation.KeyIn(b.Dict, b.Fid[i]); !k.Equal(tp.FactKeyRO()) {
			t.Fatalf("%s: row %d: fid column %d decodes to %s, payload key %s",
				ctx, i, b.Fid[i], k, tp.FactKeyRO())
		}
		if b.Ts[i] != tp.T.Ts || b.Te[i] != tp.T.Te {
			t.Fatalf("%s: row %d: interval column [%d,%d), payload %v", ctx, i, b.Ts[i], b.Te[i], tp.T)
		}
		if b.Prob[i] != tp.Prob {
			t.Fatalf("%s: row %d: prob column %v, payload %v", ctx, i, b.Prob[i], tp.Prob)
		}
		if b.Lam[i] != tp.Lineage {
			t.Fatalf("%s: row %d: lineage column pointer differs from payload", ctx, i)
		}
	}
}

// requireSameStreams asserts bit-identity of two materialized streams.
func requireSameStreams(t *testing.T, ctx string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: cardinality %d, want %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := &got.Tuples[i], &want.Tuples[i]
		if !g.Fact.Equal(w.Fact) || g.T != w.T ||
			g.Lineage.String() != w.Lineage.String() || g.Prob != w.Prob {
			t.Fatalf("%s: tuple %d: got %s, want %s", ctx, i, g, w)
		}
	}
}

// TestSoAExecutionBitIdentical is the main sweep: random query trees
// (with selections) over partially fact-disjoint inputs, compared
// between the AoS-pinned reference and the columnar stack across batch
// capacities 1/2/1024, run-skipping on and off, and the engine's
// partitioned streams at Workers 1/2/8.
func TestSoAExecutionBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 80; trial++ {
		db := soaRandomDB(rng, 2+rng.Intn(3), 120, 24, trial%2 == 0)
		if trial%3 != 0 {
			// Most trials intern everything into one shared dictionary —
			// the hot columnar configuration; every third trial stays
			// string-keyed to keep the column-less fallback under test.
			rels := make([]*relation.Relation, 0, len(db))
			for _, r := range db {
				rels = append(rels, r)
			}
			relation.InternAll(rels...)
			for _, r := range rels {
				r.Sort()
			}
		}
		names := query.DBKeys(db)
		tree := soaRandomTree(rng, names, 1+rng.Intn(4))
		ctx := func(s string) string { return fmt.Sprintf("trial %d (%s): %s", trial, tree, s) }

		// Reference: the AoS-pinned tuple-at-a-time stack — no columns
		// anywhere, struct-walking advancer, no run-skipping.
		want, err := query.EvaluateCursor(tree, db, core.Options{NoSoA: true, NoBatch: true, NoRunSkip: true})
		if err != nil {
			t.Fatalf("%s: %v", ctx("reference"), err)
		}

		for _, capacity := range []int{1, 2, core.BatchSize} {
			for _, noSkip := range []bool{false, true} {
				for _, noSoA := range []bool{false, true} {
					opts := core.Options{NoRunSkip: noSkip, NoSoA: noSoA}
					c, err := query.BuildCursor(tree, db, opts)
					if err != nil {
						t.Fatalf("%s: %v", ctx("build"), err)
					}
					label := ctx(fmt.Sprintf("cap=%d noskip=%v nosoa=%v", capacity, noSkip, noSoA))
					got := drainCap(t, label, c, capacity)
					requireSameStreams(t, label, got, want)
				}
			}
		}

		// Engine paths: the partitioned batched streams build columns on
		// each sorted shard partition (MinColsRows forced to 1 so the
		// small trial inputs still take the columnar path); NoSoA pins
		// the shard plans to AoS.
		for _, w := range []int{1, 2, 8} {
			e := engine.New(engine.Config{Workers: w, MinPartitionSize: 8, MinColsRows: 1})
			for _, noSoA := range []bool{false, true} {
				got, err := e.EvalCursor(tree, db, core.Options{NoSoA: noSoA})
				if err != nil {
					t.Fatalf("%s: %v", ctx(fmt.Sprintf("engine w=%d nosoa=%v", w, noSoA)), err)
				}
				requireSameStreams(t, ctx(fmt.Sprintf("engine w=%d nosoa=%v", w, noSoA)), got, want)
			}
		}
	}
}

// TestSoAScanBatchesAliasColumns pins the zero-copy contract of the
// columnar scan: blocks alias both the relation's tuple storage and its
// column projection, and the coherence invariant holds on every block.
func TestSoAScanBatchesAliasColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	db := soaRandomDB(rng, 1, 3000, 40, false)
	r := db["r0"]
	r.Intern()
	r.Sort()
	r.BuildCols()
	cols := r.Cols()
	if cols == nil {
		t.Fatal("BuildCols on an interned relation must produce a projection")
	}

	c := core.NewScanCursor(r)
	b := core.GetBatch()
	defer core.PutBatch(b)
	seen := 0
	for c.NextBatch(b) {
		if !b.HasCols() {
			t.Fatalf("scan block at offset %d carries no columns", seen)
		}
		if &b.Tuples[0] != &r.Tuples[seen] || &b.Fid[0] != &cols.Fid[seen] {
			t.Fatalf("block at offset %d does not alias relation storage and projection", seen)
		}
		requireColsMirrorRows(t, fmt.Sprintf("offset %d", seen), b)
		seen += len(b.Tuples)
	}
	if seen != r.Len() {
		t.Fatalf("blocks covered %d tuples, want %d", seen, r.Len())
	}
}

// TestSoAPlanSharesLineageCons pins the plan-wide hash-consing contract:
// a tree whose two operations recombine identical lineage pairs must
// dedupe them through the one plan table — the second operation's
// concatenations all hit — while single-operation plans run consless by
// design (within one operation over duplicate-free inputs no pair
// recurs, so a table would only grow).
func TestSoAPlanSharesLineageCons(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := soaRandomDB(rng, 2, 400, 12, false)
	relation.InternAll(db["r0"], db["r1"])
	for _, r := range db {
		r.Sort()
	}

	// Two structurally identical intersections under a union: both
	// children derive And(lamR, lamS) over the same operand pointers, so
	// the shared table must collapse them into one DAG node each.
	tree := query.MustParse("(r0 & r1) | (r0 & r1)")
	cons := lineage.NewCons()
	out, err := query.EvaluateCursor(tree, db, core.Options{AssumeSorted: true, LineageCons: cons})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("overlapping inputs must intersect")
	}
	if cons.Hits() == 0 {
		t.Fatalf("duplicate subtrees produced no cons hits (table size %d)", cons.Size())
	}

	// The deduped plan must still be bit-identical to the consless one.
	want, err := query.EvaluateCursor(tree, db, core.Options{AssumeSorted: true, NoSoA: true, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameStreams(t, "consed vs consless", out, want)
}
