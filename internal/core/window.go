package core

import (
	"fmt"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Window is a lineage-aware temporal window with schema
// (F, winTs, winTe, λr, λs): a candidate output interval [WinTs, WinTe)
// for fact Fact, annotated with the lineage of the tuple of the left input
// relation valid throughout the window (LamR, nil when none) and likewise
// for the right input relation (LamS).
//
// Because the two lineages are recorded separately, a single window stream
// serves all three set operations: each operation filters windows and
// combines LamR/LamS with its own lineage-concatenation function.
//
// Key is the comparison key of Fact, carried from the input tuple that
// opened the fact group: output tuples built from the window inherit the
// inputs' interning through it, which keeps a whole stacked query tree on
// the integer-compare path.
type Window struct {
	Fact  relation.Fact
	Key   relation.FactKey
	WinTs interval.Time
	WinTe interval.Time
	LamR  *lineage.Expr
	LamS  *lineage.Expr
}

// Interval returns the window's candidate output interval.
func (w Window) Interval() interval.Interval {
	return interval.Interval{Ts: w.WinTs, Te: w.WinTe}
}

// String renders the window like ('milk',[1,2), c1, null).
func (w Window) String() string {
	return fmt.Sprintf("(%s,[%d,%d), %s, %s)", w.Fact, w.WinTs, w.WinTe, w.LamR, w.LamS)
}

// tupleSource is the advancer's view of one input: a one-tuple-lookahead
// stream in (fact, Ts) order. Two implementations exist — a slice over a
// sorted relation (the classic materialized input) and a buffered pull
// from a Cursor (the streaming execution path). peek returns the next
// unconsumed tuple (nil when drained) and is stable until pop; pop
// consumes it. The pointer peek returns may be invalidated by pop, so
// callers that need the tuple beyond the next pop must copy it.
type tupleSource interface {
	peek() *relation.Tuple
	pop()
}

// sliceSource streams a sorted tuple slice.
type sliceSource struct {
	ts []relation.Tuple
	i  int
}

func (s *sliceSource) peek() *relation.Tuple {
	if s.i < len(s.ts) {
		return &s.ts[s.i]
	}
	return nil
}

func (s *sliceSource) pop() { s.i++ }

// cursorSource streams a Cursor through a one-tuple buffer.
type cursorSource struct {
	c         Cursor
	buf       relation.Tuple
	has, done bool
}

func (s *cursorSource) peek() *relation.Tuple {
	if !s.has && !s.done {
		t, ok := s.c.Next()
		if !ok {
			s.done = true
			return nil
		}
		s.buf, s.has = t, true
	}
	if !s.has {
		return nil
	}
	return &s.buf
}

func (s *cursorSource) pop() { s.has = false }

// Advancer is the lineage-aware window advancer. It carries the status
// structure of Algorithm 1: the boundary of the previous window, the fact
// currently being processed, the currently valid tuple of each input
// relation, and one-tuple-lookahead cursors over the two (fact, Ts)-sorted
// inputs.
//
// Each call to Next produces the next candidate window in (fact, time)
// order, or ok=false when both relations are exhausted. The advancer never
// produces a window during which no input tuple is valid, and every window
// boundary coincides with a start or end point of an input tuple, so the
// number of windows is bounded by Proposition 1 (≤ nr + ns − fd candidate
// windows for nr, ns start/end points and fd distinct facts).
//
// Beyond the two lookahead buffers and the two currently valid tuples, the
// advancer holds no per-input state — this is the O(1)-additional-space
// property of §IV that the streaming execution layer (NewStreamAdvancer,
// OpCursor) relies on.
type Advancer struct {
	r, s tupleSource

	prevWinTe interval.Time
	currKey   relation.FactKey
	currFactV relation.Fact
	rValid    *relation.Tuple
	sValid    *relation.Tuple
	// Storage backing rValid/sValid: the valid tuple must survive pops of
	// the source it was peeked from, so admission copies it here.
	rValidBuf relation.Tuple
	sValidBuf relation.Tuple
}

// NewAdvancer returns an advancer over two relations that must already be
// sorted by (fact, Ts) — the sort step of Fig. 5. Sortedness is a
// precondition; relation.Relation.Sort establishes it.
func NewAdvancer(r, s *relation.Relation) *Advancer {
	return &Advancer{r: &sliceSource{ts: r.Tuples}, s: &sliceSource{ts: s.Tuples}, prevWinTe: -1}
}

// NewStreamAdvancer returns an advancer pulling from two cursors that must
// yield tuples in canonical (fact, Ts) order — the streaming form of the
// sort precondition. Operator cursors and relation scans both satisfy it,
// so advancers stack: a whole query tree evaluates with one lookahead
// buffer per tree edge and no materialized intermediates.
func NewStreamAdvancer(r, s Cursor) *Advancer {
	return &Advancer{r: &cursorSource{c: r}, s: &cursorSource{c: s}, prevWinTe: -1}
}

// RExhausted reports whether the left input is fully consumed: no upcoming
// tuple and no currently valid tuple. Except uses it as its termination
// condition (windows beyond this point can never satisfy λr ≠ null).
func (a *Advancer) RExhausted() bool { return a.r.peek() == nil && a.rValid == nil }

// SExhausted is the right-hand counterpart of RExhausted.
func (a *Advancer) SExhausted() bool { return a.s.peek() == nil && a.sValid == nil }

// Next produces the next lineage-aware temporal window. It implements
// Algorithm 1 of the paper with two repairs that the pseudocode glosses
// over: (i) when both upcoming tuples start a new fact group, the
// lexicographically smaller fact is opened first (the inputs are sorted by
// fact before time, so comparing start points across different facts would
// be meaningless), and (ii) the right window boundary only considers
// upcoming tuples of the fact currently being processed.
func (a *Advancer) Next() (Window, bool) {
	r, s := a.r.peek(), a.s.peek()

	var winTs interval.Time
	if a.rValid == nil && a.sValid == nil {
		// No tuple carries over from the previous window: the next window
		// starts at an upcoming tuple (possibly opening a new fact group).
		switch {
		case r == nil && s == nil:
			return Window{}, false
		case s == nil:
			winTs = r.T.Ts
			a.setFact(r)
		case r == nil:
			winTs = s.T.Ts
			a.setFact(s)
		default:
			rKey, sKey := r.FactKey(), s.FactKey()
			rSame, sSame := rKey.Equal(a.currKey), sKey.Equal(a.currKey)
			switch {
			case rSame && !sSame:
				winTs = r.T.Ts
			case !rSame && sSame:
				winTs = s.T.Ts
			case rSame && sSame:
				winTs = interval.Min(r.T.Ts, s.T.Ts)
			default:
				// Both open a new fact group: take the smaller fact; on
				// equal facts, the earlier start.
				switch {
				case rKey.Less(sKey):
					winTs = r.T.Ts
					a.setFact(r)
				case sKey.Less(rKey):
					winTs = s.T.Ts
					a.setFact(s)
				default:
					winTs = interval.Min(r.T.Ts, s.T.Ts)
					a.setFact(r)
				}
			}
		}
	} else {
		// At least one tuple is still valid: the window continues
		// seamlessly from the previous one (change preservation).
		winTs = a.prevWinTe
	}

	// Admit upcoming tuples that become valid exactly at winTs. The tuple
	// is copied out of the source's lookahead buffer: it must stay valid
	// after the pop, which may overwrite the buffer on the next peek.
	if r != nil && r.FactKey().Equal(a.currKey) && r.T.Ts == winTs {
		a.rValidBuf = *r
		a.rValid = &a.rValidBuf
		a.r.pop()
		r = a.r.peek()
	}
	if s != nil && s.FactKey().Equal(a.currKey) && s.T.Ts == winTs {
		a.sValidBuf = *s
		a.sValid = &a.sValidBuf
		a.s.pop()
		s = a.s.peek()
	}

	// The right boundary is the earliest of: end points of the valid
	// tuples, and start points of the next tuples of the same fact (a start
	// point marks a change in the set of valid tuples).
	winTe := interval.Time(1<<63 - 1)
	if a.rValid != nil {
		winTe = interval.Min(winTe, a.rValid.T.Te)
	}
	if a.sValid != nil {
		winTe = interval.Min(winTe, a.sValid.T.Te)
	}
	if r != nil && r.FactKey().Equal(a.currKey) {
		winTe = interval.Min(winTe, r.T.Ts)
	}
	if s != nil && s.FactKey().Equal(a.currKey) {
		winTe = interval.Min(winTe, s.T.Ts)
	}

	w := Window{Fact: a.currFactV, Key: a.currKey, WinTs: winTs, WinTe: winTe}
	if a.rValid != nil {
		w.LamR = a.rValid.Lineage
	}
	if a.sValid != nil {
		w.LamS = a.sValid.Lineage
	}

	// Expire tuples whose end point coincides with the window boundary.
	if a.rValid != nil && a.rValid.T.Te == winTe {
		a.rValid = nil
	}
	if a.sValid != nil && a.sValid.T.Te == winTe {
		a.sValid = nil
	}
	a.prevWinTe = winTe
	return w, true
}

func (a *Advancer) setFact(t *relation.Tuple) {
	a.currKey = t.FactKey()
	a.currFactV = t.Fact
}
