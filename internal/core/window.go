package core

import (
	"fmt"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/invariant"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Window is a lineage-aware temporal window with schema
// (F, winTs, winTe, λr, λs): a candidate output interval [WinTs, WinTe)
// for fact Fact, annotated with the lineage of the tuple of the left input
// relation valid throughout the window (LamR, nil when none) and likewise
// for the right input relation (LamS).
//
// Because the two lineages are recorded separately, a single window stream
// serves all three set operations: each operation filters windows and
// combines LamR/LamS with its own lineage-concatenation function.
//
// Key is the comparison key of Fact, carried from the input tuple that
// opened the fact group: output tuples built from the window inherit the
// inputs' interning through it, which keeps a whole stacked query tree on
// the integer-compare path.
type Window struct {
	Fact  relation.Fact
	Key   relation.FactKey
	WinTs interval.Time
	WinTe interval.Time
	LamR  *lineage.Expr
	LamS  *lineage.Expr
}

// Interval returns the window's candidate output interval.
func (w Window) Interval() interval.Interval {
	return interval.Interval{Ts: w.WinTs, Te: w.WinTe}
}

// String renders the window like ('milk',[1,2), c1, null).
func (w Window) String() string {
	return fmt.Sprintf("(%s,[%d,%d), %s, %s)", w.Fact, w.WinTs, w.WinTe, w.LamR, w.LamS)
}

// tupleSource is the advancer's view of one input: a one-tuple-lookahead
// stream in (fact, Ts) order. Three implementations exist — a slice over
// a sorted relation (the classic materialized input), a buffered pull
// from a Cursor (the tuple-at-a-time streaming path) and a block pull
// from a BatchCursor (the batched streaming path). peek returns the next
// unconsumed tuple (nil when drained) and is stable until pop; pop
// consumes it. The pointer peek returns may be invalidated by pop, so
// callers that need the tuple beyond the next pop must copy it. The
// peeked tuple may alias storage shared with concurrent readers, so
// callers must not mutate it — keys are read through peekKey/FactKeyRO.
//
// peekKey returns the comparison key of the peeked tuple and is only
// valid when peek() is non-nil. Columnar sources derive it from the
// packed fid column (one int64 load plus an O(1) dictionary index —
// never a struct walk or a key-string rebuild); the others fall back to
// FactKeyRO. The advancer reads every key through it, so the window
// compares of Algorithm 1 run branch-light on the SoA path and
// unchanged on the fallback.
//
// skipTo advances the source so that peek returns the first tuple whose
// fact key is >= k; it is the run-skipping entry point and only called
// when every tuple below k is known to be filtered out by the operation.
type tupleSource interface {
	peek() *relation.Tuple
	peekKey() relation.FactKey
	pop()
	skipTo(k relation.FactKey)
	// release returns buffered pooled blocks and forwards the teardown
	// to the child plan — the source-level leg of Cursor teardown
	// (CursorReleaser). No-op on slice-backed sources.
	release()
}

// sliceSource streams a sorted tuple slice, with an optional columnar
// fast path: when the backing relation carries a columnar projection,
// fid/dict alias its id column and keys and gallops run on packed
// integers.
type sliceSource struct {
	ts   []relation.Tuple
	fid  []int64
	dict *keys.Dict
	i    int
}

// newSliceSource builds a source over r's tuples, picking up the
// columnar projection when one is valid.
func newSliceSource(r *relation.Relation) *sliceSource {
	s := &sliceSource{ts: r.Tuples}
	if c := r.Cols(); c != nil {
		s.fid, s.dict = c.Fid, r.Dict()
	}
	return s
}

func (s *sliceSource) peek() *relation.Tuple {
	if s.i < len(s.ts) {
		return &s.ts[s.i]
	}
	return nil
}

func (s *sliceSource) peekKey() relation.FactKey {
	if s.dict != nil {
		return relation.KeyIn(s.dict, s.fid[s.i])
	}
	return s.ts[s.i].FactKeyRO()
}

func (s *sliceSource) pop() { s.i++ }

// skipTo gallops over the fid column when the target is interned
// against the source's dictionary, and over the tuple slice otherwise
// (shared with ScanCursor.SkipTo).
func (s *sliceSource) skipTo(k relation.FactKey) {
	if s.dict != nil {
		if id, ok := k.IDIn(s.dict); ok {
			s.i += relation.SkipToFid(s.fid[s.i:], id)
			return
		}
	}
	s.i += relation.SkipToKey(s.ts[s.i:], k)
}

// release is a no-op: slice sources alias relation storage.
func (s *sliceSource) release() {}

// cursorSource streams a Cursor through a one-tuple buffer. The key of
// the buffered tuple is computed once per tuple and cached until pop —
// the advancer reads it up to three times per window.
type cursorSource struct {
	c         Cursor
	buf       relation.Tuple
	key       relation.FactKey
	keyed     bool
	has, done bool
}

func (s *cursorSource) peek() *relation.Tuple {
	if !s.has && !s.done {
		t, ok := s.c.Next()
		if !ok {
			s.done = true
			return nil
		}
		s.buf, s.has, s.keyed = t, true, false
	}
	if !s.has {
		return nil
	}
	return &s.buf
}

func (s *cursorSource) peekKey() relation.FactKey {
	if !s.keyed {
		s.key, s.keyed = s.buf.FactKeyRO(), true
	}
	return s.key
}

func (s *cursorSource) pop() { s.has, s.keyed = false, false }

// release holds no pooled blocks itself; the child plan might.
func (s *cursorSource) release() {
	s.done = true
	ReleaseCursor(s.c)
}

// skipTo on a plain cursor can only pop tuple-by-tuple — the child
// stream is computed, so there is nothing to gallop over.
func (s *cursorSource) skipTo(k relation.FactKey) {
	for {
		if s.peek() == nil || !s.peekKey().Less(k) {
			return
		}
		s.pop()
	}
}

// batchSource streams a BatchCursor through a pooled block buffer: one
// interface call per ~BatchSize tuples instead of one per tuple. The
// peeked pointers index straight into the batch, which may alias the
// scanned relation (zero copy) — hence the read-only contract of peek.
type batchSource struct {
	c    BatchCursor
	b    *Batch
	i    int
	done bool
}

func newBatchSource(c BatchCursor) *batchSource {
	return &batchSource{c: c, b: GetBatch()}
}

func (s *batchSource) peek() *relation.Tuple {
	for {
		if s.i < len(s.b.Tuples) {
			return &s.b.Tuples[s.i]
		}
		if s.done {
			return nil
		}
		if !s.c.NextBatch(s.b) {
			s.done = true
			PutBatch(s.b)
			s.b = &Batch{}
			return nil
		}
		s.i = 0
	}
}

func (s *batchSource) peekKey() relation.FactKey {
	if s.b.Dict != nil {
		return relation.KeyIn(s.b.Dict, s.b.Fid[s.i])
	}
	return s.b.Tuples[s.i].FactKeyRO()
}

func (s *batchSource) pop() { s.i++ }

// release hands the buffered block back to the pool (the drain paths
// swap in an empty placeholder after their own PutBatch, so a release
// after exhaustion puts only the zero batch, which the pool drops) and
// forwards the teardown to the child plan.
func (s *batchSource) release() {
	if !s.done {
		s.done = true
		PutBatch(s.b)
		s.b = &Batch{}
	}
	ReleaseCursor(s.c)
}

// skipTo discards the remainder of the current batch by binary search —
// a packed-int64 gallop when the batch carries columns — then, when the
// target is beyond it, delegates to the child's galloping SkipTo
// (scans, filters) or discards whole batches when the child's output is
// computed (operator cursors): a batch discard is one comparison
// against the batch tail, so even the fallback advances in
// O(n/BatchSize) comparisons instead of O(n) pops.
func (s *batchSource) skipTo(k relation.FactKey) {
	for {
		skipped := false
		if s.b.Dict != nil {
			if id, ok := k.IDIn(s.b.Dict); ok {
				s.i += relation.SkipToFid(s.b.Fid[s.i:], id)
				skipped = true
			}
		}
		if !skipped {
			s.i += relation.SkipToKey(s.b.Tuples[s.i:], k)
		}
		if s.i < len(s.b.Tuples) || s.done {
			return
		}
		if sk, ok := s.c.(keySkipper); ok {
			sk.SkipTo(k)
		}
		if !s.c.NextBatch(s.b) {
			s.done = true
			PutBatch(s.b)
			s.b = &Batch{}
			return
		}
		s.i = 0
	}
}

// Advancer is the lineage-aware window advancer. It carries the status
// structure of Algorithm 1: the boundary of the previous window, the fact
// currently being processed, the currently valid tuple of each input
// relation, and one-tuple-lookahead cursors over the two (fact, Ts)-sorted
// inputs.
//
// Each call to Next produces the next candidate window in (fact, time)
// order, or ok=false when both relations are exhausted. The advancer never
// produces a window during which no input tuple is valid, and every window
// boundary coincides with a start or end point of an input tuple, so the
// number of windows is bounded by Proposition 1 (≤ nr + ns − fd candidate
// windows for nr, ns start/end points and fd distinct facts).
//
// Beyond the two lookahead buffers and the two currently valid tuples, the
// advancer holds no per-input state — this is the O(1)-additional-space
// property of §IV that the streaming execution layer (NewStreamAdvancer,
// OpCursor) relies on.
type Advancer struct {
	r, s tupleSource

	prevWinTe interval.Time
	currKey   relation.FactKey
	currFactV relation.Fact
	rValid    *relation.Tuple
	sValid    *relation.Tuple
	// Storage backing rValid/sValid: the valid tuple must survive pops of
	// the source it was peeked from, so admission copies it here.
	rValidBuf relation.Tuple
	sValidBuf relation.Tuple

	// skipR/skipS enable run-skipping per side: when no tuple is valid
	// on either side and the upcoming facts differ, a side whose
	// windows would certainly fail the operation's λ-filter is galloped
	// past the absent run instead of popped tuple-by-tuple. OpCursor
	// sets them from the operation (intersection: both sides — a
	// one-sided window never passes λr ≠ null ∧ λs ≠ null; difference:
	// the right side — an s-only window never has λr ≠ null; union:
	// neither — every window is output). The skipped windows are
	// exactly those the operation discards, so the filtered output is
	// bit-identical with skipping on or off.
	skipR, skipS bool

	// windows/gallops count produced candidate windows and run-skip
	// gallops taken (skipTo calls from skipRuns). Counted
	// unconditionally — two local increments per window are below
	// measurement noise — and published into the execution trace by the
	// traced OpCursor wrapper when tracing is on.
	windows, gallops int64
}

// release tears down both sources — the OpCursor leg of plan teardown.
func (a *Advancer) release() {
	a.r.release()
	a.s.release()
}

// Windows returns the number of candidate windows produced so far.
func (a *Advancer) Windows() int64 { return a.windows }

// Gallops returns the number of run-skip gallops taken so far.
func (a *Advancer) Gallops() int64 { return a.gallops }

// NewAdvancer returns an advancer over two relations that must already be
// sorted by (fact, Ts) — the sort step of Fig. 5. Sortedness is a
// precondition; relation.Relation.Sort establishes it. When the inputs
// carry columnar projections (Relation.BuildCols), keys and run-skip
// gallops run over the packed fid columns.
func NewAdvancer(r, s *relation.Relation) *Advancer {
	if invariant.Enabled {
		// The sweep's correctness (and every gallop) rides on the sort
		// precondition; the packed fast path additionally rides on the
		// projections mirroring the rows.
		invariant.CheckSorted(r, "core.NewAdvancer")
		invariant.CheckSorted(s, "core.NewAdvancer")
		invariant.CheckColsMirror(r, "core.NewAdvancer")
		invariant.CheckColsMirror(s, "core.NewAdvancer")
	}
	return &Advancer{r: newSliceSource(r), s: newSliceSource(s), prevWinTe: -1}
}

// newAdvancerAoS is NewAdvancer pinned to the tuple-struct view — the
// pre-SoA execution stack, kept selectable (Options.NoSoA) for the
// soa-vs-aos benchmark and the cross-validation suite.
func newAdvancerAoS(r, s *relation.Relation) *Advancer {
	return &Advancer{r: &sliceSource{ts: r.Tuples}, s: &sliceSource{ts: s.Tuples}, prevWinTe: -1}
}

// NewStreamAdvancer returns an advancer pulling from two cursors that must
// yield tuples in canonical (fact, Ts) order — the streaming form of the
// sort precondition. Operator cursors and relation scans both satisfy it,
// so advancers stack: a whole query tree evaluates with one lookahead
// buffer per tree edge and no materialized intermediates. Children that
// stream batches are pulled block-at-a-time (one interface call per
// ~BatchSize tuples); plain cursors fall back to the one-tuple buffer.
func NewStreamAdvancer(r, s Cursor) *Advancer {
	return &Advancer{r: streamSource(r), s: streamSource(s), prevWinTe: -1}
}

func streamSource(c Cursor) tupleSource {
	if bc, ok := c.(BatchCursor); ok {
		return newBatchSource(bc)
	}
	return &cursorSource{c: c}
}

// newTupleStreamAdvancer is NewStreamAdvancer pinned to the
// tuple-at-a-time sources — the pre-batching execution stack, kept
// selectable (Options.NoBatch) for the batch-vs-tuple benchmark and the
// cross-validation suite.
func newTupleStreamAdvancer(r, s Cursor) *Advancer {
	return &Advancer{r: &cursorSource{c: r}, s: &cursorSource{c: s}, prevWinTe: -1}
}

// enableSkip turns on run-skipping for the sides whose one-sided
// windows op discards (see the skipR/skipS field comment).
func (a *Advancer) enableSkip(op Op) {
	switch op {
	case OpIntersect:
		a.skipR, a.skipS = true, true
	case OpExcept:
		a.skipS = true
	}
}

// RExhausted reports whether the left input is fully consumed: no upcoming
// tuple and no currently valid tuple. Except uses it as its termination
// condition (windows beyond this point can never satisfy λr ≠ null).
func (a *Advancer) RExhausted() bool { return a.r.peek() == nil && a.rValid == nil }

// SExhausted is the right-hand counterpart of RExhausted.
func (a *Advancer) SExhausted() bool { return a.s.peek() == nil && a.sValid == nil }

// Next produces the next lineage-aware temporal window. It implements
// Algorithm 1 of the paper with two repairs that the pseudocode glosses
// over: (i) when both upcoming tuples start a new fact group, the
// lexicographically smaller fact is opened first (the inputs are sorted by
// fact before time, so comparing start points across different facts would
// be meaningless), and (ii) the right window boundary only considers
// upcoming tuples of the fact currently being processed.
func (a *Advancer) Next() (Window, bool) {
	if (a.skipR || a.skipS) && a.rValid == nil && a.sValid == nil {
		a.skipRuns()
	}
	r, s := a.r.peek(), a.s.peek()

	var winTs interval.Time
	if a.rValid == nil && a.sValid == nil {
		// No tuple carries over from the previous window: the next window
		// starts at an upcoming tuple (possibly opening a new fact group).
		switch {
		case r == nil && s == nil:
			return Window{}, false
		case s == nil:
			winTs = r.T.Ts
			a.setFact(r, a.r.peekKey())
		case r == nil:
			winTs = s.T.Ts
			a.setFact(s, a.s.peekKey())
		default:
			rKey, sKey := a.r.peekKey(), a.s.peekKey()
			rSame, sSame := rKey.Equal(a.currKey), sKey.Equal(a.currKey)
			switch {
			case rSame && !sSame:
				winTs = r.T.Ts
			case !rSame && sSame:
				winTs = s.T.Ts
			case rSame && sSame:
				winTs = interval.Min(r.T.Ts, s.T.Ts)
			default:
				// Both open a new fact group: take the smaller fact; on
				// equal facts, the earlier start.
				switch {
				case rKey.Less(sKey):
					winTs = r.T.Ts
					a.setFact(r, rKey)
				case sKey.Less(rKey):
					winTs = s.T.Ts
					a.setFact(s, sKey)
				default:
					winTs = interval.Min(r.T.Ts, s.T.Ts)
					a.setFact(r, rKey)
				}
			}
		}
	} else {
		// At least one tuple is still valid: the window continues
		// seamlessly from the previous one (change preservation).
		winTs = a.prevWinTe
	}

	// Admit upcoming tuples that become valid exactly at winTs. The tuple
	// is copied out of the source's lookahead buffer: it must stay valid
	// after the pop, which may overwrite the buffer on the next peek.
	if r != nil && a.r.peekKey().Equal(a.currKey) && r.T.Ts == winTs {
		a.rValidBuf = *r
		a.rValid = &a.rValidBuf
		a.r.pop()
		r = a.r.peek()
	}
	if s != nil && a.s.peekKey().Equal(a.currKey) && s.T.Ts == winTs {
		a.sValidBuf = *s
		a.sValid = &a.sValidBuf
		a.s.pop()
		s = a.s.peek()
	}

	// The right boundary is the earliest of: end points of the valid
	// tuples, and start points of the next tuples of the same fact (a start
	// point marks a change in the set of valid tuples).
	winTe := interval.Time(1<<63 - 1)
	if a.rValid != nil {
		winTe = interval.Min(winTe, a.rValid.T.Te)
	}
	if a.sValid != nil {
		winTe = interval.Min(winTe, a.sValid.T.Te)
	}
	if r != nil && a.r.peekKey().Equal(a.currKey) {
		winTe = interval.Min(winTe, r.T.Ts)
	}
	if s != nil && a.s.peekKey().Equal(a.currKey) {
		winTe = interval.Min(winTe, s.T.Ts)
	}

	w := Window{Fact: a.currFactV, Key: a.currKey, WinTs: winTs, WinTe: winTe}
	if a.rValid != nil {
		w.LamR = a.rValid.Lineage
	}
	if a.sValid != nil {
		w.LamS = a.sValid.Lineage
	}

	// Expire tuples whose end point coincides with the window boundary.
	if a.rValid != nil && a.rValid.T.Te == winTe {
		a.rValid = nil
	}
	if a.sValid != nil && a.sValid.T.Te == winTe {
		a.sValid = nil
	}
	a.prevWinTe = winTe
	a.windows++
	return w, true
}

// skipRuns gallops past runs of facts whose windows the operation is
// known to discard. Precondition: no tuple is valid on either side, so
// the next window would open at an upcoming tuple. While both upcoming
// facts differ, the smaller side's windows are one-sided for the whole
// run up to the larger fact; if the operation discards that side's
// one-sided windows (skipR/skipS), the run is skipped in O(log run)
// comparisons — packed (FactID, Ts, Te) integer compares when the
// inputs are interned — instead of being popped tuple-by-tuple. On
// low-overlap or disjoint-fact inputs this turns the sweep from O(n)
// pops into O(runs · log n).
func (a *Advancer) skipRuns() {
	for {
		r, s := a.r.peek(), a.s.peek()
		if r == nil || s == nil {
			return
		}
		rk, sk := a.r.peekKey(), a.s.peekKey()
		switch {
		case rk.Less(sk):
			if !a.skipR {
				return
			}
			a.r.skipTo(sk)
			a.gallops++
		case sk.Less(rk):
			if !a.skipS {
				return
			}
			a.s.skipTo(rk)
			a.gallops++
		default:
			return
		}
	}
}

// setFact opens a new fact group from the peeked tuple t, whose key k
// the caller already read through peekKey.
func (a *Advancer) setFact(t *relation.Tuple, k relation.FactKey) {
	a.currKey = k
	a.currFactV = t.Fact
}
