package core

import (
	"fmt"

	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Cursor is a pull-based stream of TP tuples in canonical (fact, Ts, Te)
// order — the streaming form of a sorted relation. Next returns the next
// tuple, or ok=false when the stream is drained; after that it keeps
// returning ok=false. Cursors are single-use and not safe for concurrent
// calls to Next.
//
// The ordering invariant is the contract that makes cursors compose: the
// window advancer requires (fact, Ts)-sorted inputs, and every operator
// cursor emits its output in exactly that order, so cursors stack into
// whole query trees that evaluate in O(tree depth) additional memory —
// one lookahead buffer and one valid tuple per tree edge, no materialized
// intermediate relations (the O(1)-space-per-operator property of §IV).
type Cursor interface {
	// Schema describes the stream's conventional attributes.
	Schema() relation.Schema
	// Next returns the next tuple in canonical order.
	Next() (relation.Tuple, bool)
}

// CursorReleaser is the optional teardown face of a cursor: operators
// that buffer pooled batches across pulls (batch sources, filter
// buffers) implement it so an abandoned plan can hand every block back
// to the pool. Wrappers forward the release to their children.
type CursorReleaser interface {
	// ReleaseCursor returns pooled blocks buffered anywhere in the
	// plan subtree. Idempotent, and a no-op on fully drained plans
	// (draining already releases as it goes); the plan must not be
	// pulled again afterwards.
	ReleaseCursor()
}

// ReleaseCursor tears down a partially drained cursor plan via its
// CursorReleaser face; cursors without buffered pooled state (scans,
// pure tuple pipelines) need none and make this a no-op.
func ReleaseCursor(c Cursor) {
	if r, ok := c.(CursorReleaser); ok {
		r.ReleaseCursor()
	}
}

// ScanCursor streams a materialized relation that must already be in
// canonical (fact, Ts) order — the leaf of a cursor plan. Tuples are
// returned by value, so consumers never mutate the underlying relation
// (in particular, lazy fact-key caching lands in the copy): a ScanCursor
// may safely stream a relation shared with concurrent readers.
type ScanCursor struct {
	r *relation.Relation
	i int
	// noCols pins the scan to the AoS payload view: batches carry no
	// column aliases and skips gallop over tuple structs even when the
	// relation has a columnar projection (Options.NoSoA benchmarks).
	noCols bool
}

// NewScanCursor returns a scan over r. Sortedness is a precondition, as
// for NewAdvancer; relation.Relation.Sort establishes it.
func NewScanCursor(r *relation.Relation) *ScanCursor { return &ScanCursor{r: r} }

// DisableCols pins the scan to the AoS payload view (Options.NoSoA).
func (c *ScanCursor) DisableCols() { c.noCols = true }

// cols returns the relation's columnar projection unless the scan is
// pinned to the payload view.
func (c *ScanCursor) cols() *relation.Cols {
	if c.noCols {
		return nil
	}
	return c.r.Cols()
}

// Schema returns the scanned relation's schema.
func (c *ScanCursor) Schema() relation.Schema { return c.r.Schema }

// Next returns the next tuple of the relation.
func (c *ScanCursor) Next() (relation.Tuple, bool) {
	if c.i >= len(c.r.Tuples) {
		return relation.Tuple{}, false
	}
	t := c.r.Tuples[c.i]
	c.i++
	return t, true
}

// OpCursor evaluates one TP set operation as a stream: it runs the LAWA
// advancer directly over its children's tuple streams, applies the
// operation's λ-filter to each candidate window and finalizes output
// lineage with its Table I concatenation function. It is the streaming
// form of the Fig. 5 pipeline — same windows, same tuples, same order as
// the materializing drivers (which are themselves implemented on top of
// it; see Union/Intersect/Except).
type OpCursor struct {
	op     Op
	a      *Advancer
	schema relation.Schema
	opts   Options
	// cons hash-conses the operation's lineage concatenations: windows
	// that recombine the same operand pointers reuse one DAG node
	// instead of allocating per window. It is Options.LineageCons —
	// query.BuildCursor seeds one per plan that can actually share
	// subterms (two or more set operations); nil otherwise, in which
	// case the nil-receiver methods fall back to the plain constructors
	// (within one operation over duplicate-free inputs no ∧/∨ pair
	// recurs, so a table would only grow, never hit). Single-goroutine.
	cons *lineage.Cons
}

// NewOpCursor streams op(left, right). The children must satisfy the
// Cursor ordering invariant; their schemas must be union-compatible.
func NewOpCursor(op Op, left, right Cursor, opts Options) (*OpCursor, error) {
	if op != OpUnion && op != OpIntersect && op != OpExcept {
		return nil, fmt.Errorf("core: unknown operation %v", op)
	}
	ls, rs := left.Schema(), right.Schema()
	if !ls.Compatible(rs) {
		return nil, fmt.Errorf("core: incompatible schemas %q (%d attrs) and %q (%d attrs)",
			ls.Name, len(ls.Attrs), rs.Name, len(rs.Attrs))
	}
	var a *Advancer
	if opts.NoBatch {
		a = newTupleStreamAdvancer(left, right)
	} else {
		a = NewStreamAdvancer(left, right)
	}
	if !opts.NoRunSkip {
		a.enableSkip(op)
	}
	return &OpCursor{
		op:     op,
		a:      a,
		schema: OutSchemaOf(op, ls, rs),
		opts:   opts,
		cons:   opts.LineageCons,
	}, nil
}

// newOpCursorSorted builds an OpCursor over two pre-sorted relations via
// slice-backed sources — the materializing drivers' entry point, which
// skips the cursorSource buffering of the general path.
func newOpCursorSorted(op Op, r, s *relation.Relation, schema relation.Schema, opts Options) *OpCursor {
	var a *Advancer
	if opts.NoSoA {
		a = newAdvancerAoS(r, s)
	} else {
		a = NewAdvancer(r, s)
	}
	if !opts.NoRunSkip {
		a.enableSkip(op)
	}
	return &OpCursor{op: op, a: a, schema: schema, opts: opts, cons: opts.LineageCons}
}

// Schema returns the output schema of the operation.
func (c *OpCursor) Schema() relation.Schema { return c.schema }

// ReleaseCursor tears down a partially drained operation: the advancer's
// sources hand their buffered pooled blocks back and forward the release
// down the child plans.
func (c *OpCursor) ReleaseCursor() { c.a.release() }

// Next produces the next output tuple: windows are drawn from the
// advancer until one passes the operation's λ-filter, then finalized with
// the operation's lineage-concatenation function. The per-operation
// termination conditions of Algorithms 2–4 apply — intersection stops
// once either input is exhausted, difference once the left input is.
func (c *OpCursor) Next() (relation.Tuple, bool) {
	for {
		switch c.op {
		case OpIntersect:
			if c.a.RExhausted() || c.a.SExhausted() {
				return relation.Tuple{}, false
			}
		case OpExcept:
			if c.a.RExhausted() {
				return relation.Tuple{}, false
			}
		}
		w, ok := c.a.Next()
		if !ok {
			return relation.Tuple{}, false
		}
		var lam *lineage.Expr
		keep := false
		switch c.op { // λ-filter, then λ-function (Table I), hash-consed
		case OpIntersect:
			if w.LamR != nil && w.LamS != nil {
				keep, lam = true, c.cons.And(w.LamR, w.LamS)
			}
		case OpUnion:
			if w.LamR != nil || w.LamS != nil {
				keep, lam = true, c.cons.Or(w.LamR, w.LamS)
			}
		case OpExcept:
			if w.LamR != nil {
				keep, lam = true, c.cons.AndNot(w.LamR, w.LamS)
			}
		}
		if !keep {
			continue
		}
		t := relation.NewDerivedLazyKeyed(w.Fact, w.Key, lam, w.Interval())
		if !c.opts.LazyProb {
			t.ComputeProb()
		}
		return t, true
	}
}

// Materialize drains a cursor into a relation — the single point where a
// cursor plan gives up its O(tree depth) memory bound. When every output
// tuple carries one shared interning dictionary (the same-dict-inputs
// case), the materialized relation comes out bound to it, so downstream
// sorts and set operations stay on the integer-compare path. Cursors
// that stream batches are drained block-at-a-time (one bulk append per
// ~BatchSize tuples); the result is identical either way.
func Materialize(c Cursor) *relation.Relation {
	out := relation.New(c.Schema())
	if bc, ok := c.(BatchCursor); ok {
		b := GetBatch()
		for bc.NextBatch(b) {
			out.Tuples = append(out.Tuples, b.Tuples...)
		}
		PutBatch(b)
		out.AdoptBinding()
		return out
	}
	for {
		t, ok := c.Next()
		if !ok {
			out.AdoptBinding()
			return out
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// MaterializeLimit is Materialize with a result-size budget: the drain
// stops as soon as the output would exceed max tuples and reports
// ok=false. A budget violation is a property of the query, not a
// truncation point — the partial relation is returned only so callers
// can report how far the drain got, and must not be served or cached as
// the query's answer. max <= 0 means no budget.
func MaterializeLimit(c Cursor, max int) (*relation.Relation, bool) {
	if max <= 0 {
		return Materialize(c), true
	}
	out := relation.New(c.Schema())
	if bc, ok := c.(BatchCursor); ok {
		b := GetBatch()
		for bc.NextBatch(b) {
			out.Tuples = append(out.Tuples, b.Tuples...)
			if len(out.Tuples) > max {
				PutBatch(b)
				return out, false
			}
		}
		PutBatch(b)
		out.AdoptBinding()
		return out, true
	}
	for {
		t, ok := c.Next()
		if !ok {
			out.AdoptBinding()
			return out, true
		}
		out.Tuples = append(out.Tuples, t)
		if len(out.Tuples) > max {
			return out, false
		}
	}
}
