package core_test

import (
	"math"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// The running example of the paper (Fig. 1): relations a (productsBought),
// b (productsOrdered) and c (productsInStock).
func paperRelations() (a, b, c *relation.Relation) {
	a = relation.New(relation.NewSchema("a", "Product"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	a.AddBase(relation.NewFact("chips"), "a2", 4, 7, 0.8)
	a.AddBase(relation.NewFact("dates"), "a3", 1, 3, 0.6)

	b = relation.New(relation.NewSchema("b", "Product"))
	b.AddBase(relation.NewFact("milk"), "b1", 5, 9, 0.6)
	b.AddBase(relation.NewFact("chips"), "b2", 3, 6, 0.9)

	c = relation.New(relation.NewSchema("c", "Product"))
	c.AddBase(relation.NewFact("milk"), "c1", 1, 4, 0.6)
	c.AddBase(relation.NewFact("milk"), "c2", 6, 8, 0.7)
	c.AddBase(relation.NewFact("chips"), "c3", 4, 5, 0.7)
	c.AddBase(relation.NewFact("chips"), "c4", 7, 9, 0.8)
	return a, b, c
}

type want struct {
	fact   string
	lam    string
	ts, te int64
	p      float64
}

func checkRelation(t *testing.T, got *relation.Relation, wants []want) {
	t.Helper()
	g := got.Clone()
	g.Sort()
	if len(g.Tuples) != len(wants) {
		t.Fatalf("got %d tuples, want %d:\n%s", len(g.Tuples), len(wants), got)
	}
	// wants must be listed in (fact, Ts) order.
	for i, w := range wants {
		tu := g.Tuples[i]
		if tu.Fact.Key() != w.fact || tu.T.Ts != w.ts || tu.T.Te != w.te {
			t.Errorf("tuple %d: got %s, want (%s, [%d,%d))", i, tu, w.fact, w.ts, w.te)
			continue
		}
		if got, want := tu.Lineage.String(), w.lam; got != want {
			t.Errorf("tuple %d (%s [%d,%d)): lineage %s, want %s", i, w.fact, w.ts, w.te, got, want)
		}
		if math.Abs(tu.Prob-w.p) > 1e-9 {
			t.Errorf("tuple %d (%s [%d,%d)): prob %v, want %v", i, w.fact, w.ts, w.te, tu.Prob, w.p)
		}
	}
	if err := got.ValidateDuplicateFree(); err != nil {
		t.Errorf("output not duplicate-free: %v", err)
	}
}

// TestPaperFig1Query reproduces the full query of Fig. 1b:
// Q = c −Tp (a ∪Tp b), with the result table of Fig. 1c.
func TestPaperFig1Query(t *testing.T) {
	a, b, c := paperRelations()
	ab, err := core.Union(a, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Except(c, ab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRelation(t, q, []want{
		{"chips", "c3∧¬(a2∨b2)", 4, 5, 0.7 * (1 - (1 - (1-0.8)*(1-0.9)))},
		{"chips", "c4", 7, 9, 0.8},
		{"milk", "c1", 1, 2, 0.6},
		{"milk", "c1∧¬a1", 2, 4, 0.42},
		{"milk", "c2∧¬(a1∨b1)", 6, 8, 0.196},
	})
}

// TestPaperFig3Union reproduces a ∪Tp c of Fig. 3.
func TestPaperFig3Union(t *testing.T) {
	a, _, c := paperRelations()
	got, err := core.Union(a, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRelation(t, got, []want{
		{"chips", "a2∨c3", 4, 5, 0.94},
		{"chips", "a2", 5, 7, 0.8},
		{"chips", "c4", 7, 9, 0.8},
		{"dates", "a3", 1, 3, 0.6},
		{"milk", "c1", 1, 2, 0.6},
		{"milk", "a1∨c1", 2, 4, 0.72},
		{"milk", "a1", 4, 6, 0.3},
		{"milk", "a1∨c2", 6, 8, 0.79},
		{"milk", "a1", 8, 10, 0.3},
	})
}

// TestPaperFig3Except reproduces a −Tp c of Fig. 3.
func TestPaperFig3Except(t *testing.T) {
	a, _, c := paperRelations()
	got, err := core.Except(a, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRelation(t, got, []want{
		{"chips", "a2∧¬c3", 4, 5, 0.8 * 0.3},
		{"chips", "a2", 5, 7, 0.8},
		{"dates", "a3", 1, 3, 0.6},
		{"milk", "a1∧¬c1", 2, 4, 0.12},
		{"milk", "a1", 4, 6, 0.3},
		{"milk", "a1∧¬c2", 6, 8, 0.09},
		{"milk", "a1", 8, 10, 0.3},
	})
}

// TestPaperFig3Intersect reproduces a ∩Tp c of Fig. 3.
func TestPaperFig3Intersect(t *testing.T) {
	a, _, c := paperRelations()
	got, err := core.Intersect(a, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRelation(t, got, []want{
		{"chips", "a2∧c3", 4, 5, 0.56},
		{"milk", "a1∧c1", 2, 4, 0.18},
		{"milk", "a1∧c2", 6, 8, 0.21},
	})
}

// TestPaperExample3Windows reproduces the LAWA window sequence of Example 3
// / Fig. 6 for the 'milk' subsets of c (left) and a (right):
// five candidate windows with the recorded λr/λs combinations.
func TestPaperExample3Windows(t *testing.T) {
	a, _, c := paperRelations()
	milk := func(r *relation.Relation) *relation.Relation {
		out := relation.New(r.Schema)
		for _, tu := range r.Tuples {
			if tu.Fact.Key() == "milk" {
				out.Add(tu)
			}
		}
		return out
	}
	ws := core.Windows(milk(c), milk(a))
	type wwin struct {
		ts, te int64
		lr, ls string
	}
	wantWs := []wwin{
		{1, 2, "c1", "null"},
		{2, 4, "c1", "a1"},
		{4, 6, "null", "a1"},
		{6, 8, "c2", "a1"},
		{8, 10, "null", "a1"},
	}
	if len(ws) != len(wantWs) {
		t.Fatalf("got %d windows %v, want %d", len(ws), ws, len(wantWs))
	}
	for i, w := range wantWs {
		g := ws[i]
		if g.WinTs != w.ts || g.WinTe != w.te || g.LamR.String() != w.lr || g.LamS.String() != w.ls {
			t.Errorf("window %d: got %v, want ([%d,%d), %s, %s)", i, g, w.ts, w.te, w.lr, w.ls)
		}
	}
}

// TestPaperFig6ExceptMilk verifies the accepted/rejected candidates of
// Fig. 6: σF='milk'(c) −Tp σF='milk'(a).
func TestPaperFig6ExceptMilk(t *testing.T) {
	a, _, c := paperRelations()
	milkOnly := func(r *relation.Relation) *relation.Relation {
		out := relation.New(r.Schema)
		for _, tu := range r.Tuples {
			if tu.Fact.Key() == "milk" {
				out.Add(tu)
			}
		}
		return out
	}
	got, err := core.Except(milkOnly(c), milkOnly(a), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkRelation(t, got, []want{
		{"milk", "c1", 1, 2, 0.6},
		{"milk", "c1∧¬a1", 2, 4, 0.42},
		{"milk", "c2∧¬a1", 6, 8, 0.7 * 0.7},
	})
}

// TestExample2SelectedOutputs verifies the three highlighted tuples of
// Example 2 / Fig. 2 within a −Tp c.
func TestExample2SelectedOutputs(t *testing.T) {
	a, _, c := paperRelations()
	got, err := core.Except(a, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(fact string, ts int64) *relation.Tuple {
		for i := range got.Tuples {
			tu := &got.Tuples[i]
			if tu.Fact.Key() == fact && tu.T.Ts == ts {
				return tu
			}
		}
		t.Fatalf("missing output tuple (%s, Ts=%d) in %s", fact, ts, got)
		return nil
	}
	if tu := find("dates", 1); math.Abs(tu.Prob-0.6) > 1e-9 {
		t.Errorf("(dates): prob %v, want 0.6", tu.Prob)
	}
	if tu := find("chips", 4); math.Abs(tu.Prob-0.24) > 1e-9 || tu.Lineage.String() != "a2∧¬c3" {
		t.Errorf("(chips,4): got %s", tu)
	}
	if tu := find("milk", 6); math.Abs(tu.Prob-0.09) > 1e-9 || tu.Lineage.String() != "a1∧¬c2" {
		t.Errorf("(milk,6): got %s", tu)
	}
}

// TestLineageConcatTable verifies Table I on the nil/non-nil combinations.
func TestLineageConcatTable(t *testing.T) {
	x := lineage.Var("x", 0.5)
	y := lineage.Var("y", 0.25)
	if got := lineage.And(x, y).String(); got != "x∧y" {
		t.Errorf("and: %s", got)
	}
	if got := lineage.AndNot(x, nil); got != x {
		t.Errorf("andNot(x,null) = %s, want x", got)
	}
	if got := lineage.AndNot(x, y).String(); got != "x∧¬y" {
		t.Errorf("andNot: %s", got)
	}
	if got := lineage.Or(x, nil); got != x {
		t.Errorf("or(x,null) = %s, want x", got)
	}
	if got := lineage.Or(nil, y); got != y {
		t.Errorf("or(null,y) = %s, want y", got)
	}
	if got := lineage.Or(x, y).String(); got != "x∨y" {
		t.Errorf("or: %s", got)
	}
}
