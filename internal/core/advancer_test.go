package core_test

// White-box-ish tests of the window advancer itself: window sequences for
// hand-constructed boundary situations (gaps, fact-group transitions,
// coinciding endpoints, containment) — the places where Algorithm 1's
// pseudocode is subtle.

import (
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

type winWant struct {
	fact   string
	ts, te int64
	lr, ls string
}

func checkWindows(t *testing.T, r, s *relation.Relation, wants []winWant) {
	t.Helper()
	ws := core.Windows(r, s)
	if len(ws) != len(wants) {
		t.Fatalf("got %d windows %v, want %d", len(ws), ws, len(wants))
	}
	for i, w := range wants {
		g := ws[i]
		lr, ls := "null", "null"
		if g.LamR != nil {
			lr = g.LamR.String()
		}
		if g.LamS != nil {
			ls = g.LamS.String()
		}
		if g.Fact.Key() != w.fact || g.WinTs != w.ts || g.WinTe != w.te || lr != w.lr || ls != w.ls {
			t.Errorf("window %d: got %v, want (%s,[%d,%d),%s,%s)", i, g, w.fact, w.ts, w.te, w.lr, w.ls)
		}
	}
}

func mkRel(name string, rows ...[3]interface{}) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "F"))
	for i, row := range rows {
		fact := row[0].(string)
		ts := int64(row[1].(int))
		te := int64(row[2].(int))
		r.AddBase(relation.NewFact(fact), name+string(rune('a'+i)), ts, te, 0.5)
	}
	return r
}

// Gaps in both relations: windows skip uncovered ranges, never producing
// empty windows.
func TestAdvancerSkipsGaps(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 3}, [3]interface{}{"x", 8, 10})
	s := mkRel("s", [3]interface{}{"x", 20, 22})
	checkWindows(t, r, s, []winWant{
		{"x", 1, 3, "ra", "null"},
		{"x", 8, 10, "rb", "null"},
		{"x", 20, 22, "null", "sa"},
	})
}

// A new fact group must open at the smaller fact even when its start point
// is later in time than the other relation's next tuple.
func TestAdvancerFactGroupOrder(t *testing.T) {
	r := mkRel("r", [3]interface{}{"apple", 100, 110})
	s := mkRel("s", [3]interface{}{"banana", 1, 5})
	checkWindows(t, r, s, []winWant{
		{"apple", 100, 110, "ra", "null"},
		{"banana", 1, 5, "null", "sa"},
	})
}

// Both relations continue the current fact after a shared gap: the window
// reopens at the earlier upcoming start.
func TestAdvancerReopensAfterSharedGap(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 3}, [3]interface{}{"x", 10, 14})
	s := mkRel("s", [3]interface{}{"x", 1, 3}, [3]interface{}{"x", 12, 16})
	checkWindows(t, r, s, []winWant{
		{"x", 1, 3, "ra", "sa"},
		{"x", 10, 12, "rb", "null"},
		{"x", 12, 14, "rb", "sb"},
		{"x", 14, 16, "null", "sb"},
	})
}

// Containment: s inside r splits r's interval into three windows.
func TestAdvancerContainment(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 10})
	s := mkRel("s", [3]interface{}{"x", 4, 6})
	checkWindows(t, r, s, []winWant{
		{"x", 1, 4, "ra", "null"},
		{"x", 4, 6, "ra", "sa"},
		{"x", 6, 10, "ra", "null"},
	})
}

// Coinciding endpoints: tuples that start and end together yield exactly
// one window.
func TestAdvancerExactAlignment(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 3, 7})
	s := mkRel("s", [3]interface{}{"x", 3, 7})
	checkWindows(t, r, s, []winWant{{"x", 3, 7, "ra", "sa"}})
}

// An r tuple ending exactly where the next r tuple starts (adjacent
// chain), with s spanning both: windows split at the internal boundary.
func TestAdvancerAdjacentChain(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 5}, [3]interface{}{"x", 5, 9})
	s := mkRel("s", [3]interface{}{"x", 0, 10})
	checkWindows(t, r, s, []winWant{
		{"x", 0, 1, "null", "sa"},
		{"x", 1, 5, "ra", "sa"},
		{"x", 5, 9, "rb", "sa"},
		{"x", 9, 10, "null", "sa"},
	})
}

// Multiple fact groups interleaved across both relations, exercising the
// fact-transition logic repeatedly.
func TestAdvancerMultipleFactGroups(t *testing.T) {
	r := mkRel("r",
		[3]interface{}{"a", 1, 4},
		[3]interface{}{"c", 2, 5},
	)
	s := mkRel("s",
		[3]interface{}{"b", 3, 6},
		[3]interface{}{"c", 4, 8},
	)
	checkWindows(t, r, s, []winWant{
		{"a", 1, 4, "ra", "null"},
		{"b", 3, 6, "null", "sa"},
		{"c", 2, 4, "rb", "null"},
		{"c", 4, 5, "rb", "sb"},
		{"c", 5, 8, "null", "sb"},
	})
}

// One empty side: windows degrade to the other relation's tuples.
func TestAdvancerEmptySides(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 4})
	empty := relation.New(relation.NewSchema("e", "F"))
	checkWindows(t, r, empty, []winWant{{"x", 1, 4, "ra", "null"}})
	checkWindows(t, empty, r, []winWant{{"x", 1, 4, "null", "ra"}})
	if ws := core.Windows(empty, empty); len(ws) != 0 {
		t.Fatalf("empty inputs made windows: %v", ws)
	}
}

// Exhaustion conditions: RExhausted/SExhausted flip only when both the
// cursor and the valid slot are drained.
func TestAdvancerExhaustion(t *testing.T) {
	r := mkRel("r", [3]interface{}{"x", 1, 10})
	s := mkRel("s", [3]interface{}{"x", 2, 3})
	rr, ss := r.Clone(), s.Clone()
	rr.Sort()
	ss.Sort()
	a := core.NewAdvancer(rr, ss)
	if a.RExhausted() || a.SExhausted() {
		t.Fatal("exhausted before any window")
	}
	var n int
	for {
		_, ok := a.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 { // [1,2), [2,3), [3,10)
		t.Fatalf("windows: %d", n)
	}
	if !a.RExhausted() || !a.SExhausted() {
		t.Fatal("not exhausted after drain")
	}
}
