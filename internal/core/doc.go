// Package core implements the paper's primary contribution (§IV): the
// lineage-aware temporal window, the lineage-aware window advancer (LAWA,
// Algorithm 1) and the three temporal-probabilistic set operations built
// on it (Algorithms 2–4: Intersect, Union, Except).
//
// The implementation follows the four-step process of Fig. 5:
//
//	sort → LAWA → λ-filter → λ-function
//
// Input relations are sorted by (fact, Ts); the advancer sweeps their
// start and end points producing candidate windows; each window is
// filtered and its output lineage finalized immediately, with no
// intermediate buffers. The overall complexity is
// O(|r| log |r| + |s| log |s|) time and O(1) additional space, against the
// quadratic behaviour of the timestamp-adjustment and grounding baselines.
//
// Invariants:
//
//   - Inputs must be duplicate-free (Options.Validate checks); outputs
//     are duplicate-free and change-preserved by construction — windows
//     are maximal, so no post-coalescing is ever needed.
//   - Output tuples appear in canonical (fact, Ts, Te) order, the same
//     order relation.Sort establishes; the parallel engine relies on this
//     to merge shard outputs into a bit-identical result.
//   - With Options.AssumeSorted the drivers run the advancer directly
//     over the caller's slices; the caller then guarantees sortedness AND
//     exclusive ownership (the sweep's lazy key caching would race on
//     shared relations — see internal/engine for the cloning rules).
//
// The pipeline also exists in pull-based streaming form: Cursor is a
// tuple stream in canonical order, ScanCursor streams a sorted relation,
// and OpCursor runs the advancer directly over two child cursors — the
// materializing drivers are themselves Materialize(OpCursor), so the two
// executors share one λ-filter/λ-function implementation. Cursor plans
// (built by internal/query) evaluate whole query trees in O(tree depth)
// additional memory.
//
// Execution is batched (vectorized) by default: BatchCursor moves pooled
// ~BatchSize-tuple blocks through the stack (zero-copy scan sub-windows,
// block-draining operators), amortizing per-tuple interface, channel and
// encoder costs ~1000x, and the advancer skips runs of facts whose
// windows the operation discards by galloping over the packed
// (FactID, Ts, Te) order (see Options.NoBatch/NoRunSkip and DESIGN.md
// "Batched execution & run skipping"). Output is bit-identical across
// all paths.
//
// Paper map: Def. 3 (the three TP set operations), Alg. 1 (Advancer),
// Algs. 2–4 (drivers), Fig. 5 (pipeline), Example 3 (window stream). See
// docs/PAPER_MAP.md.
package core
