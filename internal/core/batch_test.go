package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

// sortedTestRelation builds a sorted, interned relation with the given
// fact runs.
func sortedTestRelation(name string, n, facts int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema(name, "F"))
	cursors := make(map[string]int64)
	for i := 0; i < n; i++ {
		f := fmt.Sprintf("f%04d", rng.Intn(facts))
		ts := cursors[f] + int64(rng.Intn(3))
		te := ts + 1 + int64(rng.Intn(4))
		cursors[f] = te
		r.AddBase(relation.NewFact(f), fmt.Sprintf("%s%d", name, i), ts, te, 0.1+0.8*rng.Float64())
	}
	r.Intern()
	r.Sort()
	return r
}

// TestScanBatchZeroCopy pins that scan batches alias the relation's own
// tuple storage (two slice-header writes per block, no copying) and
// that the sub-windows tile the relation exactly.
func TestScanBatchZeroCopy(t *testing.T) {
	r := sortedTestRelation("r", 2*BatchSize+100, 7, 1)
	c := NewScanCursor(r)
	b := GetBatch()
	defer PutBatch(b)
	seen := 0
	for c.NextBatch(b) {
		if &b.Tuples[0] != &r.Tuples[seen] {
			t.Fatalf("batch at offset %d does not alias the relation storage", seen)
		}
		seen += len(b.Tuples)
	}
	if seen != r.Len() {
		t.Fatalf("batches covered %d tuples, want %d", seen, r.Len())
	}
}

// TestScanBatchRespectsCapacity pins sub-window sizing for tiny batch
// capacities and the post-exhaustion contract.
func TestScanBatchRespectsCapacity(t *testing.T) {
	r := sortedTestRelation("r", 10, 3, 2)
	for _, capacity := range []int{1, 2, 3, 1024} {
		c := NewScanCursor(r)
		b := NewBatch(capacity)
		total := 0
		for c.NextBatch(b) {
			if len(b.Tuples) == 0 || len(b.Tuples) > capacity {
				t.Fatalf("cap %d: batch of %d tuples", capacity, len(b.Tuples))
			}
			for i := range b.Tuples {
				if !b.Tuples[i].Fact.Equal(r.Tuples[total+i].Fact) {
					t.Fatalf("cap %d: tuple %d out of order", capacity, total+i)
				}
			}
			total += len(b.Tuples)
		}
		if total != r.Len() {
			t.Fatalf("cap %d: %d tuples, want %d", capacity, total, r.Len())
		}
		if c.NextBatch(b) {
			t.Fatalf("cap %d: NextBatch true after exhaustion", capacity)
		}
	}
}

// TestSkipToKeyMatchesLinearScan is the galloping property test: on
// random sorted slices and random probe keys, SkipToKey must return
// exactly the index a linear scan finds — interned and string-keyed.
func TestSkipToKeyMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := sortedTestRelation("r", 1+rng.Intn(300), 1+rng.Intn(40), int64(trial))
		if trial%2 == 1 {
			r.Unbind() // string-compare path
		}
		probe := sortedTestRelation("p", 60, 1+rng.Intn(60), int64(trial)+1000)
		for i := range probe.Tuples {
			k := probe.Tuples[i].FactKeyRO()
			start := rng.Intn(r.Len())
			got := relation.SkipToKey(r.Tuples[start:], k)
			want := 0
			for want < len(r.Tuples[start:]) && r.Tuples[start:][want].FactKeyRO().Less(k) {
				want++
			}
			if got != want {
				t.Fatalf("trial %d: SkipToKey from %d for %q: got %d, want %d",
					trial, start, k, got, want)
			}
		}
	}
}

// TestScanSkipToAdvancesCursor pins SkipTo/Next interplay on the scan.
func TestScanSkipToAdvancesCursor(t *testing.T) {
	r := sortedTestRelation("r", 500, 25, 4)
	c := NewScanCursor(r)
	// Skip to the key of a tuple in the middle.
	target := r.Tuples[307].FactKeyRO()
	c.SkipTo(target)
	got, ok := c.Next()
	if !ok {
		t.Fatal("cursor exhausted after SkipTo")
	}
	if got.FactKeyRO().Less(target) {
		t.Fatalf("SkipTo left a tuple below the target: %s < %s", got.FactKeyRO(), target)
	}
	// No tuple with key >= target may have been skipped: the first
	// reachable tuple must be the linear-scan answer.
	want := relation.SkipToKey(r.Tuples, target)
	if !got.Fact.Equal(r.Tuples[want].Fact) || got.T != r.Tuples[want].T {
		t.Fatalf("SkipTo landed on %s, want %s", got, r.Tuples[want])
	}
}

// TestSteadyStateBatchAllocations is the pooling satellite's pin: a
// full batched except-sweep over disjoint-fact inputs — whose output
// reuses the input lineage pointers, so no per-tuple lineage allocation
// is inherent — must run with near-zero per-window allocations once the
// batch pool is warm. Long-running /query/stream sessions hit exactly
// this loop; ~tens of allocations per multi-thousand-window drain means
// the advancer buffers, window scratch and batch blocks are reused, not
// churned.
func TestSteadyStateBatchAllocations(t *testing.T) {
	const n = 4000
	r := sortedTestRelation("r", n, 40, 5)
	s := relation.New(relation.NewSchema("s", "F"))
	for i := 0; i < n; i++ {
		s.AddBase(relation.NewFact(fmt.Sprintf("g%04d", i%40)), fmt.Sprintf("s%d", i), int64(i), int64(i)+2, 0.5)
	}
	relation.InternAll(r, s)
	r.Sort()
	s.Sort()

	drain := func() {
		c, err := NewOpCursor(OpExcept, NewScanCursor(r), NewScanCursor(s), Options{LazyProb: true})
		if err != nil {
			t.Fatal(err)
		}
		b := GetBatch()
		total := 0
		for c.NextBatch(b) {
			total += len(b.Tuples)
		}
		PutBatch(b)
		if total == 0 {
			t.Fatal("except over disjoint facts must emit the whole left input")
		}
	}
	drain() // warm the pools
	allocs := testing.AllocsPerRun(10, drain)
	// Plan construction is ~a dozen allocations; per-window steady state
	// must contribute ~nothing. Without pooling/batching this is O(n).
	if allocs > 100 {
		t.Fatalf("steady-state batched drain: %.0f allocs per run for %d windows; want near-zero per window", allocs, n)
	}
}

// TestOptionsWorkersResolution pins the Parallelism resolution rule:
// the zero value scales with the hardware, explicit values win, and
// anything below one is sequential.
func TestOptionsWorkersResolution(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(6)
	defer runtime.GOMAXPROCS(old)

	cases := []struct{ parallelism, want int }{
		{0, 6},  // unset: runtime.GOMAXPROCS(0)
		{1, 1},  // explicit sequential
		{-3, 1}, // nonsense: sequential
		{4, 4},  // explicit budget
		{9, 9},  // above GOMAXPROCS is allowed
	}
	for _, tc := range cases {
		if got := (Options{Parallelism: tc.parallelism}).Workers(); got != tc.want {
			t.Fatalf("Parallelism=%d: Workers()=%d, want %d", tc.parallelism, got, tc.want)
		}
	}
}
