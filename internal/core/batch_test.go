package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// sortedTestRelation builds a sorted, interned relation with the given
// fact runs.
func sortedTestRelation(name string, n, facts int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.NewSchema(name, "F"))
	cursors := make(map[string]int64)
	for i := 0; i < n; i++ {
		f := fmt.Sprintf("f%04d", rng.Intn(facts))
		ts := cursors[f] + int64(rng.Intn(3))
		te := ts + 1 + int64(rng.Intn(4))
		cursors[f] = te
		r.AddBase(relation.NewFact(f), fmt.Sprintf("%s%d", name, i), ts, te, 0.1+0.8*rng.Float64())
	}
	r.Intern()
	r.Sort()
	return r
}

// TestScanBatchZeroCopy pins that scan batches alias the relation's own
// tuple storage (two slice-header writes per block, no copying) and
// that the sub-windows tile the relation exactly.
func TestScanBatchZeroCopy(t *testing.T) {
	r := sortedTestRelation("r", 2*BatchSize+100, 7, 1)
	c := NewScanCursor(r)
	b := GetBatch()
	defer PutBatch(b)
	seen := 0
	for c.NextBatch(b) {
		if &b.Tuples[0] != &r.Tuples[seen] {
			t.Fatalf("batch at offset %d does not alias the relation storage", seen)
		}
		seen += len(b.Tuples)
	}
	if seen != r.Len() {
		t.Fatalf("batches covered %d tuples, want %d", seen, r.Len())
	}
}

// TestScanBatchRespectsCapacity pins sub-window sizing for tiny batch
// capacities and the post-exhaustion contract.
func TestScanBatchRespectsCapacity(t *testing.T) {
	r := sortedTestRelation("r", 10, 3, 2)
	for _, capacity := range []int{1, 2, 3, 1024} {
		c := NewScanCursor(r)
		b := NewBatch(capacity)
		total := 0
		for c.NextBatch(b) {
			if len(b.Tuples) == 0 || len(b.Tuples) > capacity {
				t.Fatalf("cap %d: batch of %d tuples", capacity, len(b.Tuples))
			}
			for i := range b.Tuples {
				if !b.Tuples[i].Fact.Equal(r.Tuples[total+i].Fact) {
					t.Fatalf("cap %d: tuple %d out of order", capacity, total+i)
				}
			}
			total += len(b.Tuples)
		}
		if total != r.Len() {
			t.Fatalf("cap %d: %d tuples, want %d", capacity, total, r.Len())
		}
		if c.NextBatch(b) {
			t.Fatalf("cap %d: NextBatch true after exhaustion", capacity)
		}
	}
}

// TestSkipToKeyMatchesLinearScan is the galloping property test: on
// random sorted slices and random probe keys, SkipToKey must return
// exactly the index a linear scan finds — interned and string-keyed.
func TestSkipToKeyMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := sortedTestRelation("r", 1+rng.Intn(300), 1+rng.Intn(40), int64(trial))
		if trial%2 == 1 {
			r.Unbind() // string-compare path
		}
		probe := sortedTestRelation("p", 60, 1+rng.Intn(60), int64(trial)+1000)
		for i := range probe.Tuples {
			k := probe.Tuples[i].FactKeyRO()
			start := rng.Intn(r.Len())
			got := relation.SkipToKey(r.Tuples[start:], k)
			want := 0
			for want < len(r.Tuples[start:]) && r.Tuples[start:][want].FactKeyRO().Less(k) {
				want++
			}
			if got != want {
				t.Fatalf("trial %d: SkipToKey from %d for %q: got %d, want %d",
					trial, start, k, got, want)
			}
		}
	}
}

// TestScanSkipToAdvancesCursor pins SkipTo/Next interplay on the scan.
func TestScanSkipToAdvancesCursor(t *testing.T) {
	r := sortedTestRelation("r", 500, 25, 4)
	c := NewScanCursor(r)
	// Skip to the key of a tuple in the middle.
	target := r.Tuples[307].FactKeyRO()
	c.SkipTo(target)
	got, ok := c.Next()
	if !ok {
		t.Fatal("cursor exhausted after SkipTo")
	}
	if got.FactKeyRO().Less(target) {
		t.Fatalf("SkipTo left a tuple below the target: %s < %s", got.FactKeyRO(), target)
	}
	// No tuple with key >= target may have been skipped: the first
	// reachable tuple must be the linear-scan answer.
	want := relation.SkipToKey(r.Tuples, target)
	if !got.Fact.Equal(r.Tuples[want].Fact) || got.T != r.Tuples[want].T {
		t.Fatalf("SkipTo landed on %s, want %s", got, r.Tuples[want])
	}
}

// TestSteadyStateBatchAllocations is the pooling satellite's pin: a
// full batched except-sweep over disjoint-fact inputs — whose output
// reuses the input lineage pointers, so no per-tuple lineage allocation
// is inherent — must run with near-zero per-window allocations once the
// batch pool is warm. Long-running /query/stream sessions hit exactly
// this loop; ~tens of allocations per multi-thousand-window drain means
// the advancer buffers, window scratch and batch blocks are reused, not
// churned.
func TestSteadyStateBatchAllocations(t *testing.T) {
	const n = 4000
	r := sortedTestRelation("r", n, 40, 5)
	s := relation.New(relation.NewSchema("s", "F"))
	for i := 0; i < n; i++ {
		s.AddBase(relation.NewFact(fmt.Sprintf("g%04d", i%40)), fmt.Sprintf("s%d", i), int64(i), int64(i)+2, 0.5)
	}
	relation.InternAll(r, s)
	r.Sort()
	s.Sort()
	// Columnar projections put the drain on the SoA path: packed-fid
	// gallops and column-aliasing scan blocks, which must be just as
	// allocation-free as the struct path they replaced.
	r.BuildCols()
	s.BuildCols()

	drain := func() {
		c, err := NewOpCursor(OpExcept, NewScanCursor(r), NewScanCursor(s), Options{LazyProb: true})
		if err != nil {
			t.Fatal(err)
		}
		b := GetBatch()
		total := 0
		for c.NextBatch(b) {
			total += len(b.Tuples)
		}
		PutBatch(b)
		if total == 0 {
			t.Fatal("except over disjoint facts must emit the whole left input")
		}
	}
	drain() // warm the pools
	allocs := testing.AllocsPerRun(10, drain)
	// Plan construction is ~a dozen allocations; per-window steady state
	// must contribute ~nothing. Without pooling/batching this is O(n).
	if allocs > 100 {
		t.Fatalf("steady-state batched drain: %.0f allocs per run for %d windows; want near-zero per window", allocs, n)
	}
}

// TestSteadyStateConsReuseAcrossDrains pins that a shared lineage
// hash-consing table turns repeated drains into pure table hits: the
// first union drain over overlapping inputs populates the table (no
// pair recurs within one operation), every later drain re-derives the
// same (LamR, LamS) pairs and must resolve them without allocating a
// single new lineage node — zero lineage-arena churn in steady state.
func TestSteadyStateConsReuseAcrossDrains(t *testing.T) {
	const n = 3000
	r := sortedTestRelation("r", n, 30, 6)
	s := sortedTestRelation("s", n, 30, 7)
	relation.InternAll(r, s)
	r.Sort()
	s.Sort()
	r.BuildCols()
	s.BuildCols()

	cons := lineage.NewCons()
	drain := func() {
		c, err := NewOpCursor(OpUnion, NewScanCursor(r), NewScanCursor(s),
			Options{LazyProb: true, LineageCons: cons})
		if err != nil {
			t.Fatal(err)
		}
		b := GetBatch()
		total := 0
		for c.NextBatch(b) {
			total += len(b.Tuples)
		}
		PutBatch(b)
		if total == 0 {
			t.Fatal("union over overlapping inputs must emit output")
		}
	}
	drain() // populates the table
	if cons.Size() == 0 {
		t.Fatal("overlapping union windows must cons ∨-nodes")
	}
	before := cons.Hits()
	allocs := testing.AllocsPerRun(10, drain)
	if cons.Hits() <= before {
		t.Fatalf("repeated drains produced no cons hits (size %d)", cons.Size())
	}
	if allocs > 100 {
		t.Fatalf("consed re-drain: %.0f allocs per run; want near-zero (plan construction only)", allocs)
	}
}

// TestBatchPoolRoundTrip pins the pool's capacity account: odd-capacity
// batches and the zero Batch are dropped (pooling them would hand later
// GetBatch callers undersized storage), and a full-capacity batch comes
// back empty with its whole payload and column storage intact.
func TestBatchPoolRoundTrip(t *testing.T) {
	_, _, _, drops0 := BatchPoolStats()
	PutBatch(NewBatch(7)) // odd capacity: dropped
	PutBatch(&Batch{})    // zero Batch: dropped
	if _, _, _, drops := BatchPoolStats(); drops != drops0+2 {
		t.Fatalf("odd-capacity PutBatch recorded %d drops, want %d", drops-drops0, 2)
	}

	r := sortedTestRelation("r", BatchSize, 9, 8)
	b := GetBatch()
	if b.Cap() != BatchSize || b.Len() != 0 || b.HasCols() {
		t.Fatalf("pooled batch: cap %d len %d cols %v", b.Cap(), b.Len(), b.HasCols())
	}
	for i := range r.Tuples {
		b.Append(r.Tuples[i])
	}
	if !b.HasCols() || b.Len() != BatchSize {
		t.Fatalf("full interned fill: len %d cols %v", b.Len(), b.HasCols())
	}
	PutBatch(b)

	b2 := GetBatch()
	defer PutBatch(b2)
	if b2.Len() != 0 || b2.HasCols() {
		t.Fatalf("re-pooled batch not reset: len %d cols %v", b2.Len(), b2.HasCols())
	}
	if cap(b2.Tuples) != BatchSize || cap(b2.Fid) != BatchSize || cap(b2.Ts) != BatchSize ||
		cap(b2.Te) != BatchSize || cap(b2.Prob) != BatchSize || cap(b2.Lam) != BatchSize {
		t.Fatalf("re-pooled batch lost storage: caps %d/%d/%d/%d/%d/%d",
			cap(b2.Tuples), cap(b2.Fid), cap(b2.Ts), cap(b2.Te), cap(b2.Prob), cap(b2.Lam))
	}
}

// TestBatchCapFallback pins Cap's zero-value contract: drained sources
// substitute the zero Batch as an empty placeholder, and its Cap must
// report the default size rather than zero (a zero fill target would
// wedge every fill loop bounded by it).
func TestBatchCapFallback(t *testing.T) {
	if got := (&Batch{}).Cap(); got != BatchSize {
		t.Fatalf("zero Batch Cap() = %d, want %d", got, BatchSize)
	}
	if got := NewBatch(5).Cap(); got != 5 {
		t.Fatalf("NewBatch(5).Cap() = %d, want 5", got)
	}
	if got := GetBatch(); got.Cap() != BatchSize {
		t.Fatalf("pooled Cap() = %d, want %d", got.Cap(), BatchSize)
	} else {
		PutBatch(got)
	}
}

// TestOptionsWorkersResolution pins the Parallelism resolution rule:
// the zero value scales with the hardware, explicit values win, and
// anything below one is sequential.
func TestOptionsWorkersResolution(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(6)
	defer runtime.GOMAXPROCS(old)

	cases := []struct{ parallelism, want int }{
		{0, 6},  // unset: runtime.GOMAXPROCS(0)
		{1, 1},  // explicit sequential
		{-3, 1}, // nonsense: sequential
		{4, 4},  // explicit budget
		{9, 9},  // above GOMAXPROCS is allowed
	}
	for _, tc := range cases {
		if got := (Options{Parallelism: tc.parallelism}).Workers(); got != tc.want {
			t.Fatalf("Parallelism=%d: Workers()=%d, want %d", tc.parallelism, got, tc.want)
		}
	}
}
