package core

import (
	"fmt"
	"runtime"

	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/relation"
)

// Options controls the set-operation drivers.
type Options struct {
	// AssumeSorted skips the sort step when the caller guarantees both
	// inputs are already in (fact, Ts) order. The drivers then run without
	// copying the inputs.
	AssumeSorted bool
	// LazyProb leaves the probability of output tuples unvaluated (zero).
	// By default probabilities are computed eagerly, which is linear per
	// tuple for the 1OF lineage produced by non-repeating queries.
	LazyProb bool
	// Validate additionally checks that both inputs are duplicate-free
	// before running (O(n log n)); intended for data of unknown provenance.
	Validate bool
	// Parallelism requests partition-parallel execution with this many
	// workers. The sequential drivers in this package ignore it; the
	// dispatch layers (tpset.Apply, internal/engine) route operations
	// through the partitioned execution engine when the resolved count
	// (see Workers) is above one. 0 — the zero value — resolves to
	// runtime.GOMAXPROCS(0); 1 or below means sequential.
	Parallelism int
	// NoIntern skips building a shared fact dictionary over the cloned
	// inputs, so every comparison falls back to the key-string path —
	// the pre-interning representation. Exists for the cross-validation
	// suite and the intern-vs-string benchmark; leave it unset otherwise.
	NoIntern bool
	// NoBatch pins the streaming execution paths to tuple-at-a-time:
	// operator cursors pull children through one-tuple buffers and the
	// engine's shard channels carry single tuples — the pre-batching
	// execution stack. Exists for the cross-validation suite and the
	// batch-vs-tuple benchmark; leave it unset otherwise.
	NoBatch bool
	// NoRunSkip disables the advancer's run-skipping (galloping past
	// runs of facts whose windows the operation discards), forcing the
	// tuple-by-tuple pop behaviour of the plain Algorithm 1 sweep.
	// Exists for the cross-validation suite and the batch-vs-tuple
	// benchmark; leave it unset otherwise.
	NoRunSkip bool
	// NoSoA pins execution to the tuple-struct (AoS) view: leaves skip
	// building columnar projections, scans alias no columns into their
	// batches, and the sorted-input advancer reads keys through tuple
	// structs — the pre-SoA execution stack. Exists for the
	// cross-validation suite and the soa-vs-aos benchmark; leave it
	// unset otherwise.
	NoSoA bool
	// LineageCons, when set, is the hash-consing table every OpCursor of
	// the plan draws its lineage concatenations from, so shared ∧/∨/¬
	// subterms across the plan's operators dedupe into one DAG node.
	// query.BuildCursor seeds one per plan; the engine clears it per
	// shard goroutine (a Cons is single-goroutine). When nil each
	// OpCursor uses a private table.
	LineageCons *lineage.Cons
	// Span attaches an execution-trace node to the plan being built:
	// query.BuildCursor labels it with the root operator, hangs one
	// child span per sub-operator under it and wraps every cursor so
	// pulls record tuples, batches, windows, gallops and wall time (the
	// engine additionally records per-shard subtrees and channel-stall
	// time). nil — the default — disables tracing completely: the plan
	// is built without wrappers or timing calls, so an untraced query
	// pays nothing (the ≤2% overhead pin of the obs layer).
	Span *obs.Span
}

// Workers resolves Parallelism to an effective worker count: 0 (unset)
// selects runtime.GOMAXPROCS(0) — scale with the hardware by default —
// and anything below one is sequential. The dispatch layers (tpset.Apply,
// internal/engine) route operations through the partition-parallel
// engine exactly when the resolved count is above one.
func (o Options) Workers() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// Op identifies a TP set operation.
type Op int

// The three TP set operations of Def. 3.
const (
	OpUnion Op = iota
	OpIntersect
	OpExcept
)

// String returns the paper's symbol for the operation.
func (op Op) String() string {
	switch op {
	case OpUnion:
		return "∪Tp"
	case OpIntersect:
		return "∩Tp"
	case OpExcept:
		return "−Tp"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Apply dispatches to Union, Intersect or Except.
func Apply(op Op, r, s *relation.Relation, opts Options) (*relation.Relation, error) {
	switch op {
	case OpUnion:
		return Union(r, s, opts)
	case OpIntersect:
		return Intersect(r, s, opts)
	case OpExcept:
		return Except(r, s, opts)
	}
	return nil, fmt.Errorf("core: unknown operation %v", op)
}

func prepare(r, s *relation.Relation, opts Options) (rr, ss *relation.Relation, err error) {
	if !r.Schema.Compatible(s.Schema) {
		return nil, nil, fmt.Errorf("core: incompatible schemas %q (%d attrs) and %q (%d attrs)",
			r.Schema.Name, len(r.Schema.Attrs), s.Schema.Name, len(s.Schema.Attrs))
	}
	if opts.Validate {
		if err := r.ValidateDuplicateFree(); err != nil {
			return nil, nil, err
		}
		if err := s.ValidateDuplicateFree(); err != nil {
			return nil, nil, err
		}
	}
	if opts.AssumeSorted {
		return r, s, nil
	}
	rr, ss = r.Clone(), s.Clone()
	// Give the private clones one shared fact dictionary unless they
	// already have one (ingest-aligned inputs, intermediate results over
	// same-dict leaves): the sort below and the advancer sweep then run
	// on packed (FactID, Ts, Te) integer compares.
	if !opts.NoIntern && (rr.Dict() == nil || rr.Dict() != ss.Dict()) {
		relation.InternAll(rr, ss)
	}
	rr.Sort()
	ss.Sort()
	if !opts.NoSoA {
		// Project the sorted clones into columns: the advancer's window
		// compares and run-skip gallops then run over packed int64
		// slices, and scans alias the columns into their batches.
		rr.BuildCols()
		ss.BuildCols()
	}
	return rr, ss, nil
}

// driver runs one set operation to completion through the streaming
// OpCursor: prepare (schema check, optional validation, sort), then drain
// the cursor into a materialized relation. The materializing drivers and
// the streaming execution layer therefore share one λ-filter/λ-function
// implementation and cannot diverge.
func driver(op Op, r, s *relation.Relation, opts Options) (*relation.Relation, error) {
	rr, ss, err := prepare(r, s, opts)
	if err != nil {
		return nil, err
	}
	return Materialize(newOpCursorSorted(op, rr, ss, OutSchema(op, r, s), opts)), nil
}

// Intersect computes r ∩Tp s (Algorithm 2): at each time point, the facts
// with non-zero probability to be in r and in s, with lineage
// and(λr, λs). Windows are consumed until either input is exhausted — once
// one side can no longer contribute a valid tuple, no further window can
// pass the λ-filter λr ≠ null ∧ λs ≠ null.
func Intersect(r, s *relation.Relation, opts Options) (*relation.Relation, error) {
	return driver(OpIntersect, r, s, opts)
}

// Union computes r ∪Tp s (Algorithm 3): at each time point, the facts with
// non-zero probability to be in r or in s, with lineage or(λr, λs). Every
// candidate window passes the filter (the advancer never emits a window
// without a valid tuple), so the loop drains both inputs.
func Union(r, s *relation.Relation, opts Options) (*relation.Relation, error) {
	return driver(OpUnion, r, s, opts)
}

// Except computes r −Tp s (Algorithm 4): at each time point, the facts with
// non-zero probability to be in r and not in s, with lineage
// andNot(λr, λs) — which is λr alone when no s tuple is valid, and
// λr ∧ ¬λs otherwise (the probabilistic dimension keeps facts that s holds
// with probability < 1). Windows are consumed until the left input is
// exhausted.
func Except(r, s *relation.Relation, opts Options) (*relation.Relation, error) {
	return driver(OpExcept, r, s, opts)
}

// OutSchemaOf composes the output schema of op over two input schemas:
// the concatenated name and the left input's attributes. Cursor plans use
// it to carry schemas without materialized relations.
func OutSchemaOf(op Op, ls, rs relation.Schema) relation.Schema {
	return relation.Schema{Name: ls.Name + op.String() + rs.Name, Attrs: ls.Attrs}
}

// OutSchema returns the output schema op(r, s) produces. Exported for the
// partition-parallel engine, whose merged result must carry the same
// schema as the sequential drivers.
func OutSchema(op Op, r, s *relation.Relation) relation.Schema {
	return OutSchemaOf(op, r.Schema, s.Schema)
}

// Windows runs the advancer to completion and returns every candidate
// window, in order. It exists for tests (Example 3, Proposition 1) and for
// the ablation benchmark that decouples window production from filtering.
func Windows(r, s *relation.Relation) []Window {
	rr, ss := r.Clone(), s.Clone()
	rr.Sort()
	ss.Sort()
	a := NewAdvancer(rr, ss)
	var ws []Window
	for {
		w, ok := a.Next()
		if !ok {
			return ws
		}
		ws = append(ws, w)
	}
}
