package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/baseline/norm"
	"github.com/tpset/tpset/internal/baseline/oip"
	"github.com/tpset/tpset/internal/baseline/timeline"
	"github.com/tpset/tpset/internal/baseline/tpdbg"
	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/ref"
	"github.com/tpset/tpset/internal/relation"
)

// randomRelations builds a random duplicate-free pair over a small time
// domain so the O(n·|ΩT|) oracle stays fast. The distribution exercises
// gaps, adjacency, containment and exact-boundary coincidences.
func randomRelations(rng *rand.Rand, maxTuples int) (r, s *relation.Relation) {
	facts := []string{"alpha", "beta", "gamma"}
	build := func(name string) *relation.Relation {
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		for i := 0; i < n; i++ {
			f := facts[rng.Intn(len(facts))]
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		return rel
	}
	return build("x"), build("y")
}

// TestLAWAMatchesOracle cross-validates all three LAWA set operations
// against the per-snapshot reference implementation of Def. 3 on hundreds
// of random inputs.
func TestLAWAMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		r, s := randomRelations(rng, 12)
		for _, op := range []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept} {
			got, err := core.Apply(op, r, s, core.Options{Validate: true})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, op, err)
			}
			want := ref.Apply(op, r, s)
			if d := relation.Diff(got, want); d != "" {
				t.Fatalf("trial %d %v: LAWA vs oracle: %s\nr=%s\ns=%s\ngot=%s\nwant=%s",
					trial, op, d, r, s, got, want)
			}
		}
	}
}

// TestNormMatchesLAWA cross-validates the NORM baseline on all three ops.
func TestNormMatchesLAWA(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		r, s := randomRelations(rng, 12)
		for _, op := range []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept} {
			want, err := core.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := norm.Apply(op, r, s)
			if d := relation.Diff(got, want); d != "" {
				t.Fatalf("trial %d %v: NORM vs LAWA: %s\nr=%s\ns=%s\ngot=%s\nwant=%s",
					trial, op, d, r, s, got, want)
			}
		}
	}
}

// TestTPDBMatchesLAWA cross-validates the TPDB grounding baseline on the
// operations it supports (∩, ∪) and checks that −Tp is rejected.
func TestTPDBMatchesLAWA(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		r, s := randomRelations(rng, 12)
		for _, op := range []core.Op{core.OpUnion, core.OpIntersect} {
			want, err := core.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := tpdbg.Apply(op, r, s)
			if err != nil {
				t.Fatal(err)
			}
			if d := relation.Diff(got, want); d != "" {
				t.Fatalf("trial %d %v: TPDB vs LAWA: %s\nr=%s\ns=%s\ngot=%s\nwant=%s",
					trial, op, d, r, s, got, want)
			}
		}
		if _, err := tpdbg.Apply(core.OpExcept, r, s); err == nil {
			t.Fatal("TPDB accepted set difference; Table II says it must not")
		}
	}
}

// TestTimelineAndOIPMatchLAWA cross-validates the intersection-only
// baselines.
func TestTimelineAndOIPMatchLAWA(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		r, s := randomRelations(rng, 12)
		want, err := core.Intersect(r, s, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := timeline.Intersect(r, s); relation.Diff(got, want) != "" {
			t.Fatalf("trial %d: TI vs LAWA: %s\nr=%s\ns=%s\ngot=%s\nwant=%s",
				trial, relation.Diff(got, want), r, s, got, want)
		}
		for _, k := range []int{1, 7, 64} {
			if got := oip.IntersectK(r, s, k); relation.Diff(got, want) != "" {
				t.Fatalf("trial %d k=%d: OIP vs LAWA: %s\nr=%s\ns=%s\ngot=%s\nwant=%s",
					trial, k, relation.Diff(got, want), r, s, got, want)
			}
		}
	}
}

// TestSnapshotReducibility verifies Def. 1 directly: for every time point t,
// the timeslice of the TP result equals the probabilistic operation applied
// to the timeslices of the inputs (compared as fact → lineage-probability
// maps, since snapshots carry degenerate intervals).
func TestSnapshotReducibility(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 120; trial++ {
		r, s := randomRelations(rng, 10)
		for _, op := range []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept} {
			out, err := core.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := combinedDomain(r, s)
			for tp := lo; tp < hi; tp++ {
				gotProbs := snapshotProbs(out.Timeslice(tp))
				wantProbs := probOpOnSnapshots(op, r.Timeslice(tp), s.Timeslice(tp))
				if len(gotProbs) != len(wantProbs) {
					t.Fatalf("trial %d %v t=%d: snapshot facts %v vs %v\nr=%s\ns=%s\nout=%s",
						trial, op, tp, gotProbs, wantProbs, r, s, out)
				}
				for f, p := range wantProbs {
					if g, ok := gotProbs[f]; !ok || absf(g-p) > 1e-9 {
						t.Fatalf("trial %d %v t=%d fact %s: prob %v, want %v",
							trial, op, tp, f, gotProbs[f], p)
					}
				}
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func combinedDomain(r, s *relation.Relation) (lo, hi interval.Time) {
	rd, rok := r.TimeDomain()
	sd, sok := s.TimeDomain()
	switch {
	case rok && sok:
		return interval.Min(rd.Ts, sd.Ts), interval.Max(rd.Te, sd.Te)
	case rok:
		return rd.Ts, rd.Te
	case sok:
		return sd.Ts, sd.Te
	}
	return 0, 0
}

func snapshotProbs(snap *relation.Relation) map[string]float64 {
	m := make(map[string]float64, len(snap.Tuples))
	for i := range snap.Tuples {
		m[snap.Tuples[i].Key()] = snap.Tuples[i].Lineage.ProbPossibleWorlds()
	}
	return m
}

// probOpOnSnapshots applies the atemporal probabilistic set operation to
// two snapshots: per fact, combine the (unique, by duplicate-freeness)
// lineages with the operation's concatenation function of Table I and
// valuate exactly by possible-worlds enumeration.
func probOpOnSnapshots(op core.Op, rs, ss *relation.Relation) map[string]float64 {
	facts := make(map[string]struct{})
	for i := range rs.Tuples {
		facts[rs.Tuples[i].Key()] = struct{}{}
	}
	for i := range ss.Tuples {
		facts[ss.Tuples[i].Key()] = struct{}{}
	}
	find := func(rel *relation.Relation, f string) *lineage.Expr {
		for i := range rel.Tuples {
			if rel.Tuples[i].Key() == f {
				return rel.Tuples[i].Lineage
			}
		}
		return nil
	}
	out := make(map[string]float64)
	for f := range facts {
		lr, ls := find(rs, f), find(ss, f)
		switch op {
		case core.OpUnion:
			if lr != nil || ls != nil {
				out[f] = lineage.Or(lr, ls).ProbPossibleWorlds()
			}
		case core.OpIntersect:
			if lr != nil && ls != nil {
				out[f] = lineage.And(lr, ls).ProbPossibleWorlds()
			}
		case core.OpExcept:
			if lr != nil {
				out[f] = lineage.AndNot(lr, ls).ProbPossibleWorlds()
			}
		}
	}
	return out
}

// TestProposition1WindowBound checks the upper bound of Proposition 1: the
// advancer produces at most nr + ns − fd candidate windows, where nr, ns
// count the start and end points of r and s and fd is the number of
// distinct facts across both relations.
func TestProposition1WindowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		r, s := randomRelations(rng, 20)
		ws := core.Windows(r, s)
		facts := make(map[string]struct{})
		for i := range r.Tuples {
			facts[r.Tuples[i].Key()] = struct{}{}
		}
		for i := range s.Tuples {
			facts[s.Tuples[i].Key()] = struct{}{}
		}
		bound := 2*r.Len() + 2*s.Len() - len(facts)
		if len(ws) > bound {
			t.Fatalf("trial %d: %d windows exceed bound %d (nr=%d ns=%d fd=%d)",
				trial, len(ws), bound, 2*r.Len(), 2*s.Len(), len(facts))
		}
	}
}

// TestGeneratedDataCrossValidation runs the full algorithm matrix on the
// paper's synthetic workloads (small instances of the Fig. 7 generator and
// each Table III configuration) rather than on uniform random data.
func TestGeneratedDataCrossValidation(t *testing.T) {
	configs := []datagen.PairConfig{
		{NumTuples: 400, NumFacts: 1, MaxLenR: 3, MaxLenS: 3, MaxGap: 3, Seed: 7},
		{NumTuples: 400, NumFacts: 16, MaxLenR: 3, MaxLenS: 3, MaxGap: 3, Seed: 8},
	}
	for _, row := range datagen.TableIII {
		configs = append(configs, datagen.PairConfig{
			NumTuples: 300, NumFacts: 4,
			MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS, MaxGap: 3, Seed: 9,
		})
	}
	for ci, cfg := range configs {
		r, s := datagen.Pair(cfg)
		if err := r.ValidateDuplicateFree(); err != nil {
			t.Fatalf("config %d: generator produced duplicates: %v", ci, err)
		}
		for _, op := range []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept} {
			want, err := core.Apply(op, r, s, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := norm.Apply(op, r, s); relation.Diff(got, want) != "" {
				t.Fatalf("config %d %v: NORM: %s", ci, op, relation.Diff(got, want))
			}
			if op != core.OpExcept {
				got, err := tpdbg.Apply(op, r, s)
				if err != nil {
					t.Fatal(err)
				}
				if relation.Diff(got, want) != "" {
					t.Fatalf("config %d %v: TPDB: %s", ci, op, relation.Diff(got, want))
				}
			}
			if op == core.OpIntersect {
				if got := timeline.Intersect(r, s); relation.Diff(got, want) != "" {
					t.Fatalf("config %d: TI: %s", ci, relation.Diff(got, want))
				}
				if got := oip.Intersect(r, s); relation.Diff(got, want) != "" {
					t.Fatalf("config %d: OIP: %s", ci, relation.Diff(got, want))
				}
			}
		}
	}
}
