package core

import (
	"time"

	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/relation"
)

// Execution tracing. Traced wraps a cursor so that every pull records
// into an obs.Span: tuples and batches emitted and inclusive wall time,
// plus — when the wrapped cursor is an OpCursor — the advancer's
// windows-popped and gallops-taken counters. Wrappers exist only when a
// trace is requested (plan builders call Traced with the plan's span;
// with a nil span the cursor is returned unchanged), so the untraced
// execution stack is byte-for-byte the stack of the previous PRs: no
// wrapper in the cursor tree, no time.Now calls, no atomic traffic.
//
// Wrapping is transparent to the execution machinery: a BatchCursor
// stays a BatchCursor (block pulls keep their zero-copy and pooling
// behaviour), and SkipTo keeps forwarding so run-skipping gallops
// through traced plans exactly as through untraced ones — the wrapper
// only counts the skips it forwards. Output is therefore bit-identical
// with tracing on or off; the golden trace tests pin this.

// Traced wraps c to record into sp; it returns c unchanged when sp is
// nil. The wrapper preserves the BatchCursor capability of the wrapped
// cursor.
func Traced(c Cursor, sp *obs.Span) Cursor {
	if sp == nil {
		return c
	}
	tc := tracedCore{c: c, sp: sp}
	if oc, ok := c.(*OpCursor); ok {
		tc.adv = oc.a
	}
	if bc, ok := c.(BatchCursor); ok {
		return &tracedBatchCursor{tracedCore: tc, bc: bc}
	}
	return &tracedCursor{tracedCore: tc}
}

// tracedCore is the shared recording state of the two wrapper shapes.
type tracedCore struct {
	c   Cursor
	sp  *obs.Span
	adv *Advancer // non-nil when c is an OpCursor: publish sweep counters
}

func (t *tracedCore) Schema() relation.Schema { return t.c.Schema() }

// publishSweep pushes the advancer's window/gallop counters into the
// span after a pull (stores, not adds: the advancer owns the running
// totals).
func (t *tracedCore) publishSweep() {
	if t.adv != nil {
		t.sp.SetWindows(t.adv.Windows())
		t.sp.SetGallops(t.adv.Gallops())
	}
}

// tracedCursor wraps a tuple-only cursor.
type tracedCursor struct{ tracedCore }

// ReleaseCursor forwards plan teardown through the tracing wrapper.
func (t *tracedCursor) ReleaseCursor() { ReleaseCursor(t.c) }

func (t *tracedCursor) Next() (relation.Tuple, bool) {
	start := time.Now()
	tu, ok := t.c.Next()
	t.sp.AddWall(time.Since(start))
	if ok {
		t.sp.AddTuples(1)
	}
	t.publishSweep()
	return tu, ok
}

// tracedBatchCursor wraps a batch-capable cursor, preserving block
// pulls and run-skip forwarding.
type tracedBatchCursor struct {
	tracedCore
	bc BatchCursor
}

// ReleaseCursor forwards plan teardown through the tracing wrapper.
func (t *tracedBatchCursor) ReleaseCursor() { ReleaseCursor(t.bc) }

func (t *tracedBatchCursor) Next() (relation.Tuple, bool) {
	start := time.Now()
	tu, ok := t.bc.Next()
	t.sp.AddWall(time.Since(start))
	if ok {
		t.sp.AddTuples(1)
	}
	t.publishSweep()
	return tu, ok
}

func (t *tracedBatchCursor) NextBatch(b *Batch) bool {
	start := time.Now()
	ok := t.bc.NextBatch(b)
	t.sp.AddWall(time.Since(start))
	if ok {
		t.sp.AddTuples(int64(len(b.Tuples)))
		t.sp.AddBatches(1)
	}
	t.publishSweep()
	return ok
}

// SkipTo forwards run-skipping to the wrapped cursor when it supports
// it, counting the gallop either way. A wrapped cursor without SkipTo
// (an operator cursor — its output is computed, so there is nothing to
// gallop over) makes this a no-op, which is semantically equivalent:
// callers re-filter below-k tuples after every skipTo, skipping only
// saves work, never changes output.
func (t *tracedBatchCursor) SkipTo(k relation.FactKey) {
	if sk, ok := t.bc.(keySkipper); ok {
		t.sp.AddGallops(1)
		sk.SkipTo(k)
	}
}
