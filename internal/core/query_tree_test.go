package core_test

// Deep property tests: random nested TP set query trees — including
// repeating ones — evaluated by composing LAWA operations must match the
// composition of the per-snapshot oracle, and the outputs must satisfy
// the model invariants (duplicate-freeness, change preservation) at every
// level.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/ref"
	"github.com/tpset/tpset/internal/relation"
)

// buildPoolRelation generates one duplicate-free relation whose base-tuple
// identifiers carry a globally unique prefix.
func buildPoolRelation(rng *rand.Rand, prefix string, maxTuples int) *relation.Relation {
	facts := []string{"alpha", "beta", "gamma"}
	rel := relation.New(relation.NewSchema(prefix, "F"))
	n := 1 + rng.Intn(maxTuples)
	cursors := make(map[string]int64)
	for i := 0; i < n; i++ {
		f := facts[rng.Intn(len(facts))]
		ts := cursors[f] + int64(rng.Intn(4))
		te := ts + 1 + int64(rng.Intn(5))
		cursors[f] = te
		rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s_%d", prefix, i), ts, te, 0.05+0.9*rng.Float64())
	}
	return rel
}

// opTree is a random expression tree over leaf relations.
type opTree struct {
	op          core.Op
	left, right *opTree
	leaf        int // index into the relation pool (when left == nil)
}

func randTree(rng *rand.Rand, depth, pool int) *opTree {
	if depth == 0 || rng.Intn(3) == 0 {
		return &opTree{leaf: rng.Intn(pool)}
	}
	return &opTree{
		op:    core.Op(rng.Intn(3)),
		left:  randTree(rng, depth-1, pool),
		right: randTree(rng, depth-1, pool),
	}
}

func (t *opTree) leaves() map[int]int {
	m := map[int]int{}
	var walk func(*opTree)
	walk = func(n *opTree) {
		if n.left == nil {
			m[n.leaf]++
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t)
	return m
}

func evalLAWA(t *opTree, pool []*relation.Relation) (*relation.Relation, error) {
	if t.left == nil {
		return pool[t.leaf], nil
	}
	l, err := evalLAWA(t.left, pool)
	if err != nil {
		return nil, err
	}
	r, err := evalLAWA(t.right, pool)
	if err != nil {
		return nil, err
	}
	return core.Apply(t.op, l, r, core.Options{})
}

func evalOracle(t *opTree, pool []*relation.Relation) *relation.Relation {
	if t.left == nil {
		return pool[t.leaf]
	}
	return ref.Apply(t.op, evalOracle(t.left, pool), evalOracle(t.right, pool))
}

// checkChangePreservation verifies Def. 2's maximality half on a sorted
// output: no two adjacent same-fact tuples carry equivalent lineage.
func checkChangePreservation(t *testing.T, r *relation.Relation, ctx string) {
	t.Helper()
	c := r.Clone()
	c.Sort()
	for i := 1; i < len(c.Tuples); i++ {
		prev, cur := &c.Tuples[i-1], &c.Tuples[i]
		if prev.Key() == cur.Key() && prev.T.Te == cur.T.Ts &&
			lineage.EquivalentSyntactic(prev.Lineage, cur.Lineage) {
			t.Fatalf("%s: change preservation violated: %v then %v", ctx, prev, cur)
		}
	}
}

func TestRandomQueryTreesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		// A pool of three small relations; trees may reference one
		// relation several times (repeating queries). Base-tuple ids must
		// be globally unique across the pool — the model's independent-
		// variable assumption — so each relation gets its own id prefix.
		pool := make([]*relation.Relation, 3)
		for i := range pool {
			pool[i] = buildPoolRelation(rng, fmt.Sprintf("p%d_%d", trial, i), 6)
		}
		tree := randTree(rng, 3, len(pool))
		if tree.left == nil {
			continue
		}
		got, err := evalLAWA(tree, pool)
		if err != nil {
			t.Fatal(err)
		}
		want := evalOracle(tree, pool)
		if d := relation.Diff(got, want); d != "" {
			t.Fatalf("trial %d: %s", trial, d)
		}
		if err := got.ValidateDuplicateFree(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkChangePreservation(t, got, "tree output")

		// Theorem 1: when the tree is non-repeating, all lineage is 1OF.
		repeating := false
		for _, n := range tree.leaves() {
			if n > 1 {
				repeating = true
			}
		}
		if !repeating {
			for i := range got.Tuples {
				if !got.Tuples[i].Lineage.IsOneOccurrence() {
					t.Fatalf("trial %d: non-repeating tree yielded non-1OF lineage %s",
						trial, got.Tuples[i].Lineage)
				}
			}
		}
	}
}

// TestDeepChainStaysLinear exercises a long left-deep chain of unions —
// the lineage grows per tuple, but remains 1OF and linear to valuate.
func TestDeepChainStaysLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	acc := relation.New(relation.NewSchema("acc", "F"))
	acc.AddBase(relation.NewFact("x"), "seed", 0, 100, 0.5)
	for i := 0; i < 12; i++ {
		next := relation.New(relation.NewSchema("n", "F"))
		ts := int64(rng.Intn(80))
		next.AddBase(relation.NewFact("x"), string(rune('a'+i)), ts, ts+1+int64(rng.Intn(20)), 0.3)
		out, err := core.Union(acc, next, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		acc = out
	}
	if err := acc.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	checkChangePreservation(t, acc, "deep chain")
	for i := range acc.Tuples {
		tu := &acc.Tuples[i]
		if !tu.Lineage.IsOneOccurrence() {
			t.Fatalf("chain lineage not 1OF: %s", tu.Lineage)
		}
		// Exact evaluation must agree with possible worlds on every tuple.
		if diff := tu.Prob - tu.Lineage.ProbPossibleWorlds(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("prob mismatch on %v", tu)
		}
	}
}

// TestEdgeCases covers the boundary behaviours of the drivers.
func TestEdgeCases(t *testing.T) {
	empty := relation.New(relation.NewSchema("e", "F"))
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("x"), "r1", 1, 4, 0.5)

	type tc struct {
		name    string
		op      core.Op
		l, r    *relation.Relation
		wantLen int
	}
	cases := []tc{
		{"union empty empty", core.OpUnion, empty, empty, 0},
		{"union r empty", core.OpUnion, r, empty, 1},
		{"union empty r", core.OpUnion, empty, r, 1},
		{"intersect r empty", core.OpIntersect, r, empty, 0},
		{"intersect empty r", core.OpIntersect, empty, r, 0},
		{"except r empty", core.OpExcept, r, empty, 1},
		{"except empty r", core.OpExcept, empty, r, 0},
		{"except r r", core.OpExcept, r, r, 1}, // x∧¬x: kept, prob 0
	}
	for _, c := range cases {
		got, err := core.Apply(c.op, c.l, c.r, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Len() != c.wantLen {
			t.Errorf("%s: %d tuples, want %d\n%s", c.name, got.Len(), c.wantLen, got)
		}
	}

	// r −Tp r keeps the interval with lineage r1∧¬r1 ≡ false (prob 0):
	// Def. 3's filter is λr ≠ null; the probabilistic dimension zeroes it.
	selfExcept, err := core.Except(r, r, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if selfExcept.Tuples[0].Prob != 0 {
		t.Errorf("r −Tp r probability: %v", selfExcept.Tuples[0].Prob)
	}

	// Identical single-point intervals.
	p1 := relation.New(relation.NewSchema("p1", "F"))
	p1.AddBase(relation.NewFact("x"), "p1", 5, 6, 0.5)
	p2 := relation.New(relation.NewSchema("p2", "F"))
	p2.AddBase(relation.NewFact("x"), "p2", 5, 6, 0.5)
	got, err := core.Intersect(p1, p2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0].T.Ts != 5 || got.Tuples[0].T.Te != 6 {
		t.Fatalf("point intersect: %s", got)
	}
	// Adjacent intervals never intersect (half-open semantics).
	q1 := relation.New(relation.NewSchema("q1", "F"))
	q1.AddBase(relation.NewFact("x"), "q1", 1, 5, 0.5)
	q2 := relation.New(relation.NewSchema("q2", "F"))
	q2.AddBase(relation.NewFact("x"), "q2", 5, 9, 0.5)
	got, err = core.Intersect(q1, q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("adjacent intervals intersected: %s", got)
	}
}

// TestValidateOption ensures bad input is rejected when requested.
func TestValidateOption(t *testing.T) {
	bad := relation.New(relation.NewSchema("bad", "F"))
	bad.AddBase(relation.NewFact("x"), "b1", 1, 5, 0.5)
	bad.AddBase(relation.NewFact("x"), "b2", 3, 7, 0.5) // overlap!
	ok := relation.New(relation.NewSchema("ok", "F"))
	if _, err := core.Union(bad, ok, core.Options{Validate: true}); err == nil {
		t.Error("duplicate input accepted with Validate")
	}
	if _, err := core.Union(ok, bad, core.Options{Validate: true}); err == nil {
		t.Error("duplicate right input accepted with Validate")
	}
	if _, err := core.Union(bad, ok, core.Options{}); err != nil {
		t.Error("without Validate the driver must not check")
	}
}

// TestLazyProbOption: outputs carry zero probability until computed.
func TestLazyProbOption(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("x"), "r1", 1, 4, 0.5)
	s := relation.New(relation.NewSchema("s", "F"))
	s.AddBase(relation.NewFact("x"), "s1", 2, 6, 0.5)
	got, err := core.Intersect(r, s, core.Options{LazyProb: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0].Prob != 0 {
		t.Error("lazy output valuated")
	}
	if got.Tuples[0].ComputeProb(); got.Tuples[0].Prob != 0.25 {
		t.Error("ComputeProb")
	}
}

// TestAssumeSorted: pre-sorted inputs run unchanged and uncloned.
func TestAssumeSorted(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("x"), "r1", 1, 4, 0.5)
	r.AddBase(relation.NewFact("y"), "r2", 2, 5, 0.5)
	s := relation.New(relation.NewSchema("s", "F"))
	s.AddBase(relation.NewFact("x"), "s1", 2, 6, 0.5)
	r.Sort()
	s.Sort()
	want, err := core.Union(r, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Union(r, s, core.Options{AssumeSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(got, want); d != "" {
		t.Fatal(d)
	}
}
