package core

import (
	"sync"
	"sync/atomic"

	"github.com/tpset/tpset/internal/relation"
)

// Batched (vectorized) cursor execution. A Batch is a block of tuples in
// canonical (fact, Ts, Te) order — the unit the execution stack moves
// around instead of single tuples wherever per-tuple costs would
// otherwise dominate: interface calls inside a cursor plan, channel
// operations between the engine's shard goroutines and its merge, and
// encoder/flush calls on the NDJSON stream. Amortizing those costs over
// ~BatchSize tuples is the MonetDB/X100 observation; the tuple-at-a-time
// Cursor API stays intact on top of it (every BatchCursor is a Cursor),
// so callers opt into blocks without a second execution semantics.

// BatchSize is the default tuple capacity of a pooled batch. Large
// enough that per-batch costs (one interface call, one channel op, one
// flush decision) are amortized ~1000x; small enough that a batch of
// tuples (~100 B each) stays comfortably inside L2 and time-to-first-
// tuple remains a sub-millisecond concern.
const BatchSize = 1024

// Batch is a reusable block of tuples. Tuples is the window consumers
// read; it either aliases caller-owned memory (a zero-copy scan
// sub-window) or the batch's own pooled storage — producers decide per
// fill, consumers cannot tell the difference and must treat the tuples
// as read-only until they copy them out.
type Batch struct {
	Tuples []relation.Tuple

	// own is the pooled backing array. Reset points Tuples at it; alias
	// fills (ScanCursor) leave it untouched so the pool never loses its
	// storage to a foreign slice.
	own []relation.Tuple
}

// NewBatch returns an unpooled batch with the given tuple capacity —
// tests use tiny capacities to force mid-batch boundaries; everything
// else takes pooled BatchSize batches from GetBatch.
func NewBatch(capacity int) *Batch {
	return &Batch{own: make([]relation.Tuple, 0, capacity)}
}

// Reset points the batch at its own empty storage; producers that build
// output tuple-by-tuple call it and append to Tuples (capacity is
// guaranteed, so appends never reallocate).
func (b *Batch) Reset() { b.Tuples = b.own[:0] }

// Cap returns the fill target of the batch: the capacity of its own
// storage (aliasing fills use it to size sub-windows consistently).
func (b *Batch) Cap() int {
	if c := cap(b.own); c > 0 {
		return c
	}
	return BatchSize
}

// Len returns the number of tuples currently in the batch.
func (b *Batch) Len() int { return len(b.Tuples) }

var batchPool = sync.Pool{
	New: func() any {
		batchPoolNews.Add(1)
		return NewBatch(BatchSize)
	},
}

// Batch-pool instruments: gets and puts count pool traffic, news counts
// pool misses (the pool had to allocate fresh storage — GC dropped the
// pool or demand outgrew it), drops counts PutBatch rejections of
// odd-capacity blocks. One atomic add per ~BatchSize tuples — noise.
var batchPoolGets, batchPoolPuts, batchPoolNews, batchPoolDrops atomic.Uint64

// BatchPoolStats returns the batch-pool counters (gets, puts, pool
// misses, odd-capacity drops) for the metrics endpoint.
func BatchPoolStats() (gets, puts, news, drops uint64) {
	return batchPoolGets.Load(), batchPoolPuts.Load(), batchPoolNews.Load(), batchPoolDrops.Load()
}

// GetBatch returns an empty pooled batch of BatchSize capacity.
func GetBatch() *Batch {
	batchPoolGets.Add(1)
	b := batchPool.Get().(*Batch)
	b.Reset()
	return b
}

// PutBatch returns a batch to the pool. The caller must not touch the
// batch (or the Tuples slice it handed out) afterwards. Tuple contents
// are not cleared — a pool entry pins at most one batch worth of
// tuples, and the pool itself is dropped on GC pressure. Odd-sized
// batches (NewBatch with a capacity other than BatchSize — ramp-up
// blocks, test batches) are dropped rather than pooled, so GetBatch
// always returns full-capacity storage.
func PutBatch(b *Batch) {
	if cap(b.own) != BatchSize {
		batchPoolDrops.Add(1)
		return
	}
	batchPoolPuts.Add(1)
	b.Tuples = nil
	batchPool.Put(b)
}

// FillBatch resets b and fills it through next until it holds Cap()
// tuples or the stream ends, reporting whether it produced any — the
// one batch-fill loop behind every tuple-pulling NextBatch
// implementation (operator cursors, adapters, fallbacks).
func FillBatch(b *Batch, next func() (relation.Tuple, bool)) bool {
	b.Reset()
	max := b.Cap()
	for len(b.Tuples) < max {
		t, ok := next()
		if !ok {
			break
		}
		b.Tuples = append(b.Tuples, t)
	}
	return len(b.Tuples) > 0
}

// BatchCursor is a Cursor that can also deliver its stream in blocks.
// NextBatch fills b (after resetting it) with up to b.Cap() tuples in
// canonical order and reports whether it produced any; after the first
// false it keeps returning false. Next and NextBatch draw from the same
// underlying stream and may be interleaved — every tuple is delivered
// exactly once, in order, whichever way it is pulled.
type BatchCursor interface {
	Cursor
	NextBatch(b *Batch) bool
}

// keySkipper is implemented by cursors that can advance past a run of
// facts in sub-linear time: SkipTo discards every upcoming tuple whose
// fact key is below k. Scans gallop (exponential probe + binary search
// over the packed (FactID, Ts, Te) order when interned); filters
// forward to their input. The advancer's run-skipping uses it through
// batchSource; operator cursors deliberately do not implement it —
// their output is computed, so "skipping" it would still compute it.
type keySkipper interface {
	SkipTo(k relation.FactKey)
}

// NextBatch fills b with the next sub-window of the scanned relation —
// zero copy: b.Tuples aliases the relation's own storage, so a scan
// batch costs two slice-header writes regardless of size. Consumers
// must treat the tuples as read-only (the relation may be shared, e.g.
// a catalog relation under AssumeSorted).
func (c *ScanCursor) NextBatch(b *Batch) bool {
	n := len(c.r.Tuples) - c.i
	if n <= 0 {
		b.Reset()
		return false
	}
	if max := b.Cap(); n > max {
		n = max
	}
	b.Tuples = c.r.Tuples[c.i : c.i+n]
	c.i += n
	return true
}

// SkipTo advances the scan past every tuple whose fact key is below k,
// by galloping: exponential probe to bracket the run, then binary
// search inside the bracket. On interned relations every comparison is
// a single integer compare, so skipping an absent run of m tuples costs
// O(log m) instead of the O(m) pops of the tuple-at-a-time sweep.
func (c *ScanCursor) SkipTo(k relation.FactKey) {
	c.i += relation.SkipToKey(c.r.Tuples[c.i:], k)
}

// NextBatch drains windows through the operation's λ-filter into the
// output batch until it is full or the operation terminates — the
// advancer runs without surfacing an interface call per tuple, and the
// per-operation termination conditions of Algorithms 2–4 are re-checked
// between windows exactly as in Next.
func (c *OpCursor) NextBatch(b *Batch) bool {
	return FillBatch(b, c.Next)
}

// tupleAdapter lifts any Cursor to a BatchCursor by filling batches
// through Next — the compatibility shim for cursors outside this
// package that have not grown a native NextBatch.
type tupleAdapter struct{ Cursor }

func (a tupleAdapter) NextBatch(b *Batch) bool {
	return FillBatch(b, a.Next)
}

// AsBatchCursor returns c itself when it already streams batches, and a
// batching adapter over Next otherwise — callers that want blocks
// (engine shard producers, the NDJSON stream) use it to pick batched
// plans transparently.
func AsBatchCursor(c Cursor) BatchCursor {
	if bc, ok := c.(BatchCursor); ok {
		return bc
	}
	return tupleAdapter{c}
}
