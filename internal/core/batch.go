package core

import (
	"sync"
	"sync/atomic"

	"github.com/tpset/tpset/internal/invariant"
	"github.com/tpset/tpset/internal/keys"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Batched (vectorized) cursor execution. A Batch is a block of tuples in
// canonical (fact, Ts, Te) order — the unit the execution stack moves
// around instead of single tuples wherever per-tuple costs would
// otherwise dominate: interface calls inside a cursor plan, channel
// operations between the engine's shard goroutines and its merge, and
// encoder/flush calls on the NDJSON stream. Amortizing those costs over
// ~BatchSize tuples is the MonetDB/X100 observation; the tuple-at-a-time
// Cursor API stays intact on top of it (every BatchCursor is a Cursor),
// so callers opt into blocks without a second execution semantics.

// BatchSize is the default tuple capacity of a pooled batch. Large
// enough that per-batch costs (one interface call, one channel op, one
// flush decision) are amortized ~1000x; small enough that a batch of
// tuples (~100 B each) stays comfortably inside L2 and time-to-first-
// tuple remains a sub-millisecond concern.
const BatchSize = 1024

// Batch is a reusable block of tuples with two coherent views.
//
// Tuples is the universal payload view every consumer can read; it
// either aliases caller-owned memory (a zero-copy scan sub-window) or
// the batch's own pooled storage — producers decide per fill, consumers
// cannot tell the difference and must treat the tuples as read-only
// until they copy them out.
//
// Fid/Ts/Te/Prob/Lam are the columnar (structure-of-arrays) view: when
// Dict is non-nil, row i of every column mirrors Tuples[i] — Fid the
// packed interned id, Ts/Te the interval, Prob the probability, Lam the
// lineage pointer — and (Fid, Ts, Te) integer compares ARE canonical
// tuple order. Hot loops (the advancer's window compares, the merge's
// frontier compares, galloping skips, the encoder's read side) run on
// the packed columns and fall back to the payload view whenever Dict is
// nil: a batch whose tuples span dictionaries, or are unbound, or whose
// producer pinned the AoS path (Options.NoSoA), simply carries no
// columns. Like the payload view, the columns either alias a relation's
// cached projection (relation.Cols) or the batch's own pooled arrays.
type Batch struct {
	Tuples []relation.Tuple

	Fid  []int64
	Ts   []int64
	Te   []int64
	Prob []float64
	Lam  []*lineage.Expr
	// Dict is non-nil iff the columns are valid: every tuple of the
	// batch is interned against it and the column rows mirror Tuples.
	Dict *keys.Dict

	// own* are the pooled backing arrays. Reset points the views at
	// them; alias fills (ScanCursor) leave them untouched so the pool
	// never loses its storage to a foreign slice.
	own     []relation.Tuple
	ownFid  []int64
	ownTs   []int64
	ownTe   []int64
	ownProb []float64
	ownLam  []*lineage.Expr

	// capacity is the fill target, recorded at construction — the one
	// capacity account for payload and columns alike (cap(own) and the
	// column caps all equal it; PutBatch checks it, not cap(own)).
	capacity int
}

// NewBatch returns an unpooled batch with the given tuple capacity —
// tests use tiny capacities to force mid-batch boundaries; everything
// else takes pooled BatchSize batches from GetBatch.
func NewBatch(capacity int) *Batch {
	b := &Batch{
		own:      make([]relation.Tuple, 0, capacity),
		ownFid:   make([]int64, 0, capacity),
		ownTs:    make([]int64, 0, capacity),
		ownTe:    make([]int64, 0, capacity),
		ownProb:  make([]float64, 0, capacity),
		ownLam:   make([]*lineage.Expr, 0, capacity),
		capacity: capacity,
	}
	b.Reset()
	return b
}

// Reset points both views at the batch's own empty storage; producers
// that build output row-by-row call it and Append (capacity is
// guaranteed, so appends never reallocate). Columns start empty and
// unbound — the first appended tuple decides whether the batch is
// columnar.
func (b *Batch) Reset() {
	b.Tuples = b.own[:0]
	b.Fid = b.ownFid[:0]
	b.Ts = b.ownTs[:0]
	b.Te = b.ownTe[:0]
	b.Prob = b.ownProb[:0]
	b.Lam = b.ownLam[:0]
	b.Dict = nil
}

// dropCols abandons the columnar view (mixed-dict or unbound content):
// consumers fall back to the payload view. The column storage stays
// owned for the next Reset.
func (b *Batch) dropCols() {
	b.Fid = b.ownFid[:0]
	b.Ts = b.ownTs[:0]
	b.Te = b.ownTe[:0]
	b.Prob = b.ownProb[:0]
	b.Lam = b.ownLam[:0]
	b.Dict = nil
}

// checkInvariants asserts the batch representation contracts
// (tpinvariants builds only): the capacity account covers the pooled
// backing storage — the single account PutBatch trusts when it decides
// a block may re-enter the pool — and the columnar view, when bound,
// mirrors the payload length-for-length (a bound batch with ragged
// columns would feed stale column rows to every packed-path consumer).
func (b *Batch) checkInvariants(site string) {
	invariant.Assertf(cap(b.own) >= b.capacity && cap(b.ownFid) >= b.capacity &&
		cap(b.ownTs) >= b.capacity && cap(b.ownTe) >= b.capacity &&
		cap(b.ownProb) >= b.capacity && cap(b.ownLam) >= b.capacity,
		site, "batch capacity account %d exceeds backing storage (own %d, fid %d, ts %d, te %d, prob %d, lam %d)",
		b.capacity, cap(b.own), cap(b.ownFid), cap(b.ownTs), cap(b.ownTe), cap(b.ownProb), cap(b.ownLam))
	if b.Dict != nil {
		n := len(b.Tuples)
		invariant.Assertf(len(b.Fid) == n && len(b.Ts) == n && len(b.Te) == n && len(b.Prob) == n && len(b.Lam) == n,
			site, "bound batch columns (%d/%d/%d/%d/%d) do not mirror %d payload rows",
			len(b.Fid), len(b.Ts), len(b.Te), len(b.Prob), len(b.Lam), n)
	}
}

// HasCols reports whether the columnar view is valid.
func (b *Batch) HasCols() bool { return b.Dict != nil }

// Cap returns the fill target of the batch (aliasing fills use it to
// size sub-windows consistently). The zero Batch — used as an empty
// placeholder by drained sources — reports the default size.
func (b *Batch) Cap() int {
	if b.capacity > 0 {
		return b.capacity
	}
	return BatchSize
}

// Len returns the number of tuples currently in the batch.
func (b *Batch) Len() int { return len(b.Tuples) }

// Append adds one tuple to a Reset-based fill, maintaining the columnar
// view: the first appended tuple's binding decides the batch dictionary,
// every same-dict tuple extends the columns, and the first mismatching
// tuple drops them (the payload view is always complete). Producers
// that fill by aliasing instead (ScanCursor) never call it.
func (b *Batch) Append(t relation.Tuple) {
	if len(b.Tuples) == 0 {
		b.Tuples = append(b.Tuples, t)
		if d, id := t.Binding(); d != nil {
			b.Dict = d
			b.Fid = append(b.Fid[:0], int64(id))
			b.Ts = append(b.Ts[:0], t.T.Ts)
			b.Te = append(b.Te[:0], t.T.Te)
			b.Prob = append(b.Prob[:0], t.Prob)
			b.Lam = append(b.Lam[:0], t.Lineage)
		}
		return
	}
	b.Tuples = append(b.Tuples, t)
	if b.Dict == nil {
		return
	}
	if d, id := t.Binding(); d == b.Dict {
		b.Fid = append(b.Fid, int64(id))
		b.Ts = append(b.Ts, t.T.Ts)
		b.Te = append(b.Te, t.T.Te)
		b.Prob = append(b.Prob, t.Prob)
		b.Lam = append(b.Lam, t.Lineage)
	} else {
		b.dropCols()
	}
}

// AppendRow is Append without column maintenance — the AoS-pinned fill
// (Options.NoSoA) and the pre-SoA behaviour byte-for-byte.
func (b *Batch) AppendRow(t relation.Tuple) {
	b.Tuples = append(b.Tuples, t)
}

// AppendRange bulk-appends rows [i, j) of src, carrying the columnar
// view along when it stays coherent: src columnar and this batch empty
// (adopt src's dictionary) or already on the same dictionary. Any other
// combination drops this batch's columns. The merge uses it for its
// single-lane block copies and frontier emissions.
func (b *Batch) AppendRange(src *Batch, i, j int) {
	if i >= j {
		return
	}
	wasEmpty := len(b.Tuples) == 0
	b.Tuples = append(b.Tuples, src.Tuples[i:j]...)
	if src.Dict != nil && (b.Dict == src.Dict || (wasEmpty && b.Dict == nil)) {
		b.Dict = src.Dict
		b.Fid = append(b.Fid, src.Fid[i:j]...)
		b.Ts = append(b.Ts, src.Ts[i:j]...)
		b.Te = append(b.Te, src.Te[i:j]...)
		b.Prob = append(b.Prob, src.Prob[i:j]...)
		b.Lam = append(b.Lam, src.Lam[i:j]...)
		return
	}
	if b.Dict != nil {
		b.dropCols()
	}
}

// BatchLess reports canonical tuple order between row i of a and row j
// of b. When both batches carry columns over one dictionary the compare
// is three packed int64 loads — no struct access, no method calls —
// which is the merge's frontier compare on the SoA path; otherwise it
// is relation.Less over the payload rows.
func BatchLess(a *Batch, i int, b *Batch, j int) bool {
	if a.Dict != nil && a.Dict == b.Dict {
		if a.Fid[i] != b.Fid[j] {
			return a.Fid[i] < b.Fid[j]
		}
		if a.Ts[i] != b.Ts[j] {
			return a.Ts[i] < b.Ts[j]
		}
		return a.Te[i] < b.Te[j]
	}
	return relation.Less(&a.Tuples[i], &b.Tuples[j])
}

var batchPool = sync.Pool{
	New: func() any {
		batchPoolNews.Add(1)
		return NewBatch(BatchSize)
	},
}

// Batch-pool instruments: gets and puts count pool traffic, news counts
// pool misses (the pool had to allocate fresh storage — GC dropped the
// pool or demand outgrew it), drops counts PutBatch rejections of
// odd-capacity blocks. One atomic add per ~BatchSize tuples — noise.
var batchPoolGets, batchPoolPuts, batchPoolNews, batchPoolDrops atomic.Uint64

// BatchPoolStats returns the batch-pool counters (gets, puts, pool
// misses, odd-capacity drops) for the metrics endpoint.
func BatchPoolStats() (gets, puts, news, drops uint64) {
	return batchPoolGets.Load(), batchPoolPuts.Load(), batchPoolNews.Load(), batchPoolDrops.Load()
}

// GetBatch returns an empty pooled batch of BatchSize capacity.
func GetBatch() *Batch {
	batchPoolGets.Add(1)
	b := batchPool.Get().(*Batch)
	b.Reset()
	if invariant.Enabled {
		invariant.Assertf(b.capacity == BatchSize, "core.GetBatch",
			"pooled batch has capacity %d, want %d", b.capacity, BatchSize)
	}
	return b
}

// PutBatch returns a batch to the pool. The caller must not touch the
// batch (or any view slice it handed out) afterwards. Contents are not
// cleared — a pool entry pins at most one batch worth of rows, and the
// pool itself is dropped on GC pressure. Odd-sized batches (NewBatch
// with a capacity other than BatchSize — ramp-up blocks, test batches)
// and the zero Batch are dropped rather than pooled, so GetBatch always
// returns full-capacity storage across payload and columns alike (the
// capacity field is the single account for all of them; checking
// cap(own) alone predates the columns and would re-pool a batch whose
// column arrays had been swapped out).
func PutBatch(b *Batch) {
	if invariant.Enabled {
		b.checkInvariants("core.PutBatch")
	}
	if b.capacity != BatchSize {
		batchPoolDrops.Add(1)
		return
	}
	batchPoolPuts.Add(1)
	b.Tuples = nil
	b.Fid, b.Ts, b.Te, b.Prob, b.Lam, b.Dict = nil, nil, nil, nil, nil, nil
	batchPool.Put(b)
}

// FillBatch resets b and fills it through next until it holds Cap()
// tuples or the stream ends, reporting whether it produced any — the
// one batch-fill loop behind every tuple-pulling NextBatch
// implementation (operator cursors, adapters, fallbacks). The columnar
// view is maintained through Append; fillBatchRows is the AoS-pinned
// variant.
func FillBatch(b *Batch, next func() (relation.Tuple, bool)) bool {
	b.Reset()
	max := b.Cap()
	for len(b.Tuples) < max {
		t, ok := next()
		if !ok {
			break
		}
		b.Append(t)
	}
	return len(b.Tuples) > 0
}

// fillBatchRows is FillBatch without column maintenance — the
// Options.NoSoA fill, identical to the pre-SoA loop.
func fillBatchRows(b *Batch, next func() (relation.Tuple, bool)) bool {
	b.Reset()
	max := b.Cap()
	for len(b.Tuples) < max {
		t, ok := next()
		if !ok {
			break
		}
		b.AppendRow(t)
	}
	return len(b.Tuples) > 0
}

// BatchCursor is a Cursor that can also deliver its stream in blocks.
// NextBatch fills b (after resetting it) with up to b.Cap() tuples in
// canonical order and reports whether it produced any; after the first
// false it keeps returning false. Next and NextBatch draw from the same
// underlying stream and may be interleaved — every tuple is delivered
// exactly once, in order, whichever way it is pulled.
type BatchCursor interface {
	Cursor
	NextBatch(b *Batch) bool
}

// keySkipper is implemented by cursors that can advance past a run of
// facts in sub-linear time: SkipTo discards every upcoming tuple whose
// fact key is below k. Scans gallop (exponential probe + binary search
// over the packed (FactID, Ts, Te) order when interned); filters
// forward to their input. The advancer's run-skipping uses it through
// batchSource; operator cursors deliberately do not implement it —
// their output is computed, so "skipping" it would still compute it.
type keySkipper interface {
	SkipTo(k relation.FactKey)
}

// NextBatch fills b with the next sub-window of the scanned relation —
// zero copy: b.Tuples aliases the relation's own storage, and when the
// relation carries a columnar projection the column views alias it the
// same way, so a scan batch costs a handful of slice-header writes
// regardless of size. Consumers must treat the rows as read-only (the
// relation may be shared, e.g. a catalog relation under AssumeSorted).
func (c *ScanCursor) NextBatch(b *Batch) bool {
	n := len(c.r.Tuples) - c.i
	if n <= 0 {
		b.Reset()
		return false
	}
	if max := b.Cap(); n > max {
		n = max
	}
	i, j := c.i, c.i+n
	b.Tuples = c.r.Tuples[i:j]
	if cols := c.cols(); cols != nil {
		b.Fid = cols.Fid[i:j]
		b.Ts = cols.Ts[i:j]
		b.Te = cols.Te[i:j]
		b.Prob = cols.Prob[i:j]
		b.Lam = cols.Lam[i:j]
		b.Dict = c.r.Dict()
	} else if b.Dict != nil || len(b.Fid) > 0 {
		b.dropCols() // a previous alias fill may have left foreign columns
	}
	c.i = j
	return true
}

// SkipTo advances the scan past every tuple whose fact key is below k,
// by galloping: exponential probe to bracket the run, then binary
// search inside the bracket. Over a columnar projection the gallop runs
// on the packed fid column (one int64 load per probe); otherwise on
// interned relations every comparison is still a single integer
// compare, so skipping an absent run of m tuples costs O(log m) instead
// of the O(m) pops of the tuple-at-a-time sweep.
func (c *ScanCursor) SkipTo(k relation.FactKey) {
	if cols := c.cols(); cols != nil {
		if id, ok := k.IDIn(c.r.Dict()); ok {
			c.i += relation.SkipToFid(cols.Fid[c.i:], id)
			return
		}
	}
	c.i += relation.SkipToKey(c.r.Tuples[c.i:], k)
}

// NextBatch drains windows through the operation's λ-filter into the
// output batch until it is full or the operation terminates — the
// advancer runs without surfacing an interface call per tuple, and the
// per-operation termination conditions of Algorithms 2–4 are re-checked
// between windows exactly as in Next. Output rows are interned (they
// inherit the window key's binding), so the batch comes out columnar
// whenever the operation's inputs share one dictionary.
func (c *OpCursor) NextBatch(b *Batch) bool {
	if c.opts.NoSoA {
		return fillBatchRows(b, c.Next)
	}
	return FillBatch(b, c.Next)
}

// tupleAdapter lifts any Cursor to a BatchCursor by filling batches
// through Next — the compatibility shim for cursors outside this
// package that have not grown a native NextBatch.
type tupleAdapter struct{ Cursor }

func (a tupleAdapter) NextBatch(b *Batch) bool {
	return FillBatch(b, a.Next)
}

// AsBatchCursor returns c itself when it already streams batches, and a
// batching adapter over Next otherwise — callers that want blocks
// (engine shard producers, the NDJSON stream) use it to pick batched
// plans transparently.
func AsBatchCursor(c Cursor) BatchCursor {
	if bc, ok := c.(BatchCursor); ok {
		return bc
	}
	return tupleAdapter{c}
}
