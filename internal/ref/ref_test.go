package ref

import (
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

// The oracle itself gets a golden test against the paper's Fig. 3 so that
// the cross-validation suite does not rest on an untested gold standard.
func TestOracleFig3(t *testing.T) {
	a := relation.New(relation.NewSchema("a", "Product"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	a.AddBase(relation.NewFact("chips"), "a2", 4, 7, 0.8)
	a.AddBase(relation.NewFact("dates"), "a3", 1, 3, 0.6)
	c := relation.New(relation.NewSchema("c", "Product"))
	c.AddBase(relation.NewFact("milk"), "c1", 1, 4, 0.6)
	c.AddBase(relation.NewFact("milk"), "c2", 6, 8, 0.7)
	c.AddBase(relation.NewFact("chips"), "c3", 4, 5, 0.7)
	c.AddBase(relation.NewFact("chips"), "c4", 7, 9, 0.8)

	union := Apply(core.OpUnion, a, c)
	if union.Len() != 9 {
		t.Errorf("∪: %d tuples\n%s", union.Len(), union)
	}
	except := Apply(core.OpExcept, a, c)
	if except.Len() != 7 {
		t.Errorf("−: %d tuples\n%s", except.Len(), except)
	}
	intersect := Apply(core.OpIntersect, a, c)
	if intersect.Len() != 3 {
		t.Errorf("∩: %d tuples\n%s", intersect.Len(), intersect)
	}
	// Spot-check one lineage per op.
	find := func(r *relation.Relation, fact string, ts int64) *relation.Tuple {
		for i := range r.Tuples {
			if r.Tuples[i].Key() == fact && r.Tuples[i].T.Ts == ts {
				return &r.Tuples[i]
			}
		}
		t.Fatalf("missing (%s,%d)", fact, ts)
		return nil
	}
	if got := find(union, "milk", 2).Lineage.String(); got != "a1∨c1" {
		t.Errorf("∪ lineage: %s", got)
	}
	if got := find(except, "milk", 6).Lineage.String(); got != "a1∧¬c2" {
		t.Errorf("− lineage: %s", got)
	}
	if got := find(intersect, "chips", 4).Lineage.String(); got != "a2∧c3" {
		t.Errorf("∩ lineage: %s", got)
	}
	// The oracle's outputs satisfy the model invariants too.
	for _, r := range []*relation.Relation{union, except, intersect} {
		if err := r.ValidateDuplicateFree(); err != nil {
			t.Errorf("oracle output: %v", err)
		}
	}
}

func TestOracleEmptyInputs(t *testing.T) {
	e1 := relation.New(relation.NewSchema("e1", "F"))
	e2 := relation.New(relation.NewSchema("e2", "F"))
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("x"), "r1", 1, 4, 0.5)

	if got := Apply(core.OpUnion, e1, e2); got.Len() != 0 {
		t.Error("∪ of empties")
	}
	if got := Apply(core.OpUnion, r, e2); got.Len() != 1 {
		t.Error("∪ with one empty")
	}
	if got := Apply(core.OpIntersect, r, e2); got.Len() != 0 {
		t.Error("∩ with empty")
	}
	if got := Apply(core.OpExcept, r, e2); got.Len() != 1 {
		t.Error("− with empty right")
	}
	if got := Apply(core.OpExcept, e1, r); got.Len() != 0 {
		t.Error("− with empty left")
	}
}
