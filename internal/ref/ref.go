package ref

import (
	"sort"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Apply evaluates op(r, s) per snapshot and coalesces maximal intervals.
func Apply(op core.Op, r, s *relation.Relation) *relation.Relation {
	out := relation.New(relation.Schema{Name: "ref", Attrs: r.Schema.Attrs})

	// Collect the fact universe and, per fact, the sorted tuple lists.
	type factData struct {
		fact relation.Fact
		r, s []relation.Tuple
	}
	facts := make(map[string]*factData)
	ingest := func(rel *relation.Relation, left bool) {
		for i := range rel.Tuples {
			t := rel.Tuples[i]
			fd, ok := facts[t.Key()]
			if !ok {
				fd = &factData{fact: t.Fact}
				facts[t.Key()] = fd
			}
			if left {
				fd.r = append(fd.r, t)
			} else {
				fd.s = append(fd.s, t)
			}
		}
	}
	ingest(r, true)
	ingest(s, false)

	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		fd := facts[k]
		lo, hi, any := domain(fd.r, fd.s)
		if !any {
			continue
		}
		var cur *relation.Tuple
		flush := func() {
			if cur != nil {
				out.Tuples = append(out.Tuples, *cur)
				cur = nil
			}
		}
		for t := lo; t < hi; t++ {
			lr := lineageAt(fd.r, t)
			ls := lineageAt(fd.s, t)
			lam, ok := concat(op, lr, ls)
			if !ok {
				flush()
				continue
			}
			if cur != nil && lineage.EquivalentSyntactic(cur.Lineage, lam) && cur.T.Te == t {
				cur.T.Te = t + 1
				continue
			}
			flush()
			nt := relation.NewDerived(fd.fact, lam, interval.Interval{Ts: t, Te: t + 1})
			cur = &nt
		}
		flush()
	}
	return out
}

// concat applies the operation's lineage-concatenation function and filter
// at a single time point. ok is false when the time point yields no output.
func concat(op core.Op, lr, ls *lineage.Expr) (*lineage.Expr, bool) {
	switch op {
	case core.OpUnion:
		if lr == nil && ls == nil {
			return nil, false
		}
		return lineage.Or(lr, ls), true
	case core.OpIntersect:
		if lr == nil || ls == nil {
			return nil, false
		}
		return lineage.And(lr, ls), true
	default: // core.OpExcept
		if lr == nil {
			return nil, false
		}
		return lineage.AndNot(lr, ls), true
	}
}

func lineageAt(ts []relation.Tuple, t interval.Time) *lineage.Expr {
	for i := range ts {
		if ts[i].T.Contains(t) {
			return ts[i].Lineage
		}
	}
	return nil
}

func domain(a, b []relation.Tuple) (lo, hi interval.Time, any bool) {
	first := true
	scan := func(ts []relation.Tuple) {
		for i := range ts {
			if first {
				lo, hi = ts[i].T.Ts, ts[i].T.Te
				first = false
				continue
			}
			lo = interval.Min(lo, ts[i].T.Ts)
			hi = interval.Max(hi, ts[i].T.Te)
		}
	}
	scan(a)
	scan(b)
	return lo, hi, !first
}
