// Package ref provides a deliberately naive reference implementation of
// the TP set operations, evaluated exactly as Definition 3 of the paper
// states them: per time point, per fact, over the lineages λ_t^{r,f} and
// λ_t^{s,f}, followed by change-preservation coalescing of consecutive
// time points with syntactically equivalent lineage.
//
// Its complexity is O((|r|+|s|) · |ΩT|) — unusable for benchmarks, perfect
// as the gold standard the fast implementations are validated against:
// the cross-validation suites of internal/core, internal/engine and the
// baselines all compare against this package.
//
// Paper map: Def. 3 read literally (snapshot semantics), Def. 2 (change
// preservation). See docs/PAPER_MAP.md.
package ref
