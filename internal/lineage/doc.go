// Package lineage implements the data-lineage Boolean formulas of the
// temporal-probabilistic data model (§II and §V of the paper).
//
// A lineage expression λ is a Boolean formula over base-tuple identifiers
// (Boolean random variables assumed independent) combined with ¬, ∧ and ∨.
// The package provides:
//
//   - construction of formulas, including the three lineage-concatenation
//     functions and/andNot/or of Table I of the paper;
//   - the one-occurrence-form (1OF) test underlying Theorem 1;
//   - probability valuation: a linear-time evaluator that is exact for 1OF
//     formulas (independent subformulas), an exact Shannon-expansion
//     evaluator for arbitrary formulas, a Monte-Carlo estimator, and a
//     possible-worlds enumeration oracle used by the test suite;
//   - a parser for the rendered syntax (with ASCII spellings), used by the
//     query service's JSON codec to round-trip formula structure;
//   - a sound syntactic simplifier (double negation, idempotence,
//     absorption);
//   - canonical (syntactic) rendering used for the change-preservation
//     comparisons, following footnote 1 of the paper: logical equivalence
//     checking is co-NP-complete, so the implementation compares lineage
//     syntactically.
//
// Invariant: expressions are immutable and may share subtrees freely —
// across goroutines too; all constructors reuse their operands without
// copying, so composing lineage during query evaluation is O(1) per
// operation. A nil *Expr is the paper's "null" lineage (no tuple with the
// given fact at a time point).
//
// Paper map: λ of Def. 1; Table I; 1OF and Theorem 1 (§V-A); confidence
// computation (§V-B). See docs/PAPER_MAP.md.
package lineage
