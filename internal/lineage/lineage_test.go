package lineage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func v(id string, p float64) *Expr { return Var(id, p) }

func TestVarValidation(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.0001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Var with p=%v did not panic", p)
				}
			}()
			Var("x", p)
		}()
	}
	if x := Var("x", 1); x.VarProb() != 1 {
		t.Error("p=1 must be allowed (deterministic tuples)")
	}
}

func TestStringRendering(t *testing.T) {
	a, b, c := v("a", 0.5), v("b", 0.5), v("c", 0.5)
	cases := []struct {
		e    *Expr
		want string
	}{
		{a, "a"},
		{Not(a), "¬a"},
		{And(a, b), "a∧b"},
		{Or(a, b), "a∨b"},
		{AndNot(a, Or(b, c)), "a∧¬(b∨c)"},
		{And(And(a, b), c), "a∧b∧c"},
		{Or(a, And(b, c)), "a∨(b∧c)"},
		{And(a, Or(b, c)), "a∧(b∨c)"},
		{Not(And(a, b)), "¬(a∧b)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("got %s, want %s", got, tc.want)
		}
	}
	var nilE *Expr
	if nilE.String() != "null" {
		t.Error("nil must render as null")
	}
}

func TestOneOccurrenceForm(t *testing.T) {
	a, b := v("a", 0.5), v("b", 0.5)
	if !And(a, b).IsOneOccurrence() {
		t.Error("a∧b is 1OF")
	}
	if And(a, a).IsOneOccurrence() {
		t.Error("a∧a is not 1OF")
	}
	if Or(And(a, b), Not(a)).IsOneOccurrence() {
		t.Error("(a∧b)∨¬a is not 1OF")
	}
	deep := And(Or(v("x1", .5), v("x2", .5)), AndNot(v("x3", .5), v("x4", .5)))
	if !deep.IsOneOccurrence() {
		t.Error("variable-disjoint composition must stay 1OF")
	}
}

func TestVarsAndSize(t *testing.T) {
	e := AndNot(v("a", .5), Or(v("b", .5), v("a", .5)))
	vars := e.Vars(nil)
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "b" {
		t.Fatalf("vars: %v", vars)
	}
	if e.NumVarOccurrences() != 3 {
		t.Errorf("occurrences: %d", e.NumVarOccurrences())
	}
	if (*Expr)(nil).Size() != 0 || v("a", .5).Size() != 1 {
		t.Error("size")
	}
}

func TestProb1OF(t *testing.T) {
	a, b, c := v("a", 0.3), v("b", 0.6), v("c", 0.7)
	cases := []struct {
		e    *Expr
		want float64
	}{
		{a, 0.3},
		{Not(a), 0.7},
		{And(a, b), 0.18},
		{Or(a, b), 1 - 0.7*0.4},
		{AndNot(c, Or(a, b)), 0.7 * 0.7 * 0.4},
		{AndNot(c, nil), 0.7},
	}
	for _, tc := range cases {
		if got := tc.e.Prob(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", tc.e, got, tc.want)
		}
	}
	var nilE *Expr
	if nilE.Prob() != 0 {
		t.Error("P(null) must be 0")
	}
}

func TestProbSharedVariables(t *testing.T) {
	a, b := v("a", 0.5), v("b", 0.4)
	// a ∨ (a∧b) ≡ a: exact probability must be 0.5, while the naive
	// independent rules would give 1-(1-.5)(1-.2) = 0.6.
	e := Or(a, And(a, b))
	if got := e.Prob(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(a∨(a∧b)) = %v, want 0.5", got)
	}
	// a ∧ ¬a ≡ false.
	if got := And(a, Not(a)).Prob(); got != 0 {
		t.Errorf("P(a∧¬a) = %v, want 0", got)
	}
	// a ∨ ¬a ≡ true.
	if got := Or(a, Not(a)).Prob(); got != 1 {
		t.Errorf("P(a∨¬a) = %v, want 1", got)
	}
}

// randomExpr builds a random formula over a small variable pool, so shared
// variables are common.
func randomExpr(rng *rand.Rand, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Var([]string{"a", "b", "c", "d", "e"}[rng.Intn(5)], 0.1+0.8*rng.Float64())
	}
	switch rng.Intn(3) {
	case 0:
		return Not(randomExpr(rng, depth-1))
	case 1:
		return And(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	default:
		return Or(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	}
}

// TestProbAgainstPossibleWorlds: the Shannon-expansion evaluator must agree
// with brute-force possible-worlds enumeration. Note: two Vars with the
// same id but different probabilities never arise from real relations (ids
// are unique); the generator reuses probabilities per id via a pool.
func TestProbAgainstPossibleWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := map[string]float64{"a": 0.3, "b": 0.55, "c": 0.7, "d": 0.2, "e": 0.9}
	var build func(depth int) *Expr
	build = func(depth int) *Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			id := []string{"a", "b", "c", "d", "e"}[rng.Intn(5)]
			return Var(id, pool[id])
		}
		switch rng.Intn(3) {
		case 0:
			return Not(build(depth - 1))
		case 1:
			return And(build(depth-1), build(depth-1))
		default:
			return Or(build(depth-1), build(depth-1))
		}
	}
	for i := 0; i < 400; i++ {
		e := build(4)
		exact := e.ProbPossibleWorlds()
		got := e.Prob()
		if math.Abs(got-exact) > 1e-9 {
			t.Fatalf("formula %s: Prob=%v, possible-worlds=%v", e, got, exact)
		}
	}
}

// TestProbMonteCarlo: the estimator converges to the exact value.
func TestProbMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := Or(And(v("a", 0.3), v("b", 0.6)), AndNot(v("c", 0.8), v("a", 0.3)))
	exact := e.ProbPossibleWorlds()
	got := e.ProbMonteCarlo(200000, rng)
	if math.Abs(got-exact) > 0.01 {
		t.Errorf("MC estimate %v too far from exact %v", got, exact)
	}
	var nilE *Expr
	if nilE.ProbMonteCarlo(10, rng) != 0 {
		t.Error("MC on null must be 0")
	}
}

func TestCanonicalEquivalence(t *testing.T) {
	a, b, c := v("a", .5), v("b", .5), v("c", .5)
	cases := []struct {
		x, y *Expr
		want bool
	}{
		{Or(a, b), Or(b, a), true},
		{And(And(a, b), c), And(a, And(b, c)), true},
		{Or(a, Or(b, c)), Or(Or(c, b), a), true},
		{And(a, b), Or(a, b), false},
		{a, b, false},
		{Not(a), a, false},
		{AndNot(a, b), And(a, Not(b)), true}, // same construction
	}
	for _, tc := range cases {
		if got := EquivalentSyntactic(tc.x, tc.y); got != tc.want {
			t.Errorf("EquivalentSyntactic(%s, %s) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
	if !EquivalentSyntactic(nil, nil) || EquivalentSyntactic(a, nil) || EquivalentSyntactic(nil, a) {
		t.Error("nil handling")
	}
	// Footnote 1: syntactic comparison is deliberately weaker than logical
	// equivalence — absorption is NOT detected.
	if EquivalentSyntactic(Or(a, And(a, b)), a) {
		t.Error("syntactic comparison must not perform absorption")
	}
}

func TestTableIConcatFunctions(t *testing.T) {
	a, b := v("a", .5), v("b", .5)
	if AndNot(a, nil) != a || Or(a, nil) != a || Or(nil, b) != b {
		t.Error("null short-circuits of Table I violated")
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { And(nil, b) })
	mustPanic(func() { And(a, nil) })
	mustPanic(func() { Or(nil, nil) })
	mustPanic(func() { AndNot(nil, b) })
	mustPanic(func() { Not(nil) })
}

func TestEvalTruthTable(t *testing.T) {
	a, b := v("a", .5), v("b", .5)
	e := AndNot(a, b) // a ∧ ¬b
	cases := []struct {
		av, bv, want bool
	}{
		{false, false, false},
		{true, false, true},
		{false, true, false},
		{true, true, false},
	}
	for _, tc := range cases {
		got := e.Eval(map[string]bool{"a": tc.av, "b": tc.bv})
		if got != tc.want {
			t.Errorf("eval(a=%v,b=%v) = %v, want %v", tc.av, tc.bv, got, tc.want)
		}
	}
	var nilE *Expr
	if nilE.Eval(nil) {
		t.Error("null evaluates to false")
	}
}

// Property (quick): composing variable-disjoint 1OF formulas with the
// Table I functions preserves 1OF, and the linear evaluator matches the
// Shannon evaluator on them.
func TestQuick1OFComposition(t *testing.T) {
	counter := 0
	f := func(ops []uint8) bool {
		counter++
		rng := rand.New(rand.NewSource(int64(counter)))
		exprs := make([]*Expr, 0, len(ops)+1)
		for i := 0; i <= len(ops)%6; i++ {
			exprs = append(exprs, Var(string(rune('a'+counter%20))+string(rune('0'+i)), 0.2+0.6*rng.Float64()))
		}
		e := exprs[0]
		for i, op := range ops {
			if i+1 >= len(exprs) {
				break
			}
			switch op % 3 {
			case 0:
				e = And(e, exprs[i+1])
			case 1:
				e = Or(e, exprs[i+1])
			default:
				e = AndNot(e, exprs[i+1])
			}
		}
		if !e.IsOneOccurrence() {
			return false
		}
		return math.Abs(e.probIndependent()-e.ProbPossibleWorlds()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProbPossibleWorldsGuard(t *testing.T) {
	// 25 variables exceed the enumeration guard.
	e := Var("v0", .5)
	for i := 1; i < 25; i++ {
		e = Or(e, Var(string(rune('a'+i%26))+string(rune('0'+i/26))+"x", .5))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for > 24 variables")
		}
	}()
	e.ProbPossibleWorlds()
}
