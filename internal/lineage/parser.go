package lineage

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads a lineage formula in the paper's rendered syntax, e.g.
//
//	c1∧¬(a1∨b1)
//
// ASCII operator spellings are accepted too: & or * for ∧, | or + for ∨,
// ! or ~ for ¬, and the word "null" for the null lineage (returned as nil).
// Variable probabilities are resolved through the probs callback, which
// maps a tuple identifier to its marginal probability; it is called once
// per occurrence.
//
// Grammar (precedence low → high):
//
//	or   = and { ("∨" | "|" | "+") and } .
//	and  = not { ("∧" | "&" | "*") not } .
//	not  = { "¬" | "!" | "~" } atom .
//	atom = ident | "(" or ")" .
//
// Parse is the inverse of (*Expr).String up to operator associativity:
// rendering and re-parsing yields a syntactically equivalent formula.
func Parse(input string, probs func(id string) (float64, error)) (*Expr, error) {
	p := &formulaParser{in: strings.TrimSpace(input), probs: probs}
	if p.in == "null" || p.in == "" {
		return nil, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return nil, fmt.Errorf("lineage: unexpected %q at offset %d", p.in[p.pos:], p.pos)
	}
	return e, nil
}

// MustParse is Parse panicking on error, with a constant probability for
// every variable; intended for tests.
func MustParse(input string, p float64) *Expr {
	e, err := Parse(input, func(string) (float64, error) { return p, nil })
	if err != nil {
		panic(err)
	}
	return e
}

type formulaParser struct {
	in    string
	pos   int
	probs func(id string) (float64, error)
}

func (p *formulaParser) skipSpace() {
	for p.pos < len(p.in) {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += sz
	}
}

// peekOp reports whether one of the given operator spellings starts at the
// cursor, consuming it when found.
func (p *formulaParser) acceptOp(ops ...string) bool {
	p.skipSpace()
	for _, op := range ops {
		if strings.HasPrefix(p.in[p.pos:], op) {
			p.pos += len(op)
			return true
		}
	}
	return false
}

func (p *formulaParser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("∨", "|", "+") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *formulaParser) parseAnd() (*Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("∧", "&", "*") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *formulaParser) parseNot() (*Expr, error) {
	if p.acceptOp("¬", "!", "~") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	return p.parseAtom()
}

func (p *formulaParser) parseAtom() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("lineage: unexpected end of formula %q", p.in)
	}
	if p.in[p.pos] == '(' {
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("lineage: missing ')' at offset %d in %q", p.pos, p.in)
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.in) {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.' && r != '-' {
			break
		}
		p.pos += sz
	}
	if p.pos == start {
		return nil, fmt.Errorf("lineage: expected identifier at offset %d in %q", start, p.in)
	}
	id := p.in[start:p.pos]
	if id == "null" {
		return nil, fmt.Errorf("lineage: null is only allowed as the whole formula")
	}
	prob, err := p.probs(id)
	if err != nil {
		return nil, fmt.Errorf("lineage: variable %q: %w", id, err)
	}
	return Var(id, prob), nil
}
