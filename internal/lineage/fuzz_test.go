package lineage

import (
	"testing"
)

// FuzzLineageParse pins the parser/renderer round trip on arbitrary
// input: whatever Parse accepts must render to a string that re-parses
// to a syntactically equivalent formula, and the rendering must be a
// fixpoint (String∘Parse∘String = String). Inputs Parse rejects only
// need to be rejected cleanly — no panic, no acceptance of garbage that
// a re-parse would then mangle.
func FuzzLineageParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"null",
		"x1",
		"x1 ∧ x2",
		"x1 ∨ ¬x2",
		"(a ∨ b) ∧ ¬c",
		"a & b | !c",
		"a * b + ~c",
		"a.b-c_1",
		"((a))",
		"¬¬a",
		"a ∧ b ∧ c ∧ d",
		"a ∨ (b ∧ (c ∨ ¬d))",
		"x ∧",     // truncated: must error
		") a (",   // mangled: must error
		"a ∨ | b", // doubled operator: must error
	} {
		f.Add(seed)
	}
	probs := func(string) (float64, error) { return 0.5, nil }
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<12 {
			return // deep nesting is legal; just keep iterations fast
		}
		e, err := Parse(input, probs)
		if err != nil {
			return // rejected cleanly
		}
		if e == nil {
			return // "null" / blank: the no-lineage marker
		}
		s1 := e.String()
		e2, err := Parse(s1, probs)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", s1, input, err)
		}
		if e2 == nil {
			t.Fatalf("rendering %q of %q re-parsed to nil", s1, input)
		}
		if !EquivalentSyntactic(e, e2) {
			t.Fatalf("round trip changed the formula: %q parsed %q, re-parsed %q",
				input, e.Canonical(), e2.Canonical())
		}
		if s2 := e2.String(); s2 != s1 {
			t.Fatalf("rendering is not a fixpoint: %q -> %q", s1, s2)
		}
	})
}
