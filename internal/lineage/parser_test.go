package lineage

import (
	"errors"
	"math/rand"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // re-rendered form; "" means same as in
	}{
		{"c1", ""},
		{"¬a1", ""},
		{"c1∧¬a1", ""},
		{"c1∧¬(a1∨b1)", ""},
		{"a∧b∧c", ""},
		{"a∨(b∧c)", ""},
		{"(a∨b)∧c", ""},
		{"!a", "¬a"},
		{"a & b | c", "(a∧b)∨c"},
		{"a * b + c", "(a∧b)∨c"},
		{"~ ( a | b )", "¬(a∨b)"},
		{"a∧(b∨¬c)", ""},
	}
	for _, tc := range cases {
		e, err := Parse(tc.in, func(string) (float64, error) { return 0.5, nil })
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q) renders %q, want %q", tc.in, got, want)
		}
	}
}

func TestParseNull(t *testing.T) {
	for _, in := range []string{"null", "", "  "} {
		e, err := Parse(in, func(string) (float64, error) { return 0.5, nil })
		if err != nil || e != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", in, e, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"a∧", "∧a", "(a", "a)", "a b", "¬", "a∧null", "()", "a∨()",
	} {
		if _, err := Parse(in, func(string) (float64, error) { return 0.5, nil }); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
	// Probability resolution failure propagates.
	_, err := Parse("a∧b", func(id string) (float64, error) {
		if id == "b" {
			return 0, errors.New("unknown tuple")
		}
		return 0.5, nil
	})
	if err == nil {
		t.Error("prob resolution error not propagated")
	}
}

// TestParseRoundTrip: render → parse → render is a fixpoint, and the
// canonical forms match, for random formulas.
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	probs := func(string) (float64, error) { return 0.5, nil }
	for i := 0; i < 500; i++ {
		e := randomExpr(rng, 4)
		rendered := e.String()
		back, err := Parse(rendered, probs)
		if err != nil {
			t.Fatalf("round trip of %q: %v", rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("round trip changed %q to %q", rendered, back.String())
		}
		if back.Canonical() != e.Canonical() {
			t.Fatalf("canonical mismatch: %q vs %q", back.Canonical(), e.Canonical())
		}
	}
}

func TestMustParse(t *testing.T) {
	if MustParse("a∧b", 0.5).String() != "a∧b" {
		t.Error("MustParse")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input must panic")
		}
	}()
	MustParse("a∧", 0.5)
}
