package lineage

// Simplification of lineage formulas. The TP set operations compose
// formulas blindly (the paper deliberately avoids equivalence reasoning —
// footnote 1), so repeated queries can accumulate patterns like ¬¬λ,
// λ∧λ or λ∨(λ∧µ). Simplify applies a small set of sound, cheap rewrites:
//
//	¬¬λ            → λ
//	λ∧λ, λ∨λ       → λ           (syntactic idempotence)
//	λ∧(λ∨µ)        → λ           (absorption, syntactic)
//	λ∨(λ∧µ)        → λ
//
// Equality between subformulas is decided by canonical rendering, so the
// rewrites stay polynomial. Simplification never changes the formula's
// possible-worlds semantics — the test suite verifies probability
// preservation on random formulas — but it can make exact valuation
// dramatically cheaper by removing duplicated variables.

// Simplify returns a semantically equivalent, never larger formula. The
// result may share subtrees with the input; neither is mutated.
func Simplify(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	switch e.kind {
	case KindVar:
		return e
	case KindNot:
		in := Simplify(e.left)
		if in.kind == KindNot {
			return in.left // ¬¬λ → λ
		}
		if in == e.left {
			return e
		}
		return Not(in)
	case KindAnd, KindOr:
		l := Simplify(e.left)
		r := Simplify(e.right)
		if canonEqual(l, r) {
			return l // idempotence
		}
		if a, ok := absorb(e.kind, l, r); ok {
			return a
		}
		if l == e.left && r == e.right {
			return e
		}
		if e.kind == KindAnd {
			return And(l, r)
		}
		return Or(l, r)
	}
	return e
}

// absorb applies λ ∧ (λ∨µ) → λ and λ ∨ (λ∧µ) → λ in both operand orders.
func absorb(kind Kind, l, r *Expr) (*Expr, bool) {
	dual := KindOr
	if kind == KindOr {
		dual = KindAnd
	}
	if r.kind == dual && (canonEqual(l, r.left) || canonEqual(l, r.right)) {
		return l, true
	}
	if l.kind == dual && (canonEqual(r, l.left) || canonEqual(r, l.right)) {
		return r, true
	}
	return nil, false
}

func canonEqual(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.varsKey != b.varsKey || a.varsN != b.varsN || a.size != b.size {
		return false
	}
	return a.canonical() == b.canonical()
}
