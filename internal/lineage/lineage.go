package lineage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/tpset/tpset/internal/keys"
)

// vars is the process-wide intern arena for lineage variable names: every
// Expr leaf stores a dense keys.VarID instead of the name string, so
// one-occurrence checks, Shannon-expansion bookkeeping and the XOR
// fingerprint all run on integers. The arena is append-only: it grows
// with every distinct variable name the process ever ingests and never
// shrinks, even when the relations carrying those names are dropped.
// Queries create no new names (operators only combine existing leaves),
// so growth tracks cumulative ingest — a deliberate trade-off that a
// long-lived server with heavy catalog churn over ever-fresh identifier
// sets would eventually need to scope (e.g. per catalog generation).
var vars = keys.NewInterner()

// Kind discriminates the four node types of a lineage expression.
type Kind uint8

// Expression node kinds.
const (
	KindVar Kind = iota
	KindNot
	KindAnd
	KindOr
)

// Expr is an immutable lineage expression. A nil *Expr represents the
// paper's "null" lineage: the absence of any tuple with the given fact at a
// time point.
type Expr struct {
	kind Kind
	// id and prob are set for KindVar nodes: the interned base-tuple
	// identifier and its marginal probability. The name is recovered from
	// the package arena for rendering and the public API.
	id   keys.VarID
	prob float64
	// operands: Not has one, And/Or have exactly two (formulas are built by
	// the binary concatenation functions, as in the paper).
	left, right *Expr

	// Cached derived properties, computed at construction; they make
	// IsOneOccurrence and the linear evaluator O(1) and O(n) respectively.
	size    int  // number of nodes
	varsN   int  // number of variable occurrences
	oneOcc  bool // no variable occurs twice anywhere below this node
	varsKey uint64
}

// Var returns an atomic lineage expression for a base tuple with the given
// identifier and marginal probability p ∈ (0, 1].
func Var(id string, p float64) *Expr {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("lineage: probability %v of %q outside (0,1]", p, id))
	}
	vid := vars.Intern(id)
	return &Expr{kind: KindVar, id: vid, prob: p, size: 1, varsN: 1, oneOcc: true, varsKey: keys.Mix64(uint64(vid))}
}

// Vars returns atomic lineage expressions for a batch of base tuples,
// pairwise equivalent to Var(names[i], probs[i]). The batch interns all
// names under one arena lock and allocates the leaves in one slab, which
// is what keeps mmap-restore cold starts an order of magnitude under CSV
// re-ingest when a segment materializes tens of thousands of leaves.
func Vars(names []string, probs []float64) []*Expr {
	if len(names) != len(probs) {
		panic(fmt.Sprintf("lineage: Vars with %d names, %d probabilities", len(names), len(probs)))
	}
	vids := vars.InternAll(names)
	slab := make([]Expr, len(names))
	out := make([]*Expr, len(names))
	for i, vid := range vids {
		p := probs[i]
		if p <= 0 || p > 1 {
			panic(fmt.Sprintf("lineage: probability %v of %q outside (0,1]", p, names[i]))
		}
		slab[i] = Expr{kind: KindVar, id: vid, prob: p, size: 1, varsN: 1, oneOcc: true, varsKey: keys.Mix64(uint64(vid))}
		out[i] = &slab[i]
	}
	return out
}

// idName resolves the leaf's interned identifier back to its name.
func (e *Expr) idName() string { return vars.Name(e.id) }

// Not returns ¬e. It panics on a nil operand because Table I never negates
// null lineage (andNot(λ1, null) = λ1).
func Not(e *Expr) *Expr {
	if e == nil {
		panic("lineage: Not(nil)")
	}
	return &Expr{kind: KindNot, left: e, size: e.size + 1, varsN: e.varsN, oneOcc: e.oneOcc, varsKey: e.varsKey}
}

func binary(kind Kind, l, r *Expr) *Expr {
	e := &Expr{kind: kind, left: l, right: r, size: l.size + r.size + 1, varsN: l.varsN + r.varsN}
	// The two subformulas are variable-disjoint iff no identifier appears in
	// both. A cheap necessary condition is the XOR-hash being "fresh"; the
	// precise check walks the smaller side. Both sides must themselves be
	// 1OF for the result to be 1OF.
	if l.oneOcc && r.oneOcc {
		e.oneOcc = disjointVars(l, r)
	}
	e.varsKey = l.varsKey ^ r.varsKey
	return e
}

// And returns (l) ∧ (r), the and() function of Table I. Both operands must
// be non-nil: TP set intersection only emits output when both inputs are
// valid.
func And(l, r *Expr) *Expr {
	if l == nil || r == nil {
		panic("lineage: And with nil operand")
	}
	return binary(KindAnd, l, r)
}

// Or returns the or() function of Table I: (l) ∨ (r), or the single non-nil
// operand when the other is null. Both operands nil is an error.
func Or(l, r *Expr) *Expr {
	switch {
	case l == nil && r == nil:
		panic("lineage: Or(nil, nil)")
	case l == nil:
		return r
	case r == nil:
		return l
	}
	return binary(KindOr, l, r)
}

// AndNot returns the andNot() function of Table I: (l) when r is null, and
// (l) ∧ ¬(r) otherwise. l must be non-nil.
func AndNot(l, r *Expr) *Expr {
	if l == nil {
		panic("lineage: AndNot with nil left operand")
	}
	if r == nil {
		return l
	}
	return binary(KindAnd, l, Not(r))
}

// Kind returns the node type.
func (e *Expr) Kind() Kind { return e.kind }

// ID returns the base-tuple identifier of a KindVar node ("" otherwise).
func (e *Expr) ID() string {
	if e.kind != KindVar {
		return ""
	}
	return e.idName()
}

// VarProb returns the marginal probability of a KindVar node.
func (e *Expr) VarProb() float64 { return e.prob }

// Operands returns the children of the node (nil for variables; right is nil
// for negations).
func (e *Expr) Operands() (left, right *Expr) { return e.left, e.right }

// Size returns the number of nodes in the formula.
func (e *Expr) Size() int {
	if e == nil {
		return 0
	}
	return e.size
}

// IsOneOccurrence reports whether the formula is in one-occurrence form
// (1OF): no tuple identifier occurs more than once. Per Theorem 1 of the
// paper, every non-repeating TP set query over duplicate-free relations
// yields 1OF lineage, and 1OF probabilities are computable in linear time.
// The property is cached at construction, so this is O(1).
func (e *Expr) IsOneOccurrence() bool {
	if e == nil {
		return true
	}
	return e.oneOcc
}

// Vars appends the distinct variable identifiers of the formula to dst and
// returns the result, sorted and de-duplicated.
func (e *Expr) Vars(dst []string) []string {
	dst = e.appendVars(dst)
	sort.Strings(dst)
	out := dst[:0]
	for i, v := range dst {
		if i == 0 || dst[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func (e *Expr) appendVars(dst []string) []string {
	if e == nil {
		return dst
	}
	switch e.kind {
	case KindVar:
		return append(dst, e.idName())
	case KindNot:
		return e.left.appendVars(dst)
	default:
		return e.right.appendVars(e.left.appendVars(dst))
	}
}

// NumVarOccurrences returns the number of variable occurrences (leaves).
func (e *Expr) NumVarOccurrences() int {
	if e == nil {
		return 0
	}
	return e.varsN
}

// disjointVars reports whether l and r share no variable identifier. It
// walks the smaller formula into a set and probes with the larger one;
// interned ids make the small case a handful of integer compares and the
// large case an integer-keyed map.
func disjointVars(l, r *Expr) bool {
	small, big := l, r
	if small.varsN > big.varsN {
		small, big = big, small
	}
	if small.varsN <= 8 {
		ids := make([]keys.VarID, 0, 8)
		ids = small.appendVarIDs(ids)
		return !containsAny(big, ids)
	}
	set := make(map[keys.VarID]struct{}, small.varsN)
	collect(small, set)
	return !probes(big, set)
}

func (e *Expr) appendVarIDs(dst []keys.VarID) []keys.VarID {
	switch e.kind {
	case KindVar:
		return append(dst, e.id)
	case KindNot:
		return e.left.appendVarIDs(dst)
	default:
		return e.right.appendVarIDs(e.left.appendVarIDs(dst))
	}
}

func collect(e *Expr, set map[keys.VarID]struct{}) {
	switch e.kind {
	case KindVar:
		set[e.id] = struct{}{}
	case KindNot:
		collect(e.left, set)
	default:
		collect(e.left, set)
		collect(e.right, set)
	}
}

func probes(e *Expr, set map[keys.VarID]struct{}) bool {
	switch e.kind {
	case KindVar:
		_, ok := set[e.id]
		return ok
	case KindNot:
		return probes(e.left, set)
	default:
		return probes(e.left, set) || probes(e.right, set)
	}
}

func containsAny(e *Expr, ids []keys.VarID) bool {
	switch e.kind {
	case KindVar:
		for _, id := range ids {
			if e.id == id {
				return true
			}
		}
		return false
	case KindNot:
		return containsAny(e.left, ids)
	default:
		return containsAny(e.left, ids) || containsAny(e.right, ids)
	}
}

// String renders the formula with the paper's connective symbols, fully
// parenthesized for unambiguity, e.g. "c1∧¬(a1∨b1)".
func (e *Expr) String() string {
	if e == nil {
		return "null"
	}
	var b strings.Builder
	e.render(&b)
	return b.String()
}

func (e *Expr) render(b *strings.Builder) {
	switch e.kind {
	case KindVar:
		b.WriteString(e.idName())
	case KindNot:
		b.WriteString("¬")
		if e.left.kind == KindVar {
			e.left.render(b)
		} else {
			b.WriteByte('(')
			e.left.render(b)
			b.WriteByte(')')
		}
	case KindAnd:
		e.renderChild(b, e.left, KindAnd)
		b.WriteString("∧")
		e.renderChild(b, e.right, KindAnd)
	case KindOr:
		e.renderChild(b, e.left, KindOr)
		b.WriteString("∨")
		e.renderChild(b, e.right, KindOr)
	}
}

func (e *Expr) renderChild(b *strings.Builder, c *Expr, parent Kind) {
	need := false
	switch c.kind {
	case KindAnd, KindOr:
		need = c.kind != parent
	}
	if need {
		b.WriteByte('(')
		c.render(b)
		b.WriteByte(')')
	} else {
		c.render(b)
	}
}

// Canonical returns a canonical syntactic rendering: associativity is
// flattened and operands of ∧/∨ are sorted, so that formulas that differ
// only in operand order or grouping compare equal. This implements the
// paper's footnote 1: change preservation compares lineage syntactically
// rather than solving co-NP-complete equivalence.
func (e *Expr) Canonical() string {
	if e == nil {
		return "null"
	}
	return e.canonical()
}

func (e *Expr) canonical() string {
	switch e.kind {
	case KindVar:
		return e.idName()
	case KindNot:
		return "!(" + e.left.canonical() + ")"
	case KindAnd, KindOr:
		var parts []string
		e.flatten(e.kind, &parts)
		sort.Strings(parts)
		op := "&"
		if e.kind == KindOr {
			op = "|"
		}
		return "(" + strings.Join(parts, op) + ")"
	}
	panic("lineage: unknown kind")
}

func (e *Expr) flatten(kind Kind, parts *[]string) {
	if e.kind == kind {
		e.left.flatten(kind, parts)
		e.right.flatten(kind, parts)
		return
	}
	*parts = append(*parts, e.canonical())
}

// EquivalentSyntactic reports whether a and b have equal canonical
// renderings. Either may be nil.
func EquivalentSyntactic(a, b *Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a == b {
		return true
	}
	if a.varsKey != b.varsKey || a.varsN != b.varsN {
		return false
	}
	return a.canonical() == b.canonical()
}

// Prob computes the marginal probability of the formula under the
// tuple-independence assumption.
//
// For 1OF formulas the linear-time independent-subformula rules apply
// exactly (Corollary 1 of the paper). For non-1OF formulas Prob falls back
// to exact Shannon expansion, which is exponential in the number of shared
// variables in the worst case (the problem is #P-hard in general, see
// Khanna et al.). Use ProbMonteCarlo for large repeating queries.
func (e *Expr) Prob() float64 {
	if e == nil {
		return 0
	}
	if e.oneOcc {
		return e.probIndependent()
	}
	return e.probShannon(make(map[keys.VarID]bool))
}

// probIndependent evaluates assuming all subformulas of every connective are
// independent, which holds exactly when the formula is 1OF.
func (e *Expr) probIndependent() float64 {
	switch e.kind {
	case KindVar:
		return e.prob
	case KindNot:
		return 1 - e.left.probIndependent()
	case KindAnd:
		return e.left.probIndependent() * e.right.probIndependent()
	default: // KindOr
		pl := e.left.probIndependent()
		pr := e.right.probIndependent()
		return 1 - (1-pl)*(1-pr)
	}
}

// probShannon performs Shannon expansion on the most frequent unassigned
// variable: P(λ) = p(v)·P(λ[v:=true]) + (1−p(v))·P(λ[v:=false]).
// assign holds the current partial assignment, keyed by interned id.
func (e *Expr) probShannon(assign map[keys.VarID]bool) float64 {
	v, p, shared := e.mostFrequentSharedVar(assign)
	if !shared {
		// Every remaining variable occurs once: residual evaluation under
		// the partial assignment uses the independent rules.
		pr, known := e.evalPartial(assign)
		if known {
			if pr {
				return 1
			}
			return 0
		}
		return e.probPartialIndependent(assign)
	}
	assign[v] = true
	pt := e.probShannon(assign)
	assign[v] = false
	pf := e.probShannon(assign)
	delete(assign, v)
	return p*pt + (1-p)*pf
}

// mostFrequentSharedVar returns the unassigned variable with the highest
// occurrence count if that count is >= 2. Equal counts tie-break on the
// variable *name* (not the interned id), so the expansion order — and
// with it the floating-point rounding of the result — is exactly the
// pre-interning one regardless of interning order.
func (e *Expr) mostFrequentSharedVar(assign map[keys.VarID]bool) (keys.VarID, float64, bool) {
	counts := make(map[keys.VarID]int)
	probs := make(map[keys.VarID]float64)
	e.countVars(assign, counts, probs)
	var best keys.VarID
	bestN := 0
	for v, n := range counts {
		if n > bestN || (n == bestN && vars.Name(v) < vars.Name(best)) {
			best, bestN = v, n
		}
	}
	if bestN >= 2 {
		return best, probs[best], true
	}
	return 0, 0, false
}

func (e *Expr) countVars(assign map[keys.VarID]bool, counts map[keys.VarID]int, probs map[keys.VarID]float64) {
	switch e.kind {
	case KindVar:
		if _, done := assign[e.id]; !done {
			counts[e.id]++
			probs[e.id] = e.prob
		}
	case KindNot:
		e.left.countVars(assign, counts, probs)
	default:
		e.left.countVars(assign, counts, probs)
		e.right.countVars(assign, counts, probs)
	}
}

// evalPartial attempts to decide the formula under the partial assignment.
// known is true when the truth value no longer depends on free variables.
func (e *Expr) evalPartial(assign map[keys.VarID]bool) (value, known bool) {
	switch e.kind {
	case KindVar:
		v, ok := assign[e.id]
		return v, ok
	case KindNot:
		v, ok := e.left.evalPartial(assign)
		return !v, ok
	case KindAnd:
		lv, lk := e.left.evalPartial(assign)
		rv, rk := e.right.evalPartial(assign)
		if lk && !lv || rk && !rv {
			return false, true
		}
		return lv && rv, lk && rk
	default: // KindOr
		lv, lk := e.left.evalPartial(assign)
		rv, rk := e.right.evalPartial(assign)
		if lk && lv || rk && rv {
			return true, true
		}
		return lv || rv, lk && rk
	}
}

// probPartialIndependent evaluates probability treating assigned variables
// as constants and the remaining (pairwise-distinct) variables as
// independent.
func (e *Expr) probPartialIndependent(assign map[keys.VarID]bool) float64 {
	switch e.kind {
	case KindVar:
		if v, ok := assign[e.id]; ok {
			if v {
				return 1
			}
			return 0
		}
		return e.prob
	case KindNot:
		return 1 - e.left.probPartialIndependent(assign)
	case KindAnd:
		return e.left.probPartialIndependent(assign) * e.right.probPartialIndependent(assign)
	default:
		pl := e.left.probPartialIndependent(assign)
		pr := e.right.probPartialIndependent(assign)
		return 1 - (1-pl)*(1-pr)
	}
}

// Eval returns the truth value of the formula under a complete assignment of
// its variables. Missing variables default to false.
func (e *Expr) Eval(assign map[string]bool) bool {
	if e == nil {
		return false
	}
	m := make(map[keys.VarID]bool, len(assign))
	for name, v := range assign {
		if id, ok := vars.Lookup(name); ok {
			m[id] = v
		}
	}
	return e.evalID(m)
}

// evalID is Eval over an interned assignment; missing ids are false.
func (e *Expr) evalID(assign map[keys.VarID]bool) bool {
	switch e.kind {
	case KindVar:
		return assign[e.id]
	case KindNot:
		return !e.left.evalID(assign)
	case KindAnd:
		return e.left.evalID(assign) && e.right.evalID(assign)
	default:
		return e.left.evalID(assign) || e.right.evalID(assign)
	}
}

// RNG is the minimal random source needed by ProbMonteCarlo; *rand.Rand
// satisfies it.
type RNG interface {
	Float64() float64
}

// ProbMonteCarlo estimates the marginal probability with n independent
// possible-world samples. The standard error is at most 0.5/sqrt(n).
// Sampling iterates variables in sorted-name order (not interning order),
// so a fixed RNG seed reproduces the same worlds across processes.
func (e *Expr) ProbMonteCarlo(n int, rng RNG) float64 {
	if e == nil {
		return 0
	}
	ids, probs := e.sortedVarIDs()
	assign := make(map[keys.VarID]bool, len(ids))
	hits := 0
	for i := 0; i < n; i++ {
		for j, id := range ids {
			assign[id] = rng.Float64() < probs[j]
		}
		if e.evalID(assign) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// sortedVarIDs returns the distinct variable ids of the formula in
// sorted-name order, with the matching marginal probabilities.
func (e *Expr) sortedVarIDs() ([]keys.VarID, []float64) {
	names := e.Vars(nil)
	ids := make([]keys.VarID, len(names))
	probs := make([]float64, len(names))
	pm := make(map[keys.VarID]float64, len(names))
	e.varProbsID(pm)
	for i, name := range names {
		id, _ := vars.Lookup(name) // every formula variable is interned
		ids[i] = id
		probs[i] = pm[id]
	}
	return ids, probs
}

func (e *Expr) varProbsID(probs map[keys.VarID]float64) {
	switch e.kind {
	case KindVar:
		probs[e.id] = e.prob
	case KindNot:
		e.left.varProbsID(probs)
	default:
		e.left.varProbsID(probs)
		e.right.varProbsID(probs)
	}
}

// VarProbs records the marginal probability of every variable occurring
// in the formula into probs (id → marginal). A nil receiver is a no-op.
// The query service's wire codec ships these alongside rendered formulas
// so the lineage parser can reconstruct them.
func (e *Expr) VarProbs(probs map[string]float64) {
	if e == nil {
		return
	}
	e.varProbs(probs)
}

func (e *Expr) varProbs(probs map[string]float64) {
	switch e.kind {
	case KindVar:
		probs[e.idName()] = e.prob
	case KindNot:
		e.left.varProbs(probs)
	default:
		e.left.varProbs(probs)
		e.right.varProbs(probs)
	}
}

// ProbPossibleWorlds computes the exact marginal probability by enumerating
// all 2^k possible worlds of the formula's k variables. It is the oracle
// used by the test suite and panics when k > 24.
func (e *Expr) ProbPossibleWorlds() float64 {
	if e == nil {
		return 0
	}
	ids, probs := e.sortedVarIDs()
	if len(ids) > 24 {
		panic(fmt.Sprintf("lineage: possible-worlds enumeration over %d variables", len(ids)))
	}
	assign := make(map[keys.VarID]bool, len(ids))
	total := 0.0
	for world := 0; world < 1<<uint(len(ids)); world++ {
		wp := 1.0
		for i, id := range ids {
			on := world&(1<<uint(i)) != 0
			assign[id] = on
			if on {
				wp *= probs[i]
			} else {
				wp *= 1 - probs[i]
			}
		}
		if wp == 0 {
			continue
		}
		if e.evalID(assign) {
			total += wp
		}
	}
	if total > 1 {
		// Guard against floating-point accumulation slightly above 1.
		total = math.Min(total, 1)
	}
	return total
}
