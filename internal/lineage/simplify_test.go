package lineage

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyRules(t *testing.T) {
	a, b := v("a", 0.5), v("b", 0.4)
	cases := []struct {
		in   *Expr
		want string
	}{
		{Not(Not(a)), "a"},
		{Not(Not(Not(a))), "¬a"},
		{And(a, a), "a"},
		{Or(a, a), "a"},
		{And(a, Or(a, b)), "a"},
		{And(a, Or(b, a)), "a"},
		{Or(a, And(a, b)), "a"},
		{Or(And(b, a), a), "a"},
		{And(a, b), "a∧b"},               // no rule applies
		{AndNot(a, b), "a∧¬b"},           // untouched
		{Or(Not(Not(a)), b), "a∨b"},      // rewrite inside
		{And(Or(a, b), Or(a, b)), "a∨b"}, // idempotence on composites
	}
	for _, tc := range cases {
		if got := Simplify(tc.in).String(); got != tc.want {
			t.Errorf("Simplify(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if Simplify(nil) != nil {
		t.Error("nil")
	}
}

func TestSimplifySharing(t *testing.T) {
	a, b := v("a", 0.5), v("b", 0.4)
	e := And(a, b)
	if Simplify(e) != e {
		t.Error("irreducible formulas must be returned unchanged (same pointer)")
	}
}

// TestSimplifyPreservesSemantics: random formulas keep their exact
// possible-worlds probability, and never grow.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := map[string]float64{"a": 0.3, "b": 0.55, "c": 0.7, "d": 0.2}
	var build func(depth int) *Expr
	build = func(depth int) *Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			id := []string{"a", "b", "c", "d"}[rng.Intn(4)]
			return Var(id, pool[id])
		}
		switch rng.Intn(3) {
		case 0:
			return Not(build(depth - 1))
		case 1:
			return And(build(depth-1), build(depth-1))
		default:
			return Or(build(depth-1), build(depth-1))
		}
	}
	for i := 0; i < 500; i++ {
		e := build(5)
		s := Simplify(e)
		if s.Size() > e.Size() {
			t.Fatalf("simplify grew %s (%d) to %s (%d)", e, e.Size(), s, s.Size())
		}
		pe, ps := e.ProbPossibleWorlds(), s.ProbPossibleWorlds()
		if math.Abs(pe-ps) > 1e-9 {
			t.Fatalf("simplify changed semantics: %s (%v) vs %s (%v)", e, pe, s, ps)
		}
	}
}

// TestSimplifyCanRestore1OF: the duplicated-variable patterns produced by
// repeating queries collapse back into 1OF where absorption applies.
func TestSimplifyCanRestore1OF(t *testing.T) {
	a, b := v("a", 0.5), v("b", 0.4)
	e := Or(a, And(a, b)) // not 1OF
	if e.IsOneOccurrence() {
		t.Fatal("setup")
	}
	s := Simplify(e)
	if !s.IsOneOccurrence() || s.String() != "a" {
		t.Fatalf("simplified to %s", s)
	}
}
