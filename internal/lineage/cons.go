package lineage

// Cons is a hash-consing table over the lineage DAG: And/Or/Not/AndNot
// mirror the package-level concatenation functions of Table I, but
// identical applications — same operand pointers, same connective —
// return the same *Expr node instead of allocating a fresh one. Because
// Expr is immutable and the constructors are deterministic, the consed
// node is indistinguishable from a fresh one (same rendering, same
// canonical form, same probability), so consed and unconsed plans stay
// bit-identical; what changes is that the shared ∧/∨/¬ subterms a
// stacked query re-derives — e.g. the same pair of valid-tuple lineages
// recombined window after window, or ¬λs re-built under two difference
// operators over one input — dedupe into one DAG node.
//
// Keys are operand *pointers*, not structural hashes: the execution
// stack already shares subterm pointers (relations clone tuple structs
// but share lineage trees; windows carry the valid tuples' pointers),
// so pointer identity is exactly the sharing the sweep produces, and a
// lookup is one map probe with no tree walk.
//
// A Cons is NOT safe for concurrent use. The intended scope is one
// table per single-goroutine cursor plan (core.Options.LineageCons;
// query.BuildCursor seeds one per plan, the engine one per shard), so
// no locking is needed and the table's lifetime — and growth — is
// bounded by one query execution. A nil *Cons is valid and falls back
// to the plain constructors, allocating as before.
type Cons struct {
	nots map[*Expr]*Expr
	bins map[binKey]*Expr
	hits uint64
}

// binKey identifies one application of a binary connective.
type binKey struct {
	kind Kind
	l, r *Expr
}

// NewCons returns an empty hash-consing table; maps are allocated
// lazily on first insert.
func NewCons() *Cons { return &Cons{} }

// Hits returns the number of lookups that returned an existing node —
// the dedup rate the steady-state allocation tests pin.
func (c *Cons) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits
}

// Size returns the number of consed nodes in the table.
func (c *Cons) Size() int {
	if c == nil {
		return 0
	}
	return len(c.nots) + len(c.bins)
}

func (c *Cons) binary(kind Kind, l, r *Expr) *Expr {
	k := binKey{kind: kind, l: l, r: r}
	if e, ok := c.bins[k]; ok {
		c.hits++
		return e
	}
	e := binary(kind, l, r)
	if c.bins == nil {
		c.bins = make(map[binKey]*Expr, 16)
	}
	c.bins[k] = e
	return e
}

// And is the consed form of And.
func (c *Cons) And(l, r *Expr) *Expr {
	if c == nil {
		return And(l, r)
	}
	if l == nil || r == nil {
		panic("lineage: And with nil operand")
	}
	return c.binary(KindAnd, l, r)
}

// Or is the consed form of Or; the single-operand short-circuits of
// Table I return the operand itself, exactly like the plain function.
func (c *Cons) Or(l, r *Expr) *Expr {
	if c == nil {
		return Or(l, r)
	}
	switch {
	case l == nil && r == nil:
		panic("lineage: Or(nil, nil)")
	case l == nil:
		return r
	case r == nil:
		return l
	}
	return c.binary(KindOr, l, r)
}

// Not is the consed form of Not.
func (c *Cons) Not(e *Expr) *Expr {
	if c == nil {
		return Not(e)
	}
	if e == nil {
		panic("lineage: Not(nil)")
	}
	if x, ok := c.nots[e]; ok {
		c.hits++
		return x
	}
	x := Not(e)
	if c.nots == nil {
		c.nots = make(map[*Expr]*Expr, 16)
	}
	c.nots[e] = x
	return x
}

// AndNot is the consed form of AndNot: l when r is null, and
// l ∧ ¬r otherwise — with both the negation and the conjunction drawn
// from the table, so andNot over a repeated pair allocates nothing.
func (c *Cons) AndNot(l, r *Expr) *Expr {
	if c == nil {
		return AndNot(l, r)
	}
	if l == nil {
		panic("lineage: AndNot with nil left operand")
	}
	if r == nil {
		return l
	}
	return c.binary(KindAnd, l, c.Not(r))
}
