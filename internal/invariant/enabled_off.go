//go:build !tpinvariants

package invariant

// Enabled reports (as a compile-time constant) whether the assertion
// layer is compiled in. Constant false lets the compiler delete every
// check body and every `if invariant.Enabled`-guarded call site from
// release builds.
const Enabled = false
