// Package invariant is the build-tag assertion layer: machine-checked
// forms of the execution stack's algorithmic preconditions (Algorithms
// 1–4 assume duplicate-free inputs sorted by (fact, Ts)) and of the SoA
// representation contracts (a columnar projection mirrors its rows
// element-for-element; a pooled batch's capacity account matches its
// backing storage).
//
// The checks are compiled in only under the tpinvariants build tag:
//
//	go test -tags tpinvariants ./...
//
// Without the tag, Enabled is the constant false, every helper body is
// `if !Enabled { return }`-guarded, and the compiler eliminates the
// checks entirely — callers on hot paths additionally guard the call
// site with `if invariant.Enabled` so even argument evaluation
// disappears from release builds. A violated invariant panics with a
// diagnostic naming the check site: these are programming errors, not
// runtime conditions, and the tagged CI lane exists to catch them the
// moment a change breaks an assumption some other layer relies on.
package invariant

import (
	"fmt"

	"github.com/tpset/tpset/internal/relation"
)

// violate panics with a uniform diagnostic. site names the checkpoint
// (e.g. "core.NewAdvancer(r)"), so a tagged-test failure points at the
// layer whose precondition broke, not just the data.
func violate(site, format string, args ...any) {
	panic(fmt.Sprintf("invariant violation at %s: %s", site, fmt.Sprintf(format, args...)))
}

// Assertf panics with the formatted diagnostic unless cond holds.
// No-op (and fully eliminated) without the tpinvariants tag.
func Assertf(cond bool, site, format string, args ...any) {
	if !Enabled || cond {
		return
	}
	violate(site, format, args...)
}

// CheckSorted asserts the canonical (fact, Ts, Te) order — the sort
// precondition of the Algorithm 1 sweep and of every merge.
func CheckSorted(r *relation.Relation, site string) {
	if !Enabled || r == nil {
		return
	}
	if !r.IsSorted() {
		violate(site, "relation %q (%d tuples) is not in canonical (fact, Ts) order", r.Schema.Name, r.Len())
	}
}

// CheckDuplicateFree asserts the duplicate-free precondition: no fact
// carries overlapping or adjacent intervals (Definition 1 well-
// formedness, assumed by Algorithms 2–4).
func CheckDuplicateFree(r *relation.Relation, site string) {
	if !Enabled || r == nil {
		return
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		violate(site, "relation %q is not duplicate-free: %v", r.Schema.Name, err)
	}
}

// CheckColsMirror asserts the SoA contract on a relation: a cached
// columnar projection mirrors the row payload element-for-element.
func CheckColsMirror(r *relation.Relation, site string) {
	if !Enabled || r == nil {
		return
	}
	c := r.Cols()
	if c == nil {
		return // no valid projection: nothing to mirror
	}
	n := r.Len()
	if len(c.Fid) != n || len(c.Ts) != n || len(c.Te) != n || len(c.Prob) != n || len(c.Lam) != n {
		violate(site, "relation %q: column lengths (%d/%d/%d/%d/%d) do not mirror %d rows",
			r.Schema.Name, len(c.Fid), len(c.Ts), len(c.Te), len(c.Prob), len(c.Lam), n)
	}
	dict := r.Dict()
	for i := 0; i < n; i++ {
		t := &r.Tuples[i]
		if c.Ts[i] != t.T.Ts || c.Te[i] != t.T.Te || c.Prob[i] != t.Prob || c.Lam[i] != t.Lineage {
			violate(site, "relation %q: column row %d diverges from tuple row %d", r.Schema.Name, i, i)
		}
		ck, tk := relation.KeyIn(dict, c.Fid[i]), t.FactKeyRO()
		if ck.Less(tk) || tk.Less(ck) {
			violate(site, "relation %q: fid column row %d does not mirror the tuple's fact", r.Schema.Name, i)
		}
	}
}
