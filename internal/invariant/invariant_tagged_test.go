//go:build tpinvariants

package invariant

import (
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

// mustPanic runs fn and asserts it panics with a diagnostic containing
// both the site name and want — the two halves a tagged-lane failure
// needs to be actionable.
func mustPanic(t *testing.T, site, want string, fn func()) {
	t.Helper()
	defer func() {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		if !strings.Contains(msg, "invariant violation at "+site) || !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not name site %q and cause %q", msg, site, want)
		}
	}()
	fn()
}

func TestEnabledOn(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the tpinvariants tag")
	}
}

func TestAssertf(t *testing.T) {
	Assertf(true, "test.site", "should not fire")
	mustPanic(t, "test.site", "n=3", func() {
		Assertf(false, "test.site", "n=%d", 3)
	})
}

func TestCheckSorted(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("b"), "r1", 5, 9, 0.5)
	r.AddBase(relation.NewFact("a"), "r2", 1, 3, 0.5)
	mustPanic(t, "test.sorted", "not in canonical", func() {
		CheckSorted(r, "test.sorted")
	})
	r.Sort()
	CheckSorted(r, "test.sorted")
	CheckSorted(nil, "test.sorted") // nil relation: nothing to check
}

func TestCheckDuplicateFree(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("a"), "r1", 1, 6, 0.5)
	r.AddBase(relation.NewFact("a"), "r2", 4, 9, 0.5)
	r.Sort()
	mustPanic(t, "test.dup", "not duplicate-free", func() {
		CheckDuplicateFree(r, "test.dup")
	})
	clean := relation.New(relation.NewSchema("r", "F"))
	clean.AddBase(relation.NewFact("a"), "r1", 1, 3, 0.5)
	clean.AddBase(relation.NewFact("a"), "r2", 4, 9, 0.5)
	clean.Sort()
	CheckDuplicateFree(clean, "test.dup")
}

func TestCheckColsMirror(t *testing.T) {
	build := func() *relation.Relation {
		r := relation.New(relation.NewSchema("r", "F"))
		r.AddBase(relation.NewFact("a"), "r1", 1, 3, 0.5)
		r.AddBase(relation.NewFact("b"), "r2", 2, 6, 0.7)
		r.Intern()
		r.Sort()
		r.BuildCols()
		return r
	}

	CheckColsMirror(build(), "test.mirror") // fresh projection mirrors
	CheckColsMirror(nil, "test.mirror")

	// A relation without a cached projection has nothing to mirror.
	bare := relation.New(relation.NewSchema("r", "F"))
	bare.AddBase(relation.NewFact("a"), "r1", 1, 3, 0.5)
	CheckColsMirror(bare, "test.mirror")

	// Mutating a row behind the projection's back is exactly the
	// corruption the check exists to catch.
	r := build()
	r.Tuples[0].Prob = 0.99
	mustPanic(t, "test.mirror", "diverges", func() {
		CheckColsMirror(r, "test.mirror")
	})

	r = build()
	r.Tuples[1].T.Te = 42
	mustPanic(t, "test.mirror", "diverges", func() {
		CheckColsMirror(r, "test.mirror")
	})
}
