//go:build !tpinvariants

package invariant

import (
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

// Without the tag every check must be a no-op: the same corrupt inputs
// that panic the tagged lane pass through untouched, so release builds
// carry zero assertion cost or risk.
func TestDisabledChecksAreNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the tpinvariants tag")
	}

	Assertf(false, "test.site", "must not fire untagged")

	unsorted := relation.New(relation.NewSchema("r", "F"))
	unsorted.AddBase(relation.NewFact("b"), "r1", 5, 9, 0.5)
	unsorted.AddBase(relation.NewFact("a"), "r2", 1, 3, 0.5)
	CheckSorted(unsorted, "test.site")

	dup := relation.New(relation.NewSchema("r", "F"))
	dup.AddBase(relation.NewFact("a"), "r1", 1, 6, 0.5)
	dup.AddBase(relation.NewFact("a"), "r2", 4, 9, 0.5)
	dup.Sort()
	CheckDuplicateFree(dup, "test.site")

	torn := relation.New(relation.NewSchema("r", "F"))
	torn.AddBase(relation.NewFact("a"), "r1", 1, 3, 0.5)
	torn.Intern()
	torn.Sort()
	torn.BuildCols()
	torn.Tuples[0].Prob = 0.99
	CheckColsMirror(torn, "test.site")
}
