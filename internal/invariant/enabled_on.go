//go:build tpinvariants

package invariant

// Enabled reports (as a compile-time constant) whether the assertion
// layer is compiled in. This file provides the tagged build's value.
const Enabled = true
