package keys

import (
	"sort"
	"sync"
)

// FactID is the dense interned identifier of a fact key within one Dict.
// IDs are ranks over the sorted key set, so for two ids of the same
// dictionary id(a) < id(b) ⇔ key(a) < key(b): comparing FactIDs is
// comparing fact keys.
type FactID uint64

// Dict is an immutable, order-preserving fact dictionary: every distinct
// fact key maps to its rank in the sorted key set. Because the mapping is
// monotone, the canonical tuple order (fact key, Ts, Te) collapses to a
// three-integer compare (FactID, Ts, Te) for tuples interned against the
// same Dict — the property the sort, advancer, k-way merge and
// fact-hash partitioning hot paths rely on.
//
// A Dict is built once over a closed key set (ingest, catalog admission,
// operator prepare) and never mutated, so it is safe for concurrent use
// without locking. Growing the key set means building a new Dict; a Dict
// covering a superset of the keys actually present stays valid (binding
// only requires presence, and monotonicity is unaffected by unused keys).
type Dict struct {
	ids  map[string]FactID
	keys []string // rank → key, sorted ascending
}

// BuildDict returns the dictionary over the given keys (duplicates are
// fine; the input slice is not retained or modified).
func BuildDict(ks []string) *Dict {
	sorted := make([]string, len(ks))
	copy(sorted, ks)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, k := range sorted {
		if i == 0 || sorted[i-1] != k {
			out = append(out, k)
		}
	}
	d := &Dict{ids: make(map[string]FactID, len(out)), keys: out}
	for i, k := range out {
		d.ids[k] = FactID(i)
	}
	return d
}

// ID returns the id of key and whether the dictionary contains it.
func (d *Dict) ID(key string) (FactID, bool) {
	id, ok := d.ids[key]
	return id, ok
}

// Key returns the fact key of id. It panics on an id that is not a rank
// of this dictionary — ids are only meaningful against the Dict that
// assigned them.
func (d *Dict) Key(id FactID) string { return d.keys[id] }

// Len returns the number of distinct keys.
func (d *Dict) Len() int { return len(d.keys) }

// Keys returns the sorted key set. The returned slice is shared and must
// not be modified.
func (d *Dict) Keys() []string { return d.keys }

// Contains reports whether every key of ks is in the dictionary.
func (d *Dict) Contains(ks []string) bool {
	for _, k := range ks {
		if _, ok := d.ids[k]; !ok {
			return false
		}
	}
	return true
}

// Mix64 is the splitmix64 finalizer: it spreads dense interned ids over
// the full 64-bit space, so XOR fingerprints keep their discriminating
// power and modulo-shards assignments stay balanced.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// VarID is the interned identifier of a lineage variable name. Unlike
// FactID it carries no ordering semantics — lineage variables are only
// ever compared for equality (one-occurrence checks, Shannon expansion
// assignments) — so ids are assigned in first-come order and the arena
// can grow forever without invalidating earlier ids.
type VarID uint32

// Interner is a concurrency-safe append-only intern arena for lineage
// variable names: the same name always yields the same VarID, and names
// are recovered by index for rendering. Lookups after warm-up take the
// read lock only.
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]VarID
	names []string
}

// NewInterner returns an empty arena.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]VarID)}
}

// Intern returns the id of name, assigning the next id on first sight.
func (in *Interner) Intern(name string) VarID {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[name]; ok {
		return id
	}
	id = VarID(len(in.names))
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the id of name without interning it.
func (in *Interner) Lookup(name string) (VarID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the name interned as id.
func (in *Interner) Name(id VarID) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.names[id]
}

// Len returns the number of interned names.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
