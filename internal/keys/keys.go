package keys

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FactID is the dense interned identifier of a fact key within one Dict.
// IDs are ranks over the sorted key set, so for two ids of the same
// dictionary id(a) < id(b) ⇔ key(a) < key(b): comparing FactIDs is
// comparing fact keys.
type FactID uint64

// Dict is an immutable, order-preserving fact dictionary: every distinct
// fact key maps to its rank in the sorted key set. Because the mapping is
// monotone, the canonical tuple order (fact key, Ts, Te) collapses to a
// three-integer compare (FactID, Ts, Te) for tuples interned against the
// same Dict — the property the sort, advancer, k-way merge and
// fact-hash partitioning hot paths rely on.
//
// A Dict is built once over a closed key set (ingest, catalog admission,
// operator prepare) and never mutated, so it is safe for concurrent use
// without locking. Growing the key set means building a new Dict; a Dict
// covering a superset of the keys actually present stays valid (binding
// only requires presence, and monotonicity is unaffected by unused keys).
type Dict struct {
	ids  map[string]FactID
	keys []string // rank → key, sorted ascending
}

// BuildDict returns the dictionary over the given keys (duplicates are
// fine; the input slice is not retained or modified).
func BuildDict(ks []string) *Dict {
	sorted := make([]string, len(ks))
	copy(sorted, ks)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, k := range sorted {
		if i == 0 || sorted[i-1] != k {
			out = append(out, k)
		}
	}
	d := &Dict{ids: make(map[string]FactID, len(out)), keys: out}
	for i, k := range out {
		d.ids[k] = FactID(i)
	}
	return d
}

// FromSorted returns the dictionary over ks, which must be strictly
// ascending (sorted, duplicate-free). The slice is retained as the
// rank→key table, so the caller must not modify it afterwards. This is
// the deserialization entry point: a segment file stores the key table
// in rank order, so rebuilding its dictionary needs no re-sort — ids
// are the positions the keys already occupy. It panics on out-of-order
// input: a caller that cannot guarantee the order must use BuildDict.
func FromSorted(ks []string) *Dict {
	d := &Dict{ids: make(map[string]FactID, len(ks)), keys: ks}
	for i, k := range ks {
		if i > 0 && ks[i-1] >= k {
			panic(fmt.Sprintf("keys: FromSorted input not strictly ascending at index %d", i))
		}
		d.ids[k] = FactID(i)
	}
	return d
}

// ID returns the id of key and whether the dictionary contains it.
func (d *Dict) ID(key string) (FactID, bool) {
	id, ok := d.ids[key]
	return id, ok
}

// Key returns the fact key of id. It panics on an id that is not a rank
// of this dictionary — ids are only meaningful against the Dict that
// assigned them.
func (d *Dict) Key(id FactID) string { return d.keys[id] }

// Len returns the number of distinct keys.
func (d *Dict) Len() int { return len(d.keys) }

// Keys returns the sorted key set. The returned slice is shared and must
// not be modified.
func (d *Dict) Keys() []string { return d.keys }

// Contains reports whether every key of ks is in the dictionary.
func (d *Dict) Contains(ks []string) bool {
	for _, k := range ks {
		if _, ok := d.ids[k]; !ok {
			return false
		}
	}
	return true
}

// Mix64 is the splitmix64 finalizer: it spreads dense interned ids over
// the full 64-bit space, so XOR fingerprints keep their discriminating
// power and modulo-shards assignments stay balanced.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// VarID is the interned identifier of a lineage variable name. Unlike
// FactID it carries no ordering semantics — lineage variables are only
// ever compared for equality (one-occurrence checks, Shannon expansion
// assignments) — so ids are assigned in first-come order and the arena
// can grow forever without invalidating earlier ids.
type VarID uint32

// Interner is a concurrency-safe append-only intern arena for lineage
// variable names: the same name always yields the same VarID, and names
// are recovered by index for rendering. Lookups after warm-up take the
// read lock only.
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]VarID
	names []string
}

// NewInterner returns an empty arena.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]VarID)}
}

// Intern returns the id of name, assigning the next id on first sight.
// The arena owns its names: a novel name is copied in, so callers may
// pass transient views (e.g. strings aliasing a memory mapping).
func (in *Interner) Intern(name string) VarID {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.internLocked(name)
}

func (in *Interner) internLocked(name string) VarID {
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := VarID(len(in.names))
	name = strings.Clone(name)
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// InternAll interns every name in one arena transaction and returns the
// ids positionally. Equivalent to calling Intern per name, but takes the
// write lock once — the decode side of segment restore interns tens of
// thousands of variable names back-to-back, where per-call lock traffic
// would dominate. Like Intern, novel names are copied into the arena.
func (in *Interner) InternAll(names []string) []VarID {
	ids := make([]VarID, len(names))
	in.mu.Lock()
	defer in.mu.Unlock()
	// When the batch dominates the arena — a segment's worth of novel
	// names landing in one restore — rebuild the index presized for the
	// union instead of paying incremental rehash growth per insert.
	if len(names) > len(in.ids) {
		m := make(map[string]VarID, len(in.ids)+len(names))
		for k, v := range in.ids {
			m[k] = v
		}
		in.ids = m
	}
	for i, name := range names {
		ids[i] = in.internLocked(name)
	}
	return ids
}

// Lookup returns the id of name without interning it.
func (in *Interner) Lookup(name string) (VarID, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the name interned as id.
func (in *Interner) Name(id VarID) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.names[id]
}

// Len returns the number of interned names.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
