package keys

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestDictOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ks []string
	for i := 0; i < 500; i++ {
		ks = append(ks, fmt.Sprintf("k%04d", rng.Intn(200)))
	}
	d := BuildDict(ks)
	if !sort.StringsAreSorted(d.Keys()) {
		t.Fatal("dict keys not sorted")
	}
	for i := 0; i < len(ks); i++ {
		for j := 0; j < len(ks); j++ {
			a, okA := d.ID(ks[i])
			b, okB := d.ID(ks[j])
			if !okA || !okB {
				t.Fatalf("missing key %q or %q", ks[i], ks[j])
			}
			if (a < b) != (ks[i] < ks[j]) || (a == b) != (ks[i] == ks[j]) {
				t.Fatalf("order not preserved: id(%q)=%d id(%q)=%d", ks[i], a, ks[j], b)
			}
		}
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := BuildDict([]string{"b", "a", "b", "c"})
	if d.Len() != 3 {
		t.Fatalf("Len=%d, want 3", d.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		id, ok := d.ID(k)
		if !ok || d.Key(id) != k {
			t.Fatalf("round trip of %q failed (id=%d ok=%v)", k, id, ok)
		}
	}
	if _, ok := d.ID("z"); ok {
		t.Fatal("ID of absent key reported ok")
	}
	if !d.Contains([]string{"a", "c"}) || d.Contains([]string{"a", "z"}) {
		t.Fatal("Contains wrong")
	}
}

func TestInternerStableAndConcurrent(t *testing.T) {
	in := NewInterner()
	a := in.Intern("x1")
	if b := in.Intern("x1"); b != a {
		t.Fatalf("re-intern changed id: %d vs %d", a, b)
	}
	if in.Name(a) != "x1" {
		t.Fatalf("Name(%d)=%q", a, in.Name(a))
	}
	if _, ok := in.Lookup("nope"); ok {
		t.Fatal("Lookup invented an id")
	}

	var wg sync.WaitGroup
	ids := make([][]VarID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]VarID, 100)
			for i := 0; i < 100; i++ {
				ids[g][i] = in.Intern(fmt.Sprintf("v%d", i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned v%d as %d, goroutine 0 as %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	if in.Len() != 101 { // x1 + v0..v99
		t.Fatalf("Len=%d, want 101", in.Len())
	}
}
