// Package keys is the interning/key-codec layer of the execution stack:
// dictionaries that map variable-length string identity — fact keys and
// lineage variable names — onto dense integers, so that the hot paths of
// the LAWA pipeline (sorting, window advancing, k-way merging, fact-hash
// partitioning, one-occurrence checks) run on integer compares instead of
// string compares.
//
// Two codecs with different contracts live here:
//
//   - Dict / FactID: immutable and order-preserving (ids are ranks over
//     the sorted key set), because facts are ordered — the canonical
//     (fact, Ts, Te) tuple order of the paper's sort step must survive the
//     translation bit-identically.
//   - Interner / VarID: append-only and unordered, because lineage
//     variables are only compared for equality.
//
// The layer is wired through every consumer: package relation binds
// tuples to a Dict and compares via relation.FactKey, package core
// threads interned keys through windows and operator cursors, package
// engine partitions and merges on FactID, the query service's catalog
// maintains one superset Dict across all admitted relations, and csvio /
// datagen construct ids at ingest.
package keys
