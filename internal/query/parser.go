package query

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/tpset/tpset/internal/core"
)

// Parse parses the surface syntax of TP set queries:
//
//	query    = term { ("|" | "union") term } .
//	term     = factor { ("&" | "intersect" | "-" | "except") factor } .
//	factor   = ident | "(" query ")" | "sigma" "[" ident "=" value "]" "(" query ")" .
//	value    = "'" chars "'" | ident .
//
// "|", "&" and "-" are ∪Tp, ∩Tp and −Tp. "&" and "-" associate left and
// bind tighter than "|", mirroring conventional set-expression precedence;
// parentheses override. Example: the paper's Fig. 1 query is
//
//	c - (a | b)
func Parse(input string) (Node, error) {
	p := &parser{toks: lex(input)}
	n, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("query: unexpected %q after complete query", p.peek().text)
	}
	return n, nil
}

// MustParse is Parse panicking on error; intended for tests and constants.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

// IsIdent reports whether s can name a relation in the surface grammar: a
// non-empty run of letters, digits, underscores and (non-leading) dots
// that is not a reserved word. The query service validates catalog names
// with this, so every admitted relation is actually referenceable from a
// query ("my-rel" would lex as "my - rel", and "union" is an operator).
func IsIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || (r == '.' && i > 0) {
			continue
		}
		return false
	}
	switch strings.ToLower(s) {
	case "union", "intersect", "except", "minus", "sigma":
		return false
	}
	return true
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokOp            // | & -
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokEquals
	tokValue // quoted literal
	tokEOF
	tokErr
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) []token {
	var toks []token
	i := 0
	emit := func(k tokKind, s string, pos int) { toks = append(toks, token{k, s, pos}) }
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '[':
			emit(tokLBracket, "[", i)
			i++
		case c == ']':
			emit(tokRBracket, "]", i)
			i++
		case c == '=':
			emit(tokEquals, "=", i)
			i++
		case c == '|' || c == '&' || c == '-':
			emit(tokOp, string(c), i)
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				emit(tokErr, "unterminated string literal", i)
				return toks
			}
			emit(tokValue, input[i+1:j], i)
			i = j + 1
		case unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_':
			j := i
			for j < len(input) {
				r := rune(input[j])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '.' {
					break
				}
				j++
			}
			word := input[i:j]
			switch strings.ToLower(word) {
			case "union":
				emit(tokOp, "|", i)
			case "intersect":
				emit(tokOp, "&", i)
			case "except", "minus":
				emit(tokOp, "-", i)
			default:
				emit(tokIdent, word, i)
			}
			i = j
		default:
			emit(tokErr, fmt.Sprintf("unexpected character %q", c), i)
			return toks
		}
	}
	emit(tokEOF, "", len(input))
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("query: expected %s at offset %d, found %q", what, t.pos, t.text)
	}
	return t, nil
}

// parseQuery handles the lowest-precedence operator, union.
func (p *parser) parseQuery() (Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "|" {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Op: opFromText("|"), Left: left, Right: right}
	}
	return left, nil
}

// parseTerm handles intersection and difference (equal precedence,
// left-associative).
func (p *parser) parseTerm() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "&" || p.peek().text == "-") {
		op := p.next().text
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Op: opFromText(op), Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokErr:
		return nil, fmt.Errorf("query: %s at offset %d", t.text, t.pos)
	case tokLParen:
		n, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return n, nil
	case tokIdent:
		if strings.EqualFold(t.text, "sigma") {
			return p.parseSelect()
		}
		return &Rel{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("query: expected relation, '(' or sigma at offset %d, found %q", t.pos, t.text)
	}
}

// parseSelect parses sigma[attr='value'](query).
func (p *parser) parseSelect() (Node, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals, "'='"); err != nil {
		return nil, err
	}
	val := p.next()
	if val.kind != tokValue && val.kind != tokIdent {
		return nil, fmt.Errorf("query: expected value at offset %d, found %q", val.pos, val.text)
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	in, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &Select{Attr: attr.text, Value: val.text, Input: in}, nil
}

func opFromText(s string) core.Op {
	switch s {
	case "|":
		return core.OpUnion
	case "&":
		return core.OpIntersect
	default:
		return core.OpExcept
	}
}
