package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

// Node is a node of a TP set query tree.
type Node interface {
	// String renders the subquery with the paper's operator symbols.
	String() string
	// relations appends the relation names referenced below this node.
	relations(dst []string) []string
}

// Rel references a named input relation.
type Rel struct{ Name string }

// SetOp combines two subqueries with a TP set operation.
type SetOp struct {
	Op          core.Op
	Left, Right Node
}

// Select filters a subquery by equality on one conventional attribute
// (σ[Attr=Value]). Selection commutes with the set operations and keeps
// relations duplicate-free.
type Select struct {
	Attr  string
	Value string
	Input Node
}

func (r *Rel) String() string { return r.Name }
func (q *SetOp) String() string {
	return fmt.Sprintf("(%s %s %s)", q.Left, q.Op, q.Right)
}
func (s *Select) String() string {
	return fmt.Sprintf("σ[%s='%s'](%s)", s.Attr, s.Value, s.Input)
}

func (r *Rel) relations(dst []string) []string { return append(dst, r.Name) }
func (q *SetOp) relations(dst []string) []string {
	return q.Right.relations(q.Left.relations(dst))
}
func (s *Select) relations(dst []string) []string { return s.Input.relations(dst) }

// Relations returns the distinct relation names referenced by the query,
// sorted.
func Relations(n Node) []string {
	all := n.relations(nil)
	sort.Strings(all)
	out := all[:0]
	for i, v := range all {
		if i == 0 || all[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// IsNonRepeating reports whether every input relation occurs at most once
// in the query. By Theorem 1, non-repeating queries over duplicate-free
// relations produce lineage in one-occurrence form, and by Corollary 1 they
// have PTIME data complexity.
func IsNonRepeating(n Node) bool {
	all := n.relations(nil)
	seen := make(map[string]struct{}, len(all))
	for _, name := range all {
		if _, dup := seen[name]; dup {
			return false
		}
		seen[name] = struct{}{}
	}
	return true
}

// Complexity classifies the query per §V-B.
type Complexity int

// Complexity classes of TP set queries.
const (
	// PTime: non-repeating query; lineage is 1OF and confidence
	// computation is linear per output tuple.
	PTime Complexity = iota
	// SharpPHard: at least one relation repeats; exact confidence
	// computation is #P-hard in general (Khanna et al. 2011).
	SharpPHard
)

func (c Complexity) String() string {
	if c == PTime {
		return "PTIME (non-repeating, 1OF lineage)"
	}
	return "#P-hard in general (repeating subgoals)"
}

// Classify returns the data-complexity class of the query.
func Classify(n Node) Complexity {
	if IsNonRepeating(n) {
		return PTime
	}
	return SharpPHard
}

// Algorithm selects the execution strategy of the evaluator.
type Algorithm string

// Available execution algorithms. LAWA supports all operations; the
// baselines cover the subsets of Table II and exist for comparison.
const (
	AlgoLAWA Algorithm = "lawa"
	AlgoNorm Algorithm = "norm"
)

// Evaluate executes the query over the named relations in db using LAWA.
func Evaluate(n Node, db map[string]*relation.Relation) (*relation.Relation, error) {
	return EvaluateWith(n, db, AlgoLAWA)
}

// EvaluateWith executes the query with the chosen algorithm. When a
// parallel evaluator has been registered (see RegisterParallelEvaluator)
// and the package-level default parallelism is above one, LAWA queries are
// routed through the partition-parallel execution engine instead of the
// strictly sequential post-order walk below.
func EvaluateWith(n Node, db map[string]*relation.Relation, algo Algorithm) (*relation.Relation, error) {
	if algo == AlgoLAWA {
		if eval, workers := parallelEvaluator(); eval != nil && workers > 1 {
			return eval(n, db, workers)
		}
	}
	return evaluateSequential(n, db, algo)
}

func evaluateSequential(n Node, db map[string]*relation.Relation, algo Algorithm) (*relation.Relation, error) {
	switch q := n.(type) {
	case *Rel:
		r, ok := db[q.Name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q (have %s)",
				q.Name, strings.Join(DBKeys(db), ", "))
		}
		return r, nil
	case *Select:
		in, err := evaluateSequential(q.Input, db, algo)
		if err != nil {
			return nil, err
		}
		return applySelect(q, in)
	case *SetOp:
		l, err := evaluateSequential(q.Left, db, algo)
		if err != nil {
			return nil, err
		}
		r, err := evaluateSequential(q.Right, db, algo)
		if err != nil {
			return nil, err
		}
		switch algo {
		case AlgoNorm:
			return applyNorm(q.Op, l, r)
		default:
			return core.Apply(q.Op, l, r, core.Options{})
		}
	}
	return nil, fmt.Errorf("query: unknown node type %T", n)
}

// ApplySelect applies a selection node to a materialized relation. It is
// exported for the partition-parallel execution engine, which walks query
// trees itself but reuses this package's selection semantics.
func ApplySelect(q *Select, in *relation.Relation) (*relation.Relation, error) {
	return applySelect(q, in)
}

func applySelect(q *Select, in *relation.Relation) (*relation.Relation, error) {
	idx := -1
	for i, a := range in.Schema.Attrs {
		if a == q.Attr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("query: relation %q has no attribute %q (have %s)",
			in.Schema.Name, q.Attr, strings.Join(in.Schema.Attrs, ", "))
	}
	out := relation.New(in.Schema)
	for i := range in.Tuples {
		t := &in.Tuples[i]
		if idx < len(t.Fact) && t.Fact[idx] == q.Value {
			out.Tuples = append(out.Tuples, *t)
		}
	}
	return out, nil
}

// DBKeys returns the sorted relation names of a query database; shared
// with the engine's tree executor so "unknown relation" errors render the
// available names identically everywhere.
func DBKeys(db map[string]*relation.Relation) []string {
	ks := make([]string, 0, len(db))
	for k := range db {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
