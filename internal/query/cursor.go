package query

import (
	"fmt"
	"strings"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Cursor plan building: a query tree compiles into a tree of core.Cursor
// values — relation scans at the leaves, selection filters and streaming
// set-operation cursors above them — that evaluates the whole query in
// O(tree depth) additional memory. The advancer of every set operation
// pulls directly from its children's streams; no node materializes an
// intermediate relation. Draining the root cursor (EvaluateCursor) yields
// output bit-identical to the materializing evaluator: same tuples, same
// lineage, same probabilities, same canonical order.

// BuildCursor compiles the query into a streaming cursor plan over the
// named relations in db. All plan errors (unknown relation, incompatible
// schemas, unknown attribute) surface here, at build time: cursors
// themselves cannot fail. Options apply to every set operation of the
// tree; AssumeSorted refers to the db's leaf relations — when unset,
// every leaf is cloned and sorted at build time (streams themselves are
// always sorted by the cursor ordering invariant). Validate checks each
// referenced leaf for duplicate-freeness once.
//
// When opts.Span is set, the plan is built traced: the span is labeled
// with this node's operator, one child span is hung under it per
// sub-plan, and every cursor is wrapped so pulls record per-operator
// stats (core.Traced). The traced plan's output is bit-identical to the
// untraced one. With a nil Span no wrapper exists anywhere in the tree.
func BuildCursor(n Node, db map[string]*relation.Relation, opts core.Options) (core.Cursor, error) {
	if opts.LineageCons == nil && countSetOps(n) > 1 {
		// One hash-consing table per plan: every OpCursor of the tree
		// draws its lineage concatenations from it, so subterms shared
		// across operators — stacked operations recombining one input's
		// lineages, repeated subtrees — dedupe into one DAG node. A
		// single-operation plan deliberately gets none: within one
		// operation over duplicate-free inputs no concatenation recurs,
		// so the table would grow per window and never hit. opts is
		// passed by value, so the seeded table flows down the recursion
		// but never escapes to the caller.
		opts.LineageCons = lineage.NewCons()
	}
	sp := opts.Span
	switch q := n.(type) {
	case *Rel:
		r, ok := db[q.Name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q (have %s)",
				q.Name, strings.Join(DBKeys(db), ", "))
		}
		if opts.Validate {
			if err := r.ValidateDuplicateFree(); err != nil {
				return nil, err
			}
		}
		if !opts.AssumeSorted {
			r = r.Clone()
			r.Sort()
			if !opts.NoSoA {
				// The clone is plan-private and sorted: project it into
				// columns so the scan aliases packed columns into its
				// batches (AssumeSorted leaves are the caller's — catalog
				// admission builds their columns once at bind time).
				r.BuildCols()
			}
		}
		if sp != nil {
			sp.SetOp("scan(" + q.Name + ")")
		}
		sc := core.NewScanCursor(r)
		if opts.NoSoA {
			sc.DisableCols()
		}
		return core.Traced(sc, sp), nil
	case *Select:
		childOpts := opts
		if sp != nil {
			childOpts.Span = sp.NewChild("")
		}
		in, err := BuildCursor(q.Input, db, childOpts)
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		idx := -1
		for i, a := range schema.Attrs {
			if a == q.Attr {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("query: relation %q has no attribute %q (have %s)",
				schema.Name, q.Attr, strings.Join(schema.Attrs, ", "))
		}
		if sp != nil {
			sp.SetOp(fmt.Sprintf("σ[%s=%s]", q.Attr, q.Value))
		}
		return core.Traced(&selectCursor{in: in, idx: idx, value: q.Value, noCols: opts.NoSoA}, sp), nil
	case *SetOp:
		lOpts, rOpts := opts, opts
		if sp != nil {
			lOpts.Span = sp.NewChild("")
			rOpts.Span = sp.NewChild("")
		}
		l, err := BuildCursor(q.Left, db, lOpts)
		if err != nil {
			return nil, err
		}
		r, err := BuildCursor(q.Right, db, rOpts)
		if err != nil {
			return nil, err
		}
		oc, err := core.NewOpCursor(q.Op, l, r, opts)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			sp.SetOp(q.Op.String())
		}
		return core.Traced(oc, sp), nil
	}
	return nil, fmt.Errorf("query: unknown node type %T", n)
}

// countSetOps counts the set-operation nodes of a query tree — the
// seeding condition for the plan-wide lineage hash-consing table.
func countSetOps(n Node) int {
	switch q := n.(type) {
	case *Select:
		return countSetOps(q.Input)
	case *SetOp:
		return 1 + countSetOps(q.Left) + countSetOps(q.Right)
	}
	return 0
}

// EvaluateCursor executes the query through a cursor plan and
// materializes only the final result — the streaming counterpart of
// EvaluateWith(n, db, AlgoLAWA).
func EvaluateCursor(n Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	c, err := BuildCursor(n, db, opts)
	if err != nil {
		return nil, err
	}
	return core.Materialize(c), nil
}

// selectCursor streams σ[Attr=Value] over its input. Filtering preserves
// order and duplicate-freeness, so the cursor ordering invariant holds
// trivially. It is batch-capable: input blocks are filtered into the
// output batch (matches copied out, so downstream owns its tuples), and
// SkipTo forwards run-skipping to the input — a selection commutes with
// skipping because it only ever drops tuples.
type selectCursor struct {
	in    core.Cursor
	idx   int
	value string
	// noCols pins output batches to the payload view (Options.NoSoA).
	noCols bool

	// buf/bi buffer the current input block on the batched path; Next
	// serves any buffered remainder first so tuple- and batch-pulls can
	// interleave without loss or duplication. done marks input
	// exhaustion, after which the pooled block has been returned and
	// buf holds an empty placeholder.
	buf  *core.Batch
	bi   int
	done bool
}

func (c *selectCursor) Schema() relation.Schema { return c.in.Schema() }

// ReleaseCursor hands the buffered input block back to the pool (the
// drain path already swapped in an empty placeholder, which the pool
// drops) and forwards the teardown to the input plan.
func (c *selectCursor) ReleaseCursor() {
	if c.buf != nil && !c.done {
		core.PutBatch(c.buf)
		c.buf = &core.Batch{}
	}
	c.done = true
	core.ReleaseCursor(c.in)
}

func (c *selectCursor) Next() (relation.Tuple, bool) {
	for {
		t, ok := c.nextInput()
		if !ok {
			return relation.Tuple{}, false
		}
		if c.idx < len(t.Fact) && t.Fact[c.idx] == c.value {
			return t, true
		}
	}
}

// nextInput returns the next input tuple, draining the buffered block
// before falling back to the input cursor (whose position the block
// pulls have already advanced).
func (c *selectCursor) nextInput() (relation.Tuple, bool) {
	if c.buf != nil && c.bi < len(c.buf.Tuples) {
		t := c.buf.Tuples[c.bi]
		c.bi++
		return t, true
	}
	return c.in.Next()
}

// NextBatch filters input blocks into b until b is full or the input is
// exhausted.
func (c *selectCursor) NextBatch(b *core.Batch) bool {
	bin, ok := c.in.(core.BatchCursor)
	if !ok {
		return core.FillBatch(b, c.Next)
	}
	b.Reset()
	if c.buf == nil && !c.done {
		c.buf = core.GetBatch()
	}
	for len(b.Tuples) < b.Cap() {
		if c.buf == nil || c.bi >= len(c.buf.Tuples) {
			if c.done || !bin.NextBatch(c.buf) {
				if !c.done {
					// Input exhausted: hand the pooled block back (cf.
					// batchSource) and keep an empty placeholder so the
					// tuple path and SkipTo stay nil-safe.
					c.done = true
					core.PutBatch(c.buf)
					c.buf = &core.Batch{}
				}
				break
			}
			c.bi = 0
		}
		t := &c.buf.Tuples[c.bi]
		c.bi++
		if c.idx < len(t.Fact) && t.Fact[c.idx] == c.value {
			if c.noCols {
				b.AppendRow(*t)
			} else {
				b.Append(*t)
			}
		}
	}
	return len(b.Tuples) > 0
}

// SkipTo discards buffered and upcoming input tuples below k, galloping
// over the buffered block and delegating the rest to a skip-capable
// input (scans; nested selections).
func (c *selectCursor) SkipTo(k relation.FactKey) {
	if c.buf != nil && c.bi < len(c.buf.Tuples) {
		c.bi += relation.SkipToKey(c.buf.Tuples[c.bi:], k)
		if c.bi < len(c.buf.Tuples) {
			return
		}
	}
	if sk, ok := c.in.(interface{ SkipTo(relation.FactKey) }); ok {
		sk.SkipTo(k)
	}
}
