package query

import (
	"fmt"
	"strings"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

// Cursor plan building: a query tree compiles into a tree of core.Cursor
// values — relation scans at the leaves, selection filters and streaming
// set-operation cursors above them — that evaluates the whole query in
// O(tree depth) additional memory. The advancer of every set operation
// pulls directly from its children's streams; no node materializes an
// intermediate relation. Draining the root cursor (EvaluateCursor) yields
// output bit-identical to the materializing evaluator: same tuples, same
// lineage, same probabilities, same canonical order.

// BuildCursor compiles the query into a streaming cursor plan over the
// named relations in db. All plan errors (unknown relation, incompatible
// schemas, unknown attribute) surface here, at build time: cursors
// themselves cannot fail. Options apply to every set operation of the
// tree; AssumeSorted refers to the db's leaf relations — when unset,
// every leaf is cloned and sorted at build time (streams themselves are
// always sorted by the cursor ordering invariant). Validate checks each
// referenced leaf for duplicate-freeness once.
func BuildCursor(n Node, db map[string]*relation.Relation, opts core.Options) (core.Cursor, error) {
	switch q := n.(type) {
	case *Rel:
		r, ok := db[q.Name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q (have %s)",
				q.Name, strings.Join(DBKeys(db), ", "))
		}
		if opts.Validate {
			if err := r.ValidateDuplicateFree(); err != nil {
				return nil, err
			}
		}
		if !opts.AssumeSorted {
			r = r.Clone()
			r.Sort()
		}
		return core.NewScanCursor(r), nil
	case *Select:
		in, err := BuildCursor(q.Input, db, opts)
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		idx := -1
		for i, a := range schema.Attrs {
			if a == q.Attr {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("query: relation %q has no attribute %q (have %s)",
				schema.Name, q.Attr, strings.Join(schema.Attrs, ", "))
		}
		return &selectCursor{in: in, idx: idx, value: q.Value}, nil
	case *SetOp:
		l, err := BuildCursor(q.Left, db, opts)
		if err != nil {
			return nil, err
		}
		r, err := BuildCursor(q.Right, db, opts)
		if err != nil {
			return nil, err
		}
		return core.NewOpCursor(q.Op, l, r, opts)
	}
	return nil, fmt.Errorf("query: unknown node type %T", n)
}

// EvaluateCursor executes the query through a cursor plan and
// materializes only the final result — the streaming counterpart of
// EvaluateWith(n, db, AlgoLAWA).
func EvaluateCursor(n Node, db map[string]*relation.Relation, opts core.Options) (*relation.Relation, error) {
	c, err := BuildCursor(n, db, opts)
	if err != nil {
		return nil, err
	}
	return core.Materialize(c), nil
}

// selectCursor streams σ[Attr=Value] over its input. Filtering preserves
// order and duplicate-freeness, so the cursor ordering invariant holds
// trivially.
type selectCursor struct {
	in    core.Cursor
	idx   int
	value string
}

func (c *selectCursor) Schema() relation.Schema { return c.in.Schema() }

func (c *selectCursor) Next() (relation.Tuple, bool) {
	for {
		t, ok := c.in.Next()
		if !ok {
			return relation.Tuple{}, false
		}
		if c.idx < len(t.Fact) && t.Fact[c.idx] == c.value {
			return t, true
		}
	}
}
