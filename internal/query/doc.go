// Package query implements TP set queries (Def. 4 of the paper): arbitrary
// expressions of TP set operators over a set of named TP relations,
//
//	Q ::= r | Q ∪Tp Q | Q ∩Tp Q | Q −Tp Q | (Q) | σ[A=v](Q)
//
// (selection is an extension beyond Def. 4; the paper itself uses it in
// Fig. 6). The package provides:
//
//   - a parser for a plain-ASCII surface syntax ("c - (a | b)") and its
//     inverse, Canonical, a deterministic re-parseable rendering — the
//     query-service result cache keys on the canonical form, so spelling
//     variants of one query share a cache entry;
//   - a static analyzer classifying queries as non-repeating (⇒ 1OF
//     lineage and PTIME data complexity, Theorem 1 and Corollary 1) or
//     repeating (#P-hard in general);
//   - the selection push-down rewriter (selections commute with all three
//     TP set operations);
//   - an evaluator with pluggable execution algorithms, plus the
//     registration hook through which the partition-parallel engine
//     replaces the sequential post-order walk (the indirection breaks the
//     query→engine→query import cycle);
//   - the cursor plan builder (BuildCursor/EvaluateCursor): a query tree
//     compiles into a tree of core.Cursor values that evaluates in
//     O(tree depth) memory with no intermediate relations, bit-identical
//     to the materializing evaluator.
//
// Invariant: Node trees are immutable after parsing; rewrites build new
// trees. Evaluation never mutates input relations.
//
// Paper map: Def. 4 (queries), §V-A Theorem 1/Corollary 1 (non-repeating
// analysis), §V-B (complexity classes), Fig. 6 (selection). See
// docs/PAPER_MAP.md.
package query
