package query

import (
	"github.com/tpset/tpset/internal/baseline/norm"
	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

// applyNorm executes one set operation with the NORM baseline. It exists so
// that end-to-end query results can be cross-checked between algorithms.
func applyNorm(op core.Op, l, r *relation.Relation) (*relation.Relation, error) {
	return norm.Apply(op, l, r), nil
}
