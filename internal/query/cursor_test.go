package query_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// randomDB builds k random duplicate-free relations over a small shared
// fact pool, in the style of internal/core's cross-validation machinery:
// the distribution exercises gaps, adjacency, containment and
// exact-boundary coincidences.
func randomDB(rng *rand.Rand, k, maxTuples int) map[string]*relation.Relation {
	facts := []string{"alpha", "beta", "gamma", "delta"}
	db := make(map[string]*relation.Relation, k)
	for ri := 0; ri < k; ri++ {
		name := fmt.Sprintf("r%d", ri)
		rel := relation.New(relation.NewSchema(name, "F"))
		n := 1 + rng.Intn(maxTuples)
		cursors := make(map[string]interval.Time)
		for i := 0; i < n; i++ {
			f := facts[rng.Intn(len(facts))]
			ts := cursors[f] + interval.Time(rng.Intn(4))
			te := ts + 1 + interval.Time(rng.Intn(5))
			cursors[f] = te
			rel.AddBase(relation.NewFact(f), fmt.Sprintf("%s_%d", name, i), ts, te, 0.05+0.9*rng.Float64())
		}
		rel.Sort()
		db[name] = rel
	}
	return db
}

// randomTree builds a random query tree of the given leaf count over the
// db's relation names, with occasional selections sprinkled in.
func randomTree(rng *rand.Rand, names []string, leaves int) query.Node {
	var build func(leaves int) query.Node
	build = func(leaves int) query.Node {
		var n query.Node
		if leaves <= 1 {
			n = &query.Rel{Name: names[rng.Intn(len(names))]}
		} else {
			l := 1 + rng.Intn(leaves-1)
			n = &query.SetOp{
				Op:    core.Op(rng.Intn(3)),
				Left:  build(l),
				Right: build(leaves - l),
			}
		}
		if rng.Intn(4) == 0 {
			vals := []string{"alpha", "beta", "gamma", "delta"}
			n = &query.Select{Attr: "F", Value: vals[rng.Intn(len(vals))], Input: n}
		}
		return n
	}
	return build(leaves)
}

// requireBitIdentical asserts that two relations are identical tuple for
// tuple, in order — same facts, intervals, rendered lineage and
// bit-equal probabilities — which is strictly stronger than
// relation.Equal's order-insensitive comparison.
func requireBitIdentical(t *testing.T, ctx string, got, want *relation.Relation) {
	t.Helper()
	if got.Schema.Name != want.Schema.Name {
		t.Fatalf("%s: schema %q, want %q", ctx, got.Schema.Name, want.Schema.Name)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: cardinality %d, want %d\ngot=%s\nwant=%s", ctx, got.Len(), want.Len(), got, want)
	}
	for i := range want.Tuples {
		g, w := &got.Tuples[i], &want.Tuples[i]
		if !g.Fact.Equal(w.Fact) || g.T != w.T ||
			g.Lineage.String() != w.Lineage.String() || g.Prob != w.Prob {
			t.Fatalf("%s: tuple %d: got %s, want %s", ctx, i, g, w)
		}
	}
}

// TestCursorExecutorMatchesEvaluator cross-validates the streaming cursor
// executor against the materializing evaluator on ~100 randomized query
// trees: the output must be bit-identical — same tuples, same lineage,
// same probabilities, same canonical order.
func TestCursorExecutorMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 120; trial++ {
		db := randomDB(rng, 2+rng.Intn(4), 14)
		names := query.DBKeys(db)
		tree := randomTree(rng, names, 1+rng.Intn(5))
		want, err := query.EvaluateWith(tree, db, query.AlgoLAWA)
		if err != nil {
			t.Fatalf("trial %d (%s): evaluator: %v", trial, tree, err)
		}
		got, err := query.EvaluateCursor(tree, db, core.Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): cursor: %v", trial, tree, err)
		}
		requireBitIdentical(t, fmt.Sprintf("trial %d (%s)", trial, tree), got, want)

		// AssumeSorted over the pre-sorted db must agree too (the query
		// service path).
		got2, err := query.EvaluateCursor(tree, db, core.Options{AssumeSorted: true})
		if err != nil {
			t.Fatalf("trial %d (%s): cursor assume-sorted: %v", trial, tree, err)
		}
		requireBitIdentical(t, fmt.Sprintf("trial %d assume-sorted (%s)", trial, tree), got2, want)
	}
}

// TestCursorLazyProbMatchesEvaluator pins the LazyProb knob: the cursor
// path must leave probabilities unvaluated exactly like the drivers do.
func TestCursorLazyProbMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 3, 12)
		tree := randomTree(rng, query.DBKeys(db), 3)
		got, err := query.EvaluateCursor(tree, db, core.Options{LazyProb: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Tuples {
			tp := &got.Tuples[i]
			if _, isOp := tree.(*query.SetOp); isOp && tp.Prob != 0 {
				t.Fatalf("trial %d: lazy tuple %d carries probability %v", trial, i, tp.Prob)
			}
		}
		eager, err := query.EvaluateCursor(tree, db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got.ComputeProbs()
		requireBitIdentical(t, fmt.Sprintf("trial %d lazy+ComputeProbs (%s)", trial, tree), got, eager)
	}
}

// TestBuildCursorErrors pins the build-time error surface: unknown
// relations and unknown selection attributes fail at plan construction,
// with the evaluator's error text.
func TestBuildCursorErrors(t *testing.T) {
	db := randomDB(rand.New(rand.NewSource(50)), 2, 5)
	if _, err := query.BuildCursor(&query.Rel{Name: "zz"}, db, core.Options{}); err == nil {
		t.Fatal("unknown relation must fail at build time")
	}
	sel := &query.Select{Attr: "Nope", Value: "x", Input: &query.Rel{Name: "r0"}}
	if _, err := query.BuildCursor(sel, db, core.Options{}); err == nil {
		t.Fatal("unknown attribute must fail at build time")
	}
	mixed := &query.SetOp{Op: core.OpUnion, Left: &query.Rel{Name: "r0"}, Right: &query.Rel{Name: "wide"}}
	wide := relation.New(relation.NewSchema("wide", "A", "B"))
	db["wide"] = wide
	if _, err := query.BuildCursor(mixed, db, core.Options{}); err == nil {
		t.Fatal("incompatible schemas must fail at build time")
	}
}
