package query

import (
	"strings"

	"github.com/tpset/tpset/internal/core"
)

// Canonical renders the query in a canonical ASCII form: the parser's
// surface syntax with every set operation fully parenthesized and exactly
// one space around operators, e.g.
//
//	(c - (a | b))
//	sigma[Product='milk']((a & b))
//
// The rendering is deterministic — structurally equal trees always render
// to the same string — and re-parseable: Parse(Canonical(n)) reproduces a
// tree with the same canonical form. Two input strings that differ only in
// whitespace, redundant parentheses or operator spelling ("union" vs "|")
// therefore share one canonical form, which is what the query-result cache
// keys on (see internal/server).
//
// Canonical deliberately performs no semantic rewriting: commutativity of
// ∪Tp/∩Tp is not normalized ("a | b" and "b | a" key separately), keeping
// the canonical form cheap, predictable and bijective with the tree shape.
func Canonical(n Node) string {
	var b strings.Builder
	canonical(n, &b)
	return b.String()
}

func canonical(n Node, b *strings.Builder) {
	switch q := n.(type) {
	case *Rel:
		b.WriteString(q.Name)
	case *SetOp:
		b.WriteByte('(')
		canonical(q.Left, b)
		b.WriteByte(' ')
		b.WriteString(opASCII(q.Op))
		b.WriteByte(' ')
		canonical(q.Right, b)
		b.WriteByte(')')
	case *Select:
		b.WriteString("sigma[")
		b.WriteString(q.Attr)
		b.WriteString("='")
		b.WriteString(q.Value)
		b.WriteString("'](")
		canonical(q.Input, b)
		b.WriteByte(')')
	}
}

// opASCII maps an operation to its ASCII surface-syntax spelling.
func opASCII(op core.Op) string {
	switch op {
	case core.OpUnion:
		return "|"
	case core.OpIntersect:
		return "&"
	default:
		return "-"
	}
}
