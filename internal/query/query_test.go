package query

import (
	"strings"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

func db() map[string]*relation.Relation {
	a := relation.New(relation.NewSchema("a", "Product"))
	a.AddBase(relation.NewFact("milk"), "a1", 2, 10, 0.3)
	a.AddBase(relation.NewFact("chips"), "a2", 4, 7, 0.8)
	a.AddBase(relation.NewFact("dates"), "a3", 1, 3, 0.6)
	b := relation.New(relation.NewSchema("b", "Product"))
	b.AddBase(relation.NewFact("milk"), "b1", 5, 9, 0.6)
	b.AddBase(relation.NewFact("chips"), "b2", 3, 6, 0.9)
	c := relation.New(relation.NewSchema("c", "Product"))
	c.AddBase(relation.NewFact("milk"), "c1", 1, 4, 0.6)
	c.AddBase(relation.NewFact("milk"), "c2", 6, 8, 0.7)
	c.AddBase(relation.NewFact("chips"), "c3", 4, 5, 0.7)
	c.AddBase(relation.NewFact("chips"), "c4", 7, 9, 0.8)
	return map[string]*relation.Relation{"a": a, "b": b, "c": c}
}

func TestParsePrecedenceAndRendering(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"a | b", "(a ∪Tp b)"},
		{"a & b", "(a ∩Tp b)"},
		{"a - b", "(a −Tp b)"},
		{"c - (a | b)", "(c −Tp (a ∪Tp b))"},
		{"a | b & c", "(a ∪Tp (b ∩Tp c))"}, // & binds tighter
		{"a - b - c", "((a −Tp b) −Tp c)"}, // left assoc
		{"a union b intersect c", "(a ∪Tp (b ∩Tp c))"},
		{"a minus b", "(a −Tp b)"},
		{"(a | b) - c", "((a ∪Tp b) −Tp c)"},
		{"sigma[Product='milk'](c)", "σ[Product='milk'](c)"},
		{"sigma[Product='milk'](c) - a", "(σ[Product='milk'](c) −Tp a)"},
	}
	for _, tc := range cases {
		n, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := n.String(); got != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "a |", "| a", "a b", "(a", "a)", "sigma[x](a)", "sigma[x=](a)",
		"sigma[x='v'](", "a ! b", "'lit'", "a - 'x'", "sigma[x='unterminated](a)",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestRelationsAndNonRepeating(t *testing.T) {
	n := MustParse("c - (a | b)")
	if got := Relations(n); strings.Join(got, ",") != "a,b,c" {
		t.Errorf("relations: %v", got)
	}
	if !IsNonRepeating(n) || Classify(n) != PTime {
		t.Error("c - (a | b) is non-repeating")
	}
	rep := MustParse("(r1 | r2) - (r1 & r3)")
	if IsNonRepeating(rep) || Classify(rep) != SharpPHard {
		t.Error("the paper's §V-B repeating example must classify #P-hard")
	}
	if got := Relations(rep); strings.Join(got, ",") != "r1,r2,r3" {
		t.Errorf("dedup: %v", got)
	}
	if !strings.Contains(PTime.String(), "PTIME") || !strings.Contains(SharpPHard.String(), "#P") {
		t.Error("complexity rendering")
	}
}

func TestEvaluateFig1(t *testing.T) {
	out, err := Evaluate(MustParse("c - (a | b)"), db())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("Fig. 1c has 5 tuples, got %d:\n%s", out.Len(), out)
	}
	// Cross-check with the NORM execution path.
	out2, err := EvaluateWith(MustParse("c - (a | b)"), db(), AlgoNorm)
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.Diff(out, out2); d != "" {
		t.Errorf("LAWA vs NORM query execution: %s", d)
	}
}

func TestEvaluateSelection(t *testing.T) {
	out, err := Evaluate(MustParse("sigma[Product='milk'](c) - sigma[Product='milk'](a)"), db())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 6: three accepted candidates.
	if out.Len() != 3 {
		t.Fatalf("want 3 tuples, got %d:\n%s", out.Len(), out)
	}
	for i := range out.Tuples {
		if out.Tuples[i].Fact.Key() != "milk" {
			t.Errorf("selection leaked fact %s", out.Tuples[i].Fact)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(MustParse("nosuch - a"), db()); err == nil ||
		!strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown relation: %v", err)
	}
	if _, err := Evaluate(MustParse("sigma[NoAttr='x'](a)"), db()); err == nil ||
		!strings.Contains(err.Error(), "NoAttr") {
		t.Errorf("unknown attribute: %v", err)
	}
}

func TestTheorem1OneOccurrence(t *testing.T) {
	// Non-repeating query ⇒ every output lineage is 1OF.
	out, err := Evaluate(MustParse("(a | b) & c"), db())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Tuples {
		if !out.Tuples[i].Lineage.IsOneOccurrence() {
			t.Errorf("non-1OF lineage from non-repeating query: %s", out.Tuples[i].Lineage)
		}
	}
	// Repeating query CAN produce repeated variables.
	out2, err := Evaluate(MustParse("(a | c) - (a & c)"), db())
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for i := range out2.Tuples {
		if !out2.Tuples[i].Lineage.IsOneOccurrence() {
			seen = true
		}
	}
	if !seen {
		t.Error("repeating query produced only 1OF lineage — unexpected for this data")
	}
}

// TestRepeatingQueryProbabilities: even for the #P-hard repeating case, the
// Shannon evaluator must agree with possible-worlds enumeration on small
// data (the symmetric-difference query of §V-B).
func TestRepeatingQueryProbabilities(t *testing.T) {
	out, err := Evaluate(MustParse("(a | c) - (a & c)"), db())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Tuples {
		tu := &out.Tuples[i]
		exact := tu.Lineage.ProbPossibleWorlds()
		if diff := tu.Prob - exact; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("tuple %v: prob %v, possible-worlds %v", tu, tu.Prob, exact)
		}
	}
}

func TestSetOpErrIncompatibleSchemas(t *testing.T) {
	a := relation.New(relation.NewSchema("a", "X"))
	b := relation.New(relation.NewSchema("b", "X", "Y"))
	if _, err := core.Union(a, b, core.Options{}); err == nil {
		t.Error("incompatible schemas must be rejected")
	}
}
