package query

// Query rewriting. Selections commute with the three TP set operations on
// the left input and — for union and intersection — on the right input as
// well:
//
//	σ(q1 ∪Tp q2) ≡ σ(q1) ∪Tp σ(q2)
//	σ(q1 ∩Tp q2) ≡ σ(q1) ∩Tp σ(q2)
//	σ(q1 −Tp q2) ≡ σ(q1) −Tp σ(q2)
//
// (For −Tp, restricting the right side is sound because tuples of s with
// facts filtered out of r can never contribute to an output anyway.)
// Pushing selections below the set operations shrinks the inputs the
// O(n log n) sweep sorts, which is the classic selection-pushdown win.
//
// The rewriter is conservative: it only transforms nodes where equivalence
// is guaranteed by the equations above and leaves everything else intact.

// PushDownSelections returns an equivalent query with every selection
// pushed as close to the base relations as possible. Stacked selections
// are reordered freely (they commute with each other).
func PushDownSelections(n Node) Node {
	switch q := n.(type) {
	case *Rel:
		return q
	case *SetOp:
		return &SetOp{
			Op:    q.Op,
			Left:  PushDownSelections(q.Left),
			Right: PushDownSelections(q.Right),
		}
	case *Select:
		inner := PushDownSelections(q.Input)
		return pushSelect(q, inner)
	}
	return n
}

// pushSelect distributes one selection over an already-rewritten subtree.
func pushSelect(sel *Select, input Node) Node {
	switch q := input.(type) {
	case *SetOp:
		return &SetOp{
			Op:    q.Op,
			Left:  pushSelect(sel, q.Left),
			Right: pushSelect(sel, q.Right),
		}
	case *Select:
		// Commute and keep pushing; the inner selection has already been
		// pushed, so only descend through it.
		return &Select{Attr: q.Attr, Value: q.Value, Input: pushSelect(sel, q.Input)}
	default:
		return &Select{Attr: sel.Attr, Value: sel.Value, Input: input}
	}
}

// CountSelections reports how many Select nodes the tree contains and how
// many of them sit directly above a base relation — a rewrite-quality
// metric used by tests and by EXPLAIN output.
func CountSelections(n Node) (total, onBase int) {
	switch q := n.(type) {
	case *Rel:
		return 0, 0
	case *SetOp:
		lt, lb := CountSelections(q.Left)
		rt, rb := CountSelections(q.Right)
		return lt + rt, lb + rb
	case *Select:
		t, b := CountSelections(q.Input)
		if _, isRel := q.Input.(*Rel); isRel {
			b++
		}
		return t + 1, b
	}
	return 0, 0
}
