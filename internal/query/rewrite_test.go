package query

import (
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

func TestPushDownSelections(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{
			"sigma[Product='milk'](c - (a | b))",
			"(σ[Product='milk'](c) −Tp (σ[Product='milk'](a) ∪Tp σ[Product='milk'](b)))",
		},
		{
			"sigma[Product='milk'](a & b)",
			"(σ[Product='milk'](a) ∩Tp σ[Product='milk'](b))",
		},
		{
			"sigma[Product='milk'](a)",
			"σ[Product='milk'](a)",
		},
		{
			"a - b",
			"(a −Tp b)",
		},
		{
			// Nested selections commute and both reach the base.
			"sigma[Product='milk'](sigma[Product='milk'](a | b))",
			"(σ[Product='milk'](σ[Product='milk'](a)) ∪Tp σ[Product='milk'](σ[Product='milk'](b)))",
		},
	}
	for _, tc := range cases {
		got := PushDownSelections(MustParse(tc.in))
		if got.String() != tc.want {
			t.Errorf("PushDown(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestPushDownEquivalence: original and rewritten plans compute the same
// relation on the paper's data, for every operation shape.
func TestPushDownEquivalence(t *testing.T) {
	d := db()
	queries := []string{
		"sigma[Product='milk'](c - (a | b))",
		"sigma[Product='chips'](a & c)",
		"sigma[Product='milk'](a - c)",
		"sigma[Product='dates'](a | b | c)",
		"sigma[Product='milk'](sigma[Product='milk'](c) - a)",
		"sigma[Product='nonexistent'](a | c)",
	}
	for _, q := range queries {
		orig, err := Evaluate(MustParse(q), d)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rewritten := PushDownSelections(MustParse(q))
		got, err := Evaluate(rewritten, d)
		if err != nil {
			t.Fatalf("%s rewritten: %v", q, err)
		}
		if diff := relation.Diff(orig, got); diff != "" {
			t.Errorf("%s: rewrite changed the result: %s\nrewritten=%s", q, diff, rewritten)
		}
	}
}

func TestCountSelections(t *testing.T) {
	n := MustParse("sigma[P='x'](a - b) | sigma[P='y'](c)")
	total, onBase := CountSelections(n)
	if total != 2 || onBase != 1 {
		t.Fatalf("total=%d onBase=%d", total, onBase)
	}
	p := PushDownSelections(n)
	total, onBase = CountSelections(p)
	if total != 3 || onBase != 3 {
		t.Fatalf("after pushdown: total=%d onBase=%d (%s)", total, onBase, p)
	}
}
