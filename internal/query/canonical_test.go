package query

import "testing"

func TestCanonicalFixpoint(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"a | b", "(a | b)"},
		{"a union b", "(a | b)"},
		{"  a   |(b)  ", "(a | b)"},
		{"((a)) | ((b))", "(a | b)"},
		{"c - (a | b)", "(c - (a | b))"},
		{"c minus (a union b)", "(c - (a | b))"},
		{"a & b & c", "((a & b) & c)"},
		{"a | b & c", "(a | (b & c))"},
		{"sigma[Product='milk'](c) & a", "(sigma[Product='milk'](c) & a)"},
		{"sigma[P=v](a - b)", "sigma[P='v']((a - b))"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got := Canonical(n)
		if got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
		// Re-parse: the canonical form must be valid surface syntax with the
		// same canonical rendering (fixpoint).
		n2, err := Parse(got)
		if err != nil {
			t.Fatalf("Parse(Canonical(%q)) = Parse(%q): %v", c.in, got, err)
		}
		if got2 := Canonical(n2); got2 != got {
			t.Errorf("canonical not a fixpoint for %q: %q then %q", c.in, got, got2)
		}
	}
}

func TestIsIdent(t *testing.T) {
	for _, ok := range []string{"a", "r1", "_x", "web.kit", "Meteo_CH", "42"} {
		if !IsIdent(ok) {
			t.Errorf("IsIdent(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "my-rel", "a b", ".dot", "union", "Intersect", "minus", "sigma", "a|b"} {
		if IsIdent(bad) {
			t.Errorf("IsIdent(%q) = true, want false", bad)
		}
	}
	// Every accepted name must actually parse back to itself as a query.
	n, err := Parse("web.kit")
	if err != nil {
		t.Fatal(err)
	}
	if r, isRel := n.(*Rel); !isRel || r.Name != "web.kit" {
		t.Fatalf("parsed %v", n)
	}
}

func TestCanonicalDistinguishesShape(t *testing.T) {
	// No semantic normalization: operand order and association are kept.
	a := Canonical(MustParse("a | b"))
	b := Canonical(MustParse("b | a"))
	if a == b {
		t.Errorf("commuted operands must render differently, both %q", a)
	}
	l := Canonical(MustParse("(a & b) & c"))
	r := Canonical(MustParse("a & (b & c)"))
	if l == r {
		t.Errorf("different associations must render differently, both %q", l)
	}
}
