package query

import (
	"sync"

	"github.com/tpset/tpset/internal/relation"
)

// ParallelEvaluator evaluates a whole query tree with a given worker
// budget. The partition-parallel engine (internal/engine) registers one at
// init time; the indirection exists because engine imports query and a
// direct call here would close an import cycle.
type ParallelEvaluator func(n Node, db map[string]*relation.Relation, workers int) (*relation.Relation, error)

var (
	parallelMu   sync.RWMutex
	parallelEval ParallelEvaluator
	parallelism  = 1
)

// RegisterParallelEvaluator installs the engine entry point used by
// Evaluate/EvaluateWith when the default parallelism is above one.
func RegisterParallelEvaluator(f ParallelEvaluator) {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	parallelEval = f
}

// SetDefaultParallelism sets the worker budget Evaluate uses for LAWA
// queries. Values below one mean sequential evaluation. The setting is
// process-wide; per-call control is available through the engine API and
// tpset.EvalParallel.
func SetDefaultParallelism(workers int) {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	if workers < 1 {
		workers = 1
	}
	parallelism = workers
}

// DefaultParallelism returns the current process-wide worker budget.
func DefaultParallelism() int {
	parallelMu.RLock()
	defer parallelMu.RUnlock()
	return parallelism
}

func parallelEvaluator() (ParallelEvaluator, int) {
	parallelMu.RLock()
	defer parallelMu.RUnlock()
	return parallelEval, parallelism
}
