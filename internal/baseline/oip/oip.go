package oip

import (
	"sort"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// DefaultGranules is the lower bound on the number k of granules the time
// domain is split into when the caller does not choose one. The original
// paper tunes k per dataset; Intersect uses the adaptive choice below, which
// keeps partitions small on short-interval data while still reproducing the
// reported degradation on long-interval (high-overlap) data, where tuples
// span many granules and fall into coarse multi-granule partitions.
const DefaultGranules = 256

// AdaptiveGranules returns the granule count used by Intersect for a fact
// group of n tuples: roughly one granule per 8 tuples, at least
// DefaultGranules.
func AdaptiveGranules(n int) int {
	k := n / 8
	if k < DefaultGranules {
		k = DefaultGranules
	}
	return k
}

// Partitioning holds one relation's tuples distributed over partitions.
type Partitioning struct {
	granule  int64 // granule width
	domainLo interval.Time
	k        int
	// parts maps (first, last) granule indexes to the tuples assigned to
	// that partition.
	parts map[[2]int32][]*relation.Tuple
}

// Partition assigns every tuple of r to its smallest covering partition of
// the time domain dom split into k granules.
func Partition(r *relation.Relation, dom interval.Interval, k int) *Partitioning {
	if k < 1 {
		k = 1
	}
	width := (dom.Duration() + int64(k) - 1) / int64(k)
	if width < 1 {
		width = 1
	}
	p := &Partitioning{granule: width, domainLo: dom.Ts, k: k, parts: make(map[[2]int32][]*relation.Tuple)}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		first := p.granuleOf(t.T.Ts)
		last := p.granuleOf(t.T.Te - 1)
		key := [2]int32{first, last}
		p.parts[key] = append(p.parts[key], t)
	}
	return p
}

func (p *Partitioning) granuleOf(t interval.Time) int32 {
	g := (t - p.domainLo) / p.granule
	if g < 0 {
		g = 0
	}
	if g >= int64(p.k) {
		g = int64(p.k) - 1
	}
	return int32(g)
}

// Intersect computes r ∩Tp s with per-fact OIP joins and adaptive granule
// counts.
func Intersect(r, s *relation.Relation) *relation.Relation {
	return IntersectK(r, s, AdaptiveGranules(r.Len()+s.Len()))
}

// IntersectK is Intersect with an explicit granule count k.
func IntersectK(r, s *relation.Relation, k int) *relation.Relation {
	out := relation.New(relation.Schema{Name: "oip", Attrs: r.Schema.Attrs})

	// Fact-group both inputs (the §VII-A extension).
	rg := factGroups(r)
	sg := factGroups(s)
	for key, rts := range rg {
		sts, ok := sg[key]
		if !ok {
			continue
		}
		joinGroup(out, rts, sts, k)
	}
	return out
}

func joinGroup(out *relation.Relation, rts, sts []*relation.Tuple, k int) {
	dom, ok := groupDomain(rts, sts)
	if !ok {
		return
	}
	rp := partitionTuples(rts, dom, k)
	sp := partitionTuples(sts, dom, k)

	// Identify the overlapping partition pairs without enumerating the full
	// cross product: as in the original OIP, partitions are organized by
	// duration class (granule width); within one width class, the
	// partitions of s overlapping an r partition [f, l] are exactly those
	// with first granule in [f−w+1, l] — a contiguous range found by
	// binary search over the class's sorted first-granule list.
	classes := buildClasses(sp)
	for rkey, rpart := range rp.parts {
		f, l := rkey[0], rkey[1]
		for _, cl := range classes {
			lo := searchInt32(cl.firsts, f-cl.width+1)
			for i := lo; i < len(cl.firsts) && cl.firsts[i] <= l; i++ {
				joinPartitions(out, rpart, cl.parts[i])
			}
		}
	}
}

// class groups the partitions of one relation that share a granule width,
// sorted by first granule — the duration-class organization of OIP.
type class struct {
	width  int32
	firsts []int32
	parts  [][]*relation.Tuple
}

func buildClasses(p *Partitioning) []class {
	byWidth := make(map[int32]*class)
	for key, tuples := range p.parts {
		w := key[1] - key[0] + 1
		cl, ok := byWidth[w]
		if !ok {
			cl = &class{width: w}
			byWidth[w] = cl
		}
		cl.firsts = append(cl.firsts, key[0])
		cl.parts = append(cl.parts, tuples)
	}
	classes := make([]class, 0, len(byWidth))
	for _, cl := range byWidth {
		sortClass(cl)
		classes = append(classes, *cl)
	}
	return classes
}

func sortClass(cl *class) {
	idx := make([]int, len(cl.firsts))
	for i := range idx {
		idx[i] = i
	}
	sortSliceByFirst(idx, cl.firsts)
	firsts := make([]int32, len(idx))
	parts := make([][]*relation.Tuple, len(idx))
	for i, j := range idx {
		firsts[i] = cl.firsts[j]
		parts[i] = cl.parts[j]
	}
	cl.firsts = firsts
	cl.parts = parts
}

// joinPartitions is OIP's slow path: a nested loop over the tuples of two
// overlapping partitions.
func joinPartitions(out *relation.Relation, rpart, spart []*relation.Tuple) {
	for _, rt := range rpart {
		for _, st := range spart {
			iv, ok := rt.T.Intersect(st.T)
			if !ok {
				continue
			}
			out.Tuples = append(out.Tuples,
				relation.NewDerived(rt.Fact, lineage.And(rt.Lineage, st.Lineage), iv))
		}
	}
}

func searchInt32(xs []int32, min int32) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < min {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func sortSliceByFirst(idx []int, firsts []int32) {
	sort.Slice(idx, func(a, b int) bool { return firsts[idx[a]] < firsts[idx[b]] })
}

func partitionTuples(ts []*relation.Tuple, dom interval.Interval, k int) *Partitioning {
	tmp := &relation.Relation{Tuples: make([]relation.Tuple, 0, len(ts))}
	for _, t := range ts {
		tmp.Tuples = append(tmp.Tuples, *t)
	}
	return Partition(tmp, dom, k)
}

func groupDomain(rts, sts []*relation.Tuple) (interval.Interval, bool) {
	first := true
	var lo, hi interval.Time
	scan := func(ts []*relation.Tuple) {
		for _, t := range ts {
			if first {
				lo, hi = t.T.Ts, t.T.Te
				first = false
				continue
			}
			lo = interval.Min(lo, t.T.Ts)
			hi = interval.Max(hi, t.T.Te)
		}
	}
	scan(rts)
	scan(sts)
	return interval.Interval{Ts: lo, Te: hi}, !first
}

func factGroups(r *relation.Relation) map[string][]*relation.Tuple {
	groups := make(map[string][]*relation.Tuple, 64)
	for i := range r.Tuples {
		t := &r.Tuples[i]
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	return groups
}
