package oip

import (
	"testing"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/relation"
)

func rel(name, fact string, spans ...[2]int64) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "F"))
	for i, s := range spans {
		r.AddBase(relation.NewFact(fact), name+string(rune('0'+i)), s[0], s[1], 0.5)
	}
	return r
}

// TestPartitionSmallestFit: each tuple lands in the partition spanning
// exactly its granule range.
func TestPartitionSmallestFit(t *testing.T) {
	r := rel("r", "x", [2]int64{0, 10}, [2]int64{10, 20}, [2]int64{0, 40}, [2]int64{35, 40})
	p := Partition(r, interval.New(0, 40), 4) // granule width 10
	if len(p.parts) != 4 {
		t.Fatalf("partitions: %d", len(p.parts))
	}
	check := func(key [2]int32, n int) {
		t.Helper()
		if len(p.parts[key]) != n {
			t.Errorf("partition %v: %d tuples, want %d", key, len(p.parts[key]), n)
		}
	}
	check([2]int32{0, 0}, 1) // [0,10) → granule 0 only
	check([2]int32{1, 1}, 1) // [10,20) → granule 1
	check([2]int32{0, 3}, 1) // [0,40) spans all
	check([2]int32{3, 3}, 1) // [35,40) → granule 3
}

func TestPartitionDegenerateK(t *testing.T) {
	r := rel("r", "x", [2]int64{0, 5})
	p := Partition(r, interval.New(0, 5), 0) // k < 1 clamps to 1
	if len(p.parts) != 1 {
		t.Fatal("k clamp")
	}
}

func TestAdaptiveGranules(t *testing.T) {
	if AdaptiveGranules(10) != DefaultGranules {
		t.Error("small n must clamp to DefaultGranules")
	}
	if AdaptiveGranules(80000) != 10000 {
		t.Errorf("adaptive: %d", AdaptiveGranules(80000))
	}
}

func TestIntersectBasic(t *testing.T) {
	r := rel("r", "x", [2]int64{1, 6})
	s := rel("s", "x", [2]int64{4, 9})
	got := Intersect(r, s)
	if got.Len() != 1 || got.Tuples[0].T != interval.New(4, 6) {
		t.Fatalf("intersect: %s", got)
	}
}

// TestIntersectFactGrouping: the §VII-A extension — different facts never
// join even with identical intervals, and each fact group gets its own
// partitioning domain.
func TestIntersectFactGrouping(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "F"))
	r.AddBase(relation.NewFact("x"), "r0", 1, 5, 0.5)
	r.AddBase(relation.NewFact("y"), "r1", 1, 5, 0.5)
	s := relation.New(relation.NewSchema("s", "F"))
	s.AddBase(relation.NewFact("x"), "s0", 1, 5, 0.5)
	s.AddBase(relation.NewFact("z"), "s1", 1, 5, 0.5)
	got := Intersect(r, s)
	if got.Len() != 1 || got.Tuples[0].Fact.Key() != "x" {
		t.Fatalf("fact grouping: %s", got)
	}
}

// TestIntersectAcrossGranuleBoundaries: tuples spanning many granules
// (coarse partitions) still find all partners — the multi-width class
// lookup must consider every width.
func TestIntersectAcrossGranuleBoundaries(t *testing.T) {
	r := rel("r", "x", [2]int64{0, 1000})                                        // one huge tuple
	s := rel("s", "x", [2]int64{10, 12}, [2]int64{500, 502}, [2]int64{990, 995}) // small ones
	for _, k := range []int{1, 2, 16, 256} {
		got := IntersectK(r, s, k)
		if got.Len() != 3 {
			t.Fatalf("k=%d: %d outputs\n%s", k, got.Len(), got)
		}
	}
}

// TestIntersectAdjacent: half-open adjacency never joins.
func TestIntersectAdjacent(t *testing.T) {
	r := rel("r", "x", [2]int64{1, 5})
	s := rel("s", "x", [2]int64{5, 9})
	for _, k := range []int{1, 8, 1024} {
		if got := IntersectK(r, s, k); got.Len() != 0 {
			t.Fatalf("k=%d: adjacent joined: %s", k, got)
		}
	}
}
