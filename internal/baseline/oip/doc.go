// Package oip re-implements the Overlap Interval Partition Join baseline
// (Dignös, Böhlen, Gamper, SIGMOD 2014) used by the paper for TP set
// intersection (§VII-A, Table II).
//
// OIP splits the time domain into k granules of equal size. Adjacent
// granules form partitions identified by (first granule, last granule),
// and each tuple is assigned to the smallest partition that fully covers
// its interval. To join, the overlapping partition pairs of the two
// relations are identified (fast — there are O(k²) partitions), and a
// nested loop joins the tuples of each overlapping pair (slow — this is
// where high overlap factors hurt, as the paper's robustness experiment
// shows).
//
// OIP does not natively support a non-temporal filter. Following §VII-A,
// the extension for TP set intersection splits each input relation into
// fact groups, runs OIP per group, and merges the results; with many
// distinct facts the per-group partitioning overhead dominates (Fig. 9b).
//
// Only ∩Tp is supported (Table II). Paper map: Table II row OIP, Fig. 8
// (LAWA vs OIP at scale), Figs. 9a/9b (robustness). See
// docs/PAPER_MAP.md.
package oip
