package timeline

import (
	"testing"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/relation"
)

func rel(name, fact string, spans ...[2]int64) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "F"))
	for i, s := range spans {
		r.AddBase(relation.NewFact(fact), name+string(rune('0'+i)), s[0], s[1], 0.5)
	}
	return r
}

func TestBuildEventOrder(t *testing.T) {
	r := rel("r", "x", [2]int64{5, 9}, [2]int64{1, 5})
	ix := Build(r)
	if ix.Len() != 4 {
		t.Fatalf("events: %d", ix.Len())
	}
	// Events must be time-ordered with ends before starts at equal points
	// (so that [1,5) and [5,9) never pair).
	prev := ix.events[0]
	for _, ev := range ix.events[1:] {
		if ev.t < prev.t {
			t.Fatalf("events unordered")
		}
		if ev.t == prev.t && prev.start && !ev.start {
			t.Fatalf("start before end at t=%d", ev.t)
		}
		prev = ev
	}
}

func TestIntersectAdjacentNoPair(t *testing.T) {
	r := rel("r", "x", [2]int64{1, 5})
	s := rel("s", "x", [2]int64{5, 9})
	if got := Intersect(r, s); got.Len() != 0 {
		t.Fatalf("adjacent tuples paired: %s", got)
	}
}

func TestIntersectPostPairingFilter(t *testing.T) {
	// Same time span, different facts: the merge join pairs them and the
	// fact filter must reject the pair afterwards.
	r := rel("r", "x", [2]int64{1, 5})
	s := rel("s", "y", [2]int64{1, 5})
	if got := Intersect(r, s); got.Len() != 0 {
		t.Fatalf("fact filter failed: %s", got)
	}
}

func TestIntersectPairsOncePerPair(t *testing.T) {
	// Identical intervals starting at the same point: exactly one output
	// (the r-starts-first tie-break must not double-pair).
	r := rel("r", "x", [2]int64{2, 7})
	s := rel("s", "x", [2]int64{2, 7})
	got := Intersect(r, s)
	if got.Len() != 1 || got.Tuples[0].T != interval.New(2, 7) {
		t.Fatalf("pairing wrong: %s", got)
	}
	if got.Tuples[0].Lineage.String() != "r0∧s0" {
		t.Fatalf("lineage: %s", got.Tuples[0].Lineage)
	}
}

func TestIntersectManyActive(t *testing.T) {
	// One long s tuple, several r tuples inside: each r start pairs with
	// the active s exactly once.
	r := rel("r", "x", [2]int64{1, 3}, [2]int64{4, 6}, [2]int64{7, 9})
	s := rel("s", "x", [2]int64{0, 10})
	got := Intersect(r, s)
	got.Sort()
	if got.Len() != 3 {
		t.Fatalf("outputs: %s", got)
	}
	for i, want := range []interval.Interval{{Ts: 1, Te: 3}, {Ts: 4, Te: 6}, {Ts: 7, Te: 9}} {
		if got.Tuples[i].T != want {
			t.Errorf("output %d: %v", i, got.Tuples[i].T)
		}
	}
}
