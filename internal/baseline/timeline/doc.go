// Package timeline re-implements the Timeline Index / Timeline Join
// baseline (Kaufmann et al., SIGMOD 2013) used by the paper for TP set
// intersection (§VII-A, Table II).
//
// A Timeline Index of a relation maps each start or end time point to the
// list of tuple ids starting or ending there. Timeline Join merge-joins
// the two indexes, maintaining the set of active tuple ids per relation,
// and emits (rid, sid) pairs when a tuple of one relation starts while
// tuples of the other are active. As the paper observes, the join produces
// pairs *before* the non-temporal (fact equality) condition can be
// applied, and the original tuples must then be fetched both for filtering
// and for output formation — the two lookups that dominate its runtime
// when many tuples coincide at a time point (the Webkit shape of Fig. 11).
//
// Only ∩Tp is supported (Table II). Paper map: Table II row TI, Figs.
// 7–11. See docs/PAPER_MAP.md.
package timeline
