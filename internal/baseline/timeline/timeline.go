package timeline

import (
	"sort"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Index is a Timeline Index: the relation's tuples plus the event list
// (time point → ids of tuples starting/ending there), in time order.
type Index struct {
	rel    *relation.Relation
	events []event
}

type event struct {
	t     interval.Time
	id    int32
	start bool
}

// Build constructs the Timeline Index of r. Construction cost is the event
// sort, a small fraction of the join runtime (as the paper notes).
func Build(r *relation.Relation) *Index {
	idx := &Index{rel: r, events: make([]event, 0, 2*len(r.Tuples))}
	for i := range r.Tuples {
		idx.events = append(idx.events,
			event{r.Tuples[i].T.Ts, int32(i), true},
			event{r.Tuples[i].T.Te, int32(i), false},
		)
	}
	sort.Slice(idx.events, func(a, b int) bool {
		if idx.events[a].t != idx.events[b].t {
			return idx.events[a].t < idx.events[b].t
		}
		// Ends before starts so that [x,t) and [t,y) do not pair.
		return !idx.events[a].start && idx.events[b].start
	})
	return idx
}

// Len returns the number of events in the index.
func (ix *Index) Len() int { return len(ix.events) }

// Intersect computes r ∩Tp s by Timeline Join over the two indexes,
// with the fact-equality condition applied after pair formation and the
// lineage-concatenation function and() applied on the fetched tuples.
func Intersect(r, s *relation.Relation) *relation.Relation {
	ri, si := Build(r), Build(s)
	out := relation.New(relation.Schema{Name: "ti", Attrs: r.Schema.Attrs})

	activeR := make(map[int32]struct{})
	activeS := make(map[int32]struct{})
	emit := func(rid, sid int32) {
		rt, st := &r.Tuples[rid], &s.Tuples[sid] // fetch originals
		if rt.Key() != st.Key() {                // post-pairing filter
			return
		}
		iv, ok := rt.T.Intersect(st.T)
		if !ok {
			return
		}
		out.Tuples = append(out.Tuples,
			relation.NewDerived(rt.Fact, lineage.And(rt.Lineage, st.Lineage), iv))
	}

	i, j := 0, 0
	for i < len(ri.events) || j < len(si.events) {
		var takeR bool
		switch {
		case i >= len(ri.events):
			takeR = false
		case j >= len(si.events):
			takeR = true
		case ri.events[i].t != si.events[j].t:
			takeR = ri.events[i].t < si.events[j].t
		default:
			// Equal time points: process end events from both sides before
			// any start event; among starts, r first (emission pairs each
			// start against the opposite active set exactly once, so the
			// order among starts does not affect the result set).
			if !ri.events[i].start {
				takeR = true
			} else if !si.events[j].start {
				takeR = false
			} else {
				takeR = true
			}
		}
		if takeR {
			ev := ri.events[i]
			i++
			if ev.start {
				// Pair the new r tuple with every active s tuple.
				for sid := range activeS {
					emit(ev.id, sid)
				}
				activeR[ev.id] = struct{}{}
			} else {
				delete(activeR, ev.id)
			}
		} else {
			ev := si.events[j]
			j++
			if ev.start {
				for rid := range activeR {
					emit(rid, ev.id)
				}
				activeS[ev.id] = struct{}{}
			} else {
				delete(activeS, ev.id)
			}
		}
	}
	return out
}
