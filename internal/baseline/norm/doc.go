// Package norm re-implements the timestamp-adjustment baseline of Dignös
// et al. (SIGMOD 2012, TODS 2016): temporal set operations via the
// Normalization operator N(r, s), extended with the TP reduction rules the
// paper's authors added for their comparison (§VII-A).
//
// N(r, s) replicates every tuple of r, splitting its interval at the start
// and end points of every same-fact tuple of s it overlaps, so that after
// normalizing both inputs against each other all same-fact intervals are
// either equal or disjoint. The faithful implementation of the splitting
// step is an outer join with inequality (overlap) predicates, realized as
// a nested loop within each fact group — this is the quadratic behaviour
// the paper measures (NORM degrades drastically when few facts dominate).
// After normalization the set operations reduce to hash joins on
// (fact, interval) plus the lineage-concatenation functions.
//
// Supports ∪Tp, ∩Tp and −Tp (Table II). Paper map: §VI ("Adjustment of
// Timestamps"), Table II row NORM, Figs. 7–11. See docs/PAPER_MAP.md.
package norm
