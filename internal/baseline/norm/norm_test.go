package norm

import (
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/relation"
)

func rel(name string, tuples ...[3]int64) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "F"))
	for i, t := range tuples {
		fact := "x"
		if t[2] != 0 {
			fact = "y"
		}
		r.AddBase(relation.NewFact(fact), name+string(rune('0'+i)), t[0], t[1], 0.5)
	}
	return r
}

// TestNormalizeSplitsAtOverlapBoundaries: N(r, s) fragments r's intervals
// exactly at the boundaries of overlapping same-fact s tuples.
func TestNormalizeSplitsAtOverlapBoundaries(t *testing.T) {
	r := rel("r", [3]int64{1, 10, 0})
	s := rel("s", [3]int64{3, 5, 0}, [3]int64{7, 8, 0})
	n := Normalize(r, s)
	n.Sort()
	want := []interval.Interval{{Ts: 1, Te: 3}, {Ts: 3, Te: 5}, {Ts: 5, Te: 7}, {Ts: 7, Te: 8}, {Ts: 8, Te: 10}}
	if n.Len() != len(want) {
		t.Fatalf("fragments: %s", n)
	}
	for i, iv := range want {
		tu := n.Tuples[i]
		if tu.T != iv {
			t.Errorf("fragment %d: %v, want %v", i, tu.T, iv)
		}
		if tu.Lineage.String() != "r0" {
			t.Errorf("fragment %d lineage changed: %s", i, tu.Lineage)
		}
	}
}

// TestNormalizeIgnoresOtherFacts: boundaries of different facts never cut.
func TestNormalizeIgnoresOtherFacts(t *testing.T) {
	r := rel("r", [3]int64{1, 10, 0})
	s := rel("s", [3]int64{3, 5, 1}) // fact y
	n := Normalize(r, s)
	if n.Len() != 1 || n.Tuples[0].T != interval.New(1, 10) {
		t.Fatalf("cut by foreign fact: %s", n)
	}
}

// TestNormalizeNoOverlapNoCut: adjacent or disjoint tuples leave r intact.
func TestNormalizeNoOverlapNoCut(t *testing.T) {
	r := rel("r", [3]int64{1, 5, 0})
	s := rel("s", [3]int64{5, 9, 0}) // adjacent, half-open: no overlap
	n := Normalize(r, s)
	if n.Len() != 1 || n.Tuples[0].T != interval.New(1, 5) {
		t.Fatalf("adjacent tuple cut: %s", n)
	}
}

// TestMutualNormalizationAligns: after normalizing both ways, same-fact
// intervals are equal or disjoint — the property the hash join relies on.
func TestMutualNormalizationAligns(t *testing.T) {
	r := rel("r", [3]int64{1, 10, 0}, [3]int64{12, 20, 0})
	s := rel("s", [3]int64{5, 15, 0})
	rn := Normalize(r, s)
	sn := Normalize(s, r)
	for i := range rn.Tuples {
		for j := range sn.Tuples {
			a, b := rn.Tuples[i].T, sn.Tuples[j].T
			if a.Overlaps(b) && a != b {
				t.Fatalf("misaligned fragments %v and %v", a, b)
			}
		}
	}
}

// TestApplyOpsGolden: the three set operations on a miniature case.
func TestApplyOpsGolden(t *testing.T) {
	r := rel("r", [3]int64{1, 5, 0})
	s := rel("s", [3]int64{3, 8, 0})
	u := Apply(core.OpUnion, r, s)
	if u.Len() != 3 { // [1,3) r, [3,5) r∨s, [5,8) s
		t.Fatalf("union: %s", u)
	}
	i := Apply(core.OpIntersect, r, s)
	if i.Len() != 1 || i.Tuples[0].T != interval.New(3, 5) {
		t.Fatalf("intersect: %s", i)
	}
	e := Apply(core.OpExcept, r, s)
	e.Sort()
	if e.Len() != 2 || e.Tuples[0].Lineage.String() != "r0" ||
		e.Tuples[1].Lineage.String() != "r0∧¬s0" {
		t.Fatalf("except: %s", e)
	}
}
