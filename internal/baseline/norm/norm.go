package norm

import (
	"sort"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Apply computes op(r, s) with the normalization strategy.
func Apply(op core.Op, r, s *relation.Relation) *relation.Relation {
	rn := Normalize(r, s)
	sn := Normalize(s, r)
	out := relation.New(relation.Schema{Name: "norm", Attrs: r.Schema.Attrs})

	type key struct {
		fact string
		iv   interval.Interval
	}
	// After mutual normalization, same-fact intervals of rn and sn are
	// equal or disjoint, so a hash join on (fact, interval) pairs them.
	sIdx := make(map[key]*relation.Tuple, len(sn.Tuples))
	for i := range sn.Tuples {
		t := &sn.Tuples[i]
		sIdx[key{t.Key(), t.T}] = t
	}
	matchedS := make(map[key]bool)

	for i := range rn.Tuples {
		rt := &rn.Tuples[i]
		k := key{rt.Key(), rt.T}
		st := sIdx[k]
		switch op {
		case core.OpIntersect:
			if st != nil {
				out.Tuples = append(out.Tuples, relation.NewDerived(rt.Fact, lineage.And(rt.Lineage, st.Lineage), rt.T))
			}
		case core.OpExcept:
			if st != nil {
				out.Tuples = append(out.Tuples, relation.NewDerived(rt.Fact, lineage.AndNot(rt.Lineage, st.Lineage), rt.T))
			} else {
				out.Tuples = append(out.Tuples, relation.NewDerived(rt.Fact, rt.Lineage, rt.T))
			}
		case core.OpUnion:
			if st != nil {
				out.Tuples = append(out.Tuples, relation.NewDerived(rt.Fact, lineage.Or(rt.Lineage, st.Lineage), rt.T))
				matchedS[k] = true
			} else {
				out.Tuples = append(out.Tuples, relation.NewDerived(rt.Fact, rt.Lineage, rt.T))
			}
		}
	}
	if op == core.OpUnion {
		for i := range sn.Tuples {
			st := &sn.Tuples[i]
			k := key{st.Key(), st.T}
			if !matchedS[k] {
				out.Tuples = append(out.Tuples, relation.NewDerived(st.Fact, st.Lineage, st.T))
			}
		}
	}
	return out
}

// Normalize computes N(r, s): every tuple of r is split at the interval
// boundaries of the same-fact tuples of s that overlap it. Lineage and
// probability are carried unchanged onto every fragment.
//
// The overlap detection is a nested loop per fact group with inequality
// conditions — deliberately so; this baseline exists to reproduce the
// quadratic runtime the paper reports for NORM.
func Normalize(r, s *relation.Relation) *relation.Relation {
	groups := make(map[string][]*relation.Tuple, 64)
	for i := range s.Tuples {
		t := &s.Tuples[i]
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	out := relation.New(r.Schema)
	var cuts []interval.Time
	for i := range r.Tuples {
		rt := &r.Tuples[i]
		cuts = cuts[:0]
		// Inequality join: Ts < rt.Te AND Te > rt.Ts.
		for _, st := range groups[rt.Key()] {
			if st.T.Ts < rt.T.Te && st.T.Te > rt.T.Ts {
				if st.T.Ts > rt.T.Ts {
					cuts = append(cuts, st.T.Ts)
				}
				if st.T.Te < rt.T.Te {
					cuts = append(cuts, st.T.Te)
				}
			}
		}
		if len(cuts) == 0 {
			out.Tuples = append(out.Tuples, *rt)
			continue
		}
		sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })
		prev := rt.T.Ts
		for _, c := range cuts {
			if c == prev {
				continue
			}
			frag := *rt
			frag.T = interval.Interval{Ts: prev, Te: c}
			out.Tuples = append(out.Tuples, frag)
			prev = c
		}
		frag := *rt
		frag.T = interval.Interval{Ts: prev, Te: rt.T.Te}
		out.Tuples = append(out.Tuples, frag)
	}
	return out
}
