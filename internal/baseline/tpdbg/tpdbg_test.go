package tpdbg

import (
	"errors"
	"testing"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/relation"
)

func rel(name string, spans ...[2]int64) *relation.Relation {
	r := relation.New(relation.NewSchema(name, "F"))
	for i, s := range spans {
		r.AddBase(relation.NewFact("x"), name+string(rune('0'+i)), s[0], s[1], 0.5)
	}
	return r
}

// TestGroundingRulesCoverAllOverlapCases: one pair per Allen overlap
// relation, each must produce exactly one grounded tuple with the overlap
// interval.
func TestGroundingRulesCoverAllOverlapCases(t *testing.T) {
	base := [2]int64{10, 20}
	cases := []struct {
		name string
		rIv  [2]int64
		want interval.Interval
	}{
		{"overlaps", [2]int64{5, 15}, interval.New(10, 15)},
		{"overlappedBy", [2]int64{15, 25}, interval.New(15, 20)},
		{"during", [2]int64{12, 18}, interval.New(12, 18)},
		{"contains", [2]int64{5, 25}, interval.New(10, 20)},
		{"equals", [2]int64{10, 20}, interval.New(10, 20)},
		{"starts", [2]int64{10, 15}, interval.New(10, 15)},
		{"startedBy", [2]int64{10, 25}, interval.New(10, 20)},
		{"finishes", [2]int64{15, 20}, interval.New(15, 20)},
		{"finishedBy", [2]int64{5, 20}, interval.New(10, 20)},
	}
	for _, tc := range cases {
		r := rel("r", tc.rIv)
		s := rel("s", base)
		got, err := Apply(core.OpIntersect, r, s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 1 {
			t.Errorf("%s: %d grounded tuples (duplicate or missing rule?)\n%s",
				tc.name, got.Len(), got)
			continue
		}
		if got.Tuples[0].T != tc.want {
			t.Errorf("%s: interval %v, want %v", tc.name, got.Tuples[0].T, tc.want)
		}
	}
	// Non-overlapping relations ground nothing.
	for _, iv := range [][2]int64{{1, 5}, {5, 10}, {20, 25}, {25, 30}} {
		got, err := Apply(core.OpIntersect, rel("r", iv), rel("s", base))
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 0 {
			t.Errorf("no-overlap case %v grounded %d tuples", iv, got.Len())
		}
	}
}

func TestDifferenceUnsupported(t *testing.T) {
	_, err := Apply(core.OpExcept, rel("r", [2]int64{1, 5}), rel("s", [2]int64{2, 6}))
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

// TestDeduplicateSplitsAndDisjuncts: the dedup stage fragments overlapping
// same-fact tuples and ∨-combines coinciding fragments.
func TestDeduplicateSplitsAndDisjuncts(t *testing.T) {
	r := rel("r", [2]int64{1, 6}, [2]int64{4, 9})
	// Deliberately duplicate input (overlapping same fact) — what
	// grounding a union produces.
	d := Deduplicate(r)
	d.Sort()
	if err := d.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		iv  interval.Interval
		lam string
	}{
		{interval.New(1, 4), "r0"},
		{interval.New(4, 6), "r0∨r1"},
		{interval.New(6, 9), "r1"},
	}
	if d.Len() != len(wants) {
		t.Fatalf("fragments: %s", d)
	}
	for i, w := range wants {
		if d.Tuples[i].T != w.iv || d.Tuples[i].Lineage.String() != w.lam {
			t.Errorf("fragment %d: %v", i, d.Tuples[i])
		}
	}
}

func TestUnionViaConcatenationAndDedup(t *testing.T) {
	r := rel("r", [2]int64{1, 6})
	s := rel("s", [2]int64{4, 9})
	got, err := Apply(core.OpUnion, r, s)
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	if got.Len() != 3 || got.Tuples[1].Lineage.String() != "r0∨s0" {
		t.Fatalf("union: %s", got)
	}
}
