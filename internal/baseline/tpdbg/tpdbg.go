package tpdbg

import (
	"errors"
	"sort"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// ErrUnsupported is returned for TP set difference, which TPDB cannot
// express (its grounding step only derives tuples supported by joined input
// pairs).
var ErrUnsupported = errors.New("tpdbg: set difference is not supported by the TPDB grounding strategy")

// Apply computes op(r, s) with the grounding + deduplication strategy.
func Apply(op core.Op, r, s *relation.Relation) (*relation.Relation, error) {
	switch op {
	case core.OpIntersect:
		return intersect(r, s), nil
	case core.OpUnion:
		return union(r, s), nil
	default:
		return nil, ErrUnsupported
	}
}

// intersect grounds the six Allen-overlap deduction rules. Each rule is a
// separate nested-loop pass over the fact groups, mirroring TPDB's
// rule-by-rule SQL translation; together the rules cover exactly the pairs
// with overlapping intervals.
func intersect(r, s *relation.Relation) *relation.Relation {
	groups := factGroups(s)
	out := relation.New(relation.Schema{Name: "tpdb", Attrs: r.Schema.Attrs})

	// The six overlap rules of the paper (§VII-B.1): each implemented as
	// its own predicate over (rt, st), evaluated in its own pass. A pair
	// satisfies exactly one rule, so no duplicate pairs arise.
	rules := []func(a, b interval.Interval) bool{
		// r overlaps s: a.Ts < b.Ts && b.Ts < a.Te && a.Te < b.Te
		func(a, b interval.Interval) bool { return a.Ts < b.Ts && b.Ts < a.Te && a.Te < b.Te },
		// r overlapped-by s
		func(a, b interval.Interval) bool { return b.Ts < a.Ts && a.Ts < b.Te && b.Te < a.Te },
		// r during s (incl. starts/finishes with strict containment on one side)
		func(a, b interval.Interval) bool {
			return b.Ts <= a.Ts && a.Te <= b.Te && !(a.Ts == b.Ts && a.Te == b.Te)
		},
		// r contains s
		func(a, b interval.Interval) bool {
			return a.Ts <= b.Ts && b.Te <= a.Te && !(a.Ts == b.Ts && a.Te == b.Te) && !(b.Ts <= a.Ts && a.Te <= b.Te)
		},
		// r equals s
		func(a, b interval.Interval) bool { return a.Ts == b.Ts && a.Te == b.Te },
		// catch-all guard (never fires; kept to mirror TPDB's 6-rule set)
		func(a, b interval.Interval) bool { return false },
	}

	for _, rule := range rules {
		for i := range r.Tuples {
			rt := &r.Tuples[i]
			for _, st := range groups[rt.Key()] {
				if !rule(rt.T, st.T) {
					continue
				}
				iv, ok := rt.T.Intersect(st.T)
				if !ok {
					continue
				}
				out.Tuples = append(out.Tuples,
					relation.NewDerived(rt.Fact, lineage.And(rt.Lineage, st.Lineage), iv))
			}
		}
	}
	// With duplicate-free inputs the grounded intersection is already
	// duplicate-free, but TPDB always runs deduplication; so do we.
	return Deduplicate(out)
}

// union grounds a single conventional-union rule (concatenation) and relies
// entirely on deduplication to adjust intervals and disjunct lineages.
func union(r, s *relation.Relation) *relation.Relation {
	out := relation.New(relation.Schema{Name: "tpdb", Attrs: r.Schema.Attrs})
	out.Tuples = append(out.Tuples, r.Tuples...)
	out.Tuples = append(out.Tuples, s.Tuples...)
	return Deduplicate(out)
}

// Deduplicate implements TPDB's deduplication stage: tuples with the same
// fact and overlapping intervals are split at each other's boundaries and
// the lineages of exactly-coinciding fragments are combined with ∨.
// Fragments covered by a single tuple keep its lineage unchanged.
func Deduplicate(r *relation.Relation) *relation.Relation {
	groups := factGroups(r)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := relation.New(r.Schema)
	type ev struct {
		t     interval.Time
		start bool
		tu    *relation.Tuple
	}
	for _, k := range keys {
		tuples := groups[k]
		events := make([]ev, 0, 2*len(tuples))
		for _, t := range tuples {
			events = append(events, ev{t.T.Ts, true, t}, ev{t.T.Te, false, t})
		}
		sort.Slice(events, func(i, j int) bool {
			if events[i].t != events[j].t {
				return events[i].t < events[j].t
			}
			return !events[i].start && events[j].start
		})
		active := make(map[*relation.Tuple]struct{})
		var prev interval.Time
		for i := 0; i < len(events); {
			t := events[i].t
			if len(active) > 0 && prev < t {
				emitFragment(out, active, interval.Interval{Ts: prev, Te: t})
			}
			for i < len(events) && events[i].t == t {
				if events[i].start {
					active[events[i].tu] = struct{}{}
				} else {
					delete(active, events[i].tu)
				}
				i++
			}
			prev = t
		}
	}
	return out
}

func emitFragment(out *relation.Relation, active map[*relation.Tuple]struct{}, iv interval.Interval) {
	// Deterministic lineage order: sort contributors by (Ts, Te, lineage).
	tuples := make([]*relation.Tuple, 0, len(active))
	for t := range active {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(i, j int) bool {
		if c := tuples[i].T.Compare(tuples[j].T); c != 0 {
			return c < 0
		}
		return tuples[i].Lineage.Canonical() < tuples[j].Lineage.Canonical()
	})
	var lam *lineage.Expr
	for _, t := range tuples {
		lam = lineage.Or(lam, t.Lineage)
	}
	out.Tuples = append(out.Tuples, relation.NewDerived(tuples[0].Fact, lam, iv))
}

func factGroups(r *relation.Relation) map[string][]*relation.Tuple {
	groups := make(map[string][]*relation.Tuple, 64)
	for i := range r.Tuples {
		t := &r.Tuples[i]
		groups[t.Key()] = append(groups[t.Key()], t)
	}
	return groups
}
