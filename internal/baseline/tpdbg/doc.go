// Package tpdbg re-implements the query-processing strategy of the
// temporal-probabilistic database TPDB (Dylla, Miliaraki, Theobald,
// PVLDB 2013) as used for the paper's comparison (§VII-A).
//
// TPDB evaluates Datalog deduction rules with temporal predicates in two
// stages:
//
//  1. Grounding — for TP set intersection, one deduction rule per Allen
//     overlap relationship is translated to an inner join with inequality
//     conditions on the interval start/end points; each join result
//     carries the conjunction of the input lineages and the overlap
//     subinterval. For TP set union, a single rule corresponds to a
//     conventional union (concatenation), which is why TPDB's union is
//     dramatically cheaper than its intersection.
//  2. Deduplication — duplicates produced by grounding (same fact,
//     overlapping intervals) are removed by adjusting intervals: a sweep
//     splits overlapping duplicates into aligned fragments and disjuncts
//     their lineages.
//
// TP set difference is NOT supported: grounding cannot produce output
// subintervals that are present in only one input relation (Table II).
//
// The grounding joins are nested loops over fact groups with inequality
// predicates — the quadratic behaviour the paper measures. Paper map:
// §VI ("Grounding of TP Deduction Rules"), Table II row TPDB, Figs. 7,
// 10, 11. See docs/PAPER_MAP.md.
package tpdbg
