package relops

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

func sample() *relation.Relation {
	r := relation.New(relation.NewSchema("sales", "Product", "City"))
	r.AddBase(relation.NewFact("milk", "zurich"), "t1", 1, 5, 0.5)
	r.AddBase(relation.NewFact("milk", "basel"), "t2", 3, 8, 0.4)
	r.AddBase(relation.NewFact("chips", "zurich"), "t3", 2, 6, 0.9)
	return r
}

func TestSelectEq(t *testing.T) {
	got, err := SelectEq(sample(), "City", "zurich")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("selected %d tuples", got.Len())
	}
	for i := range got.Tuples {
		if got.Tuples[i].Fact[1] != "zurich" {
			t.Errorf("leaked %v", got.Tuples[i])
		}
	}
	if _, err := SelectEq(sample(), "Nope", "x"); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestRestrict(t *testing.T) {
	got := Restrict(sample(), func(tu *relation.Tuple) bool { return tu.Prob > 0.45 })
	if got.Len() != 2 {
		t.Fatalf("restricted to %d", got.Len())
	}
}

// TestProjectMergesFacts: projecting onto Product merges the two 'milk'
// tuples; the overlap region [3,5) carries the disjunction t1∨t2.
func TestProjectMergesFacts(t *testing.T) {
	got, err := Project(sample(), "Product")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.ValidateDuplicateFree(); err != nil {
		t.Fatalf("projection broke duplicate-freeness: %v", err)
	}
	got.Sort()
	type want struct {
		fact   string
		ts, te int64
		lam    string
	}
	wants := []want{
		{"chips", 2, 6, "t3"},
		{"milk", 1, 3, "t1"},
		{"milk", 3, 5, "t1∨t2"},
		{"milk", 5, 8, "t2"},
	}
	if got.Len() != len(wants) {
		t.Fatalf("got %d tuples:\n%s", got.Len(), got)
	}
	for i, w := range wants {
		tu := got.Tuples[i]
		if tu.Fact.Key() != w.fact || tu.T.Ts != w.ts || tu.T.Te != w.te || tu.Lineage.String() != w.lam {
			t.Errorf("tuple %d: got %v, want %+v", i, tu, w)
		}
	}
	// Probability of the merged fragment: 1-(1-0.5)(1-0.4) = 0.7.
	if p := got.Tuples[2].Prob; math.Abs(p-0.7) > 1e-12 {
		t.Errorf("merged prob %v", p)
	}
}

// TestProjectChangePreservation: fragments with identical contributor sets
// re-merge into maximal intervals.
func TestProjectChangePreservation(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "A", "B"))
	// Same projected fact 'x', adjacent intervals, same single contributor
	// after projection boundary events — merging applies only where the
	// lineage stays equivalent, so the two base tuples stay separate
	// (distinct ids), but a tuple fragmented by a transient contributor
	// whose lineage returns must not merge across the different middle.
	r.AddBase(relation.NewFact("x", "p"), "u1", 0, 10, 0.5)
	r.AddBase(relation.NewFact("x", "q"), "u2", 4, 6, 0.5)
	got, err := Project(r, "A")
	if err != nil {
		t.Fatal(err)
	}
	got.Sort()
	wants := []string{"u1", "u1∨u2", "u1"}
	if got.Len() != 3 {
		t.Fatalf("fragments: %s", got)
	}
	for i, w := range wants {
		if got.Tuples[i].Lineage.String() != w {
			t.Errorf("fragment %d: %v", i, got.Tuples[i])
		}
	}
	// And with an identical-lineage contributor split: re-merge. Project a
	// single tuple — no events inside, stays whole.
	solo := relation.New(relation.NewSchema("s", "A", "B"))
	solo.AddBase(relation.NewFact("x", "p"), "v1", 0, 10, 0.5)
	ps, err := Project(solo, "A")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 1 || ps.Tuples[0].T != interval.New(0, 10) {
		t.Fatalf("solo projection fragmented: %s", ps)
	}
}

// TestProjectSnapshotSemantics: per time point, the projected fact's
// probability equals the possible-worlds probability of the disjunction of
// all covering input tuples.
func TestProjectSnapshotSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		r := relation.New(relation.NewSchema("r", "A", "B"))
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			a := []string{"x", "y"}[rng.Intn(2)]
			b := []string{"p", "q", "w"}[rng.Intn(3)]
			ts := int64(rng.Intn(12))
			te := ts + 1 + int64(rng.Intn(5))
			r.AddBase(relation.NewFact(a, b), fmt.Sprintf("t%d_%d", trial, i),
				ts, te, 0.2+0.7*rng.Float64())
		}
		// Drop duplicate-violating tuples to restore the invariant.
		r = dedupeByPair(r)
		got, err := Project(r, "A")
		if err != nil {
			t.Fatal(err)
		}
		if err := got.ValidateDuplicateFree(); err != nil {
			t.Fatalf("trial %d: %v\nin=%s\nout=%s", trial, err, r, got)
		}
		dom, ok := r.TimeDomain()
		if !ok {
			continue
		}
		for tp := dom.Ts; tp < dom.Te; tp++ {
			for _, fk := range []string{"x", "y"} {
				var lam *lineage.Expr
				for i := range r.Tuples {
					tu := &r.Tuples[i]
					if tu.Fact[0] == fk && tu.T.Contains(tp) {
						lam = lineage.Or(lam, tu.Lineage)
					}
				}
				want := 0.0
				if lam != nil {
					want = lam.ProbPossibleWorlds()
				}
				gotLam := got.LineageAt(fk, tp)
				gotP := 0.0
				if gotLam != nil {
					gotP = gotLam.ProbPossibleWorlds()
				}
				if math.Abs(gotP-want) > 1e-9 {
					t.Fatalf("trial %d fact %s t=%d: %v vs %v\nin=%s\nout=%s",
						trial, fk, tp, gotP, want, r, got)
				}
			}
		}
	}
}

func dedupeByPair(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema)
	for i := range r.Tuples {
		tu := r.Tuples[i]
		ok := true
		for j := range out.Tuples {
			if out.Tuples[j].Key() == tu.Key() && out.Tuples[j].T.Overlaps(tu.T) {
				ok = false
				break
			}
		}
		if ok {
			out.Tuples = append(out.Tuples, tu)
		}
	}
	return out
}

func TestProjectErrors(t *testing.T) {
	if _, err := Project(sample(), "Nope"); err == nil {
		t.Error("unknown attribute must fail")
	}
}

// TestProjectionCanLeave1OF documents the tractability boundary: a set
// operation downstream of a projection can repeat variables.
func TestProjectionCanLeave1OF(t *testing.T) {
	r := relation.New(relation.NewSchema("r", "A", "B"))
	r.AddBase(relation.NewFact("x", "p"), "w1", 0, 4, 0.5)
	r.AddBase(relation.NewFact("x", "q"), "w2", 2, 6, 0.5)
	p, err := Project(r, "A")
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tuples {
		if !p.Tuples[i].Lineage.IsOneOccurrence() {
			t.Fatalf("single projection already violates 1OF: %s", p.Tuples[i].Lineage)
		}
	}
	// The projection itself is 1OF per tuple, but tuples share variables
	// ACROSS intervals (w1 occurs in [0,2), [2,4)): combining them in a
	// self-set-operation repeats variables.
	seen := make(map[string]bool)
	shared := false
	for i := range p.Tuples {
		for _, v := range p.Tuples[i].Lineage.Vars(nil) {
			if seen[v] {
				shared = true
			}
			seen[v] = true
		}
	}
	if !shared {
		t.Error("expected shared variables across projected fragments")
	}
}
