package relops

import (
	"fmt"
	"sort"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/relation"
)

// Predicate decides tuple membership for Restrict.
type Predicate func(*relation.Tuple) bool

// Restrict returns the tuples satisfying the predicate (generalized σ).
// Selections preserve duplicate-freeness and change preservation trivially.
func Restrict(r *relation.Relation, pred Predicate) *relation.Relation {
	out := relation.New(r.Schema)
	for i := range r.Tuples {
		if pred(&r.Tuples[i]) {
			out.Tuples = append(out.Tuples, r.Tuples[i])
		}
	}
	return out
}

// SelectEq is σ[attr = value].
func SelectEq(r *relation.Relation, attr, value string) (*relation.Relation, error) {
	idx := -1
	for i, a := range r.Schema.Attrs {
		if a == attr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("relops: relation %q has no attribute %q", r.Schema.Name, attr)
	}
	return Restrict(r, func(t *relation.Tuple) bool {
		return idx < len(t.Fact) && t.Fact[idx] == value
	}), nil
}

// Project computes the TP projection of r onto the named attributes.
// Per projected fact, overlapping contributor intervals are fragmented at
// each other's boundaries, fragment lineages are or()-ed over the
// contributors (possible-worlds duplicate elimination), and adjacent
// fragments with syntactically equivalent lineage are re-merged.
func Project(r *relation.Relation, attrs ...string) (*relation.Relation, error) {
	idxs := make([]int, len(attrs))
	for ai, a := range attrs {
		idxs[ai] = -1
		for i, have := range r.Schema.Attrs {
			if have == a {
				idxs[ai] = i
				break
			}
		}
		if idxs[ai] < 0 {
			return nil, fmt.Errorf("relops: relation %q has no attribute %q", r.Schema.Name, a)
		}
	}

	type contributor struct {
		t   interval.Time
		del bool
		tu  *relation.Tuple
	}
	groups := make(map[string][]contributor)
	factOf := make(map[string]relation.Fact)
	for i := range r.Tuples {
		tu := &r.Tuples[i]
		pf := make(relation.Fact, len(idxs))
		for ai, idx := range idxs {
			if idx < len(tu.Fact) {
				pf[ai] = tu.Fact[idx]
			}
		}
		k := pf.Key()
		factOf[k] = pf
		groups[k] = append(groups[k],
			contributor{tu.T.Ts, false, tu}, contributor{tu.T.Te, true, tu})
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := relation.New(relation.Schema{Name: "π(" + r.Schema.Name + ")", Attrs: attrs})
	for _, k := range keys {
		evs := groups[k]
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].del && !evs[j].del
		})
		active := make(map[*relation.Tuple]struct{})
		var prev interval.Time
		lastIdx := -1 // index into out.Tuples of this group's last fragment
		for i := 0; i < len(evs); {
			t := evs[i].t
			if len(active) > 0 && prev < t {
				lam := disjoin(active)
				iv := interval.Interval{Ts: prev, Te: t}
				if last := tupleAt(out, lastIdx); last != nil && last.T.Te == iv.Ts &&
					lineage.EquivalentSyntactic(last.Lineage, lam) {
					last.T.Te = iv.Te // change preservation: extend
				} else {
					out.Tuples = append(out.Tuples, relation.NewDerived(factOf[k], lam, iv))
					lastIdx = len(out.Tuples) - 1
				}
			}
			for i < len(evs) && evs[i].t == t {
				if evs[i].del {
					delete(active, evs[i].tu)
				} else {
					active[evs[i].tu] = struct{}{}
				}
				i++
			}
			prev = t
		}
	}
	return out, nil
}

func tupleAt(r *relation.Relation, idx int) *relation.Tuple {
	if idx < 0 {
		return nil
	}
	return &r.Tuples[idx]
}

// disjoin or()s the lineages of the active contributors in a deterministic
// order (sorted by interval, then canonical lineage).
func disjoin(active map[*relation.Tuple]struct{}) *lineage.Expr {
	tuples := make([]*relation.Tuple, 0, len(active))
	for t := range active {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(i, j int) bool {
		if c := tuples[i].T.Compare(tuples[j].T); c != 0 {
			return c < 0
		}
		return tuples[i].Lineage.Canonical() < tuples[j].Lineage.Canonical()
	})
	var lam *lineage.Expr
	for _, t := range tuples {
		lam = lineage.Or(lam, t.Lineage)
	}
	return lam
}
