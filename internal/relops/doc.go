// Package relops extends the TP set operations toward full relational
// algebra — the direction the paper names as future work (§VIII). It
// provides duplicate-free-preserving selection and temporal-probabilistic
// projection with lineage-disjunctive duplicate elimination.
//
// Projection is the interesting case: projecting facts onto an attribute
// subset can map several distinct facts to the same projected fact, so at
// one time point several input tuples may support one output fact. The
// output lineage is the disjunction of the contributors' lineages, and the
// intervals are re-fragmented at contributor boundaries (snapshot
// reducibility) and re-coalesced where lineage stays equivalent (change
// preservation). Unlike non-repeating set queries, projections can produce
// output lineage that is NOT in one-occurrence form further downstream —
// this is exactly the boundary where probabilistic query evaluation leaves
// the tractable class, and the probability evaluator falls back to Shannon
// expansion automatically.
//
// Invariant: both operators preserve duplicate-freeness (Def. 1) and
// change preservation (Def. 2); selection additionally commutes with
// ∪Tp/∩Tp/−Tp, which is what licenses the query rewriter's push-down.
//
// Paper map: §VIII (future work: further TP operators); selection σ also
// appears in Fig. 6. See docs/PAPER_MAP.md.
package relops
