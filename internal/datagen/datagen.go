package datagen

import (
	"fmt"
	"math/rand"

	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/relation"
)

// SyntheticConfig parameterizes the §VII-B generator for one relation.
type SyntheticConfig struct {
	Name      string // relation name and base-tuple id prefix
	NumTuples int
	NumFacts  int   // tuples are distributed round-robin over this many facts
	MaxLen    int64 // interval lengths are uniform in [1, MaxLen]
	MaxGap    int64 // gaps between consecutive same-fact tuples are uniform in [0, MaxGap]
	Seed      int64
}

// Synthetic generates a duplicate-free relation: per fact, a chain of
// intervals with random lengths in [1, MaxLen] and random gaps in
// [0, MaxGap], mirroring the paper's construction ("randomly select the
// length of the intervals and the distance between two consecutive
// intervals").
func Synthetic(cfg SyntheticConfig) *relation.Relation {
	if cfg.NumFacts < 1 {
		cfg.NumFacts = 1
	}
	if cfg.MaxLen < 1 {
		cfg.MaxLen = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := relation.New(relation.NewSchema(cfg.Name, "Fact"))
	cursors := make([]interval.Time, cfg.NumFacts)
	facts := make([]relation.Fact, cfg.NumFacts)
	// Fact chains tile the timeline: fact f starts where fact f−1's chain
	// is expected to end. The offset formula is deterministic in the
	// configuration (not the seed), so the r and s relations of a pair
	// stay aligned per fact and the overlapping factor is controlled by
	// the length/gap parameters alone. Without tiling, every fact's chain
	// would crowd the same time range and the cross-fact temporal overlap
	// would grow with the fact count — penalizing pair-then-filter
	// approaches (TI) in a way the paper's fact-count sweep does not.
	tile := int64(cfg.NumTuples/cfg.NumFacts+1) * (cfg.MaxLen + 1 + cfg.MaxGap) / 2
	for f := range facts {
		facts[f] = relation.NewFact(fmt.Sprintf("f%06d", f))
		cursors[f] = interval.Time(int64(f) * tile)
	}
	for i := 0; i < cfg.NumTuples; i++ {
		f := i % cfg.NumFacts
		gap := interval.Time(0)
		if cfg.MaxGap > 0 {
			gap = rng.Int63n(cfg.MaxGap + 1)
		}
		ts := cursors[f] + gap
		length := 1 + rng.Int63n(cfg.MaxLen)
		te := ts + length
		cursors[f] = te
		r.AddBase(facts[f], fmt.Sprintf("%s%d", cfg.Name, i), ts, te, 0.1+0.9*rng.Float64())
	}
	r.Intern()
	return r
}

// PairConfig parameterizes a pair of relations generated to reach a target
// overlapping factor via the length asymmetry of Table III.
type PairConfig struct {
	NumTuples int // per relation
	NumFacts  int
	MaxLenR   int64
	MaxLenS   int64
	MaxGap    int64
	Seed      int64
}

// Table III of the paper: the generator settings that realize each
// overlapping factor at MaxGap = 3.
var TableIII = []struct {
	OverlapFactor float64
	MaxLenR       int64
	MaxLenS       int64
}{
	{0.03, 100, 3},
	{0.1, 100, 10},
	{0.4, 50, 10},
	{0.6, 3, 3},
	{0.8, 10, 10},
}

// Pair generates the (r, s) input pair of a synthetic experiment.
func Pair(cfg PairConfig) (r, s *relation.Relation) {
	r = Synthetic(SyntheticConfig{
		Name: "r", NumTuples: cfg.NumTuples, NumFacts: cfg.NumFacts,
		MaxLen: cfg.MaxLenR, MaxGap: cfg.MaxGap, Seed: cfg.Seed,
	})
	s = Synthetic(SyntheticConfig{
		Name: "s", NumTuples: cfg.NumTuples, NumFacts: cfg.NumFacts,
		MaxLen: cfg.MaxLenS, MaxGap: cfg.MaxGap, Seed: cfg.Seed + 1,
	})
	// One shared dictionary across the pair keeps the whole set operation
	// — sort, advancer, partitioning, merge — on integer compares.
	relation.InternAll(r, s)
	return r, s
}

// FixedOverlapPair generates a pair calibrated to the §VII-B.1 runtime
// experiments: overlapping factor ≈ 0.6, lengths and gaps in [0,3]
// ("we fix the overlapping factor to 0.6, and we randomly select the length
// of the intervals and the distance between two consecutive intervals in
// [0,3]").
func FixedOverlapPair(numTuples, numFacts int, seed int64) (r, s *relation.Relation) {
	return Pair(PairConfig{
		NumTuples: numTuples, NumFacts: numFacts,
		MaxLenR: 3, MaxLenS: 3, MaxGap: 3, Seed: seed,
	})
}

// MeteoConfig parameterizes the Meteo-Swiss-like simulator.
type MeteoConfig struct {
	NumTuples int
	Stations  int // 80 in the original dataset
	Seed      int64
}

// Meteo synthesizes a relation with the distributional shape of the Meteo
// Swiss dataset of Table IV: few facts (stations), long heavy-tailed
// interval durations (merged 10-minute measurements), and a dense timeline
// with a few dozen tuples valid per time point.
//
// Substitution note (DESIGN.md): the original data is a proprietary
// extraction; only its shape — few facts, long intervals, high per-point
// density — drives the experiments, and that shape is reproduced here.
func Meteo(cfg MeteoConfig) *relation.Relation {
	if cfg.Stations < 1 {
		cfg.Stations = 80
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := relation.New(relation.NewSchema("meteo", "Station"))
	cursors := make([]interval.Time, cfg.Stations)
	for i := 0; i < cfg.NumTuples; i++ {
		st := i % cfg.Stations
		// Heavy-tailed duration: mostly short runs of stable temperature,
		// occasionally very long ones. Base unit 600 (10 minutes in
		// seconds), tail exponent ~1.5.
		u := rng.Float64()
		dur := interval.Time(600 * (1 + int64(20/(0.05+u*u))))
		gap := rng.Int63n(600)
		ts := cursors[st] + gap
		te := ts + dur
		cursors[st] = te
		fact := relation.NewFact(fmt.Sprintf("station%02d", st))
		r.AddBase(fact, fmt.Sprintf("m%d", i), ts, te, 0.1+0.9*rng.Float64())
	}
	r.Intern()
	return r
}

// WebkitConfig parameterizes the Webkit-like simulator.
type WebkitConfig struct {
	NumTuples int
	// NumFacts defaults to NumTuples/3, matching the original ratio
	// (484K files over 1.5M revisions).
	NumFacts int
	Seed     int64
}

// Webkit synthesizes a relation with the shape of the Webkit SVN dataset of
// Table IV: very many facts (files), and bursty commits — many tuples start
// or end at exactly the same time point (commits touch many files at once),
// the property that degrades the Timeline Index baseline (§VII-C).
func Webkit(cfg WebkitConfig) *relation.Relation {
	if cfg.NumFacts <= 0 {
		cfg.NumFacts = cfg.NumTuples/3 + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := relation.New(relation.NewSchema("webkit", "File"))
	cursors := make([]interval.Time, cfg.NumFacts)
	// Commit timeline: bursts at shared time points.
	commitTimes := make([]interval.Time, 0, cfg.NumTuples/8+2)
	t := interval.Time(0)
	for len(commitTimes)*8 < cfg.NumTuples+16 {
		t += 1 + rng.Int63n(5000)
		commitTimes = append(commitTimes, t)
	}
	for i := 0; i < cfg.NumTuples; i++ {
		f := rng.Intn(cfg.NumFacts)
		// Each file version lives from one commit burst to a later one.
		ci := sortSearchTime(commitTimes, cursors[f])
		if ci >= len(commitTimes)-1 {
			// File history exhausted the timeline; restart on a new file id
			// (keeps the relation duplicate-free).
			f = (f + i) % cfg.NumFacts
			ci = sortSearchTime(commitTimes, cursors[f])
			if ci >= len(commitTimes)-1 {
				continue
			}
		}
		span := 1 + rng.Intn(7)
		ei := ci + span
		if ei >= len(commitTimes) {
			ei = len(commitTimes) - 1
		}
		ts, te := commitTimes[ci], commitTimes[ei]
		if ts >= te {
			continue
		}
		cursors[f] = te
		fact := relation.NewFact(fmt.Sprintf("file%06d", f))
		r.AddBase(fact, fmt.Sprintf("w%d", i), ts, te, 0.1+0.9*rng.Float64())
	}
	r.Intern()
	return r
}

func sortSearchTime(ts []interval.Time, min interval.Time) int {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < min {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shifted derives a second relation from r with the paper's §VII-C method:
// every interval keeps its length but is moved to a new start point drawn
// from the distribution of the original start points (approximated by
// sampling original starts and adding bounded jitter). Identifiers are
// re-prefixed to stay globally unique; same-fact overlaps within the output
// are resolved by pushing tuples right, preserving duplicate-freeness.
func Shifted(r *relation.Relation, prefix string, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	starts := make([]interval.Time, 0, len(r.Tuples))
	var avgLen int64
	for i := range r.Tuples {
		starts = append(starts, r.Tuples[i].T.Ts)
		avgLen += r.Tuples[i].T.Duration()
	}
	if len(starts) == 0 {
		return relation.New(r.Schema)
	}
	avgLen /= int64(len(starts))
	if avgLen < 1 {
		avgLen = 1
	}

	out := relation.New(r.Schema)
	for i := range r.Tuples {
		t := r.Tuples[i]
		base := starts[rng.Intn(len(starts))]
		jitter := rng.Int63n(2*avgLen+1) - avgLen
		ts := base + jitter
		te := ts + t.T.Duration()
		out.AddBase(t.Fact, fmt.Sprintf("%s%d", prefix, i), ts, te, 0.1+0.9*rng.Float64())
	}
	// Shifted facts are a subset of r's, so binding to r's dictionary
	// keeps the derived relation dict-aligned with its source (the
	// Fig. 10/11 pairs run set operations between the two).
	if d := r.Dict(); d == nil || !out.Bind(d) {
		out.Intern()
	}
	// Resolve same-fact overlaps by sorting and pushing right.
	out.Sort()
	lastEnd := make(map[string]interval.Time, 1024)
	for i := range out.Tuples {
		t := &out.Tuples[i]
		if end, ok := lastEnd[t.Key()]; ok && t.T.Ts < end {
			d := end - t.T.Ts
			t.T.Ts += d
			t.T.Te += d
		}
		lastEnd[t.Key()] = t.T.Te
	}
	return out
}

// Subset returns a relation with the first n tuples of r (in r's current
// order). The experiments of §VII-C run over "random subsets" of the real
// datasets; generators here produce shuffled data already, so a prefix is a
// random subset.
func Subset(r *relation.Relation, n int) *relation.Relation {
	if n > len(r.Tuples) {
		n = len(r.Tuples)
	}
	out := relation.New(r.Schema)
	out.Tuples = append(out.Tuples, r.Tuples[:n]...)
	out.AdoptBinding()
	return out
}
