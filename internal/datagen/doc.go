// Package datagen generates the workloads of the paper's experimental
// evaluation (§VII):
//
//   - the synthetic datasets of §VII-B, parameterized by tuple count, fact
//     count, maximal interval length and maximal time distance between
//     consecutive same-fact tuples — the knobs of Table III that control
//     the overlapping factor;
//   - synthetic stand-ins for the two real-world datasets of §VII-C
//     (Table IV): a Meteo-Swiss-like relation (few facts = stations, long
//     merged-measurement intervals) and a Webkit-like relation (very many
//     facts = files, bursty event points with many tuples starting or
//     ending at the same instant);
//   - the paper's method for deriving a second relation from a real
//     dataset: shift the intervals, keeping their lengths, with start
//     points following the original distribution (Shifted).
//
// Invariant: all generators are deterministic given their seed and produce
// duplicate-free relations with unique base-tuple identifiers (prefixed by
// the relation name — give the relations of one database distinct names,
// or their lineage variables will alias).
//
// Paper map: §VII-B (synthetic + Table III), §VII-C (Table IV shapes,
// shifted derivation). See docs/PAPER_MAP.md.
package datagen
