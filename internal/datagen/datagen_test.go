package datagen

import (
	"testing"

	"github.com/tpset/tpset/internal/relation"
)

func TestSyntheticBasics(t *testing.T) {
	r := Synthetic(SyntheticConfig{Name: "r", NumTuples: 1000, NumFacts: 7, MaxLen: 5, MaxGap: 3, Seed: 1})
	if r.Len() != 1000 {
		t.Fatalf("len %d", r.Len())
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	s := relation.ComputeStats(r)
	if s.NumFacts != 7 {
		t.Errorf("facts %d", s.NumFacts)
	}
	if s.MaxDuration > 5 || s.MinDuration < 1 {
		t.Errorf("durations out of range: %+v", s)
	}
	// Determinism.
	r2 := Synthetic(SyntheticConfig{Name: "r", NumTuples: 1000, NumFacts: 7, MaxLen: 5, MaxGap: 3, Seed: 1})
	if relation.Diff(r, r2) != "" {
		t.Error("generator not deterministic")
	}
	r3 := Synthetic(SyntheticConfig{Name: "r", NumTuples: 1000, NumFacts: 7, MaxLen: 5, MaxGap: 3, Seed: 2})
	if relation.Diff(r, r3) == "" {
		t.Error("different seeds must differ")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	r := Synthetic(SyntheticConfig{Name: "r", NumTuples: 10})
	if r.Len() != 10 {
		t.Fatal("defaults must produce tuples")
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
}

func TestPairOverlapMonotonicity(t *testing.T) {
	// The Table III configurations must produce strictly increasing
	// measured overlap factors — the property Fig. 9a depends on.
	prev := -1.0
	for _, row := range TableIII {
		r, s := Pair(PairConfig{
			NumTuples: 20000, NumFacts: 1,
			MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS, MaxGap: 3, Seed: 5,
		})
		got := relation.OverlapFactor(r, s)
		if got <= prev {
			t.Fatalf("overlap factor not increasing at config %+v: %v after %v", row, got, prev)
		}
		prev = got
	}
	if prev < 0.5 {
		t.Errorf("largest config should reach a high factor, got %v", prev)
	}
}

func TestFixedOverlapPair(t *testing.T) {
	r, s := FixedOverlapPair(20000, 1, 3)
	f := relation.OverlapFactor(r, s)
	// §VII-B.1 targets 0.6; the duration-weighted measurement of the
	// [1,3]-length / [0,3]-gap construction lands near 0.4 (see
	// EXPERIMENTS.md); accept a band around it.
	if f < 0.3 || f > 0.7 {
		t.Errorf("fixed-overlap factor %v outside [0.3,0.7]", f)
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
}

func TestMeteoShape(t *testing.T) {
	r := Meteo(MeteoConfig{NumTuples: 8000, Stations: 80, Seed: 1})
	if r.Len() != 8000 {
		t.Fatalf("len %d", r.Len())
	}
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	s := relation.ComputeStats(r)
	if s.NumFacts != 80 {
		t.Errorf("stations: %d", s.NumFacts)
	}
	// Table IV shape: long durations, many tuples valid per point.
	if s.MinDuration < 600 {
		t.Errorf("min duration %d below the 10-minute base unit", s.MinDuration)
	}
	if s.AvgPerPoint < 10 {
		t.Errorf("timeline too sparse: %+v", s)
	}
}

func TestWebkitShape(t *testing.T) {
	r := Webkit(WebkitConfig{NumTuples: 9000, Seed: 1})
	if err := r.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	s := relation.ComputeStats(r)
	// Very many facts (≈ n/3) and bursty event points: far fewer distinct
	// points than 2·n.
	if s.NumFacts < r.Len()/6 {
		t.Errorf("too few facts: %d of %d tuples", s.NumFacts, r.Len())
	}
	if s.DistinctPoints >= r.Len() {
		t.Errorf("event points not bursty: %d points for %d tuples", s.DistinctPoints, r.Len())
	}
	if s.MaxPerPoint < 50 {
		t.Errorf("no burst concentration: %+v", s)
	}
}

func TestShifted(t *testing.T) {
	r := Meteo(MeteoConfig{NumTuples: 3000, Stations: 20, Seed: 2})
	s := Shifted(r, "sh", 3)
	if s.Len() != r.Len() {
		t.Fatalf("len %d vs %d", s.Len(), r.Len())
	}
	if err := s.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	// Interval lengths are preserved as a multiset per... globally: compare
	// sorted length lists.
	lens := func(rel *relation.Relation) map[int64]int {
		m := make(map[int64]int)
		for i := range rel.Tuples {
			m[rel.Tuples[i].T.Duration()]++
		}
		return m
	}
	rl, sl := lens(r), lens(s)
	for d, n := range rl {
		if sl[d] != n {
			t.Fatalf("duration multiset changed at %d: %d vs %d", d, n, sl[d])
		}
	}
	if f := relation.OverlapFactor(r, s); f <= 0 {
		t.Errorf("shifted relation should still overlap the original, factor %v", f)
	}
	if Shifted(relation.New(r.Schema), "x", 1).Len() != 0 {
		t.Error("empty input")
	}
}

func TestSubset(t *testing.T) {
	r := Synthetic(SyntheticConfig{Name: "r", NumTuples: 100, NumFacts: 3, MaxLen: 3, MaxGap: 3, Seed: 1})
	s := Subset(r, 40)
	if s.Len() != 40 {
		t.Fatalf("len %d", s.Len())
	}
	if Subset(r, 1000).Len() != 100 {
		t.Error("overshoot must clamp")
	}
}
