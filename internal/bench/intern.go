package bench

import (
	"fmt"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

// The intern-vs-string experiment quantifies the interned key-codec
// representation: with every fact mapped to a dense, order-preserving
// FactID, the sort step and the LAWA sweep compare packed
// (FactID, Ts, Te) integers instead of variable-length key strings. The
// experiment runs one full set operation (clone + sort + sweep, the
// Fig. 5 pipeline) over Table-III-shaped inputs at each overlapping
// factor, in three representations:
//
//   - string:   inputs unbound, interning disabled — the pre-interning
//     execution stack, all comparisons on key strings.
//   - intern-build: inputs unbound, interning enabled — the operation
//     builds the shared dictionary itself, so the measured time includes
//     dictionary construction (the worst case for interning).
//   - interned: inputs ingest-aligned to one shared dictionary (what
//     datagen, csvio and the service catalog produce) — the steady-state
//     fast path; only integer compares inside the measured region.
//
// All three produce bit-identical output (the cross-validation suite
// pins this); the experiment reports wall time and allocated bytes.

// internFacts sizes the fact universe: ~100 tuples per fact gives long
// same-fact runs for the sweep and plenty of distinct facts for
// cross-fact comparisons during the sort (Table III itself fixes one
// fact; the fact dimension is what exercises key compares).
func internFacts(n int) int {
	f := n / 100
	if f < 1 {
		f = 1
	}
	return f
}

// twoAttr widens a generated single-attribute relation to two attributes
// (an injective mapping, so duplicate-freeness and the fact partition are
// preserved). Multi-attribute facts are where the string representation
// pays its allocation tax: every key derivation joins the values into a
// fresh string — at admission validation and for every derived output
// tuple — while the interned representation reuses ids and inherited
// keys.
func twoAttr(r *relation.Relation) *relation.Relation {
	out := relation.New(relation.NewSchema(r.Schema.Name, "F", "Zone"))
	for i := range r.Tuples {
		t := r.Tuples[i]
		v := t.Fact[0]
		zone := "z"
		if len(v) > 3 {
			zone += v[len(v)-3:]
		}
		out.Add(relation.Tuple{
			Fact:    relation.NewFact(v, zone),
			Lineage: t.Lineage,
			T:       t.T,
			Prob:    t.Prob,
		})
	}
	return out
}

// InternVsString sweeps the Table III overlapping-factor configurations
// at fixed size and compares the three tuple representations on a full
// ∩Tp (sort + LAWA sweep) per point.
func InternVsString(cfg Config) Result {
	n := cfg.scaled(1000000)
	facts := internFacts(n)

	series := []Series{
		{Approach: "string"},
		{Approach: "intern-build"},
		{Approach: "interned"},
	}
	note := ""

	for _, row := range datagen.TableIII {
		label := fmt.Sprintf("%g", row.OverlapFactor)
		// The generated pair is widened to two-attribute facts and
		// interned against one shared dictionary — the "interned" inputs,
		// as csvio/datagen/catalog admission would produce them. The other
		// variants run on unbound clones. Every variant runs the full
		// admission-to-result pipeline: duplicate-freeness validation,
		// clone + sort, LAWA sweep.
		r1, s1 := datagen.Pair(datagen.PairConfig{
			NumTuples: n, NumFacts: facts,
			MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS,
			MaxGap: 3, Seed: cfg.Seed,
		})
		r, s := twoAttr(r1), twoAttr(s1)
		relation.InternAll(r, s)
		rPlain, sPlain := r.Clone(), s.Clone()
		rPlain.Unbind()
		sPlain.Unbind()

		runs := []struct {
			name string
			r, s *relation.Relation
			opts core.Options
		}{
			{"string", rPlain, sPlain, core.Options{Validate: true, NoIntern: true}},
			{"intern-build", rPlain, sPlain, core.Options{Validate: true}},
			{"interned", r, s, core.Options{Validate: true}},
		}
		for i, run := range runs {
			if over(series[i], cfg.Budget) {
				series[i].Cells = append(series[i].Cells, Cell{X: row.OverlapFactor, Label: label, Skipped: true})
				continue
			}
			// Best of three: single runs are noisy (GC pacing, scheduler)
			// and the variants' deltas are well under the noise floor of
			// one run on a loaded machine.
			const reps = 3
			var best Cell
			for rep := 0; rep < reps; rep++ {
				var out *relation.Relation
				d, alloc, mallocs := measureAlloc(func() {
					var err error
					out, err = core.Intersect(run.r, run.s, run.opts)
					if err != nil {
						panic(fmt.Sprintf("bench: intern-vs-string: %v", err))
					}
				})
				if rep == 0 || d < best.Duration {
					best = Cell{X: row.OverlapFactor, Label: label, Duration: d, Output: out.Len(), AllocBytes: alloc, Mallocs: mallocs}
				}
			}
			series[i].Cells = append(series[i].Cells, best)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-13s ovl=%-5s %12s  %8.1fMB  out=%d\n",
					run.name, label, best.Duration.Round(time.Microsecond), mb(best.AllocBytes), best.Output)
			}
		}
		sc := series[0].Cells[len(series[0].Cells)-1]
		ic := series[2].Cells[len(series[2].Cells)-1]
		if !sc.Skipped && !ic.Skipped && ic.Duration > 0 && ic.AllocBytes > 0 {
			note += fmt.Sprintf("ovl %s: %.2fx faster, %.2fx less alloc; ", label,
				float64(sc.Duration)/float64(ic.Duration),
				float64(sc.AllocBytes)/float64(ic.AllocBytes))
		}
	}

	return Result{
		Name:     "intern-vs-string",
		Title:    "interned (FactID) vs string tuple keys: sort + LAWA sweep (∩Tp)",
		XLabel:   "ovl factor",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, %d facts, Table III length/gap configs; interned-vs-string: %s", n, facts, note),
	}
}
