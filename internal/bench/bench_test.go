package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

func tinyCfg() Config {
	return Config{Scale: 0.0005, Budget: 5 * time.Second, Seed: 1}
}

func TestApproachRegistryMatchesTableII(t *testing.T) {
	want := map[string][3]bool{ // ∪, −, ∩
		"LAWA": {true, true, true},
		"NORM": {true, true, true},
		"TPDB": {true, false, true},
		"OIP":  {false, false, true},
		"TI":   {false, false, true},
	}
	as := Approaches()
	if len(as) != len(want) {
		t.Fatalf("registry size %d", len(as))
	}
	for _, a := range as {
		w, ok := want[a.Name]
		if !ok {
			t.Fatalf("unexpected approach %s", a.Name)
		}
		got := [3]bool{a.Supports[core.OpUnion], a.Supports[core.OpExcept], a.Supports[core.OpIntersect]}
		if got != w {
			t.Errorf("%s supports %v, want %v", a.Name, got, w)
		}
	}
	if _, ok := ApproachByName("LAWA"); !ok {
		t.Error("lookup")
	}
	if _, ok := ApproachByName("nope"); ok {
		t.Error("bogus lookup")
	}
}

// TestApproachesProduceEqualOutputCounts: every approach that runs an
// operation reports the same output cardinality — a cheap end-to-end
// equivalence check at the harness level.
func TestApproachesProduceEqualOutputCounts(t *testing.T) {
	r, s := datagen.FixedOverlapPair(500, 4, 2)
	for _, op := range []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept} {
		counts := map[string]int{}
		for _, a := range Approaches() {
			if !a.Supports[op] {
				continue
			}
			n, err := a.Run(op, r, s)
			if err != nil {
				t.Fatalf("%s %v: %v", a.Name, op, err)
			}
			counts[a.Name] = n
		}
		first := -1
		for name, n := range counts {
			if first == -1 {
				first = n
				continue
			}
			if n != first {
				t.Fatalf("%v: cardinality disagreement: %v", op, counts)
			}
			_ = name
		}
	}
}

func TestSweepBudgetCutsOff(t *testing.T) {
	slowGen := func() (*relation.Relation, *relation.Relation) {
		return datagen.FixedOverlapPair(3000, 1, 1)
	}
	sw := Sweep{
		Op: core.OpIntersect,
		Points: []Point{
			{X: 1, Gen: slowGen},
			{X: 2, Gen: slowGen},
		},
		Budget: time.Nanosecond, // everything overruns instantly
	}
	series := sw.Run([]string{"NORM"}, nil)
	if len(series) != 1 || len(series[0].Cells) != 2 {
		t.Fatalf("series shape: %+v", series)
	}
	if series[0].Cells[1].Skipped != true {
		t.Error("second point should be skipped after the first overran")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	wantNames := []string{
		"table2", "fig7a", "fig7b", "fig7c", "fig8", "table3", "fig9a",
		"fig9b", "table4", "fig10a", "fig10b", "fig10c", "fig11a", "fig11b", "fig11c",
		"par-size", "par-workers", "serve-cache", "stream-vs-materialize",
		"intern-vs-string", "batch-vs-tuple", "soa-vs-aos", "trace-overhead", "segment-vs-heap",
	}
	got := Names()
	if strings.Join(got, ",") != strings.Join(wantNames, ",") {
		t.Fatalf("experiments: %v", got)
	}
	if len(SortedNames()) != len(wantNames) {
		t.Error("sorted names")
	}
	if _, ok := ExperimentByName("fig8"); !ok {
		t.Error("lookup fig8")
	}
	if _, ok := ExperimentByName("fig99"); ok {
		t.Error("bogus experiment")
	}
}

// TestTinyEndToEnd runs a cut-down version of each experiment to make sure
// every code path executes and renders.
func TestTinyEndToEnd(t *testing.T) {
	cfg := tinyCfg()
	for _, name := range []string{"table2", "table3", "fig7a", "fig9b", "intern-vs-string", "trace-overhead"} {
		exp, ok := ExperimentByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		res := exp.Run(cfg)
		var buf bytes.Buffer
		res.Print(&buf)
		if !strings.Contains(buf.String(), res.Name) {
			t.Errorf("%s: print output lacks the experiment name:\n%s", name, buf.String())
		}
		var csv bytes.Buffer
		res.PrintCSV(&csv)
		if name == "fig7a" {
			if !strings.HasPrefix(csv.String(), "tuples,LAWA_ms") {
				t.Errorf("csv header: %q", csv.String())
			}
			if res.SpeedupTable() == "" {
				t.Error("speedup digest empty")
			}
		}
	}
}
