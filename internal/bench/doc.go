// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§VII). It provides the approach
// registry (Table II), timed size sweeps with per-approach time budgets
// (the quadratic baselines are cut off rather than left to run for hours,
// mirroring the paper's practice of dropping approaches that are orders of
// magnitude slower), and plain-text/CSV series printers.
//
// Beyond the paper it adds the extension-tier experiments: par-size and
// par-workers (partition-parallel engine speedup curves) and serve-cache
// (query-service result cache, cold evaluation vs cache hit).
//
// Scaling: the paper's largest runs (50M tuples on a 64 GB Xeon box) are
// parameterized down by a scale factor (Config.Scale; cmd/tpbench -scale),
// reported in every Result so recorded numbers always carry their scale.
// Shapes — who wins, by what factor, where crossovers fall — are
// preserved; absolute milliseconds are not claimed.
//
// Paper map: §VII end to end (Figs. 7–11, Tables II–IV); run any
// experiment with cmd/tpbench. See docs/PAPER_MAP.md.
package bench
