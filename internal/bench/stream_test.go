package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamVsMaterializeTiny runs a cut-down stream-vs-materialize sweep
// end to end: both executors must produce identical cardinalities at
// every depth, and at the deepest tree the cursor executor must allocate
// less than the materializing evaluator — the acceptance criterion of the
// streaming execution layer.
func TestStreamVsMaterializeTiny(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.05 // big enough that intermediates dominate constant costs

	res := StreamVsMaterialize(cfg)
	if res.Name != "stream-vs-materialize" || len(res.Series) != 2 {
		t.Fatalf("shape: %q with %d series", res.Name, len(res.Series))
	}
	mat, str := res.Series[0], res.Series[1]
	if len(mat.Cells) != len(streamDepths) || len(str.Cells) != len(streamDepths) {
		t.Fatalf("cells: %d and %d, want %d", len(mat.Cells), len(str.Cells), len(streamDepths))
	}
	for i := range mat.Cells {
		if mat.Cells[i].Skipped || str.Cells[i].Skipped {
			continue
		}
		if mat.Cells[i].Output != str.Cells[i].Output {
			t.Errorf("depth %s: stream output %d, materialize %d",
				mat.Cells[i].Label, str.Cells[i].Output, mat.Cells[i].Output)
		}
		if str.Cells[i].FirstTuple > str.Cells[i].Duration {
			t.Errorf("depth %s: first tuple after completion?", str.Cells[i].Label)
		}
	}
	deep := len(mat.Cells) - 1
	if !mat.Cells[deep].Skipped && !str.Cells[deep].Skipped {
		if str.Cells[deep].AllocBytes >= mat.Cells[deep].AllocBytes {
			t.Errorf("deepest tree: stream allocated %d bytes, materialize %d — streaming must allocate less",
				str.Cells[deep].AllocBytes, mat.Cells[deep].AllocBytes)
		}
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "stream-vs-materialize") {
		t.Errorf("print output lacks experiment name:\n%s", buf.String())
	}
}
