package bench

import (
	"fmt"
	"time"

	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/server"
)

// serveCacheSizes are the per-relation input sizes of the serve-cache
// sweep before scaling.
var serveCacheSizes = []int{25000, 50000, 100000, 200000}

// ServeCache measures the query service's result cache: the end-to-end
// service latency (parse → optimize → snapshot → evaluate → encode) of a
// cold POST /query against the latency of repeating the identical query
// on an unchanged catalog, which is served from the LRU cache without
// re-sweeping. The "cold" series uses NoCache to force evaluation every
// time; "cached" is a hit keyed on (canonical query, relation versions).
func ServeCache(cfg Config) Result {
	cold := Series{Approach: "cold"}
	cached := Series{Approach: "cached"}

	for _, base := range serveCacheSizes {
		n := cfg.scaled(base)
		x := float64(2 * n)

		srv := server.New(server.Config{Workers: parWorkerBudget(cfg), CacheSize: 8})
		r, s := datagen.FixedOverlapPair(n, parFacts(n), cfg.Seed)
		if _, err := srv.Load("r", r); err != nil {
			panic(fmt.Sprintf("bench: seeding serve-cache: %v", err))
		}
		if _, err := srv.Load("s", s); err != nil {
			panic(fmt.Sprintf("bench: seeding serve-cache: %v", err))
		}

		measureServe(&cold, x, cfg, srv, server.QueryRequest{Query: "r & s", NoCache: true}, false)
		// Warm the cache once (uncounted), then measure the hit.
		if _, err := srv.RunQuery(server.QueryRequest{Query: "r & s"}); err != nil {
			panic(fmt.Sprintf("bench: warming serve-cache: %v", err))
		}
		measureServe(&cached, x, cfg, srv, server.QueryRequest{Query: "r & s"}, true)
	}

	return Result{
		Name:     "serve-cache",
		Title:    "query service: cold evaluation vs result-cache hit, ∩Tp",
		XLabel:   "|r|+|s|",
		Series:   []Series{cold, cached},
		Scale:    cfg.Scale,
		Footnote: "service latency incl. JSON encoding; cache keyed on (canonical query, sorted relation versions)",
	}
}

// measureServe times one RunQuery and appends the cell, mirroring the
// budget semantics of measure.
func measureServe(s *Series, x float64, cfg Config, srv *server.Server, req server.QueryRequest, wantCached bool) {
	if over(*s, cfg.Budget) {
		s.Cells = append(s.Cells, Cell{X: x, Skipped: true})
		return
	}
	start := time.Now()
	resp, err := srv.RunQuery(req)
	d := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("bench: serve-cache query: %v", err))
	}
	if resp.Cached != wantCached {
		panic(fmt.Sprintf("bench: serve-cache: cached = %v, want %v (cache keying broken?)", resp.Cached, wantCached))
	}
	s.Cells = append(s.Cells, Cell{X: x, Duration: d, Output: len(resp.Result.Tuples)})
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "  %-8s %-10.0f %12s  out=%d\n",
			s.Approach, x, d.Round(time.Microsecond), len(resp.Result.Tuples))
	}
}
