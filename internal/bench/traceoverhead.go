package bench

import (
	"fmt"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// The trace-overhead experiment pins the cost of the instrumentation
// layer on the hot drain path, in both states:
//
//   - off: the batched engine-stream drain with tracing disabled — the
//     exact pipeline of batch-vs-tuple's "batch" series, now running
//     through code that *carries* the tracing hooks (nil-span checks in
//     the plan builders, the context case in the producer selects, the
//     always-on advancer counters). The PR contract is that this stays
//     within 2% of the pre-instrumentation baseline; CI enforces it by
//     comparing this series against batch-vs-tuple's "batch" series from
//     the same run (identical drain, identically generated inputs), under
//     the repo's standing 15% shared-runner noise tolerance.
//   - on: the same drain under a full span tree — what a trace:true
//     request or /query/explain costs. Reported, not gated: tracing is
//     opt-in per request, so its price is informational.
//
// Points are an overlap-0.6 Table-III shape and the disjoint-fact pair
// (the run-skipping fast path, where per-pull timer overhead would show
// up most against the little remaining work).

// TraceOverhead measures the batched ∩Tp engine-stream drain with
// tracing off vs on.
func TraceOverhead(cfg Config) Result {
	n := cfg.scaled(1000000)
	facts := internFacts(n)
	workers := batchVsTupleWorkers(cfg)

	type variant struct {
		name   string
		traced bool
	}
	variants := []variant{{"off", false}, {"on", true}}
	series := make([]Series, len(variants))
	for i, v := range variants {
		series[i].Approach = v.name
	}

	type point struct {
		x     float64
		label string
		gen   func() (*relation.Relation, *relation.Relation)
	}
	points := []point{
		{
			x: 0.6, label: "ovl0.6",
			gen: func() (*relation.Relation, *relation.Relation) {
				return datagen.Pair(datagen.PairConfig{
					NumTuples: n, NumFacts: facts,
					MaxLenR: 3, MaxLenS: 3, MaxGap: 3, Seed: cfg.Seed,
				})
			},
		},
		{
			x: 1, label: "disjoint",
			gen: func() (*relation.Relation, *relation.Relation) {
				return disjointPair(n, facts, cfg.Seed)
			},
		},
	}

	node := query.MustParse("r & s")
	note := ""
	for _, pt := range points {
		r, s := pt.gen()
		r.Sort()
		s.Sort()
		db := map[string]*relation.Relation{"r": r, "s": s}

		for i, v := range variants {
			if over(series[i], cfg.Budget) {
				series[i].Cells = append(series[i].Cells, Cell{X: pt.x, Label: pt.label, Skipped: true})
				continue
			}
			// Best of five: the gate hunts a 2% effect, so per-run noise
			// needs more suppression than the transport benches' 3 reps.
			const reps = 5
			var best Cell
			for rep := 0; rep < reps; rep++ {
				opts := core.Options{AssumeSorted: true}
				if v.traced {
					opts.Span = obs.NewSpan("")
				}
				var out int
				d, alloc, mallocs := measureAlloc(func() {
					out, _ = runBatchPipeline(batchPipeline{name: v.name, opts: opts}, workers, node, db)
				})
				if rep == 0 || d < best.Duration {
					best = Cell{
						X: pt.x, Label: pt.label, Duration: d, Output: out,
						AllocBytes: alloc, Mallocs: mallocs,
					}
				}
			}
			series[i].Cells = append(series[i].Cells, best)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-4s %-9s %12s  %8.1fMB  %8d allocs  out=%d\n",
					v.name, pt.label, best.Duration.Round(time.Microsecond),
					mb(best.AllocBytes), best.Mallocs, best.Output)
			}
		}

		off := series[0].Cells[len(series[0].Cells)-1]
		on := series[1].Cells[len(series[1].Cells)-1]
		if !off.Skipped && !on.Skipped && off.Duration > 0 {
			note += fmt.Sprintf("%s: traced %.2fx; ", pt.label,
				float64(on.Duration)/float64(off.Duration))
		}
	}

	return Result{
		Name:     "trace-overhead",
		Title:    "execution-trace overhead: batched engine-stream drain, tracing off vs on (∩Tp)",
		XLabel:   "shape",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, %d facts, workers=%d, best of 5; off = trace-capable code with nil span (pinned ≤1.02x of batch-vs-tuple's batch series); on/off: %s", n, facts, workers, note),
	}
}
