package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestParallelExperimentsTiny runs cut-down versions of the parallel-engine
// experiments end to end: every series must produce a cell per sweep point
// with matching output cardinalities across worker counts (the engine's
// determinism observed at the harness level).
func TestParallelExperimentsTiny(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workers = 4

	res := ParSize(cfg)
	if res.Name != "par-size" || len(res.Series) < 3 {
		t.Fatalf("par-size shape: %q with %d series", res.Name, len(res.Series))
	}
	rows := len(res.Series[0].Cells)
	if rows != len(parSizes) {
		t.Fatalf("par-size rows %d, want %d", rows, len(parSizes))
	}
	for ri := 0; ri < rows; ri++ {
		want := res.Series[0].Cells[ri].Output
		for _, s := range res.Series[1:] {
			if got := s.Cells[ri].Output; got != want {
				t.Errorf("par-size row %d: %s output %d, seq %d", ri, s.Approach, got, want)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "par-size") {
		t.Errorf("print output lacks experiment name:\n%s", buf.String())
	}

	res = ParWorkers(cfg)
	if res.Name != "par-workers" || len(res.Series) != 1 {
		t.Fatalf("par-workers shape: %q with %d series", res.Name, len(res.Series))
	}
	cells := res.Series[0].Cells
	if len(cells) < 2 {
		t.Fatalf("par-workers cells: %d", len(cells))
	}
	for _, c := range cells[1:] {
		if c.Output != cells[0].Output {
			t.Errorf("par-workers %s: output %d, 1w %d", c.Label, c.Output, cells[0].Output)
		}
	}
}
