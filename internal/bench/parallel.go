package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/relation"
)

// The parallel-engine experiments compare the partition-parallel engine
// (internal/engine) against the sequential LAWA driver. Inputs are
// multi-fact (one fact per ~100 tuples): fact-hash partitioning is the
// engine's unit of parallelism, so single-fact inputs — the hardest case
// for the baselines in Fig. 7–9 — deliberately degenerate to one shard
// and are not interesting here. Both sides are timed end-to-end including
// sort, sweep, lineage concatenation and probability valuation.

// parSizes are the per-relation input sizes of the size sweep before
// scaling; |r|+|s| spans 100K–800K tuples at scale 1.
var parSizes = []int{50000, 100000, 200000, 400000}

func parWorkerBudget(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parFacts picks the distinct-fact count for an input of n tuples.
func parFacts(n int) int {
	f := n / 100
	if f < 1 {
		f = 1
	}
	return f
}

// timeRun measures one execution.
func timeRun(f func() (*relation.Relation, error)) (time.Duration, int, error) {
	start := time.Now()
	out, err := f()
	d := time.Since(start)
	if err != nil {
		return d, 0, err
	}
	return d, out.Len(), nil
}

// parWorkerCounts picks the engine worker counts ParSize compares: 2, 4
// and the full budget, filtered to the cap (so -workers below four
// actually bounds CPU use as documented on Config.Workers).
func parWorkerCounts(maxW int) []int {
	var counts []int
	for _, w := range []int{2, 4, maxW} {
		if w <= maxW && (len(counts) == 0 || counts[len(counts)-1] != w) {
			counts = append(counts, w)
		}
	}
	return counts
}

// measure appends one cell to the series, honoring the same per-run time
// budget semantics as Sweep.Run: once a series' previous run overran (or
// errored), larger points are skipped.
func measure(s *Series, x float64, label string, budget time.Duration, progress io.Writer,
	f func() (*relation.Relation, error)) {
	if over(*s, budget) {
		s.Cells = append(s.Cells, Cell{X: x, Label: label, Skipped: true})
		return
	}
	d, out, err := timeRun(f)
	s.Cells = append(s.Cells, Cell{X: x, Label: label, Duration: d, Output: out, Skipped: err != nil})
	if progress != nil {
		fmt.Fprintf(progress, "  %-8s %-10.0f %12s  out=%d\n", s.Approach, x, d.Round(time.Microsecond), out)
	}
}

// ParSize sweeps |r| = |s| over parSizes (scaled) and reports sequential
// LAWA against the engine at 2, 4 and the full worker budget — the
// speedup-over-size curves.
func ParSize(cfg Config) Result {
	counts := parWorkerCounts(parWorkerBudget(cfg))

	series := []Series{{Approach: "seq"}}
	for _, w := range counts {
		series = append(series, Series{Approach: fmt.Sprintf("par-%d", w)})
	}

	degenerate := ""
	for _, base := range parSizes {
		n := cfg.scaled(base)
		r, s := datagen.FixedOverlapPair(n, parFacts(n), cfg.Seed)
		x := float64(2 * n)
		if 2*n < 2*engine.DefaultMinPartitionSize {
			// Below the partitioning threshold the par-N cells measure the
			// engine's sequential fallback, not parallel execution; say so
			// rather than letting them read as "no speedup".
			degenerate += fmt.Sprintf(" %.0f", x)
		}

		measure(&series[0], x, "", cfg.Budget, cfg.Progress, func() (*relation.Relation, error) {
			return core.Apply(core.OpIntersect, r, s, core.Options{})
		})
		for i, w := range counts {
			e := engine.New(engine.Config{Workers: w})
			measure(&series[i+1], x, "", cfg.Budget, cfg.Progress, func() (*relation.Relation, error) {
				return e.Apply(core.OpIntersect, r, s, core.Options{})
			})
		}
	}
	note := fmt.Sprintf("GOMAXPROCS=%d; ~100 tuples/fact; end-to-end incl. sort and probability valuation", runtime.GOMAXPROCS(0))
	if degenerate != "" {
		note += fmt.Sprintf("; par-N cells at |r|+|s| ∈ {%s } are below the partitioning threshold (%d) and ran the sequential fallback",
			degenerate, 2*engine.DefaultMinPartitionSize)
	}
	return Result{
		Name:     "par-size",
		Title:    "partition-parallel engine vs sequential, multi-fact ∩Tp",
		XLabel:   "|r|+|s|",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: note,
	}
}

// ParWorkers fixes the size at 200K tuples per relation (scaled) and
// sweeps the worker count from 1 to the budget — the speedup-over-workers
// curve. The workers=1 cell is the engine's sequential fallback and so
// also measures the partitioning framework's overhead floor.
func ParWorkers(cfg Config) Result {
	n := cfg.scaled(200000)
	r, s := datagen.FixedOverlapPair(n, parFacts(n), cfg.Seed)
	maxW := parWorkerBudget(cfg)
	var workers []int
	for w := 1; w <= maxW; w *= 2 {
		workers = append(workers, w)
	}
	if last := workers[len(workers)-1]; last < maxW {
		workers = append(workers, maxW)
	}

	// Sweep from the highest worker count down: cost increases as workers
	// decrease, so the budget cutoff (which skips points after an overrun)
	// drops the slow low-worker tail instead of the fast parallel cells
	// the experiment exists to show.
	s1 := Series{Approach: "engine"}
	for i := len(workers) - 1; i >= 0; i-- {
		w := workers[i]
		e := engine.New(engine.Config{Workers: w})
		measure(&s1, float64(w), fmt.Sprintf("%dw", w), cfg.Budget, cfg.Progress, func() (*relation.Relation, error) {
			return e.Apply(core.OpIntersect, r, s, core.Options{})
		})
	}
	// Restore ascending worker order for display and compute speedups
	// against the slowest completed configuration (1w when it fit the
	// budget).
	for i, j := 0, len(s1.Cells)-1; i < j; i, j = i+1, j-1 {
		s1.Cells[i], s1.Cells[j] = s1.Cells[j], s1.Cells[i]
	}
	note := ""
	var base time.Duration
	baseLabel := ""
	for _, c := range s1.Cells {
		if !c.Skipped {
			base, baseLabel = c.Duration, c.Label
			break
		}
	}
	for _, c := range s1.Cells {
		if !c.Skipped && c.Label != baseLabel && base > 0 {
			note += fmt.Sprintf("%s: %.2fx  ", c.Label, float64(base)/float64(c.Duration))
		}
	}
	if baseLabel != "" {
		note = fmt.Sprintf("speedup vs %s: %s", baseLabel, note)
	}
	return Result{
		Name:     "par-workers",
		Title:    fmt.Sprintf("engine worker sweep, %d tuples/relation, ∩Tp", n),
		XLabel:   "workers",
		Series:   []Series{s1},
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("GOMAXPROCS=%d; %s", runtime.GOMAXPROCS(0), note),
	}
}
