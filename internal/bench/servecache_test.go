package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeCacheTiny runs a cut-down serve-cache experiment end to end:
// the cached series must observe the same output cardinality as the cold
// series at every point (the cache returns the very result the cold run
// computed), and ServeCache itself asserts hit/miss expectations.
func TestServeCacheTiny(t *testing.T) {
	cfg := tinyCfg()
	cfg.Workers = 2

	res := ServeCache(cfg)
	if res.Name != "serve-cache" || len(res.Series) != 2 {
		t.Fatalf("serve-cache shape: %q with %d series", res.Name, len(res.Series))
	}
	cold, cached := res.Series[0], res.Series[1]
	if len(cold.Cells) != len(serveCacheSizes) || len(cached.Cells) != len(serveCacheSizes) {
		t.Fatalf("rows: cold %d, cached %d, want %d", len(cold.Cells), len(cached.Cells), len(serveCacheSizes))
	}
	for i := range cold.Cells {
		if cold.Cells[i].Output != cached.Cells[i].Output {
			t.Errorf("row %d: cached output %d, cold %d", i, cached.Cells[i].Output, cold.Cells[i].Output)
		}
		if cold.Cells[i].Output == 0 {
			t.Errorf("row %d: empty result", i)
		}
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "serve-cache") {
		t.Errorf("print output lacks experiment name:\n%s", buf.String())
	}
}
