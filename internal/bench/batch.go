package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/server"
)

// The batch-vs-tuple experiment quantifies the two effects of the
// batched execution stack against the tuple-at-a-time one it replaces,
// on the engine's partition-parallel stream path (the /query/stream data
// path after catalog admission: plan build → shard sweep → k-way merge →
// drain, inputs pre-sorted and interned):
//
//   - vectorization: shard channels carrying *Batch instead of single
//     tuples (~1000x fewer channel operations and goroutine wakeups),
//     block pulls through the cursor tree, and — in the serve-shaped
//     pipelines — one pooled NDJSON encoder writing batches into a sized
//     buffer instead of one encode+write per tuple;
//   - run skipping: the advancer galloping past runs of facts the
//     operation discards, which turns disjoint-fact-heavy intersections
//     from O(n) pops into O(runs · log n).
//
// Five pipelines run per point: tuple (NoBatch+NoRunSkip: the
// pre-batching stack), batch-noskip (vectorization only), batch (both
// effects), and serve-tuple/serve-batch, which additionally encode every
// result tuple to NDJSON through the tuple-at-a-time and batched write
// paths respectively — the sink counts its writes, standing in for
// network write syscalls. Points are the Table III overlapping-factor
// shapes plus a disjoint-fact pair (the Shifted/Subset-like worst case
// for the sweep, the best case for skipping). All pipelines produce
// bit-identical streams (the cross-validation suite pins this); the
// experiment reports wall time, allocated bytes, allocation counts and
// sink writes, best of three.

// batchVsTupleWorkers resolves the worker budget of the experiment: at
// least two, so the engine actually builds the partition-parallel
// stream (shard goroutines + channels + merge) whose transport costs
// the experiment measures.
func batchVsTupleWorkers(cfg Config) int {
	if cfg.Workers > 2 {
		return cfg.Workers
	}
	return 2
}

// countingWriter is the stream sink: it discards the bytes but counts
// writes — each one a network write syscall in the real server.
type countingWriter struct {
	writes int
	bytes  int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	w.bytes += int64(len(p))
	return len(p), nil
}

// disjointPair generates a Table-III-shaped pair whose fact universes
// are disjoint (r holds f..., s holds g...), bound to one shared
// dictionary — the shape Shifted/Subset workloads and low-overlap
// catalogs produce, where ∩Tp discards every window.
func disjointPair(n, facts int, seed int64) (*relation.Relation, *relation.Relation) {
	r, s := datagen.Pair(datagen.PairConfig{
		NumTuples: n, NumFacts: facts,
		MaxLenR: 3, MaxLenS: 3, MaxGap: 3, Seed: seed,
	})
	out := relation.New(s.Schema)
	for i := range s.Tuples {
		t := s.Tuples[i]
		t.Fact = relation.NewFact("g" + t.Fact[0][1:])
		out.Add(relation.NewBase(t.Fact, fmt.Sprintf("s%d", i), t.T.Ts, t.T.Te, t.Prob))
	}
	relation.InternAll(r, out)
	return r, out
}

// batchPipeline is one measured drain of the engine stream.
type batchPipeline struct {
	name string
	opts core.Options
	// serve encodes every tuple to NDJSON (tuple- or batch-wise). The
	// serve pipelines run the sequential plan (workers=1): it is what
	// the service actually builds below the partitioning threshold, and
	// it isolates the write-path delta from the partition-copy baseline
	// the drain pipelines share.
	serve bool
}

func batchVsTuplePipelines() []batchPipeline {
	return []batchPipeline{
		{name: "tuple", opts: core.Options{NoBatch: true, NoRunSkip: true}},
		{name: "batch-noskip", opts: core.Options{NoRunSkip: true}},
		{name: "batch", opts: core.Options{}},
		{name: "serve-tuple", opts: core.Options{NoBatch: true, NoRunSkip: true}, serve: true},
		{name: "serve-batch", opts: core.Options{}, serve: true},
	}
}

// runBatchPipeline builds the engine stream plan, drains it through the
// pipeline's transport and returns the output cardinality and the sink
// write count.
func runBatchPipeline(p batchPipeline, workers int, node query.Node, db map[string]*relation.Relation) (int, int) {
	opts := p.opts
	opts.AssumeSorted = true // catalog admission sorted the inputs
	if p.serve {
		workers = 1
	}
	cur, err := engine.New(engine.Config{Workers: workers}).Cursor(node, db, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: batch-vs-tuple: %v", err))
	}
	defer cur.Close()

	var cw countingWriter
	count := 0
	switch {
	case p.serve && p.opts.NoBatch:
		// The tuple-at-a-time serve path: one TupleJSON value boxed and
		// encoded — one sink write — per tuple.
		enc := json.NewEncoder(&cw)
		enc.SetEscapeHTML(false)
		for {
			t, ok := cur.Next()
			if !ok {
				break
			}
			if err := enc.Encode(server.EncodeTuple(&t)); err != nil {
				panic(err)
			}
			count++
		}
	case p.serve:
		// The batched serve path (what /query/stream does): pooled
		// scratch, sized buffer, flush per batch boundary.
		bw := bufio.NewWriterSize(&cw, 64<<10)
		enc := json.NewEncoder(bw)
		enc.SetEscapeHTML(false)
		var scratch server.TupleJSON
		probs := make(map[string]float64)
		b := core.GetBatch()
		for cur.NextBatch(b) {
			for i := range b.Tuples {
				server.EncodeTupleInto(&scratch, &b.Tuples[i], probs)
				if err := enc.Encode(&scratch); err != nil {
					panic(err)
				}
			}
			count += len(b.Tuples)
		}
		core.PutBatch(b)
		if err := bw.Flush(); err != nil {
			panic(err)
		}
	case p.opts.NoBatch:
		for {
			_, ok := cur.Next()
			if !ok {
				break
			}
			count++
		}
	default:
		b := core.GetBatch()
		for cur.NextBatch(b) {
			count += len(b.Tuples)
		}
		core.PutBatch(b)
	}
	return count, cw.writes
}

// BatchVsTuple sweeps the Table III overlapping-factor configurations
// plus a disjoint-fact point at fixed size and compares the five
// pipelines on a full engine-stream ∩Tp drain per point.
func BatchVsTuple(cfg Config) Result {
	n := cfg.scaled(1000000)
	facts := internFacts(n)
	workers := batchVsTupleWorkers(cfg)
	pipelines := batchVsTuplePipelines()

	series := make([]Series, len(pipelines))
	for i, p := range pipelines {
		series[i].Approach = p.name
	}

	type point struct {
		x     float64
		label string
		gen   func() (*relation.Relation, *relation.Relation)
	}
	var points []point
	for _, row := range datagen.TableIII {
		row := row
		points = append(points, point{
			x:     row.OverlapFactor,
			label: fmt.Sprintf("%g", row.OverlapFactor),
			gen: func() (*relation.Relation, *relation.Relation) {
				return datagen.Pair(datagen.PairConfig{
					NumTuples: n, NumFacts: facts,
					MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS,
					MaxGap: 3, Seed: cfg.Seed,
				})
			},
		})
	}
	points = append(points, point{
		x:     1, // past the overlap sweep on the x axis
		label: "disjoint",
		gen: func() (*relation.Relation, *relation.Relation) {
			return disjointPair(n, facts, cfg.Seed)
		},
	})

	node := query.MustParse("r & s")
	note := ""
	for _, pt := range points {
		r, s := pt.gen()
		r.Sort()
		s.Sort()
		db := map[string]*relation.Relation{"r": r, "s": s}

		for i, p := range pipelines {
			if over(series[i], cfg.Budget) {
				series[i].Cells = append(series[i].Cells, Cell{X: pt.x, Label: pt.label, Skipped: true})
				continue
			}
			// Best of three: single runs are noisy (GC pacing, scheduler)
			// relative to the transport deltas under measurement.
			const reps = 3
			var best Cell
			for rep := 0; rep < reps; rep++ {
				var out, writes int
				d, alloc, mallocs := measureAlloc(func() {
					out, writes = runBatchPipeline(p, workers, node, db)
				})
				if rep == 0 || d < best.Duration {
					best = Cell{
						X: pt.x, Label: pt.label, Duration: d, Output: out,
						AllocBytes: alloc, Mallocs: mallocs, Writes: writes,
					}
				}
			}
			series[i].Cells = append(series[i].Cells, best)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-12s %-9s %12s  %8.1fMB  %8d allocs  %6d writes  out=%d\n",
					p.name, pt.label, best.Duration.Round(time.Microsecond),
					mb(best.AllocBytes), best.Mallocs, best.Writes, best.Output)
			}
		}

		// Headline ratios: engine drain tuple vs batch, serve pipelines
		// tuple vs batch (wall, alloc bytes, allocation count, writes).
		tc := series[0].Cells[len(series[0].Cells)-1]
		bc := series[2].Cells[len(series[2].Cells)-1]
		st := series[3].Cells[len(series[3].Cells)-1]
		sb := series[4].Cells[len(series[4].Cells)-1]
		if !tc.Skipped && !bc.Skipped && bc.Duration > 0 {
			note += fmt.Sprintf("%s: drain %.2fx faster", pt.label,
				float64(tc.Duration)/float64(bc.Duration))
			if !st.Skipped && !sb.Skipped && sb.Duration > 0 && sb.AllocBytes > 0 && sb.Mallocs > 0 && sb.Writes > 0 {
				note += fmt.Sprintf(", serve %.2fx faster %.2fx less alloc %.1fx fewer allocs %.0fx fewer writes",
					float64(st.Duration)/float64(sb.Duration),
					float64(st.AllocBytes)/float64(sb.AllocBytes),
					float64(st.Mallocs)/float64(sb.Mallocs),
					float64(st.Writes)/float64(sb.Writes))
			}
			note += "; "
		}
	}

	return Result{
		Name:     "batch-vs-tuple",
		Title:    "batched vs tuple-at-a-time engine stream: Table III overlap sweep + disjoint facts (∩Tp)",
		XLabel:   "ovl factor",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, %d facts, workers=%d, best of 3; batched-vs-tuple: %s", n, facts, workers, note),
	}
}
