package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

// Config steers an experiment run.
type Config struct {
	// Scale multiplies every dataset size of the paper. 1.0 reruns the
	// paper's sizes (hours for the quadratic baselines); cmd/tpbench's
	// default is a quick scaled-down run, and every Result records the
	// scale it ran at.
	Scale float64
	// Budget cuts an approach off once a single run exceeds it.
	Budget time.Duration
	// Progress receives per-run progress lines (nil = quiet).
	Progress io.Writer
	// Seed makes runs reproducible.
	Seed int64
	// Workers caps the worker budget of the parallel-engine experiments
	// (0 = runtime.GOMAXPROCS).
	Workers int
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config) Result
}

// Experiments returns every experiment of the evaluation section, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Approach/operation support matrix (Table II)", Table2},
		{"fig7a", "Synthetic 20K–200K, 1 fact, ovl 0.6: set intersection", fig7(core.OpIntersect)},
		{"fig7b", "Synthetic 20K–200K, 1 fact, ovl 0.6: set difference", fig7(core.OpExcept)},
		{"fig7c", "Synthetic 20K–200K, 1 fact, ovl 0.6: set union", fig7(core.OpUnion)},
		{"fig8", "Synthetic 5M–50M, 1 fact, ovl 0.6: intersection, LAWA vs OIP", Fig8},
		{"table3", "Robustness dataset characteristics (Table III)", Table3},
		{"fig9a", "Robustness: overlapping factor sweep at 30M (intersection)", Fig9a},
		{"fig9b", "Robustness: distinct-fact sweep at 60K (intersection)", Fig9b},
		{"table4", "Real-world dataset properties (Table IV)", Table4},
		{"fig10a", "Meteo-like 20K–200K: set intersection", fig1011(true, core.OpIntersect)},
		{"fig10b", "Meteo-like 20K–200K: set difference", fig1011(true, core.OpExcept)},
		{"fig10c", "Meteo-like 20K–200K: set union", fig1011(true, core.OpUnion)},
		{"fig11a", "Webkit-like 20K–200K: set intersection", fig1011(false, core.OpIntersect)},
		{"fig11b", "Webkit-like 20K–200K: set difference", fig1011(false, core.OpExcept)},
		{"fig11c", "Webkit-like 20K–200K: set union", fig1011(false, core.OpUnion)},
		{"par-size", "Partition-parallel engine vs sequential LAWA: size sweep (∩Tp)", ParSize},
		{"par-workers", "Partition-parallel engine: worker-count sweep at fixed size (∩Tp)", ParWorkers},
		{"serve-cache", "Query service: cold evaluation vs result-cache hit (∩Tp)", ServeCache},
		{"stream-vs-materialize", "Cursor executor vs materializing evaluator: depth sweep (alloc + TTFT)", StreamVsMaterialize},
		{"intern-vs-string", "Interned (FactID) vs string tuple keys: sort + LAWA wall time and allocations", InternVsString},
		{"batch-vs-tuple", "Batched vs tuple-at-a-time execution: engine stream + NDJSON serve pipelines", BatchVsTuple},
		{"soa-vs-aos", "Structure-of-arrays vs tuple-struct batches: engine stream + NDJSON serve pipelines", SoAVsAoS},
		{"trace-overhead", "Execution-trace instrumentation overhead: drain with tracing off vs on", TraceOverhead},
		{"segment-vs-heap", "Durable mmap segment store vs heap catalog: cold start + steady-state drain", SegmentVsHeap},
	}
}

// ExperimentByName looks up one experiment.
func ExperimentByName(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// fig7Sizes are the x values of Fig. 7 before scaling.
var fig7Sizes = []int{20000, 40000, 60000, 80000, 100000, 120000, 140000, 160000, 180000, 200000}

// fig7 builds the experiment for one operation of Fig. 7: single-fact
// synthetic data with overlapping factor ≈ 0.6 (lengths and gaps in [0,3]),
// sizes 20K–200K.
func fig7(op core.Op) func(Config) Result {
	name := map[core.Op]string{core.OpIntersect: "fig7a", core.OpExcept: "fig7b", core.OpUnion: "fig7c"}[op]
	return func(cfg Config) Result {
		var pts []Point
		for _, n := range fig7Sizes {
			n := cfg.scaled(n)
			pts = append(pts, Point{X: float64(n), Gen: func() (r, s *relation.Relation) {
				return datagen.FixedOverlapPair(n, 1, cfg.Seed)
			}})
		}
		sw := Sweep{Op: op, Points: pts, Budget: cfg.Budget}
		return Result{
			Name:   name,
			Title:  fmt.Sprintf("synthetic, 1 fact, ovl 0.6, %v", op),
			XLabel: "tuples",
			Series: sw.Run(nil, cfg.Progress),
			Scale:  cfg.Scale,
		}
	}
}

// Fig8 compares LAWA and OIP on 5M–50M single-fact inputs (scaled).
func Fig8(cfg Config) Result {
	var pts []Point
	for _, m := range []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		n := cfg.scaled(m * 1000000)
		pts = append(pts, Point{X: float64(n), Gen: func() (r, s *relation.Relation) {
			return datagen.FixedOverlapPair(n, 1, cfg.Seed)
		}})
	}
	sw := Sweep{Op: core.OpIntersect, Points: pts, Budget: cfg.Budget}
	return Result{
		Name:   "fig8",
		Title:  "synthetic large, 1 fact, ovl 0.6, ∩Tp",
		XLabel: "tuples",
		Series: sw.Run([]string{"LAWA", "OIP"}, cfg.Progress),
		Scale:  cfg.Scale,
	}
}

// Fig9a sweeps the overlapping factor at fixed size (30M scaled) over the
// Table III configurations, comparing LAWA and OIP on intersection.
func Fig9a(cfg Config) Result {
	n := cfg.scaled(30000000)
	var pts []Point
	for _, row := range datagen.TableIII {
		row := row
		pts = append(pts, Point{
			X:     row.OverlapFactor,
			Label: fmt.Sprintf("%g", row.OverlapFactor),
			Gen: func() (r, s *relation.Relation) {
				return datagen.Pair(datagen.PairConfig{
					NumTuples: n, NumFacts: 1,
					MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS,
					MaxGap: 3, Seed: cfg.Seed,
				})
			},
		})
	}
	sw := Sweep{Op: core.OpIntersect, Points: pts, Budget: cfg.Budget}
	return Result{
		Name:     "fig9a",
		Title:    "robustness vs overlapping factor, ∩Tp",
		XLabel:   "ovl factor",
		Series:   sw.Run([]string{"LAWA", "OIP"}, cfg.Progress),
		Scale:    cfg.Scale,
		Footnote: "LAWA should stay flat; OIP should degrade as the factor grows",
	}
}

// Fig9b sweeps the number of distinct facts at fixed size (60K scaled) over
// all five approaches on intersection. The paper's fact counts are 30000,
// 100, 10, 5, 1 (listed most-to-least in Fig. 9b); the 30000 facts value is
// half the dataset size and scales with it.
func Fig9b(cfg Config) Result {
	n := cfg.scaled(60000)
	factCounts := []int{n / 2, 100, 10, 5, 1}
	var pts []Point
	for _, fc := range factCounts {
		fc := fc
		if fc < 1 {
			fc = 1
		}
		pts = append(pts, Point{
			X:     float64(fc),
			Label: fmt.Sprintf("%dF", fc),
			Gen: func() (r, s *relation.Relation) {
				return datagen.FixedOverlapPair(n, fc, cfg.Seed)
			},
		})
	}
	sw := Sweep{Op: core.OpIntersect, Points: pts, Budget: cfg.Budget}
	return Result{
		Name:     "fig9b",
		Title:    "robustness vs number of distinct facts, ∩Tp",
		XLabel:   "facts",
		Series:   sw.Run(nil, cfg.Progress),
		Scale:    cfg.Scale,
		Footnote: "LAWA should stay flat; TI wins only at the highest fact count; NORM/TPDB degrade toward 1F",
	}
}

// fig1011 builds one panel of Fig. 10 (Meteo-like) or Fig. 11
// (Webkit-like): subsets of 20K–200K tuples of the simulated dataset joined
// with its shifted counterpart.
func fig1011(meteo bool, op core.Op) func(Config) Result {
	ds := "fig11"
	if meteo {
		ds = "fig10"
	}
	suffix := map[core.Op]string{core.OpIntersect: "a", core.OpExcept: "b", core.OpUnion: "c"}[op]
	return func(cfg Config) Result {
		maxN := cfg.scaled(200000)
		var full *relation.Relation
		if meteo {
			full = datagen.Meteo(datagen.MeteoConfig{NumTuples: maxN, Stations: 80, Seed: cfg.Seed})
		} else {
			full = datagen.Webkit(datagen.WebkitConfig{NumTuples: maxN, Seed: cfg.Seed})
		}
		shifted := datagen.Shifted(full, "s", cfg.Seed+1)
		var pts []Point
		for _, base := range fig7Sizes {
			n := cfg.scaled(base)
			pts = append(pts, Point{X: float64(n), Gen: func() (r, s *relation.Relation) {
				return datagen.Subset(full, n), datagen.Subset(shifted, n)
			}})
		}
		sw := Sweep{Op: op, Points: pts, Budget: cfg.Budget}
		title := "Webkit-like"
		if meteo {
			title = "Meteo-like"
		}
		return Result{
			Name:   ds + suffix,
			Title:  fmt.Sprintf("%s real-world simulation, %v", title, op),
			XLabel: "tuples",
			Series: sw.Run(nil, cfg.Progress),
			Scale:  cfg.Scale,
		}
	}
}

// Table2 renders the support matrix as a pseudo-result (one series per
// approach; cells are 0/1 markers via the footnote text).
func Table2(cfg Config) Result {
	ops := []core.Op{core.OpUnion, core.OpExcept, core.OpIntersect}
	text := fmt.Sprintf("%-8s %8s %8s %8s\n", "Approach", "∪Tp", "−Tp", "∩Tp")
	for _, a := range Approaches() {
		text += fmt.Sprintf("%-8s", a.Name)
		for _, op := range ops {
			mark := "✗"
			if a.Supports[op] {
				mark = "✓"
			}
			text += fmt.Sprintf("%8s", mark)
		}
		text += "\n"
	}
	return Result{Name: "table2", Title: "support matrix", XLabel: "", Scale: cfg.Scale, Footnote: "\n" + text}
}

// Table3 generates each robustness configuration at a modest size and
// reports the overlapping factor actually achieved alongside the paper's
// target — the calibration evidence behind Fig. 9a.
func Table3(cfg Config) Result {
	n := cfg.scaled(1000000)
	text := fmt.Sprintf("%-10s %-10s %-10s %-10s %-12s\n",
		"target", "lenR", "lenS", "maxGap", "measured")
	for _, row := range datagen.TableIII {
		r, s := datagen.Pair(datagen.PairConfig{
			NumTuples: n, NumFacts: 1,
			MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS, MaxGap: 3, Seed: cfg.Seed,
		})
		got := relation.OverlapFactor(r, s)
		text += fmt.Sprintf("%-10g %-10d %-10d %-10d %-12.3f\n",
			row.OverlapFactor, row.MaxLenR, row.MaxLenS, 3, got)
	}
	return Result{Name: "table3", Title: "overlapping-factor calibration", Scale: cfg.Scale, Footnote: "\n" + text}
}

// Table4 prints the Table IV statistics of the two simulated real-world
// datasets at the configured scale.
func Table4(cfg Config) Result {
	meteo := datagen.Meteo(datagen.MeteoConfig{NumTuples: cfg.scaled(10200000), Stations: 80, Seed: cfg.Seed})
	webkit := datagen.Webkit(datagen.WebkitConfig{NumTuples: cfg.scaled(1500000), Seed: cfg.Seed})
	text := "\n--- Meteo-like ---\n" + relation.ComputeStats(meteo).String() +
		"--- Webkit-like ---\n" + relation.ComputeStats(webkit).String()
	return Result{Name: "table4", Title: "real-world dataset properties", Scale: cfg.Scale, Footnote: text}
}

// Names lists the experiment names, sorted in paper order (as registered).
func Names() []string {
	var ns []string
	for _, e := range Experiments() {
		ns = append(ns, e.Name)
	}
	return ns
}

// SortedNames lists the experiment names alphabetically.
func SortedNames() []string {
	ns := Names()
	sort.Strings(ns)
	return ns
}
