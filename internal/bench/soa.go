package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/server"
)

// The soa-vs-aos experiment quantifies the structure-of-arrays batch
// layout against the tuple-struct (array-of-structs) execution it
// replaces, on the same engine-stream data path as batch-vs-tuple:
//
//   - drain: the advancer's window compares, galloping skips and the
//     merge's frontier compares run over packed (Fid, Ts, Te) int64
//     columns instead of walking ~100 B tuple structs — fewer cache
//     lines touched per compare, branch-light inner loops;
//   - serve: the NDJSON encoder's read side pulls interval, probability
//     and lineage from the batch columns (EncodeBatchInto) instead of
//     the struct rows.
//
// Four pipelines run per point: aos (Options.NoSoA — scans alias no
// columns, the advancer reads keys through tuple structs: the pre-SoA
// stack), soa (the default columnar path), and serve-aos/serve-soa,
// which additionally encode every result tuple to NDJSON through the
// struct-read and column-read write paths respectively. All pipelines
// produce bit-identical streams (the cross-validation suite pins this);
// the CI gate holds soa to ≤ aos wall time on both the drain and serve
// sums, with a noise tolerance.

// soaPipeline is one measured drain of the engine stream.
type soaPipeline struct {
	name string
	opts core.Options
	// serve encodes every tuple to NDJSON. As in batch-vs-tuple, the
	// serve pipelines run the sequential plan (workers=1) so the
	// write-path delta is isolated from the partition-copy baseline.
	serve bool
}

func soaVsAoSPipelines() []soaPipeline {
	return []soaPipeline{
		{name: "aos", opts: core.Options{NoSoA: true}},
		{name: "soa", opts: core.Options{}},
		{name: "serve-aos", opts: core.Options{NoSoA: true}, serve: true},
		{name: "serve-soa", opts: core.Options{}, serve: true},
	}
}

// runSoAPipeline builds the engine stream plan, drains it through the
// pipeline's transport and returns the output cardinality and the sink
// write count.
func runSoAPipeline(p soaPipeline, workers int, node query.Node, db map[string]*relation.Relation) (int, int) {
	opts := p.opts
	opts.AssumeSorted = true // inputs pre-sorted, interned and column-built below
	if p.serve {
		workers = 1
	}
	cur, err := engine.New(engine.Config{Workers: workers}).Cursor(node, db, opts)
	if err != nil {
		panic(fmt.Sprintf("bench: soa-vs-aos: %v", err))
	}
	defer cur.Close()

	var cw countingWriter
	count := 0
	if p.serve {
		// The batched serve path of /query/stream: pooled scratch, sized
		// buffer, flush per batch boundary; the read side is columnar
		// exactly when the blocks carry columns.
		bw := bufio.NewWriterSize(&cw, 64<<10)
		enc := json.NewEncoder(bw)
		enc.SetEscapeHTML(false)
		var scratch server.TupleJSON
		probs := make(map[string]float64)
		b := core.GetBatch()
		for cur.NextBatch(b) {
			if b.HasCols() {
				for i := range b.Tuples {
					server.EncodeBatchInto(&scratch, b, i, probs)
					if err := enc.Encode(&scratch); err != nil {
						panic(err)
					}
				}
			} else {
				for i := range b.Tuples {
					server.EncodeTupleInto(&scratch, &b.Tuples[i], probs)
					if err := enc.Encode(&scratch); err != nil {
						panic(err)
					}
				}
			}
			count += len(b.Tuples)
		}
		core.PutBatch(b)
		if err := bw.Flush(); err != nil {
			panic(err)
		}
		return count, cw.writes
	}
	b := core.GetBatch()
	for cur.NextBatch(b) {
		count += len(b.Tuples)
	}
	core.PutBatch(b)
	return count, cw.writes
}

// SoAVsAoS sweeps the Table III overlapping-factor configurations plus
// a disjoint-fact point at fixed size and compares the four pipelines
// on a full engine-stream ∩Tp drain per point.
func SoAVsAoS(cfg Config) Result {
	n := cfg.scaled(1000000)
	facts := internFacts(n)
	workers := batchVsTupleWorkers(cfg)
	pipelines := soaVsAoSPipelines()

	series := make([]Series, len(pipelines))
	for i, p := range pipelines {
		series[i].Approach = p.name
	}

	type point struct {
		x     float64
		label string
		gen   func() (*relation.Relation, *relation.Relation)
	}
	var points []point
	for _, row := range datagen.TableIII {
		row := row
		points = append(points, point{
			x:     row.OverlapFactor,
			label: fmt.Sprintf("%g", row.OverlapFactor),
			gen: func() (*relation.Relation, *relation.Relation) {
				return datagen.Pair(datagen.PairConfig{
					NumTuples: n, NumFacts: facts,
					MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS,
					MaxGap: 3, Seed: cfg.Seed,
				})
			},
		})
	}
	points = append(points, point{
		x:     1, // past the overlap sweep on the x axis
		label: "disjoint",
		gen: func() (*relation.Relation, *relation.Relation) {
			return disjointPair(n, facts, cfg.Seed)
		},
	})

	node := query.MustParse("r & s")
	note := ""
	for _, pt := range points {
		r, s := pt.gen()
		r.Sort()
		s.Sort()
		// AssumeSorted plans take the leaves as handed in, so the SoA
		// pipelines need the columnar projections built here — exactly
		// what catalog admission does for served relations. The NoSoA
		// pipelines ignore them (DisableCols).
		r.BuildCols()
		s.BuildCols()
		db := map[string]*relation.Relation{"r": r, "s": s}

		for i, p := range pipelines {
			if over(series[i], cfg.Budget) {
				series[i].Cells = append(series[i].Cells, Cell{X: pt.x, Label: pt.label, Skipped: true})
				continue
			}
			// Best of three: single runs are noisy (GC pacing, scheduler)
			// relative to the layout deltas under measurement.
			const reps = 3
			var best Cell
			for rep := 0; rep < reps; rep++ {
				var out, writes int
				d, alloc, mallocs := measureAlloc(func() {
					out, writes = runSoAPipeline(p, workers, node, db)
				})
				if rep == 0 || d < best.Duration {
					best = Cell{
						X: pt.x, Label: pt.label, Duration: d, Output: out,
						AllocBytes: alloc, Mallocs: mallocs, Writes: writes,
					}
				}
			}
			series[i].Cells = append(series[i].Cells, best)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-10s %-9s %12s  %8.1fMB  %8d allocs  %6d writes  out=%d\n",
					p.name, pt.label, best.Duration.Round(time.Microsecond),
					mb(best.AllocBytes), best.Mallocs, best.Writes, best.Output)
			}
		}

		// Headline ratios: drain aos vs soa, serve aos vs soa.
		ac := series[0].Cells[len(series[0].Cells)-1]
		sc := series[1].Cells[len(series[1].Cells)-1]
		sa := series[2].Cells[len(series[2].Cells)-1]
		ss := series[3].Cells[len(series[3].Cells)-1]
		if !ac.Skipped && !sc.Skipped && sc.Duration > 0 {
			note += fmt.Sprintf("%s: drain %.2fx", pt.label,
				float64(ac.Duration)/float64(sc.Duration))
			if !sa.Skipped && !ss.Skipped && ss.Duration > 0 {
				note += fmt.Sprintf(" serve %.2fx", float64(sa.Duration)/float64(ss.Duration))
			}
			note += "; "
		}
	}

	return Result{
		Name:     "soa-vs-aos",
		Title:    "SoA (columnar) vs AoS (tuple-struct) batches: Table III overlap sweep + disjoint facts (∩Tp)",
		XLabel:   "ovl factor",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, %d facts, workers=%d, best of 3; aos-vs-soa speedups: %s", n, facts, workers, note),
	}
}
