package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBatchVsTupleTiny runs a cut-down batch-vs-tuple sweep end to end:
// every pipeline must produce identical cardinalities at every point
// (they are the same query over the same inputs through different
// transports), the serve pipelines must report sink writes, and the
// batched serve pipeline must issue far fewer writes than the
// tuple-at-a-time one.
func TestBatchVsTupleTiny(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.01

	res := BatchVsTuple(cfg)
	if res.Name != "batch-vs-tuple" || len(res.Series) != 5 {
		t.Fatalf("shape: %q with %d series", res.Name, len(res.Series))
	}
	points := len(res.Series[0].Cells)
	if points == 0 {
		t.Fatal("no points")
	}
	for _, s := range res.Series[1:] {
		if len(s.Cells) != points {
			t.Fatalf("series %s has %d cells, want %d", s.Approach, len(s.Cells), points)
		}
		for i, c := range s.Cells {
			if c.Skipped || res.Series[0].Cells[i].Skipped {
				continue
			}
			if c.Output != res.Series[0].Cells[i].Output {
				t.Errorf("%s %s: output %d, tuple pipeline %d",
					s.Approach, c.Label, c.Output, res.Series[0].Cells[i].Output)
			}
		}
	}
	// serve-tuple writes once per tuple; serve-batch per buffer fill.
	st, sb := res.Series[3], res.Series[4]
	for i := range st.Cells {
		if st.Cells[i].Skipped || sb.Cells[i].Skipped || st.Cells[i].Output == 0 {
			continue
		}
		if st.Cells[i].Writes < st.Cells[i].Output {
			t.Errorf("%s: serve-tuple wrote %d times for %d tuples; expected one write per tuple",
				st.Cells[i].Label, st.Cells[i].Writes, st.Cells[i].Output)
		}
		if sb.Cells[i].Writes*10 > st.Cells[i].Writes {
			t.Errorf("%s: serve-batch wrote %d times vs serve-tuple %d; batching should amortize writes",
				sb.Cells[i].Label, sb.Cells[i].Writes, st.Cells[i].Writes)
		}
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "batch-vs-tuple") {
		t.Errorf("print output lacks experiment name:\n%s", buf.String())
	}
}

// TestWriteJSON pins the machine-readable output shape tpbench -json
// and the CI bench gate consume.
func TestWriteJSON(t *testing.T) {
	cfg := tinyCfg()
	res := Table2(cfg)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []ResultJSON `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].Name != "table2" {
		t.Fatalf("round-trip: %+v", doc)
	}
	if doc.Experiments[0].Series == nil {
		t.Fatal("series must be [] rather than null for downstream jq")
	}
}
