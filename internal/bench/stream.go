package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

// The stream-vs-materialize experiment quantifies the point of the cursor
// execution layer: the materializing evaluator builds a full intermediate
// relation at every node of the query tree, so a deep query over large
// relations allocates O(depth × |r|) memory, while the cursor plan keeps
// one lookahead buffer per tree edge and allocates only the final result
// (plus the per-leaf sort clones both executors share). The experiment
// sweeps tree depth at fixed per-relation size and reports, per executor,
// wall time, allocated bytes and — for the streaming plan — the time
// until the first output tuple was available, which for the materializing
// path coincides with completion.

// streamDepths are the query-tree depths (number of set operations) of
// the sweep.
var streamDepths = []int{2, 4, 8, 12}

// streamOpCycle alternates the operations along the chain so the deep
// tree exercises all three drivers.
var streamOpCycle = []core.Op{core.OpUnion, core.OpIntersect, core.OpExcept}

// streamChain builds the left-deep query (((r0 op r1) op r2) op r3) ...
// of the given depth.
func streamChain(depth int) query.Node {
	var n query.Node = &query.Rel{Name: "r0"}
	for i := 0; i < depth; i++ {
		n = &query.SetOp{
			Op:    streamOpCycle[i%len(streamOpCycle)],
			Left:  n,
			Right: &query.Rel{Name: fmt.Sprintf("r%d", i+1)},
		}
	}
	return n
}

// streamDB generates depth+1 relations of n tuples each.
func streamDB(depth, n int, seed int64) map[string]*relation.Relation {
	db := make(map[string]*relation.Relation, depth+1)
	for i := 0; i <= depth; i++ {
		db[fmt.Sprintf("r%d", i)] = datagen.Synthetic(datagen.SyntheticConfig{
			Name: fmt.Sprintf("r%d", i), NumTuples: n, NumFacts: parFacts(n),
			MaxLen: 3, MaxGap: 3, Seed: seed + int64(i),
		})
	}
	return db
}

// measureAlloc runs f and returns its duration, allocated bytes and
// allocation count (cumulative heap deltas, which are exact regardless
// of GC timing).
func measureAlloc(f func()) (time.Duration, uint64, uint64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	return d, m1.TotalAlloc - m0.TotalAlloc, m1.Mallocs - m0.Mallocs
}

// StreamVsMaterialize sweeps query-tree depth at fixed per-relation size
// and compares the materializing evaluator against the streaming cursor
// executor on time, allocated bytes and time-to-first-tuple.
func StreamVsMaterialize(cfg Config) Result {
	n := cfg.scaled(40000)
	mat := Series{Approach: "materialize"}
	str := Series{Approach: "stream"}
	note := ""

	for _, depth := range streamDepths {
		db := streamDB(depth, n, cfg.Seed)
		tree := streamChain(depth)
		label := fmt.Sprintf("d%d", depth)

		var matOut int
		if over(mat, cfg.Budget) {
			mat.Cells = append(mat.Cells, Cell{X: float64(depth), Label: label, Skipped: true})
		} else {
			var out *relation.Relation
			d, alloc, mallocs := measureAlloc(func() {
				var err error
				out, err = query.EvaluateWith(tree, db, query.AlgoLAWA)
				if err != nil {
					panic(fmt.Sprintf("bench: stream-vs-materialize: %v", err))
				}
			})
			matOut = out.Len()
			mat.Cells = append(mat.Cells, Cell{
				X: float64(depth), Label: label, Duration: d, Output: matOut, AllocBytes: alloc, Mallocs: mallocs,
			})
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-12s %-6s %12s  %8.1fMB  out=%d\n",
					"materialize", label, d.Round(time.Microsecond), mb(alloc), matOut)
			}
		}

		if over(str, cfg.Budget) {
			str.Cells = append(str.Cells, Cell{X: float64(depth), Label: label, Skipped: true})
			continue
		}
		var count int
		var firstTuple time.Duration
		d, alloc, mallocs := measureAlloc(func() {
			// The first-tuple clock covers plan build too: a real client
			// waits for the leaf clone+sort before the first row arrives.
			start := time.Now()
			cur, err := query.BuildCursor(tree, db, core.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: stream-vs-materialize: %v", err))
			}
			for {
				t, ok := cur.Next()
				if !ok {
					break
				}
				if count == 0 {
					firstTuple = time.Since(start)
				}
				count++
				_ = t
			}
		})
		str.Cells = append(str.Cells, Cell{
			X: float64(depth), Label: label, Duration: d, Output: count,
			AllocBytes: alloc, Mallocs: mallocs, FirstTuple: firstTuple,
		})
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "  %-12s %-6s %12s  %8.1fMB  out=%d  first=%s\n",
				"stream", label, d.Round(time.Microsecond), mb(alloc), count, firstTuple.Round(time.Microsecond))
		}

		mc, sc := mat.Cells[len(mat.Cells)-1], str.Cells[len(str.Cells)-1]
		if !mc.Skipped {
			note += fmt.Sprintf("%s: alloc %.1fMB vs %.1fMB (%.1fx less), first tuple %s vs %s; ",
				label, mb(mc.AllocBytes), mb(sc.AllocBytes),
				float64(mc.AllocBytes)/float64(max64(sc.AllocBytes, 1)),
				mc.Duration.Round(time.Microsecond), sc.FirstTuple.Round(time.Microsecond))
		}
	}

	return Result{
		Name:     "stream-vs-materialize",
		Title:    "cursor executor vs materializing evaluator over tree depth",
		XLabel:   "depth",
		Series:   []Series{mat, str},
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, left-deep ∪/∩/− chain; %s", n, note),
	}
}

func mb(b uint64) float64 { return float64(b) / (1024 * 1024) }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
