package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/csvio"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/segment"
	"github.com/tpset/tpset/internal/server"
)

// The segment-vs-heap experiment quantifies the durable segment tier on
// its two claims:
//
//   - cold start: a process restart against a populated -data-dir
//     memory-maps the columnar segments (open + checksum + pointer
//     fixup) instead of re-ingesting CSV (parse + intern + sort +
//     validate + bind + rebuild + re-persist — the re-ingesting server
//     must reach the same durable state, so it WALs and fsyncs its
//     admissions like any tpserve -data-dir process). Measured
//     end-to-end as "empty server → first ∩Tp answer" with a point
//     query, so the number isolates time-to-readiness rather than
//     re-measuring the drain the steady-state series cover; the mmap
//     path must win by an order of magnitude — the ISSUE 9 acceptance
//     gate;
//   - steady state: once the catalog is warm, draining mmap-backed
//     columns must cost the same as draining heap-built ones — the
//     columns alias the mapping byte-for-byte, so the advancer's inner
//     loops cannot tell the difference. The CI gate holds mmap to
//     ≤ heap × 1.15 summed over the Table III overlap sweep.
//
// The cold series answer the same point query and the steady series the
// same full ∩Tp over identically generated inputs, so output
// cardinalities must agree pairwise (CI-gated; the server-level
// crossval suite pins full bit-identity).

// coldQuery intersects one shared fact's chains: datagen.Pair
// distributes tuples round-robin over facts f000000..f00NNNN in both
// relations, so the answer is non-trivial on every sweep point while
// costing microseconds — the measurement is dominated by how the
// catalog came up, not by the drain.
const coldQuery = "sigma[Fact='f000000'](r) & sigma[Fact='f000000'](s)"

// coldStart measures one "process start to first answer" run: seed is
// called on a fresh server (CSV ingest or store attach), then the point
// query is evaluated once, cache cold.
func coldStart(seed func(*server.Server)) (time.Duration, int) {
	start := time.Now()
	srv := server.New(server.Config{CacheSize: -1})
	seed(srv)
	resp, err := srv.RunQuery(server.QueryRequest{Query: coldQuery, Workers: 1, NoCache: true})
	if err != nil {
		panic(fmt.Sprintf("bench: segment-vs-heap: cold query: %v", err))
	}
	return time.Since(start), len(resp.Result.Tuples)
}

// drainOnce drains one sequential ∩Tp engine stream over db.
func drainOnce(node query.Node, db map[string]*relation.Relation) (time.Duration, int) {
	start := time.Now()
	cur, err := engine.New(engine.Config{Workers: 1}).Cursor(node, db, core.Options{AssumeSorted: true, LazyProb: true})
	if err != nil {
		panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
	}
	defer cur.Close()
	count := 0
	b := core.GetBatch()
	for cur.NextBatch(b) {
		count += len(b.Tuples)
	}
	core.PutBatch(b)
	return time.Since(start), count
}

// bestOf runs f reps times and keeps the fastest (duration, count). Each
// rep starts after a forced collection so one rep's garbage is not billed
// to the next — a real cold start begins with a fresh heap.
func bestOf(reps int, f func() (time.Duration, int)) (time.Duration, int) {
	var bd time.Duration
	var bc int
	for i := 0; i < reps; i++ {
		runtime.GC()
		d, c := f()
		if i == 0 || d < bd {
			bd, bc = d, c
		}
	}
	return bd, bc
}

// SegmentVsHeap sweeps the Table III overlapping-factor configurations
// at fixed size: per point, cold-start latency from CSV vs from mmap
// segments, and steady-state drain over heap-built vs mmap-restored
// columns.
func SegmentVsHeap(cfg Config) Result {
	n := cfg.scaled(1000000)
	facts := internFacts(n)
	node := query.MustParse("r & s")

	names := []string{"cold-csv", "cold-mmap", "heap", "mmap"}
	series := make([]Series, len(names))
	for i, name := range names {
		series[i].Approach = name
	}

	note := ""
	for _, row := range datagen.TableIII {
		label := fmt.Sprintf("%g", row.OverlapFactor)
		r, s := datagen.Pair(datagen.PairConfig{
			NumTuples: n, NumFacts: facts,
			MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS,
			MaxGap: 3, Seed: cfg.Seed,
		})
		relation.InternAll(r, s)
		r.Sort()
		s.Sort()
		r.BuildCols()
		s.BuildCols()
		heapDB := map[string]*relation.Relation{"r": r, "s": s}

		// Outside the timed sections: persist both forms the cold paths
		// restore from.
		dir, err := os.MkdirTemp("", "tpseg-bench-")
		if err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
		}
		dataDir := filepath.Join(dir, "data")
		st, err := segment.OpenStore(dataDir)
		if err == nil {
			if err = st.Put("r", r, nil); err == nil {
				if err = st.Put("s", s, nil); err == nil {
					err = st.Close()
				}
			}
		}
		if err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: writing store: %v", err))
		}
		rCSV, sCSV := filepath.Join(dir, "r.csv"), filepath.Join(dir, "s.csv")
		if err := csvio.WriteFile(rCSV, r); err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: writing csv: %v", err))
		}
		if err := csvio.WriteFile(sCSV, s); err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: writing csv: %v", err))
		}

		csvRun := 0
		runners := []func() (time.Duration, int){
			func() (time.Duration, int) { // cold-csv: tpserve -data-dir -rel re-ingest
				csvRun++
				freshDir := filepath.Join(dir, fmt.Sprintf("reingest%d", csvRun))
				var cst *segment.Store
				d, out := coldStart(func(srv *server.Server) {
					var err error
					cst, err = segment.OpenStore(freshDir)
					if err == nil {
						err = srv.AttachStore(cst)
					}
					if err != nil {
						panic(fmt.Sprintf("bench: segment-vs-heap: csv ingest: %v", err))
					}
					for _, name := range []string{"r", "s"} {
						path := rCSV
						if name == "s" {
							path = sCSV
						}
						rel, err := csvio.ReadFile(path, name)
						if err != nil {
							panic(fmt.Sprintf("bench: segment-vs-heap: csv ingest: %v", err))
						}
						if _, err := srv.Load(name, rel); err != nil {
							panic(fmt.Sprintf("bench: segment-vs-heap: csv ingest: %v", err))
						}
					}
				})
				if err := cst.Close(); err != nil {
					panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
				}
				if err := os.RemoveAll(freshDir); err != nil {
					panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
				}
				return d, out
			},
			func() (time.Duration, int) { // cold-mmap: the tpserve -data-dir startup
				var st *segment.Store
				d, out := coldStart(func(srv *server.Server) {
					var err error
					st, err = segment.OpenStore(dataDir)
					if err == nil {
						err = srv.AttachStore(st)
					}
					if err != nil {
						panic(fmt.Sprintf("bench: segment-vs-heap: mmap restore: %v", err))
					}
				})
				if err := st.Close(); err != nil {
					panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
				}
				return d, out
			},
			func() (time.Duration, int) { // heap steady-state drain
				return drainOnce(node, heapDB)
			},
			nil, // mmap steady-state drain, set up below
		}
		// The mmap drain runs over one restored catalog, reopened outside
		// the timed section; the store stays open across the reps so the
		// mapping is live, exactly like a serving process.
		mst, err := segment.OpenStore(dataDir)
		if err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
		}
		mrels, _, err := mst.Restore()
		if err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
		}
		runners[3] = func() (time.Duration, int) {
			return drainOnce(node, mrels)
		}

		const reps = 3
		for i, run := range runners {
			if over(series[i], cfg.Budget) {
				series[i].Cells = append(series[i].Cells, Cell{X: row.OverlapFactor, Label: label, Skipped: true})
				continue
			}
			d, out := bestOf(reps, run)
			series[i].Cells = append(series[i].Cells, Cell{
				X: row.OverlapFactor, Label: label, Duration: d, Output: out,
			})
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "  %-10s %-6s %12s  out=%d\n",
					names[i], label, d.Round(time.Microsecond), out)
			}
		}
		if err := mst.Close(); err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
		}
		if err := os.RemoveAll(dir); err != nil {
			panic(fmt.Sprintf("bench: segment-vs-heap: %v", err))
		}

		cc := series[0].Cells[len(series[0].Cells)-1]
		cm := series[1].Cells[len(series[1].Cells)-1]
		hc := series[2].Cells[len(series[2].Cells)-1]
		mc := series[3].Cells[len(series[3].Cells)-1]
		if !cc.Skipped && !cm.Skipped && cm.Duration > 0 && !hc.Skipped && !mc.Skipped && hc.Duration > 0 {
			note += fmt.Sprintf("%s: cold %.1fx drain %.2fx; ", label,
				float64(cc.Duration)/float64(cm.Duration),
				float64(hc.Duration)/float64(mc.Duration))
		}
	}

	return Result{
		Name:     "segment-vs-heap",
		Title:    "mmap segment store vs heap catalog: cold start (CSV re-ingest vs mmap open) + steady-state ∩Tp drain",
		XLabel:   "ovl factor",
		Series:   series,
		Scale:    cfg.Scale,
		Footnote: fmt.Sprintf("%d tuples/relation, %d facts, workers=1, best of 3; cold-csv-vs-mmap and heap-vs-mmap ratios: %s", n, facts, note),
	}
}
