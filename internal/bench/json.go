package bench

import (
	"encoding/json"
	"io"
)

// Machine-readable experiment output (tpbench -json): a stable wire
// shape decoupled from the internal Result structs, with durations in
// milliseconds so downstream tooling (CI assertions, plotting) does not
// parse Go duration strings.

// ResultJSON is the wire form of one experiment result.
type ResultJSON struct {
	Name     string       `json:"name"`
	Title    string       `json:"title"`
	XLabel   string       `json:"xLabel,omitempty"`
	Scale    float64      `json:"scale"`
	Footnote string       `json:"footnote,omitempty"`
	Series   []SeriesJSON `json:"series"`
}

// SeriesJSON is one approach's measurements.
type SeriesJSON struct {
	Approach string     `json:"approach"`
	Cells    []CellJSON `json:"cells"`
}

// CellJSON is one measurement. Skipped cells carry only x/label.
type CellJSON struct {
	X            float64 `json:"x"`
	Label        string  `json:"label"`
	Ms           float64 `json:"ms"`
	Output       int     `json:"output"`
	Skipped      bool    `json:"skipped,omitempty"`
	AllocBytes   uint64  `json:"allocBytes,omitempty"`
	Mallocs      uint64  `json:"mallocs,omitempty"`
	Writes       int     `json:"writes,omitempty"`
	FirstTupleMs float64 `json:"firstTupleMs,omitempty"`
}

// JSON converts the result to its wire form.
func (res Result) JSON() ResultJSON {
	rj := ResultJSON{
		Name:     res.Name,
		Title:    res.Title,
		XLabel:   res.XLabel,
		Scale:    res.Scale,
		Footnote: res.Footnote,
		Series:   []SeriesJSON{},
	}
	for _, s := range res.Series {
		sj := SeriesJSON{Approach: s.Approach, Cells: []CellJSON{}}
		for _, c := range s.Cells {
			sj.Cells = append(sj.Cells, CellJSON{
				X:            c.X,
				Label:        c.label(),
				Ms:           float64(c.Duration.Microseconds()) / 1000,
				Output:       c.Output,
				Skipped:      c.Skipped,
				AllocBytes:   c.AllocBytes,
				Mallocs:      c.Mallocs,
				Writes:       c.Writes,
				FirstTupleMs: float64(c.FirstTuple.Microseconds()) / 1000,
			})
		}
		rj.Series = append(rj.Series, sj)
	}
	return rj
}

// WriteJSON writes the results as one indented JSON document:
// {"experiments": [ResultJSON, ...]}.
func WriteJSON(w io.Writer, results []Result) error {
	doc := struct {
		Experiments []ResultJSON `json:"experiments"`
	}{Experiments: []ResultJSON{}}
	for _, res := range results {
		doc.Experiments = append(doc.Experiments, res.JSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
