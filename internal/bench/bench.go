package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/tpset/tpset/internal/baseline/norm"
	"github.com/tpset/tpset/internal/baseline/oip"
	"github.com/tpset/tpset/internal/baseline/timeline"
	"github.com/tpset/tpset/internal/baseline/tpdbg"
	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/relation"
)

// Approach is one competitor of the evaluation.
type Approach struct {
	Name     string
	Supports map[core.Op]bool
	// Run executes op and returns the output cardinality.
	Run func(op core.Op, r, s *relation.Relation) (int, error)
}

// Approaches returns the registry of Table II, in the paper's order.
func Approaches() []Approach {
	all := map[core.Op]bool{core.OpUnion: true, core.OpIntersect: true, core.OpExcept: true}
	return []Approach{
		{
			Name:     "LAWA",
			Supports: all,
			Run: func(op core.Op, r, s *relation.Relation) (int, error) {
				// LazyProb times the set operation itself; confidence
				// computation is a separate stage in all compared systems.
				out, err := core.Apply(op, r, s, core.Options{LazyProb: true})
				if err != nil {
					return 0, err
				}
				return out.Len(), nil
			},
		},
		{
			Name:     "NORM",
			Supports: all,
			Run: func(op core.Op, r, s *relation.Relation) (int, error) {
				return norm.Apply(op, r, s).Len(), nil
			},
		},
		{
			Name:     "TPDB",
			Supports: map[core.Op]bool{core.OpUnion: true, core.OpIntersect: true},
			Run: func(op core.Op, r, s *relation.Relation) (int, error) {
				out, err := tpdbg.Apply(op, r, s)
				if err != nil {
					return 0, err
				}
				return out.Len(), nil
			},
		},
		{
			Name:     "OIP",
			Supports: map[core.Op]bool{core.OpIntersect: true},
			Run: func(op core.Op, r, s *relation.Relation) (int, error) {
				return oip.Intersect(r, s).Len(), nil
			},
		},
		{
			Name:     "TI",
			Supports: map[core.Op]bool{core.OpIntersect: true},
			Run: func(op core.Op, r, s *relation.Relation) (int, error) {
				return timeline.Intersect(r, s).Len(), nil
			},
		},
	}
}

// ApproachByName returns the registered approach with the given name.
func ApproachByName(name string) (Approach, bool) {
	for _, a := range Approaches() {
		if a.Name == name {
			return a, true
		}
	}
	return Approach{}, false
}

// Cell is one measurement of a sweep.
type Cell struct {
	X        float64       // sweep coordinate (e.g. tuples per relation)
	Label    string        // x label override (robustness sweeps)
	Duration time.Duration // elapsed wall time
	Output   int           // output cardinality
	Skipped  bool          // cut off by the time budget
	// AllocBytes is the heap allocated during the run (memstats TotalAlloc
	// delta); only the memory-profiling experiments fill it.
	AllocBytes uint64
	// Mallocs is the number of heap allocations during the run (memstats
	// Mallocs delta); filled alongside AllocBytes.
	Mallocs uint64
	// Writes counts sink writes (network-write stand-ins) during the
	// run; only the batch-vs-tuple serve pipelines fill it.
	Writes int
	// FirstTuple is the time until the first output tuple was available;
	// only the streaming experiments fill it (a materializing run's first
	// tuple arrives with its last).
	FirstTuple time.Duration
}

// Series is one approach's measurements over a sweep.
type Series struct {
	Approach string
	Cells    []Cell
}

// Result is a complete experiment: several approaches over one sweep.
type Result struct {
	Name     string // e.g. "fig7a"
	Title    string
	XLabel   string
	Series   []Series
	Scale    float64
	Footnote string
}

// Sweep runs one operation over a sequence of generated inputs for several
// approaches, with a per-approach time budget: once an approach exceeds the
// budget at some size, larger sizes are skipped.
type Sweep struct {
	Op     core.Op
	Points []Point
	Budget time.Duration // per single run; 0 = no budget
}

// Point is one x coordinate of a sweep plus its input generator. The
// generator runs outside the timed section.
type Point struct {
	X     float64
	Label string
	Gen   func() (r, s *relation.Relation)
}

// Run executes the sweep for the named approaches (nil = all applicable).
func (sw Sweep) Run(names []string, progress io.Writer) []Series {
	var approaches []Approach
	if names == nil {
		for _, a := range Approaches() {
			if a.Supports[sw.Op] {
				approaches = append(approaches, a)
			}
		}
	} else {
		for _, n := range names {
			a, ok := ApproachByName(n)
			if !ok || !a.Supports[sw.Op] {
				continue
			}
			approaches = append(approaches, a)
		}
	}

	series := make([]Series, len(approaches))
	for i, a := range approaches {
		series[i].Approach = a.Name
	}
	for _, pt := range sw.Points {
		r, s := pt.Gen()
		// Pre-sort a shared copy so every approach receives identically
		// ordered inputs (the approaches re-sort or group as they need;
		// LAWA is measured including its own sort of cloned inputs).
		for i, a := range approaches {
			cell := Cell{X: pt.X, Label: pt.Label}
			if over(series[i], sw.Budget) {
				cell.Skipped = true
				series[i].Cells = append(series[i].Cells, cell)
				continue
			}
			start := time.Now()
			n, err := a.Run(sw.Op, r, s)
			cell.Duration = time.Since(start)
			if err != nil {
				cell.Skipped = true
			}
			cell.Output = n
			series[i].Cells = append(series[i].Cells, cell)
			if progress != nil {
				fmt.Fprintf(progress, "  %-5s %-10s %12s  out=%d\n",
					a.Name, pt.label(), cell.Duration.Round(time.Microsecond), n)
			}
		}
	}
	return series
}

func (pt Point) label() string {
	if pt.Label != "" {
		return pt.Label
	}
	return fmt.Sprintf("%.0f", pt.X)
}

func over(s Series, budget time.Duration) bool {
	if budget <= 0 || len(s.Cells) == 0 {
		return false
	}
	last := s.Cells[len(s.Cells)-1]
	return last.Skipped || last.Duration > budget
}

// Print renders the result as an aligned text table, one row per x value,
// one column per approach.
func (res Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s (scale %g) ==\n", res.Name, res.Title, res.Scale)
	if len(res.Series) == 0 {
		if res.Footnote != "" {
			fmt.Fprintln(w, res.Footnote)
		}
		return
	}
	fmt.Fprintf(w, "%-12s", res.XLabel)
	for _, s := range res.Series {
		fmt.Fprintf(w, "%14s", s.Approach)
	}
	fmt.Fprintln(w)
	rows := len(res.Series[0].Cells)
	for ri := 0; ri < rows; ri++ {
		fmt.Fprintf(w, "%-12s", res.Series[0].Cells[ri].label())
		for _, s := range res.Series {
			if ri >= len(s.Cells) || s.Cells[ri].Skipped {
				fmt.Fprintf(w, "%14s", "—")
				continue
			}
			fmt.Fprintf(w, "%14s", fmtDur(s.Cells[ri].Duration))
		}
		fmt.Fprintln(w)
	}
	if res.Footnote != "" {
		fmt.Fprintf(w, "note: %s\n", res.Footnote)
	}
	fmt.Fprintln(w)
}

func (c Cell) label() string {
	if c.Label != "" {
		return c.Label
	}
	if c.X >= 1000 && c.X == float64(int64(c.X)) {
		return fmt.Sprintf("%.0fK", c.X/1000)
	}
	return fmt.Sprintf("%g", c.X)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// PrintCSV renders the result as CSV (x, then one column per approach, in
// milliseconds; empty cell = skipped).
func (res Result) PrintCSV(w io.Writer) {
	fmt.Fprintf(w, "%s", res.XLabel)
	for _, s := range res.Series {
		fmt.Fprintf(w, ",%s_ms", s.Approach)
	}
	fmt.Fprintln(w)
	if len(res.Series) == 0 {
		return
	}
	for ri := range res.Series[0].Cells {
		fmt.Fprintf(w, "%s", res.Series[0].Cells[ri].label())
		for _, s := range res.Series {
			if ri >= len(s.Cells) || s.Cells[ri].Skipped {
				fmt.Fprint(w, ",")
				continue
			}
			fmt.Fprintf(w, ",%.3f", float64(s.Cells[ri].Duration.Microseconds())/1000)
		}
		fmt.Fprintln(w)
	}
}

// SpeedupTable summarizes, per x value, the fastest approach and its
// advantage over the runner-up — the "who wins, by what factor" digest
// EXPERIMENTS.md records.
func (res Result) SpeedupTable() string {
	if len(res.Series) < 2 || len(res.Series[0].Cells) == 0 {
		return ""
	}
	out := ""
	for ri := range res.Series[0].Cells {
		type entry struct {
			name string
			d    time.Duration
		}
		var es []entry
		for _, s := range res.Series {
			if ri < len(s.Cells) && !s.Cells[ri].Skipped {
				es = append(es, entry{s.Approach, s.Cells[ri].Duration})
			}
		}
		if len(es) < 2 {
			continue
		}
		sort.Slice(es, func(i, j int) bool { return es[i].d < es[j].d })
		ratio := float64(es[1].d) / float64(es[0].d)
		out += fmt.Sprintf("%s: %s wins (%.1fx over %s)\n",
			res.Series[0].Cells[ri].label(), es[0].name, ratio, es[1].name)
	}
	return out
}
