package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic instrument. The zero
// value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value (an atomic snapshot).
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram buckets: log2 scale over microseconds. Bucket i counts
// observations d with d ≤ 2^i µs (non-cumulative storage; exposition
// accumulates). The last bucket is +Inf. 2^25 µs ≈ 33.6 s — beyond any
// sane request latency; slower observations land in +Inf.
const (
	histMaxExp  = 25
	histBuckets = histMaxExp + 2 // exponents 0..25, plus +Inf
)

// Histogram is a bounded log-scale latency histogram. Observe is
// lock-free (one atomic add into a bucket plus count and sum), so it is
// safe on hot paths under arbitrary concurrency; snapshots read each
// bucket atomically without stopping writers. The zero value is ready
// to use.
type Histogram struct {
	buckets  [histBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// bucketIndex returns the bucket of a d-microsecond observation: the
// smallest i with d ≤ 2^i µs.
func bucketIndex(us int64) int {
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // smallest i with 2^i >= us
	if i > histMaxExp {
		return histBuckets - 1 // +Inf
	}
	return i
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(int64(d/time.Microsecond))].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramStats is the JSON snapshot of a histogram: totals plus
// estimated quantiles (each quantile reports the upper bound of the
// bucket where its rank falls — an overestimate by at most 2x, the
// bucket width of the log2 scheme).
type HistogramStats struct {
	Count     uint64  `json:"count"`
	SumMicros int64   `json:"sumMicros"`
	P50Micros float64 `json:"p50Micros"`
	P90Micros float64 `json:"p90Micros"`
	P99Micros float64 `json:"p99Micros"`
}

// Snapshot freezes the histogram. Buckets are read individually (each
// atomically); under concurrent writers the totals may be off by the
// few observations in flight, never torn.
func (h *Histogram) Snapshot() HistogramStats {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := HistogramStats{
		Count:     h.count.Load(),
		SumMicros: h.sumNanos.Load() / int64(time.Microsecond),
	}
	quantile := func(q float64) float64 {
		if total == 0 {
			return 0
		}
		rank := uint64(math.Ceil(q * float64(total)))
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= rank {
				if i == histBuckets-1 {
					return math.Inf(1)
				}
				return float64(uint64(1) << i)
			}
		}
		return math.Inf(1)
	}
	st.P50Micros = quantile(0.50)
	st.P90Micros = quantile(0.90)
	st.P99Micros = quantile(0.99)
	return st
}

// --- Prometheus text exposition ---

// WritePrometheus renders the histogram in Prometheus text format under
// the given metric name (which should end in _seconds): cumulative
// buckets with le in seconds, then _sum and _count.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += h.buckets[i].Load()
		le := float64(uint64(1)<<i) * 1e-6 // bucket upper bound in seconds
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLe(le), cum)
	}
	cum += h.buckets[histBuckets-1].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatLe renders a bucket bound the way Prometheus clients
// conventionally do (shortest representation that round-trips).
func formatLe(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WriteCounterProm renders a counter in Prometheus text format.
func WriteCounterProm(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGaugeProm renders a gauge in Prometheus text format.
func WriteGaugeProm(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
