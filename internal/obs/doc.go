// Package obs is the observability layer of the TP execution stack:
// per-query execution traces, process-wide metric instruments and the
// request-scoped logging plumbing the HTTP service builds on.
//
// The package is deliberately dependency-free (standard library only) so
// every layer — core, query, engine, server — can instrument itself
// without import cycles.
//
// # Execution traces
//
// A Span is one node of a per-query execution trace: it mirrors one
// operator of the cursor plan (a scan, a selection, a set operation, a
// shard plan, the engine's k-way merge) and accumulates that operator's
// counters — tuples and batches emitted, advancer windows popped and
// run-skip gallops taken, inclusive wall time and channel-stall time.
// Spans form a tree mirroring the plan; Snapshot freezes the tree into
// the JSON-serializable SpanStats returned by POST /query (trace: true),
// the /query/stream trailer and POST /query/explain.
//
// All Span counters are atomics: shard plans record into their spans
// from dedicated goroutines while the consumer may snapshot after an
// early Close, so plain fields would race. Tracing is strictly opt-in —
// when no Span is attached to core.Options the execution stack builds
// exactly the un-instrumented plan (no wrapper cursors, no time calls),
// which is how the ≤2% tracing-off overhead pin is kept.
//
// # Metrics
//
// Counter and Histogram are the two instrument kinds behind GET
// /metrics. Both are lock-free: a Counter is one atomic word, a
// Histogram a fixed array of atomic buckets on a log2 scale of
// microseconds (bucket i counts observations ≤ 2^i µs), so hot paths
// observe without contention and scrapes snapshot without stopping
// writers. WritePrometheus renders the Prometheus text exposition
// format; JSON snapshots carry the same data plus estimated quantiles.
//
// # Request logging
//
// WithRequestID / RequestID and WithLogger / Logger carry a request
// identifier and a request-scoped *slog.Logger through context into the
// engine's shard workers, so per-shard debug logs correlate with the
// HTTP request that spawned them.
package obs
