package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sync/atomic"
)

// Request-scoped observability plumbing: a request ID minted per HTTP
// request and a request-scoped structured logger, both carried through
// context so the engine's shard workers can emit logs that correlate
// with the request that spawned them.

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
)

// reqPrefix is a per-process random prefix so request IDs from
// different server instances do not collide in aggregated logs.
var reqPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}()

var reqCounter atomic.Uint64

// NewRequestID mints a process-unique request identifier: a random
// per-process prefix plus a sequence number. Cheap (one atomic add, no
// allocation beyond the string) and unique enough to grep a request
// across interleaved JSON log lines.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqCounter.Add(1))
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the context's request ID, or "" when none is set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithLogger returns a context carrying a request-scoped logger
// (typically already tagged with the request ID via Logger.With).
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger, l)
}

// Logger returns the context's request-scoped logger, or nil when none
// is set. Callers on hot paths check for nil before assembling log
// attributes, so un-logged executions pay one context lookup at most.
func Logger(ctx context.Context) *slog.Logger {
	l, _ := ctx.Value(ctxKeyLogger).(*slog.Logger)
	return l
}

// NopLogger returns a logger that discards everything — the server's
// default when no logger is configured, so library users and tests get
// silence without nil checks at every call site.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler discards all records (slog.DiscardHandler exists only in
// newer Go releases than the module targets).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
